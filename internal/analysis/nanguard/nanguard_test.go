package nanguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nanguard"
)

func TestNaNGuard(t *testing.T) {
	analysistest.Run(t, "testdata", nanguard.Analyzer, "nanguardtest")
}

func TestMatchScopesNumericPackages(t *testing.T) {
	for _, pkg := range []string{"repro/internal/gp", "repro/internal/linalg", "repro/internal/core"} {
		if !nanguard.Analyzer.Match(pkg) {
			t.Errorf("Match(%s) = false, want true", pkg)
		}
	}
	if nanguard.Analyzer.Match("repro/internal/oran") {
		t.Error("Match(repro/internal/oran) = true, want false")
	}
}
