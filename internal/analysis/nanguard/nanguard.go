// Package nanguard keeps NaN out of the posterior math. In gp, linalg,
// and core, the results of math.Sqrt, math.Log, and floating-point
// division feed straight into the acquisition sweep; a single NaN there
// does not crash anything — it silently poisons every comparison it
// touches (NaN compares false), so the safe-set test and the LCB argmin
// quietly select garbage. The paper's controller is only trustworthy if
// these producers are guarded at the source.
//
// A producer is flagged unless one of the following holds:
//
//   - the operand is non-negative (for Sqrt), positive (for Log), or
//     non-zero (for division) by construction: a constant, a square
//     x*x, |x|, e^x, a sum/product of such terms;
//   - a guard dominates it: some if/for/switch condition mentioning one
//     of the operand's variables lies on every path from the function
//     entry to the producer (the early-return `if v < 0 { ... }` and
//     clamp `if v < 0 { v = 0 }` idioms, recognized through the CFG's
//     dominator relation, whichever way the branch is written);
//   - the result is checked afterwards: the producer's value is bound
//     to a variable that some later condition mentions (the
//     `s := math.Sqrt(x); if math.IsNaN(s)` idiom).
//
// Divisions are only flagged when the denominator involves a
// floating-point variable. Integer-derived denominators
// (float64(n−1), ...) cannot produce NaN from rounding and are almost
// always structurally bounded away from zero; flagging them would bury
// the real signal.
//
// Values that are non-negative for reasons the analysis cannot see
// (a sum of squared distances, a validated configuration) carry
// //edgebol:allow nanguard -- <reason>.
package nanguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the nanguard check.
var Analyzer = &analysis.Analyzer{
	Name: "nanguard",
	Doc:  "math.Sqrt/math.Log/division results must be guarded before they flow into posterior math",
	Match: func(pkgPath string) bool {
		switch pkgPath {
		case "repro/internal/gp", "repro/internal/linalg", "repro/internal/core":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// producer is one risky value source found in a function body.
type producer struct {
	node    ast.Node // the call or binary expression
	operand ast.Expr // the argument that must be safe
	what    string   // "math.Sqrt", "math.Log", "division"
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var prods []producer
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals get their own walk
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := mathCall(pass, n); ok && len(n.Args) == 1 {
				switch name {
				case "Sqrt":
					if !nonNegative(pass, n.Args[0]) {
						prods = append(prods, producer{n, n.Args[0], "math.Sqrt"})
					}
				case "Log", "Log2", "Log10":
					if !positive(pass, n.Args[0]) {
						prods = append(prods, producer{n, n.Args[0], "math." + name})
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.QUO && isFloat(pass, n) && involvesFloatVar(pass, n.Y) && !nonZero(pass, n.Y) {
				prods = append(prods, producer{n, n.Y, "division"})
			}
		}
		return true
	})
	if len(prods) == 0 {
		return
	}

	g := cfg.New(body)
	conds := condMentions(pass, g)
	for _, p := range prods {
		at, _ := g.NodeAt(p.node.Pos())
		if at == nil {
			continue // unreachable
		}
		if guarded(pass, g, conds, p, at) {
			continue
		}
		pass.Reportf(p.node.Pos(), "%s result can be NaN/Inf: no guard on %s dominates it and its result is never checked", p.what, operandText(p.operand))
	}
}

// condMention pairs a guard expression with the variable objects it
// mentions.
type condMention struct {
	node ast.Node
	vars map[types.Object]bool
}

// condMentions indexes every guard expression in the graph by the
// variables it references.
func condMentions(pass *analysis.Pass, g *cfg.Graph) []condMention {
	var out []condMention
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			e, ok := n.(ast.Expr)
			if !ok {
				continue
			}
			if _, isCond := g.IsCond(e); !isCond {
				continue
			}
			out = append(out, condMention{node: n, vars: mentionedVars(pass, e)})
		}
	}
	return out
}

// guarded reports whether producer p is protected: a dominating guard
// mentions one of the operand's variables, or the bound result is
// mentioned by a condition the producer dominates.
func guarded(pass *analysis.Pass, g *cfg.Graph, conds []condMention, p producer, at ast.Node) bool {
	operandVars := mentionedVars(pass, p.operand)
	resultVars := boundVars(pass, p.node, at)
	for _, c := range conds {
		if g.NodeDominates(c.node, at) && intersects(c.vars, operandVars) {
			return true
		}
		// Post-check: the producer dominates a condition that inspects
		// the variable its result was bound to.
		if len(resultVars) > 0 && g.NodeDominates(at, c.node) && c.node != at && intersects(c.vars, resultVars) {
			return true
		}
	}
	return false
}

// boundVars returns the variables the producer's enclosing statement
// binds, when that statement is a 1:1 assignment containing p.
func boundVars(pass *analysis.Pass, prod, at ast.Node) map[types.Object]bool {
	assign, ok := at.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != len(assign.Rhs) {
		return nil
	}
	out := make(map[types.Object]bool)
	for i, rhs := range assign.Rhs {
		if !containsNode(rhs, prod) {
			continue
		}
		if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(pass, id); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// mentionedVars collects the variable objects an expression references:
// locals, parameters, and fields (a guard on a.sigma protects uses of
// a.sigma).
func mentionedVars(pass *analysis.Pass, e ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := objOf(pass, id); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if v, ok := obj.(*types.Var); ok {
		return v
	}
	return nil
}

func intersects(a, b map[types.Object]bool) bool {
	for k := range b {
		if a[k] {
			return true
		}
	}
	return false
}

// mathCall recognizes a call to a math-package function.
func mathCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math" {
		return "", false
	}
	return sel.Sel.Name, true
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// involvesFloatVar reports whether e mentions a floating-point
// variable; integer-derived expressions are exempt from the division
// rule.
func involvesFloatVar(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				found = true
			}
		}
		return true
	})
	return found
}

// constValue returns the exact constant value of e, if it has one.
func constValue(pass *analysis.Pass, e ast.Expr) (constant.Value, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return nil, false
	}
	return tv.Value, true
}

// nonNegative reports whether e is ≥ 0 by construction.
func nonNegative(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if v, ok := constValue(pass, e); ok {
		return constant.Sign(constant.Real(v)) >= 0
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			// A square, or a product of non-negative factors.
			if samePath(e.X, e.Y) {
				return true
			}
			return nonNegative(pass, e.X) && nonNegative(pass, e.Y)
		case token.ADD:
			return nonNegative(pass, e.X) && nonNegative(pass, e.Y)
		}
	case *ast.CallExpr:
		if name, ok := mathCall(pass, e); ok {
			switch name {
			case "Abs", "Exp", "Exp2", "Sqrt", "Hypot":
				return true
			}
		}
		// float64(len(xs)) and friends: a conversion of a non-negative
		// integer expression.
		if len(e.Args) == 1 {
			if inner, ok := ast.Unparen(e.Args[0]).(*ast.CallExpr); ok {
				if id, isIdent := inner.Fun.(*ast.Ident); isIdent && (id.Name == "len" || id.Name == "cap") {
					return true
				}
			}
		}
	}
	return false
}

// positive reports whether e is > 0 by construction.
func positive(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if v, ok := constValue(pass, e); ok {
		return constant.Sign(constant.Real(v)) > 0
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if name, ok := mathCall(pass, call); ok && (name == "Exp" || name == "Exp2") {
			return true
		}
	}
	return false
}

// nonZero reports whether e is bounded away from zero by construction.
func nonZero(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if v, ok := constValue(pass, e); ok {
		return constant.Sign(constant.Real(v)) != 0
	}
	// A sum with a positive constant term (x*x + eps, d + 1) cannot be
	// zero when the variable part is non-negative.
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.ADD {
		if positive(pass, b.X) && nonNegative(pass, b.Y) {
			return true
		}
		if positive(pass, b.Y) && nonNegative(pass, b.X) {
			return true
		}
	}
	return false
}

// samePath reports whether two expressions are the same identifier or
// selector chain, as in x*x.
func samePath(a, b ast.Expr) bool {
	pa, oka := pathOf(a)
	pb, okb := pathOf(b)
	return oka && okb && pa == pb
}

func pathOf(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := pathOf(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := pathOf(e.X)
		if !ok {
			return "", false
		}
		idx, ok := pathOf(e.Index)
		if !ok {
			return "", false
		}
		return base + "[" + idx + "]", true
	case *ast.BasicLit:
		return e.Value, true
	}
	return "", false
}

// operandText renders a short description of the operand for the
// diagnostic.
func operandText(e ast.Expr) string {
	if p, ok := pathOf(e); ok {
		return p
	}
	return "the operand"
}
