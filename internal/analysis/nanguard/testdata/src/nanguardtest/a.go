package nanguardtest

import "math"

func unguardedSqrt(x float64) float64 {
	return math.Sqrt(x) // want `math.Sqrt result can be NaN`
}

func guardedSqrt(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x) // guard dominates: fine
}

func clampedSqrt(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v) // clamped first: fine
}

func sumOfSquares(x float64) float64 {
	return math.Sqrt(x*x + 1e-9) // non-negative by construction: fine
}

func postChecked(x float64) float64 {
	s := math.Sqrt(x) // checked below: fine
	if math.IsNaN(s) {
		return 0
	}
	return s
}

func unguardedLog(x float64) float64 {
	return math.Log(x) // want `math.Log result can be NaN`
}

func guardedLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

func unguardedDivision(a, b float64) float64 {
	return a / b // want `division result can be NaN`
}

func guardedDivision(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func intDerivedDenominator(a float64, n int) float64 {
	return a / float64(n) // integer-derived denominator: exempt
}

func epsBounded(a, d float64) float64 {
	return a / (d*d + 1e-12) // bounded away from zero: fine
}

func waivedSqrt(d2 float64) float64 {
	//edgebol:allow nanguard -- fixture: d2 is a sum of squares, non-negative by construction
	return math.Sqrt(3 * d2)
}

func guardAfterUse(a, b float64) float64 {
	r := a / b // want `division result can be NaN`
	if b == 0 {
		return 0
	}
	return r
}
