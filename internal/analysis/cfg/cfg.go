// Package cfg builds intra-procedural control-flow graphs from Go
// syntax trees, plus the two dataflow facilities EdgeBOL's lint
// analyzers query on top of them: block dominance (dom.go) and
// reaching definitions with light value tracking (reach.go).
//
// The package is a deliberately small analogue of
// golang.org/x/tools/go/cfg — the module carries no third-party
// dependencies — with just enough fidelity for lint-grade reasoning:
//
//   - A Graph is built per function body (FuncDecl or FuncLit). Function
//     literals are not inlined; each gets its own graph.
//   - Block.Nodes holds only "atomic" items in execution order: simple
//     statements (assignments, sends, calls, defers, go statements,
//     return values) and the guard expressions of if/for/switch.
//     Compound statements never appear, with one documented exception:
//     a RangeStmt appears in its loop-head block so its key/value
//     bindings stay visible to the reaching-definitions pass. Use
//     Inspect to walk a block node without descending into nested
//     bodies.
//   - Switch/type-switch case expressions are hoisted into the head
//     block: every case guard evaluates before any clause body runs, so
//     a `case den == 0:` guard dominates the other clauses' bodies.
//     This is an approximation (real evaluation stops at the first
//     match) that errs toward recognizing guards, which is the safe
//     direction for the analyzers built on it.
//   - Terminating calls — panic, os.Exit, log.Fatal*, runtime.Goexit,
//     (*testing.T).Fatal* — end their block with no successors, so code
//     after an early-exit guard is dominated by the guard alone. The
//     match is syntactic (a shadowed `panic` would be misread), which is
//     acceptable at lint grade.
//
// All facilities are pure functions of the syntax tree (and, for
// reaching definitions, the type info); nothing here touches the
// loader, so the package is reusable from both the driver and the
// analysistest fixtures.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is a maximal straight-line sequence of atomic nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the block's statements and guard expressions in
	// execution order. See the package comment for what appears here.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the function entry block (always Blocks[0]).
	Entry *Block
	// Blocks lists every block, reachable or not, in creation order.
	Blocks []*Block

	// conds marks guard expressions: if/for conditions and hoisted
	// switch case expressions, keyed by the expression node.
	conds map[ast.Node]*Block

	// dominance is computed lazily by Dominates.
	dom [][]bool

	// nodeBlock maps each block-level node to its block.
	nodeBlock map[ast.Node]*Block
}

// New builds the control-flow graph of body. A nil body (a function
// declared without one, e.g. assembly-backed) yields a graph with an
// empty entry block.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{conds: make(map[ast.Node]*Block), nodeBlock: make(map[ast.Node]*Block)}
	b := &builder{g: g, labels: make(map[string]*labelTargets)}
	g.Entry = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.patchGotos()
	return g
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block // nil while the next statement is unreachable

	// breakTargets / continueTargets are stacks of the innermost
	// enclosing break and continue destinations.
	breakTargets    []*Block
	continueTargets []*Block

	labels map[string]*labelTargets
	gotos  []pendingGoto
}

// labelTargets records where a labeled statement's break, continue, and
// goto edges land.
type labelTargets struct {
	breakT    *Block
	continueT *Block
	gotoT     *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends an atomic node to the current block.
func (b *builder) add(n ast.Node) {
	if b.cur == nil || n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.nodeBlock[n] = b.cur
}

// addCond appends a guard expression to the current block and marks it
// as a condition.
func (b *builder) addCond(e ast.Expr) {
	if b.cur == nil || e == nil {
		return
	}
	b.add(e)
	b.g.conds[e] = b.cur
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the statement's label when it
// was reached through a LabeledStmt, for labeled break/continue.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so gotos have a well-defined target.
		target := b.newBlock()
		edge(b.cur, target)
		b.cur = target
		lt := &labelTargets{gotoT: target}
		b.labels[s.Label.Name] = lt
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.addCond(s.Cond)
		head := b.cur
		then := b.newBlock()
		done := b.newBlock()
		edge(head, then)
		b.cur = then
		b.stmtList(s.Body.List)
		edge(b.cur, done)
		if s.Else != nil {
			els := b.newBlock()
			edge(head, els)
			b.cur = els
			b.stmt(s.Else, "")
			edge(b.cur, done)
		} else {
			edge(head, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		b.addCond(s.Cond)
		body := b.newBlock()
		done := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		edge(head, body)
		if s.Cond != nil {
			edge(head, done)
		}
		b.pushLoop(label, done, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		if s.Post != nil {
			edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post, "")
			edge(b.cur, head)
		} else {
			edge(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		// The whole RangeStmt sits in the head block so the key/value
		// bindings are visible to reaching definitions; Inspect prunes
		// the body when walking it.
		b.add(s)
		body := b.newBlock()
		done := b.newBlock()
		edge(head, body)
		edge(head, done)
		b.pushLoop(label, done, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		edge(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Expr { return cc.List })

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Expr { return nil })

	case *ast.SelectStmt:
		head := b.cur
		done := b.newBlock()
		hasDefault := false
		b.breakTargets = append(b.breakTargets, done)
		if label != "" {
			b.labels[label].breakT = done
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			edge(b.cur, done)
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		_ = hasDefault // a select blocks its goroutine, not the graph
		if len(s.Body.List) == 0 {
			// select{} blocks forever: done is unreachable.
			b.cur = nil
			return
		}
		b.cur = done

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			b.jump(s.Label, func(lt *labelTargets) *Block { return lt.breakT }, b.breakTargets)
		case token.CONTINUE:
			b.jump(s.Label, func(lt *labelTargets) *Block { return lt.continueT }, b.continueTargets)
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// caseClauses wires the fallthrough edge; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminates(call) {
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt, ...
		b.add(s)
	}
}

// caseClauses wires a (type) switch's clauses: every case expression is
// hoisted into the head block (see the package comment), each clause
// body gets its own block, and fallthrough falls into the next clause.
func (b *builder) caseClauses(list []ast.Stmt, label string, exprs func(*ast.CaseClause) []ast.Expr) {
	head := b.cur
	done := b.newBlock()
	b.breakTargets = append(b.breakTargets, done)
	if label != "" {
		b.labels[label].breakT = done
	}
	hasDefault := false
	bodies := make([]*Block, len(list))
	for i := range list {
		bodies[i] = b.newBlock()
	}
	for i, c := range list {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if head != nil {
			for _, e := range exprs(cc) {
				b.cur = head
				b.addCond(e)
			}
		}
		edge(head, bodies[i])
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if endsInFallthrough(cc.Body) && i+1 < len(list) {
			edge(b.cur, bodies[i+1])
			b.cur = nil
		}
		edge(b.cur, done)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if !hasDefault {
		edge(head, done)
	}
	b.cur = done
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// pushLoop registers break/continue targets for a loop, and binds them
// to its label when present.
func (b *builder) pushLoop(label string, breakT, continueT *Block) {
	b.breakTargets = append(b.breakTargets, breakT)
	b.continueTargets = append(b.continueTargets, continueT)
	if label != "" {
		if lt := b.labels[label]; lt != nil {
			lt.breakT = breakT
			lt.continueT = continueT
		}
	}
}

func (b *builder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// jump wires a break or continue edge, honoring an optional label.
func (b *builder) jump(label *ast.Ident, pick func(*labelTargets) *Block, stack []*Block) {
	var target *Block
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil {
			target = pick(lt)
		}
	} else if len(stack) > 0 {
		target = stack[len(stack)-1]
	}
	edge(b.cur, target)
	b.cur = nil
}

// patchGotos resolves goto edges after the whole body is built, so
// forward gotos find their labels.
func (b *builder) patchGotos() {
	for _, pg := range b.gotos {
		if lt := b.labels[pg.label]; lt != nil {
			edge(pg.from, lt.gotoT)
		}
	}
}

// terminates reports whether a call syntactically never returns: panic,
// os.Exit, runtime.Goexit, log.Fatal*, and (*testing.T).Fatal*.
func terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit":
			if id, ok := fun.X.(*ast.Ident); ok {
				return id.Name == "os"
			}
		case "Goexit":
			if id, ok := fun.X.(*ast.Ident); ok {
				return id.Name == "runtime"
			}
		case "Fatal", "Fatalf", "Fatalln":
			return true
		}
	}
	return false
}

// IsCond reports whether n is a guard expression (an if/for condition
// or a hoisted switch case expression) and returns its block.
func (g *Graph) IsCond(n ast.Node) (*Block, bool) {
	b, ok := g.conds[n]
	return b, ok
}

// BlockOf returns the block holding n, which must be a block-level node
// (a member of some Block.Nodes); nil otherwise.
func (g *Graph) BlockOf(n ast.Node) *Block { return g.nodeBlock[n] }

// NodeAt returns the block-level node spanning pos and its block. An
// unreachable statement (dead code after return) yields (nil, nil).
func (g *Graph) NodeAt(pos token.Pos) (ast.Node, *Block) {
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				return n, blk
			}
		}
	}
	return nil, nil
}

// Inspect walks a block-level node and its sub-expressions with f,
// pruning nested bodies: a RangeStmt's Body (its key, value, and range
// operand are visited) and every FuncLit body (a closure is its own
// function, with its own graph). All other block-level nodes are simple
// and are walked in full.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			Inspect(rs.Key, f)
		}
		if rs.Value != nil {
			Inspect(rs.Value, f)
		}
		Inspect(rs.X, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return f(m)
	})
}
