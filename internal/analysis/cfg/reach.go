package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition (binding or assignment) of a local variable.
type Def struct {
	// Node is the block-level node performing the definition: an
	// AssignStmt, ValueSpec's DeclStmt, IncDecStmt, RangeStmt, or — for
	// parameters and named results — the enclosing function node.
	Node ast.Node
	// RHS is the defining expression when the definition binds the
	// variable one-to-one (x := e, x = e, or a ValueSpec with matching
	// arity). It is nil when the value is opaque: parameters, range
	// bindings, multi-value assignments, IncDec, or address-taken
	// mutation observed elsewhere.
	RHS ast.Expr
}

// ReachingDefs answers, for a local variable at a program point, which
// definitions may reach it. The analysis is a standard forward
// may-dataflow over the function's Graph, at block granularity with
// in-block positional refinement at query time.
//
// Variables whose address escapes (&v taken anywhere, or v captured by
// a closure) are dropped from tracking entirely: every query on them
// returns nil, meaning "unknown", which callers must treat
// conservatively.
type ReachingDefs struct {
	g    *Graph
	info *types.Info

	// defs[v] lists v's definition sites in discovery order.
	defs map[*types.Var][]Def
	// in[block][v] is the set of def indices reaching the block entry.
	in map[*Block]map[*types.Var]map[int]bool
}

// Reach computes reaching definitions over g for the function fn (a
// *ast.FuncDecl or *ast.FuncLit, used to bind parameters and named
// results). info supplies the identifier-to-object resolution.
func Reach(g *Graph, fn ast.Node, info *types.Info) *ReachingDefs {
	r := &ReachingDefs{
		g:    g,
		info: info,
		defs: make(map[*types.Var][]Def),
		in:   make(map[*Block]map[*types.Var]map[int]bool),
	}
	entry := make(map[*types.Var]map[int]bool)
	if ft := funcType(fn); ft != nil {
		for _, field := range paramFields(ft) {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					r.defs[v] = append(r.defs[v], Def{Node: fn})
					entry[v] = map[int]bool{0: true}
				}
			}
		}
	}
	// Collect every definition site, block by block.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			r.collect(n)
		}
	}
	// Drop escaping variables: address taken or captured by a closure.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			r.dropEscapes(n)
		}
	}
	r.solve(entry)
	return r
}

func funcType(fn ast.Node) *ast.FuncType {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}

func paramFields(ft *ast.FuncType) []*ast.Field {
	var fields []*ast.Field
	if ft.Params != nil {
		fields = append(fields, ft.Params.List...)
	}
	if ft.Results != nil {
		fields = append(fields, ft.Results.List...)
	}
	return fields
}

// collect records the definitions a block-level node performs.
func (r *ReachingDefs) collect(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		oneToOne := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := r.objOf(id)
			if v == nil {
				continue
			}
			d := Def{Node: n}
			if oneToOne {
				d.RHS = n.Rhs[i]
			}
			r.defs[v] = append(r.defs[v], d)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			oneToOne := len(vs.Names) == len(vs.Values)
			for i, name := range vs.Names {
				v, ok := r.info.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				d := Def{Node: n}
				if oneToOne {
					d.RHS = vs.Values[i]
				}
				r.defs[v] = append(r.defs[v], d)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			if v := r.objOf(id); v != nil {
				r.defs[v] = append(r.defs[v], Def{Node: n})
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			id, ok := e.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if v := r.objOf(id); v != nil {
				r.defs[v] = append(r.defs[v], Def{Node: n})
			}
		}
	}
}

// dropEscapes forgets variables whose value can change through an
// alias: &v, or capture inside a function literal.
func (r *ReachingDefs) dropEscapes(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if id, ok := m.X.(*ast.Ident); ok {
					if v := r.objOf(id); v != nil {
						delete(r.defs, v)
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(m.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v := r.objOf(id); v != nil {
						delete(r.defs, v)
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// objOf resolves an identifier to the local variable it names.
func (r *ReachingDefs) objOf(id *ast.Ident) *types.Var {
	obj := r.info.Uses[id]
	if obj == nil {
		obj = r.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// defIndex returns the index of the def performed by node for v, or -1.
func (r *ReachingDefs) defIndices(v *types.Var, node ast.Node) []int {
	var out []int
	for i, d := range r.defs[v] {
		if d.Node == node {
			out = append(out, i)
		}
	}
	return out
}

// solve iterates the forward dataflow to a fixpoint.
func (r *ReachingDefs) solve(entry map[*types.Var]map[int]bool) {
	for _, blk := range r.g.Blocks {
		r.in[blk] = make(map[*types.Var]map[int]bool)
	}
	for v, set := range entry {
		r.in[r.g.Entry][v] = cloneSet(set)
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range r.g.Blocks {
			out := r.transfer(blk, r.in[blk])
			for _, succ := range blk.Succs {
				if mergeInto(r.in[succ], out) {
					changed = true
				}
			}
		}
	}
}

// transfer applies a whole block's definitions to state.
func (r *ReachingDefs) transfer(blk *Block, state map[*types.Var]map[int]bool) map[*types.Var]map[int]bool {
	out := cloneState(state)
	for _, n := range blk.Nodes {
		r.apply(n, out)
	}
	return out
}

// apply updates state with one node's definitions (kill then gen).
func (r *ReachingDefs) apply(n ast.Node, state map[*types.Var]map[int]bool) {
	for v := range r.defs {
		idx := r.defIndices(v, n)
		if len(idx) == 0 {
			continue
		}
		set := make(map[int]bool, len(idx))
		for _, i := range idx {
			set[i] = true
		}
		state[v] = set
	}
}

// DefsAt returns the definitions of v that may reach the start of the
// block-level node `at` (a member of some Block.Nodes). It returns nil
// when v is untracked (escaped, captured, or not a local) or `at` is
// not in the graph — callers must treat nil as "unknown".
func (r *ReachingDefs) DefsAt(v *types.Var, at ast.Node) []Def {
	if v == nil {
		return nil
	}
	if _, tracked := r.defs[v]; !tracked {
		return nil
	}
	blk := r.g.nodeBlock[at]
	if blk == nil {
		return nil
	}
	state := cloneState(r.in[blk])
	for _, n := range blk.Nodes {
		if n == at {
			break
		}
		r.apply(n, state)
	}
	set := state[v]
	if len(set) == 0 {
		return nil
	}
	out := make([]Def, 0, len(set))
	for i, d := range r.defs[v] {
		if set[i] {
			out = append(out, d)
		}
	}
	return out
}

// Sources resolves an expression to its ultimate defining expressions
// at the block-level node `at`: an identifier is chased through chains
// of one-to-one local assignments (with bounded fuel); anything else
// resolves to itself. A nil slice means the value is unknown — an
// untracked variable or an opaque definition on some path.
func (r *ReachingDefs) Sources(e ast.Expr, at ast.Node) []ast.Expr {
	return r.sources(e, at, 8)
}

func (r *ReachingDefs) sources(e ast.Expr, at ast.Node, fuel int) []ast.Expr {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return []ast.Expr{e}
	}
	v := r.objOf(id)
	if v == nil {
		return nil
	}
	defs := r.DefsAt(v, at)
	if len(defs) == 0 {
		return nil
	}
	var out []ast.Expr
	for _, d := range defs {
		if d.RHS == nil {
			return nil
		}
		if fuel == 0 {
			out = append(out, d.RHS)
			continue
		}
		sub := r.sources(d.RHS, d.Node, fuel-1)
		if sub == nil {
			return nil
		}
		out = append(out, sub...)
	}
	return out
}

func cloneSet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func cloneState(s map[*types.Var]map[int]bool) map[*types.Var]map[int]bool {
	out := make(map[*types.Var]map[int]bool, len(s))
	for v, set := range s {
		out[v] = cloneSet(set)
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst grew.
func mergeInto(dst, src map[*types.Var]map[int]bool) bool {
	grew := false
	for v, set := range src {
		d := dst[v]
		if d == nil {
			d = make(map[int]bool, len(set))
			dst[v] = d
		}
		for i := range set {
			if !d[i] {
				d[i] = true
				grew = true
			}
		}
	}
	return grew
}
