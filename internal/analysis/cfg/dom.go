package cfg

import "go/ast"

// computeDom runs the classic iterative dominator dataflow: a block is
// dominated by itself plus the intersection of its predecessors'
// dominator sets. Graphs here are per-function and small, so the
// quadratic set representation is simpler and fast enough.
func (g *Graph) computeDom() {
	n := len(g.Blocks)
	dom := make([][]bool, n)
	full := make([]bool, n)
	for i := range full {
		full[i] = true
	}
	for i := range dom {
		dom[i] = make([]bool, n)
		if i == g.Entry.Index {
			dom[i][i] = true
		} else {
			copy(dom[i], full)
		}
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range blk.Preds {
				if first {
					copy(next, dom[p.Index])
					first = false
					continue
				}
				for i := range next {
					next[i] = next[i] && dom[p.Index][i]
				}
			}
			if first {
				// Unreachable block: dominated by everything, by
				// convention (the full set), so it never weakens a
				// reachable block's solution.
				copy(next, full)
			}
			next[blk.Index] = true
			for i := range next {
				if next[i] != dom[blk.Index][i] {
					dom[blk.Index] = next
					changed = true
					break
				}
			}
		}
	}
	g.dom = dom
}

// Dominates reports whether every path from the entry to b passes
// through a. Every block dominates itself.
func (g *Graph) Dominates(a, b *Block) bool {
	if a == nil || b == nil {
		return false
	}
	if g.dom == nil {
		g.computeDom()
	}
	return g.dom[b.Index][a.Index]
}

// NodeDominates reports whether block-level node a dominates block-level
// node b: a's block strictly dominates b's, or both share a block and a
// executes first. Nodes not present in the graph dominate nothing.
func (g *Graph) NodeDominates(a, b ast.Node) bool {
	ba, bb := g.nodeBlock[a], g.nodeBlock[b]
	if ba == nil || bb == nil {
		return false
	}
	if ba == bb {
		return g.nodeIndex(ba, a) <= g.nodeIndex(ba, b)
	}
	return g.Dominates(ba, bb)
}

func (g *Graph) nodeIndex(b *Block, n ast.Node) int {
	for i, m := range b.Nodes {
		if m == n {
			return i
		}
	}
	return -1
}
