package cfg

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks src (a file body) and returns the named
// function's declaration plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil
}

// findCall returns the block-level node containing the call f(...).
func findCall(t *testing.T, g *Graph, fd *ast.FuncDecl, callee string) (ast.Node, *ast.CallExpr) {
	t.Helper()
	var call *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := c.Fun.(*ast.Ident); ok && id.Name == callee {
			call = c
			return false
		}
		return true
	})
	if call == nil {
		t.Fatalf("no call to %s", callee)
	}
	node, blk := g.NodeAt(call.Pos())
	if blk == nil {
		t.Fatalf("call to %s not in any block", callee)
	}
	return node, call
}

const guardSrc = `package p

func sink(float64) {}
func use(float64)  {}

func guarded(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	sink(a / b)
	return a / b
}

func unguarded(a, b float64) {
	use(a / b)
	if b == 0 {
		return
	}
}

func panicGuard(b float64) {
	if b <= 0 {
		panic("bad")
	}
	sink(b)
}
`

func TestGuardDominatesUse(t *testing.T) {
	fd, _ := parseFunc(t, guardSrc, "guarded")
	g := New(fd.Body)
	sinkNode, _ := findCall(t, g, fd, "sink")
	// The condition b == 0 must dominate the sink call.
	var cond ast.Node
	for c := range g.conds {
		cond = c
	}
	if cond == nil {
		t.Fatal("no condition recorded")
	}
	if !g.NodeDominates(cond, sinkNode) {
		t.Error("guard should dominate the use after the early return")
	}
}

func TestGuardAfterUseDoesNotDominate(t *testing.T) {
	fd, _ := parseFunc(t, guardSrc, "unguarded")
	g := New(fd.Body)
	useNode, _ := findCall(t, g, fd, "use")
	var cond ast.Node
	for c := range g.conds {
		cond = c
	}
	if g.NodeDominates(cond, useNode) {
		t.Error("a guard after the use must not dominate it")
	}
}

func TestPanicTerminatesBlock(t *testing.T) {
	fd, _ := parseFunc(t, guardSrc, "panicGuard")
	g := New(fd.Body)
	sinkNode, _ := findCall(t, g, fd, "sink")
	var cond ast.Node
	for c := range g.conds {
		cond = c
	}
	if !g.NodeDominates(cond, sinkNode) {
		t.Error("guard with panic arm should dominate the code after it")
	}
	// The panic statement's block must have no successors.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if c, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
						if len(blk.Succs) != 0 {
							t.Errorf("panic block has %d successors, want 0", len(blk.Succs))
						}
					}
				}
			}
		}
	}
}

const reachSrc = `package p

import "context"

func f(ctx context.Context) context.Context { return ctx }
func g(ctx context.Context)                 {}

func resolve(ctx context.Context, cond bool) {
	bg := context.Background()
	alias := bg
	g(alias)
	if cond {
		alias = ctx
	}
	g(alias)
}

func loopkill(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = 2
	}
	g2(x)
}

func g2(int) {}
`

func TestSourcesResolveChain(t *testing.T) {
	fd, info := parseFunc(t, reachSrc, "resolve")
	g := New(fd.Body)
	r := Reach(g, fd, info)

	// Find both g(alias) calls in order.
	var calls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "g" {
				calls = append(calls, c)
			}
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("found %d calls to g, want 2", len(calls))
	}

	at1, _ := g.NodeAt(calls[0].Pos())
	src1 := r.Sources(calls[0].Args[0], at1)
	if len(src1) != 1 {
		t.Fatalf("first call: %d sources, want 1", len(src1))
	}
	if c, ok := src1[0].(*ast.CallExpr); !ok || exprString(c.Fun) != "context.Background" {
		t.Errorf("first call should resolve to context.Background(), got %T", src1[0])
	}

	// After the conditional reassignment both defs reach: Background()
	// on one path, the ctx parameter (opaque) on the other → unknown.
	at2, _ := g.NodeAt(calls[1].Pos())
	if src2 := r.Sources(calls[1].Args[0], at2); src2 != nil {
		t.Errorf("second call: sources should be unknown (nil), got %d", len(src2))
	}
}

func TestLoopDefsMerge(t *testing.T) {
	fd, info := parseFunc(t, reachSrc, "loopkill")
	g := New(fd.Body)
	r := Reach(g, fd, info)
	var call *ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "g2" {
				call = c
			}
		}
		return true
	})
	at, _ := g.NodeAt(call.Pos())
	var xv *types.Var
	for v := range exportDefs(r) {
		if v.Name() == "x" {
			xv = v
		}
	}
	if xv == nil {
		t.Fatal("x not tracked")
	}
	defs := r.DefsAt(xv, at)
	if len(defs) != 2 {
		t.Fatalf("x has %d reaching defs after the loop, want 2 (init and loop body)", len(defs))
	}
}

func exportDefs(r *ReachingDefs) map[*types.Var][]Def { return r.defs }

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return fmt.Sprintf("%T", e)
}

const shapeSrc = `package p

func shapes(n int, ch chan int) int {
	total := 0
	switch {
	case n == 0:
		return -1
	case n > 10:
		total = 10
	default:
		total = n
	}
	for _, v := range []int{1, 2, 3} {
		total += v
	}
	select {
	case v := <-ch:
		total += v
	default:
	}
	return total
}
`

func TestBuildShapes(t *testing.T) {
	fd, info := parseFunc(t, shapeSrc, "shapes")
	g := New(fd.Body)
	if len(g.Blocks) < 8 {
		t.Fatalf("suspiciously few blocks: %d", len(g.Blocks))
	}
	// Case guards are hoisted: both case expressions share the entry
	// block chain and dominate the default clause body.
	var caseConds []ast.Node
	for c := range g.conds {
		caseConds = append(caseConds, c)
	}
	if len(caseConds) != 2 {
		t.Fatalf("recorded %d case conditions, want 2", len(caseConds))
	}
	// Reaching defs must survive the full construction.
	r := Reach(g, fd, info)
	if r == nil {
		t.Fatal("Reach returned nil")
	}
	// Every reachable block-level statement of the source appears in
	// exactly one block.
	counts := make(map[ast.Node]int)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			counts[n]++
			if counts[n] > 1 {
				t.Errorf("node at %v appears in multiple blocks", n.Pos())
			}
		}
	}
	if strings.Contains(fmt.Sprint(counts), "impossible") {
		t.Fatal("unreachable")
	}
}
