package ctxleaktest

import (
	"context"
	"time"
)

type server struct{}

func (s *server) Measure(x int) int                         { return x }
func (s *server) MeasureCtx(ctx context.Context, x int) int { return x }
func (s *server) Ping()                                     {}

func capable(ctx context.Context, n int) {}
func worker(ctx context.Context)         {}

func passesBackground(ctx context.Context) {
	capable(context.Background(), 1) // want `passes context.Background\(\) instead of the in-scope context`
	capable(context.TODO(), 1)       // want `passes context.TODO\(\) instead of the in-scope context`
	capable(ctx, 2)
}

func resolvesThroughLocals(ctx context.Context) {
	bg := context.Background()
	alias := bg
	capable(alias, 1) // want `resolves to context.Background\(\)/TODO\(\) on every reaching path`
	derived, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	capable(derived, 2) // derived from ctx: fine
}

func reassignedOnBranch(ctx context.Context, cond bool) {
	use := ctx
	if cond {
		use = context.Background()
	}
	// Detached only on one path: the analysis stays quiet rather than
	// guessing.
	capable(use, 1)
	use = context.Background()
	capable(use, 2) // want `resolves to context.Background\(\)/TODO\(\) on every reaching path`
}

func goroutines(ctx context.Context, ch chan int) {
	go worker(ctx) // context passed as an argument: fine
	go func() {    // closure captures ctx: fine
		<-ctx.Done()
	}()
	go func() { // want `goroutine is spawned without the in-scope context`
		ch <- 1
	}()
	//edgebol:allow ctxleak -- fixture: fire-and-forget cleanup is deliberately detached
	go func() { close(ch) }()
}

func siblings(ctx context.Context, s *server) {
	s.Measure(1) // want `Measure ignores the in-scope context; use MeasureCtx`
	s.MeasureCtx(ctx, 1)
	s.Ping() // no context-capable sibling: fine
}

func noContextInScope(s *server) {
	s.Measure(2)   // no context parameter here: fine
	go func() {}() // fine
}

func blankContext(_ context.Context, s *server) {
	s.Measure(3) // blank context parameter: function opted out
}
