package ctxleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxleak"
)

func TestCtxLeak(t *testing.T) {
	analysistest.Run(t, "testdata", ctxleak.Analyzer, "ctxleaktest")
}

func TestMatchScopesInternal(t *testing.T) {
	if !ctxleak.Analyzer.Match("repro/internal/oran") {
		t.Error("Match(repro/internal/oran) = false, want true")
	}
	if ctxleak.Analyzer.Match("repro") {
		t.Error("Match(repro) = true, want false")
	}
}
