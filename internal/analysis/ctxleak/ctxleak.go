// Package ctxleak enforces PR-3's cancellation plumbing: inside a
// function that takes a context.Context, the context must actually
// reach the work the function starts. Three leak shapes are flagged:
//
//  1. A context-capable callee invoked with context.Background() or
//     context.TODO() — directly, or through a chain of local
//     assignments the reaching-definitions pass resolves — severs the
//     caller's cancellation on that path. The dataflow matters: a
//     `ctx = context.Background()` on one branch poisons every call the
//     redefinition reaches, which an AST pattern-match cannot see.
//
//  2. A goroutine spawned without the context: neither an argument of
//     the `go` call nor a reference inside the spawned closure mentions
//     any context-typed value, so the goroutine outlives cancellation.
//
//  3. A call to a method M that ignores the context when the receiver
//     also offers MCtx or MContext taking one — exactly the
//     Measure/MeasureCtx and Call/CallCtx pairs of the O-RAN control
//     plane, whose context-threading regressions this analyzer exists
//     to catch.
//
// Functions whose context parameter is blank (`_ context.Context`) are
// skipped: they have declared they cannot thread it. Deliberate
// detachments (fire-and-forget cleanup, background flush) carry
// //edgebol:allow ctxleak -- <reason>.
package ctxleak

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the ctxleak check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc:  "a context.Context parameter must reach spawned goroutines and context-capable calls on every path",
	Match: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "repro/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Analyze every function-shaped body that declares a named
		// context parameter: top-level functions and function literals
		// (each literal is its own scope and gets its own graph).
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function with a named context.Context
// parameter; others are skipped.
func checkFunc(pass *analysis.Pass, fn ast.Node, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxVar := contextParam(pass, ft)
	if ctxVar == nil {
		return
	}
	g := cfg.New(body)
	reach := cfg.Reach(g, fn, pass.TypesInfo)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal is analyzed as its own function; its
			// body is not part of this graph.
			return false
		case *ast.GoStmt:
			checkGo(pass, n)
			return true
		case *ast.CallExpr:
			checkCall(pass, g, reach, n)
			return true
		}
		return true
	})
}

// contextParam returns the (named, non-blank) context.Context parameter
// of ft, or nil.
func contextParam(pass *analysis.Pass, ft *ast.FuncType) *types.Var {
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && isContext(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isBackgroundCall reports whether e is context.Background() or
// context.TODO().
func isBackgroundCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkCall flags context-capable calls whose context argument resolves
// to a detached root, and context-ignoring calls with a context-capable
// sibling method.
func checkCall(pass *analysis.Pass, g *cfg.Graph, reach *cfg.ReachingDefs, call *ast.CallExpr) {
	at, _ := g.NodeAt(call.Pos())
	hasCtxArg := false
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isContext(tv.Type) {
			continue
		}
		hasCtxArg = true
		if isBackgroundCall(pass, arg) {
			pass.Reportf(arg.Pos(), "call passes %s instead of the in-scope context, severing cancellation", exprText(arg))
			continue
		}
		if at == nil {
			continue // unreachable code; nothing to resolve against
		}
		srcs := reach.Sources(arg, at)
		if len(srcs) == 0 {
			continue // unknown origin: stay quiet
		}
		detached := true
		for _, s := range srcs {
			if !isBackgroundCall(pass, s) {
				detached = false
				break
			}
		}
		if detached {
			pass.Reportf(arg.Pos(), "context argument resolves to context.Background()/TODO() on every reaching path, severing cancellation")
		}
	}
	if !hasCtxArg {
		checkSibling(pass, call)
	}
}

// checkSibling flags recv.M(...) when recv also has MCtx/MContext
// taking a context — the call silently opted out of cancellation.
func checkSibling(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	recv := selection.Recv()
	for _, suffix := range []string{"Ctx", "Context"} {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, pass.Pkg, sel.Sel.Name+suffix)
		sib, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig := sib.Type().(*types.Signature)
		if sig.Params().Len() == 0 || !isContext(sig.Params().At(0).Type()) {
			continue
		}
		pass.Reportf(call.Pos(), "%s ignores the in-scope context; use %s to propagate cancellation", sel.Sel.Name, sib.Name())
		return
	}
}

// checkGo flags goroutines that can never observe the context: no
// argument and no captured reference is context-typed.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	call := g.Call
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isContext(tv.Type) {
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && isContext(obj.Type()) {
					found = true
				}
			}
			return true
		})
		if found {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine is spawned without the in-scope context and cannot observe cancellation")
}

// exprText renders the short source form of a context root for the
// diagnostic message.
func exprText(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return "context." + sel.Sel.Name + "()"
		}
	}
	return "a detached context"
}
