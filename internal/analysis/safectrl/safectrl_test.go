package safectrl_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/safectrl"
)

func TestSafeCtrl(t *testing.T) {
	analysistest.Run(t, "testdata", safectrl.Analyzer, "safectrltest")
}

// TestMatchExemptsCoreAndNonInternal: package core is where the grid
// machinery lives, so it is out of scope, as are main packages and the
// public facade.
func TestMatchExemptsCoreAndNonInternal(t *testing.T) {
	if safectrl.Analyzer.Match("repro/internal/core") {
		t.Error(`Match("repro/internal/core") = true, want false`)
	}
	if !safectrl.Analyzer.Match("repro/internal/oran") {
		t.Error(`Match("repro/internal/oran") = false, want true`)
	}
	if safectrl.Analyzer.Match("repro") {
		t.Error(`Match("repro") = true, want false`)
	}
}
