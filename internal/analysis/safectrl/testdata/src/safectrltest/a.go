package safectrltest

import "repro/internal/core"

func controls(grid core.GridSpec) ([]core.Control, error) {
	bad := core.Control{Resolution: 0.5, Airtime: 1, GPUSpeed: 1, MCS: 1} // want `core.Control constructed outside the grid/safe-set machinery`

	zero := core.Control{} // zero-value sentinel: allowed

	snapped := grid.Nearest(core.Control{Resolution: 0.5, Airtime: 0.9, GPUSpeed: 1, MCS: 1}) // immediate projection: allowed

	spec := core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1} // want `core.GridSpec constructed outside the grid/safe-set machinery`

	all, err := core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1}.Enumerate() // validated at construction site: allowed
	if err != nil {
		return nil, err
	}

	//edgebol:allow safectrl -- fixture demonstrates a sanctioned bypass
	waived := core.Control{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1}

	_ = spec
	return append(all, bad, zero, snapped, waived), nil
}
