// Package safectrl guards EdgeBOL's actuation boundary: library code
// must not conjure core.Control or core.GridSpec values out of thin
// air, because a control that never passed through the grid/safe-set
// machinery (GridSpec.Enumerate, Nearest, MaxControl and the safe-set
// filter built on them) can actuate a configuration the safety
// analysis of §5 never admitted.
//
// Flagged: non-empty composite literals of core.Control or
// core.GridSpec in internal library packages (package core itself, test
// files, and main packages are out of scope — the driver restricts the
// package set, and tests must be free to probe arbitrary controls).
//
// Allowed without annotation:
//
//   - the zero literal core.Control{} / core.GridSpec{}, the
//     conventional "no value" sentinel on error paths;
//   - a Control literal passed directly to GridSpec.Nearest, which is
//     exactly the sanctioned projection onto the grid;
//   - a GridSpec literal whose method (Validate, Enumerate, ...) is
//     invoked immediately, so validation happens at the construction
//     site.
//
// Deliberate bypasses (calibration sweeps, serialization boundaries)
// must carry //edgebol:allow safectrl -- <reason>.
package safectrl

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// corePath is the package whose types the check protects.
const corePath = "repro/internal/core"

// Analyzer is the safectrl check.
var Analyzer = &analysis.Analyzer{
	Name: "safectrl",
	Doc:  "forbid core.Control/GridSpec construction that bypasses the grid/safe-set machinery",
	Match: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "repro/internal/") && pkgPath != corePath
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			name := guardedTypeName(pass, lit)
			if name == "" {
				return true
			}
			if len(lit.Elts) == 0 {
				return true // zero-value sentinel (error returns etc.)
			}
			if name == "Control" && feedsNearest(pass, parents, lit) {
				return true // immediately projected onto the grid
			}
			if name == "GridSpec" && methodCalledOnLiteral(parents, lit) {
				return true // validated/enumerated at the construction site
			}
			pass.Reportf(lit.Pos(), "core.%s constructed outside the grid/safe-set machinery; use GridSpec.Enumerate/Nearest/MaxControl, or annotate //edgebol:allow safectrl -- <reason>", name)
			return true
		})
	}
	return nil
}

// guardedTypeName returns "Control" or "GridSpec" when the literal has
// one of the guarded core types, and "" otherwise.
func guardedTypeName(pass *analysis.Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != corePath {
		return ""
	}
	switch named.Obj().Name() {
	case "Control", "GridSpec":
		return named.Obj().Name()
	}
	return ""
}

// feedsNearest reports whether lit (possibly through & or parens) is an
// argument of a call to the Nearest method of core.GridSpec.
func feedsNearest(pass *analysis.Pass, parents map[ast.Node]ast.Node, lit *ast.CompositeLit) bool {
	n := ast.Node(lit)
	for {
		parent := parents[n]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.UnaryExpr:
			n = p
			continue
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg != n {
					continue
				}
				sel, ok := ast.Unparen(p.Fun).(*ast.SelectorExpr)
				if !ok {
					return false
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Name() != "Nearest" {
					return false
				}
				recv := fn.Type().(*types.Signature).Recv()
				if recv == nil {
					return false
				}
				t := recv.Type()
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				named, ok := t.(*types.Named)
				return ok && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == corePath && named.Obj().Name() == "GridSpec"
			}
			return false
		default:
			return false
		}
	}
}

// methodCalledOnLiteral reports whether lit is the receiver of an
// immediate method call, as in core.GridSpec{...}.Enumerate().
func methodCalledOnLiteral(parents map[ast.Node]ast.Node, lit *ast.CompositeLit) bool {
	n := ast.Node(lit)
	if p, ok := parents[n].(*ast.ParenExpr); ok {
		n = p
	}
	sel, ok := parents[n].(*ast.SelectorExpr)
	if !ok {
		return false
	}
	call, ok := parents[sel].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// parentMap records each node's parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
