package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// reportLines runs a pass over src with a trivial analyzer that reports
// one diagnostic per line listed in lines, then returns the lines whose
// diagnostics survived suppression.
func reportLines(t *testing.T, src string, name string, lines []int) map[int]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	a := &Analyzer{Name: name, Doc: "test"}
	var got []Diagnostic
	pass := NewPass(a, fset, []*ast.File{f}, nil, nil, func(d Diagnostic) { got = append(got, d) })
	file := fset.File(f.Pos())
	for _, line := range lines {
		pass.Reportf(file.LineStart(line), "finding on line %d", line)
	}
	surviving := make(map[int]bool)
	for _, d := range got {
		surviving[fset.Position(d.Pos).Line] = true
	}
	return surviving
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	src := strings.Join([]string{
		"package p", // 1
		"//edgebol:allow check -- justified in the test", // 2
		"var a = 1", // 3
		"var b = 2 //edgebol:allow check -- same line", // 4
		"var c = 3", // 5
	}, "\n")
	got := reportLines(t, src, "check", []int{3, 4, 5})
	if got[3] {
		t.Error("line 3: directive on preceding line should suppress")
	}
	if got[4] {
		t.Error("line 4: same-line directive should suppress")
	}
	if !got[5] {
		t.Error("line 5: no directive, diagnostic should survive")
	}
}

func TestAllowDirectiveIsPerAnalyzer(t *testing.T) {
	src := strings.Join([]string{
		"package p", // 1
		"//edgebol:allow other -- different check", // 2
		"var a = 1", // 3
		"//edgebol:allow other,check -- both checks", // 4
		"var b = 2", // 5
	}, "\n")
	got := reportLines(t, src, "check", []int{3, 5})
	if !got[3] {
		t.Error("line 3: directive for a different analyzer must not suppress")
	}
	if got[5] {
		t.Error("line 5: directive listing this analyzer should suppress")
	}
}

func TestAllowDirectiveScopesToSingleLine(t *testing.T) {
	src := strings.Join([]string{
		"package p", // 1
		"//edgebol:allow check -- only the next line", // 2
		"var a = 1", // 3
		"var b = 2", // 4
		"var c = 3", // 5
	}, "\n")
	got := reportLines(t, src, "check", []int{3, 4, 5})
	if got[3] {
		t.Error("line 3: directly below the directive, should be waived")
	}
	if !got[4] || !got[5] {
		t.Error("lines 4-5: a directive waives exactly one line, not a region")
	}
}

func TestAllowDirectiveDoesNotReachAcrossBlankLine(t *testing.T) {
	src := strings.Join([]string{
		"package p", // 1
		"//edgebol:allow check -- detached by the blank line", // 2
		"",          // 3
		"var a = 1", // 4
	}, "\n")
	got := reportLines(t, src, "check", []int{4})
	if !got[4] {
		t.Error("line 4: directive separated by a blank line must not suppress")
	}
}

func TestMultiAnalyzerDirectiveWithSpaces(t *testing.T) {
	src := strings.Join([]string{
		"package p", // 1
		"//edgebol:allow check , other -- spaces around names are fine", // 2
		"var a = 1", // 3
	}, "\n")
	for _, name := range []string{"check", "other"} {
		if reportLines(t, src, name, []int{3})[3] {
			t.Errorf("line 3: %s listed in the directive, should be waived", name)
		}
	}
	if !reportLines(t, src, "third", []int{3})[3] {
		t.Error("line 3: analyzer not in the list must still fire")
	}
}

func TestDirectiveAsLastLineOfDocComment(t *testing.T) {
	// gofmt folds a standalone directive above a declaration into its doc
	// comment group; the waiver must still apply to the declaration line.
	src := strings.Join([]string{
		"package p",                    // 1
		"// F does something numeric.", // 2
		"//",                           // 3
		"//edgebol:allow check -- justified on the decl", // 4
		"func F() {}", // 5
	}, "\n")
	got := reportLines(t, src, "check", []int{5})
	if got[5] {
		t.Error("line 5: directive ending the doc comment should waive the declaration")
	}
}

func TestReasonlessDirectiveGrantsNoWaiver(t *testing.T) {
	src := strings.Join([]string{
		"package p",                // 1
		"//edgebol:allow check",    // 2
		"var a = 1",                // 3
		"//edgebol:allow check --", // 4
		"var b = 2",                // 5
	}, "\n")
	got := reportLines(t, src, "check", []int{3, 5})
	if !got[3] || !got[5] {
		t.Error("directives without a reason must not suppress diagnostics")
	}
}
