// Package errignore flags calls whose error result is silently
// discarded — a call used as a bare statement (or defer/go statement)
// when the callee returns an error.
//
// EdgeBOL's control loop degrades quietly when errors vanish: a failed
// E2 frame write or an unchecked Close on the KPI stream turns into a
// stalled learning curve, not a crash. An ignored error must therefore
// be explicit: assign it to _ (visible in review, greppable) or handle
// it.
//
// Known-infallible writers are exempt so the check stays signal: the
// fmt.Print family writing to stdout, fmt.Fprint* into a *bytes.Buffer
// or *strings.Builder, and methods on those two types (their Write
// methods are documented never to fail).
package errignore

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errignore check.
var Analyzer = &analysis.Analyzer{
	Name: "errignore",
	Doc:  "forbid silently discarded error returns; handle the error or assign it to _ explicitly",
	Match: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "repro/internal/")
	},
	Run: run,
}

// printFamily writes to os.Stdout; by convention its error is ignored.
var printFamily = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

// fprintFamily is exempt only when the destination writer cannot fail.
var fprintFamily = map[string]bool{
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

func run(pass *analysis.Pass) error {
	check := func(call *ast.CallExpr) {
		if call == nil {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || tv.IsType() { // conversion, not a call
			return
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return // builtin such as close/copy
		}
		if !returnsError(sig) {
			return
		}
		name := calleeName(pass, call)
		if printFamily[name] {
			return
		}
		if fprintFamily[name] && len(call.Args) > 0 {
			if isInfallibleWriter(pass.TypesInfo.Types[call.Args[0]].Type) {
				return
			}
		}
		if fn := calleeFunc(pass, call); fn != nil && infallibleReceiver(fn) {
			return
		}
		pass.Reportf(call.Pos(), "result of %s is an error that is silently discarded; handle it or assign to _ explicitly", name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call)
				}
			case *ast.DeferStmt:
				check(s.Call)
			case *ast.GoStmt:
				check(s.Call)
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether any result of sig is the error type.
func returnsError(sig *types.Signature) bool {
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called *types.Func, if statically known.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// calleeName renders a diagnostic-friendly name for the callee:
// "fmt.Println", "conn.Close", or "function value" as a fallback.
func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
			return fn.Name()
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "function value"
}

// infallibleReceiver reports whether fn is a method on *bytes.Buffer or
// *strings.Builder, whose Write-family methods never return an error.
func infallibleReceiver(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return isInfallibleWriter(recv.Type())
}

// isInfallibleWriter reports whether t is (a pointer to) bytes.Buffer
// or strings.Builder.
func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}
