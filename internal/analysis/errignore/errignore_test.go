package errignore_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errignore"
)

func TestErrIgnore(t *testing.T) {
	analysistest.Run(t, "testdata", errignore.Analyzer, "errignoretest")
}

func TestMatchScopesInternalPackages(t *testing.T) {
	if !errignore.Analyzer.Match("repro/internal/oran") {
		t.Error(`Match("repro/internal/oran") = false, want true`)
	}
	// The telemetry subsystem is inside the enforced tree: its exposition
	// writers must assign discarded errors to _ explicitly.
	if !errignore.Analyzer.Match("repro/internal/telemetry") {
		t.Error(`Match("repro/internal/telemetry") = false, want true`)
	}
	if errignore.Analyzer.Match("repro") {
		t.Error(`Match("repro") = true, want false`)
	}
}
