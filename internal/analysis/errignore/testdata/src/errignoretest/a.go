package errignoretest

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fails() error { return nil }

func pair() (int, error) { return 0, nil }

func work(f *os.File, buf *bytes.Buffer, sb *strings.Builder) {
	f.Close()       // want `result of File.Close is an error that is silently discarded`
	defer f.Close() // want `result of File.Close is an error that is silently discarded`
	go f.Sync()     // want `result of File.Sync is an error that is silently discarded`

	fails() // want `result of fails is an error that is silently discarded`
	pair()  // want `result of pair is an error that is silently discarded`

	fmt.Println("ok")     // stdout convention: allowed
	fmt.Fprintf(buf, "x") // infallible writer: allowed
	fmt.Fprintln(sb, "x") // infallible writer: allowed
	fmt.Fprintf(f, "x")   // want `result of fmt.Fprintf is an error that is silently discarded`
	buf.WriteString("x")  // infallible receiver: allowed
	sb.WriteString("x")   // infallible receiver: allowed

	_ = f.Close() // explicit discard: allowed
	if err := fails(); err != nil {
		_ = err
	}

	fn := fails
	fn() // want `result of function value is an error that is silently discarded`

	//edgebol:allow errignore -- fixture demonstrates a justified waiver
	fails()

	noError()
}

func noError() {}
