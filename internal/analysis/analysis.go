// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to express
// EdgeBOL's domain invariants as composable static checks.
//
// The vendored x/tools stack is deliberately avoided — the module has no
// third-party dependencies — so the package defines its own Analyzer /
// Pass / Diagnostic vocabulary and leaves package loading to the driver
// subpackage, which feeds each analyzer fully type-checked syntax trees.
//
// # Suppression directives
//
// A finding can be waived where the code is intentionally outside an
// invariant (e.g. a calibration sweep that probes off-grid controls).
// The directive
//
//	//edgebol:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the flagged line, or on the line immediately above it,
// suppresses the named analyzers' diagnostics for that line. The reason
// after “--” is mandatory: a reasonless directive grants no waiver, so
// the suppressed-in-intent diagnostic keeps firing until the bypass is
// justified in writing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match restricts which packages the driver runs the analyzer on,
	// by import path. A nil Match means every loaded package. The test
	// harness bypasses Match so fixtures can live under any path.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is a single finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	// allowed maps "file:line" to the set of analyzer names waived there.
	allowed map[string]map[string]bool
}

// NewPass assembles a pass and indexes //edgebol:allow directives so
// Reportf can honor them. The report callback receives every diagnostic
// that survives suppression.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
		allowed:   make(map[string]map[string]bool),
	}
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok || len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				// A directive trailing code waives that same line; a
				// standalone directive waives the line below it.
				line := pos.Line
				if !code[line] {
					line++
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, line)
				if p.allowed[key] == nil {
					p.allowed[key] = make(map[string]bool)
				}
				for _, n := range names {
					p.allowed[key][n] = true
				}
			}
		}
	}
	return p
}

// codeLines reports which lines of f contain non-comment tokens, used
// to tell a trailing //edgebol:allow directive from a standalone one.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// parseAllow recognizes //edgebol:allow directives. ok reports whether
// the comment is a directive at all; names is nil for a malformed one.
func parseAllow(text string) (names []string, ok bool) {
	const prefix = "//edgebol:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := text[len(prefix):]
	list, reason, found := strings.Cut(rest, "--")
	if !found || strings.TrimSpace(reason) == "" {
		return nil, true
	}
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, true
	}
	return names, true
}

// Reportf reports a finding at pos unless an allow directive waives it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", position.Filename, position.Line)
	if waived := p.allowed[key]; waived[p.Analyzer.Name] {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
