// Package globalrand forbids the package-level math/rand functions
// (rand.Float64, rand.Intn, rand.Perm, ...) outside main packages.
//
// EdgeBOL's online-learning curves are reproducible only because every
// stochastic component — the testbed channel, the GP hyperparameter
// search, the DDPG exploration noise — draws from an injected, seeded
// *rand.Rand. The global source is process-wide mutable state: one
// stray rand.Float64 in a library desynchronizes every seeded run and
// is invisible in review. Constructors (rand.New, rand.NewSource,
// rand.NewZipf) remain allowed; they are how the seeded generators are
// built. Binaries (package main) may use the global source for
// convenience flags, so they are exempt.
package globalrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// forbidden lists the math/rand (and math/rand/v2) package-level
// functions that draw from the shared global source.
var forbidden = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

// Analyzer is the globalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbid global math/rand functions outside main packages; inject a seeded *rand.Rand",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if forbidden[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; inject a seeded *rand.Rand for reproducibility", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
