package globalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer, "globalrandtest")
}

// TestMainPackagesExempt loads a fixture that is a main package; the
// same calls that fire in a library must be silent there.
func TestMainPackagesExempt(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer, "globalrandmain")
}
