package globalrandtest

import "math/rand"

func draw(r *rand.Rand) float64 {
	x := rand.Float64()                // want `global math/rand source`
	_ = rand.Intn(10)                  // want `global math/rand source`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand source`
	rand.Seed(1)                       // want `global math/rand source`
	_ = rand.Perm(4)                   // want `global math/rand source`

	seeded := rand.New(rand.NewSource(42)) // constructors: allowed
	x += seeded.Float64()                  // method on injected *rand.Rand: allowed
	x += r.Float64()

	//edgebol:allow globalrand -- fixture demonstrates a justified waiver
	x += rand.Float64()
	return x
}
