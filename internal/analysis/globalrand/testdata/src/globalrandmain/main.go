// Command fixtures: binaries may use the global source for quick
// defaults; no diagnostics expected anywhere in this file.
package main

import "math/rand"

func main() {
	_ = rand.Float64()
	_ = rand.Intn(10)
}
