package floateqtest

type myFloat float64

func compare(a, b float64, xs []float64) bool {
	if a == b { // want `floating-point values compared with ==`
		return true
	}
	if a != b { // want `floating-point values compared with !=`
		return false
	}
	zeroOK := a == 0   // exact-zero sentinel: allowed
	nanProbe := a != a // NaN probe: allowed

	var f32 float32
	_ = f32 == 1.5 // want `floating-point values compared with ==`

	var m myFloat
	_ = m == 2 // want `floating-point values compared with ==`

	_ = len(xs) == 0 // integers: allowed

	c := complex(a, b)
	_ = c == 1i // want `floating-point values compared with ==`
	_ = c == 0  // exact-zero complex: allowed

	//edgebol:allow floateq -- fixture demonstrates a justified waiver
	_ = a == b

	//edgebol:allow floateq
	_ = a == b // want `floating-point values compared with ==`

	return zeroOK && nanProbe
}
