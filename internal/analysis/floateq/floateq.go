// Package floateq flags ==/!= between floating-point values in the
// numeric heart of EdgeBOL (the GP posteriors, the Matérn kernel, the
// Cholesky solver, and the safe-set machinery). Rounding error makes
// exact float equality meaningless there: a safe-set membership test
// that hinges on `lcb == threshold` silently flips with the order of a
// dot product.
//
// Two idiomatic exceptions are permitted:
//
//   - comparison against an exact-zero constant (`x == 0`), the
//     conventional "option unset / sparse entry" sentinel;
//   - the self-comparison `x != x`, the standard NaN probe.
//
// Everything else should go through linalg.ApproxEqual(a, b, tol) or an
// explicit |a−b| ≤ tol test.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "forbid exact ==/!= between floating-point values in numeric packages",
	Match: func(pkgPath string) bool {
		switch pkgPath {
		case "repro/internal/gp", "repro/internal/linalg", "repro/internal/core":
			return true
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.TypesInfo.Types[e.X], pass.TypesInfo.Types[e.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if isZeroConst(tx) || isZeroConst(ty) {
				return true
			}
			if e.Op == token.NEQ && isSelfCompare(e.X, e.Y) {
				return true // x != x is the NaN test
			}
			pass.Reportf(e.OpPos, "floating-point values compared with %s; use linalg.ApproxEqual(a, b, tol) or an explicit tolerance", e.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether t is (or aliases) a floating-point or complex
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isZeroConst reports whether the operand is a compile-time constant
// whose numeric value is exactly zero.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float, constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 && constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}

// isSelfCompare reports whether x and y are the same simple expression
// (identifier or dotted selector path), as in `v != v`.
func isSelfCompare(x, y ast.Expr) bool {
	px, ok1 := selectorPath(x)
	py, ok2 := selectorPath(y)
	return ok1 && ok2 && px == py
}

// selectorPath renders an identifier or a.b.c selector chain; other
// expression forms are not considered self-comparable.
func selectorPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := selectorPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return selectorPath(e.X)
	}
	return "", false
}
