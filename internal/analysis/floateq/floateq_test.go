package floateq_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "floateqtest")
}

func TestMatchScopesNumericPackages(t *testing.T) {
	for _, path := range []string{"repro/internal/gp", "repro/internal/linalg", "repro/internal/core"} {
		if !floateq.Analyzer.Match(path) {
			t.Errorf("Match(%q) = false, want true", path)
		}
	}
	for _, path := range []string{"repro/internal/oran", "repro/internal/ran", "repro"} {
		if floateq.Analyzer.Match(path) {
			t.Errorf("Match(%q) = true, want false", path)
		}
	}
}
