package atomicmixtest

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	name   string
}

func (s *stats) hit() { atomic.AddInt64(&s.hits, 1) }

func (s *stats) readPlain() int64 {
	return s.hits // want `plain access to hits`
}

func (s *stats) writePlain() {
	s.hits = 0 // want `plain access to hits`
}

func (s *stats) readAtomic() int64 {
	return atomic.LoadInt64(&s.hits) // the atomic site itself: fine
}

func (s *stats) missesArePlainOnly() int64 {
	s.misses++ // misses is never touched atomically: fine
	return s.misses
}

func (s *stats) nameIsUnrelated() string { return s.name }

var total int64

func bump() { atomic.AddInt64(&total, 1) }

func snapshotWaived() int64 {
	//edgebol:allow atomicmix -- fixture: single-threaded init hook, runs before any goroutine starts
	return total
}

func plainTotal() int64 {
	return total // want `plain access to total`
}
