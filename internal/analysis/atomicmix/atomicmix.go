// Package atomicmix protects the telemetry registry's lock-free
// counters: once any code in a package touches a variable or struct
// field through sync/atomic (atomic.AddUint64(&x.n, 1), ...), every
// other access to that same variable must also be atomic. A single
// plain read — a log line, an expvar dump, a test assertion — is a data
// race that the race detector only catches when the interleaving
// actually happens; this check catches it statically, package-wide.
//
// The analysis is flow-insensitive by design: mixed access is wrong on
// any path, so there is nothing for the CFG to refine. Sites that are
// provably pre-publication (a constructor initializing a field before
// the value escapes) carry //edgebol:allow atomicmix -- <reason>.
//
// Fields of the modern typed atomics (atomic.Uint64 and friends) need
// no checking — their API admits no plain access — so this analyzer is
// only about the legacy pointer-based functions.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicmix check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic anywhere must never be read or written plainly",
	Match: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "repro/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect every variable whose address feeds a sync/atomic
	// call, remembering the identifiers involved so pass 2 can exempt
	// the atomic sites themselves.
	atomicVars := make(map[*types.Var]token.Pos) // var → first atomic site
	atomicSites := make(map[*ast.Ident]bool)     // idents inside &x args of atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				id := baseIdent(un.X)
				if id == nil {
					continue
				}
				if v := varOf(pass, id); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = call.Pos()
					}
					markIdents(un.X, atomicSites)
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: any other use of those variables is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicSites[id] {
				return true
			}
			v := varOf(pass, id)
			if v == nil {
				return true
			}
			if _, isAtomic := atomicVars[v]; !isAtomic {
				return true
			}
			if pass.TypesInfo.Defs[id] != nil {
				return true // the declaration itself is not an access
			}
			pass.Reportf(id.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere in the package; every access must be atomic", id.Name)
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// baseIdent returns the identifier naming the accessed variable: the
// field identifier of a selector chain (x.f → f) or a plain ident.
func baseIdent(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.IndexExpr:
		return baseIdent(e.X)
	}
	return nil
}

// varOf resolves id to the variable object it names (field, package
// var, or local).
func varOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	return v
}

// markIdents records every identifier inside an atomic operand
// expression so pass 2 does not flag the atomic site itself.
func markIdents(e ast.Expr, sites map[*ast.Ident]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			sites[id] = true
		}
		return true
	})
}
