package atomicmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atomicmixtest")
}

func TestMatchScopesInternal(t *testing.T) {
	if !atomicmix.Analyzer.Match("repro/internal/telemetry") {
		t.Error("Match(repro/internal/telemetry) = false, want true")
	}
	if atomicmix.Analyzer.Match("repro") {
		t.Error("Match(repro) = true, want false")
	}
}
