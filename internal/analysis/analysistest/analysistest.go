// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// A fixture lives under <testdata>/src/<pkg>/ and annotates the lines
// expected to be flagged:
//
//	x := a == b // want `compared with ==`
//
// Each backquoted (or double-quoted) string is a regular expression
// that must match exactly one diagnostic reported on that line; any
// diagnostic without a matching expectation, or expectation without a
// matching diagnostic, fails the test.
//
// Fixtures may import standard-library or in-module packages: their
// export data is resolved through `go list -export`, so tests must run
// inside the module (the default for `go test`).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the expectation strings from a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run analyzes the fixture package at <testdata>/src/<pkg> with a and
// reports any mismatch between diagnostics and // want expectations.
// The analyzer's Match filter is intentionally bypassed: package
// scoping is the driver's concern, fixtures exercise the check itself.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	typPkg, info, err := typecheck(fset, files, pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, found := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !found {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("analysistest: bad want pattern %q at %s: %v", expr, pos, err)
					}
					k := key{filepath.Base(pos.Filename), pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, fset, files, typPkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	analysis.SortDiagnostics(fset, diags)

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	var missed []string
	for k, res := range wants {
		for _, re := range res {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Errorf("%s", m)
	}
}

// parseDir parses every .go file directly inside dir.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// typecheck type-checks the fixture, resolving its imports (stdlib or
// in-module) through export data produced by `go list -export`.
func typecheck(fset *token.FileSet, files []*ast.File, pkgPath string) (*types.Package, *types.Info, error) {
	var imports []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		args := append([]string{"list", "-export", "-json", "-deps"}, imports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, nil, fmt.Errorf("go list %v: %v\n%s", imports, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-check fixture %s: %v", pkgPath, err)
	}
	return pkg, info, nil
}
