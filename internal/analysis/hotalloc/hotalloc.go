// Package hotalloc keeps the per-period sweep loops allocation-free.
// PRs 2 and 4 took SelectControl from 20.1 s to 2.67 s largely by
// hoisting every allocation out of the per-candidate loops — flat
// scratch buffers reused across tiles, pre-sliced views, fixed-size
// arrays. One stray make or append inside those loops reintroduces
// garbage pressure that the benchmarks only catch after the damage is
// merged; this check catches it at review time.
//
// The hot set is declared, not guessed: a function whose doc comment
// contains the directive
//
//	//edgebol:hot
//
// is checked, and every allocation inside any of its loops is flagged —
// make, new, append, composite literals, closures, and goroutine
// launches. Allocations before the first loop (per-call scratch setup)
// are fine; that is exactly where the optimized code puts them.
//
// An allocation that is intentional inside a hot loop (a slow path
// taken once, an error path) carries //edgebol:allow hotalloc --
// <reason>. Conversely, a function not yet annotated is not checked:
// the directive is the contract that a function is on the per-period
// path, and reviews of future hot-path work should add it.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "no allocation (make/new/append/literal/closure) inside the loops of //edgebol:hot functions",
	Match: func(pkgPath string) bool {
		switch pkgPath {
		case "repro/internal/gp", "repro/internal/linalg", "repro/internal/core":
			return true
		}
		return false
	},
	Run: run,
}

// Directive is the doc-comment marker that opts a function into the
// check.
const Directive = "//edgebol:hot"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkLoops(pass, fd.Body, false)
		}
	}
	return nil
}

// isHot reports whether the function's doc comment carries the
// directive.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, Directive) {
			return true
		}
	}
	return false
}

// checkLoops walks statements; inLoop tracks whether the walk is inside
// any for/range body, where allocations are flagged.
func checkLoops(pass *analysis.Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				checkLoops(pass, m.Init, inLoop)
			}
			if m.Cond != nil {
				checkLoops(pass, m.Cond, inLoop)
			}
			if m.Post != nil {
				checkLoops(pass, m.Post, inLoop)
			}
			checkLoops(pass, m.Body, true)
			return false
		case *ast.RangeStmt:
			checkLoops(pass, m.X, inLoop)
			checkLoops(pass, m.Body, true)
			return false
		case *ast.FuncLit:
			if inLoop {
				pass.Reportf(m.Pos(), "closure allocated inside a hot loop; hoist it or restructure")
				return false
			}
			// A closure defined outside the loops is per-call setup;
			// its body is still part of the hot path.
			checkLoops(pass, m.Body, false)
			return false
		case *ast.GoStmt:
			if inLoop {
				pass.Reportf(m.Pos(), "goroutine launched inside a hot loop; fan out once per sweep, not per iteration")
			}
			return true
		case *ast.CompositeLit:
			if inLoop {
				pass.Reportf(m.Pos(), "composite literal allocates inside a hot loop; hoist it to per-call scratch")
				return false
			}
		case *ast.CallExpr:
			if !inLoop {
				return true
			}
			if id, ok := m.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make", "new":
					if isBuiltin(pass, id) {
						pass.Reportf(m.Pos(), "%s inside a hot loop; allocate per-call scratch before the loop", id.Name)
					}
				case "append":
					if isBuiltin(pass, id) {
						pass.Reportf(m.Pos(), "append inside a hot loop may grow its backing array; pre-size the buffer before the loop")
					}
				}
			}
		}
		return true
	})
}

// isBuiltin reports whether id resolves to the universe-scope builtin
// of the same name (not a shadowing local).
func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return true // builtins often have no Uses entry; trust the name
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}
