package hotalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotalloctest")
}

func TestMatchScopesNumericPackages(t *testing.T) {
	for _, pkg := range []string{"repro/internal/gp", "repro/internal/linalg", "repro/internal/core"} {
		if !hotalloc.Analyzer.Match(pkg) {
			t.Errorf("Match(%s) = false, want true", pkg)
		}
	}
	if hotalloc.Analyzer.Match("repro/internal/oran") {
		t.Error("Match(repro/internal/oran) = true, want false")
	}
}
