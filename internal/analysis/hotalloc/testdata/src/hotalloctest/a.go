package hotalloctest

type point struct{ x, y int }

//edgebol:hot
func hotSweep(xs []float64, out []float64) {
	buf := make([]float64, 8) // before the loop: fine
	for i := range xs {
		tmp := make([]float64, 4) // want `make inside a hot loop`
		_ = tmp
		out[i] = xs[i] + buf[0]
	}
}

//edgebol:hot
func hotAppend(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		out = append(out, x) // want `append inside a hot loop`
	}
	return out
}

//edgebol:hot
func hotClosure(xs []float64) {
	double := func(v float64) float64 { return v * 2 } // hoisted: fine
	for i := range xs {
		f := func() {} // want `closure allocated inside a hot loop`
		f()
		xs[i] = double(xs[i])
	}
}

//edgebol:hot
func hotGo(xs []float64, ch chan float64) {
	for _, x := range xs {
		go send(ch, x) // want `goroutine launched inside a hot loop`
	}
}

func send(ch chan float64, x float64) { ch <- x }

//edgebol:hot
func hotLiteral(n int) {
	var p point
	for i := 0; i < n; i++ {
		p = point{i, i} // want `composite literal allocates inside a hot loop`
	}
	_ = p
}

//edgebol:hot
func hotWaived(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x < 0 {
			//edgebol:allow hotalloc -- fixture: error path, taken at most once per sweep
			out = append(out, -x)
			continue
		}
		out = out[:len(out)+1]
		out[len(out)-1] = x
	}
	return out
}

// Not annotated: allocations in its loops are not the per-period path.
func coldAlloc(xs []float64) [][]float64 {
	var out [][]float64
	for _, x := range xs {
		out = append(out, []float64{x})
	}
	return out
}
