// Package lockhold forbids blocking while holding a mutex. The O-RAN
// control plane serializes its connection tables behind sync.Mutex; a
// channel receive, a network write, or a testbed measurement performed
// inside the critical section turns a slow peer into a wedged control
// plane — every other period blocks on the lock, and the agent's
// learning loop stalls without any error surfacing.
//
// The analysis runs a forward may-held dataflow over each function's
// control-flow graph: Lock/RLock on a sync.Mutex or sync.RWMutex adds
// the receiver path to the held set, Unlock/RUnlock removes it, block
// entry states merge by union (held on any path counts), and a
// deferred Unlock releases nothing — the lock stays held to function
// exit, which is exactly the semantics of the lock-then-defer idiom.
//
// Blocking operations flagged while any mutex may be held:
//
//   - channel sends and receives, except the comm clauses of a select
//     that has a default (those never block);
//   - time.Sleep, sync.WaitGroup.Wait, sync.Cond.Wait;
//   - calls into package net or net/http (dials, conn reads/writes);
//   - calls to methods named Measure or MeasureCtx — the testbed's
//     measurement path, which spans a full control period.
//
// Critical sections that must block by design (a condition-variable
// handshake, a bounded handoff under lock) carry
// //edgebol:allow lockhold -- <reason>.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer is the lockhold check.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no blocking channel op, network call, or testbed measurement while a mutex is held",
	Match: func(pkgPath string) bool {
		return strings.HasPrefix(pkgPath, "repro/internal/")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// lockSet is the set of held mutexes, keyed by the receiver expression
// path ("s.mu", "tbl.locks[i]" renders as "tbl.locks").
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s lockSet) mergeFrom(o lockSet) bool {
	grew := false
	for k := range o {
		if !s[k] {
			s[k] = true
			grew = true
		}
	}
	return grew
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	// nonBlocking marks the comm operations of selects that have a
	// default clause: those sends/receives never block.
	nonBlocking := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are analyzed as their own functions
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					nonBlocking[comm] = true
				}
			}
		}
		return true
	})

	// Forward may-held dataflow to a fixpoint at block granularity.
	in := make(map[*cfg.Block]lockSet)
	for _, blk := range g.Blocks {
		in[blk] = make(lockSet)
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			out := in[blk].clone()
			for _, n := range blk.Nodes {
				applyLocks(pass, n, out)
			}
			for _, succ := range blk.Succs {
				if in[succ].mergeFrom(out) {
					changed = true
				}
			}
		}
	}
	// Report pass: replay each block, checking every node against the
	// held set in flow order before applying its own lock effects.
	for _, blk := range g.Blocks {
		held := in[blk].clone()
		for _, n := range blk.Nodes {
			if len(held) > 0 {
				reportBlocking(pass, n, held, nonBlocking)
			}
			applyLocks(pass, n, held)
		}
	}
}

// applyLocks updates the held set with n's Lock/Unlock effects. A
// deferred Unlock is ignored: it releases at return, not here.
func applyLocks(pass *analysis.Pass, n ast.Node, held lockSet) {
	cfg.Inspect(n, func(m ast.Node) bool {
		if _, isDefer := m.(*ast.DeferStmt); isDefer {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, key, ok := mutexOp(pass, call)
		if !ok {
			return true
		}
		switch name {
		case "Lock", "RLock":
			held[key] = true
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return true
	})
}

// mutexOp recognizes a call to (*sync.Mutex)/(*sync.RWMutex) Lock,
// RLock, Unlock, or RUnlock and returns the method name and the
// rendered receiver path.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (name, key string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rt := recv.Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	if tn := named.Obj().Name(); tn != "Mutex" && tn != "RWMutex" {
		return "", "", false
	}
	return sel.Sel.Name, exprPath(sel.X), true
}

// reportBlocking flags the blocking operations inside a block-level
// node, given the currently held locks.
func reportBlocking(pass *analysis.Pass, n ast.Node, held lockSet, nonBlocking map[ast.Node]bool) {
	if nonBlocking[n] {
		return
	}
	heldNames := make([]string, 0, len(held))
	for k := range held {
		heldNames = append(heldNames, k)
	}
	mutexes := strings.Join(heldNames, ", ")
	cfg.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			if !nonBlocking[ast.Node(m)] {
				pass.Reportf(m.Arrow, "channel send while %s is held; a full buffer wedges the critical section", mutexes)
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				pass.Reportf(m.OpPos, "channel receive while %s is held; a silent peer wedges the critical section", mutexes)
			}
		case *ast.CallExpr:
			if why, blocking := blockingCall(pass, m); blocking {
				pass.Reportf(m.Pos(), "%s while %s is held", why, mutexes)
			}
		}
		return true
	})
}

// blockingCall classifies calls that can block indefinitely or for a
// full control period.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if pkg := obj.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "time":
			if name == "Sleep" {
				return "time.Sleep", true
			}
		case "sync":
			if name == "Wait" {
				return "sync." + recvTypeName(obj) + ".Wait", true
			}
		case "net", "net/http":
			// Teardown and metadata calls complete without waiting on
			// the peer; closing connections under the state lock is the
			// idiomatic shutdown sequence, not a hold-and-wait hazard.
			switch name {
			case "Close", "LocalAddr", "RemoteAddr", "Addr",
				"SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				return "", false
			}
			return "network call " + pkg.Path() + "." + name, true
		}
	}
	if name == "Measure" || name == "MeasureCtx" {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "testbed measurement " + name, true
		}
	}
	return "", false
}

func recvTypeName(f *types.Func) string {
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// exprPath renders a receiver expression as a stable key: identifiers
// and selector chains keep their spelling, everything else collapses to
// its outermost path component.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprPath(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		return exprPath(e.X)
	case *ast.CallExpr:
		return exprPath(e.Fun) + "()"
	}
	return "mutex"
}
