package lockhold_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "lockholdtest")
}

func TestMatchScopesInternal(t *testing.T) {
	if !lockhold.Analyzer.Match("repro/internal/telemetry") {
		t.Error("Match(repro/internal/telemetry) = false, want true")
	}
	if lockhold.Analyzer.Match("repro") {
		t.Error("Match(repro) = true, want false")
	}
}
