package lockholdtest

import (
	"net"
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	v  int
}

type probe struct{}

func (probe) Measure(x int) int { return x }

func (b *box) recvUnderLock() {
	b.mu.Lock()
	<-b.ch // want `channel receive while b.mu is held`
	b.mu.Unlock()
}

func (b *box) sendAfterUnlock() {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
	b.ch <- 1 // released first: fine
}

func (b *box) deferHoldsToExit(p probe) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p.Measure(b.v) // want `testbed measurement Measure while b.mu is held`
}

func (b *box) sleepUnderRLock() {
	b.rw.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep while b.rw is held`
	b.rw.RUnlock()
}

func (b *box) wgWait(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want `sync.WaitGroup.Wait while b.mu is held`
	b.mu.Unlock()
}

func (b *box) selectWithDefault() {
	b.mu.Lock()
	select {
	case v := <-b.ch: // non-blocking poll: fine
		b.v = v
	default:
	}
	b.mu.Unlock()
}

func (b *box) selectWithoutDefault() {
	b.mu.Lock()
	select {
	case v := <-b.ch: // want `channel receive while b.mu is held`
		b.v = v
	case b.ch <- 1: // want `channel send while b.mu is held`
	}
	b.mu.Unlock()
}

func (b *box) dialUnderLock() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := net.Dial("tcp", "localhost:1") // want `network call net.Dial while b.mu is held`
	return err
}

func (b *box) mayHold(cond bool) {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
	}
	<-b.ch // want `channel receive while b.mu is held`
}

func (b *box) fullyReleased(cond bool) {
	b.mu.Lock()
	if cond {
		b.v++
	}
	b.mu.Unlock()
	<-b.ch // released on every path: fine
}

func (b *box) closeUnderLock(c net.Conn) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return c.Close() // teardown is non-blocking: fine
}

func (b *box) waivedHandoff() {
	b.mu.Lock()
	//edgebol:allow lockhold -- fixture: bounded handoff, receiver drains promptly by contract
	b.ch <- b.v
	b.mu.Unlock()
}
