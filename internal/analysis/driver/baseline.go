// Baseline support: a committed JSON file of accepted findings that the
// lint run subtracts before deciding its exit code. Entries are keyed by
// (analyzer, file, message) with a count — deliberately line-number
// independent, so unrelated edits that shift code do not invalidate the
// baseline, while a *new* instance of a baselined message in the same
// file still fires once the count is exceeded.
package driver

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineVersion is the format version written to baseline files.
const BaselineVersion = 1

// Baseline is the on-disk accepted-findings set.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry accepts Count findings with this analyzer, file, and
// message.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

type baselineKey struct {
	analyzer, file, message string
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline (the state before the first -write-baseline run), any other
// read or decode failure is an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: BaselineVersion}, nil
	} else if err != nil {
		return nil, fmt.Errorf("driver: read baseline: %v", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("driver: parse baseline %s: %v", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("driver: baseline %s has version %d, want %d", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// Filter splits findings into those not covered by the baseline (kept,
// in input order) and the number suppressed. Each entry suppresses at
// most Count matching findings.
func (b *Baseline) Filter(findings []Finding) (kept []Finding, suppressed int) {
	budget := make(map[baselineKey]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, f := range findings {
		k := baselineKey{f.Analyzer, f.File, f.Message}
		if budget[k] > 0 {
			budget[k]--
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// NewBaseline aggregates findings into a baseline, entries sorted by
// (file, analyzer, message) for stable diffs.
func NewBaseline(findings []Finding) *Baseline {
	counts := make(map[baselineKey]int)
	for _, f := range findings {
		counts[baselineKey{f.Analyzer, f.File, f.Message}]++
	}
	keys := make([]baselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.message < b.message
	})
	b := &Baseline{Version: BaselineVersion, Findings: make([]BaselineEntry, 0, len(keys))}
	for _, k := range keys {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: k.analyzer,
			File:     k.file,
			Message:  k.message,
			Count:    counts[k],
		})
	}
	return b
}

// WriteBaselineFile writes the baseline for findings to path,
// indented for reviewable diffs.
func WriteBaselineFile(path string, findings []Finding) error {
	data, err := json.MarshalIndent(NewBaseline(findings), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
