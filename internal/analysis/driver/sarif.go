// SARIF 2.1.0 output for CI code-scanning upload. Only the slice of the
// format that consumers actually read is emitted: one run, one rule per
// analyzer, one result per finding with a single physical location.
package driver

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
)

// sarifLog mirrors the SARIF 2.1.0 envelope.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifToolDriver `json:"driver"`
}

type sarifToolDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as an indented SARIF 2.1.0 log. Every
// analyzer appears as a rule (so suites with zero findings still
// document what ran); findings keep their pre-sorted order.
func WriteSARIF(w io.Writer, analyzers []*analysis.Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifToolDriver{Name: "edgebol-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
