package driver

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

func TestBaselineFilterCounts(t *testing.T) {
	b := &Baseline{Version: BaselineVersion, Findings: []BaselineEntry{
		{Analyzer: "floateq", File: "a.go", Message: "compared with ==", Count: 2},
	}}
	findings := []Finding{
		{Analyzer: "floateq", File: "a.go", Line: 3, Message: "compared with =="},
		{Analyzer: "floateq", File: "a.go", Line: 9, Message: "compared with =="},
		{Analyzer: "floateq", File: "a.go", Line: 12, Message: "compared with =="},
		{Analyzer: "floateq", File: "b.go", Line: 1, Message: "compared with =="},
	}
	kept, suppressed := b.Filter(findings)
	if suppressed != 2 {
		t.Errorf("suppressed = %d, want 2", suppressed)
	}
	if len(kept) != 2 {
		t.Fatalf("kept = %d findings, want 2", len(kept))
	}
	// Count exhausted: the third a.go instance fires, as does the b.go
	// one (different file, never baselined).
	if kept[0].Line != 12 || kept[1].File != "b.go" {
		t.Errorf("kept = %v, want lines 12 (a.go) and 1 (b.go)", kept)
	}
}

func TestBaselineLineIndependence(t *testing.T) {
	b := NewBaseline([]Finding{
		{Analyzer: "errignore", File: "x.go", Line: 10, Message: "error ignored"},
	})
	// The same finding at a different line is still suppressed.
	kept, suppressed := b.Filter([]Finding{
		{Analyzer: "errignore", File: "x.go", Line: 99, Message: "error ignored"},
	})
	if len(kept) != 0 || suppressed != 1 {
		t.Errorf("kept=%d suppressed=%d, want 0/1: baseline must be line-independent", len(kept), suppressed)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	findings := []Finding{
		{Analyzer: "globalrand", File: "b.go", Line: 4, Message: "uses global rand"},
		{Analyzer: "floateq", File: "a.go", Line: 7, Message: "compared with =="},
		{Analyzer: "globalrand", File: "b.go", Line: 9, Message: "uses global rand"},
	}
	if err := WriteBaselineFile(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("entries = %d, want 2 (aggregated)", len(b.Findings))
	}
	// Sorted by file: a.go before b.go; counts aggregated.
	if b.Findings[0].File != "a.go" || b.Findings[1].Count != 2 {
		t.Errorf("entries = %+v, want a.go first and b.go count 2", b.Findings)
	}
	kept, suppressed := b.Filter(findings)
	if len(kept) != 0 || suppressed != 3 {
		t.Errorf("round trip: kept=%d suppressed=%d, want 0/3", len(kept), suppressed)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatalf("missing baseline should be empty, got error: %v", err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline has %d findings, want 0", len(b.Findings))
	}
}

func TestLoadBaselineRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("version 99 accepted, want error")
	}
}

func TestWriteSARIF(t *testing.T) {
	analyzers := []*analysis.Analyzer{
		{Name: "floateq", Doc: "flags == on floats"},
		{Name: "errignore", Doc: "flags dropped errors"},
	}
	findings := []Finding{
		{Analyzer: "floateq", File: "internal/gp/gp.go", Line: 42, Col: 7, Message: "compared with =="},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, analyzers, findings); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "edgebol-lint" {
		t.Errorf("tool name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Errorf("rules = %d, want 2 (all analyzers listed even without findings)", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "floateq" || r.Level != "warning" {
		t.Errorf("result = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/gp/gp.go" || loc.Region.StartLine != 42 {
		t.Errorf("location = %+v", loc)
	}
}

func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", File: "z.go", Line: 1, Col: 1},
		{Analyzer: "a", File: "a.go", Line: 9, Col: 1},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 5},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 1},
	}
	SortFindings(fs)
	want := []Finding{
		{Analyzer: "a", File: "a.go", Line: 2, Col: 1},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 5},
		{Analyzer: "a", File: "a.go", Line: 9, Col: 1},
		{Analyzer: "b", File: "z.go", Line: 1, Col: 1},
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Errorf("fs[%d] = %v, want %v", i, fs[i], want[i])
		}
	}
}
