// Package driver loads, type-checks, and analyzes packages of this
// module without golang.org/x/tools: it shells out to `go list -export`
// for package metadata and compiled export data, parses each target
// package's source, and type-checks it against the export data of its
// dependencies via the standard library's gc importer.
//
// Only non-test Go files are analyzed: the analyzers gate production
// code paths, while test files remain covered by `go vet` and the test
// suite itself.
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Options configure one analysis run.
type Options struct {
	// Dir is the working directory for `go list` (any directory inside
	// the module). Empty means the current directory.
	Dir string
	// Patterns are `go list` package patterns, e.g. "./...".
	Patterns []string
	// Analyzers are the checks to run on every matched package.
	Analyzers []*analysis.Analyzer
}

// Run analyzes the matched packages and writes one line per diagnostic
// to w in "file:line:col: analyzer: message" form. It returns the
// number of diagnostics. A non-nil error means the run itself failed
// (load or type-check error), independent of any findings.
func Run(opts Options, w io.Writer) (int, error) {
	if len(opts.Analyzers) == 0 {
		return 0, errors.New("driver: no analyzers")
	}
	pkgs, exports, err := load(opts.Dir, opts.Patterns)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	total := 0
	for _, p := range pkgs {
		n, err := analyzePackage(fset, imp, p, opts.Analyzers, w)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// load runs `go list -export -json -deps` and splits the result into
// target packages (in-module, non-test) and an export-data index for
// every dependency, keyed by import path.
func load(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("driver: go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("driver: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("driver: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// exportImporter returns a types.Importer that resolves every import
// from the compiled export data `go list -export` produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// analyzePackage parses and type-checks one package, then runs every
// analyzer whose Match accepts the package's import path.
func analyzePackage(fset *token.FileSet, imp types.Importer, p listPackage, analyzers []*analysis.Analyzer, w io.Writer) (int, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return 0, fmt.Errorf("driver: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return 0, fmt.Errorf("driver: type-check %s: %v", p.ImportPath, err)
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(p.ImportPath) {
			continue
		}
		pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return 0, fmt.Errorf("driver: %s on %s: %v", a.Name, p.ImportPath, err)
		}
	}
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if _, err := fmt.Fprintf(w, "%s: %s: %s\n", relPosition(pos), d.Analyzer, d.Message); err != nil {
			return 0, fmt.Errorf("driver: write diagnostic: %v", err)
		}
	}
	return len(diags), nil
}

// relPosition renders a position relative to the working directory when
// possible, for shorter and editor-clickable output.
func relPosition(pos token.Position) string {
	wd, err := os.Getwd()
	if err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos.String()
}
