// Package driver loads, type-checks, and analyzes packages of this
// module without golang.org/x/tools: it shells out to `go list -export`
// for package metadata and compiled export data, parses each target
// package's source, and type-checks it against the export data of its
// dependencies via the standard library's gc importer.
//
// Only non-test Go files are analyzed: the analyzers gate production
// code paths, while test files remain covered by `go vet` and the test
// suite itself.
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Finding is one rendered diagnostic: position flattened to a
// wd-relative path so output is stable and editor-clickable regardless
// of where the FileSet lives.
type Finding struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

// String renders the finding in the classic "file:line:col: analyzer:
// message" form used by the text output.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// SortFindings orders findings by file, line, column, analyzer, message
// — the stable order every output format relies on.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Options configure one analysis run.
type Options struct {
	// Dir is the working directory for `go list` (any directory inside
	// the module). Empty means the current directory.
	Dir string
	// Patterns are `go list` package patterns, e.g. "./...".
	Patterns []string
	// Analyzers are the checks to run on every matched package.
	Analyzers []*analysis.Analyzer
}

// Run analyzes the matched packages and writes one line per diagnostic
// to w in "file:line:col: analyzer: message" form. It returns the
// number of diagnostics. A non-nil error means the run itself failed
// (load or type-check error), independent of any findings.
func Run(opts Options, w io.Writer) (int, error) {
	findings, err := Collect(opts)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return 0, fmt.Errorf("driver: write diagnostic: %v", err)
		}
	}
	return len(findings), nil
}

// Collect analyzes the matched packages and returns every diagnostic as
// a structured Finding, sorted by position. Output formatting (text,
// SARIF) and baseline filtering layer on top of this.
func Collect(opts Options) ([]Finding, error) {
	if len(opts.Analyzers) == 0 {
		return nil, errors.New("driver: no analyzers")
	}
	pkgs, exports, err := load(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var findings []Finding
	for _, p := range pkgs {
		fs, err := analyzePackage(fset, imp, p, opts.Analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	SortFindings(findings)
	return findings, nil
}

// load runs `go list -export -json -deps` and splits the result into
// target packages (in-module, non-test) and an export-data index for
// every dependency, keyed by import path.
func load(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("driver: go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("driver: decode go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("driver: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// exportImporter returns a types.Importer that resolves every import
// from the compiled export data `go list -export` produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// analyzePackage parses and type-checks one package, then runs every
// analyzer whose Match accepts the package's import path.
func analyzePackage(fset *token.FileSet, imp types.Importer, p listPackage, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("driver: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-check %s: %v", p.ImportPath, err)
	}
	var findings []Finding
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(p.ImportPath) {
			continue
		}
		name := a.Name
		pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			findings = append(findings, Finding{
				Analyzer: name,
				File:     relFile(pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: %s on %s: %v", a.Name, p.ImportPath, err)
		}
	}
	return findings, nil
}

// relFile renders a filename relative to the working directory when
// possible, for shorter and editor-clickable output.
func relFile(name string) string {
	wd, err := os.Getwd()
	if err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}
