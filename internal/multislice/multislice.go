// Package multislice implements the deployment architecture §4.4 argues
// for: multiple edge AI services, each hosted by a pre-configured network
// slice with its own radio-airtime budget and GPU share, and one EdgeBOL
// agent per slice optimizing *within* its partition.
//
// The paper rejects a single joint optimizer across services — the
// context-action dimensionality (4S + 3) makes the learning data demand
// grow exponentially — and notes slices are re-configured on much slower
// timescales than the per-second control loop. This package follows that
// design: slice budgets are static inputs, and the per-slice agents remain
// four-dimensional regardless of the number of services.
package multislice

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// SliceConfig describes one service slice.
type SliceConfig struct {
	// Name labels the slice.
	Name string
	// AirtimeBudget is the slice's share of the carrier's uplink airtime;
	// budgets across slices must sum to at most 1. The slice agent's
	// airtime policy is relative to this budget.
	AirtimeBudget float64
	// GPUShare is the slice's share of the edge server's GPU capacity
	// (enforced by the server's scheduler); shares must sum to at most 1.
	GPUShare float64
	// Users is the slice's UE population.
	Users []ran.User
	// Weights and Constraints define the slice's own optimization problem.
	Weights     core.CostWeights
	Constraints core.Constraints
}

// Validate reports whether the slice configuration is usable.
func (c SliceConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("multislice: slice needs a name")
	}
	if c.AirtimeBudget <= 0 || c.AirtimeBudget > 1 {
		return fmt.Errorf("multislice: %s: airtime budget %v outside (0,1]", c.Name, c.AirtimeBudget)
	}
	if c.GPUShare <= 0 || c.GPUShare > 1 {
		return fmt.Errorf("multislice: %s: GPU share %v outside (0,1]", c.Name, c.GPUShare)
	}
	if len(c.Users) == 0 {
		return fmt.Errorf("multislice: %s: no users", c.Name)
	}
	if err := c.Constraints.Validate(); err != nil {
		return fmt.Errorf("multislice: %s: %w", c.Name, err)
	}
	if c.Weights.Delta1 < 0 || c.Weights.Delta2 < 0 || (c.Weights.Delta1 == 0 && c.Weights.Delta2 == 0) {
		return fmt.Errorf("multislice: %s: invalid weights %+v", c.Name, c.Weights)
	}
	return nil
}

// SliceEnv is the core.Environment a slice's agent sees: the shared
// substrate through the lens of the slice's partition. The agent's airtime
// policy scales within the budget, the GPU appears GPUShare as fast, and
// the power KPIs attribute idle draw proportionally to the partition so
// per-slice costs sum coherently.
type SliceEnv struct {
	cfg SliceConfig
	tb  *testbed.Testbed

	bsIdleW     float64
	serverIdleW float64
}

// Measure implements core.Environment.
func (s *SliceEnv) Measure(x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	scaled := x
	scaled.Airtime = x.Airtime * s.cfg.AirtimeBudget
	k, err := s.tb.Measure(scaled)
	if err != nil {
		return core.KPIs{}, err
	}
	return s.attribute(k), nil
}

// Expected returns the slice's noise-free surface for oracle comparisons.
func (s *SliceEnv) Expected(x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	scaled := x
	scaled.Airtime = x.Airtime * s.cfg.AirtimeBudget
	k, err := s.tb.Expected(scaled)
	if err != nil {
		return core.KPIs{}, err
	}
	return s.attribute(k), nil
}

// attribute converts machine-level power readings into the slice's share:
// the dynamic part is caused by this slice's traffic alone (the substrate
// below simulates only this slice), while idle draw is split by partition
// size so that Σ_slices power ≈ machine power.
func (s *SliceEnv) attribute(k core.KPIs) core.KPIs {
	k.BSPower = s.bsIdleW*s.cfg.AirtimeBudget + (k.BSPower - s.bsIdleW)
	k.ServerPower = s.serverIdleW*s.cfg.GPUShare + (k.ServerPower - s.serverIdleW)
	return k
}

// Context implements core.Environment.
func (s *SliceEnv) Context() core.Context { return s.tb.Context() }

// Config returns the slice configuration the environment was built from.
func (s *SliceEnv) Config() SliceConfig { return s.cfg }

// Testbed returns the underlying per-slice substrate, e.g. for attaching
// telemetry via Testbed.Instrument.
func (s *SliceEnv) Testbed() *testbed.Testbed { return s.tb }

// NewSliceEnv builds one slice's environment over its own partition of the
// shared substrate: a testbed whose GPU runs GPUShare as fast, wrapped in
// the airtime-budget scaling and idle-power attribution lens. This is the
// per-cell building block System and fleet.Fleet share; unlike New it does
// not validate cross-slice budget sums — the caller owns that invariant.
func NewSliceEnv(base testbed.Config, sc SliceConfig, seed int64) (*SliceEnv, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := base
	// The slice sees a GPU that is GPUShare as fast: the server's
	// scheduler grants it that fraction of cycles.
	cfg.Edge.BaseServiceTime = base.Edge.BaseServiceTime / sc.GPUShare
	tb, err := testbed.New(cfg, sc.Users, seed)
	if err != nil {
		return nil, fmt.Errorf("multislice: %s: %w", sc.Name, err)
	}
	bsIdle, _ := ran.BSPowerRange()
	serverIdle := cfg.Edge.ServerIdleW + float64(cfg.Edge.PoolSize())*cfg.Edge.GPUIdleW
	return &SliceEnv{cfg: sc, tb: tb, bsIdleW: bsIdle, serverIdleW: serverIdle}, nil
}

// Slice couples a slice's environment with its EdgeBOL agent.
type Slice struct {
	Config SliceConfig
	Env    *SliceEnv
	Agent  *core.Agent
}

// System is a set of slices over one shared machine room.
type System struct {
	Slices []*Slice
}

// New builds the system: per-slice testbeds reflecting each partition plus
// per-slice agents. base supplies the shared substrate parameters.
func New(base testbed.Config, grid core.GridSpec, slices []SliceConfig, seed int64) (*System, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("multislice: no slices")
	}
	var airtimeSum, gpuSum float64
	for _, sc := range slices {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		airtimeSum += sc.AirtimeBudget
		gpuSum += sc.GPUShare
	}
	if airtimeSum > 1+1e-9 {
		return nil, fmt.Errorf("multislice: airtime budgets sum to %v > 1", airtimeSum)
	}
	if gpuSum > 1+1e-9 {
		return nil, fmt.Errorf("multislice: GPU shares sum to %v > 1", gpuSum)
	}
	sys := &System{}
	for i, sc := range slices {
		env, err := NewSliceEnv(base, sc, seed+int64(i)*977)
		if err != nil {
			return nil, err
		}
		agent, err := core.NewAgent(core.Options{
			Grid:        grid,
			Weights:     sc.Weights,
			Constraints: sc.Constraints,
		})
		if err != nil {
			return nil, fmt.Errorf("multislice: %s: %w", sc.Name, err)
		}
		sys.Slices = append(sys.Slices, &Slice{Config: sc, Env: env, Agent: agent})
	}
	return sys, nil
}

// PeriodResult is one slice's outcome in a control period.
type PeriodResult struct {
	Slice   string
	Control core.Control
	KPIs    core.KPIs
	Info    core.SelectionInfo
}

// Step runs one control period: every slice's agent selects, measures, and
// learns within its own partition.
func (s *System) Step() ([]PeriodResult, error) {
	out := make([]PeriodResult, 0, len(s.Slices))
	for _, sl := range s.Slices {
		x, k, info, err := sl.Agent.Step(sl.Env)
		if err != nil {
			return out, fmt.Errorf("multislice: %s: %w", sl.Config.Name, err)
		}
		out = append(out, PeriodResult{Slice: sl.Config.Name, Control: x, KPIs: k, Info: info})
	}
	return out, nil
}

// TotalCost sums the slices' attributed costs for one period's results.
func TotalCost(results []PeriodResult, slices []*Slice) float64 {
	var sum float64
	for i, r := range results {
		sum += slices[i].Config.Weights.Cost(r.KPIs)
	}
	return sum
}
