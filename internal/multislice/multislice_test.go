package multislice

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func twoSlices() []SliceConfig {
	return []SliceConfig{
		{
			Name:          "surveillance",
			AirtimeBudget: 0.6,
			GPUShare:      0.6,
			Users:         []ran.User{{SNRdB: 35}},
			Weights:       core.CostWeights{Delta1: 1, Delta2: 1},
			Constraints:   core.Constraints{MaxDelay: 0.6, MinMAP: 0.5},
		},
		{
			Name:          "inspection",
			AirtimeBudget: 0.4,
			GPUShare:      0.4,
			Users:         []ran.User{{SNRdB: 30}},
			Weights:       core.CostWeights{Delta1: 1, Delta2: 4},
			Constraints:   core.Constraints{MaxDelay: 1.0, MinMAP: 0.4},
		},
	}
}

func grid() core.GridSpec {
	return core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1}
}

func TestNewValidation(t *testing.T) {
	base := testbed.DefaultConfig()
	if _, err := New(base, grid(), nil, 1); err == nil {
		t.Fatal("expected error for no slices")
	}
	bad := twoSlices()
	bad[0].AirtimeBudget = 0.9 // sums to 1.3
	if _, err := New(base, grid(), bad, 1); err == nil {
		t.Fatal("expected error for oversubscribed airtime")
	}
	bad = twoSlices()
	bad[1].GPUShare = 0.7 // sums to 1.3
	if _, err := New(base, grid(), bad, 1); err == nil {
		t.Fatal("expected error for oversubscribed GPU")
	}
	bad = twoSlices()
	bad[0].Name = ""
	if _, err := New(base, grid(), bad, 1); err == nil {
		t.Fatal("expected error for unnamed slice")
	}
	bad = twoSlices()
	bad[0].Users = nil
	if _, err := New(base, grid(), bad, 1); err == nil {
		t.Fatal("expected error for userless slice")
	}
}

func TestSliceEnvScalesAirtime(t *testing.T) {
	sys, err := New(testbed.DefaultConfig(), grid(), twoSlices(), 1)
	if err != nil {
		t.Fatal(err)
	}
	env := sys.Slices[1].Env // 40% budget
	full, err := env.Expected(core.Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 1, MCS: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Against a raw testbed with the same users, the slice's "full
	// airtime" must behave like 40% machine airtime: higher delay.
	raw, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 30}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	machineFull, err := raw.Expected(core.Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 1, MCS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Delay <= machineFull.Delay {
		t.Fatalf("slice-relative airtime not scaled: slice %v vs machine %v", full.Delay, machineFull.Delay)
	}
}

func TestSliceGPUShareSlowsService(t *testing.T) {
	sys, err := New(testbed.DefaultConfig(), grid(), twoSlices(), 1)
	if err != nil {
		t.Fatal(err)
	}
	x := core.Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 1, MCS: 1}
	big, err := sys.Slices[0].Env.Expected(x) // 60% GPU
	if err != nil {
		t.Fatal(err)
	}
	small, err := sys.Slices[1].Env.Expected(x) // 40% GPU
	if err != nil {
		t.Fatal(err)
	}
	if small.GPUDelay <= big.GPUDelay {
		t.Fatalf("smaller GPU share should mean slower service: %v vs %v", small.GPUDelay, big.GPUDelay)
	}
}

func TestPowerAttributionSumsSensibly(t *testing.T) {
	sys, err := New(testbed.DefaultConfig(), grid(), twoSlices(), 1)
	if err != nil {
		t.Fatal(err)
	}
	x := core.Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 1, MCS: 1}
	var bsSum, serverSum float64
	for _, sl := range sys.Slices {
		k, err := sl.Env.Expected(x)
		if err != nil {
			t.Fatal(err)
		}
		bsSum += k.BSPower
		serverSum += k.ServerPower
	}
	// Slice-attributed powers must total within the machine envelope: at
	// least one idle draw, at most idle + both dynamic components.
	if bsSum < 4 || bsSum > 9 {
		t.Fatalf("attributed BS power total %v outside the machine envelope", bsSum)
	}
	if serverSum < 75 || serverSum > 250 {
		t.Fatalf("attributed server power total %v outside the machine envelope", serverSum)
	}
}

func TestBothSlicesConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-slice convergence skipped in -short mode")
	}
	sys, err := New(testbed.DefaultConfig(), grid(), twoSlices(), 7)
	if err != nil {
		t.Fatal(err)
	}
	const periods = 70
	early := make([]float64, len(sys.Slices))
	late := make([]float64, len(sys.Slices))
	lateViolations := 0
	for t2 := 0; t2 < periods; t2++ {
		results, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			c := sys.Slices[i].Config.Weights.Cost(r.KPIs)
			if t2 < 10 {
				early[i] += c / 10
			}
			if t2 >= periods-15 {
				late[i] += c / 15
				cons := sys.Slices[i].Config.Constraints
				if r.KPIs.Delay > cons.MaxDelay*1.05 || r.KPIs.MAP < cons.MinMAP-0.05 {
					lateViolations++
				}
			}
		}
	}
	for i := range sys.Slices {
		t.Logf("slice %s: early %.1f late %.1f", sys.Slices[i].Config.Name, early[i], late[i])
		if late[i] >= early[i] {
			t.Errorf("slice %s did not improve: %.1f -> %.1f", sys.Slices[i].Config.Name, early[i], late[i])
		}
	}
	if lateViolations > 4 {
		t.Fatalf("%d late violations across slices", lateViolations)
	}
}
