package linalg

import "math"

// ApproxEqual reports whether a and b agree to within tol, using a
// combined absolute/relative criterion:
//
//	|a−b| ≤ tol · max(1, |a|, |b|)
//
// which behaves like an absolute tolerance near zero and a relative one
// for large magnitudes. NaNs never compare equal; equal infinities do.
// This is the comparison the floateq analyzer points to when it flags a
// raw ==/!= between floating-point values.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //edgebol:allow floateq -- infinities carry no rounding error; exact compare is the definition
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
