package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD returns a random symmetric positive-definite n×n matrix
// A = Mᵀ·M + n·I.
func randSPD(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	a := Mul(m.Transpose(), m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 12; n++ {
		a := randSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(c.Reconstruct(), a); d > 1e-9 {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestCholeskyIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 0, 0, -5})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected failure on an indefinite matrix")
	}
}

func TestCholeskySemidefiniteJitter(t *testing.T) {
	// Rank-1 matrix; needs jitter but should succeed.
	a := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("semidefinite matrix should factorize with jitter: %v", err)
	}
	if c.Jitter() == 0 {
		t.Fatal("expected nonzero jitter to be recorded")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 10; n++ {
		a := randSPD(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := a.MulVec(x)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := c.SolveVec(y)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: solve mismatch at %d: got %v want %v", n, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(4, 9): det = 36, log det = log 36.
	a := NewMatrixFrom(2, 2, []float64{4, 0, 0, 9})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.LogDet()-math.Log(36)) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", c.LogDet(), math.Log(36))
	}
}

func TestCholeskyAppendMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	a := randSPD(rng, n)

	// Incremental: factorize the 1x1 leading block and append the rest.
	inc, err := NewCholesky(NewMatrixFrom(1, 1, []float64{a.At(0, 0)}))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < n; k++ {
		b := make([]float64, k)
		for i := 0; i < k; i++ {
			b[i] = a.At(k, i)
		}
		if err := inc.Append(b, a.At(k, k)); err != nil {
			t.Fatalf("Append k=%d: %v", k, err)
		}
	}
	full, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(inc.LAt(i, j)-full.LAt(i, j)) > 1e-9 {
				t.Fatalf("factor mismatch at (%d,%d): inc %v full %v", i, j, inc.LAt(i, j), full.LAt(i, j))
			}
		}
	}
}

func TestCholeskyAppendBadLength(t *testing.T) {
	c, _ := NewCholesky(NewMatrixFrom(1, 1, []float64{1}))
	if err := c.Append([]float64{1, 2}, 3); err == nil {
		t.Fatal("expected error for wrong border length")
	}
}

func TestCholeskyAppendSemidefinite(t *testing.T) {
	// Appending a duplicate row makes the bordered matrix singular; jitter on
	// the new pivot should rescue it.
	c, err := NewCholesky(NewMatrixFrom(1, 1, []float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append([]float64{2}, 2); err != nil {
		t.Fatalf("expected jittered append to succeed: %v", err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d, want 2", c.Size())
	}
}

// Property: for random SPD systems, solving then multiplying returns the RHS.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randSPD(rng, n)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		yOrig := append([]float64(nil), y...)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := c.SolveVec(y)
		back := a.MulVec(x)
		for i := range back {
			if math.Abs(back[i]-yOrig[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental append keeps LogDet consistent with a fresh
// factorization of the same matrix.
func TestCholeskyAppendLogDetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randSPD(rng, n)
		inc, err := NewCholesky(NewMatrixFrom(1, 1, []float64{a.At(0, 0)}))
		if err != nil {
			return false
		}
		for k := 1; k < n; k++ {
			b := make([]float64, k)
			for i := 0; i < k; i++ {
				b[i] = a.At(k, i)
			}
			if err := inc.Append(b, a.At(k, k)); err != nil {
				return false
			}
		}
		full, err := NewCholesky(a)
		if err != nil {
			return false
		}
		return math.Abs(inc.LogDet()-full.LogDet()) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholeskyFull200(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyAppend200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randSPD(rng, 201)
	base := NewMatrix(200, 200)
	for i := 0; i < 200; i++ {
		for j := 0; j < 200; j++ {
			base.Set(i, j, a.At(i, j))
		}
	}
	border := make([]float64, 200)
	for i := range border {
		border[i] = a.At(200, i)
	}
	c0, err := NewCholesky(base)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &Cholesky{n: c0.n, l: append([]float64(nil), c0.l...), jitter: c0.jitter}
		if err := c.Append(border, a.At(200, 200)); err != nil {
			b.Fatal(err)
		}
	}
}
