#include "textflag.h"

// panelSolveAVX solves L·x = y in place for 32 interleaved right-hand
// sides. The panel is row-major n×32 (one row = 256 bytes = 8 ymm loads),
// l is the packed lower triangle with row i at l[i(i+1)/2].
//
// Per row i the kernel accumulates s_j = Σ_k L[i,k]·panel[k][j] in eight
// ymm accumulators (one AVX lane per column, ascending k — the same single
// accumulation chain per column as the scalar solve), then applies
// panel[i][j] = (panel[i][j] − s_j)·(1/L[i,i]). Only VMULPD/VADDPD/VSUBPD
// and one scalar DIVSD are used — no FMA contraction — so every column's
// IEEE-754 operation sequence, and therefore its result, is bitwise
// identical to forwardSolve1.
//
// func panelSolveAVX(l []float64, n int, panel []float64)
TEXT ·panelSolveAVX(SB), NOSPLIT, $0-56
	MOVQ l_base+0(FP), SI
	MOVQ n+24(FP), CX
	MOVQ panel_base+32(FP), DI
	MOVQ SI, R11             // R11 = &l[rowStart(i)], advanced incrementally
	XORQ R8, R8              // i
rows:
	CMPQ R8, CX
	JGE  done
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ DI, R10             // panel row k pointer, k = 0
	XORQ R9, R9              // k
kloop:
	CMPQ R9, R8
	JGE  kdone
	VBROADCASTSD (R11)(R9*8), Y8
	VMULPD (R10), Y8, Y9
	VADDPD Y9, Y0, Y0
	VMULPD 32(R10), Y8, Y10
	VADDPD Y10, Y1, Y1
	VMULPD 64(R10), Y8, Y11
	VADDPD Y11, Y2, Y2
	VMULPD 96(R10), Y8, Y12
	VADDPD Y12, Y3, Y3
	VMULPD 128(R10), Y8, Y9
	VADDPD Y9, Y4, Y4
	VMULPD 160(R10), Y8, Y10
	VADDPD Y10, Y5, Y5
	VMULPD 192(R10), Y8, Y11
	VADDPD Y11, Y6, Y6
	VMULPD 224(R10), Y8, Y12
	VADDPD Y12, Y7, Y7
	ADDQ $256, R10
	INCQ R9
	JMP  kloop
kdone:
	// inv = 1 / L[i,i]; R10 now points at panel row i.
	MOVSD panelOne<>(SB), X8
	DIVSD (R11)(R8*8), X8
	VBROADCASTSD X8, Y8
	VMOVUPD (R10), Y9
	VSUBPD Y0, Y9, Y9
	VMULPD Y8, Y9, Y9
	VMOVUPD Y9, (R10)
	VMOVUPD 32(R10), Y10
	VSUBPD Y1, Y10, Y10
	VMULPD Y8, Y10, Y10
	VMOVUPD Y10, 32(R10)
	VMOVUPD 64(R10), Y11
	VSUBPD Y2, Y11, Y11
	VMULPD Y8, Y11, Y11
	VMOVUPD Y11, 64(R10)
	VMOVUPD 96(R10), Y12
	VSUBPD Y3, Y12, Y12
	VMULPD Y8, Y12, Y12
	VMOVUPD Y12, 96(R10)
	VMOVUPD 128(R10), Y9
	VSUBPD Y4, Y9, Y9
	VMULPD Y8, Y9, Y9
	VMOVUPD Y9, 128(R10)
	VMOVUPD 160(R10), Y10
	VSUBPD Y5, Y10, Y10
	VMULPD Y8, Y10, Y10
	VMOVUPD Y10, 160(R10)
	VMOVUPD 192(R10), Y11
	VSUBPD Y6, Y11, Y11
	VMULPD Y8, Y11, Y11
	VMOVUPD Y11, 192(R10)
	VMOVUPD 224(R10), Y12
	VSUBPD Y7, Y12, Y12
	VMULPD Y8, Y12, Y12
	VMOVUPD Y12, 224(R10)
	// rowStart(i+1) = rowStart(i) + i + 1
	LEAQ 8(R11)(R8*8), R11
	INCQ R8
	JMP  rows
done:
	VZEROUPPER
	RET

// panelSolveAVX512 is panelSolveAVX with the 32-column panel row held in
// four zmm registers instead of eight ymm. The lane-wise operation
// sequence per column is unchanged (mul, add, sub, one reciprocal
// multiply — no FMA), so results remain bitwise identical to the scalar
// and AVX2 paths; only the FP throughput doubles.
//
// func panelSolveAVX512(l []float64, n int, panel []float64)
TEXT ·panelSolveAVX512(SB), NOSPLIT, $0-56
	MOVQ l_base+0(FP), SI
	MOVQ n+24(FP), CX
	MOVQ panel_base+32(FP), DI
	MOVQ SI, R11             // R11 = &l[rowStart(i)], advanced incrementally
	XORQ R8, R8              // i
rows512:
	CMPQ R8, CX
	JGE  done512
	VXORPD Z0, Z0, Z0
	VXORPD Z1, Z1, Z1
	VXORPD Z2, Z2, Z2
	VXORPD Z3, Z3, Z3
	MOVQ DI, R10             // panel row k pointer, k = 0
	XORQ R9, R9              // k
kloop512:
	CMPQ R9, R8
	JGE  kdone512
	VBROADCASTSD (R11)(R9*8), Z4
	VMULPD (R10), Z4, Z5
	VADDPD Z5, Z0, Z0
	VMULPD 64(R10), Z4, Z6
	VADDPD Z6, Z1, Z1
	VMULPD 128(R10), Z4, Z7
	VADDPD Z7, Z2, Z2
	VMULPD 192(R10), Z4, Z8
	VADDPD Z8, Z3, Z3
	ADDQ $256, R10
	INCQ R9
	JMP  kloop512
kdone512:
	// inv = 1 / L[i,i]; R10 now points at panel row i.
	MOVSD panelOne<>(SB), X4
	DIVSD (R11)(R8*8), X4
	VBROADCASTSD X4, Z4
	VMOVUPD (R10), Z5
	VSUBPD Z0, Z5, Z5
	VMULPD Z4, Z5, Z5
	VMOVUPD Z5, (R10)
	VMOVUPD 64(R10), Z6
	VSUBPD Z1, Z6, Z6
	VMULPD Z4, Z6, Z6
	VMOVUPD Z6, 64(R10)
	VMOVUPD 128(R10), Z7
	VSUBPD Z2, Z7, Z7
	VMULPD Z4, Z7, Z7
	VMOVUPD Z7, 128(R10)
	VMOVUPD 192(R10), Z8
	VSUBPD Z3, Z8, Z8
	VMULPD Z4, Z8, Z8
	VMOVUPD Z8, 192(R10)
	// rowStart(i+1) = rowStart(i) + i + 1
	LEAQ 8(R11)(R8*8), R11
	INCQ R8
	JMP  rows512
done512:
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

DATA panelOne<>+0(SB)/8, $1.0
GLOBL panelOne<>(SB), RODATA, $8
