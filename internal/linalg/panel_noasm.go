//go:build !amd64

package linalg

// Without the amd64 kernel the fused solver always takes the
// ForwardSolveBatch fallback, which is bitwise identical per column.
var panelAVX = false

func panelSolve(c *Cholesky, panel []float64) {
	panic("linalg: panel kernel unavailable on this architecture")
}
