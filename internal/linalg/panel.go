package linalg

import "fmt"

// PanelWidth is the number of right-hand-side columns the fused tiled
// forward solve advances together through the packed factor. 32 columns
// (256 bytes, four cache lines per panel row) is wide enough that the
// vectorized kernel streams the triangular factor from memory once per
// tile instead of once per block of 4, and narrow enough that the
// interleaved panel for EdgeBOL's training windows stays cache-resident.
const PanelWidth = 32

// FusedSolver runs the fused posterior-sweep kernel
//
//	mu[j]  = ⟨cols[j], alpha⟩
//	x_j    = L⁻¹·cols[j]
//	vsq[j] = ‖x_j‖²
//
// for a set of right-hand-side columns against one Cholesky factor. The
// mean dot product is folded into the pass that interleaves each tile of
// PanelWidth columns into a row-major panel, and the squared solve norm
// into the pass that reads the solved panel back, so a tile costs exactly
// one extra panel write + read over the solve itself.
//
// The zero value is ready to use; the struct only carries the interleaved
// panel scratch so repeated tiles reuse one allocation. A FusedSolver must
// not be shared between goroutines (each posterior-sweep worker owns one).
type FusedSolver struct {
	panel []float64
}

// SolveFused consumes cols (each of length c.Size()), writing the fused
// results into mu and vsq (each of length len(cols)). The contents of cols
// afterwards are unspecified.
//
// Full tiles of PanelWidth columns go through the interleaved-panel kernel
// when the CPU supports it; the remainder (and every column on CPUs
// without AVX2) goes through the ForwardSolveBatch block path. Per column
// the arithmetic — accumulation order, one reciprocal multiply per row —
// is identical on every path, so results are bitwise independent of the
// tiling, of how callers batch columns, and of the instruction set.
func (s *FusedSolver) SolveFused(c *Cholesky, cols [][]float64, alpha, mu, vsq []float64) {
	if len(mu) != len(cols) || len(vsq) != len(cols) {
		panic(fmt.Sprintf("linalg: SolveFused output lengths %d, %d do not match %d columns", len(mu), len(vsq), len(cols)))
	}
	if len(alpha) != c.n {
		panic(fmt.Sprintf("linalg: SolveFused alpha length %d does not match size %d", len(alpha), c.n))
	}
	for _, y := range cols {
		if len(y) != c.n {
			panic(fmt.Sprintf("linalg: SolveFused column length %d does not match size %d", len(y), c.n))
		}
	}
	if panelAVX && c.n > 0 {
		for len(cols) >= PanelWidth {
			s.solveTile(c, cols[:PanelWidth], alpha, mu, vsq)
			cols, mu, vsq = cols[PanelWidth:], mu[PanelWidth:], vsq[PanelWidth:]
		}
	}
	for j, y := range cols {
		mu[j] = Dot(y, alpha)
	}
	c.ForwardSolveBatch(cols)
	for j, y := range cols {
		vsq[j] = Dot(y, y)
	}
}

// solveTile handles exactly PanelWidth columns: interleave (fusing the mean
// dot product), solve the panel in place, read back ‖x_j‖² row-major (the
// same ascending-index accumulation chain as Dot(x, x)).
func (s *FusedSolver) solveTile(c *Cholesky, cols [][]float64, alpha, mu, vsq []float64) {
	n := c.n
	if cap(s.panel) < n*PanelWidth {
		s.panel = make([]float64, n*PanelWidth)
	}
	panel := s.panel[:n*PanelWidth]
	for j, y := range cols {
		var m float64
		for i, v := range y {
			panel[i*PanelWidth+j] = v
			m += v * alpha[i]
		}
		mu[j] = m
	}
	panelSolve(c, panel)
	var acc [PanelWidth]float64
	for i := 0; i < n; i++ {
		row := panel[i*PanelWidth : i*PanelWidth+PanelWidth : i*PanelWidth+PanelWidth]
		for j, v := range row {
			acc[j] += v * v
		}
	}
	copy(vsq[:PanelWidth], acc[:])
}
