package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("row-major layout broken: %v", m)
	}
}

func TestNewMatrixFromBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestSetAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("Set/At roundtrip failed")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	r := m.Row(1)
	r[1] = 9
	if m.At(1, 1) != 9 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrixFrom(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestResizeZeroes(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	m.Resize(1, 2)
	if m.At(0, 0) != 0 || m.At(0, 1) != 0 {
		t.Fatal("Resize must zero contents")
	}
	if m.Rows() != 1 || m.Cols() != 2 {
		t.Fatal("Resize dimensions wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 3, 0})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 3 || y[1] != 3 {
		t.Fatalf("MulVec = %v, want [3 3]", y)
	}
}

func TestMul(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := NewMatrixFrom(2, 2, []float64{19, 22, 43, 50})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(r, c)
		for i := range m.data {
			m.data[i] = rng.NormFloat64()
		}
		return MaxAbsDiff(m.Transpose().Transpose(), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestNorm2(t *testing.T) {
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("Norm2 wrong")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := NewMatrix(n, m), NewMatrix(m, p)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		lhs := Mul(a, b).Transpose()
		rhs := Mul(b.Transpose(), a.Transpose())
		return MaxAbsDiff(lhs, rhs) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
