package linalg

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"identical", 1.5, 1.5, 1e-12, true},
		{"within absolute tol near zero", 1e-13, -1e-13, 1e-12, true},
		{"outside absolute tol near zero", 1e-6, -1e-6, 1e-9, false},
		{"within relative tol large", 1e12, 1e12 * (1 + 1e-13), 1e-12, true},
		{"outside relative tol large", 1e12, 1.001e12, 1e-9, false},
		{"nan never equal", math.NaN(), math.NaN(), 1e-3, false},
		{"nan vs number", math.NaN(), 0, 1e-3, false},
		{"same infinities", math.Inf(1), math.Inf(1), 1e-12, true},
		{"opposite infinities", math.Inf(1), math.Inf(-1), 1e-12, false},
		{"inf vs finite", math.Inf(1), 1e300, 1e-12, false},
		{"zero tol requires exact", 1, 1 + 1e-15, 0, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v", c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	pairs := [][2]float64{{1, 1.0000001}, {-3, -3.0000004}, {0, 1e-14}, {1e9, 1e9 + 10}}
	for _, p := range pairs {
		if ApproxEqual(p[0], p[1], 1e-6) != ApproxEqual(p[1], p[0], 1e-6) {
			t.Errorf("ApproxEqual not symmetric for %v", p)
		}
	}
}
