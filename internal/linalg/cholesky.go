package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a matrix cannot be factorized even
// after the maximum jitter has been applied to its diagonal.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor L with A = L·Lᵀ.
//
// It supports incremental growth: Append extends the factor by one row and
// column in O(n²), which is what lets the GP add one observation per control
// period without refactorizing its whole kernel matrix.
type Cholesky struct {
	n int
	// l stores the lower triangle row-major: row i occupies
	// l[i*(i+1)/2 : i*(i+1)/2 + i + 1].
	l []float64
	// jitter actually applied to the diagonal during factorization.
	jitter float64
}

// DefaultJitter is the initial diagonal regularization tried when a matrix
// is numerically semi-definite.
const DefaultJitter = 1e-10

// maxJitter bounds the progressive jitter escalation.
const maxJitter = 1e-2

// NewCholesky factorizes the symmetric positive-definite matrix a
// (only its lower triangle is read). If the factorization encounters a
// non-positive pivot, it retries with progressively larger diagonal jitter,
// up to a limit, and records the jitter used.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	c := &Cholesky{n: n, l: make([]float64, n*(n+1)/2)}
	jitter := 0.0
	for {
		if err := c.factorize(a, jitter); err == nil {
			c.jitter = jitter
			return c, nil
		}
		if jitter == 0 {
			jitter = DefaultJitter
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			return nil, ErrNotPositiveDefinite
		}
	}
}

func (c *Cholesky) factorize(a *Matrix, jitter float64) error {
	n := c.n
	for i := 0; i < n; i++ {
		ri := c.rowStart(i)
		for j := 0; j <= i; j++ {
			rj := c.rowStart(j)
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= c.l[ri+k] * c.l[rj+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return ErrNotPositiveDefinite
				}
				c.l[ri+j] = math.Sqrt(sum)
			} else {
				c.l[ri+j] = sum / c.l[rj+j]
			}
		}
	}
	return nil
}

func (c *Cholesky) rowStart(i int) int { return i * (i + 1) / 2 }

// Size returns the dimension of the factorized matrix.
func (c *Cholesky) Size() int { return c.n }

// Jitter returns the diagonal jitter that was applied during factorization.
func (c *Cholesky) Jitter() float64 { return c.jitter }

// LAt returns element (i,j) of the lower-triangular factor (zero for j > i).
func (c *Cholesky) LAt(i, j int) float64 {
	if j > i {
		return 0
	}
	return c.l[c.rowStart(i)+j]
}

// Append grows the factor by one row/column for the bordered matrix
//
//	A' = [ A  b ]
//	     [ bᵀ d ]
//
// where b has length Size() and d is the new diagonal entry. It runs in
// O(n²). If the implied new pivot is non-positive, jitter is added to d up
// to the package limit; beyond that ErrNotPositiveDefinite is returned and
// the factor is unchanged.
func (c *Cholesky) Append(b []float64, d float64) error {
	if len(b) != c.n {
		return fmt.Errorf("linalg: Append vector length %d does not match size %d", len(b), c.n)
	}
	// Solve L·w = b for w: the new row of the factor.
	w := make([]float64, c.n+1)
	for i := 0; i < c.n; i++ {
		ri := c.rowStart(i)
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[ri+k] * w[k]
		}
		w[i] = sum / c.l[ri+i]
	}
	pivot := d + c.jitter - Dot(w[:c.n], w[:c.n])
	jitter := c.jitter
	for pivot <= 0 || math.IsNaN(pivot) {
		if jitter == 0 {
			jitter = DefaultJitter
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			return ErrNotPositiveDefinite
		}
		pivot = d + jitter - Dot(w[:c.n], w[:c.n])
	}
	// Note: escalating jitter here only regularizes the appended diagonal
	// entry; earlier pivots keep the jitter recorded at factorization time.
	w[c.n] = math.Sqrt(pivot)
	c.l = append(c.l, w...)
	c.n++
	return nil
}

// SolveVec solves A·x = y in place using the factorization
// (forward then backward substitution). It returns x (same slice as y).
func (c *Cholesky) SolveVec(y []float64) []float64 {
	if len(y) != c.n {
		panic(fmt.Sprintf("linalg: SolveVec length %d does not match size %d", len(y), c.n))
	}
	c.ForwardSolve(y)
	c.BackwardSolve(y)
	return y
}

// ForwardSolve solves L·x = y in place.
func (c *Cholesky) ForwardSolve(y []float64) {
	for i := 0; i < c.n; i++ {
		ri := c.rowStart(i)
		sum := y[i]
		for k := 0; k < i; k++ {
			sum -= c.l[ri+k] * y[k]
		}
		y[i] = sum / c.l[ri+i]
	}
}

// solveBlock is the number of right-hand sides ForwardSolveBatch advances
// through the factor together, sharing each row of L across the block.
const solveBlock = 4

// ForwardSolveBatch solves L·x = y in place for every right-hand side in
// ys (each of length Size()). It advances solveBlock right-hand sides
// through the factor together, so each O(n²) sweep over the triangular
// rows is streamed from memory once per block instead of once per solve,
// and the independent accumulator chains pipeline — the cache and ILP
// behaviour that dominates the GP posterior sweep.
//
// Per right-hand side the arithmetic (accumulation order, one reciprocal
// multiply per row) is identical in the blocked and remainder paths, so
// results are bitwise independent of how callers split a candidate set
// into batches or shard it across goroutines.
func (c *Cholesky) ForwardSolveBatch(ys [][]float64) {
	for _, y := range ys {
		if len(y) != c.n {
			panic(fmt.Sprintf("linalg: ForwardSolveBatch length %d does not match size %d", len(y), c.n))
		}
	}
	for len(ys) >= solveBlock {
		c.forwardSolve4(ys[0], ys[1], ys[2], ys[3])
		ys = ys[solveBlock:]
	}
	for _, y := range ys {
		c.forwardSolve1(y)
	}
}

// forwardSolve4 runs four forward substitutions in one pass over L. Four
// independent accumulator chains are the sweet spot on x86-64: enough to
// pipeline the FP adds without spilling accumulators to the stack (an
// 8-wide variant measured slower for exactly that reason).
func (c *Cholesky) forwardSolve4(y0, y1, y2, y3 []float64) {
	n := c.n
	y0, y1, y2, y3 = y0[:n], y1[:n], y2[:n], y3[:n]
	for i := 0; i < n; i++ {
		ri := c.rowStart(i)
		lrow := c.l[ri : ri+i]
		inv := 1 / c.l[ri+i]
		var s0, s1, s2, s3 float64
		for k, lv := range lrow {
			s0 += lv * y0[k]
			s1 += lv * y1[k]
			s2 += lv * y2[k]
			s3 += lv * y3[k]
		}
		y0[i] = (y0[i] - s0) * inv
		y1[i] = (y1[i] - s1) * inv
		y2[i] = (y2[i] - s2) * inv
		y3[i] = (y3[i] - s3) * inv
	}
}

// forwardSolve1 is the single-vector remainder path of ForwardSolveBatch,
// with per-element arithmetic identical to forwardSolve4.
func (c *Cholesky) forwardSolve1(y []float64) {
	n := c.n
	y = y[:n]
	for i := 0; i < n; i++ {
		ri := c.rowStart(i)
		lrow := c.l[ri : ri+i]
		inv := 1 / c.l[ri+i]
		var s float64
		for k, lv := range lrow {
			s += lv * y[k]
		}
		y[i] = (y[i] - s) * inv
	}
}

// BackwardSolve solves Lᵀ·x = y in place.
func (c *Cholesky) BackwardSolve(y []float64) {
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l[c.rowStart(k)+i] * y[k]
		}
		y[i] = sum / c.l[c.rowStart(i)+i]
	}
}

// FactorData returns a copy of the packed lower-triangular factor: row i
// occupies out[i*(i+1)/2 : i*(i+1)/2+i+1]. Together with Jitter it is the
// factorization's complete state, so a factor restored through
// NewCholeskyFromFactor reproduces every solve bitwise — including factors
// whose entries depend on the exact append/rebuild history that produced
// them, which a refactorization could not replay.
func (c *Cholesky) FactorData() []float64 {
	return append([]float64(nil), c.l...)
}

// NewCholeskyFromFactor reconstructs a Cholesky from a packed factor
// previously obtained via FactorData. It validates the packed length and
// that every entry is finite with strictly positive diagonals — the
// invariants every factorization path establishes — so a corrupted or
// hostile snapshot is rejected instead of poisoning later solves.
func NewCholeskyFromFactor(n int, l []float64, jitter float64) (*Cholesky, error) {
	if n < 0 {
		return nil, fmt.Errorf("linalg: negative factor size %d", n)
	}
	if want := n * (n + 1) / 2; len(l) != want {
		return nil, fmt.Errorf("linalg: packed factor length %d does not match size %d (want %d)", len(l), n, want)
	}
	if math.IsNaN(jitter) || math.IsInf(jitter, 0) || jitter < 0 {
		return nil, fmt.Errorf("linalg: invalid factor jitter %v", jitter)
	}
	c := &Cholesky{n: n, l: append([]float64(nil), l...), jitter: jitter}
	for i := 0; i < n; i++ {
		ri := c.rowStart(i)
		for j := 0; j <= i; j++ {
			v := c.l[ri+j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("linalg: non-finite factor entry %v at (%d,%d)", v, i, j)
			}
		}
		if c.l[ri+i] <= 0 {
			return nil, fmt.Errorf("linalg: non-positive factor diagonal %v at %d", c.l[ri+i], i)
		}
	}
	return c, nil
}

// LogDet returns log det(A) = 2·Σ log L[i,i].
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[c.rowStart(i)+i])
	}
	return 2 * s
}

// Reconstruct returns L·Lᵀ, mainly for tests.
func (c *Cholesky) Reconstruct() *Matrix {
	a := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += c.LAt(i, k) * c.LAt(j, k)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}
