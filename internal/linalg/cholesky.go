package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a matrix cannot be factorized even
// after the maximum jitter has been applied to its diagonal.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor L with A = L·Lᵀ.
//
// It supports incremental growth: Append extends the factor by one row and
// column in O(n²), which is what lets the GP add one observation per control
// period without refactorizing its whole kernel matrix.
type Cholesky struct {
	n int
	// l stores the lower triangle row-major: row i occupies
	// l[i*(i+1)/2 : i*(i+1)/2 + i + 1].
	l []float64
	// jitter actually applied to the diagonal during factorization.
	jitter float64
}

// DefaultJitter is the initial diagonal regularization tried when a matrix
// is numerically semi-definite.
const DefaultJitter = 1e-10

// maxJitter bounds the progressive jitter escalation.
const maxJitter = 1e-2

// NewCholesky factorizes the symmetric positive-definite matrix a
// (only its lower triangle is read). If the factorization encounters a
// non-positive pivot, it retries with progressively larger diagonal jitter,
// up to a limit, and records the jitter used.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows(), a.Cols())
	}
	n := a.Rows()
	c := &Cholesky{n: n, l: make([]float64, n*(n+1)/2)}
	jitter := 0.0
	for {
		if err := c.factorize(a, jitter); err == nil {
			c.jitter = jitter
			return c, nil
		}
		if jitter == 0 {
			jitter = DefaultJitter
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			return nil, ErrNotPositiveDefinite
		}
	}
}

func (c *Cholesky) factorize(a *Matrix, jitter float64) error {
	n := c.n
	for i := 0; i < n; i++ {
		ri := c.rowStart(i)
		for j := 0; j <= i; j++ {
			rj := c.rowStart(j)
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			for k := 0; k < j; k++ {
				sum -= c.l[ri+k] * c.l[rj+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return ErrNotPositiveDefinite
				}
				c.l[ri+j] = math.Sqrt(sum)
			} else {
				c.l[ri+j] = sum / c.l[rj+j]
			}
		}
	}
	return nil
}

func (c *Cholesky) rowStart(i int) int { return i * (i + 1) / 2 }

// Size returns the dimension of the factorized matrix.
func (c *Cholesky) Size() int { return c.n }

// Jitter returns the diagonal jitter that was applied during factorization.
func (c *Cholesky) Jitter() float64 { return c.jitter }

// LAt returns element (i,j) of the lower-triangular factor (zero for j > i).
func (c *Cholesky) LAt(i, j int) float64 {
	if j > i {
		return 0
	}
	return c.l[c.rowStart(i)+j]
}

// Append grows the factor by one row/column for the bordered matrix
//
//	A' = [ A  b ]
//	     [ bᵀ d ]
//
// where b has length Size() and d is the new diagonal entry. It runs in
// O(n²). If the implied new pivot is non-positive, jitter is added to d up
// to the package limit; beyond that ErrNotPositiveDefinite is returned and
// the factor is unchanged.
func (c *Cholesky) Append(b []float64, d float64) error {
	if len(b) != c.n {
		return fmt.Errorf("linalg: Append vector length %d does not match size %d", len(b), c.n)
	}
	// Solve L·w = b for w: the new row of the factor.
	w := make([]float64, c.n+1)
	for i := 0; i < c.n; i++ {
		ri := c.rowStart(i)
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[ri+k] * w[k]
		}
		w[i] = sum / c.l[ri+i]
	}
	pivot := d + c.jitter - Dot(w[:c.n], w[:c.n])
	jitter := c.jitter
	for pivot <= 0 || math.IsNaN(pivot) {
		if jitter == 0 {
			jitter = DefaultJitter
		} else {
			jitter *= 100
		}
		if jitter > maxJitter {
			return ErrNotPositiveDefinite
		}
		pivot = d + jitter - Dot(w[:c.n], w[:c.n])
	}
	// Note: escalating jitter here only regularizes the appended diagonal
	// entry; earlier pivots keep the jitter recorded at factorization time.
	w[c.n] = math.Sqrt(pivot)
	c.l = append(c.l, w...)
	c.n++
	return nil
}

// SolveVec solves A·x = y in place using the factorization
// (forward then backward substitution). It returns x (same slice as y).
func (c *Cholesky) SolveVec(y []float64) []float64 {
	if len(y) != c.n {
		panic(fmt.Sprintf("linalg: SolveVec length %d does not match size %d", len(y), c.n))
	}
	c.ForwardSolve(y)
	c.BackwardSolve(y)
	return y
}

// ForwardSolve solves L·x = y in place.
func (c *Cholesky) ForwardSolve(y []float64) {
	for i := 0; i < c.n; i++ {
		ri := c.rowStart(i)
		sum := y[i]
		for k := 0; k < i; k++ {
			sum -= c.l[ri+k] * y[k]
		}
		y[i] = sum / c.l[ri+i]
	}
}

// BackwardSolve solves Lᵀ·x = y in place.
func (c *Cholesky) BackwardSolve(y []float64) {
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l[c.rowStart(k)+i] * y[k]
		}
		y[i] = sum / c.l[c.rowStart(i)+i]
	}
}

// LogDet returns log det(A) = 2·Σ log L[i,i].
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[c.rowStart(i)+i])
	}
	return 2 * s
}

// Reconstruct returns L·Lᵀ, mainly for tests.
func (c *Cholesky) Reconstruct() *Matrix {
	a := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += c.LAt(i, k) * c.LAt(j, k)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}
