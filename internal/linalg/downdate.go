package linalg

import (
	"fmt"
	"math"
)

// Rank1Update rewrites the factor in place so that it factorizes
// A + x·xᵀ, where A = L·Lᵀ is the currently factorized matrix. It runs
// one pass of Givens-style rotations over the packed rows in O(n²) —
// the streaming-update primitive of the sparse GP engine, which folds
// one observation's cross-covariance into the m×m information factor
// per control period instead of refactorizing it.
//
// A positive-semidefinite update cannot destroy positive definiteness,
// so Rank1Update always succeeds; x is consumed as scratch and holds
// unspecified values afterwards.
func (c *Cholesky) Rank1Update(x []float64) {
	if len(x) != c.n {
		panic(fmt.Sprintf("linalg: Rank1Update vector length %d does not match size %d", len(x), c.n))
	}
	n := c.n
	for k := 0; k < n; k++ {
		rk := c.rowStart(k)
		lkk := c.l[rk+k]
		xk := x[k]
		//edgebol:allow nanguard -- lkk² + xk² ≥ lkk² > 0: factor diagonals are positive by invariant
		r := math.Sqrt(lkk*lkk + xk*xk)
		//edgebol:allow nanguard -- lkk > 0: factor diagonals are positive by invariant
		cth := r / lkk
		sth := xk / lkk
		c.l[rk+k] = r
		if sth == 0 { //edgebol:allow floateq -- exact-zero rotation is a no-op for the whole column; skipping it changes nothing
			continue
		}
		for i := k + 1; i < n; i++ {
			ri := c.rowStart(i) + k
			//edgebol:allow nanguard -- cth = r/lkk ≥ 1 since r = √(lkk²+xk²) ≥ lkk > 0
			lik := (c.l[ri] + sth*x[i]) / cth
			x[i] = cth*x[i] - sth*lik
			c.l[ri] = lik
		}
	}
}

// DropLeading shrinks the factor to the trailing (n−k)×(n−k) principal
// submatrix of the factorized A: if A is partitioned with its first k
// rows/columns removed, the result factorizes A₂₂ exactly (up to
// rounding). It exploits A₂₂ = L₂₂·L₂₂ᵀ + L₂₁·L₂₁ᵀ: the retained block
// of the old factor is promoted in place and one positive rank-1 update
// per dropped column folds L₂₁ back in — k·(n−k)² work with no Gram
// matrix rebuild and no kernel re-evaluations, which is what makes the
// GP's sliding-window eviction cheaper than a from-scratch refit.
//
// Positive updates preserve positive definiteness, so DropLeading
// always succeeds. The recorded jitter is unchanged: the dropped and
// retained diagonals carried the same regularization.
func (c *Cholesky) DropLeading(k int) {
	if k < 0 || k > c.n {
		panic(fmt.Sprintf("linalg: DropLeading %d of %d rows", k, c.n))
	}
	if k == 0 {
		return
	}
	n := c.n
	m := n - k
	// Save the L₂₁ block column-major: col[j][i] = L[k+i, j].
	cols := make([]float64, k*m)
	for i := 0; i < m; i++ {
		ri := c.rowStart(k + i)
		for j := 0; j < k; j++ {
			cols[j*m+i] = c.l[ri+j]
		}
	}
	// Promote L₂₂ into a packed m×m factor.
	l := make([]float64, m*(m+1)/2)
	for i := 0; i < m; i++ {
		src := c.rowStart(k+i) + k
		dst := i * (i + 1) / 2
		copy(l[dst:dst+i+1], c.l[src:src+i+1])
	}
	c.n = m
	c.l = l
	for j := 0; j < k; j++ {
		c.Rank1Update(cols[j*m : (j+1)*m])
	}
}
