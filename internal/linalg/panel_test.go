package linalg

import (
	"math/rand"
	"testing"
)

// randSPDChol builds the Cholesky factor of a random well-conditioned SPD
// matrix: small random off-diagonals with a dominant diagonal.
func randSPDChol(t testing.TB, n int, seed int64) *Cholesky {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			v := rng.NormFloat64() * 0.05
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
		m.Set(i, i, 1.5+rng.Float64())
	}
	c, err := NewCholesky(m)
	if err != nil {
		t.Fatalf("NewCholesky(n=%d): %v", n, err)
	}
	return c
}

// fusedReference computes SolveFused's outputs one column at a time with
// the forwardSolve1 scalar reference, without touching cols.
func fusedReference(c *Cholesky, cols [][]float64, alpha []float64) (mu, vsq []float64) {
	mu = make([]float64, len(cols))
	vsq = make([]float64, len(cols))
	for j, y := range cols {
		x := append([]float64(nil), y...)
		mu[j] = Dot(x, alpha)
		c.forwardSolve1(x)
		vsq[j] = Dot(x, x)
	}
	return mu, vsq
}

// checkFused runs SolveFused on fresh copies of cols and requires bitwise
// agreement with the forwardSolve1 reference.
func checkFused(t *testing.T, c *Cholesky, cols [][]float64, alpha []float64) {
	t.Helper()
	refMu, refVsq := fusedReference(c, cols, alpha)
	work := make([][]float64, len(cols))
	for j := range cols {
		work[j] = append([]float64(nil), cols[j]...)
	}
	mu := make([]float64, len(cols))
	vsq := make([]float64, len(cols))
	var s FusedSolver
	s.SolveFused(c, work, alpha, mu, vsq)
	for j := range cols {
		if mu[j] != refMu[j] { //edgebol:allow floateq -- bitwise-identity contract of the fused solver
			t.Fatalf("n=%d width=%d col %d: mu %x, reference %x", c.Size(), len(cols), j, mu[j], refMu[j])
		}
		if vsq[j] != refVsq[j] { //edgebol:allow floateq -- bitwise-identity contract of the fused solver
			t.Fatalf("n=%d width=%d col %d: vsq %x, reference %x", c.Size(), len(cols), j, vsq[j], refVsq[j])
		}
	}
}

// forEachPanelKernel runs fn once for every vector-kernel level the host
// supports, plus the scalar fallback, restoring the detected level after.
func forEachPanelKernel(t *testing.T, fn func(t *testing.T, level string)) {
	detected, detectedAVX := panelKernel, panelAVX
	defer func() { panelKernel, panelAVX = detected, detectedAVX }()
	panelKernel, panelAVX = panelKernelNone, false
	fn(t, "scalar")
	for _, level := range []int{panelKernelAVX2, panelKernelAVX512} {
		if level > detected {
			continue
		}
		panelKernel, panelAVX = level, true
		switch level {
		case panelKernelAVX2:
			fn(t, "avx2")
		case panelKernelAVX512:
			fn(t, "avx512")
		}
	}
}

// TestSolveFusedMatchesScalar is the tiled-solve property test: on random
// SPD systems of assorted sizes — n=1 included — and panel widths that are
// not multiples of the tile, every supported kernel level must reproduce
// the forwardSolve1 reference bit for bit.
func TestSolveFusedMatchesScalar(t *testing.T) {
	forEachPanelKernel(t, func(t *testing.T, level string) {
		for _, n := range []int{1, 2, 3, 7, 31, 32, 33, 100, 257} {
			c := randSPDChol(t, n, int64(n))
			rng := rand.New(rand.NewSource(int64(n) * 31))
			alpha := make([]float64, n)
			for i := range alpha {
				alpha[i] = rng.NormFloat64()
			}
			for _, w := range []int{0, 1, 4, 31, 32, 33, 63, 64, 65, 97} {
				cols := make([][]float64, w)
				for j := range cols {
					col := make([]float64, n)
					for i := range col {
						col[i] = rng.NormFloat64()
					}
					cols[j] = col
				}
				checkFused(t, c, cols, alpha)
			}
		}
		_ = level
	})
}

// TestSolveFusedKernelLevelsAgree pins the vector kernels against each
// other directly: the same panel solved at every supported level must give
// one bitwise answer, so results cannot depend on the host CPU.
func TestSolveFusedKernelLevelsAgree(t *testing.T) {
	const n, w = 129, 64
	c := randSPDChol(t, n, 9)
	rng := rand.New(rand.NewSource(10))
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = rng.NormFloat64()
	}
	cols := make([][]float64, w)
	for j := range cols {
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		cols[j] = col
	}
	type result struct {
		level   string
		mu, vsq []float64
	}
	var results []result
	forEachPanelKernel(t, func(t *testing.T, level string) {
		work := make([][]float64, w)
		for j := range cols {
			work[j] = append([]float64(nil), cols[j]...)
		}
		mu := make([]float64, w)
		vsq := make([]float64, w)
		var s FusedSolver
		s.SolveFused(c, work, alpha, mu, vsq)
		results = append(results, result{level, mu, vsq})
	})
	base := results[0]
	for _, r := range results[1:] {
		for j := range base.mu {
			if r.mu[j] != base.mu[j] || r.vsq[j] != base.vsq[j] { //edgebol:allow floateq -- bitwise identity across kernel levels
				t.Fatalf("col %d: %s (%x,%x) differs from %s (%x,%x)",
					j, r.level, r.mu[j], r.vsq[j], base.level, base.mu[j], base.vsq[j])
			}
		}
	}
}

// TestSolveFusedValidation covers the panics on mis-sized arguments.
func TestSolveFusedValidation(t *testing.T) {
	c := randSPDChol(t, 4, 1)
	alpha := make([]float64, 4)
	cols := [][]float64{make([]float64, 4)}
	cases := []struct {
		name string
		call func()
	}{
		{"short output", func() {
			var s FusedSolver
			s.SolveFused(c, cols, alpha, nil, make([]float64, 1))
		}},
		{"short alpha", func() {
			var s FusedSolver
			s.SolveFused(c, cols, alpha[:2], make([]float64, 1), make([]float64, 1))
		}},
		{"short column", func() {
			var s FusedSolver
			s.SolveFused(c, [][]float64{make([]float64, 3)}, alpha, make([]float64, 1), make([]float64, 1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.call()
		})
	}
}

// FuzzSolveFused drives random system sizes, widths, and contents through
// every kernel level against the scalar reference.
func FuzzSolveFused(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(1))
	f.Add(int64(2), uint8(32), uint8(40))
	f.Add(int64(3), uint8(48), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, wRaw uint8) {
		n := int(nRaw)%64 + 1
		w := int(wRaw) % 80
		c := randSPDChol(t, n, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		alpha := make([]float64, n)
		for i := range alpha {
			alpha[i] = rng.NormFloat64()
		}
		cols := make([][]float64, w)
		for j := range cols {
			col := make([]float64, n)
			for i := range col {
				col[i] = rng.NormFloat64() * 3
			}
			cols[j] = col
		}
		forEachPanelKernel(t, func(t *testing.T, level string) {
			checkFused(t, c, cols, alpha)
			_ = level
		})
	})
}
