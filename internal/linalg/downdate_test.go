package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// addOuter returns a + x·xᵀ.
func addOuter(a *Matrix, x []float64) *Matrix {
	n := a.Rows()
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, a.At(i, j)+x[i]*x[j])
		}
	}
	return out
}

func TestRank1UpdateReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 12; n++ {
		a := randSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := addOuter(a, x)
		c.Rank1Update(x) // consumes x as scratch
		if d := MaxAbsDiff(c.Reconstruct(), want); d > 1e-9 {
			t.Fatalf("n=%d: updated factor off by %g", n, d)
		}
	}
}

func TestRank1UpdateRepeated(t *testing.T) {
	// Many successive updates must stay accurate — this is the streaming
	// regime of the sparse GP, which folds one observation per period.
	const n, rounds = 8, 400
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, n)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := a
	x := make([]float64, n)
	for r := 0; r < rounds; r++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want = addOuter(want, x)
		c.Rank1Update(x)
	}
	// Tolerance scales with the accumulated magnitude.
	scale := 0.0
	for i := 0; i < n; i++ {
		scale = math.Max(scale, want.At(i, i))
	}
	if d := MaxAbsDiff(c.Reconstruct(), want); d > 1e-10*scale {
		t.Fatalf("after %d updates factor off by %g (scale %g)", rounds, d, scale)
	}
}

func TestRank1UpdateZeroVector(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 5)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), c.l...)
	c.Rank1Update(make([]float64, 5))
	for i, v := range c.l {
		if v != before[i] {
			t.Fatalf("zero update changed factor entry %d: %v -> %v", i, before[i], v)
		}
	}
}

func TestRank1UpdateLengthMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewCholesky(randSPD(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	c.Rank1Update(make([]float64, 3))
}

func TestDropLeadingMatchesTrailingSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 1; n <= 12; n++ {
		for k := 0; k <= n; k++ {
			a := randSPD(rng, n)
			c, err := NewCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			jit := c.Jitter()
			c.DropLeading(k)
			if c.Size() != n-k {
				t.Fatalf("n=%d k=%d: size %d after drop", n, k, c.Size())
			}
			if c.Jitter() != jit {
				t.Fatalf("n=%d k=%d: jitter changed %v -> %v", n, k, jit, c.Jitter())
			}
			m := n - k
			want := NewMatrix(m, m)
			for i := 0; i < m; i++ {
				for j := 0; j < m; j++ {
					want.Set(i, j, a.At(k+i, k+j))
				}
			}
			if m == 0 {
				continue
			}
			if d := MaxAbsDiff(c.Reconstruct(), want); d > 1e-9 {
				t.Fatalf("n=%d k=%d: trailing submatrix off by %g", n, k, d)
			}
		}
	}
}

func TestDropLeadingThenSolve(t *testing.T) {
	// The downdated factor must be usable for solves — the exact GP's
	// eviction path immediately solves against it.
	const n, k = 10, 4
	rng := rand.New(rand.NewSource(31))
	a := randSPD(rng, n)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	c.DropLeading(k)
	m := n - k
	sub := NewMatrix(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			sub.Set(i, j, a.At(k+i, k+j))
		}
	}
	ref, err := NewCholesky(sub)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := c.SolveVec(append([]float64(nil), b...))
	want := ref.SolveVec(append([]float64(nil), b...))
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("solve entry %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDropLeadingBoundsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, err := NewCholesky(randSPD(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range drop count")
		}
	}()
	c.DropLeading(5)
}
