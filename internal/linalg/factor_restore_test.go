package linalg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// appendedCholesky builds a factor the way the GP does: a 1×1 seed grown
// by incremental Appends, so its entries carry the append-path arithmetic
// a batch refactorization would not reproduce bitwise.
func appendedCholesky(t *testing.T, n int) *Cholesky {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	c, err := NewCholesky(NewMatrixFrom(1, 1, []float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	for c.Size() < n {
		b := make([]float64, c.Size())
		for i := range b {
			b[i] = 0.3 * rng.Float64()
		}
		if err := c.Append(b, 2+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestFactorRoundTrip(t *testing.T) {
	src := appendedCholesky(t, 12)
	got, err := NewCholeskyFromFactor(src.Size(), src.FactorData(), src.Jitter())
	if err != nil {
		t.Fatalf("NewCholeskyFromFactor: %v", err)
	}
	if got.Size() != src.Size() || got.Jitter() != src.Jitter() {
		t.Fatalf("size/jitter %d/%v, want %d/%v", got.Size(), got.Jitter(), src.Size(), src.Jitter())
	}
	for i := 0; i < src.Size(); i++ {
		for j := 0; j <= i; j++ {
			if got.LAt(i, j) != src.LAt(i, j) {
				t.Fatalf("factor entry (%d,%d) %v != %v", i, j, got.LAt(i, j), src.LAt(i, j))
			}
		}
	}
	// Solves through the restored factor must agree bitwise.
	y1 := make([]float64, src.Size())
	y2 := make([]float64, src.Size())
	for i := range y1 {
		y1[i] = float64(i) - 3.5
		y2[i] = y1[i]
	}
	src.SolveVec(y1)
	got.SolveVec(y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("solve diverged at %d: %v != %v", i, y1[i], y2[i])
		}
	}
	if src.LogDet() != got.LogDet() {
		t.Fatalf("LogDet %v != %v", src.LogDet(), got.LogDet())
	}
}

func TestFactorDataIsACopy(t *testing.T) {
	c := appendedCholesky(t, 4)
	d := c.FactorData()
	want := c.LAt(0, 0)
	d[0] = -99
	if c.LAt(0, 0) != want {
		t.Fatal("FactorData aliases the live factor")
	}
}

func TestNewCholeskyFromFactorValidation(t *testing.T) {
	good := appendedCholesky(t, 3)
	l := good.FactorData()
	cases := []struct {
		name   string
		n      int
		l      []float64
		jitter float64
		want   string
	}{
		{"negative size", -1, nil, 0, "negative"},
		{"length mismatch", 3, l[:5], 0, "length"},
		{"negative jitter", 3, l, -1, "jitter"},
		{"nan entry", 3, append([]float64{}, l[0], math.NaN(), l[2], l[3], l[4], l[5]), 0, "non-finite"},
		{"zero diagonal", 3, append([]float64{0}, l[1:]...), 0, "diagonal"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCholeskyFromFactor(tc.n, tc.l, tc.jitter); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
