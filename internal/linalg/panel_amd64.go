package linalg

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
func xgetbv0() (eax, edx uint32)

// panelSolveAVX solves L·x = y in place for PanelWidth interleaved
// right-hand sides: panel holds n rows of PanelWidth columns, l is the
// packed row-major lower triangle. Implemented in panel_amd64.s with one
// AVX lane per column and no FMA contraction, so each column performs the
// exact per-element IEEE-754 operation sequence of forwardSolve1.
//
//go:noescape
func panelSolveAVX(l []float64, n int, panel []float64)

// panelSolveAVX512 is the same kernel at twice the vector width; the
// per-column operation sequence — and therefore the result — is unchanged.
//
//go:noescape
func panelSolveAVX512(l []float64, n int, panel []float64)

// Panel-kernel selection levels, in increasing capability. The AVX2 level
// needs the register-form VBROADCASTSD; both levels need OS-managed
// vector state in XCR0.
const (
	panelKernelNone = iota
	panelKernelAVX2
	panelKernelAVX512
)

// panelKernel is the vector kernel the fused solver dispatches to, and
// panelAVX gates the tiled path as a whole. Tests toggle these to pin the
// scalar fallback and the narrower kernel against the widest one.
var (
	panelKernel = detectPanelKernel()
	panelAVX    = panelKernel != panelKernelNone
)

func detectPanelKernel() int {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return panelKernelNone
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return panelKernelNone
	}
	xeax, _ := xgetbv0()
	// XCR0 bits 1 (XMM) and 2 (YMM) must both be OS-enabled.
	if xeax&6 != 6 {
		return panelKernelNone
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	if ebx7&avx2 == 0 {
		return panelKernelNone
	}
	// AVX-512F additionally needs the opmask/zmm-high state (XCR0 bits 5–7).
	const avx512f = 1 << 16
	if ebx7&avx512f != 0 && xeax&0xe0 == 0xe0 {
		return panelKernelAVX512
	}
	return panelKernelAVX2
}

func panelSolve(c *Cholesky, panel []float64) {
	if panelKernel == panelKernelAVX512 {
		panelSolveAVX512(c.l, c.n, panel)
		return
	}
	panelSolveAVX(c.l, c.n, panel)
}
