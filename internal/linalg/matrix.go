// Package linalg provides the small dense linear-algebra kernel used by the
// Gaussian-process machinery: a row-major matrix type, Cholesky
// factorization with jitter and incremental rank-append updates, and
// triangular solves.
//
// The package is deliberately minimal — it implements exactly what GP
// regression needs, with predictable allocation behaviour (callers can reuse
// buffers) and no external dependencies.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64.
// The zero value is an empty (0x0) matrix ready for use with Resize.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns an r-by-c matrix of zeros.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom returns an r-by-c matrix with contents copied from data,
// which must have length r*c and is interpreted row-major.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.data, data)
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Resize reshapes m to r-by-c, reusing the backing slice when it has
// sufficient capacity. Contents are zeroed.
func (m *Matrix) Resize(r, c int) {
	n := r * c
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
		for i := range m.data {
			m.data[i] = 0
		}
	}
	m.rows, m.cols = r, c
}

// MulVec computes y = m · x, allocating y. x must have length m.Cols().
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec length %d does not match cols %d", len(x), m.cols))
	}
	y := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	//edgebol:allow nanguard -- Dot(v, v) is a sum of squares, non-negative by construction
	return math.Sqrt(Dot(v, v))
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b, useful for approximate-equality checks in tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("linalg: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.rows, m.cols)
	if m.rows*m.cols <= 64 {
		for i := 0; i < m.rows; i++ {
			s += fmt.Sprintf("\n%v", m.Row(i))
		}
	}
	return s
}
