package power

import "fmt"

// Tariff models the §4.3 observation that the monetary cost of energy
// "may vary between day and night depending on the rates set by the power
// suppliers": a periodic two-rate schedule over control periods.
//
// Combined with EdgeBOL's decomposed-cost mode, the controller can follow
// the tariff at runtime — the learned power surfaces are price-independent
// and only the acquisition's weighting changes.
type Tariff struct {
	// DayRate and NightRate are prices in monetary units per watt.
	DayRate, NightRate float64
	// PeriodsPerDay is the full day length in control periods and
	// DayStart/DayEnd delimit the day-rate window [DayStart, DayEnd).
	PeriodsPerDay, DayStart, DayEnd int
}

// NewTariff validates and returns a tariff.
func NewTariff(dayRate, nightRate float64, periodsPerDay, dayStart, dayEnd int) (*Tariff, error) {
	if dayRate <= 0 || nightRate <= 0 {
		return nil, fmt.Errorf("power: non-positive tariff rates %v/%v", dayRate, nightRate)
	}
	if periodsPerDay < 2 {
		return nil, fmt.Errorf("power: day of %d periods too short", periodsPerDay)
	}
	if dayStart < 0 || dayEnd <= dayStart || dayEnd > periodsPerDay {
		return nil, fmt.Errorf("power: day window [%d,%d) invalid for %d periods", dayStart, dayEnd, periodsPerDay)
	}
	return &Tariff{
		DayRate: dayRate, NightRate: nightRate,
		PeriodsPerDay: periodsPerDay, DayStart: dayStart, DayEnd: dayEnd,
	}, nil
}

// IsDay reports whether control period t falls in the day-rate window.
func (t *Tariff) IsDay(period int) bool {
	p := period % t.PeriodsPerDay
	if p < 0 {
		p += t.PeriodsPerDay
	}
	return p >= t.DayStart && p < t.DayEnd
}

// Rate returns the price at control period t.
func (t *Tariff) Rate(period int) float64 {
	if t.IsDay(period) {
		return t.DayRate
	}
	return t.NightRate
}
