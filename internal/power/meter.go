// Package power emulates the digital power meter of the prototype (GW-Instek
// GPM-8213 with the GPM-001 adapter): a sampling instrument whose readings
// carry zero-mean Gaussian noise and are averaged over a measurement window
// before being reported to the learning agent over the O1 interface.
package power

import (
	"fmt"
	"math"
	"math/rand"
)

// Meter samples a true power value with additive Gaussian noise.
type Meter struct {
	// NoiseStdW is the per-sample noise standard deviation in watts.
	NoiseStdW float64
	// SamplesPerWindow is how many samples are averaged per reading.
	SamplesPerWindow int

	rng *rand.Rand
}

// NewMeter returns a meter with the given per-sample noise and averaging
// window. rng is required.
func NewMeter(noiseStdW float64, samplesPerWindow int, rng *rand.Rand) (*Meter, error) {
	if noiseStdW < 0 {
		return nil, fmt.Errorf("power: negative noise std %v", noiseStdW)
	}
	if samplesPerWindow < 1 {
		return nil, fmt.Errorf("power: window of %d samples invalid", samplesPerWindow)
	}
	if rng == nil {
		return nil, fmt.Errorf("power: rand source required")
	}
	return &Meter{NoiseStdW: noiseStdW, SamplesPerWindow: samplesPerWindow, rng: rng}, nil
}

// Sample returns one noisy sample of the true power (never negative).
func (m *Meter) Sample(trueW float64) float64 {
	v := trueW + m.rng.NormFloat64()*m.NoiseStdW
	if v < 0 {
		v = 0
	}
	return v
}

// Read returns a windowed reading: the mean of SamplesPerWindow samples,
// whose effective noise is NoiseStdW/√SamplesPerWindow.
func (m *Meter) Read(trueW float64) float64 {
	var sum float64
	for i := 0; i < m.SamplesPerWindow; i++ {
		sum += m.Sample(trueW)
	}
	return sum / float64(m.SamplesPerWindow)
}

// EffectiveNoiseStd returns the standard deviation of a windowed reading.
func (m *Meter) EffectiveNoiseStd() float64 {
	return m.NoiseStdW / math.Sqrt(float64(m.SamplesPerWindow))
}
