package power

import "testing"

func TestNewTariffValidation(t *testing.T) {
	cases := []struct {
		day, night                float64
		periods, dayStart, dayEnd int
	}{
		{0, 1, 10, 0, 5},
		{1, 0, 10, 0, 5},
		{1, 1, 1, 0, 1},
		{1, 1, 10, -1, 5},
		{1, 1, 10, 5, 5},
		{1, 1, 10, 0, 11},
	}
	for i, c := range cases {
		if _, err := NewTariff(c.day, c.night, c.periods, c.dayStart, c.dayEnd); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestTariffSchedule(t *testing.T) {
	tar, err := NewTariff(4, 1, 24, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !tar.IsDay(8) || !tar.IsDay(19) {
		t.Fatal("day window wrong")
	}
	if tar.IsDay(7) || tar.IsDay(20) || tar.IsDay(23) {
		t.Fatal("night window wrong")
	}
	if tar.Rate(10) != 4 || tar.Rate(2) != 1 {
		t.Fatal("rates wrong")
	}
	// Periodicity, including negative periods.
	if tar.IsDay(8+24) != tar.IsDay(8) || tar.IsDay(-16) != tar.IsDay(8) {
		t.Fatal("tariff not periodic")
	}
}
