package power

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMeterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMeter(-1, 10, rng); err == nil {
		t.Fatal("expected error for negative noise")
	}
	if _, err := NewMeter(1, 0, rng); err == nil {
		t.Fatal("expected error for empty window")
	}
	if _, err := NewMeter(1, 10, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestSampleNeverNegative(t *testing.T) {
	m, err := NewMeter(5, 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if m.Sample(0.1) < 0 {
			t.Fatal("sample went negative")
		}
	}
}

func TestReadUnbiased(t *testing.T) {
	m, err := NewMeter(2, 50, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		sum += m.Read(120)
	}
	mean := sum / n
	if math.Abs(mean-120) > 0.2 {
		t.Fatalf("windowed readings biased: mean %v, want ≈120", mean)
	}
}

func TestWindowReducesNoise(t *testing.T) {
	std := func(window int) float64 {
		m, err := NewMeter(3, window, rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		var vals []float64
		for i := 0; i < 400; i++ {
			vals = append(vals, m.Read(100))
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss / float64(len(vals)))
	}
	if std(25) >= std(1) {
		t.Fatal("averaging window should reduce reading noise")
	}
}

func TestEffectiveNoiseStd(t *testing.T) {
	m, err := NewMeter(4, 16, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.EffectiveNoiseStd()-1) > 1e-12 {
		t.Fatalf("effective noise %v, want 1", m.EffectiveNoiseStd())
	}
}

func TestZeroNoiseMeterIsExact(t *testing.T) {
	m, err := NewMeter(0, 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Read(77.5); got != 77.5 {
		t.Fatalf("noise-free reading %v, want 77.5", got)
	}
}
