package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndHandlesNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", LatencyBuckets())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// Every operation on nil handles must be a safe no-op.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(0.2)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	r.EmitPeriod(PeriodRecord{})
	if r.Periods() != nil {
		t.Fatal("nil registry retains no periods")
	}
	r.AddPeriodSink(func(PeriodRecord) {})
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "iface", "a1")
	b := r.Counter("reqs_total", "iface", "a1")
	if a != b {
		t.Fatal("same identity must return the same handle")
	}
	other := r.Counter("reqs_total", "iface", "e2")
	if a == other {
		t.Fatal("distinct label sets must be distinct series")
	}
	a.Inc()
	a.Inc()
	other.Inc()
	snap := r.Snapshot()
	if snap.Counters[`reqs_total{iface="a1"}`] != 2 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
	if snap.Counters[`reqs_total{iface="e2"}`] != 1 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two kinds must panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.9, 2} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat_seconds"]
	if s.Count != 5 {
		t.Fatalf("count %d", s.Count)
	}
	if math.Abs(s.Sum-3.35) > 1e-12 {
		t.Fatalf("sum %v", s.Sum)
	}
	// Cumulative buckets: ≤0.1 → {0.05, 0.1}; ≤0.5 → +0.3; ≤1 → +0.9; +Inf → +2.
	wantCum := []uint64{2, 3, 4, 5}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Fatalf("bucket %d: got %d want %d (%+v)", i, s.Buckets[i].Count, want, s.Buckets)
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, +1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("v")
	g.Set(2.5)
	g.Add(-1)
	if math.Abs(g.Value()-1.5) > 1e-12 {
		t.Fatalf("gauge %v", g.Value())
	}
}

// TestConcurrentUpdates exercises the lock-free hot path under the race
// detector: counters, gauges, histograms, and period emission from many
// goroutines, interleaved with registration and reads.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Registration from every goroutine: same identities must
			// converge on the same handles.
			c := r.Counter("ops_total")
			g := r.Gauge("level")
			h := r.Histogram("lat_seconds", LatencyBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001 * float64(i%10))
				if i%100 == 0 {
					r.EmitPeriod(PeriodRecord{Period: id*perWorker + i})
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["ops_total"] != workers*perWorker {
		t.Fatalf("lost counter increments: %d", snap.Counters["ops_total"])
	}
	if math.Abs(snap.Gauges["level"]-workers*perWorker) > 1e-9 {
		t.Fatalf("lost gauge adds: %v", snap.Gauges["level"])
	}
	if snap.Histograms["lat_seconds"].Count != workers*perWorker {
		t.Fatalf("lost observations: %d", snap.Histograms["lat_seconds"].Count)
	}
	if got := len(r.Periods()); got != workers*perWorker/100 {
		t.Fatalf("period records %d", got)
	}
}

func TestPeriodRingEviction(t *testing.T) {
	r := NewRegistry()
	r.SetPeriodCapacity(4)
	for i := 1; i <= 6; i++ {
		r.EmitPeriod(PeriodRecord{Period: i})
	}
	got := r.Periods()
	if len(got) != 4 {
		t.Fatalf("retained %d", len(got))
	}
	for i, want := range []int{3, 4, 5, 6} {
		if got[i].Period != want {
			t.Fatalf("order %v", got)
		}
	}
	// Capacity is frozen after first use.
	r.SetPeriodCapacity(100)
	r.EmitPeriod(PeriodRecord{Period: 7})
	if len(r.Periods()) != 4 {
		t.Fatal("capacity must not change after first emit")
	}
}

func TestPeriodSinks(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var seen []int
	r.AddPeriodSink(func(rec PeriodRecord) {
		mu.Lock()
		seen = append(seen, rec.Period)
		mu.Unlock()
	})
	for i := 1; i <= 3; i++ {
		r.EmitPeriod(PeriodRecord{Period: i})
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("sink saw %v", seen)
	}
}
