package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGoldenFormat pins the exposition byte-for-byte: families
// in lexicographic order, one TYPE line per family, label sets ordered,
// histograms expanded into cumulative _bucket/_sum/_count series.
func TestPrometheusGoldenFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("edgebol_oran_requests_total", "iface", "a1").Add(3)
	r.Counter("edgebol_oran_requests_total", "iface", "e2").Add(7)
	r.Gauge("edgebol_core_safe_set_size").Set(42)
	h := r.Histogram("edgebol_core_sweep_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	const want = `# TYPE edgebol_core_safe_set_size gauge
edgebol_core_safe_set_size 42
# TYPE edgebol_core_sweep_seconds histogram
edgebol_core_sweep_seconds_bucket{le="0.01"} 1
edgebol_core_sweep_seconds_bucket{le="0.1"} 2
edgebol_core_sweep_seconds_bucket{le="+Inf"} 3
edgebol_core_sweep_seconds_sum 0.555
edgebol_core_sweep_seconds_count 3
# TYPE edgebol_oran_requests_total counter
edgebol_oran_requests_total{iface="a1"} 3
edgebol_oran_requests_total{iface="e2"} 7
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	srv := httptest.NewServer(Mux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Fatalf("body %q", buf[:n])
	}

	// pprof surface is mounted alongside /metrics.
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = pp.Body.Close() }()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof status %d", pp.StatusCode)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Fatalf("nil registry: code %d body %q", rec.Code, rec.Body.String())
	}
}
