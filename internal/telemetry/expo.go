package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every registered metric, keyed by
// the metric's full identity (family name plus rendered label set, e.g.
// `edgebol_oran_requests_total{iface="a1"}`). It backs tests and
// programmatic consumers that don't want to parse the exposition text.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures all metrics. A nil registry returns the zero value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			s.Counters[m.identity()] = m.counter.Value()
		case kindGauge:
			s.Gauges[m.identity()] = m.gauge.Value()
		case kindHistogram:
			s.Histograms[m.identity()] = m.hist.snapshot()
		}
	}
	return s
}

// formatValue renders a float in the Prometheus text format.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labeledName splices extra label pairs into an identity that may or may
// not already carry a label block: name{a="b"} + le="x" → name{a="b",le="x"}.
func labeledName(name, labels, extra string) string {
	if labels == "" {
		return name + "{" + extra + "}"
	}
	return name + strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family followed by its
// samples, families and label sets in lexicographic order. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b bytes.Buffer
	lastFamily := ""
	for _, m := range r.sorted() {
		if m.name != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			lastFamily = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", m.name, m.labels, formatValue(m.gauge.Value()))
		case kindHistogram:
			hs := m.hist.snapshot()
			for _, bkt := range hs.Buckets {
				le := "+Inf"
				if !math.IsInf(bkt.UpperBound, +1) {
					le = formatValue(bkt.UpperBound)
				}
				fmt.Fprintf(&b, "%s %d\n", labeledName(m.name+"_bucket", m.labels, `le="`+le+`"`), bkt.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.labels, formatValue(hs.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels, hs.Count)
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// Handler returns an http.Handler serving the exposition text. It is safe
// on a nil registry (serves an empty body).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The body was fully assembled before writing; a failed write means
		// the scraper went away.
		_ = r.WritePrometheus(w)
	})
}

// Mux returns an http.ServeMux exposing the registry at /metrics and the
// runtime profiles at /debug/pprof/ — the deployment's observability
// endpoint surface.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
