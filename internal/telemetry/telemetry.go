// Package telemetry is EdgeBOL's runtime observability subsystem: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), a Prometheus-text-format exposition handler, and a
// structured per-period event stream (PeriodRecord) that captures the
// whole learning loop — context, control, KPIs, cost, safe-set state,
// posterior beliefs, GP training-set evolution, and sweep latency.
//
// Design contract:
//
//   - Zero overhead when disabled. Every method on *Registry and on the
//     metric handles (*Counter, *Gauge, *Histogram) is a no-op on a nil
//     receiver, so instrumented code calls them unconditionally and a nil
//     registry costs one predictable branch — the GP inference benchmarks
//     are unaffected.
//   - Lock-cheap, allocation-free hot path. Handles are registered once
//     (Registry.Counter et al. take the registry lock) and then updated
//     with plain atomics; Inc/Add/Set/Observe never allocate and never
//     take a lock.
//   - Safe for concurrent use. All handle updates and Registry reads
//     (Snapshot, WritePrometheus, Periods) may run concurrently with each
//     other and with registrations.
//
// Metric identity is the metric name plus an optional fixed label set
// given at registration as alternating key/value pairs. Registering the
// same identity twice returns the same handle; registering it with a
// different kind or bucket layout panics (a programming error, caught in
// tests).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the registry's metric families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered time series.
type metric struct {
	name   string // family name, e.g. "edgebol_oran_requests_total"
	labels string // rendered label set, e.g. `{iface="a1"}`, or ""
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// identity is the registry map key: family name plus rendered labels.
func (m *metric) identity() string { return m.name + m.labels }

// Registry holds a set of named metrics and the per-period event log.
// The zero value is not usable; construct with NewRegistry. A nil
// *Registry is a valid "telemetry disabled" value: every method no-ops
// and every handle it returns is nil (itself a no-op).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric

	periods periodLog
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// renderLabels turns alternating key/value pairs into the exposition
// label block. Pairs are kept in the given order so identity is stable.
func renderLabels(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label pairs %v", labelPairs))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labelPairs[i], labelPairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register adds or returns the metric with the given identity, checking
// kind consistency.
func (r *Registry) register(name string, labelPairs []string, kind metricKind) *metric {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	m := &metric{name: name, labels: renderLabels(labelPairs), kind: kind}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[m.identity()]; ok {
		if prev.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s and %s", m.identity(), prev.kind, kind))
		}
		return prev
	}
	// A family must have one kind across all label sets.
	for _, prev := range r.metrics {
		if prev.name == name && prev.kind != kind {
			panic(fmt.Sprintf("telemetry: family %s registered as %s and %s", name, prev.kind, kind))
		}
	}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	}
	r.metrics[m.identity()] = m
	return m
}

// Counter registers (or fetches) a monotonically increasing counter.
// labelPairs are alternating key/value pairs fixed at registration.
// A nil registry returns a nil handle, whose methods no-op.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, labelPairs, kindCounter).counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, labelPairs, kindGauge).gauge
}

// Histogram registers (or fetches) a fixed-bucket histogram. buckets are
// ascending upper bounds; a final +Inf bucket is implicit. Registering
// the same identity with different buckets panics.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, labelPairs, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		m.hist = newHistogram(buckets)
		return m.hist
	}
	if len(m.hist.bounds) != len(buckets) {
		panic(fmt.Sprintf("telemetry: %s re-registered with different buckets", m.identity()))
	}
	for i, b := range buckets {
		if math.Abs(m.hist.bounds[i]-b) > 1e-12 {
			panic(fmt.Sprintf("telemetry: %s re-registered with different buckets", m.identity()))
		}
	}
	return m.hist
}

// sorted returns the registered metrics ordered by (name, labels) — the
// deterministic exposition and snapshot order.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Counter is a monotonically increasing uint64 metric. A nil *Counter
// no-ops, so instrumented code never branches on "telemetry enabled".
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by v (lock-free CAS loop).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
