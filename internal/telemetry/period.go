package telemetry

import "sync"

// PeriodRecord is one structured event per control period — the trace the
// paper reads off its dashboards (Figs. 9–13) made programmatic. Fields
// use plain numeric types so the telemetry package stays dependency-free;
// the core agent fills them from its own vocabulary.
type PeriodRecord struct {
	// Period is the agent's observation count after this period (1-based).
	Period int

	// Context: the slice state c_t.
	NumUsers int
	MeanCQI  float64
	VarCQI   float64

	// Control: the joint policy x_t.
	Resolution float64
	Airtime    float64
	GPUSpeed   float64
	MCS        float64
	// SplitLayer is the device/edge DNN partition position (0 = all-edge,
	// the paper's original workload).
	SplitLayer float64

	// KPIs observed for the period, raw units.
	Delay       float64
	GPUDelay    float64
	MAP         float64
	ServerPower float64
	BSPower     float64
	// Cost is the scalar energy cost u_t = δ₁·p_s + δ₂·p_b.
	Cost float64

	// Safe-set and acquisition diagnostics.
	SafeSetSize int
	FromSeed    bool
	LCB         float64
	// AcqMode is the resolved acquisition engine ("exhaustive" or
	// "adaptive"); CandidatesEvaluated counts grid points whose posterior
	// was computed this period, and RefineRounds the multigrid refinement
	// rounds of the adaptive engine (0 when exhaustive).
	AcqMode             string
	CandidatesEvaluated int
	RefineRounds        int

	// Posterior beliefs at the chosen control, normalized GP units,
	// indexed cost=0, delay=1, mAP=2.
	PostMean  [3]float64
	PostSigma [3]float64

	// GP training-set state after the observation.
	TrainSize int
	// Evictions is the cumulative sliding-window eviction count across
	// the agent's GPs.
	Evictions uint64

	// Sweep execution: resolved worker count and wall-clock latency of
	// the posterior sweep + safe set + acquisition.
	Workers      int
	SweepSeconds float64
}

// defaultPeriodCapacity bounds the retained per-period history; older
// records are overwritten ring-buffer style. 4096 periods is hours of
// learning at the paper's 30 s control period.
const defaultPeriodCapacity = 4096

// periodLog is the registry's bounded event stream: a ring buffer plus
// fan-out sinks for live consumers.
type periodLog struct {
	mu    sync.Mutex
	recs  []PeriodRecord
	next  int
	full  bool
	cap   int
	sinks []func(PeriodRecord)
}

// EmitPeriod appends a per-period record to the bounded event log and
// fans it out to all registered sinks (synchronously — sinks must be
// fast or buffer internally). A nil registry no-ops.
func (r *Registry) EmitPeriod(rec PeriodRecord) {
	if r == nil {
		return
	}
	p := &r.periods
	p.mu.Lock()
	if p.cap == 0 {
		p.cap = defaultPeriodCapacity
	}
	if len(p.recs) < p.cap {
		p.recs = append(p.recs, rec)
	} else {
		p.recs[p.next] = rec
		p.full = true
	}
	p.next = (p.next + 1) % p.cap
	sinks := p.sinks
	p.mu.Unlock()
	for _, fn := range sinks {
		fn(rec)
	}
}

// Periods returns a copy of the retained per-period records, oldest
// first. A nil registry returns nil.
func (r *Registry) Periods() []PeriodRecord {
	if r == nil {
		return nil
	}
	p := &r.periods
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.full {
		return append([]PeriodRecord(nil), p.recs...)
	}
	out := make([]PeriodRecord, 0, len(p.recs))
	out = append(out, p.recs[p.next:]...)
	out = append(out, p.recs[:p.next]...)
	return out
}

// AddPeriodSink registers a live consumer invoked synchronously on every
// EmitPeriod. A nil registry no-ops.
func (r *Registry) AddPeriodSink(fn func(PeriodRecord)) {
	if r == nil || fn == nil {
		return
	}
	p := &r.periods
	p.mu.Lock()
	// Copy-on-write keeps EmitPeriod's unlocked fan-out race-free.
	sinks := make([]func(PeriodRecord), 0, len(p.sinks)+1)
	sinks = append(sinks, p.sinks...)
	p.sinks = append(sinks, fn)
	p.mu.Unlock()
}

// SetPeriodCapacity bounds the retained per-period history (minimum 1).
// It must be called before the first EmitPeriod; later calls are ignored
// so the ring geometry never changes under a reader.
func (r *Registry) SetPeriodCapacity(n int) {
	if r == nil || n < 1 {
		return
	}
	p := &r.periods
	p.mu.Lock()
	if len(p.recs) == 0 && p.cap == 0 {
		p.cap = n
	}
	p.mu.Unlock()
}
