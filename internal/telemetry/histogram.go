package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket cumulative histogram. Buckets are chosen at
// registration and never change, so Observe is a binary search plus two
// atomic adds — lock-free and allocation-free.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // per-bucket (non-cumulative), len(bounds)+1
	count  atomic.Uint64
	sum    Gauge // atomic float accumulator
}

// newHistogram validates the bounds and allocates the bucket array.
func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram buckets %v not ascending", buckets))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("telemetry: duplicate histogram bucket %v", buckets[i]))
		}
	}
	if math.IsInf(buckets[len(buckets)-1], +1) {
		buckets = buckets[:len(buckets)-1] // +Inf is implicit
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound contains v (≤, per Prometheus).
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the insertion point for v; when v equals a
	// bound it lands on that bound's index, which is the right bucket.
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound (le); the final
	// bucket's bound is +Inf.
	UpperBound float64
	// Count is the cumulative number of observations ≤ UpperBound.
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

// snapshot copies the histogram state. Buckets are cumulative, matching
// the Prometheus exposition.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]BucketCount, len(h.bounds)+1)}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(+1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{UpperBound: bound, Count: cum}
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Value()
	return s
}

// LatencyBuckets returns the default request-latency bucket bounds in
// seconds (100 µs .. 2.5 s), suited to loopback control-plane round trips
// and per-period acquisition sweeps alike.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
	}
}
