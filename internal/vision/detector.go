package vision

import (
	"fmt"
	"math"
	"math/rand"
)

// Detection is one detector output: a category, a localized box, and a
// confidence score.
type Detection struct {
	Category int
	Box      Box
	Score    float64
}

// DetectorConfig shapes the simulated object detector. The defaults are
// calibrated so that mAP over resolution matches the prototype's Detectron2
// measurements (Fig. 1: ≈0.17 at 25 % resolution up to ≈0.62 at 100 %).
type DetectorConfig struct {
	// AreaMidLog2 is the log2 pixel area at which the easiest category is
	// detected with probability ½.
	AreaMidLog2 float64
	// CategorySpread is the per-category increment of that threshold,
	// making some categories harder (as in COCO).
	CategorySpread float64
	// Slope is the logistic slope of detection probability vs log2 area.
	Slope float64
	// JitterCoeff controls localization error: the relative box jitter is
	// JitterCoeff/√(delivered pixel area), so small or low-resolution
	// objects localize worse and fail the IoU-0.5 match more often.
	JitterCoeff float64
	// ScoreNoise is the stddev of confidence-score noise.
	ScoreNoise float64
	// FPRate is the Poisson mean of false positives per image at full
	// resolution; FPLowResBoost adds more at lower resolutions.
	FPRate, FPLowResBoost float64
	// ResPenalty subtracts (1−resolution)·ResPenalty from the detection
	// logit: aggressive downsampling destroys texture detail beyond the raw
	// pixel count, so even large objects get harder to recognize.
	ResPenalty float64
	// ResJitter adds (1−resolution)²·ResJitter of relative box jitter
	// independent of object size — interpolation artifacts blur edges of
	// large and small objects alike.
	ResJitter float64
}

// DefaultDetectorConfig returns the calibrated detector.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		AreaMidLog2:    9.6,
		CategorySpread: 0.5,
		Slope:          0.7,
		JitterCoeff:    6.0,
		ScoreNoise:     0.12,
		FPRate:         0.3,
		FPLowResBoost:  1.5,
		ResPenalty:     1.2,
		ResJitter:      0.15,
	}
}

// Validate reports whether the configuration is usable.
func (c DetectorConfig) Validate() error {
	if c.Slope <= 0 {
		return fmt.Errorf("vision: non-positive detector slope %v", c.Slope)
	}
	if c.JitterCoeff < 0 || c.ScoreNoise < 0 || c.FPRate < 0 || c.FPLowResBoost < 0 || c.ResPenalty < 0 || c.ResJitter < 0 {
		return fmt.Errorf("vision: negative detector noise parameter")
	}
	return nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// detectionProb returns the probability that an object of the given
// full-resolution area is detected when the image is delivered at the given
// resolution fraction.
func (c DetectorConfig) detectionProb(category int, fullArea, resolution float64) float64 {
	area := fullArea * resolution
	if area < 1 {
		area = 1
	}
	threshold := c.AreaMidLog2 + c.CategorySpread*float64(category)
	return sigmoid((math.Log2(area)-threshold)/c.Slope - (1-resolution)*c.ResPenalty)
}

// Detect simulates running the detector on one scene delivered at the given
// resolution fraction (0, 1]. It returns the detections; ground truth stays
// in the scene for the evaluator.
func Detect(scene Scene, resolution float64, cfg DetectorConfig, rng *rand.Rand) []Detection {
	if resolution <= 0 {
		return nil
	}
	if resolution > 1 {
		resolution = 1
	}
	var dets []Detection
	for _, obj := range scene.Objects {
		p := cfg.detectionProb(obj.Category, obj.Box.Area(), resolution)
		if rng.Float64() >= p {
			continue
		}
		deliveredArea := obj.Box.Area() * resolution
		rel := cfg.JitterCoeff/math.Sqrt(deliveredArea) + cfg.ResJitter*(1-resolution)*(1-resolution)
		b := obj.Box
		b.X += rng.NormFloat64() * rel * obj.Box.W
		b.Y += rng.NormFloat64() * rel * obj.Box.H
		b.W *= math.Exp(rng.NormFloat64() * rel)
		b.H *= math.Exp(rng.NormFloat64() * rel)
		score := clamp(p+rng.NormFloat64()*cfg.ScoreNoise, 0.05, 0.99)
		dets = append(dets, Detection{Category: obj.Category, Box: b, Score: score})
	}
	// False positives: hallucinated boxes with low-to-middling confidence.
	fpMean := cfg.FPRate + cfg.FPLowResBoost*(1-resolution)
	for i := poisson(rng, fpMean); i > 0; i-- {
		w := 20 + rng.Float64()*150
		h := 20 + rng.Float64()*150
		dets = append(dets, Detection{
			Category: rng.Intn(NumCategories),
			Box: Box{
				X: rng.Float64() * (FullWidth - w),
				Y: rng.Float64() * (FullHeight - h),
				W: w, H: h,
			},
			Score: 0.05 + rng.Float64()*0.5,
		})
	}
	return dets
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
