package vision

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIoU(t *testing.T) {
	a := Box{0, 0, 10, 10}
	cases := []struct {
		b    Box
		want float64
	}{
		{Box{0, 0, 10, 10}, 1},
		{Box{20, 20, 5, 5}, 0},
		{Box{5, 0, 10, 10}, 50.0 / 150.0},
		{Box{0, 0, 5, 10}, 0.5},
	}
	for _, c := range cases {
		if got := IoU(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("IoU(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestIoUSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rb := func() Box {
			return Box{rng.Float64() * 500, rng.Float64() * 400, 1 + rng.Float64()*200, 1 + rng.Float64()*200}
		}
		a, b := rb(), rb()
		x, y := IoU(a, b), IoU(b, a)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateScene(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultSceneConfig()
	for i := 0; i < 100; i++ {
		s := GenerateScene(cfg, rng)
		if len(s.Objects) < 1 {
			t.Fatal("every scene must contain at least one object")
		}
		for _, o := range s.Objects {
			if o.Category < 0 || o.Category >= NumCategories {
				t.Fatalf("category %d out of range", o.Category)
			}
			b := o.Box
			if b.X < 0 || b.Y < 0 || b.X+b.W > FullWidth+1e-9 || b.Y+b.H > FullHeight+1e-9 {
				t.Fatalf("box %v escapes the %dx%d frame", b, FullWidth, FullHeight)
			}
			frac := b.Area() / FullPixels
			if frac < cfg.MinAreaFrac/2 || frac > cfg.MaxAreaFrac*1.01 {
				t.Fatalf("object area fraction %v outside configured bounds", frac)
			}
		}
	}
}

func TestSceneConfigValidate(t *testing.T) {
	if err := DefaultSceneConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SceneConfig{
		{MeanObjects: -1, MinAreaFrac: 0.01, MaxAreaFrac: 0.2},
		{MeanObjects: 3, MinAreaFrac: 0, MaxAreaFrac: 0.2},
		{MeanObjects: 3, MinAreaFrac: 0.3, MaxAreaFrac: 0.2},
		{MeanObjects: 3, MinAreaFrac: 0.01, MaxAreaFrac: 1.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("expected validation error for %+v", c)
		}
	}
}

func TestDetectorConfigValidate(t *testing.T) {
	if err := DefaultDetectorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	c := DefaultDetectorConfig()
	c.Slope = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for zero slope")
	}
	c = DefaultDetectorConfig()
	c.FPRate = -1
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for negative FP rate")
	}
}

func TestDetectZeroResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := GenerateScene(DefaultSceneConfig(), rng)
	if d := Detect(s, 0, DefaultDetectorConfig(), rng); d != nil {
		t.Fatal("zero resolution must yield no detections")
	}
}

func TestDetectScoresInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultDetectorConfig()
	for i := 0; i < 50; i++ {
		s := GenerateScene(DefaultSceneConfig(), rng)
		for _, d := range Detect(s, 0.5, cfg, rng) {
			if d.Score < 0.05 || d.Score > 0.99 {
				t.Fatalf("score %v out of range", d.Score)
			}
			if d.Category < 0 || d.Category >= NumCategories {
				t.Fatalf("category %d out of range", d.Category)
			}
		}
	}
}

func TestDetectionProbMonotoneInResolution(t *testing.T) {
	cfg := DefaultDetectorConfig()
	for _, area := range []float64{2000, 10000, 50000} {
		prev := 0.0
		for res := 0.1; res <= 1.0; res += 0.1 {
			p := cfg.detectionProb(3, area, res)
			if p < prev {
				t.Fatalf("detection prob not monotone in resolution at area %v", area)
			}
			prev = p
		}
	}
}

func TestMAPPerfectDetector(t *testing.T) {
	// Detections identical to ground truth with score 1 yield mAP 1.
	rng := rand.New(rand.NewSource(4))
	samples := make([]EvalSample, 20)
	for i := range samples {
		s := GenerateScene(DefaultSceneConfig(), rng)
		dets := make([]Detection, len(s.Objects))
		for j, o := range s.Objects {
			dets[j] = Detection{Category: o.Category, Box: o.Box, Score: 0.99}
		}
		samples[i] = EvalSample{Truth: s.Objects, Detections: dets}
	}
	if m := MeanAveragePrecision(samples); math.Abs(m-1) > 1e-12 {
		t.Fatalf("perfect detector mAP = %v, want 1", m)
	}
}

func TestMAPBlindDetector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]EvalSample, 20)
	for i := range samples {
		s := GenerateScene(DefaultSceneConfig(), rng)
		samples[i] = EvalSample{Truth: s.Objects}
	}
	if m := MeanAveragePrecision(samples); m != 0 {
		t.Fatalf("blind detector mAP = %v, want 0", m)
	}
}

func TestMAPPenalizesFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mk := func(withFP bool) []EvalSample {
		r := rand.New(rand.NewSource(7))
		samples := make([]EvalSample, 30)
		for i := range samples {
			s := GenerateScene(DefaultSceneConfig(), r)
			dets := make([]Detection, 0, len(s.Objects)+1)
			for _, o := range s.Objects {
				dets = append(dets, Detection{Category: o.Category, Box: o.Box, Score: 0.9})
			}
			if withFP {
				dets = append(dets, Detection{
					Category: rng.Intn(NumCategories),
					Box:      Box{rng.Float64() * 500, rng.Float64() * 380, 50, 50},
					Score:    0.95, // high-confidence junk hurts most
				})
			}
			samples[i] = EvalSample{Truth: s.Objects, Detections: dets}
		}
		return samples
	}
	clean := MeanAveragePrecision(mk(false))
	dirty := MeanAveragePrecision(mk(true))
	if dirty >= clean {
		t.Fatalf("false positives must reduce mAP: %v >= %v", dirty, clean)
	}
}

func TestMAPEmptyBatch(t *testing.T) {
	if m := MeanAveragePrecision(nil); m != 0 {
		t.Fatalf("empty batch mAP = %v, want 0", m)
	}
}

func TestEstimateMAPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := EstimateMAP(0.5, 0, DefaultSceneConfig(), DefaultDetectorConfig(), rng); err == nil {
		t.Fatal("expected error for zero images")
	}
	if _, err := EstimateMAP(0, 10, DefaultSceneConfig(), DefaultDetectorConfig(), rng); err == nil {
		t.Fatal("expected error for zero resolution")
	}
	if _, err := EstimateMAP(1.5, 10, DefaultSceneConfig(), DefaultDetectorConfig(), rng); err == nil {
		t.Fatal("expected error for resolution > 1")
	}
}

// Calibration: the mAP-vs-resolution curve must match the Fig. 1 envelope —
// ≈0.17 at 25 % resolution rising to ≈0.62 at 100 % — and be monotone.
func TestMAPResolutionCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	at := func(res float64) float64 {
		m, err := EstimateMAP(res, 1200, DefaultSceneConfig(), DefaultDetectorConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m25, m50, m75, m100 := at(0.25), at(0.5), at(0.75), at(1.0)
	t.Logf("mAP: 25%%=%.3f 50%%=%.3f 75%%=%.3f 100%%=%.3f", m25, m50, m75, m100)
	if !(m25 < m50 && m50 < m75 && m75 < m100) {
		t.Fatalf("mAP not monotone in resolution: %v %v %v %v", m25, m50, m75, m100)
	}
	checks := []struct {
		name   string
		val    float64
		lo, hi float64
	}{
		{"mAP@25%", m25, 0.08, 0.28},
		{"mAP@50%", m50, 0.28, 0.50},
		{"mAP@75%", m75, 0.44, 0.66},
		{"mAP@100%", m100, 0.56, 0.76},
	}
	for _, c := range checks {
		if c.val < c.lo || c.val > c.hi {
			t.Errorf("%s = %.3f outside calibration band [%.2f, %.2f]", c.name, c.val, c.lo, c.hi)
		}
	}
}

// Sampling noise must shrink with batch size, mirroring the 150-image
// averaging on the prototype.
func TestMAPNoiseShrinksWithBatch(t *testing.T) {
	spread := func(n int) float64 {
		var vals []float64
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			m, err := EstimateMAP(0.6, n, DefaultSceneConfig(), DefaultDetectorConfig(), rng)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, m)
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss / float64(len(vals)))
	}
	small, large := spread(25), spread(400)
	if large >= small {
		t.Fatalf("mAP stddev should shrink with batch size: n=25 %v vs n=400 %v", small, large)
	}
}
