package vision

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
)

// COCO-format interchange: the synthetic dataset and detection results can
// be exported in (a minimal subset of) the COCO annotation schema used by
// the paper's dataset, so external evaluation tooling — or a real
// Detectron2 run — can consume the same batches the simulator scores.

// COCOImage is one image entry.
type COCOImage struct {
	ID     int `json:"id"`
	Width  int `json:"width"`
	Height int `json:"height"`
}

// COCOAnnotation is one ground-truth box.
type COCOAnnotation struct {
	ID         int        `json:"id"`
	ImageID    int        `json:"image_id"`
	CategoryID int        `json:"category_id"`
	BBox       [4]float64 `json:"bbox"` // x, y, w, h
	Area       float64    `json:"area"`
	IsCrowd    int        `json:"iscrowd"`
}

// COCOCategory is one category entry.
type COCOCategory struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

// COCODataset is the annotation file layout.
type COCODataset struct {
	Images      []COCOImage      `json:"images"`
	Annotations []COCOAnnotation `json:"annotations"`
	Categories  []COCOCategory   `json:"categories"`
}

// COCODetection is one detection-results entry (the separate results-file
// schema COCO evaluators consume).
type COCODetection struct {
	ImageID    int        `json:"image_id"`
	CategoryID int        `json:"category_id"`
	BBox       [4]float64 `json:"bbox"`
	Score      float64    `json:"score"`
}

// ExportCOCO renders a batch of evaluation samples as a COCO annotation
// dataset plus a detection-results list.
func ExportCOCO(samples []EvalSample) (COCODataset, []COCODetection) {
	ds := COCODataset{}
	for c := 0; c < NumCategories; c++ {
		ds.Categories = append(ds.Categories, COCOCategory{ID: c + 1, Name: fmt.Sprintf("category-%d", c)})
	}
	var dets []COCODetection
	annID := 1
	for i, s := range samples {
		imgID := i + 1
		ds.Images = append(ds.Images, COCOImage{ID: imgID, Width: FullWidth, Height: FullHeight})
		for _, o := range s.Truth {
			ds.Annotations = append(ds.Annotations, COCOAnnotation{
				ID:         annID,
				ImageID:    imgID,
				CategoryID: o.Category + 1,
				BBox:       [4]float64{o.Box.X, o.Box.Y, o.Box.W, o.Box.H},
				Area:       o.Box.Area(),
			})
			annID++
		}
		for _, d := range s.Detections {
			dets = append(dets, COCODetection{
				ImageID:    imgID,
				CategoryID: d.Category + 1,
				BBox:       [4]float64{d.Box.X, d.Box.Y, d.Box.W, d.Box.H},
				Score:      d.Score,
			})
		}
	}
	return ds, dets
}

// ImportCOCO reconstructs evaluation samples from a COCO dataset and
// detection results, the inverse of ExportCOCO. Unknown image references
// are rejected; categories outside the simulator's range are rejected.
func ImportCOCO(ds COCODataset, dets []COCODetection) ([]EvalSample, error) {
	index := make(map[int]int, len(ds.Images)) // image id -> sample index
	samples := make([]EvalSample, len(ds.Images))
	for i, img := range ds.Images {
		if _, dup := index[img.ID]; dup {
			return nil, fmt.Errorf("vision: duplicate image id %d", img.ID)
		}
		index[img.ID] = i
	}
	category := func(id int) (int, error) {
		c := id - 1
		if c < 0 || c >= NumCategories {
			return 0, fmt.Errorf("vision: category id %d out of range", id)
		}
		return c, nil
	}
	for _, a := range ds.Annotations {
		i, ok := index[a.ImageID]
		if !ok {
			return nil, fmt.Errorf("vision: annotation %d references unknown image %d", a.ID, a.ImageID)
		}
		c, err := category(a.CategoryID)
		if err != nil {
			return nil, err
		}
		samples[i].Truth = append(samples[i].Truth, Object{
			Category: c,
			Box:      Box{X: a.BBox[0], Y: a.BBox[1], W: a.BBox[2], H: a.BBox[3]},
		})
	}
	for _, d := range dets {
		i, ok := index[d.ImageID]
		if !ok {
			return nil, fmt.Errorf("vision: detection references unknown image %d", d.ImageID)
		}
		c, err := category(d.CategoryID)
		if err != nil {
			return nil, err
		}
		samples[i].Detections = append(samples[i].Detections, Detection{
			Category: c,
			Box:      Box{X: d.BBox[0], Y: d.BBox[1], W: d.BBox[2], H: d.BBox[3]},
			Score:    d.Score,
		})
	}
	return samples, nil
}

// WriteCOCO serializes a dataset and results as two JSON documents.
func WriteCOCO(dsW, detW io.Writer, ds COCODataset, dets []COCODetection) error {
	enc := json.NewEncoder(dsW)
	enc.SetIndent("", " ")
	if err := enc.Encode(ds); err != nil {
		return fmt.Errorf("vision: encode dataset: %w", err)
	}
	denc := json.NewEncoder(detW)
	denc.SetIndent("", " ")
	if err := denc.Encode(dets); err != nil {
		return fmt.Errorf("vision: encode detections: %w", err)
	}
	return nil
}

// ReadCOCO parses the two JSON documents written by WriteCOCO.
func ReadCOCO(dsR, detR io.Reader) (COCODataset, []COCODetection, error) {
	var ds COCODataset
	if err := json.NewDecoder(dsR).Decode(&ds); err != nil {
		return COCODataset{}, nil, fmt.Errorf("vision: decode dataset: %w", err)
	}
	var dets []COCODetection
	if err := json.NewDecoder(detR).Decode(&dets); err != nil {
		return COCODataset{}, nil, fmt.Errorf("vision: decode detections: %w", err)
	}
	return ds, dets, nil
}

// GenerateBatch produces a measurement batch (scenes plus detections at a
// resolution), the unit the prototype evaluated per data point.
func GenerateBatch(resolution float64, numImages int, sceneCfg SceneConfig, detCfg DetectorConfig, rng *rand.Rand) ([]EvalSample, error) {
	if numImages <= 0 {
		return nil, fmt.Errorf("vision: numImages %d must be positive", numImages)
	}
	if resolution <= 0 || resolution > 1 {
		return nil, fmt.Errorf("vision: resolution %v outside (0,1]", resolution)
	}
	if err := sceneCfg.Validate(); err != nil {
		return nil, err
	}
	if err := detCfg.Validate(); err != nil {
		return nil, err
	}
	samples := make([]EvalSample, numImages)
	for i := range samples {
		scene := GenerateScene(sceneCfg, rng)
		samples[i] = EvalSample{
			Truth:      scene.Objects,
			Detections: Detect(scene, resolution, detCfg, rng),
		}
	}
	return samples, nil
}
