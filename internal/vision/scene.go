// Package vision replaces the paper's COCO dataset + Detectron2 Faster
// R-CNN stack with a synthetic but behaviourally faithful pipeline: it
// generates scenes with ground-truth objects, simulates a detector whose
// detection probability, localization accuracy, and false-positive rate
// depend on the delivered image resolution, and evaluates the detections
// with the standard mean-average-precision metric at IoU 0.5 (Performance
// Indicator 2).
//
// mAP is computed — precision/recall curves are integrated per category —
// rather than looked up, so the control loop sees realistic sampling noise
// that shrinks with the number of images, exactly as on the prototype where
// every measurement averaged 150 COCO images.
package vision

import (
	"fmt"
	"math"
	"math/rand"
)

// Image geometry of the prototype: 100 % resolution is 640×480 pixels (§3,
// Policy 1). The resolution policy scales the pixel *count*.
const (
	FullWidth  = 640
	FullHeight = 480
	FullPixels = FullWidth * FullHeight
)

// NumCategories is the number of object categories in the synthetic
// dataset. COCO has 80; a smaller set keeps per-measurement batches cheap
// while preserving per-category AP averaging.
const NumCategories = 10

// Box is an axis-aligned bounding box in full-resolution pixel coordinates.
type Box struct {
	X, Y, W, H float64
}

// Area returns the box area in pixels.
func (b Box) Area() float64 { return b.W * b.H }

// IoU returns the intersection-over-union of two boxes.
func IoU(a, b Box) float64 {
	x1 := math.Max(a.X, b.X)
	y1 := math.Max(a.Y, b.Y)
	x2 := math.Min(a.X+a.W, b.X+b.W)
	y2 := math.Min(a.Y+a.H, b.Y+b.H)
	if x2 <= x1 || y2 <= y1 {
		return 0
	}
	inter := (x2 - x1) * (y2 - y1)
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Object is a ground-truth object in a scene.
type Object struct {
	Category int
	Box      Box
}

// Scene is one generated image with its ground truth.
type Scene struct {
	Objects []Object
}

// SceneConfig controls the synthetic dataset statistics.
type SceneConfig struct {
	// MeanObjects is the Poisson mean of extra objects per image beyond the
	// first (every image has at least one object, as detection batches on
	// the prototype always depicted objects).
	MeanObjects float64
	// MinAreaFrac and MaxAreaFrac bound object areas as fractions of the
	// image (log-uniform), mimicking COCO's small/medium/large mix.
	MinAreaFrac, MaxAreaFrac float64
}

// DefaultSceneConfig mirrors a COCO-like mix: ≈4 objects per image, areas
// from 0.4 % ("small") to 25 % ("large") of the frame.
func DefaultSceneConfig() SceneConfig {
	return SceneConfig{MeanObjects: 3, MinAreaFrac: 0.004, MaxAreaFrac: 0.25}
}

// Validate reports whether the configuration is usable.
func (c SceneConfig) Validate() error {
	if c.MeanObjects < 0 {
		return fmt.Errorf("vision: negative MeanObjects %v", c.MeanObjects)
	}
	if c.MinAreaFrac <= 0 || c.MaxAreaFrac > 1 || c.MinAreaFrac >= c.MaxAreaFrac {
		return fmt.Errorf("vision: area fraction bounds [%v,%v] invalid", c.MinAreaFrac, c.MaxAreaFrac)
	}
	return nil
}

// GenerateScene draws one synthetic scene.
func GenerateScene(cfg SceneConfig, rng *rand.Rand) Scene {
	n := 1 + poisson(rng, cfg.MeanObjects)
	objs := make([]Object, n)
	logMin := math.Log(cfg.MinAreaFrac)
	logMax := math.Log(cfg.MaxAreaFrac)
	for i := range objs {
		areaFrac := math.Exp(logMin + rng.Float64()*(logMax-logMin))
		area := areaFrac * FullPixels
		// Aspect ratio in [0.5, 2].
		ar := math.Exp((rng.Float64()*2 - 1) * math.Ln2)
		w := math.Sqrt(area * ar)
		h := area / w
		if w > FullWidth {
			w = FullWidth
		}
		if h > FullHeight {
			h = FullHeight
		}
		objs[i] = Object{
			Category: rng.Intn(NumCategories),
			Box: Box{
				X: rng.Float64() * (FullWidth - w),
				Y: rng.Float64() * (FullHeight - h),
				W: w, H: h,
			},
		}
	}
	return Scene{Objects: objs}
}

// poisson samples a Poisson variate by inversion (mean is small here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
