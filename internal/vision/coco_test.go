package vision

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func sampleBatch(t *testing.T) []EvalSample {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	batch, err := GenerateBatch(0.8, 25, DefaultSceneConfig(), DefaultDetectorConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return batch
}

func TestExportImportRoundTripPreservesMAP(t *testing.T) {
	batch := sampleBatch(t)
	want := MeanAveragePrecision(batch)
	ds, dets := ExportCOCO(batch)
	back, err := ImportCOCO(ds, dets)
	if err != nil {
		t.Fatal(err)
	}
	got := MeanAveragePrecision(back)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("mAP changed across the round trip: %v vs %v", got, want)
	}
}

func TestExportStructure(t *testing.T) {
	batch := sampleBatch(t)
	ds, dets := ExportCOCO(batch)
	if len(ds.Images) != len(batch) {
		t.Fatalf("%d images, want %d", len(ds.Images), len(batch))
	}
	if len(ds.Categories) != NumCategories {
		t.Fatalf("%d categories, want %d", len(ds.Categories), NumCategories)
	}
	var wantAnn, wantDet int
	for _, s := range batch {
		wantAnn += len(s.Truth)
		wantDet += len(s.Detections)
	}
	if len(ds.Annotations) != wantAnn || len(dets) != wantDet {
		t.Fatalf("annotations/detections %d/%d, want %d/%d", len(ds.Annotations), len(dets), wantAnn, wantDet)
	}
	seen := map[int]bool{}
	for _, a := range ds.Annotations {
		if seen[a.ID] {
			t.Fatalf("duplicate annotation id %d", a.ID)
		}
		seen[a.ID] = true
		if a.CategoryID < 1 || a.CategoryID > NumCategories {
			t.Fatalf("category id %d outside COCO 1-based range", a.CategoryID)
		}
	}
}

func TestImportRejectsBadReferences(t *testing.T) {
	ds := COCODataset{
		Images:      []COCOImage{{ID: 1, Width: FullWidth, Height: FullHeight}},
		Annotations: []COCOAnnotation{{ID: 1, ImageID: 99, CategoryID: 1}},
	}
	if _, err := ImportCOCO(ds, nil); err == nil {
		t.Fatal("expected error for dangling annotation")
	}
	ds.Annotations[0].ImageID = 1
	ds.Annotations[0].CategoryID = NumCategories + 5
	if _, err := ImportCOCO(ds, nil); err == nil {
		t.Fatal("expected error for out-of-range category")
	}
	ds.Annotations = nil
	if _, err := ImportCOCO(ds, []COCODetection{{ImageID: 7, CategoryID: 1}}); err == nil {
		t.Fatal("expected error for dangling detection")
	}
	dup := COCODataset{Images: []COCOImage{{ID: 1}, {ID: 1}}}
	if _, err := ImportCOCO(dup, nil); err == nil {
		t.Fatal("expected error for duplicate image ids")
	}
}

func TestWriteReadCOCO(t *testing.T) {
	batch := sampleBatch(t)
	ds, dets := ExportCOCO(batch)
	var dsBuf, detBuf bytes.Buffer
	if err := WriteCOCO(&dsBuf, &detBuf, ds, dets); err != nil {
		t.Fatal(err)
	}
	ds2, dets2, err := ReadCOCO(&dsBuf, &detBuf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportCOCO(ds2, dets2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(MeanAveragePrecision(back)-MeanAveragePrecision(batch)) > 1e-12 {
		t.Fatal("serialized round trip changed the evaluation")
	}
}

func TestReadCOCOGarbage(t *testing.T) {
	if _, _, err := ReadCOCO(bytes.NewBufferString("{"), bytes.NewBufferString("[]")); err == nil {
		t.Fatal("expected dataset decode error")
	}
	if _, _, err := ReadCOCO(bytes.NewBufferString("{}"), bytes.NewBufferString("{")); err == nil {
		t.Fatal("expected detections decode error")
	}
}

func TestCOCOStyleMAPStricter(t *testing.T) {
	batch := sampleBatch(t)
	loose := MeanAveragePrecision(batch)
	strict := COCOStyleMAP(batch)
	if strict >= loose {
		t.Fatalf("AP@[.5:.95] (%v) must be below mAP@0.5 (%v)", strict, loose)
	}
	if strict <= 0 {
		t.Fatal("COCO-style mAP degenerate")
	}
	// Higher thresholds can only lower AP.
	prev := math.Inf(1)
	for thr := 0.5; thr < 0.96; thr += 0.15 {
		v := MeanAveragePrecisionAt(batch, thr)
		if v > prev+1e-12 {
			t.Fatalf("AP not monotone in IoU threshold at %v", thr)
		}
		prev = v
	}
}

func TestGenerateBatchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenerateBatch(0.5, 0, DefaultSceneConfig(), DefaultDetectorConfig(), rng); err == nil {
		t.Fatal("expected error for empty batch")
	}
	if _, err := GenerateBatch(0, 5, DefaultSceneConfig(), DefaultDetectorConfig(), rng); err == nil {
		t.Fatal("expected error for zero resolution")
	}
}
