package vision

import (
	"fmt"
	"math/rand"
	"sort"
)

// IoUThreshold is the match threshold for a true positive (PI 2 sets 0.5).
const IoUThreshold = 0.5

// MeanAveragePrecisionAt computes mAP at an arbitrary IoU threshold.
func MeanAveragePrecisionAt(samples []EvalSample, iouThreshold float64) float64 {
	return meanAveragePrecision(samples, iouThreshold)
}

// COCOStyleMAP computes the stricter COCO headline metric
// AP@[.5:.05:.95]: mAP averaged over ten IoU thresholds. The paper's
// metric is mAP@0.5 (MeanAveragePrecision); this is provided for external
// comparisons against COCO-evaluated detectors.
func COCOStyleMAP(samples []EvalSample) float64 {
	var sum float64
	n := 0
	for thr := 0.5; thr < 0.96; thr += 0.05 {
		sum += meanAveragePrecision(samples, thr)
		n++
	}
	return sum / float64(n)
}

// EvalSample is one image's ground truth and detections.
type EvalSample struct {
	Truth      []Object
	Detections []Detection
}

// MeanAveragePrecision computes mAP@0.5 over a batch of images following
// Performance Indicator 2: per category, detections are sorted by
// confidence, matched greedily to unmatched ground truth of the same image
// with IoU ≥ 0.5, the precision-recall curve is built, AP is the area below
// its monotone envelope, and mAP averages AP over categories with at least
// one ground-truth instance.
func MeanAveragePrecision(samples []EvalSample) float64 {
	return meanAveragePrecision(samples, IoUThreshold)
}

func meanAveragePrecision(samples []EvalSample, iouThreshold float64) float64 {
	type det struct {
		img   int
		score float64
		box   Box
	}
	detsByCat := make([][]det, NumCategories)
	gtCount := make([]int, NumCategories)
	for img, s := range samples {
		for _, o := range s.Truth {
			gtCount[o.Category]++
		}
		for _, d := range s.Detections {
			detsByCat[d.Category] = append(detsByCat[d.Category], det{img: img, score: d.Score, box: d.Box})
		}
	}

	var sumAP float64
	var catCount int
	for cat := 0; cat < NumCategories; cat++ {
		if gtCount[cat] == 0 {
			continue
		}
		catCount++
		ds := detsByCat[cat]
		sort.Slice(ds, func(i, j int) bool { return ds[i].score > ds[j].score })

		matched := make(map[int][]bool, len(samples)) // per image, per GT index of this category
		gtBoxes := make(map[int][]Box, len(samples))
		for img, s := range samples {
			for _, o := range s.Truth {
				if o.Category == cat {
					gtBoxes[img] = append(gtBoxes[img], o.Box)
				}
			}
			if n := len(gtBoxes[img]); n > 0 {
				matched[img] = make([]bool, n)
			}
		}

		tp := make([]int, len(ds))
		for i, d := range ds {
			best := -1
			bestIoU := iouThreshold
			for gi, gb := range gtBoxes[d.img] {
				if matched[d.img][gi] {
					continue
				}
				if iou := IoU(d.box, gb); iou >= bestIoU {
					bestIoU = iou
					best = gi
				}
			}
			if best >= 0 {
				matched[d.img][best] = true
				tp[i] = 1
			}
		}

		// Precision-recall curve and all-point interpolated AP.
		var cumTP, cumFP int
		recalls := make([]float64, len(ds))
		precisions := make([]float64, len(ds))
		for i := range ds {
			if tp[i] == 1 {
				cumTP++
			} else {
				cumFP++
			}
			recalls[i] = float64(cumTP) / float64(gtCount[cat])
			precisions[i] = float64(cumTP) / float64(cumTP+cumFP)
		}
		// Monotone precision envelope from the right.
		for i := len(precisions) - 2; i >= 0; i-- {
			if precisions[i] < precisions[i+1] {
				precisions[i] = precisions[i+1]
			}
		}
		var ap, prevRecall float64
		for i := range ds {
			if recalls[i] > prevRecall {
				ap += (recalls[i] - prevRecall) * precisions[i]
				prevRecall = recalls[i]
			}
		}
		sumAP += ap
	}
	if catCount == 0 {
		return 0
	}
	return sumAP / float64(catCount)
}

// EstimateMAP runs the full measurement pipeline the prototype used for one
// data point: generate numImages scenes, deliver them at the given
// resolution, detect, and evaluate mAP@0.5 over the batch. The paper
// averaged 150 images per measurement; numImages controls the sampling
// noise the learning agent observes.
func EstimateMAP(resolution float64, numImages int, sceneCfg SceneConfig, detCfg DetectorConfig, rng *rand.Rand) (float64, error) {
	if numImages <= 0 {
		return 0, fmt.Errorf("vision: numImages %d must be positive", numImages)
	}
	if resolution <= 0 || resolution > 1 {
		return 0, fmt.Errorf("vision: resolution %v outside (0,1]", resolution)
	}
	if err := sceneCfg.Validate(); err != nil {
		return 0, err
	}
	if err := detCfg.Validate(); err != nil {
		return 0, err
	}
	samples := make([]EvalSample, numImages)
	for i := range samples {
		scene := GenerateScene(sceneCfg, rng)
		samples[i] = EvalSample{
			Truth:      scene.Objects,
			Detections: Detect(scene, resolution, detCfg, rng),
		}
	}
	return MeanAveragePrecision(samples), nil
}
