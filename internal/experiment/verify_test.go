package experiment

import (
	"strings"
	"testing"
)

func TestVerifySweepFigures(t *testing.T) {
	scale := tinyScale()
	type vf func(*Table) ([]Check, error)
	cases := []struct {
		gen func(Scale, int64) (*Table, error)
		vf  vf
	}{
		{Fig1, VerifyFig1},
		{Fig2, VerifyFig2},
		{Fig3, VerifyFig3},
		{Fig4, VerifyFig4},
		{Fig5, VerifyFig5},
		{Fig6, VerifyFig6},
	}
	for _, c := range cases {
		tab, err := c.gen(scale, 11)
		if err != nil {
			t.Fatal(err)
		}
		checks, err := c.vf(tab)
		if err != nil {
			t.Fatal(err)
		}
		if len(checks) == 0 {
			t.Fatalf("%s produced no checks", tab.ID)
		}
		for _, ck := range checks {
			if !ck.OK {
				t.Errorf("[%s] %s failed: %s", ck.Figure, ck.Claim, ck.Detail)
			}
			if ck.Detail == "" || ck.Claim == "" {
				t.Errorf("%s: check missing text", ck.Figure)
			}
		}
	}
}

func TestVerifyRejectsMissingColumns(t *testing.T) {
	bad := &Table{ID: "fig1", Columns: []string{"nope"}, Rows: [][]float64{{1}}}
	if _, err := VerifyFig1(bad); err == nil {
		t.Fatal("expected error for missing columns")
	}
	if _, err := VerifyFig5(bad); err == nil {
		t.Fatal("expected error for missing columns")
	}
}

func TestVerifyFig9OnGeneratedData(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	scale := tinyScale()
	tab, err := Fig9(scale, 12)
	if err != nil {
		t.Fatal(err)
	}
	checks, err := VerifyFig9(tab, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != len(scale.Delta2s) {
		t.Fatalf("%d checks, want %d", len(checks), len(scale.Delta2s))
	}
	okCount := 0
	for _, c := range checks {
		if c.OK {
			okCount++
		}
	}
	// At tiny scale a single δ₂ cell can be noisy; the bulk must converge.
	if okCount < len(checks)-1 {
		t.Fatalf("only %d/%d convergence checks passed", okCount, len(checks))
	}
}

func TestVerifyFig14OnGeneratedData(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	tab, err := Fig14(tinyScale(), 13)
	if err != nil {
		t.Fatal(err)
	}
	checks, err := VerifyFig14(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || !strings.Contains(checks[0].Detail, "EdgeBOL") {
		t.Fatalf("unexpected fig14 checks: %+v", checks)
	}
}
