package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// LongHorizonConfig parameterizes the long-horizon scenario: an EdgeBOL
// run one to two orders of magnitude past the paper's 150-period
// experiments, where the exact engine's O(t²)-per-candidate sweep would
// dominate each control period. It exists to demonstrate — and to let
// VerifyLongHorizon assert — that the sparse inducing-point engine holds
// the per-period acquisition cost flat out to t ≥ 10⁴ without giving up
// the learned operating point.
type LongHorizonConfig struct {
	// Periods is the horizon; DefaultLongHorizon uses 10 000.
	Periods int
	// Engine selects the GP engine; the headline scenario uses
	// core.EngineAuto so the run starts on the exact posterior and
	// converts at SparseSwitchAt.
	Engine core.EngineSelector
	// InducingPoints and SparseSwitchAt configure the sparse engine
	// (zeros take the core defaults: 128 and 512).
	InducingPoints int
	SparseSwitchAt int
	// Buckets is how many summary rows the table aggregates the horizon
	// into (default 50).
	Buckets int
}

// DefaultLongHorizon is the headline t=10⁴ auto-switch scenario.
func DefaultLongHorizon() LongHorizonConfig {
	return LongHorizonConfig{Periods: 10000, Engine: core.EngineAuto}
}

// LongHorizon runs one EdgeBOL agent for cfg.Periods control periods on a
// steady 35 dB single-user testbed (the Fig. 9 setting, δ₁ = 1, δ₂ = 8)
// and aggregates per-bucket means: realized cost, delay, mAP, the delay
// constraint violation rate, the acquisition sweep latency, and the
// engine state (inducing-basis size; 0 while exact). The sweep-latency
// column is what distinguishes the engines — exact grows quadratically
// with the bucket index, sparse stays flat.
func LongHorizon(scale Scale, cfg LongHorizonConfig, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if cfg.Periods < 2 {
		return nil, fmt.Errorf("experiment: long horizon of %d periods", cfg.Periods)
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 50
	}
	if cfg.Buckets > cfg.Periods {
		cfg.Buckets = cfg.Periods
	}
	w := core.CostWeights{Delta1: 1, Delta2: 8}
	agent, err := core.NewAgent(core.Options{
		Grid:           scale.grid(),
		Weights:        w,
		Constraints:    fig9Constraints,
		Engine:         cfg.Engine,
		InducingPoints: cfg.InducingPoints,
		SparseSwitchAt: cfg.SparseSwitchAt,
		// History is retained in full: the sparse engine's costs are
		// bounded by the inducing budget, and an unbounded exact run is
		// exactly the failure mode the scenario documents.
		Telemetry: scale.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "longhorizon",
		Title: "Long-horizon run: per-bucket cost, KPIs, sweep latency, engine state",
		Columns: []string{
			"t", "cost_mean", "delay_mean", "map_mean", "viol_rate",
			"sweep_ms_mean", "inducing",
		},
	}
	bucket := cfg.Periods / cfg.Buckets
	var cost, delay, mAP, sweepMs float64
	var viol, n int
	flush := func(end int) {
		if n == 0 {
			return
		}
		fn := float64(n)
		t.AddRow(float64(end), cost/fn, delay/fn, mAP/fn, float64(viol)/fn,
			sweepMs/fn, float64(agent.InducingPoints()))
		cost, delay, mAP, sweepMs, viol, n = 0, 0, 0, 0, 0, 0
	}
	for tt := 0; tt < cfg.Periods; tt++ {
		_, k, info, err := agent.Step(tb)
		if err != nil {
			return nil, fmt.Errorf("experiment: long horizon period %d: %w", tt, err)
		}
		cost += w.Cost(k)
		delay += k.Delay
		mAP += k.MAP
		sweepMs += info.SweepSeconds * 1e3
		if k.Delay > fig9Constraints.MaxDelay {
			viol++
		}
		n++
		if (tt+1)%bucket == 0 {
			flush(tt + 1)
		}
	}
	flush(cfg.Periods)
	return t, nil
}

// VerifyLongHorizon asserts the scenario's claims on a LongHorizon table:
// the agent converges (tail cost no worse than the early exploration
// phase), the delay constraint holds at the paper's few-percent violation
// level in steady state, the inducing basis respects its budget, and —
// when the sparse engine took over — the acquisition latency in the final
// buckets stays within a constant factor of the post-switch level instead
// of growing with t.
func VerifyLongHorizon(t *Table, budget int) ([]Check, error) {
	if budget <= 0 {
		budget = 128
	}
	cost, err := column(t, "cost_mean", nil)
	if err != nil {
		return nil, err
	}
	viol, err := column(t, "viol_rate", nil)
	if err != nil {
		return nil, err
	}
	sweep, err := column(t, "sweep_ms_mean", nil)
	if err != nil {
		return nil, err
	}
	inducing, err := column(t, "inducing", nil)
	if err != nil {
		return nil, err
	}
	nb := len(cost)
	if nb < 4 {
		return nil, fmt.Errorf("experiment: long-horizon table has only %d buckets", nb)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	tail := nb / 4
	var checks []Check

	early, late := mean(cost[:tail]), mean(cost[nb-tail:])
	checks = append(checks, check("longhorizon", "steady-state cost no worse than exploration",
		late <= early*1.05, "late %.4f vs early %.4f", late, early))

	lateViol := mean(viol[nb-tail:])
	checks = append(checks, check("longhorizon", "tail delay violations at the paper's few-percent level",
		lateViol <= 0.10, "tail violation rate %.3f", lateViol))

	maxInd := 0.0
	for _, v := range inducing {
		if v > maxInd {
			maxInd = v
		}
	}
	checks = append(checks, check("longhorizon", "inducing basis within budget",
		maxInd <= float64(budget), "max basis %.0f > budget %d", maxInd, budget))

	// Latency flatness only makes sense once the sparse engine is active;
	// locate the first sparse bucket and compare its neighbourhood to the
	// end of the run. Wall-clock is noisy, so the gate is a generous
	// constant factor — exact growth over thousands of periods exceeds it
	// by an order of magnitude.
	firstSparse := -1
	for i, v := range inducing {
		if v > 0 {
			firstSparse = i
			break
		}
	}
	if firstSparse >= 0 && firstSparse < nb-tail {
		ref := mean(sweep[firstSparse:minInt(firstSparse+tail, nb)])
		end := mean(sweep[nb-tail:])
		checks = append(checks, check("longhorizon", "sparse sweep latency flat in t",
			end <= ref*3+0.5, "end %.2f ms vs post-switch %.2f ms", end, ref))
	}
	return checks, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
