package experiment

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// KillAndResume exercises the warm-restart path end to end at experiment
// scale: two identically-seeded runs, one uninterrupted and one whose agent
// is serialized at the halfway point, discarded, and reconstructed from the
// checkpoint bytes before continuing. Because the restore is bitwise
// lossless, the resumed trajectory must equal the straight one period by
// period — the table records both plus a per-period match flag so the
// verifier (and the regenerated artifacts) can show the guarantee rather
// than assert it silently.
func KillAndResume(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w := core.CostWeights{Delta1: 1, Delta2: 8}
	opts := core.Options{
		Grid:            scale.grid(),
		Weights:         w,
		Constraints:     fig9Constraints,
		MaxObservations: scale.MaxObservations,
		Telemetry:       scale.Telemetry,
	}
	t := &Table{
		ID:    "resume",
		Title: "Kill-and-resume vs uninterrupted run (identical seeds, restart at T/2)",
		Columns: []string{
			"t", "resumed",
			"cost_straight", "cost_resumed",
			"delay_straight", "delay_resumed",
			"map_straight", "map_resumed",
			"control_match",
		},
	}
	periods := scale.Periods
	half := periods / 2

	// Uninterrupted reference trajectory.
	tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
	if err != nil {
		return nil, err
	}
	straightAgent, err := core.NewAgent(opts)
	if err != nil {
		return nil, err
	}
	straight, err := runAgent(straightAgent, tb, periods)
	if err != nil {
		return nil, err
	}

	// Interrupted trajectory on an identically-seeded testbed: run to T/2,
	// checkpoint, drop the agent, resume from the bytes.
	tb2, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
	if err != nil {
		return nil, err
	}
	victim, err := core.NewAgent(opts)
	if err != nil {
		return nil, err
	}
	resumed, err := runAgent(victim, tb2, half)
	if err != nil {
		return nil, err
	}
	var snap bytes.Buffer
	if err := victim.SaveCheckpoint(&snap); err != nil {
		return nil, fmt.Errorf("experiment: resume checkpoint: %w", err)
	}
	victim = nil // the "kill": only the snapshot bytes survive
	restored, err := core.LoadCheckpoint(&snap, opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: resume restore: %w", err)
	}
	tail, err := runAgent(restored, tb2, periods-half)
	if err != nil {
		return nil, err
	}
	resumed = append(resumed, tail...)

	for tt := 0; tt < periods; tt++ {
		s, r := straight[tt], resumed[tt]
		match := 0.0
		if s.x == r.x {
			match = 1
		}
		after := 0.0
		if tt >= half {
			after = 1
		}
		t.AddRow(float64(tt), after,
			w.Cost(s.k), w.Cost(r.k),
			s.k.Delay, r.k.Delay,
			s.k.MAP, r.k.MAP,
			match)
	}
	return t, nil
}

// VerifyKillAndResume checks the restore-equivalence guarantee on the
// regenerated table: every period — before and, crucially, after the
// restart — must have picked the identical control and measured identical
// KPIs in both runs.
func VerifyKillAndResume(t *Table) ([]Check, error) {
	match, err := column(t, "control_match", nil)
	if err != nil {
		return nil, err
	}
	costS, err := column(t, "cost_straight", nil)
	if err != nil {
		return nil, err
	}
	costR, err := column(t, "cost_resumed", nil)
	if err != nil {
		return nil, err
	}
	afterMatch, err := column(t, "control_match", map[string]float64{"resumed": 1})
	if err != nil {
		return nil, err
	}
	mismatches, costDrift := 0, 0
	for i := range match {
		if match[i] != 1 {
			mismatches++
		}
		if costS[i] != costR[i] {
			costDrift++
		}
	}
	afterOK := len(afterMatch) > 0
	for _, m := range afterMatch {
		if m != 1 {
			afterOK = false
		}
	}
	return []Check{
		check("resume", "a resumed agent replays the uninterrupted trajectory exactly",
			mismatches == 0 && costDrift == 0,
			"%d/%d control mismatches, %d cost drifts", mismatches, len(match), costDrift),
		check("resume", "equivalence holds for every post-restart period",
			afterOK, "%d post-restart periods all matched", len(afterMatch)),
	}, nil
}
