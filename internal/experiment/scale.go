package experiment

import (
	"fmt"

	"repro/internal/telemetry"
)

// Scale sets the experiment sizes. PaperScale matches the paper's settings
// (11-level grids, 150-period convergence runs, 10 repetitions, 3000-period
// DDPG comparisons); QuickScale trades fidelity for wall-clock time and is
// what the benchmark suite uses.
type Scale struct {
	// GridLevels is the per-dimension control-grid resolution.
	GridLevels int
	// Periods is the horizon of convergence/static experiments (Figs. 9–12).
	Periods int
	// Reps is the number of independent repetitions.
	Reps int
	// SweepLevels is the number of policy levels in the §3 measurement
	// sweeps (Figs. 1–6).
	SweepLevels int
	// DynamicPeriods is the horizon of the Fig. 13 dynamic-context run.
	DynamicPeriods int
	// PhasePeriods is the length of each of the three constraint phases of
	// the Fig. 14 comparison.
	PhasePeriods int
	// Delta2s is the δ₂ sweep of Figs. 9–11.
	Delta2s []float64
	// TailWindow is how many trailing periods define "converged" values.
	TailWindow int
	// MaxObservations caps GP history on long runs (0 = unlimited).
	MaxObservations int
	// Cells is the donor-fleet size of the fleet warm-start scenario
	// (FleetWarmStart); 0 defaults to 3 donors.
	Cells int
	// WarmStartNeighbors is how many context-similar donors seed a
	// joining cell in that scenario; 0 defaults to min(2, Cells).
	WarmStartNeighbors int
	// Telemetry, when non-nil, instruments every agent and testbed the
	// experiment creates, so a long figure regeneration can be watched
	// live over /metrics. Nil (the default scales) disables telemetry.
	Telemetry *telemetry.Registry
}

// PaperScale reproduces the paper's experiment sizes. Expect long runtimes:
// the per-period cost of exact GP posteriors over the full 14 641-control
// grid is what the paper's §5 O(N³) remark alludes to.
func PaperScale() Scale {
	return Scale{
		GridLevels:         11,
		Periods:            150,
		Reps:               10,
		SweepLevels:        11,
		DynamicPeriods:     150,
		PhasePeriods:       1000,
		Delta2s:            []float64{1, 2, 4, 8, 16, 32, 64},
		TailWindow:         25,
		MaxObservations:    400,
		Cells:              8,
		WarmStartNeighbors: 3,
	}
}

// QuickScale is a reduced setting that preserves every qualitative effect
// while running orders of magnitude faster.
func QuickScale() Scale {
	return Scale{
		GridLevels:         5,
		Periods:            90,
		Reps:               2,
		SweepLevels:        5,
		DynamicPeriods:     90,
		PhasePeriods:       120,
		Delta2s:            []float64{1, 4, 16, 64},
		TailWindow:         20,
		MaxObservations:    180,
		Cells:              4,
		WarmStartNeighbors: 2,
	}
}

// Validate reports whether the scale is usable.
func (s Scale) Validate() error {
	if s.GridLevels < 2 {
		return fmt.Errorf("experiment: GridLevels %d too small", s.GridLevels)
	}
	if s.Periods < 2 || s.Reps < 1 || s.SweepLevels < 2 || s.DynamicPeriods < 2 || s.PhasePeriods < 2 {
		return fmt.Errorf("experiment: degenerate scale %+v", s)
	}
	if len(s.Delta2s) == 0 {
		return fmt.Errorf("experiment: empty δ₂ sweep")
	}
	if s.TailWindow < 1 || s.TailWindow > s.Periods {
		return fmt.Errorf("experiment: TailWindow %d invalid for %d periods", s.TailWindow, s.Periods)
	}
	if s.MaxObservations < 0 {
		return fmt.Errorf("experiment: negative MaxObservations")
	}
	if s.Cells < 0 {
		return fmt.Errorf("experiment: negative Cells")
	}
	if s.WarmStartNeighbors < 0 {
		return fmt.Errorf("experiment: negative WarmStartNeighbors")
	}
	if s.Cells > 0 && s.WarmStartNeighbors > s.Cells {
		return fmt.Errorf("experiment: WarmStartNeighbors %d exceeds the %d-cell donor fleet",
			s.WarmStartNeighbors, s.Cells)
	}
	return nil
}
