package experiment

import (
	"fmt"

	"repro/internal/bandit"
	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// fig9Constraints is the §6.2 constraint set (dmax = 0.4 s, ρmin = 0.5).
var fig9Constraints = core.Constraints{MaxDelay: 0.4, MinMAP: 0.5}

// fig10Settings are the three constraint settings of §6.3.
var fig10Settings = []core.Constraints{
	{MaxDelay: 0.5, MinMAP: 0.4}, // lax
	{MaxDelay: 0.4, MinMAP: 0.5}, // medium
	{MaxDelay: 0.3, MinMAP: 0.6}, // stringent
}

// record is one control period's outcome.
type record struct {
	x    core.Control
	k    core.KPIs
	info core.SelectionInfo
}

// grid returns the control grid for a scale.
func (s Scale) grid() core.GridSpec {
	//edgebol:allow safectrl -- geometry comes from a Scale checked by Scale.Validate, and every consumer enumerates (and thus re-validates) the spec
	return core.GridSpec{Levels: s.GridLevels, MinResolution: 0.1, MinAirtime: 0.1}
}

// newAgent builds an EdgeBOL agent for an experiment run.
func newAgent(scale Scale, w core.CostWeights, cons core.Constraints) (*core.Agent, error) {
	return core.NewAgent(core.Options{
		Grid:            scale.grid(),
		Weights:         w,
		Constraints:     cons,
		MaxObservations: scale.MaxObservations,
		Telemetry:       scale.Telemetry,
	})
}

// newTestbed builds and, when the scale carries a registry, instruments a
// testbed for an experiment run.
func (s Scale) newTestbed(cfg testbed.Config, users []ran.User, seed int64) (*testbed.Testbed, error) {
	tb, err := testbed.New(cfg, users, seed)
	if err != nil {
		return nil, err
	}
	tb.Instrument(s.Telemetry)
	return tb, nil
}

// runAgent drives an agent for the given number of periods.
func runAgent(agent *core.Agent, env core.Environment, periods int) ([]record, error) {
	out := make([]record, 0, periods)
	for t := 0; t < periods; t++ {
		x, k, info, err := agent.Step(env)
		if err != nil {
			return nil, fmt.Errorf("experiment: period %d: %w", t, err)
		}
		out = append(out, record{x: x, k: k, info: info})
	}
	return out, nil
}

// Fig9 regenerates the §6.2 convergence experiment: per-period cost, mAP,
// delay, and both powers for each δ₂, with median/P10/P90 bands over
// repetitions. Steady 35 dB channel, δ₁ = 1, dmax = 0.4 s, ρmin = 0.5.
func Fig9(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig9",
		Title: "Convergence of cost, mAP, delay, BS power, server power vs t per delta2",
		Columns: []string{
			"delta2", "t",
			"cost_med", "cost_p10", "cost_p90",
			"map_med", "map_p10", "map_p90",
			"delay_med", "delay_p10", "delay_p90",
			"bs_med", "bs_p10", "bs_p90",
			"server_med", "server_p10", "server_p90",
		},
	}
	for _, d2 := range scale.Delta2s {
		w := core.CostWeights{Delta1: 1, Delta2: d2}
		runs := make([][]record, 0, scale.Reps)
		for rep := 0; rep < scale.Reps; rep++ {
			tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed+int64(rep)*101)
			if err != nil {
				return nil, err
			}
			agent, err := newAgent(scale, w, fig9Constraints)
			if err != nil {
				return nil, err
			}
			recs, err := runAgent(agent, tb, scale.Periods)
			if err != nil {
				return nil, err
			}
			runs = append(runs, recs)
		}
		for tt := 0; tt < scale.Periods; tt++ {
			var cost, mAP, delay, bs, server []float64
			for _, recs := range runs {
				k := recs[tt].k
				cost = append(cost, w.Cost(k))
				mAP = append(mAP, k.MAP)
				delay = append(delay, k.Delay)
				bs = append(bs, k.BSPower)
				server = append(server, k.ServerPower)
			}
			c, m, d, b, s := BandOf(cost), BandOf(mAP), BandOf(delay), BandOf(bs), BandOf(server)
			t.AddRow(d2, float64(tt),
				c.Median, c.P10, c.P90,
				m.Median, m.P10, m.P90,
				d.Median, d.P10, d.P90,
				b.Median, b.P10, b.P90,
				s.Median, s.P10, s.P90,
			)
		}
	}
	return t, nil
}

// tailRecords returns the last TailWindow records of a run.
func (s Scale) tail(recs []record) []record {
	if len(recs) <= s.TailWindow {
		return recs
	}
	return recs[len(recs)-s.TailWindow:]
}

// Fig10And11 regenerates the §6.3 static-scenario figures from shared
// runs: converged powers and normalized cost vs δ₂ per constraint setting
// with the exhaustive-search oracle (Fig. 10), and the corresponding
// converged policies (Fig. 11). The normalized cost divides by the cost of
// the maximum-resource configuration, making values comparable across δ₂
// as in the paper.
func Fig10And11(scale Scale, seed int64) (*Table, *Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	f10 := &Table{
		ID:    "fig10",
		Title: "Converged powers and normalized cost vs delta2 per constraint setting, with oracle",
		Columns: []string{
			"dmax", "rmin", "delta2",
			"bs_power_w", "server_power_w", "norm_cost", "oracle_norm_cost",
		},
	}
	f11 := &Table{
		ID:    "fig11",
		Title: "Converged policies vs delta2 per constraint setting",
		Columns: []string{
			"dmax", "rmin", "delta2",
			"mean_gpu_speed", "mean_resolution", "mean_airtime", "mean_mcs",
		},
	}
	for _, cons := range fig10Settings {
		for _, d2 := range scale.Delta2s {
			w := core.CostWeights{Delta1: 1, Delta2: d2}
			var bs, server, cost []float64
			var res, air, gpu, mcs []float64
			var refCost float64
			var oracleCost float64
			oracleFeasible := true
			for rep := 0; rep < scale.Reps; rep++ {
				tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed+int64(rep)*131)
				if err != nil {
					return nil, nil, err
				}
				if rep == 0 {
					maxK, err := tb.Expected(scale.grid().MaxControl())
					if err != nil {
						return nil, nil, err
					}
					refCost = w.Cost(maxK)
					_, oc, err := bandit.Oracle(tb.Expected, scale.grid(), w, cons)
					if err != nil {
						oracleFeasible = false
					} else {
						oracleCost = oc
					}
				}
				agent, err := newAgent(scale, w, cons)
				if err != nil {
					return nil, nil, err
				}
				recs, err := runAgent(agent, tb, scale.Periods)
				if err != nil {
					return nil, nil, err
				}
				for _, r := range scale.tail(recs) {
					bs = append(bs, r.k.BSPower)
					server = append(server, r.k.ServerPower)
					cost = append(cost, w.Cost(r.k))
					res = append(res, r.x.Resolution)
					air = append(air, r.x.Airtime)
					gpu = append(gpu, r.x.GPUSpeed)
					mcs = append(mcs, r.x.MCS)
				}
			}
			oracleNorm := -1.0 // sentinel for infeasible settings
			if oracleFeasible {
				oracleNorm = oracleCost / refCost
			}
			f10.AddRow(cons.MaxDelay, cons.MinMAP, d2,
				Median(bs), Median(server), Median(cost)/refCost, oracleNorm)
			f11.AddRow(cons.MaxDelay, cons.MinMAP, d2,
				Mean(gpu), Mean(res), Mean(air), Mean(mcs))
		}
	}
	return f10, f11, nil
}

// Fig12 regenerates the §6.4 multi-user optimality-gap experiment:
// heterogeneous populations, dmax = 2 s, ρmin = 0.6, EdgeBOL's converged
// cost against the exhaustive oracle for each δ₂. As in the paper, the
// agent is trained before evaluation — each run lasts 3× the convergence
// horizon and only the tail counts.
func Fig12(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	cons := core.Constraints{MaxDelay: 2, MinMAP: 0.6}
	t := &Table{
		ID:    "fig12",
		Title: "Multi-user cost vs oracle per delta2 (heterogeneous SNRs)",
		Columns: []string{
			"users", "delta2", "edgebol_cost", "oracle_cost", "gap_frac", "violation_rate",
		},
	}
	for _, n := range []int{2, 4, 6} {
		for _, d2 := range []float64{1, 2, 4, 8} {
			w := core.CostWeights{Delta1: 1, Delta2: d2}
			var cost []float64
			violations, total := 0, 0
			var oracleCost float64
			for rep := 0; rep < scale.Reps; rep++ {
				tb, err := scale.newTestbed(testbed.DefaultConfig(), testbed.HeterogeneousUsers(n), seed+int64(rep)*151)
				if err != nil {
					return nil, err
				}
				if rep == 0 {
					_, oc, err := bandit.Oracle(tb.Expected, scale.grid(), w, cons)
					if err != nil {
						return nil, fmt.Errorf("experiment: fig12 oracle n=%d: %w", n, err)
					}
					oracleCost = oc
				}
				agent, err := newAgent(scale, w, cons)
				if err != nil {
					return nil, err
				}
				recs, err := runAgent(agent, tb, 3*scale.Periods)
				if err != nil {
					return nil, err
				}
				for _, r := range scale.tail(recs) {
					cost = append(cost, w.Cost(r.k))
					total++
					if !cons.Satisfied(r.k) {
						violations++
					}
				}
			}
			med := Median(cost)
			t.AddRow(float64(n), d2, med, oracleCost, (med-oracleCost)/oracleCost, float64(violations)/float64(total))
		}
	}
	return t, nil
}

// dynamicEnv drives the Fig. 13 scenario: the single user's SNR follows a
// trace, advancing one step per context query.
type dynamicEnv struct {
	tb      *testbed.Testbed
	trace   *ran.SNRTrace
	lastSNR float64
}

func (d *dynamicEnv) Context() core.Context {
	d.lastSNR = d.trace.Next()
	d.tb.SetSNR(d.lastSNR)
	return d.tb.Context()
}

func (d *dynamicEnv) Measure(x core.Control) (core.KPIs, error) { return d.tb.Measure(x) }

// Fig13 regenerates the §6.5 dynamic-context experiment: an untrained
// agent under fast 5–38 dB channel dynamics with δ₂ = 8, recording the SNR
// trace, safe-set size, and the four policies over time (bands over
// repetitions).
func Fig13(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	w := core.CostWeights{Delta1: 1, Delta2: 8}
	t := &Table{
		ID:    "fig13",
		Title: "Dynamic contexts: SNR, safe-set size, and policies vs t (delta2=8)",
		Columns: []string{
			"t", "snr_db_med", "safe_size_med",
			"gpu_med", "res_med", "air_med", "mcs_med",
			"cost_med", "delay_med", "map_med",
		},
	}
	type dynRec struct {
		snr float64
		rec record
	}
	runs := make([][]dynRec, 0, scale.Reps)
	for rep := 0; rep < scale.Reps; rep++ {
		repSeed := seed + int64(rep)*171
		tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, repSeed)
		if err != nil {
			return nil, err
		}
		trace, err := ran.NewSNRTrace(5, 38, 12, 5, newRand(repSeed+1))
		if err != nil {
			return nil, err
		}
		env := &dynamicEnv{tb: tb, trace: trace}
		agent, err := newAgent(scale, w, fig9Constraints)
		if err != nil {
			return nil, err
		}
		recs := make([]dynRec, 0, scale.DynamicPeriods)
		for tt := 0; tt < scale.DynamicPeriods; tt++ {
			x, k, info, err := agent.Step(env)
			if err != nil {
				return nil, err
			}
			recs = append(recs, dynRec{snr: env.lastSNR, rec: record{x: x, k: k, info: info}})
		}
		runs = append(runs, recs)
	}
	for tt := 0; tt < scale.DynamicPeriods; tt++ {
		var snr, safe, gpu, res, air, mcs, cost, delay, mAP []float64
		for _, recs := range runs {
			r := recs[tt]
			snr = append(snr, r.snr)
			safe = append(safe, float64(r.rec.info.SafeSetSize))
			gpu = append(gpu, r.rec.x.GPUSpeed)
			res = append(res, r.rec.x.Resolution)
			air = append(air, r.rec.x.Airtime)
			mcs = append(mcs, r.rec.x.MCS)
			cost = append(cost, w.Cost(r.rec.k))
			delay = append(delay, r.rec.k.Delay)
			mAP = append(mAP, r.rec.k.MAP)
		}
		t.AddRow(float64(tt), Median(snr), Median(safe),
			Median(gpu), Median(res), Median(air), Median(mcs),
			Median(cost), Median(delay), Median(mAP))
	}
	return t, nil
}

// Fig14 regenerates the §6.5 EdgeBOL-vs-DDPG comparison under runtime
// constraint changes: three phases with different (dmax, ρmin), per-period
// cost/delay/mAP and cumulative violation magnitudes for both algorithms
// (algo column: 0 = EdgeBOL, 1 = DDPG).
func Fig14(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	phases := []core.Constraints{
		{MaxDelay: 0.5, MinMAP: 0.4},
		{MaxDelay: 0.4, MinMAP: 0.6},
		{MaxDelay: 0.5, MinMAP: 0.5},
	}
	w := core.CostWeights{Delta1: 1, Delta2: 8}
	t := &Table{
		ID:    "fig14",
		Title: "EdgeBOL vs DDPG under constraint changes (algo 0=EdgeBOL, 1=DDPG)",
		Columns: []string{
			"algo", "t", "dmax", "rmin",
			"cost", "delay_s", "map", "delay_violation", "map_violation",
		},
	}

	run := func(algo int) error {
		tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed+int64(algo))
		if err != nil {
			return err
		}
		var agent *core.Agent
		var ddpg *bandit.DDPG
		if algo == 0 {
			agent, err = newAgent(scale, w, phases[0])
		} else {
			ddpg, err = bandit.NewDDPG(bandit.DDPGOptions{
				Grid:        scale.grid(),
				Weights:     w,
				Constraints: phases[0],
				Seed:        seed + 77,
			})
		}
		if err != nil {
			return err
		}
		tt := 0
		for phase, cons := range phases {
			if phase > 0 {
				if algo == 0 {
					if err := agent.SetConstraints(cons); err != nil {
						return err
					}
				} else {
					if err := ddpg.SetConstraints(cons); err != nil {
						return err
					}
				}
			}
			for p := 0; p < scale.PhasePeriods; p++ {
				ctx := tb.Context()
				var x core.Control
				if algo == 0 {
					x, _ = agent.SelectControl(ctx)
				} else {
					x = ddpg.Select(ctx)
				}
				k, err := tb.Measure(x)
				if err != nil {
					return err
				}
				if algo == 0 {
					if err := agent.Observe(ctx, x, k); err != nil {
						return err
					}
				} else {
					ddpg.Observe(ctx, x, k)
				}
				dv := maxf(k.Delay-cons.MaxDelay, 0)
				mv := maxf(cons.MinMAP-k.MAP, 0)
				t.AddRow(float64(algo), float64(tt), cons.MaxDelay, cons.MinMAP,
					w.Cost(k), k.Delay, k.MAP, dv, mv)
				tt++
			}
		}
		return nil
	}
	if err := run(0); err != nil {
		return nil, fmt.Errorf("experiment: fig14 EdgeBOL: %w", err)
	}
	if err := run(1); err != nil {
		return nil, fmt.Errorf("experiment: fig14 DDPG: %w", err)
	}
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
