package experiment

import "testing"

func TestKillAndResumeEquivalence(t *testing.T) {
	scale := tinyScale()
	scale.Periods = 24 // restart at period 12
	tab, err := KillAndResume(scale, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != scale.Periods {
		t.Fatalf("%d rows, want %d", len(tab.Rows), scale.Periods)
	}
	checks, err := VerifyKillAndResume(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("check failed: %s — %s", c.Claim, c.Detail)
		}
	}
}

// An evicting GP history is the hard case for the resume path (the live
// Cholesky factor depends on the eviction history); the equivalence must
// hold there too.
func TestKillAndResumeWithEvictions(t *testing.T) {
	scale := tinyScale()
	scale.Periods = 24
	scale.MaxObservations = 8 // evictions well before the T/2 restart
	tab, err := KillAndResume(scale, 43)
	if err != nil {
		t.Fatal(err)
	}
	checks, err := VerifyKillAndResume(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("check failed: %s — %s", c.Claim, c.Detail)
		}
	}
}
