package experiment

import "math/rand"

// newRand returns a seeded random source for experiment components.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
