package experiment

import (
	"fmt"
	"math"
)

// Check is one verified qualitative claim: the paper's stated effect and
// whether the regenerated data reproduces it.
type Check struct {
	// Figure is the experiment id the claim belongs to.
	Figure string
	// Claim restates the paper's qualitative finding.
	Claim string
	// OK reports whether the regenerated table shows the effect.
	OK bool
	// Detail quantifies the observation.
	Detail string
}

func check(figure, claim string, ok bool, format string, args ...any) Check {
	return Check{Figure: figure, Claim: claim, OK: ok, Detail: fmt.Sprintf(format, args...)}
}

func colIndex(t *Table, name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiment: table %s has no column %q", t.ID, name)
}

// column extracts one column, optionally filtered by an equality predicate
// on another column.
func column(t *Table, name string, filters map[string]float64) ([]float64, error) {
	ci, err := colIndex(t, name)
	if err != nil {
		return nil, err
	}
	type f struct {
		idx int
		val float64
	}
	var fs []f
	for fname, fval := range filters {
		fi, err := colIndex(t, fname)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f{fi, fval})
	}
	var out []float64
	for _, row := range t.Rows {
		keep := true
		for _, flt := range fs {
			if math.Abs(row[flt.idx]-flt.val) > 1e-9 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row[ci])
		}
	}
	return out, nil
}

func monotone(xs []float64, increasing bool) bool {
	for i := 1; i < len(xs); i++ {
		if increasing && xs[i] < xs[i-1] {
			return false
		}
		if !increasing && xs[i] > xs[i-1] {
			return false
		}
	}
	return len(xs) > 1
}

// VerifyFig1 checks the resolution↔delay/mAP trade-off.
func VerifyFig1(t *Table) ([]Check, error) {
	delay, err := column(t, "delay_s", nil)
	if err != nil {
		return nil, err
	}
	mAP, err := column(t, "mAP", nil)
	if err != nil {
		return nil, err
	}
	return []Check{
		check("fig1", "higher-resolution images incur higher delay",
			monotone(delay, true), "delay %.0f→%.0f ms across the sweep", 1000*delay[0], 1000*delay[len(delay)-1]),
		check("fig1", "lower-resolution images yield lower mAP",
			monotone(mAP, true), "mAP %.2f→%.2f across the sweep", mAP[0], mAP[len(mAP)-1]),
	}, nil
}

// VerifyFig2 checks the airtime↔delay/server-power trade-off.
func VerifyFig2(t *Table) ([]Check, error) {
	fullRes := map[string]float64{"resolution": 1}
	var delays, powers []float64
	for _, air := range []float64{0.2, 0.5, 1.0} {
		f := map[string]float64{"resolution": 1, "airtime": air}
		d, err := column(t, "delay_s", f)
		if err != nil {
			return nil, err
		}
		p, err := column(t, "server_power_w", f)
		if err != nil {
			return nil, err
		}
		delays = append(delays, Mean(d))
		powers = append(powers, Mean(p))
	}
	_ = fullRes
	return []Check{
		check("fig2", "more airtime lowers the service delay",
			monotone(delays, false), "delay %.0f/%.0f/%.0f ms at airtime 20/50/100%%", 1000*delays[0], 1000*delays[1], 1000*delays[2]),
		check("fig2", "more airtime raises server power (higher request rate)",
			monotone(powers, true), "server %.0f/%.0f/%.0f W at airtime 20/50/100%%", powers[0], powers[1], powers[2]),
	}, nil
}

// VerifyFig3 checks the GPU-speed effects.
func VerifyFig3(t *Table) ([]Check, error) {
	var delays, gpuDelays []float64
	for _, g := range []float64{0.1, 0.45, 1.0} {
		f := map[string]float64{"resolution": 1, "gpu_speed": g}
		d, err := column(t, "delay_s", f)
		if err != nil {
			return nil, err
		}
		gd, err := column(t, "gpu_delay_s", f)
		if err != nil {
			return nil, err
		}
		delays = append(delays, Mean(d))
		gpuDelays = append(gpuDelays, Mean(gd))
	}
	lowRes, err := column(t, "gpu_delay_s", map[string]float64{"gpu_speed": 1.0, "resolution": 0.25})
	if err != nil {
		return nil, err
	}
	highRes, err := column(t, "gpu_delay_s", map[string]float64{"gpu_speed": 1.0, "resolution": 1.0})
	if err != nil {
		return nil, err
	}
	return []Check{
		check("fig3", "higher GPU speed lowers delay",
			monotone(delays, false), "delay %.0f/%.0f/%.0f ms at speed 10/45/100%%", 1000*delays[0], 1000*delays[1], 1000*delays[2]),
		check("fig3", "higher GPU speed lowers GPU delay",
			monotone(gpuDelays, false), "GPU delay %.0f/%.0f/%.0f ms", 1000*gpuDelays[0], 1000*gpuDelays[1], 1000*gpuDelays[2]),
		check("fig3", "higher-resolution images ease the GPU's work",
			Mean(highRes) < Mean(lowRes), "GPU delay %.0f ms (res 100%%) vs %.0f ms (res 25%%)", 1000*Mean(highRes), 1000*Mean(lowRes)),
	}, nil
}

// VerifyFig4 checks the mAP↔server-power inversion.
func VerifyFig4(t *Table) ([]Check, error) {
	mAP, err := column(t, "mAP", nil)
	if err != nil {
		return nil, err
	}
	power, err := column(t, "server_power_w", nil)
	if err != nil {
		return nil, err
	}
	// Rows are ordered by rising resolution: mAP rises, power falls.
	return []Check{
		check("fig4", "higher mAP coincides with lower server power",
			monotone(mAP, true) && monotone(power, false),
			"mAP %.2f→%.2f while power %.0f→%.0f W", mAP[0], mAP[len(mAP)-1], power[0], power[len(power)-1]),
	}, nil
}

// mcsSlope returns (power at max MCS − power at min MCS) for a panel.
func mcsSlope(t *Table, airtime, res float64) (float64, error) {
	m, err := colIndex(t, "mean_mcs")
	if err != nil {
		return 0, err
	}
	p, err := colIndex(t, "bs_power_w")
	if err != nil {
		return 0, err
	}
	a, err := colIndex(t, "airtime")
	if err != nil {
		return 0, err
	}
	r, err := colIndex(t, "resolution")
	if err != nil {
		return 0, err
	}
	loMCS, hiMCS := math.Inf(1), math.Inf(-1)
	var loP, hiP float64
	for _, row := range t.Rows {
		if math.Abs(row[a]-airtime) > 1e-9 || math.Abs(row[r]-res) > 1e-9 {
			continue
		}
		if row[m] < loMCS {
			loMCS, loP = row[m], row[p]
		}
		if row[m] > hiMCS {
			hiMCS, hiP = row[m], row[p]
		}
	}
	if math.IsInf(loMCS, 1) {
		return 0, fmt.Errorf("experiment: no rows for airtime %v res %v in %s", airtime, res, t.ID)
	}
	return hiP - loP, nil
}

// VerifyFig5 checks the nominal-load radio-power shape.
func VerifyFig5(t *Table) ([]Check, error) {
	slope, err := mcsSlope(t, 1.0, 1.0)
	if err != nil {
		return nil, err
	}
	lowAir, err := column(t, "bs_power_w", map[string]float64{"airtime": 0.2, "resolution": 1})
	if err != nil {
		return nil, err
	}
	highAir, err := column(t, "bs_power_w", map[string]float64{"airtime": 1.0, "resolution": 1})
	if err != nil {
		return nil, err
	}
	return []Check{
		check("fig5", "higher MCS lowers BS power at nominal load",
			slope < 0, "power(maxMCS) − power(minMCS) = %.2f W", slope),
		check("fig5", "more airtime raises BS power",
			Mean(highAir) > Mean(lowAir), "%.2f W at 100%% vs %.2f W at 20%% airtime", Mean(highAir), Mean(lowAir)),
	}, nil
}

// VerifyFig6 checks the 10x-load inversion.
func VerifyFig6(t *Table) ([]Check, error) {
	slope, err := mcsSlope(t, 0.2, 1.0)
	if err != nil {
		return nil, err
	}
	return []Check{
		check("fig6", "at 10x load, higher MCS raises BS power for high-res traffic",
			slope > 0, "power(maxMCS) − power(minMCS) = %.2f W at airtime 20%%", slope),
	}, nil
}

// VerifyFig9 checks convergence of the online loop.
func VerifyFig9(t *Table, scale Scale) ([]Check, error) {
	var checks []Check
	for _, d2 := range scale.Delta2s {
		cost, err := column(t, "cost_med", map[string]float64{"delta2": d2})
		if err != nil {
			return nil, err
		}
		early := Mean(cost[:5])
		late := Mean(cost[len(cost)-10:])
		checks = append(checks, check("fig9",
			fmt.Sprintf("cost converges downward (δ₂=%g)", d2),
			late < early, "median cost %.0f→%.0f mu", early, late))
	}
	return checks, nil
}

// VerifyFig10 checks near-oracle operation.
func VerifyFig10(t *Table) ([]Check, error) {
	nc, err := colIndex(t, "norm_cost")
	if err != nil {
		return nil, err
	}
	oc, err := colIndex(t, "oracle_norm_cost")
	if err != nil {
		return nil, err
	}
	worst := 0.0
	n := 0
	for _, row := range t.Rows {
		if row[oc] <= 0 {
			continue // infeasible oracle (stringent settings)
		}
		gap := (row[nc] - row[oc]) / row[oc]
		if gap > worst {
			worst = gap
		}
		n++
	}
	return []Check{
		check("fig10", "EdgeBOL operates near the offline oracle",
			n > 0 && worst < 0.35, "worst normalized-cost gap %.0f%% over %d feasible settings", 100*worst, n),
	}, nil
}

// VerifyFig12 checks the multi-user optimality gap and satisfaction.
func VerifyFig12(t *Table) ([]Check, error) {
	gaps, err := column(t, "gap_frac", nil)
	if err != nil {
		return nil, err
	}
	viols, err := column(t, "violation_rate", nil)
	if err != nil {
		return nil, err
	}
	maxGap, maxViol := 0.0, 0.0
	for i := range gaps {
		maxGap = math.Max(maxGap, gaps[i])
		maxViol = math.Max(maxViol, viols[i])
	}
	return []Check{
		check("fig12", "multi-user cost stays close to the oracle",
			maxGap < 0.25, "worst gap %.1f%%", 100*maxGap),
		check("fig12", "service constraints hold with high probability",
			maxViol < 0.15, "worst violation rate %.1f%%", 100*maxViol),
	}, nil
}

// VerifyFig13 checks the dynamic-context behaviour.
func VerifyFig13(t *Table) ([]Check, error) {
	snr, err := column(t, "snr_db_med", nil)
	if err != nil {
		return nil, err
	}
	safe, err := column(t, "safe_size_med", nil)
	if err != nil {
		return nil, err
	}
	varied := false
	for i := 1; i < len(snr); i++ {
		if math.Abs(snr[i]-snr[0]) > 2 {
			varied = true
		}
	}
	minSafe := math.Inf(1)
	lateMax := 0.0
	for i, s := range safe {
		minSafe = math.Min(minSafe, s)
		if i > len(safe)/3 {
			lateMax = math.Max(lateMax, s)
		}
	}
	return []Check{
		check("fig13", "the channel context varies substantially", varied,
			"SNR median span includes ±2 dB moves"),
		check("fig13", "the safe set never collapses and grows past S₀ after warm-up",
			minSafe >= 1 && lateMax > safe[0], "initial |S| %.0f, min %.0f, late max %.0f", safe[0], minSafe, lateMax),
	}, nil
}

// VerifyFig14 checks the EdgeBOL-vs-DDPG comparison.
func VerifyFig14(t *Table) ([]Check, error) {
	a, err := colIndex(t, "algo")
	if err != nil {
		return nil, err
	}
	dv, err := colIndex(t, "delay_violation")
	if err != nil {
		return nil, err
	}
	mv, err := colIndex(t, "map_violation")
	if err != nil {
		return nil, err
	}
	var sums [2]float64
	for _, row := range t.Rows {
		sums[int(row[a])] += row[dv] + row[mv]
	}
	return []Check{
		check("fig14", "EdgeBOL accumulates less constraint violation than DDPG",
			sums[0] < sums[1], "cumulative violation %.1f (EdgeBOL) vs %.1f (DDPG)", sums[0], sums[1]),
	}, nil
}
