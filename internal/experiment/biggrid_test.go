package experiment

import (
	"testing"

	"repro/internal/core"
)

// TestBigGridScaledDown runs the multi-million-candidate scenario at a
// test-sized grid that still clears the auto threshold (9⁴×6 = 39 366
// candidates), so the adaptive engine engages for real: budgeted
// evaluation, one row per period, and every verifier check green.
func TestBigGridScaledDown(t *testing.T) {
	cfg := BigGridConfig{Periods: 40, GridLevels: 9, SplitLayers: 6}
	if cfg.Grid().Size() <= 32768 {
		t.Fatalf("test grid %d too small to engage the adaptive engine", cfg.Grid().Size())
	}
	tab, err := BigGrid(tinyScale(), cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != cfg.Periods {
		t.Fatalf("%d rows, want %d", len(tab.Rows), cfg.Periods)
	}
	cand, err := column(tab, "candidates", nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := core.AcquisitionBudget(cfg.Grid().Size())
	for i, c := range cand {
		if c <= 0 || int(c) > budget {
			t.Fatalf("period %d: %v candidates outside (0, %d]", i, c, budget)
		}
	}
	checks, err := VerifyBigGrid(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 4 {
		t.Fatalf("only %d checks emitted", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("check failed: %s: %s (%s)", c.Figure, c.Claim, c.Detail)
		}
	}
}

// TestBigGridRejectsDegenerateConfig covers the config validation.
func TestBigGridRejectsDegenerateConfig(t *testing.T) {
	if _, err := BigGrid(tinyScale(), BigGridConfig{Periods: 1, GridLevels: 9, SplitLayers: 6}, 1); err == nil {
		t.Fatal("1-period horizon accepted")
	}
}
