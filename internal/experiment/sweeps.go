package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// sweepSamples is how many measurement periods average into each plotted
// dot of the §3 sweeps (each period already averages 150 images, matching
// the paper's methodology).
const sweepSamples = 5

// newSweepTestbed builds the single-user 35 dB prototype configuration used
// by the §3 measurement campaign.
func newSweepTestbed(loadFactor float64, seed int64) (*testbed.Testbed, error) {
	cfg := testbed.DefaultConfig()
	cfg.LoadFactor = loadFactor
	return testbed.New(cfg, []ran.User{{SNRdB: 35}}, seed)
}

// levels returns n evenly spaced values across [lo, hi].
func levels(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// sweepControl builds the probe control for one calibration dot. The §3
// sweeps chart the testbed's raw dose-response surfaces (Figs. 1–6) and
// deliberately probe off the learned controller's grid — exactly how
// the paper calibrated its prototype — so this is the one sanctioned
// construction site outside the grid/safe-set machinery.
func sweepControl(res, air, gpu, mcs float64) core.Control {
	//edgebol:allow safectrl -- calibration sweeps probe the raw response surface off-grid by design and never actuate a learned policy
	return core.Control{Resolution: res, Airtime: air, GPUSpeed: gpu, MCS: mcs}
}

// measureDot runs one §3 measurement dot: sweepSamples periods at a fixed
// control, reporting the per-KPI medians.
func measureDot(tb *testbed.Testbed, x core.Control) (core.KPIs, error) {
	var delays, gpuDelays, maps, server, bs []float64
	for i := 0; i < sweepSamples; i++ {
		k, err := tb.Measure(x)
		if err != nil {
			return core.KPIs{}, err
		}
		delays = append(delays, k.Delay)
		gpuDelays = append(gpuDelays, k.GPUDelay)
		maps = append(maps, k.MAP)
		server = append(server, k.ServerPower)
		bs = append(bs, k.BSPower)
	}
	return core.KPIs{
		Delay:       Median(delays),
		GPUDelay:    Median(gpuDelays),
		MAP:         Median(maps),
		ServerPower: Median(server),
		BSPower:     Median(bs),
	}, nil
}

// Fig1 regenerates "mAP vs service delay for images with different
// resolutions": all other policies at maximum (minimum delay), resolution
// swept.
func Fig1(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	tb, err := newSweepTestbed(1, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig1",
		Title:   "mAP vs service delay per image resolution",
		Columns: []string{"resolution", "delay_s", "mAP"},
	}
	for _, res := range levels(0.25, 1, scale.SweepLevels) {
		k, err := measureDot(tb, sweepControl(res, 1, 1, 1))
		if err != nil {
			return nil, err
		}
		t.AddRow(res, k.Delay, k.MAP)
	}
	return t, nil
}

// Fig2 regenerates "service delay vs server power for different airtime
// policies and resolutions".
func Fig2(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	tb, err := newSweepTestbed(1, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   "Service delay vs server power across airtime x resolution",
		Columns: []string{"airtime", "resolution", "server_power_w", "delay_s"},
	}
	for _, air := range []float64{0.2, 0.5, 1.0} {
		for _, res := range levels(0.25, 1, scale.SweepLevels) {
			k, err := measureDot(tb, sweepControl(res, air, 1, 1))
			if err != nil {
				return nil, err
			}
			t.AddRow(air, res, k.ServerPower, k.Delay)
		}
	}
	return t, nil
}

// Fig3 regenerates "delay and GPU delay vs server power for different GPU
// speed policies and resolutions" (both panels of the paper's figure).
func Fig3(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	tb, err := newSweepTestbed(1, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Delay and GPU delay vs server power across GPU speed x resolution",
		Columns: []string{"gpu_speed", "resolution", "server_power_w", "delay_s", "gpu_delay_s"},
	}
	for _, gpu := range []float64{0.1, 0.45, 1.0} {
		for _, res := range levels(0.25, 1, scale.SweepLevels) {
			k, err := measureDot(tb, sweepControl(res, 1, gpu, 1))
			if err != nil {
				return nil, err
			}
			t.AddRow(gpu, res, k.ServerPower, k.Delay, k.GPUDelay)
		}
	}
	return t, nil
}

// Fig4 regenerates "mAP vs server power for different resolutions" at
// maximum radio and compute resources.
func Fig4(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	tb, err := newSweepTestbed(1, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4",
		Title:   "mAP vs server power per resolution",
		Columns: []string{"resolution", "server_power_w", "mAP"},
	}
	for _, res := range levels(0.25, 1, scale.SweepLevels) {
		k, err := measureDot(tb, sweepControl(res, 1, 1, 1))
		if err != nil {
			return nil, err
		}
		t.AddRow(res, k.ServerPower, k.MAP)
	}
	return t, nil
}

// figBSPower shares the Fig. 5/6 sweep at a given background load factor.
func figBSPower(id, title string, loadFactor float64, scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	tb, err := newSweepTestbed(loadFactor, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"airtime", "mean_mcs", "resolution", "bs_power_w"},
	}
	for _, air := range []float64{0.2, 0.5, 1.0} {
		for _, mcsNorm := range levels(0, 1, scale.SweepLevels) {
			for _, res := range []float64{0.25, 0.5, 0.75, 1.0} {
				x := sweepControl(res, air, 1, mcsNorm)
				k, err := measureDot(tb, x)
				if err != nil {
					return nil, err
				}
				meanMCS := float64(ran.EffectiveMCS(ran.CQIFromSNR(35), x.MCSCap()))
				t.AddRow(air, meanMCS, res, k.BSPower)
			}
		}
	}
	return t, nil
}

// Fig5 regenerates "BS power vs radio policies" at nominal load.
func Fig5(scale Scale, seed int64) (*Table, error) {
	return figBSPower("fig5", "BS power vs MCS x airtime x resolution (nominal load)", 1, scale, seed)
}

// Fig6 regenerates the same sweep at 10x load, where the MCS effect
// inverts for high-resolution traffic.
func Fig6(scale Scale, seed int64) (*Table, error) {
	return figBSPower("fig6", "BS power vs MCS x airtime x resolution (10x load)", 10, scale, seed)
}

// SweepAll runs every §3 measurement figure.
func SweepAll(scale Scale, seed int64) ([]*Table, error) {
	type gen struct {
		name string
		fn   func(Scale, int64) (*Table, error)
	}
	var out []*Table
	for _, g := range []gen{{"fig1", Fig1}, {"fig2", Fig2}, {"fig3", Fig3}, {"fig4", Fig4}, {"fig5", Fig5}, {"fig6", Fig6}} {
		t, err := g.fn(scale, seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", g.name, err)
		}
		out = append(out, t)
	}
	return out, nil
}
