package experiment

import "testing"

// TestFleetWarmStartScenario regenerates the fleet warm-start table at a
// test scale and asserts every VerifyFleetWarmStart claim — including the
// headline: a warm-started joiner reaches safe convergence in at most
// half the cold joiner's periods.
func TestFleetWarmStartScenario(t *testing.T) {
	scale := tinyScale()
	scale.Cells = 3
	scale.WarmStartNeighbors = 2
	tab, err := FleetWarmStart(scale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != scale.Reps {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), scale.Reps)
	}
	checks, err := VerifyFleetWarmStart(tab, scale.Periods)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("claim failed: %s (%s)", c.Claim, c.Detail)
		}
	}
}

// TestScaleValidateFleetFields covers the new Scale fields' validation.
func TestScaleValidateFleetFields(t *testing.T) {
	s := tinyScale()
	s.Cells = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative Cells accepted")
	}
	s = tinyScale()
	s.WarmStartNeighbors = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative WarmStartNeighbors accepted")
	}
	s = tinyScale()
	s.Cells = 2
	s.WarmStartNeighbors = 3
	if err := s.Validate(); err == nil {
		t.Fatal("more neighbors than cells accepted")
	}
	for _, sc := range []Scale{PaperScale(), QuickScale()} {
		if err := sc.Validate(); err != nil {
			t.Fatalf("canonical scale invalid: %v", err)
		}
	}
}
