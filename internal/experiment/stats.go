// Package experiment regenerates every figure of the paper's evaluation
// (§3 measurement sweeps, Figs. 1–6, and §6 learning experiments,
// Figs. 9–14) against the simulated prototype, reporting — as the paper
// does — medians with 10th/90th percentile bands over independent
// repetitions.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by linear
// interpolation. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("experiment: percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Band summarizes repetitions at one point: median with the paper's
// 10th/90th percentile shading.
type Band struct {
	Median, P10, P90 float64
}

// BandOf computes a Band from samples.
func BandOf(xs []float64) Band {
	return Band{Median: Median(xs), P10: Percentile(xs, 10), P90: Percentile(xs, 90)}
}

// Table is one regenerated figure as tabular data: rows of float columns
// that plot the same series the paper's figure shows.
type Table struct {
	// ID is the experiment identifier ("fig9", ...).
	ID string
	// Title describes the figure.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold the data.
	Rows [][]float64
}

// AddRow appends a row, which must match the column count.
func (t *Table) AddRow(vals ...float64) {
	if len(vals) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row of %d values for %d columns in %s", len(vals), len(t.Columns), t.ID))
	}
	t.Rows = append(t.Rows, vals)
}

// CSV renders the table as CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCII renders the table for terminal display, truncating long tables.
func (t *Table) ASCII(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	rows := t.Rows
	truncated := false
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
		truncated = true
	}
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%12.4g", v)
		}
		b.WriteByte('\n')
	}
	if truncated {
		fmt.Fprintf(&b, "... (%d more rows)\n", len(t.Rows)-maxRows)
	}
	return b.String()
}
