package experiment

import (
	"math"
	"strings"
	"testing"
)

func tinyScale() Scale {
	return Scale{
		GridLevels:      5,
		Periods:         40,
		Reps:            2,
		SweepLevels:     3,
		DynamicPeriods:  30,
		PhasePeriods:    25,
		Delta2s:         []float64{1, 8},
		TailWindow:      10,
		MaxObservations: 150,
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if Median(xs) != 3 {
		t.Fatalf("median = %v, want 3", Median(xs))
	}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extreme percentiles wrong")
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v, want 2", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
}

func TestBandOf(t *testing.T) {
	b := BandOf([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if b.P10 >= b.Median || b.Median >= b.P90 {
		t.Fatalf("band ordering broken: %+v", b)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "test", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2)
	tab.AddRow(3, 4)
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2\n3,4\n") {
		t.Fatalf("CSV output wrong:\n%s", csv)
	}
	ascii := tab.ASCII(1)
	if !strings.Contains(ascii, "1 more rows") {
		t.Fatalf("ASCII truncation missing:\n%s", ascii)
	}
}

func TestTableAddRowMismatchPanics(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"a"}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.AddRow(1, 2)
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{PaperScale(), QuickScale(), tinyScale()} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	bad := tinyScale()
	bad.GridLevels = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for tiny grid")
	}
	bad = tinyScale()
	bad.TailWindow = 1000
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for oversized tail window")
	}
}

func col(tab *Table, name string) int {
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

func TestFig1Shape(t *testing.T) {
	tab, err := Fig1(tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d, m := col(tab, "delay_s"), col(tab, "mAP")
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][d] <= tab.Rows[i-1][d] {
			t.Fatal("fig1 delay not increasing with resolution")
		}
		if tab.Rows[i][m] <= tab.Rows[i-1][m] {
			t.Fatal("fig1 mAP not increasing with resolution")
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2(tinyScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// For the same resolution, delay at airtime 0.2 must exceed airtime 1.
	a, r, d := col(tab, "airtime"), col(tab, "resolution"), col(tab, "delay_s")
	byKey := map[[2]float64]float64{}
	for _, row := range tab.Rows {
		byKey[[2]float64{row[a], row[r]}] = row[d]
	}
	found := false
	for key, slow := range byKey {
		if key[0] == 0.2 {
			if fast, ok := byKey[[2]float64{1.0, key[1]}]; ok {
				found = true
				if slow <= fast {
					t.Fatalf("fig2: airtime 0.2 delay %v not above airtime 1 delay %v", slow, fast)
				}
			}
		}
	}
	if !found {
		t.Fatal("fig2 rows missing expected airtime pairs")
	}
}

func TestFig5And6Inversion(t *testing.T) {
	scale := tinyScale()
	f5, err := Fig5(scale, 3)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6(scale, 3)
	if err != nil {
		t.Fatal(err)
	}
	slope := func(tab *Table, airtime, res float64) float64 {
		a, m, r, p := col(tab, "airtime"), col(tab, "mean_mcs"), col(tab, "resolution"), col(tab, "bs_power_w")
		var loMCS, hiMCS, loP, hiP float64
		loMCS, hiMCS = math.Inf(1), math.Inf(-1)
		for _, row := range tab.Rows {
			if row[a] != airtime || row[r] != res {
				continue
			}
			if row[m] < loMCS {
				loMCS, loP = row[m], row[p]
			}
			if row[m] > hiMCS {
				hiMCS, hiP = row[m], row[p]
			}
		}
		return hiP - loP
	}
	// Nominal load: higher MCS lowers BS power for full-res traffic.
	if s := slope(f5, 1.0, 1.0); s >= 0 {
		t.Fatalf("fig5: BS power should fall with MCS at nominal load, slope %v", s)
	}
	// 10x load with small airtime: higher MCS raises BS power.
	if s := slope(f6, 0.2, 1.0); s <= 0 {
		t.Fatalf("fig6: BS power should rise with MCS at 10x load, slope %v", s)
	}
}

func TestFig9Converges(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	scale := tinyScale()
	tab, err := Fig9(scale, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(scale.Delta2s)*scale.Periods {
		t.Fatalf("fig9 rows %d, want %d", len(tab.Rows), len(scale.Delta2s)*scale.Periods)
	}
	d2c, tc, cc := col(tab, "delta2"), col(tab, "t"), col(tab, "cost_med")
	var early, late []float64
	for _, row := range tab.Rows {
		if row[d2c] != 1 {
			continue
		}
		if row[tc] < 5 {
			early = append(early, row[cc])
		}
		if row[tc] >= float64(scale.Periods-10) {
			late = append(late, row[cc])
		}
	}
	if Mean(late) >= Mean(early) {
		t.Fatalf("fig9 cost did not improve: early %v late %v", Mean(early), Mean(late))
	}
}

func TestFig10And11(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	scale := tinyScale()
	f10, f11, err := Fig10And11(scale, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(fig10Settings) * len(scale.Delta2s)
	if len(f10.Rows) != wantRows || len(f11.Rows) != wantRows {
		t.Fatalf("rows %d/%d, want %d", len(f10.Rows), len(f11.Rows), wantRows)
	}
	nc, oc := col(f10, "norm_cost"), col(f10, "oracle_norm_cost")
	for _, row := range f10.Rows {
		if row[nc] <= 0 {
			t.Fatalf("non-positive normalized cost %v", row[nc])
		}
		// Feasible oracles must not exceed the learned cost by much (the
		// oracle is a lower bound up to measurement noise on the tail).
		if row[oc] > 0 && row[nc] < row[oc]*0.9 {
			t.Fatalf("EdgeBOL cost %v implausibly below oracle %v", row[nc], row[oc])
		}
	}
	for _, row := range f11.Rows {
		for c := 3; c < len(row); c++ {
			if row[c] < 0 || row[c] > 1 {
				t.Fatalf("fig11 policy out of range: %v", row[c])
			}
		}
	}
}

func TestFig12GapSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	scale := tinyScale()
	tab, err := Fig12(scale, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, v := col(tab, "gap_frac"), col(tab, "violation_rate")
	for _, row := range tab.Rows {
		if row[g] < -0.15 {
			t.Fatalf("fig12 gap %v below oracle: noise or oracle bug", row[g])
		}
		if row[v] > 0.4 {
			t.Fatalf("fig12 violation rate %v too high", row[v])
		}
	}
}

func TestFig13Wellformed(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	scale := tinyScale()
	tab, err := Fig13(scale, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != scale.DynamicPeriods {
		t.Fatalf("fig13 rows %d, want %d", len(tab.Rows), scale.DynamicPeriods)
	}
	snr, safe := col(tab, "snr_db_med"), col(tab, "safe_size_med")
	varied := false
	for i, row := range tab.Rows {
		if row[snr] < 5-1e-9 || row[snr] > 38+1e-9 {
			t.Fatalf("fig13 SNR %v out of trace bounds", row[snr])
		}
		if row[safe] < 1 {
			t.Fatal("fig13 safe set collapsed")
		}
		if i > 0 && row[snr] != tab.Rows[0][snr] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("fig13 SNR trace never moved")
	}
}

func TestFig14BothAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("learning experiment skipped in -short mode")
	}
	scale := tinyScale()
	tab, err := Fig14(scale, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * 3 * scale.PhasePeriods
	if len(tab.Rows) != wantRows {
		t.Fatalf("fig14 rows %d, want %d", len(tab.Rows), wantRows)
	}
	a, dv, mv := col(tab, "algo"), col(tab, "delay_violation"), col(tab, "map_violation")
	sums := map[float64]float64{}
	for _, row := range tab.Rows {
		if row[dv] < 0 || row[mv] < 0 {
			t.Fatal("negative violation magnitude")
		}
		sums[row[a]] += row[dv] + row[mv]
	}
	if _, ok := sums[0]; !ok {
		t.Fatal("EdgeBOL rows missing")
	}
	if _, ok := sums[1]; !ok {
		t.Fatal("DDPG rows missing")
	}
}
