package experiment

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/multislice"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// FleetWarmStart measures the value of cross-cell knowledge transfer: a
// donor fleet of scale.Cells cells (heterogeneous radio conditions, one
// O-RAN stack each) learns for scale.Periods periods, then a new cell
// joins twice — once warm-started from its scale.WarmStartNeighbors most
// context-similar donors (fleet.WarmStart) and once cold, on an identical
// twin environment — and the scenario counts each joiner's periods to
// safe convergence.
//
// "Safe convergence" is the first period in which the agent picks a
// *learned* control (not a fallback to the safe seed set S₀) that
// satisfies both service constraints. The raw first-satisfied period
// would be a degenerate metric: the safe seeds are maximum-resource
// configurations that usually satisfy the constraints immediately, so
// every cold start would look instantly "converged" while still burning
// maximum power.
//
// One table row per repetition: the cold and warm convergence periods
// (scale.Periods+1 when the horizon ran out), the pooled-sample count,
// and the donor-fleet size.
func FleetWarmStart(scale Scale, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	cells := scale.Cells
	if cells == 0 {
		cells = 3
	}
	neighbors := scale.WarmStartNeighbors
	if neighbors == 0 {
		neighbors = minInt(2, cells)
	}
	t := &Table{
		ID:    "fleetwarm",
		Title: "Fleet warm-start: periods to safe convergence, cold vs warm joiner",
		Columns: []string{
			"rep", "cold_periods", "warm_periods", "pool", "cells",
		},
	}
	for rep := 0; rep < scale.Reps; rep++ {
		cold, warm, pool, err := fleetWarmRep(scale, cells, neighbors, seed+int64(rep)*7919)
		if err != nil {
			return nil, fmt.Errorf("experiment: fleet warm-start rep %d: %w", rep, err)
		}
		t.AddRow(float64(rep), float64(cold), float64(warm), float64(pool), float64(cells))
	}
	return t, nil
}

// fleetWarmRep runs one repetition: train the donor fleet, admit a warm
// joiner and a cold twin, and race them to safe convergence.
func fleetWarmRep(scale Scale, cells, neighbors int, seed int64) (cold, warm, pool int, err error) {
	slices := make([]fleet.CellConfig, cells)
	for i := range slices {
		sc := donorSlice(i)
		sc.Name = fmt.Sprintf("donor-%02d", i)
		slices[i] = fleet.CellConfig{Name: sc.Name, Slice: sc}
	}
	opts := fleet.Options{
		Cells: slices,
		Base:  testbed.DefaultConfig(),
		Agent: core.Options{
			Grid:            scale.grid(),
			MaxObservations: scale.MaxObservations,
			Telemetry:       scale.Telemetry,
		},
		BaseSeed:  seed,
		WarmStart: fleet.WarmStartPolicy{Neighbors: neighbors},
	}
	f, err := fleet.New(context.Background(), opts)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = f.Close() }()
	// Donors learn their cells for the full experiment horizon.
	if _, err := f.Run(scale.Periods); err != nil {
		return 0, 0, 0, err
	}
	// The joiner matches the best-radio donors, so similarity selection
	// has signal: nearest donors share its context, far ones do not.
	joinerSlice := donorSlice(0)
	joinerSlice.Name = "joiner"
	joined, pool, err := f.AddCell(context.Background(), fleet.CellConfig{Name: "joiner", Slice: joinerSlice})
	if err != nil {
		return 0, 0, 0, err
	}
	warm, err = safeConvergencePeriod(joined.Agent, joined.Env, scale.Periods)
	if err != nil {
		return 0, 0, 0, err
	}
	// The cold twin lives in an identical environment (same slice, same
	// derived seed) but starts with empty GPs.
	coldEnv, err := multislice.NewSliceEnv(testbed.DefaultConfig(), joinerSlice, joined.Seed)
	if err != nil {
		return 0, 0, 0, err
	}
	coldAgent, err := core.NewAgent(core.Options{
		Grid:            scale.grid(),
		Weights:         joinerSlice.Weights,
		Constraints:     joinerSlice.Constraints,
		MaxObservations: scale.MaxObservations,
		Telemetry:       scale.Telemetry,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	cold, err = safeConvergencePeriod(coldAgent, coldEnv, scale.Periods)
	if err != nil {
		return 0, 0, 0, err
	}
	return cold, warm, pool, nil
}

// donorSlice returns the i-th donor cell's slice: identical service
// budgets and objectives everywhere (observation pooling requires one
// working-unit system), radio conditions degrading with i so contexts
// spread out and similarity selection is non-trivial.
func donorSlice(i int) multislice.SliceConfig {
	return multislice.SliceConfig{
		Name:          "donor",
		AirtimeBudget: 0.9,
		GPUShare:      0.9,
		Users:         []ran.User{{SNRdB: 35 - 3*float64(i)}},
		Weights:       core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints:   fig9Constraints,
	}
}

// safeConvergencePeriod steps the agent until its first safe-converged
// period: a learned (non-seed-fallback) selection whose measured KPIs
// satisfy the constraints. Returns the 1-based period index, or
// maxPeriods+1 when the horizon runs out.
func safeConvergencePeriod(agent *core.Agent, env core.Environment, maxPeriods int) (int, error) {
	cons := agent.Constraints()
	for p := 1; p <= maxPeriods; p++ {
		_, k, info, err := agent.Step(env)
		if err != nil {
			return 0, err
		}
		if !info.FromSeed && cons.Satisfied(k) {
			return p, nil
		}
	}
	return maxPeriods + 1, nil
}

// VerifyFleetWarmStart asserts the scenario's claims on a FleetWarmStart
// table: every joiner converges within the horizon, warm starts are
// seeded from a non-empty pool, and — the headline — the warm joiner
// reaches its first safe-converged period in at most half the cold
// joiner's periods, in every repetition.
func VerifyFleetWarmStart(t *Table, maxPeriods int) ([]Check, error) {
	cold, err := column(t, "cold_periods", nil)
	if err != nil {
		return nil, err
	}
	warm, err := column(t, "warm_periods", nil)
	if err != nil {
		return nil, err
	}
	pool, err := column(t, "pool", nil)
	if err != nil {
		return nil, err
	}
	if len(cold) == 0 {
		return nil, fmt.Errorf("experiment: empty fleet warm-start table")
	}
	var checks []Check
	allConverged, allPooled, allHalved := true, true, true
	worstRatio := 0.0
	for i := range cold {
		if cold[i] > float64(maxPeriods) || warm[i] > float64(maxPeriods) {
			allConverged = false
		}
		if pool[i] <= 0 {
			allPooled = false
		}
		if warm[i] > cold[i]/2 {
			allHalved = false
		}
		if r := warm[i] / cold[i]; r > worstRatio {
			worstRatio = r
		}
	}
	checks = append(checks, check("fleetwarm", "cold and warm joiners converge within the horizon",
		allConverged, "horizon %d periods", maxPeriods))
	checks = append(checks, check("fleetwarm", "warm starts seeded from a non-empty donor pool",
		allPooled, "pools %v", pool))
	checks = append(checks, check("fleetwarm", "warm joiner converges in at most half the cold periods",
		allHalved, "worst warm/cold ratio %.2f", worstRatio))
	return checks, nil
}
