package experiment

import (
	"testing"

	"repro/internal/core"
)

// TestLongHorizonScaledDown runs the t≥10⁴ scenario at a test-sized
// horizon: the auto selector must convert mid-run, the table must carry
// one row per bucket, and every VerifyLongHorizon check must pass.
func TestLongHorizonScaledDown(t *testing.T) {
	cfg := LongHorizonConfig{
		Periods:        360,
		Engine:         core.EngineAuto,
		InducingPoints: 48,
		SparseSwitchAt: 120,
		Buckets:        12,
	}
	tab, err := LongHorizon(tinyScale(), cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != cfg.Buckets {
		t.Fatalf("%d rows, want %d buckets", len(tab.Rows), cfg.Buckets)
	}
	inducing, err := column(tab, "inducing", nil)
	if err != nil {
		t.Fatal(err)
	}
	if inducing[0] != 0 {
		t.Fatalf("first bucket already sparse (inducing %v)", inducing[0])
	}
	if last := inducing[len(inducing)-1]; last <= 0 || last > 48 {
		t.Fatalf("final basis %v outside (0, 48]", last)
	}
	checks, err := VerifyLongHorizon(tab, cfg.InducingPoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 4 {
		t.Fatalf("only %d checks emitted", len(checks))
	}
	for _, c := range checks {
		if !c.OK {
			t.Errorf("check failed: %s: %s (%s)", c.Figure, c.Claim, c.Detail)
		}
	}
}

// TestLongHorizonSparseFromStart covers the always-sparse configuration
// and the degenerate-config errors.
func TestLongHorizonSparseFromStart(t *testing.T) {
	cfg := LongHorizonConfig{Periods: 120, Engine: core.EngineSparse, InducingPoints: 32, Buckets: 6}
	tab, err := LongHorizon(tinyScale(), cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	inducing, err := column(tab, "inducing", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range inducing {
		if v <= 0 || v > 32 {
			t.Fatalf("bucket %d: basis %v outside (0, 32]", i, v)
		}
	}
	if _, err := LongHorizon(tinyScale(), LongHorizonConfig{Periods: 1}, 3); err == nil {
		t.Fatal("degenerate horizon accepted")
	}
}
