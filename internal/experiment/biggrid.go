package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

// BigGridConfig parameterizes the big-grid scenario: the EdgeBOL loop on
// a control space far past the paper's 11⁴ — per-dimension resolution
// pushed to 31 levels and the split-inference placement opened as a fifth
// dimension — where the exhaustive per-period sweep is off the table and
// the adaptive coarse-to-fine acquisition engine has to carry the run.
type BigGridConfig struct {
	// Periods is the horizon; DefaultBigGrid uses 60.
	Periods int
	// GridLevels is the per-dimension level count of the paper's four
	// dimensions (default 31).
	GridLevels int
	// SplitLayers is the level count of the split-inference dimension
	// (default 8; 1 collapses back to the 4-D space).
	SplitLayers int
	// Acquisition selects the engine; the headline scenario keeps
	// core.AcqAuto and relies on the size threshold to engage the
	// adaptive engine.
	Acquisition core.AcquisitionMode
}

// DefaultBigGrid is the headline 31⁴×8 ≈ 7.4M-candidate scenario.
func DefaultBigGrid() BigGridConfig {
	return BigGridConfig{Periods: 60, GridLevels: 31, SplitLayers: 8}
}

// Grid resolves the configured control space.
func (c BigGridConfig) Grid() core.GridSpec {
	//edgebol:allow safectrl -- scenario geometry handed straight to NewAgent, which validates the spec before any control leaves the grid machinery
	g := core.GridSpec{Levels: c.GridLevels, MinResolution: 0.1, MinAirtime: 0.1}
	g.LevelsPerDim[4] = c.SplitLayers
	return g
}

// BigGrid runs one EdgeBOL agent over the configured multi-million-point
// grid on the steady 35 dB single-user testbed (δ₁ = 1, δ₂ = 8) and
// records one row per period: realized cost and KPIs, a violation flag,
// the chosen split placement, the number of candidates whose posterior
// the acquisition actually evaluated (against the constant grid_size
// column), and the selection latency.
func BigGrid(scale Scale, cfg BigGridConfig, seed int64) (*Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	if cfg.Periods == 0 {
		cfg.Periods = DefaultBigGrid().Periods
	}
	if cfg.GridLevels == 0 {
		cfg.GridLevels = DefaultBigGrid().GridLevels
	}
	if cfg.SplitLayers == 0 {
		cfg.SplitLayers = DefaultBigGrid().SplitLayers
	}
	if cfg.Periods < 2 {
		return nil, fmt.Errorf("experiment: big-grid horizon of %d periods", cfg.Periods)
	}
	grid := cfg.Grid()
	w := core.CostWeights{Delta1: 1, Delta2: 8}
	agent, err := core.NewAgent(core.Options{
		Grid:            grid,
		Weights:         w,
		Constraints:     fig9Constraints,
		Acquisition:     cfg.Acquisition,
		MaxObservations: scale.MaxObservations,
		Telemetry:       scale.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	tb, err := scale.newTestbed(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "biggrid",
		Title: fmt.Sprintf("Big-grid run: adaptive acquisition over %d candidates (%s engine)",
			grid.Size(), agent.AcquisitionEngine()),
		Columns: []string{
			"t", "cost", "delay", "map", "viol", "split",
			"candidates", "grid_size", "sweep_ms",
		},
	}
	size := float64(grid.Size())
	for tt := 0; tt < cfg.Periods; tt++ {
		x, k, info, err := agent.Step(tb)
		if err != nil {
			return nil, fmt.Errorf("experiment: big-grid period %d: %w", tt, err)
		}
		viol := 0.0
		if k.Delay > fig9Constraints.MaxDelay {
			viol = 1
		}
		t.AddRow(float64(tt), w.Cost(k), k.Delay, k.MAP, viol, x.SplitLayer,
			float64(info.CandidatesEvaluated), size, info.SweepSeconds*1e3)
	}
	return t, nil
}

// VerifyBigGrid asserts the scenario's claims on a BigGrid table: the
// adaptive engine actually engaged (a strict subset of the grid evaluated
// every period), the per-period evaluation count respects the published
// budget — under 5% of the grid at the headline 7.4M-candidate scale —
// the delay constraint holds at the paper's few-percent level after
// burn-in, and the cost converges rather than drifting.
func VerifyBigGrid(t *Table) ([]Check, error) {
	cand, err := column(t, "candidates", nil)
	if err != nil {
		return nil, err
	}
	sizes, err := column(t, "grid_size", nil)
	if err != nil {
		return nil, err
	}
	cost, err := column(t, "cost", nil)
	if err != nil {
		return nil, err
	}
	viol, err := column(t, "viol", nil)
	if err != nil {
		return nil, err
	}
	n := len(cand)
	if n < 8 {
		return nil, fmt.Errorf("experiment: big-grid table has only %d rows", n)
	}
	size := int(sizes[0])
	budget := core.AcquisitionBudget(size)

	maxCand, minCand := 0.0, sizes[0]
	for _, c := range cand {
		if c > maxCand {
			maxCand = c
		}
		if c < minCand {
			minCand = c
		}
	}
	var checks []Check
	checks = append(checks, check("biggrid",
		"adaptive acquisition evaluates a strict subset of the grid every period",
		minCand > 0 && maxCand < sizes[0]/2,
		"evaluated %0.f–%0.f of %d candidates", minCand, maxCand, size))
	checks = append(checks, check("biggrid",
		"per-period evaluations respect the acquisition budget",
		maxCand <= float64(budget),
		"max %0.f, budget %d", maxCand, budget))
	if size >= 1<<20 {
		frac := maxCand / sizes[0]
		checks = append(checks, check("biggrid",
			"at multi-million-candidate scale the engine touches under 5% of the grid",
			frac < 0.05, "max fraction %.4f", frac))
	}

	burn := n / 3
	tailViol := 0.0
	for _, v := range viol[burn:] {
		tailViol += v
	}
	violRate := tailViol / float64(n-burn)
	checks = append(checks, check("biggrid",
		"delay constraint holds at the paper's few-percent level after burn-in",
		violRate <= 0.15, "violation rate %.3f over %d periods", violRate, n-burn))

	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	quarter := n / 4
	head, tail := mean(cost[:quarter]), mean(cost[n-quarter:])
	checks = append(checks, check("biggrid",
		"cost converges: the tail quarter is no dearer than the exploration quarter",
		tail <= head*1.05, "head %.1f mu, tail %.1f mu", head, tail))
	return checks, nil
}
