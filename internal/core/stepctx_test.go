package core

import (
	"context"
	"errors"
	"testing"
)

// ctxEnv wraps quadEnv with a MeasureCtx that honors cancellation, the way
// the O-RAN environment does across the control plane.
type ctxEnv struct {
	quadEnv
	sawCtx bool
}

func (e *ctxEnv) MeasureCtx(ctx context.Context, x Control) (KPIs, error) {
	e.sawCtx = true
	if err := ctx.Err(); err != nil {
		return KPIs{}, err
	}
	return e.Measure(x)
}

func TestStepCtxCanceledBeforeStep(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 1.2, MinMAP: 0.2})
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := a.StepCtx(ctx, env); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a.Observations() != 0 {
		t.Fatal("a canceled step must not record an observation")
	}
}

func TestStepCtxUsesMeasureCtx(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 1.2, MinMAP: 0.2})
	env := &ctxEnv{quadEnv: quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}}
	if _, _, _, err := a.StepCtx(context.Background(), env); err != nil {
		t.Fatal(err)
	}
	if !env.sawCtx {
		t.Fatal("StepCtx must route through MeasureCtx when the environment implements it")
	}
	if a.Observations() != 1 {
		t.Fatalf("observations %d", a.Observations())
	}
}

func TestStepDelegatesToStepCtx(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 1.2, MinMAP: 0.2})
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	if _, _, _, err := a.Step(env); err != nil {
		t.Fatal(err)
	}
	if a.Observations() != 1 {
		t.Fatalf("observations %d", a.Observations())
	}
}
