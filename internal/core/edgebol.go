package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/gp"
	"repro/internal/telemetry"
)

// Affine maps a raw KPI y onto the GP's working units:
// y_norm = (y − Center)/Scale.
type Affine struct {
	Center, Scale float64
}

// Norm applies the transform.
//
//edgebol:allow nanguard -- Scale is a fixed positive normalization constant (see Normalization below)
func (a Affine) Norm(y float64) float64 { return (y - a.Center) / a.Scale }

// Normalization holds the per-objective affine transforms applied to raw
// targets before they enter the zero-mean, unit-prior-variance GPs. The
// paper's "w.l.o.g. μ := 0, k(z,z′) < 1" hides exactly this bookkeeping:
// data must be centered and scaled for the zero-mean unit prior to be
// meaningful.
//
// These constants set the *statistical resolution* of the safe set. With
// β = 2.5, an unobserved control enters S_t only when β·σ drops below its
// constraint margin in normalized units, so each Scale should be
// comparable to the smallest margin that still counts as comfortably safe
// — not to the KPI's full range (oversized scales shrink every margin
// below β·σ and pin the agent to S₀ forever). Each Center should be a
// typical safe operating value, so the prior's pull toward zero is neither
// optimistic nor catastrophic for unexplored regions.
type Normalization struct {
	Cost, Delay, MAP Affine
	// ServerPower and BSPower are used only in decomposed-cost mode
	// (Options.DecomposedCost), where the two power surfaces are learned
	// separately.
	ServerPower, BSPower Affine
}

// DefaultNormalization returns transforms suited to the testbed's
// envelopes for the given cost weights: costs spanning roughly
// δ₁·[75, 220] W + δ₂·[4.6, 8] W, delays near 0.25 s with constraint
// margins of order 0.1 s, and mAPs near 0.55 with margins of order 0.1.
func DefaultNormalization(w CostWeights) Normalization {
	return Normalization{
		Cost:        Affine{Center: w.Delta1*120 + w.Delta2*5.5, Scale: w.Delta1*35 + w.Delta2*1},
		Delay:       Affine{Center: 0.25, Scale: 0.1},
		MAP:         Affine{Center: 0.55, Scale: 0.1},
		ServerPower: Affine{Center: 120, Scale: 35},
		BSPower:     Affine{Center: 5.5, Scale: 1},
	}
}

// EngineSelector picks the GP inference engine an agent runs.
type EngineSelector int

const (
	// EngineExact is the exact GP: O(t²) per observation, O(t²) per
	// candidate sweep, optionally capped by MaxObservations. The default,
	// and the correctness oracle the sparse engine is tested against.
	EngineExact EngineSelector = iota
	// EngineSparse runs the inducing-point engine from the first
	// observation: O(m²) per observation and per candidate regardless of
	// horizon (see gp.SparseConfig).
	EngineSparse
	// EngineAuto starts exact — at small t the exact posterior is both
	// affordable and strictly better — and converts every GP to the sparse
	// engine once the period counter reaches SparseSwitchAt, replaying the
	// retained history so the result matches having run sparse throughout.
	EngineAuto
)

// String returns the selector's flag/metadata spelling.
func (e EngineSelector) String() string {
	switch e {
	case EngineSparse:
		return "sparse"
	case EngineAuto:
		return "auto"
	default:
		return "exact"
	}
}

// Options configure an EdgeBOL agent.
type Options struct {
	// Grid is the discrete control space X.
	Grid GridSpec
	// Weights are the energy prices δ₁, δ₂ of eq. 1.
	Weights CostWeights
	// Constraints are the initial service requirements (changeable at
	// runtime via SetConstraints, as exercised in Fig. 14).
	Constraints Constraints
	// SafeSeed is the initial safe set S₀. The paper seeds it with the
	// lowest-delay, highest-mAP (and highest-power) configurations; empty
	// defaults to maximum radio and compute resources at every resolution
	// level — full resolution gives the highest mAP, lower resolutions the
	// lowest delays, and all of them burn maximum power.
	SafeSeed []Control
	// SafeBeta is the σ multiplier β in the safe-set test (eq. 8) and
	// AcqBeta the √β multiplier in the LCB acquisition (eq. 9). The paper
	// reports β^½ = 2.5 working well; both default to 2.5 when zero.
	SafeBeta, AcqBeta float64
	// LengthScales are the per-dimension kernel length scales over the
	// normalized (context, control) features. Safe-set expansion requires
	// adjacent grid points to be strongly correlated (k ≳ 0.98) — otherwise
	// the β-inflated confidence bound never certifies any unobserved
	// control and the agent stays pinned to S₀ — so nil defaults to
	// ≈10 grid steps on the control dimensions and 0.6 on the context
	// dimensions. KernelFactory defaults to the paper's Matérn-3/2.
	LengthScales  []float64
	KernelFactory gp.KernelFactory
	// LengthScalesPerGP optionally overrides LengthScales per objective
	// (0 = cost, 1 = delay, 2 = mAP) — the paper fits hyperparameters for
	// each function i separately on prior data (§5 "Kernel selection").
	// Nil entries fall back to LengthScales.
	LengthScalesPerGP [3][]float64
	// NoiseVars are the observation-noise variances ζ² of the cost, delay,
	// and mAP GPs over *normalized* targets; zero entries default to values
	// matched to the testbed's measurement noise under
	// DefaultNormalization.
	NoiseVars [3]float64
	// Norm maps raw targets to GP working units; zero-valued transforms
	// default to DefaultNormalization(Weights).
	Norm Normalization
	// MaxObservations bounds each GP's retained history (0 = unlimited).
	// It applies to the exact engine only: the sparse engine's costs are
	// bounded by InducingPoints and eviction is a no-op there.
	MaxObservations int
	// Engine selects the GP inference engine (exact, sparse, or
	// auto-switch at SparseSwitchAt). Fixed configuration: a checkpoint
	// restores only under the selector it was saved with.
	Engine EngineSelector
	// InducingPoints is the sparse engine's basis budget m; 0 defaults to
	// 128. Larger m tracks the exact posterior more tightly at O(m²)
	// per-candidate cost.
	InducingPoints int
	// SparseSwitchAt is the period count at which EngineAuto converts to
	// the sparse engine; 0 defaults to 512 — past that the exact sweep's
	// O(t²) per-candidate cost dominates a control period.
	SparseSwitchAt int
	// InferenceWorkers is the degree of parallelism of the per-period
	// posterior sweep: each objective's batched posterior is sharded across
	// this many goroutines, and the objectives themselves run concurrently.
	// 0 selects GOMAXPROCS; 1 runs the whole sweep serially on the calling
	// goroutine. Selected controls are bitwise identical for every setting.
	InferenceWorkers int
	// DisableSafeSet turns off the eq. 8 safety filter, reducing EdgeBOL
	// to plain contextual LCB minimization over the whole grid — the
	// safe-set ablation of the evaluation suite.
	DisableSafeSet bool
	// Rule selects the per-period control picker: the paper's
	// constrained LCB (eq. 9, default) or the SafeOpt-style
	// uncertainty-in-maximizers-and-expanders rule the paper compared
	// against and found "overly slow" (§5, citing Berkenkamp et al.).
	Rule AcquisitionRule
	// Acquisition selects the acquisition engine: AcqAuto (default) runs
	// the exhaustive sweep on grids where it is affordable and the
	// adaptive coarse-to-fine engine past acqAutoThreshold candidates;
	// AcqExhaustive and AcqAdaptive force one engine. On small grids the
	// adaptive engine returns the exhaustive argmax exactly (the acq-equiv
	// gate); on larger grids it holds a bounded optimum regret while
	// evaluating a few percent of the candidates. Fixed configuration: a
	// checkpoint restores only under the mode it was saved with.
	Acquisition AcquisitionMode
	// DecomposedCost learns the two power surfaces p_s and p_b with
	// separate GPs instead of the scalar cost u. The acquisition combines
	// them with the current weights, so δ₁/δ₂ may change at runtime
	// (SetWeights) without invalidating any learned knowledge — the §4.3
	// scenario of energy prices varying between day and night.
	DecomposedCost bool
	// PowerNoiseVars are the observation-noise variances of the server
	// and BS power GPs in decomposed mode; zeros default to the testbed's
	// meter noise under DefaultNormalization.
	PowerNoiseVars [2]float64
	// Telemetry attaches a metrics registry to the agent: per-period
	// counters/gauges, the acquisition-sweep latency histogram, the GP
	// observation/eviction counters, and one telemetry.PeriodRecord per
	// completed period. Nil disables instrumentation with zero overhead
	// on the inference hot path.
	Telemetry *telemetry.Registry
}

func (o *Options) applyDefaults() error {
	if err := o.Grid.Validate(); err != nil {
		return err
	}
	if err := o.Constraints.Validate(); err != nil {
		return err
	}
	if o.Weights.Delta1 < 0 || o.Weights.Delta2 < 0 || (o.Weights.Delta1 == 0 && o.Weights.Delta2 == 0) {
		return fmt.Errorf("core: cost weights %+v invalid", o.Weights)
	}
	if len(o.SafeSeed) == 0 {
		// One seed per resolution level, at maximum radio/compute resources
		// with all-edge inference (SplitLayer 0): full resolution gives the
		// highest mAP, lower resolutions the lowest delays, and all of them
		// burn maximum power.
		for _, r := range levelsIn(o.Grid.MinResolution, 1, o.Grid.dimLevels(dimResolution)) {
			o.SafeSeed = append(o.SafeSeed, Control{Resolution: r, Airtime: 1, GPUSpeed: 1, MCS: 1})
		}
	}
	for i, s := range o.SafeSeed {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("core: safe seed %d: %w", i, err)
		}
	}
	if o.SafeBeta == 0 {
		o.SafeBeta = 2.5
	}
	if o.AcqBeta == 0 {
		o.AcqBeta = 2.5
	}
	if o.SafeBeta < 0 || o.AcqBeta < 0 {
		return fmt.Errorf("core: negative beta")
	}
	dims := ContextDims + ControlDims
	if o.LengthScales == nil {
		o.LengthScales = make([]float64, dims)
		for i := 0; i < ContextDims; i++ {
			o.LengthScales[i] = 0.6
		}
		var steps [ControlDims]float64
		for d := range steps {
			// A single-level dimension is pinned: its feature distance is
			// identically zero, so any positive length scale is equivalent.
			if n := o.Grid.dimLevels(d); n > 1 {
				steps[d] = (1 - o.Grid.dimLow(d)) / float64(n-1)
			} else {
				steps[d] = 1
			}
		}
		for i, s := range steps {
			ls := 12 * s
			if ls < 0.5 {
				ls = 0.5
			}
			if ls > 4 {
				ls = 4
			}
			o.LengthScales[ContextDims+i] = ls
		}
	}
	if len(o.LengthScales) != dims {
		return fmt.Errorf("core: %d length scales, want %d", len(o.LengthScales), dims)
	}
	for i, ls := range o.LengthScalesPerGP {
		if ls != nil && len(ls) != dims {
			return fmt.Errorf("core: %d length scales for GP %d, want %d", len(ls), i, dims)
		}
	}
	if o.KernelFactory == nil {
		o.KernelFactory = gp.Matern32Factory
	}
	defNoise := [3]float64{1e-3, 2e-2, 6e-2}
	for i := range o.NoiseVars {
		if o.NoiseVars[i] == 0 {
			o.NoiseVars[i] = defNoise[i]
		}
		if o.NoiseVars[i] < 0 {
			return fmt.Errorf("core: negative noise variance")
		}
	}
	def := DefaultNormalization(o.Weights)
	if o.Norm.Cost == (Affine{}) {
		o.Norm.Cost = def.Cost
	}
	if o.Norm.Delay == (Affine{}) {
		o.Norm.Delay = def.Delay
	}
	if o.Norm.MAP == (Affine{}) {
		o.Norm.MAP = def.MAP
	}
	if o.Norm.ServerPower == (Affine{}) {
		o.Norm.ServerPower = def.ServerPower
	}
	if o.Norm.BSPower == (Affine{}) {
		o.Norm.BSPower = def.BSPower
	}
	if o.Norm.Cost.Scale <= 0 || o.Norm.Delay.Scale <= 0 || o.Norm.MAP.Scale <= 0 ||
		o.Norm.ServerPower.Scale <= 0 || o.Norm.BSPower.Scale <= 0 {
		return fmt.Errorf("core: non-positive normalization scales %+v", o.Norm)
	}
	defPowerNoise := [2]float64{7e-3, 3e-2}
	for i := range o.PowerNoiseVars {
		if o.PowerNoiseVars[i] == 0 {
			o.PowerNoiseVars[i] = defPowerNoise[i]
		}
		if o.PowerNoiseVars[i] < 0 {
			return fmt.Errorf("core: negative power noise variance")
		}
	}
	if o.MaxObservations < 0 {
		return fmt.Errorf("core: negative observation bound")
	}
	if o.Engine < EngineExact || o.Engine > EngineAuto {
		return fmt.Errorf("core: unknown engine selector %d", o.Engine)
	}
	if o.InducingPoints < 0 {
		return fmt.Errorf("core: negative inducing budget")
	}
	if o.InducingPoints == 0 {
		o.InducingPoints = 128
	}
	if o.SparseSwitchAt < 0 {
		return fmt.Errorf("core: negative sparse switch threshold")
	}
	if o.SparseSwitchAt == 0 {
		o.SparseSwitchAt = 512
	}
	if o.InferenceWorkers < 0 {
		return fmt.Errorf("core: negative inference worker count")
	}
	if o.Rule < AcquisitionLCB || o.Rule > AcquisitionSafeOpt {
		return fmt.Errorf("core: unknown acquisition rule %d", o.Rule)
	}
	if o.Acquisition < AcqAuto || o.Acquisition > AcqAdaptive {
		return fmt.Errorf("core: unknown acquisition mode %d", o.Acquisition)
	}
	if o.Acquisition == AcqAdaptive && o.Rule == AcquisitionSafeOpt {
		// SafeOpt ranks maximizers and expanders against the *global*
		// best-UCB over the safe set, which requires the full posterior
		// arrays the adaptive engine exists to avoid materializing.
		return fmt.Errorf("core: AcquisitionSafeOpt requires the exhaustive acquisition engine")
	}
	return nil
}

// controlsClose reports approximate equality of two controls, tolerating
// the floating-point error of grid-level arithmetic.
func controlsClose(a, b Control) bool {
	const eps = 1e-9
	return math.Abs(a.Resolution-b.Resolution) < eps &&
		math.Abs(a.Airtime-b.Airtime) < eps &&
		math.Abs(a.GPUSpeed-b.GPUSpeed) < eps &&
		math.Abs(a.MCS-b.MCS) < eps &&
		math.Abs(a.SplitLayer-b.SplitLayer) < eps
}

// AcquisitionRule identifies a control-selection rule.
type AcquisitionRule int

const (
	// AcquisitionLCB is the paper's constrained lower-confidence-bound
	// rule (eq. 9).
	AcquisitionLCB AcquisitionRule = iota
	// AcquisitionSafeOpt is the SafeOpt-style rule: sample the most
	// uncertain point among the potential minimizers and the safe-set
	// expanders. It carries exploration guarantees but converges slowly —
	// the comparison that motivated the paper's choice of eq. 9.
	AcquisitionSafeOpt
)

// AcquisitionMode selects how the per-period acquisition searches the
// control grid.
type AcquisitionMode int

const (
	// AcqAuto (the zero value) sweeps exhaustively on grids up to
	// acqAutoThreshold candidates — where the SweepPlan is fast and the
	// full posterior arrays are cheap — and switches to the adaptive
	// engine beyond, where the exhaustive sweep stops scaling.
	AcqAuto AcquisitionMode = iota
	// AcqExhaustive forces the full-grid sweep: every candidate's
	// posterior is computed every period. The correctness oracle the
	// adaptive engine is tested against.
	AcqExhaustive
	// AcqAdaptive forces the coarse-to-fine engine: a strided sub-lattice
	// sweep refined around the incumbents plus best-first local search
	// seeded from the safe set, evaluating a few percent of the grid.
	AcqAdaptive
)

// String returns the mode's flag/metadata spelling.
func (m AcquisitionMode) String() string {
	switch m {
	case AcqExhaustive:
		return "exhaustive"
	case AcqAdaptive:
		return "adaptive"
	default:
		return "auto"
	}
}

// acqAutoThreshold is the grid size above which AcqAuto abandons the
// exhaustive sweep. The paper's 11⁴ = 14 641 grid stays comfortably below
// it, so default-configured agents keep their bitwise-exact behaviour; the
// bound also marks where the adaptive engine's informed-set flood still
// guarantees the exhaustive argmax exactly (see acquire.go).
const acqAutoThreshold = 32768

// gpCost, gpDelay, gpMAP index the agent's three GPs, matching the paper's
// function indices i = 0 (cost), 1 (delay), 2 (mAP).
const (
	gpCost = iota
	gpDelay
	gpMAP
	numGPs
)

// Agent is the EdgeBOL learner (Algorithm 1). It is not safe for
// concurrent use.
type Agent struct {
	opts Options
	// grid is the materialized control space. Exhaustive agents build it
	// at construction; adaptive agents leave it nil — a multi-million-point
	// grid is exactly what the adaptive engine avoids materializing — and
	// Grid() enumerates lazily for diagnostics and baselines that ask.
	grid []Control
	// adaptive is the resolved acquisition engine: Options.Acquisition
	// after AcqAuto has been decided against the grid size.
	adaptive bool
	// acq is the pooled adaptive-engine state (nil on exhaustive agents).
	acq *acqEngine

	gps [numGPs]*gp.GP
	// powerGPs learn p_s (0) and p_b (1) in decomposed-cost mode.
	powerGPs [2]*gp.GP

	// plans are the per-objective grid sweep engines: distance tables over
	// the grid levels that turn each period's cross-covariance into table
	// lookups plus a per-training-point context scalar. A nil entry (the
	// kernel factory produced a non-package kernel) falls back to the
	// generic PosteriorBatch path; either way results are bitwise
	// identical.
	plans    [numGPs]*gp.SweepPlan
	powPlans [2]*gp.SweepPlan

	// feats is the grid's joint feature matrix, one row per grid point,
	// backed by a single flat allocation. The control portion of every row
	// (slots [ContextDims:]) is filled once at construction — the grid never
	// changes — and SelectControl refreshes only the context slots, and
	// only when some objective actually sweeps through the generic path.
	feats      [][]float64
	mu, sigma  [numGPs][]float64
	powMu      [2][]float64
	powSigma   [2][]float64
	safe       []bool
	safeSeedIx []int // indices of seed controls within the grid
	t          int

	met agentMetrics
	// lastInfo pairs the most recent SelectControl diagnostics with the
	// subsequent Observe, so a PeriodRecord can be emitted even when the
	// caller drives SelectControl and Observe separately (as Fig. 14 does).
	lastInfo SelectionInfo
}

// agentMetrics holds the agent's pre-registered telemetry handles; the
// zero value (all nil) is the disabled state.
type agentMetrics struct {
	reg          *telemetry.Registry
	periods      *telemetry.Counter
	seedFallback *telemetry.Counter
	safeSize     *telemetry.Gauge
	lcb          *telemetry.Gauge
	trainSize    *telemetry.Gauge
	sweep        *telemetry.Histogram

	// Acquisition-engine instrumentation: candidates whose posterior was
	// actually computed, multigrid refinement rounds, budget-exhaustion
	// fallbacks, and the selection latency split by engine mode.
	acqCandidates *telemetry.Counter
	acqRefines    *telemetry.Counter
	acqFallback   *telemetry.Counter
	acqLatency    *telemetry.Histogram

	// Checkpoint instrumentation (SaveCheckpoint/LoadCheckpoint).
	ckptSaves        *telemetry.Counter
	ckptRestores     *telemetry.Counter
	ckptBytes        *telemetry.Gauge
	ckptRestoreBytes *telemetry.Gauge
	ckptSaveLat      *telemetry.Histogram
	ckptRestoreLat   *telemetry.Histogram
}

// SelectionInfo reports diagnostics from one acquisition step.
type SelectionInfo struct {
	// SafeSetSize is |S_t| including the seed set. Under the adaptive
	// engine it counts the safe points among the evaluated candidates —
	// on small grids that equals the exhaustive count exactly (the
	// informed-set flood visits every certifiable point); on large grids
	// it is a lower bound.
	SafeSetSize int
	// FromSeed is true when no learned control passed the safety test and
	// the acquisition fell back to the seed set S₀.
	FromSeed bool
	// Adaptive reports which acquisition engine produced this selection.
	Adaptive bool
	// CandidatesEvaluated is the number of grid points whose posterior
	// was computed this period — the grid size for the exhaustive sweep,
	// typically a few percent of it for the adaptive engine.
	CandidatesEvaluated int
	// RefineRounds is the number of multigrid refinement rounds the
	// adaptive engine ran (0 under the exhaustive sweep).
	RefineRounds int
	// LCB is the acquisition value of the selected control (normalized).
	LCB float64
	// Cost, Delay, MAP are the posterior beliefs at the selected control
	// in normalized GP units — the per-objective mean/σ the safe set and
	// acquisition acted on.
	Cost, Delay, MAP Posterior
	// Workers is the resolved degree of parallelism of the posterior
	// sweep (Options.InferenceWorkers after defaulting).
	Workers int
	// SweepSeconds is the wall-clock latency of the whole acquisition:
	// posterior sweep, safe-set construction, and control selection.
	SweepSeconds float64
}

// NewAgent builds an EdgeBOL agent.
func NewAgent(opts Options) (*Agent, error) {
	if err := opts.applyDefaults(); err != nil {
		return nil, err
	}
	gridSize := opts.Grid.Size()
	a := &Agent{opts: opts}
	switch opts.Acquisition {
	case AcqAdaptive:
		a.adaptive = true
	case AcqAuto:
		a.adaptive = gridSize > acqAutoThreshold && opts.Rule != AcquisitionSafeOpt
	}
	if !a.adaptive {
		grid, err := opts.Grid.Enumerate()
		if err != nil {
			return nil, err
		}
		a.grid = grid
	} else if err := opts.Grid.Validate(); err != nil {
		return nil, err
	}
	newGP := func(ls []float64, noiseVar float64) (*gp.GP, error) {
		if opts.Engine == EngineSparse {
			return gp.NewSparse(opts.KernelFactory(ls), noiseVar, a.sparseConfig())
		}
		return gp.New(opts.KernelFactory(ls), noiseVar, opts.MaxObservations), nil
	}
	for i := range a.gps {
		ls := opts.LengthScales
		if perGP := opts.LengthScalesPerGP[i]; perGP != nil {
			ls = perGP
		}
		g, err := newGP(ls, opts.NoiseVars[i])
		if err != nil {
			return nil, err
		}
		a.gps[i] = g
		a.gps[i].Instrument(opts.Telemetry, objectiveNames[i])
		if !a.adaptive {
			a.mu[i] = make([]float64, gridSize)
			a.sigma[i] = make([]float64, gridSize)
		}
	}
	if opts.DecomposedCost {
		ls := opts.LengthScales
		if perGP := opts.LengthScalesPerGP[gpCost]; perGP != nil {
			ls = perGP
		}
		for i := range a.powerGPs {
			g, err := newGP(ls, opts.PowerNoiseVars[i])
			if err != nil {
				return nil, err
			}
			a.powerGPs[i] = g
			a.powerGPs[i].Instrument(opts.Telemetry, powerObjectiveNames[i])
			if !a.adaptive {
				a.powMu[i] = make([]float64, gridSize)
				a.powSigma[i] = make([]float64, gridSize)
			}
		}
	}
	// One sweep plan per objective, built from the grid's level values;
	// a constructor error (e.g. a custom kernel the plan cannot factorize)
	// leaves the entry nil and that objective on the generic path.
	if err := a.buildPlans(); err != nil {
		return nil, err
	}
	// Registry methods are nil-safe: with Telemetry == nil every handle is
	// nil and each instrumented site costs one predictable branch.
	a.met = agentMetrics{
		reg:          opts.Telemetry,
		periods:      opts.Telemetry.Counter("edgebol_core_periods_total"),
		seedFallback: opts.Telemetry.Counter("edgebol_core_seed_fallback_total"),
		safeSize:     opts.Telemetry.Gauge("edgebol_core_safe_set_size"),
		lcb:          opts.Telemetry.Gauge("edgebol_core_acquisition_lcb"),
		trainSize:    opts.Telemetry.Gauge("edgebol_core_gp_train_size"),
		sweep:        opts.Telemetry.Histogram("edgebol_core_sweep_seconds", telemetry.LatencyBuckets()),

		ckptSaves:        opts.Telemetry.Counter("edgebol_ckpt_saves_total"),
		ckptRestores:     opts.Telemetry.Counter("edgebol_ckpt_restores_total"),
		ckptBytes:        opts.Telemetry.Gauge("edgebol_ckpt_bytes"),
		ckptRestoreBytes: opts.Telemetry.Gauge("edgebol_ckpt_restore_bytes"),
		ckptSaveLat:      opts.Telemetry.Histogram("edgebol_ckpt_save_seconds", telemetry.LatencyBuckets()),
		ckptRestoreLat:   opts.Telemetry.Histogram("edgebol_ckpt_restore_seconds", telemetry.LatencyBuckets()),

		acqCandidates: opts.Telemetry.Counter("edgebol_acq_candidates_evaluated"),
		acqRefines:    opts.Telemetry.Counter("edgebol_acq_refine_rounds"),
		acqFallback:   opts.Telemetry.Counter("edgebol_acq_fallback_total"),
		acqLatency: opts.Telemetry.Histogram("edgebol_acq_select_seconds",
			telemetry.LatencyBuckets(), "mode", a.acqMode().String()),
	}
	if !a.adaptive {
		const dims = ContextDims + ControlDims
		a.feats = make([][]float64, len(a.grid))
		flat := make([]float64, len(a.grid)*dims)
		for i, x := range a.grid {
			row := flat[i*dims : (i+1)*dims : (i+1)*dims]
			x.appendFeatures(row[ContextDims:ContextDims])
			a.feats[i] = row
		}
		a.safe = make([]bool, len(a.grid))
	}
	// Locate seed controls on the grid (snapped if off-grid) by direct
	// index arithmetic.
	for _, s := range opts.SafeSeed {
		a.safeSeedIx = append(a.safeSeedIx, opts.Grid.Index(s))
	}
	if len(a.safeSeedIx) == 0 {
		return nil, fmt.Errorf("core: no safe seed maps onto the grid")
	}
	if a.adaptive {
		a.acq = newAcqEngine(a)
	}
	return a, nil
}

// acqMode reports the resolved acquisition engine (never AcqAuto).
func (a *Agent) acqMode() AcquisitionMode {
	if a.adaptive {
		return AcqAdaptive
	}
	return AcqExhaustive
}

// sparseConfig derives the gp.SparseConfig from the agent's options —
// shared by construction (EngineSparse) and conversion (EngineAuto).
func (a *Agent) sparseConfig() gp.SparseConfig {
	return gp.SparseConfig{MaxInducing: a.opts.InducingPoints}
}

// buildPlans (re)builds the per-objective grid sweep plans from the
// grid's level values against each GP's current basis. A plan constructor
// error (e.g. a custom kernel the plan cannot factorize) leaves that entry
// nil and the objective on the generic PosteriorBatch path; either way
// results are bitwise identical.
func (a *Agent) buildPlans() error {
	levelVals, err := a.opts.Grid.LevelValues()
	if err != nil {
		return err
	}
	build := func(g *gp.GP, objective string) *gp.SweepPlan {
		plan, err := gp.NewSweepPlan(g, ContextDims, levelVals)
		if err != nil {
			return nil
		}
		plan.Instrument(a.opts.Telemetry, objective)
		return plan
	}
	for i := range a.gps {
		a.plans[i] = build(a.gps[i], objectiveNames[i])
	}
	if a.opts.DecomposedCost {
		for i := range a.powerGPs {
			a.powPlans[i] = build(a.powerGPs[i], powerObjectiveNames[i])
		}
	}
	return nil
}

// switchToSparse converts every GP to the inducing-point engine (replaying
// the retained history through online basis selection), re-registers the
// engine-labeled telemetry, and rebuilds the sweep plans over the new
// bases. Used by EngineAuto when the period counter crosses SparseSwitchAt
// and by LoadCheckpoint when restoring a post-switch snapshot.
func (a *Agent) switchToSparse() error {
	cfg := a.sparseConfig()
	for i, g := range a.gps {
		if err := g.ConvertToSparse(cfg); err != nil {
			return fmt.Errorf("core: %s GP: %w", objectiveNames[i], err)
		}
		g.Instrument(a.opts.Telemetry, objectiveNames[i])
	}
	if a.opts.DecomposedCost {
		for i, g := range a.powerGPs {
			if err := g.ConvertToSparse(cfg); err != nil {
				return fmt.Errorf("core: %s GP: %w", powerObjectiveNames[i], err)
			}
			g.Instrument(a.opts.Telemetry, powerObjectiveNames[i])
		}
	}
	return a.buildPlans()
}

// EngineActive reports the engine currently serving inference: "exact" or
// "sparse". Under EngineAuto it flips when the switch threshold is crossed.
func (a *Agent) EngineActive() string { return a.gps[gpDelay].EngineName() }

// AcquisitionEngine reports the resolved acquisition engine as its flag
// spelling: "exhaustive" or "adaptive" (never "auto").
func (a *Agent) AcquisitionEngine() string { return a.acqMode().String() }

// InducingPoints reports the current inducing-basis size of the delay GP
// (the engines convert in lockstep, so one GP is representative); 0 while
// the exact engine is active.
func (a *Agent) InducingPoints() int {
	if !a.gps[gpDelay].IsSparse() {
		return 0
	}
	return a.gps[gpDelay].InducingLen()
}

// needsGenericSweep reports whether any objective active this period lacks
// a grid sweep plan and therefore reads the shared feature matrix.
func (a *Agent) needsGenericSweep() bool {
	for i := range a.gps {
		if i == gpCost && a.opts.DecomposedCost {
			continue
		}
		if a.plans[i] == nil {
			return true
		}
	}
	if a.opts.DecomposedCost {
		for i := range a.powerGPs {
			if a.powPlans[i] == nil {
				return true
			}
		}
	}
	return false
}

// Grid returns the enumerated control space. Adaptive agents do not
// materialize the grid for acquisition; the first Grid call enumerates it
// lazily for diagnostics and baselines that iterate the space explicitly.
func (a *Agent) Grid() []Control {
	if a.grid == nil {
		grid, err := a.opts.Grid.Enumerate()
		if err != nil {
			// The spec was validated at construction; unreachable.
			panic(err)
		}
		a.grid = grid
	}
	return a.grid
}

// Constraints returns the active constraints.
func (a *Agent) Constraints() Constraints { return a.opts.Constraints }

// SetConstraints replaces the service constraints at runtime. Because the
// agent models the delay and mAP surfaces (not the constraint itself), no
// relearning is needed — the next safe set is computed against the new
// thresholds from existing posteriors, the property Fig. 14 demonstrates.
// Invalid constraints return an *ErrInvalidReconfig naming the offending
// field and leave the agent unchanged; on success every cached safe-set
// and selection diagnostic derived under the old thresholds is
// invalidated.
func (a *Agent) SetConstraints(c Constraints) error {
	if c.MaxDelay <= 0 || math.IsNaN(c.MaxDelay) {
		return &ErrInvalidReconfig{Field: "Constraints.MaxDelay", Value: c.MaxDelay, Reason: "must be positive"}
	}
	if c.MinMAP < 0 || c.MinMAP > 1 || math.IsNaN(c.MinMAP) {
		return &ErrInvalidReconfig{Field: "Constraints.MinMAP", Value: c.MinMAP, Reason: "outside [0,1]"}
	}
	a.opts.Constraints = c
	a.invalidateDerived()
	return nil
}

// Weights returns the active cost weights.
func (a *Agent) Weights() CostWeights { return a.opts.Weights }

// SetWeights changes the energy prices δ₁, δ₂ at runtime. It requires
// decomposed-cost mode: there the power surfaces are weight-independent
// and nothing needs relearning, whereas a joint cost GP trained under the
// old prices would silently poison the acquisition. Invalid or
// inapplicable reconfigurations return an *ErrInvalidReconfig naming the
// offending field and leave the agent unchanged; on success every cached
// state derived under the old prices is invalidated.
func (a *Agent) SetWeights(w CostWeights) error {
	if !a.opts.DecomposedCost {
		return &ErrInvalidReconfig{Field: "Weights", Value: w, Reason: "requires DecomposedCost mode"}
	}
	if w.Delta1 < 0 || math.IsNaN(w.Delta1) {
		return &ErrInvalidReconfig{Field: "Weights.Delta1", Value: w.Delta1, Reason: "must be non-negative"}
	}
	if w.Delta2 < 0 || math.IsNaN(w.Delta2) {
		return &ErrInvalidReconfig{Field: "Weights.Delta2", Value: w.Delta2, Reason: "must be non-negative"}
	}
	if w.Delta1 == 0 && w.Delta2 == 0 {
		return &ErrInvalidReconfig{Field: "Weights", Value: w, Reason: "at least one price must be positive"}
	}
	a.opts.Weights = w
	a.invalidateDerived()
	return nil
}

// invalidateDerived drops every piece of cached state computed under the
// previous weights or constraints: the safe-set mask and the last
// selection diagnostics. The per-objective posteriors themselves are
// reconfiguration-independent (the agent models surfaces, not thresholds)
// and are recomputed from scratch by the next SelectControl anyway; the
// mask is cleared so no stale "safe under the old thresholds" bit can be
// observed between the reconfiguration and that next sweep.
func (a *Agent) invalidateDerived() {
	for i := range a.safe {
		a.safe[i] = false
	}
	a.lastInfo = SelectionInfo{}
}

// Observations returns the number of periods observed so far.
func (a *Agent) Observations() int { return a.t }

// SelectControl runs lines 4–7 of Algorithm 1 for the given context:
// compute the three posteriors over the whole grid, build the safe set
// (eq. 8, always including S₀), and minimize the constrained LCB (eq. 9).
//
//edgebol:hot
func (a *Agent) SelectControl(ctx Context) (Control, SelectionInfo) {
	if a.adaptive {
		return a.selectAdaptive(ctx)
	}
	start := time.Now()
	var cbuf [ContextDims]float64
	cf := ctx.appendFeatures(cbuf[:0])
	// The control portion of every feature row was precomputed at
	// construction; only the context slots change between periods — and
	// objectives swept through a grid plan never read the feature matrix
	// at all, so the refresh runs only when some objective lacks a plan.
	if a.needsGenericSweep() {
		for _, row := range a.feats {
			copy(row[:ContextDims], cf)
		}
	}
	// The per-objective posterior sweeps are independent — each reads the
	// shared feature matrix (or its own plan's distance tables) and writes
	// only its own mu/sigma buffers, and the GP read path holds no mutable
	// state — so they run concurrently, each internally sharded across
	// workers. Plan and generic paths are bitwise interchangeable.
	workers := a.opts.InferenceWorkers
	var wg sync.WaitGroup
	sweep := func(g *gp.GP, plan *gp.SweepPlan, mu, sigma []float64) {
		run := func(w int) {
			if plan != nil {
				plan.Sweep(cf, mu, sigma, w)
				return
			}
			g.PosteriorBatch(a.feats, mu, sigma, gp.BatchOptions{Workers: w})
		}
		if workers == 1 {
			run(1)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(workers)
		}()
	}
	for i := range a.gps {
		if i == gpCost && a.opts.DecomposedCost {
			continue
		}
		sweep(a.gps[i], a.plans[i], a.mu[i], a.sigma[i])
	}
	if a.opts.DecomposedCost {
		for i := range a.powerGPs {
			sweep(a.powerGPs[i], a.powPlans[i], a.powMu[i], a.powSigma[i])
		}
	}
	wg.Wait()
	if a.opts.DecomposedCost {
		// Combine the power posteriors into a cost posterior in raw
		// monetary units (only the ranking matters for the acquisition):
		// μ_u = δ₁·p̂_s + δ₂·p̂_b and, with the two surfaces modeled as
		// independent GPs, σ_u² = (δ₁·s_s·σ_s)² + (δ₂·s_b·σ_b)².
		w := a.opts.Weights
		n := a.opts.Norm
		for i := range a.grid {
			ps := a.powMu[0][i]*n.ServerPower.Scale + n.ServerPower.Center
			pb := a.powMu[1][i]*n.BSPower.Scale + n.BSPower.Center
			a.mu[gpCost][i] = w.Delta1*ps + w.Delta2*pb
			ss := w.Delta1 * n.ServerPower.Scale * a.powSigma[0][i]
			sb := w.Delta2 * n.BSPower.Scale * a.powSigma[1][i]
			a.sigma[gpCost][i] = math.Sqrt(ss*ss + sb*sb)
		}
	}

	cons := a.opts.Constraints
	dmax := a.opts.Norm.Delay.Norm(cons.MaxDelay)
	rmin := a.opts.Norm.MAP.Norm(cons.MinMAP)
	meanViolates := func(i int) bool {
		return a.mu[gpDelay][i] > dmax || a.mu[gpMAP][i] < rmin
	}
	// The delay constraint of eq. 2 bounds the *noisy per-period
	// observations* d_t, so its safety test uses the predictive bound
	// β·√(σ² + ζ²) — with the latent bound alone the agent legally rides
	// the boundary and observation noise produces violations far beyond
	// the paper's ≈2 %. The mAP constraint instead uses the latent bound:
	// a finite-batch mAP estimate dipping below ρ^min is measurement
	// noise, not a service failure, and the paper's own Fig. 9 inset shows
	// observed mAP fluctuating below ρ^min at the optimum.
	zetaD := math.Sqrt(a.gps[gpDelay].NoiseVar())
	nSafe := 0
	for i := range a.grid {
		ok := a.opts.DisableSafeSet
		if !ok {
			informed := a.sigma[gpDelay][i] < informedSigma && a.sigma[gpMAP][i] < informedSigma
			ok = informed &&
				a.mu[gpDelay][i]+a.opts.SafeBeta*predSigma(a.sigma[gpDelay][i], zetaD) <= dmax &&
				a.mu[gpMAP][i]-a.opts.SafeBeta*a.sigma[gpMAP][i] >= rmin
		}
		a.safe[i] = ok
		if ok {
			nSafe++
		}
	}
	// S_t always contains S₀ (eq. 8 / Algorithm 1 line 6). A seed is
	// nevertheless *retired from selection* — though it still counts as
	// safe — once the posterior has actually learned about it
	// (σ well below the prior) and its mean violates a constraint:
	// S₀ membership encodes the operator's prior belief, and repeatedly
	// re-picking a seed that measurements show to be infeasible would lock
	// the agent onto a violating configuration whenever that seed is also
	// the cost minimizer.
	for _, gi := range a.safeSeedIx {
		if a.safe[gi] {
			continue
		}
		nSafe++
		retired := meanViolates(gi) &&
			a.sigma[gpDelay][gi] < seedRetireSigma && a.sigma[gpMAP][gi] < seedRetireSigma
		a.safe[gi] = !retired
	}

	pick := func() (int, float64) {
		if a.opts.Rule == AcquisitionSafeOpt {
			return a.pickSafeOpt(dmax, rmin)
		}
		best := -1
		bestLCB := math.Inf(1)
		for i := range a.grid {
			if !a.safe[i] {
				continue
			}
			lcb := a.mu[gpCost][i] - a.opts.AcqBeta*a.sigma[gpCost][i]
			if lcb < bestLCB {
				bestLCB = lcb
				best = i
			}
		}
		return best, bestLCB
	}
	best, bestLCB := pick()
	if best < 0 {
		// Every seed retired and nothing certified: the problem looks
		// infeasible. Fall back to the least-violating seed by posterior
		// mean — the §5 "Practical Issues" behaviour of staying within S₀.
		bestScore := math.Inf(1)
		for _, gi := range a.safeSeedIx {
			score := math.Max(a.mu[gpDelay][gi]-dmax, 0) + math.Max(rmin-a.mu[gpMAP][gi], 0)
			if score < bestScore {
				bestScore = score
				best = gi
			}
		}
		bestLCB = a.mu[gpCost][best] - a.opts.AcqBeta*a.sigma[gpCost][best]
	}

	// The winner came from the seed fallback when it fails the learned
	// safety test on its own merits.
	fromSeed := a.mu[gpDelay][best]+a.opts.SafeBeta*a.sigma[gpDelay][best] > dmax ||
		a.mu[gpMAP][best]-a.opts.SafeBeta*a.sigma[gpMAP][best] < rmin

	// The sweep's sharding decision is driven by the basis size: training
	// rows for the exact engine, inducing points for the sparse one.
	basis := a.gps[gpDelay].Len()
	if a.gps[gpDelay].IsSparse() {
		basis = a.gps[gpDelay].InducingLen()
	}
	resolvedWorkers := gp.ResolveWorkers(basis, len(a.grid), workers)
	info := SelectionInfo{
		SafeSetSize:         nSafe,
		FromSeed:            fromSeed,
		CandidatesEvaluated: len(a.grid),
		LCB:                 bestLCB,
		Cost:                Posterior{Mean: a.mu[gpCost][best], Sigma: a.sigma[gpCost][best]},
		Delay:               Posterior{Mean: a.mu[gpDelay][best], Sigma: a.sigma[gpDelay][best]},
		MAP:                 Posterior{Mean: a.mu[gpMAP][best], Sigma: a.sigma[gpMAP][best]},
		Workers:             resolvedWorkers,
		SweepSeconds:        time.Since(start).Seconds(),
	}
	a.met.safeSize.Set(float64(nSafe))
	a.met.lcb.Set(bestLCB)
	a.met.sweep.Observe(info.SweepSeconds)
	a.met.acqCandidates.Add(uint64(len(a.grid)))
	a.met.acqLatency.Observe(info.SweepSeconds)
	if fromSeed {
		a.met.seedFallback.Inc()
	}
	a.lastInfo = info
	return a.grid[best], info
}

// pickSafeOpt implements the SafeOpt-style acquisition over the current
// safe set: among the potential minimizers (points whose cost LCB beats
// the best cost UCB) and the expanders (safe points whose confidence
// interval straddles a constraint boundary neighbourhood), sample the one
// with the largest overall uncertainty.
func (a *Agent) pickSafeOpt(dmax, rmin float64) (int, float64) {
	bestUCB := math.Inf(1)
	for i := range a.grid {
		if !a.safe[i] {
			continue
		}
		if ucb := a.mu[gpCost][i] + a.opts.AcqBeta*a.sigma[gpCost][i]; ucb < bestUCB {
			bestUCB = ucb
		}
	}
	// Expander neighbourhood: within this many σ-units of a boundary.
	const edge = 0.5
	best := -1
	bestUnc := -1.0
	var bestLCB float64
	for i := range a.grid {
		if !a.safe[i] {
			continue
		}
		minimizer := a.mu[gpCost][i]-a.opts.AcqBeta*a.sigma[gpCost][i] <= bestUCB
		expander := a.mu[gpDelay][i]+a.opts.SafeBeta*a.sigma[gpDelay][i] >= dmax-edge ||
			a.mu[gpMAP][i]-a.opts.SafeBeta*a.sigma[gpMAP][i] <= rmin+edge
		if !minimizer && !expander {
			continue
		}
		unc := math.Max(a.sigma[gpCost][i], math.Max(a.sigma[gpDelay][i], a.sigma[gpMAP][i]))
		if unc > bestUnc {
			bestUnc = unc
			best = i
			bestLCB = a.mu[gpCost][i] - a.opts.AcqBeta*a.sigma[gpCost][i]
		}
	}
	return best, bestLCB
}

// Posterior is the agent's belief about one objective at a point.
type Posterior struct {
	Mean, Sigma float64
}

// PosteriorAt returns the normalized posterior beliefs (cost, delay, mAP)
// at a context–control point, for diagnostics and visualization.
func (a *Agent) PosteriorAt(ctx Context, x Control) (cost, delay, mAP Posterior) {
	z := Features(ctx, x)
	var out [numGPs]Posterior
	for i := range a.gps {
		m, s := a.gps[i].Posterior(z)
		out[i] = Posterior{Mean: m, Sigma: s}
	}
	return out[gpCost], out[gpDelay], out[gpMAP]
}

// Observe runs lines 8–13 of Algorithm 1: it computes the cost from the
// observed KPIs and appends the (context, control) → {u, d, ρ} samples to
// the three GPs.
func (a *Agent) Observe(ctx Context, x Control, k KPIs) error {
	if err := x.Validate(); err != nil {
		return err
	}
	// EngineAuto: convert to the sparse engine once the period counter
	// crosses the threshold. The condition is stateless — it reads only
	// the current engine and t — so a run restored from a post-switch
	// checkpoint (already sparse) and a restored pre-switch run (converts
	// on its first post-threshold period) both behave correctly.
	if a.opts.Engine == EngineAuto && a.t >= a.opts.SparseSwitchAt && !a.gps[gpDelay].IsSparse() {
		if err := a.switchToSparse(); err != nil {
			return err
		}
	}
	z := Features(ctx, x)
	if a.opts.DecomposedCost {
		if err := a.powerGPs[0].Add(z, a.opts.Norm.ServerPower.Norm(k.ServerPower)); err != nil {
			return fmt.Errorf("core: server power GP: %w", err)
		}
		if err := a.powerGPs[1].Add(z, a.opts.Norm.BSPower.Norm(k.BSPower)); err != nil {
			return fmt.Errorf("core: BS power GP: %w", err)
		}
	} else if err := a.gps[gpCost].Add(z, a.opts.Norm.Cost.Norm(a.opts.Weights.Cost(k))); err != nil {
		return fmt.Errorf("core: cost GP: %w", err)
	}
	if err := a.gps[gpDelay].Add(z, a.opts.Norm.Delay.Norm(k.Delay)); err != nil {
		return fmt.Errorf("core: delay GP: %w", err)
	}
	if err := a.gps[gpMAP].Add(z, a.opts.Norm.MAP.Norm(k.MAP)); err != nil {
		return fmt.Errorf("core: mAP GP: %w", err)
	}
	a.t++
	a.met.periods.Inc()
	a.met.trainSize.Set(float64(a.gps[gpDelay].Len()))
	a.emitPeriod(ctx, x, k)
	return nil
}

// emitPeriod streams one telemetry.PeriodRecord combining the Observe
// arguments with the diagnostics of the preceding SelectControl. When the
// caller drives SelectControl and Observe separately the pairing is
// positional: the record's posterior/safe-set fields describe the most
// recent selection.
func (a *Agent) emitPeriod(ctx Context, x Control, k KPIs) {
	if a.met.reg == nil {
		return
	}
	evictions := a.gps[gpDelay].Evictions() + a.gps[gpMAP].Evictions() + a.gps[gpCost].Evictions()
	if a.opts.DecomposedCost {
		evictions += a.powerGPs[0].Evictions() + a.powerGPs[1].Evictions()
	}
	info := a.lastInfo
	a.met.reg.EmitPeriod(telemetry.PeriodRecord{
		Period:              a.t,
		NumUsers:            ctx.NumUsers,
		MeanCQI:             ctx.MeanCQI,
		VarCQI:              ctx.VarCQI,
		Resolution:          x.Resolution,
		Airtime:             x.Airtime,
		GPUSpeed:            x.GPUSpeed,
		MCS:                 x.MCS,
		SplitLayer:          x.SplitLayer,
		Delay:               k.Delay,
		GPUDelay:            k.GPUDelay,
		MAP:                 k.MAP,
		ServerPower:         k.ServerPower,
		BSPower:             k.BSPower,
		Cost:                a.opts.Weights.Cost(k),
		SafeSetSize:         info.SafeSetSize,
		FromSeed:            info.FromSeed,
		LCB:                 info.LCB,
		AcqMode:             a.acqMode().String(),
		CandidatesEvaluated: info.CandidatesEvaluated,
		RefineRounds:        info.RefineRounds,
		PostMean:            [3]float64{info.Cost.Mean, info.Delay.Mean, info.MAP.Mean},
		PostSigma:           [3]float64{info.Cost.Sigma, info.Delay.Sigma, info.MAP.Sigma},
		TrainSize:           a.gps[gpDelay].Len(),
		Evictions:           evictions,
		Workers:             info.Workers,
		SweepSeconds:        info.SweepSeconds,
	})
}

// Step performs one full control period against an environment: observe
// the context, select a control, measure, and learn. It returns the
// selected control, the observed KPIs, and the selection diagnostics.
func (a *Agent) Step(env Environment) (Control, KPIs, SelectionInfo, error) {
	return a.StepCtx(context.Background(), env)
}

// ContextEnvironment is an Environment whose measurement path honors a
// context.Context — the oran control plane implements it so an in-flight
// period can be bounded or canceled.
type ContextEnvironment interface {
	Environment
	// MeasureCtx is Measure bounded by ctx: cancellation or deadline
	// expiry aborts the period with ctx's error.
	MeasureCtx(ctx context.Context, x Control) (KPIs, error)
}

// StepCtx is Step bounded by a context: the period is abandoned (with
// ctx's error) if ctx is done before selection or learning, and the
// measurement itself is canceled mid-flight when the environment
// implements ContextEnvironment.
func (a *Agent) StepCtx(ctx context.Context, env Environment) (Control, KPIs, SelectionInfo, error) {
	if err := ctx.Err(); err != nil {
		return Control{}, KPIs{}, SelectionInfo{}, err
	}
	c := env.Context()
	x, info := a.SelectControl(c)
	if err := ctx.Err(); err != nil {
		return x, KPIs{}, info, err
	}
	var k KPIs
	var err error
	if ce, ok := env.(ContextEnvironment); ok {
		k, err = ce.MeasureCtx(ctx, x)
	} else {
		k, err = env.Measure(x)
	}
	if err != nil {
		return x, KPIs{}, info, err
	}
	// The measurement happened: learn from it even if ctx expired while it
	// ran, so a bounded period never discards a paid-for observation.
	if err := a.Observe(c, x, k); err != nil {
		return x, k, info, err
	}
	return x, k, info, nil
}
