package core

import (
	"fmt"
	"math/rand"

	"repro/internal/gp"
)

// PretrainResult holds per-objective GP hyperparameters fitted offline, the
// §5 "Kernel selection" procedure: "the hyperparameters L(i) and noise
// variance ζ²(i) should be optimized for each function i before running
// the algorithm by maximizing the likelihood estimation over prior data.
// During execution, the hyperparameters shall remain constant."
type PretrainResult struct {
	// LengthScales are the fitted per-dimension kernel length scales for
	// the cost (0), delay (1), and mAP (2) surfaces.
	LengthScales [3][]float64
	// NoiseVars are the fitted observation-noise variances ζ²(i) over
	// normalized targets.
	NoiseVars [3]float64
	// LogLikelihoods are the achieved log marginal likelihoods.
	LogLikelihoods [3]float64
	// Samples is the prior-dataset size used.
	Samples int
}

// Apply installs the fitted hyperparameters into agent options.
func (r PretrainResult) Apply(o *Options) {
	r0 := r // copy to detach from the receiver
	o.LengthScalesPerGP = r0.LengthScales
	o.NoiseVars = r0.NoiseVars
}

// PretrainOptions configure the offline fitting phase.
type PretrainOptions struct {
	// Samples is the number of prior measurements collected with random
	// grid controls (default 80).
	Samples int
	// FitIterations is the random-search budget per objective (default 60).
	FitIterations int
	// KernelFactory selects the kernel family (default Matérn-3/2).
	KernelFactory gp.KernelFactory
	// Norm maps raw KPIs to GP targets; zero-valued transforms default to
	// DefaultNormalization(weights).
	Norm Normalization
	// MinLengthScale floors the fitted length scales. Safe-set expansion
	// needs adjacent grid points strongly correlated, so the floor is tied
	// to the grid step by Pretrain; override only with care.
	MinLengthScale float64
}

// Pretrain collects a prior dataset from the environment with uniformly
// random grid controls and fits per-objective hyperparameters by
// likelihood maximization. It is the offline phase the paper runs before
// deploying EdgeBOL; the returned result plugs into Options via Apply.
//
// Collecting the dataset *executes* the random controls on the
// environment, so — like the paper's pre-production phase — it should run
// before the service carries real users.
func Pretrain(env Environment, grid GridSpec, w CostWeights, opts PretrainOptions, seed int64) (PretrainResult, error) {
	if env == nil {
		return PretrainResult{}, fmt.Errorf("core: nil environment")
	}
	if err := grid.Validate(); err != nil {
		return PretrainResult{}, err
	}
	if opts.Samples == 0 {
		opts.Samples = 80
	}
	if opts.Samples < 8 {
		return PretrainResult{}, fmt.Errorf("core: %d pretraining samples too few", opts.Samples)
	}
	if opts.FitIterations == 0 {
		opts.FitIterations = 60
	}
	if opts.KernelFactory == nil {
		opts.KernelFactory = gp.Matern32Factory
	}
	def := DefaultNormalization(w)
	if opts.Norm.Cost == (Affine{}) {
		opts.Norm.Cost = def.Cost
	}
	if opts.Norm.Delay == (Affine{}) {
		opts.Norm.Delay = def.Delay
	}
	if opts.Norm.MAP == (Affine{}) {
		opts.Norm.MAP = def.MAP
	}
	ctls, err := grid.Enumerate()
	if err != nil {
		return PretrainResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Collect the prior dataset.
	xs := make([][]float64, 0, opts.Samples)
	var ys [3][]float64
	for i := 0; i < opts.Samples; i++ {
		x := ctls[rng.Intn(len(ctls))]
		ctx := env.Context()
		k, err := env.Measure(x)
		if err != nil {
			return PretrainResult{}, fmt.Errorf("core: pretraining sample %d: %w", i, err)
		}
		xs = append(xs, Features(ctx, x))
		ys[gpCost] = append(ys[gpCost], opts.Norm.Cost.Norm(w.Cost(k)))
		ys[gpDelay] = append(ys[gpDelay], opts.Norm.Delay.Norm(k.Delay))
		ys[gpMAP] = append(ys[gpMAP], opts.Norm.MAP.Norm(k.MAP))
	}

	// Fit each objective. The length-scale floor keeps the safe set able
	// to expand: likelihood maximization alone may prefer scales shorter
	// than a grid step on rough surfaces, which would freeze exploration.
	minLS := opts.MinLengthScale
	if minLS == 0 {
		step := (1 - grid.MinResolution) / float64(grid.Levels-1)
		minLS = 8 * step
	}
	fitOpts := gp.FitOptions{
		Iterations:     opts.FitIterations,
		LengthScaleMin: minLS,
		LengthScaleMax: 6,
		NoiseVarMin:    1e-4,
		NoiseVarMax:    0.3,
		Rand:           rng,
	}
	res := PretrainResult{Samples: opts.Samples}
	for i := 0; i < 3; i++ {
		hp, ll, err := gp.Fit(opts.KernelFactory, xs, ys[i], fitOpts)
		if err != nil {
			return PretrainResult{}, fmt.Errorf("core: fitting objective %d: %w", i, err)
		}
		res.LengthScales[i] = hp.LengthScales
		res.NoiseVars[i] = hp.NoiseVar
		res.LogLikelihoods[i] = ll
	}
	return res, nil
}
