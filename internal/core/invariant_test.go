package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: relaxing the constraints can only grow the safe set — the
// eq. 8 certification is monotone in (dmax, ρmin).
func TestSafeSetMonotoneInConstraints(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	mkAgent := func(cons Constraints) *Agent {
		a, err := NewAgent(Options{
			Grid:        testGrid(),
			Weights:     CostWeights{Delta1: 1, Delta2: 1},
			Constraints: cons,
			Norm:        quadNorm(),
			NoiseVars:   [3]float64{1e-4, 1e-4, 1e-4},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Train one agent, then compare safe sets under different thresholds
	// by mutating its constraints (the posteriors are threshold-free).
	a := mkAgent(Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	for i := 0; i < 30; i++ {
		if _, _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tight := Constraints{MaxDelay: 0.5 + rng.Float64()*0.5, MinMAP: 0.2 + rng.Float64()*0.3}
		lax := Constraints{MaxDelay: tight.MaxDelay + rng.Float64()*0.5, MinMAP: tight.MinMAP * rng.Float64()}
		if lax.MinMAP <= 0 {
			lax.MinMAP = 0
		}
		if err := a.SetConstraints(tight); err != nil {
			return false
		}
		_, tightInfo := a.SelectControl(env.Context())
		if err := a.SetConstraints(lax); err != nil {
			return false
		}
		_, laxInfo := a.SelectControl(env.Context())
		return laxInfo.SafeSetSize >= tightInfo.SafeSetSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SelectControl always returns a grid member and never panics
// across random contexts, trained or not.
func TestSelectControlTotalOverContexts(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	grid, err := testGrid().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	onGrid := func(x Control) bool {
		for _, g := range grid {
			if controlsClose(g, x) {
				return true
			}
		}
		return false
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := Context{
			NumUsers: 1 + rng.Intn(7),
			MeanCQI:  1 + rng.Float64()*14,
			VarCQI:   rng.Float64() * 10,
		}
		x, info := a.SelectControl(ctx)
		if !onGrid(x) || info.SafeSetSize < 1 {
			return false
		}
		// Learning from the synthetic observation must also succeed.
		return a.Observe(ctx, x, KPIs{Delay: 0.5, MAP: 0.4, ServerPower: 100, BSPower: 5}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
