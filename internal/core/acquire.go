package core

import (
	"math"
	"sync"
	"time"

	"repro/internal/gp"
)

// This file implements the adaptive acquisition engine: SelectControl
// without materializing the grid. The exhaustive sweep computes every
// candidate's posterior every period — perfect on the paper's 11⁴ grid,
// hopeless on the 31⁴×8 ≈ 7.4M-candidate spaces the split-inference
// dimension opens up. The adaptive engine evaluates a budgeted subset
// chosen in three waves:
//
//  1. a mandatory set — the safe seeds S₀ (the selection rules need their
//     posteriors unconditionally) plus every training anchor (grid points
//     the agent has actually observed; the incumbent optimum is always
//     among them, so the previous period's winner is never lost);
//  2. a coarse-to-fine multigrid — a strided sub-lattice of at most
//     coarseTarget points (always containing each dimension's endpoints),
//     refined by repeatedly halving the strides and re-evaluating the
//     ±stride axis neighbours of the current top slots until native
//     resolution;
//  3. a best-first flood — a priority queue over all evaluated points,
//     keyed safest-and-cheapest-first, expanding ±1 grid neighbours until
//     the frontier dies out, the evaluation budget is exhausted, or
//     floodPatience pops go by without improving the best safe LCB.
//
// Every evaluated candidate flows through the same formulas as the
// exhaustive sweep — same safety test, same LCB, same seed retirement and
// fallback, same tie-breaking — so on grids small enough for wave 3 to be
// replaced by full coverage (size ≤ acqAutoThreshold, which only happens
// under a forced AcqAdaptive) the selected control, its LCB, and the
// safe-set size are bitwise identical to the exhaustive engine's: the
// contract the acq-equiv gate enforces. On larger grids the engine holds
// a bounded optimum regret while evaluating a few percent of the grid.
const (
	// informedSigma gates the safe-set test: a candidate is certified only
	// when the posterior actually carries information about it — at prior
	// uncertainty (σ ≈ 1) the bound test is vacuous whenever the
	// thresholds are lax relative to the prior, and "unexplored" must not
	// read as "safe".
	informedSigma = 0.95
	// seedRetireSigma is the learned-enough threshold below which a seed
	// whose posterior mean violates a constraint is retired from
	// selection (it still counts as safe — S₀ membership is the
	// operator's prior belief).
	seedRetireSigma = 0.5

	// minEvalBudget and maxEvalDivisor bound the adaptive engine's
	// per-period posterior evaluations: min(size, max(minEvalBudget,
	// size/maxEvalDivisor)) — at most a few percent of a large grid, and
	// never less than a healthy multiple of the coarse lattice.
	minEvalBudget  = 16384
	maxEvalDivisor = 25
	// coarseTarget caps the initial strided sub-lattice size.
	coarseTarget = 4096
	// refineTopK is the number of incumbent slots whose axis neighbours
	// each multigrid refinement round evaluates.
	refineTopK = 48
	// floodBatch is the number of pending candidates that triggers a
	// posterior flush during the best-first flood.
	floodBatch = 512
	// floodPatience is the number of consecutive queue pops without an
	// improvement of the best safe LCB after which the flood gives up.
	floodPatience = 2048
)

// predSigma inflates a latent posterior σ by the observation noise ζ:
// the delay constraint of eq. 2 bounds the *noisy per-period
// observations* d_t, so its safety test uses the predictive bound
// β·√(σ² + ζ²) — with the latent bound alone the agent legally rides the
// boundary and observation noise produces violations far beyond the
// paper's ≈2 %.
func predSigma(s, zeta float64) float64 { return math.Sqrt(s*s + zeta*zeta) }

// acqEngine is the pooled state of the adaptive acquisition. Every slice
// is allocated once at construction to its worst-case size (the
// evaluation budget), so the per-period hot loops never allocate: slot s
// of idx/mu/sigma/lcb/rank/safe describes the s-th candidate evaluated
// this period, in evaluation order.
type acqEngine struct {
	a        *Agent
	gridSize int
	// small selects the full-coverage mode: every grid point is evaluated
	// (in grid order, so slot == grid index) and the selection is
	// structurally identical to the exhaustive sweep. Only reachable by
	// forcing AcqAdaptive on a grid at or below acqAutoThreshold.
	small   bool
	maxEval int

	// dimN and strideFlat are the per-dimension level counts and flat-
	// index strides of the grid's Enumerate ordering (last dim fastest).
	dimN       [ControlDims]int
	strideFlat [ControlDims]int

	// Per-slot candidate state, evaluation-ordered.
	idx       []int32
	mu, sigma [numGPs][]float64
	powMu     [2][]float64
	powSigma  [2][]float64
	lcb       []float64
	rank      []uint8 // 0 safe, 1 informed-unsafe, 2 uninformed
	safe      []bool

	// seen is a grid-indexed dedup bitmap (large mode only).
	seen []uint64
	// heap is the flood's priority queue of slots, safest-cheapest first.
	heap []int32
	// seedSlot maps each Options.SafeSeed entry to its slot, aligned with
	// Agent.safeSeedIx (duplicate seeds share a slot).
	seedSlot []int32
	// topSlots is the refinement rounds' incumbent scratch.
	topSlots []int32
	// latIdx holds the per-dimension level indices of the coarse lattice.
	latIdx [ControlDims][]int32
	// stride is the current multigrid stride per dimension.
	stride [ControlDims]int

	// featFlat/featRows back the generic PosteriorBatch fallback for
	// objectives without a SweepPlan; allocated on first need.
	featFlat []float64
	featRows [][]float64

	// Per-period scalars.
	cbuf                [ContextDims]float64
	cf                  []float64
	n, done             int // added and evaluated watermarks
	dmaxN, rminN, zetaD float64
	workers             int
	refineRounds        int
	budgetHit           bool
	flooding            bool
	improved            bool
	bestSafeLCB         float64
	bestSafeIdx         int32
}

// AcquisitionBudget returns the adaptive engine's per-period posterior-
// evaluation budget for a grid of the given size: the full grid at or
// below the auto threshold (full-coverage mode), min(size,
// max(minEvalBudget, size/maxEvalDivisor)) above it. Exported so
// experiment verifiers can assert the budget from the outside.
func AcquisitionBudget(size int) int {
	if size <= acqAutoThreshold {
		return size
	}
	budget := size / maxEvalDivisor
	if budget < minEvalBudget {
		budget = minEvalBudget
	}
	if budget > size {
		budget = size
	}
	return budget
}

// newAcqEngine allocates the pooled adaptive-engine state for an agent.
func newAcqEngine(a *Agent) *acqEngine {
	g := a.opts.Grid
	size := g.Size()
	e := &acqEngine{a: a, gridSize: size, small: size <= acqAutoThreshold}
	e.maxEval = AcquisitionBudget(size)
	stride := 1
	for d := ControlDims - 1; d >= 0; d-- {
		e.dimN[d] = g.dimLevels(d)
		e.strideFlat[d] = stride
		stride *= e.dimN[d]
	}
	e.idx = make([]int32, e.maxEval)
	for i := range e.mu {
		e.mu[i] = make([]float64, e.maxEval)
		e.sigma[i] = make([]float64, e.maxEval)
	}
	if a.opts.DecomposedCost {
		for i := range e.powMu {
			e.powMu[i] = make([]float64, e.maxEval)
			e.powSigma[i] = make([]float64, e.maxEval)
		}
	}
	e.lcb = make([]float64, e.maxEval)
	e.rank = make([]uint8, e.maxEval)
	e.safe = make([]bool, e.maxEval)
	if !e.small {
		e.seen = make([]uint64, (size+63)/64)
	}
	e.heap = make([]int32, 0, e.maxEval)
	e.seedSlot = make([]int32, len(a.safeSeedIx))
	if e.small {
		// Full coverage: slot == grid index, so the seed slots are static.
		for k, gi := range a.safeSeedIx {
			e.seedSlot[k] = int32(gi)
		}
	}
	e.topSlots = make([]int32, 0, refineTopK)
	for d := range e.latIdx {
		e.latIdx[d] = make([]int32, 0, e.dimN[d])
	}
	return e
}

// selectAdaptive is SelectControl under the adaptive engine: evaluate a
// budgeted candidate subset, then select with the exhaustive engine's
// exact semantics over the evaluated slots.
func (a *Agent) selectAdaptive(ctx Context) (Control, SelectionInfo) {
	start := time.Now()
	e := a.acq
	e.reset(ctx)
	if e.small {
		e.addAll()
		e.flush()
	} else {
		e.addMandatory()
		e.addCoarseLattice()
		e.flush()
		e.refine()
		e.flood()
	}
	return e.finish(start)
}

// reset prepares the pooled state for one period.
func (e *acqEngine) reset(ctx Context) {
	a := e.a
	e.cf = ctx.appendFeatures(e.cbuf[:0])
	e.n, e.done = 0, 0
	e.refineRounds = 0
	e.budgetHit = false
	e.flooding = false
	e.improved = false
	e.heap = e.heap[:0]
	e.bestSafeLCB = math.Inf(1)
	e.bestSafeIdx = math.MaxInt32
	e.workers = a.opts.InferenceWorkers
	cons := a.opts.Constraints
	e.dmaxN = a.opts.Norm.Delay.Norm(cons.MaxDelay)
	e.rminN = a.opts.Norm.MAP.Norm(cons.MinMAP)
	e.zetaD = math.Sqrt(a.gps[gpDelay].NoiseVar()) //edgebol:allow nanguard -- NoiseVar is validated non-negative at construction
	for i := range e.seen {
		e.seen[i] = 0
	}
}

// add appends one candidate by grid index, deduplicated against the seen
// bitmap and capped at the evaluation budget. Large mode only.
//
//edgebol:hot
func (e *acqEngine) add(gi int) {
	w := gi >> 6
	b := uint64(1) << (gi & 63)
	if e.seen[w]&b != 0 {
		return
	}
	if e.n >= e.maxEval {
		e.budgetHit = true
		return
	}
	e.seen[w] |= b
	e.idx[e.n] = int32(gi)
	e.n++
}

// addAll stages the whole grid in index order (small mode's full
// coverage; slot == grid index).
//
//edgebol:hot
func (e *acqEngine) addAll() {
	for gi := 0; gi < e.gridSize; gi++ {
		e.idx[gi] = int32(gi)
	}
	e.n = e.gridSize
}

// addMandatory stages the safe seeds (recording their slots) and every
// training anchor — the grid points of the agent's observation history.
// The incumbent optimum from the previous period is always among the
// anchors, so it is re-evaluated unconditionally every period.
func (e *acqEngine) addMandatory() {
	a := e.a
	for k, gi := range a.safeSeedIx {
		if w, b := gi>>6, uint64(1)<<(gi&63); e.seen[w]&b != 0 {
			// A duplicate seed: reuse the slot of its first occurrence so
			// the retirement and fallback loops keep the exhaustive
			// engine's exact duplicate semantics.
			for j := 0; j < k; j++ {
				if a.safeSeedIx[j] == gi {
					e.seedSlot[k] = e.seedSlot[j]
					break
				}
			}
			continue
		}
		e.seedSlot[k] = int32(e.n)
		e.add(gi)
	}
	g := a.gps[gpDelay]
	for i := 0; i < g.Len(); i++ {
		row := g.TrainingRow(i)
		x := Control{
			Resolution: row[ContextDims+dimResolution],
			Airtime:    row[ContextDims+dimAirtime],
			GPUSpeed:   row[ContextDims+dimGPUSpeed],
			MCS:        row[ContextDims+dimMCS],
			SplitLayer: row[ContextDims+dimSplit],
		}
		e.add(a.opts.Grid.Index(x))
	}
}

// latCount returns the strided lattice's point count along dimension d:
// every stride[d]-th level plus the far endpoint.
func (e *acqEngine) latCount(d int) int {
	n := e.dimN[d]
	if n == 1 {
		return 1
	}
	return (n-2)/e.stride[d] + 2
}

// addCoarseLattice stages a strided sub-lattice of at most coarseTarget
// points: starting from native resolution, the stride of the currently
// largest dimension is doubled until the lattice fits. Both endpoints of
// every dimension are always included.
func (e *acqEngine) addCoarseLattice() {
	var cnt [ControlDims]int
	total := 1
	for d := range e.stride {
		e.stride[d] = 1
		cnt[d] = e.latCount(d)
		total *= cnt[d]
	}
	for total > coarseTarget {
		bd := -1
		for d := range cnt {
			if cnt[d] > 2 && (bd < 0 || cnt[d] > cnt[bd]) {
				bd = d
			}
		}
		if bd < 0 {
			break
		}
		e.stride[bd] *= 2
		total /= cnt[bd]
		cnt[bd] = e.latCount(bd)
		total *= cnt[bd]
	}
	for d := range e.latIdx {
		lat := e.latIdx[d][:0]
		n, h := e.dimN[d], e.stride[d]
		if n == 1 {
			e.latIdx[d] = append(lat, 0)
			continue
		}
		for l := 0; l <= n-2; l += h {
			lat = append(lat, int32(l))
		}
		e.latIdx[d] = append(lat, int32(n-1))
	}
	var pos [ControlDims]int
	for {
		gi := 0
		for d := 0; d < ControlDims; d++ {
			gi += int(e.latIdx[d][pos[d]]) * e.strideFlat[d]
		}
		e.add(gi)
		d := ControlDims - 1
		for ; d >= 0; d-- {
			pos[d]++
			if pos[d] < len(e.latIdx[d]) {
				break
			}
			pos[d] = 0
		}
		if d < 0 {
			return
		}
	}
}

// refine runs the multigrid refinement: halve every stride, evaluate the
// ±stride axis neighbours of the current top slots, and repeat until
// native resolution.
func (e *acqEngine) refine() {
	maxStride := 0
	for _, h := range e.stride {
		if h > maxStride {
			maxStride = h
		}
	}
	for maxStride > 1 {
		for d := range e.stride {
			if e.stride[d] > 1 {
				e.stride[d] >>= 1
			}
		}
		maxStride >>= 1
		e.refineRounds++
		e.selectTop()
		for _, s := range e.topSlots {
			e.expand(int(e.idx[s]))
		}
		e.flush()
	}
	for d := range e.stride {
		e.stride[d] = 1
	}
}

// expand stages the in-bounds ±stride axis neighbours of a grid point,
// clamping overshoot onto the dimension's endpoints.
//
//edgebol:hot
func (e *acqEngine) expand(gi int) {
	rem := gi
	for d := ControlDims - 1; d >= 0; d-- {
		n := e.dimN[d]
		l := rem % n
		rem /= n
		if n == 1 {
			continue
		}
		h := e.stride[d]
		sf := e.strideFlat[d]
		if l-h >= 0 {
			e.add(gi - h*sf)
		} else if l > 0 {
			e.add(gi - l*sf)
		}
		if l+h <= n-1 {
			e.add(gi + h*sf)
		} else if l < n-1 {
			e.add(gi + (n-1-l)*sf)
		}
	}
}

// slotBetter orders slots safest-first, then by ascending LCB, then by
// ascending grid index for determinism.
//
//edgebol:hot
func (e *acqEngine) slotBetter(x, y int32) bool {
	if e.rank[x] != e.rank[y] {
		return e.rank[x] < e.rank[y]
	}
	if e.lcb[x] != e.lcb[y] { //edgebol:allow floateq -- exact-equality tie detection; ties fall through to the index order
		return e.lcb[x] < e.lcb[y]
	}
	return e.idx[x] < e.idx[y]
}

// selectTop fills topSlots with the refineTopK best evaluated slots in
// slotBetter order (insertion into a small sorted array).
//
//edgebol:hot
func (e *acqEngine) selectTop() {
	e.topSlots = e.topSlots[:0]
	for s := 0; s < e.done; s++ {
		k := len(e.topSlots)
		if k == refineTopK {
			if !e.slotBetter(int32(s), e.topSlots[k-1]) {
				continue
			}
			k--
		} else {
			e.topSlots = e.topSlots[:k+1]
		}
		i := k
		for i > 0 && e.slotBetter(int32(s), e.topSlots[i-1]) {
			e.topSlots[i] = e.topSlots[i-1]
			i--
		}
		e.topSlots[i] = int32(s)
	}
}

// heapPush inserts a slot into the flood's priority queue.
//
//edgebol:hot
func (e *acqEngine) heapPush(s int32) {
	n := len(e.heap)
	e.heap = e.heap[:n+1]
	e.heap[n] = s
	for n > 0 {
		p := (n - 1) / 2
		if !e.slotBetter(e.heap[n], e.heap[p]) {
			break
		}
		e.heap[n], e.heap[p] = e.heap[p], e.heap[n]
		n = p
	}
}

// heapPop removes and returns the best slot of the priority queue.
//
//edgebol:hot
func (e *acqEngine) heapPop() int32 {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e.slotBetter(e.heap[l], e.heap[m]) {
			m = l
		}
		if r < n && e.slotBetter(e.heap[r], e.heap[m]) {
			m = r
		}
		if m == i {
			return top
		}
		e.heap[i], e.heap[m] = e.heap[m], e.heap[i]
		i = m
	}
}

// flood runs the best-first local search: all evaluated slots enter a
// priority queue; popping a slot stages its ±1 grid neighbours, flushing
// posteriors every floodBatch additions (newly scored slots join the
// queue). It stops when the frontier dies out, the evaluation budget is
// exhausted, or floodPatience pops go by without improving the best safe
// LCB.
func (e *acqEngine) flood() {
	e.flooding = true
	for s := 0; s < e.done; s++ {
		e.heapPush(int32(s))
	}
	pops, lastImprove := 0, 0
	for len(e.heap) > 0 {
		if e.budgetHit && e.n == e.done {
			break
		}
		if pops-lastImprove >= floodPatience {
			break
		}
		s := e.heapPop()
		pops++
		e.expand(int(e.idx[s]))
		if e.n-e.done >= floodBatch {
			e.improved = false
			e.flush()
			if e.improved {
				lastImprove = pops
			}
		}
	}
	e.flooding = false
	e.flush()
}

// needFeats reports whether some active objective lacks a SweepPlan and
// therefore sweeps through the generic feature-matrix path.
func (e *acqEngine) needFeats() bool { return e.a.needsGenericSweep() }

// fillFeatRows materializes the joint feature rows of the pending
// candidates for the generic PosteriorBatch fallback.
func (e *acqEngine) fillFeatRows(lo, hi int) {
	const dims = ContextDims + ControlDims
	if e.featFlat == nil {
		e.featFlat = make([]float64, e.maxEval*dims)
		e.featRows = make([][]float64, e.maxEval)
		for i := range e.featRows {
			e.featRows[i] = e.featFlat[i*dims : (i+1)*dims : (i+1)*dims]
		}
	}
	for s := lo; s < hi; s++ {
		row := e.featRows[s-lo]
		copy(row[:ContextDims], e.cf)
		x := e.a.opts.Grid.At(int(e.idx[s]))
		x.appendFeatures(row[ContextDims:ContextDims])
	}
}

// flush evaluates the pending candidates [done, n): one posterior batch
// per objective (SweepSubset through the factorized plan, PosteriorBatch
// through the generic path — bitwise interchangeable, exactly like the
// exhaustive sweep), the decomposed-cost combination, and the safety/LCB
// scoring. During the flood, newly scored slots join the priority queue.
func (e *acqEngine) flush() {
	lo, hi := e.done, e.n
	if lo == hi {
		return
	}
	a := e.a
	idxs := e.idx[lo:hi]
	if e.needFeats() {
		e.fillFeatRows(lo, hi)
	}
	// The per-objective batches are independent — disjoint output slices,
	// shared read-only inputs — so they run concurrently exactly like the
	// exhaustive sweep's per-objective goroutines.
	var wg sync.WaitGroup
	sweep := func(g *gp.GP, plan *gp.SweepPlan, mu, sigma []float64) {
		run := func(w int) {
			if plan != nil {
				plan.SweepSubset(e.cf, idxs, mu, sigma, w)
				return
			}
			g.PosteriorBatch(e.featRows[:hi-lo], mu, sigma, gp.BatchOptions{Workers: w})
		}
		if e.workers == 1 {
			run(1)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(e.workers)
		}()
	}
	for i := range a.gps {
		if i == gpCost && a.opts.DecomposedCost {
			continue
		}
		sweep(a.gps[i], a.plans[i], e.mu[i][lo:hi], e.sigma[i][lo:hi])
	}
	if a.opts.DecomposedCost {
		for i := range a.powerGPs {
			sweep(a.powerGPs[i], a.powPlans[i], e.powMu[i][lo:hi], e.powSigma[i][lo:hi])
		}
	}
	wg.Wait()
	if a.opts.DecomposedCost {
		// Same combination as the exhaustive sweep: μ_u = δ₁·p̂_s + δ₂·p̂_b
		// in raw units, σ_u² = (δ₁·s_s·σ_s)² + (δ₂·s_b·σ_b)².
		w := a.opts.Weights
		nm := a.opts.Norm
		for s := lo; s < hi; s++ {
			ps := e.powMu[0][s]*nm.ServerPower.Scale + nm.ServerPower.Center
			pb := e.powMu[1][s]*nm.BSPower.Scale + nm.BSPower.Center
			e.mu[gpCost][s] = w.Delta1*ps + w.Delta2*pb
			ss := w.Delta1 * nm.ServerPower.Scale * e.powSigma[0][s]
			sb := w.Delta2 * nm.BSPower.Scale * e.powSigma[1][s]
			e.sigma[gpCost][s] = math.Sqrt(ss*ss + sb*sb)
		}
	}
	e.scoreRange(lo, hi)
	if e.flooding {
		for s := lo; s < hi; s++ {
			e.heapPush(int32(s))
		}
	}
	e.done = hi
}

// scoreRange applies the exhaustive engine's exact safety test and LCB to
// freshly evaluated slots, assigns their search ranks, and tracks the
// best safe LCB for the flood's patience counter.
//
//edgebol:hot
func (e *acqEngine) scoreRange(lo, hi int) {
	a := e.a
	disable := a.opts.DisableSafeSet
	sb, ab := a.opts.SafeBeta, a.opts.AcqBeta
	for s := lo; s < hi; s++ {
		sd := e.sigma[gpDelay][s]
		sm := e.sigma[gpMAP][s]
		ok := disable
		if !ok {
			ok = sd < informedSigma && sm < informedSigma &&
				e.mu[gpDelay][s]+sb*predSigma(sd, e.zetaD) <= e.dmaxN &&
				e.mu[gpMAP][s]-sb*sm >= e.rminN
		}
		e.safe[s] = ok
		l := e.mu[gpCost][s] - ab*e.sigma[gpCost][s]
		e.lcb[s] = l
		switch {
		case ok:
			e.rank[s] = 0
		case sd < informedSigma || sm < informedSigma:
			e.rank[s] = 1
		default:
			e.rank[s] = 2
		}
		if ok && (l < e.bestSafeLCB || (l == e.bestSafeLCB && e.idx[s] < e.bestSafeIdx)) { //edgebol:allow floateq -- exact-equality tie detection for the deterministic index order
			e.bestSafeLCB = l
			e.bestSafeIdx = e.idx[s]
			e.improved = true
		}
	}
}

// finish runs the exhaustive engine's exact selection semantics over the
// evaluated slots: seed retirement, constrained-LCB argmin with the
// first-index tie-break, the least-violating-seed fallback, and the
// diagnostics/metrics.
func (e *acqEngine) finish(start time.Time) (Control, SelectionInfo) {
	a := e.a
	nSafe := 0
	for s := 0; s < e.n; s++ {
		if e.safe[s] {
			nSafe++
		}
	}
	// S_t always contains S₀; a seed is retired from selection — though it
	// still counts as safe — once the posterior has learned about it and
	// its mean violates a constraint. Same duplicate semantics as the
	// exhaustive loop: duplicate seeds share a slot.
	for _, s := range e.seedSlot {
		if e.safe[s] {
			continue
		}
		nSafe++
		retired := (e.mu[gpDelay][s] > e.dmaxN || e.mu[gpMAP][s] < e.rminN) &&
			e.sigma[gpDelay][s] < seedRetireSigma && e.sigma[gpMAP][s] < seedRetireSigma
		e.safe[s] = !retired
	}
	best := -1
	bestLCB := math.Inf(1)
	for s := 0; s < e.n; s++ {
		if !e.safe[s] {
			continue
		}
		l := e.lcb[s]
		if l < bestLCB || (l == bestLCB && best >= 0 && e.idx[s] < e.idx[best]) { //edgebol:allow floateq -- tie-break on grid index matches the exhaustive first-index-wins scan
			bestLCB = l
			best = s
		}
	}
	if best < 0 {
		// Every seed retired and nothing certified: fall back to the
		// least-violating seed by posterior mean.
		bestScore := math.Inf(1)
		for _, s := range e.seedSlot {
			score := math.Max(e.mu[gpDelay][s]-e.dmaxN, 0) + math.Max(e.rminN-e.mu[gpMAP][s], 0)
			if score < bestScore {
				bestScore = score
				best = int(s)
			}
		}
		bestLCB = e.mu[gpCost][best] - a.opts.AcqBeta*e.sigma[gpCost][best]
	}
	fromSeed := e.mu[gpDelay][best]+a.opts.SafeBeta*e.sigma[gpDelay][best] > e.dmaxN ||
		e.mu[gpMAP][best]-a.opts.SafeBeta*e.sigma[gpMAP][best] < e.rminN
	basis := a.gps[gpDelay].Len()
	if a.gps[gpDelay].IsSparse() {
		basis = a.gps[gpDelay].InducingLen()
	}
	info := SelectionInfo{
		SafeSetSize:         nSafe,
		FromSeed:            fromSeed,
		Adaptive:            true,
		CandidatesEvaluated: e.n,
		RefineRounds:        e.refineRounds,
		LCB:                 bestLCB,
		Cost:                Posterior{Mean: e.mu[gpCost][best], Sigma: e.sigma[gpCost][best]},
		Delay:               Posterior{Mean: e.mu[gpDelay][best], Sigma: e.sigma[gpDelay][best]},
		MAP:                 Posterior{Mean: e.mu[gpMAP][best], Sigma: e.sigma[gpMAP][best]},
		Workers:             gp.ResolveWorkers(basis, e.n, e.workers),
		SweepSeconds:        time.Since(start).Seconds(),
	}
	a.met.safeSize.Set(float64(nSafe))
	a.met.lcb.Set(bestLCB)
	a.met.sweep.Observe(info.SweepSeconds)
	a.met.acqCandidates.Add(uint64(e.n))
	a.met.acqRefines.Add(uint64(e.refineRounds))
	if e.budgetHit {
		a.met.acqFallback.Inc()
	}
	a.met.acqLatency.Observe(info.SweepSeconds)
	if fromSeed {
		a.met.seedFallback.Inc()
	}
	a.lastInfo = info
	return a.opts.Grid.At(int(e.idx[best])), info
}
