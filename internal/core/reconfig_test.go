package core

import (
	"errors"
	"math"
	"testing"
)

func TestSetConstraintsTypedErrors(t *testing.T) {
	a, err := NewAgent(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	orig := a.Constraints()
	cases := []struct {
		name  string
		c     Constraints
		field string
	}{
		{"zero delay", Constraints{MaxDelay: 0, MinMAP: 0.3}, "Constraints.MaxDelay"},
		{"negative delay", Constraints{MaxDelay: -1, MinMAP: 0.3}, "Constraints.MaxDelay"},
		{"nan delay", Constraints{MaxDelay: math.NaN(), MinMAP: 0.3}, "Constraints.MaxDelay"},
		{"map above one", Constraints{MaxDelay: 0.5, MinMAP: 1.5}, "Constraints.MinMAP"},
		{"negative map", Constraints{MaxDelay: 0.5, MinMAP: -0.1}, "Constraints.MinMAP"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := a.SetConstraints(tc.c)
			var re *ErrInvalidReconfig
			if !errors.As(err, &re) {
				t.Fatalf("err = %v (%T), want *ErrInvalidReconfig", err, err)
			}
			if re.Field != tc.field {
				t.Errorf("Field = %q, want %q", re.Field, tc.field)
			}
			if a.Constraints() != orig {
				t.Error("failed reconfiguration mutated the agent")
			}
		})
	}
}

func TestSetWeightsTypedErrors(t *testing.T) {
	joint, err := NewAgent(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	err = joint.SetWeights(CostWeights{Delta1: 1, Delta2: 1})
	var re *ErrInvalidReconfig
	if !errors.As(err, &re) || re.Field != "Weights" {
		t.Fatalf("joint-mode SetWeights err = %v, want *ErrInvalidReconfig{Field: Weights}", err)
	}

	opts := testOptions()
	opts.DecomposedCost = true
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	orig := a.Weights()
	cases := []struct {
		name  string
		w     CostWeights
		field string
	}{
		{"negative delta1", CostWeights{Delta1: -1, Delta2: 1}, "Weights.Delta1"},
		{"nan delta2", CostWeights{Delta1: 1, Delta2: math.NaN()}, "Weights.Delta2"},
		{"all zero", CostWeights{}, "Weights"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := a.SetWeights(tc.w)
			var re *ErrInvalidReconfig
			if !errors.As(err, &re) {
				t.Fatalf("err = %v (%T), want *ErrInvalidReconfig", err, err)
			}
			if re.Field != tc.field {
				t.Errorf("Field = %q, want %q", re.Field, tc.field)
			}
			if a.Weights() != orig {
				t.Error("failed reconfiguration mutated the agent")
			}
		})
	}
}

// TestReconfigInvalidatesDerivedState is the satellite invariant: a
// successful reconfiguration must drop every piece of cached state that
// was computed under the old values — the safe-set mask and the last
// selection diagnostics — and the next selection must be indistinguishable
// from that of an agent configured with the new values all along (same
// observations, no stale sweep state).
func TestReconfigInvalidatesDerivedState(t *testing.T) {
	opts := testOptions()
	opts.DecomposedCost = true

	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 8)
	if a.lastInfo == (SelectionInfo{}) {
		t.Fatal("expected selection diagnostics before reconfig")
	}

	newCons := Constraints{MaxDelay: 0.45, MinMAP: 0.35}
	newW := CostWeights{Delta1: 4e-3, Delta2: 3e-2}
	if err := a.SetConstraints(newCons); err != nil {
		t.Fatal(err)
	}
	if err := a.SetWeights(newW); err != nil {
		t.Fatal(err)
	}
	// Invalidation is observable immediately: no safe-set bit or cached
	// diagnostic survives the reconfiguration.
	for i, ok := range a.safe {
		if ok {
			t.Fatalf("stale safe-set bit %d survived reconfiguration", i)
		}
	}
	if a.lastInfo != (SelectionInfo{}) {
		t.Fatalf("stale selection diagnostics survived reconfiguration: %+v", a.lastInfo)
	}

	// Replay the identical observation history into a fresh agent that had
	// the new weights/constraints from the start; the post-reconfig
	// selection must match it bitwise.
	fresh, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetConstraints(newCons); err != nil {
		t.Fatal(err)
	}
	if err := fresh.SetWeights(newW); err != nil {
		t.Fatal(err)
	}
	replay, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	steps := runPeriods(t, replay, 0, 8)
	for i, s := range steps {
		ctx := scriptContext(i)
		if err := fresh.Observe(ctx, s.x, scriptKPIs(i, s.x)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := scriptContext(8)
	x1, info1 := a.SelectControl(ctx)
	x2, info2 := fresh.SelectControl(ctx)
	if x1 != x2 {
		t.Fatalf("post-reconfig control %+v, fresh-config control %+v", x1, x2)
	}
	if info1.LCB != info2.LCB || info1.SafeSetSize != info2.SafeSetSize ||
		info1.Cost != info2.Cost || info1.Delay != info2.Delay || info1.MAP != info2.MAP {
		t.Fatalf("post-reconfig info diverged:\n got %+v\nwant %+v", info1, info2)
	}
}
