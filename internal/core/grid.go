package core

import (
	"fmt"
	"math"
)

// Dimension indices of the control grid, in feature (and Enumerate
// nesting) order.
const (
	dimResolution = iota
	dimAirtime
	dimGPUSpeed
	dimMCS
	dimSplit
)

// GridSpec defines the discrete control space X = H × A × Γ × M (× S) of
// §6.1. The prototype used 11 levels per dimension (|X| = 11⁴ = 14 641);
// smaller grids trade optimality for per-period compute and are used by the
// reduced benchmark settings, while LevelsPerDim grows the space far past
// the paper's — up to the 31⁴×8 ≈ 7.4M-candidate demonstration grid the
// adaptive acquisition engine sweeps.
type GridSpec struct {
	// Levels is the number of evenly spaced levels per dimension.
	Levels int
	// MinResolution and MinAirtime are the lowest levels of the (0,1]
	// dimensions (zero would disable the service entirely).
	MinResolution, MinAirtime float64
	// LevelsPerDim optionally overrides the level count per dimension, in
	// order (resolution, airtime, GPU speed, MCS, split layer). A zero
	// entry resolves to Levels for the paper's four dimensions and to 1
	// for the split dimension — one level pins SplitLayer at 0 (all-edge
	// inference), which reproduces the original 4-D control space exactly.
	// The struct stays comparable (fixed-size array), which the checkpoint
	// fixed-config comparison relies on.
	LevelsPerDim [ControlDims]int
}

// DefaultGridSpec matches the paper's 11-level grid.
func DefaultGridSpec() GridSpec {
	return GridSpec{Levels: 11, MinResolution: 0.1, MinAirtime: 0.1}
}

// dimLevels returns the resolved level count of dimension d (zero entries
// of LevelsPerDim default to Levels, except the split dimension's 1).
func (g GridSpec) dimLevels(d int) int {
	if n := g.LevelsPerDim[d]; n > 0 {
		return n
	}
	if d == dimSplit {
		return 1
	}
	return g.Levels
}

// dimLow returns the lowest level value of dimension d; every dimension
// spans [dimLow, 1] except single-level dimensions, pinned at dimLow.
func (g GridSpec) dimLow(d int) float64 {
	switch d {
	case dimResolution:
		return g.MinResolution
	case dimAirtime:
		return g.MinAirtime
	}
	return 0
}

// Validate reports whether the spec is usable.
func (g GridSpec) Validate() error {
	if g.Levels < 2 {
		return fmt.Errorf("core: grid needs at least 2 levels, got %d", g.Levels)
	}
	if g.MinResolution <= 0 || g.MinResolution >= 1 {
		return fmt.Errorf("core: MinResolution %v outside (0,1)", g.MinResolution)
	}
	if g.MinAirtime <= 0 || g.MinAirtime >= 1 {
		return fmt.Errorf("core: MinAirtime %v outside (0,1)", g.MinAirtime)
	}
	for d, n := range g.LevelsPerDim {
		if n < 0 {
			return fmt.Errorf("core: LevelsPerDim[%d] = %d is negative", d, n)
		}
	}
	return nil
}

// Size returns |X|, the product of the per-dimension level counts
// (Levels⁴ for a legacy 4-D spec).
func (g GridSpec) Size() int {
	size := 1
	for d := 0; d < ControlDims; d++ {
		size *= g.dimLevels(d)
	}
	return size
}

// levelsIn returns n evenly spaced values spanning [lo, hi], with both
// endpoints exact so grid membership checks are reliable. A single-level
// dimension collapses to its low endpoint.
func levelsIn(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	out[0], out[n-1] = lo, hi
	return out
}

// levelIndexN returns the index of the grid level nearest to v on an
// n-level dimension spanning [lo, 1], clamped into [0, n−1].
func levelIndexN(v, lo float64, n int) int {
	if n <= 1 {
		return 0
	}
	step := (1 - lo) / float64(n-1)
	k := int(math.Round((v - lo) / step))
	if k < 0 {
		k = 0
	}
	if k > n-1 {
		k = n - 1
	}
	return k
}

// levelValueN returns level i of an n-level dimension spanning [lo, 1],
// with arithmetic identical to levelsIn so snapped controls match the
// entries produced by Enumerate bitwise.
func levelValueN(i int, lo float64, n int) float64 {
	if n <= 1 || i == 0 {
		return lo
	}
	if i == n-1 {
		return 1
	}
	return lo + (1-lo)*float64(i)/float64(n-1)
}

// controlDimValues returns the control's components in dimension order.
func controlDimValues(x Control) [ControlDims]float64 {
	return [ControlDims]float64{x.Resolution, x.Airtime, x.GPUSpeed, x.MCS, x.SplitLayer}
}

// controlFromDims builds a Control from per-dimension values.
func controlFromDims(v [ControlDims]float64) Control {
	return Control{Resolution: v[dimResolution], Airtime: v[dimAirtime],
		GPUSpeed: v[dimGPUSpeed], MCS: v[dimMCS], SplitLayer: v[dimSplit]}
}

// Index returns the position within Enumerate's output of the grid point
// nearest to x, by inverting Enumerate's resolution → airtime → GPU →
// MCS → split nesting in O(1). Arbitrary (off-grid, even out-of-range)
// controls are snapped per dimension exactly like Nearest.
func (g GridSpec) Index(x Control) int {
	vals := controlDimValues(x)
	ix := 0
	for d := 0; d < ControlDims; d++ {
		n := g.dimLevels(d)
		ix = ix*n + levelIndexN(vals[d], g.dimLow(d), n)
	}
	return ix
}

// At returns the grid control at flat index i (Enumerate's ordering, the
// last dimension fastest) without materializing the grid. The result is
// bitwise equal to Enumerate()[i].
func (g GridSpec) At(i int) Control {
	var v [ControlDims]float64
	for d := ControlDims - 1; d >= 0; d-- {
		n := g.dimLevels(d)
		v[d] = levelValueN(i%n, g.dimLow(d), n)
		i /= n
	}
	return controlFromDims(v)
}

// Enumerate returns every control in the grid, in a deterministic order.
func (g GridSpec) Enumerate() ([]Control, error) {
	levels, err := g.LevelValues()
	if err != nil {
		return nil, err
	}
	out := make([]Control, 0, g.Size())
	for _, r := range levels[dimResolution] {
		for _, a := range levels[dimAirtime] {
			for _, s := range levels[dimGPUSpeed] {
				for _, m := range levels[dimMCS] {
					for _, p := range levels[dimSplit] {
						out = append(out, Control{Resolution: r, Airtime: a, GPUSpeed: s, MCS: m, SplitLayer: p})
					}
				}
			}
		}
	}
	return out, nil
}

// LevelValues returns the per-dimension grid level values in feature
// order (resolution, airtime, GPU speed, MCS, split layer). The values are
// computed by the same arithmetic as Enumerate, so they equal the control
// features of the enumerated grid bitwise — the property the gp.SweepPlan
// distance tables depend on.
func (g GridSpec) LevelValues() ([][]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := make([][]float64, ControlDims)
	for d := range out {
		out[d] = levelsIn(g.dimLow(d), 1, g.dimLevels(d))
	}
	return out, nil
}

// MaxControl returns the most resource-rich control in the grid: full
// resolution, airtime, GPU speed, and MCS, with the whole DNN on the edge
// (split 0 — the edge GPU at full speed is the fast path). This is the
// canonical member of the initial safe set S₀ — the paper seeds S₀ with
// the lowest-delay, highest-mAP (and highest-power) configurations.
func (g GridSpec) MaxControl() Control {
	return Control{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1}
}

// Nearest returns the grid control closest (in normalized L∞ distance) to
// an arbitrary control, used to project continuous baseline actions (e.g.
// DDPG outputs) onto the discrete action space. The result is bitwise
// equal to the corresponding Enumerate entry (the one at Index(x)).
func (g GridSpec) Nearest(x Control) Control {
	vals := controlDimValues(x)
	var out [ControlDims]float64
	for d := 0; d < ControlDims; d++ {
		n := g.dimLevels(d)
		lo := g.dimLow(d)
		out[d] = levelValueN(levelIndexN(vals[d], lo, n), lo, n)
	}
	return controlFromDims(out)
}
