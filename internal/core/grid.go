package core

import (
	"fmt"
	"math"
)

// GridSpec defines the discrete control space X = H × A × Γ × M of §6.1.
// The prototype used 11 levels per dimension (|X| = 11⁴ = 14 641); smaller
// grids trade optimality for per-period compute and are used by the reduced
// benchmark settings.
type GridSpec struct {
	// Levels is the number of evenly spaced levels per dimension.
	Levels int
	// MinResolution and MinAirtime are the lowest levels of the (0,1]
	// dimensions (zero would disable the service entirely).
	MinResolution, MinAirtime float64
}

// DefaultGridSpec matches the paper's 11-level grid.
func DefaultGridSpec() GridSpec {
	return GridSpec{Levels: 11, MinResolution: 0.1, MinAirtime: 0.1}
}

// Validate reports whether the spec is usable.
func (g GridSpec) Validate() error {
	if g.Levels < 2 {
		return fmt.Errorf("core: grid needs at least 2 levels, got %d", g.Levels)
	}
	if g.MinResolution <= 0 || g.MinResolution >= 1 {
		return fmt.Errorf("core: MinResolution %v outside (0,1)", g.MinResolution)
	}
	if g.MinAirtime <= 0 || g.MinAirtime >= 1 {
		return fmt.Errorf("core: MinAirtime %v outside (0,1)", g.MinAirtime)
	}
	return nil
}

// Size returns |X| = Levels⁴.
func (g GridSpec) Size() int {
	n := g.Levels
	return n * n * n * n
}

// levelsIn returns n evenly spaced values spanning [lo, hi], with both
// endpoints exact so grid membership checks are reliable.
func levelsIn(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	out[0], out[n-1] = lo, hi
	return out
}

// levelIndex returns the index of the grid level nearest to v on a
// dimension spanning [lo, 1], clamped into [0, Levels−1].
func (g GridSpec) levelIndex(v, lo float64) int {
	step := (1 - lo) / float64(g.Levels-1)
	k := int(math.Round((v - lo) / step))
	if k < 0 {
		k = 0
	}
	if k > g.Levels-1 {
		k = g.Levels - 1
	}
	return k
}

// levelValue returns level i of a dimension spanning [lo, 1], with
// arithmetic identical to levelsIn so snapped controls match the entries
// produced by Enumerate bitwise.
func (g GridSpec) levelValue(i int, lo float64) float64 {
	if i == 0 {
		return lo
	}
	if i == g.Levels-1 {
		return 1
	}
	return lo + (1-lo)*float64(i)/float64(g.Levels-1)
}

// Index returns the position within Enumerate's output of the grid point
// nearest to x, by inverting Enumerate's resolution → airtime → GPU → MCS
// nesting in O(1). Arbitrary (off-grid, even out-of-range) controls are
// snapped per dimension exactly like Nearest.
func (g GridSpec) Index(x Control) int {
	n := g.Levels
	ri := g.levelIndex(x.Resolution, g.MinResolution)
	ai := g.levelIndex(x.Airtime, g.MinAirtime)
	si := g.levelIndex(x.GPUSpeed, 0)
	mi := g.levelIndex(x.MCS, 0)
	return ((ri*n+ai)*n+si)*n + mi
}

// Enumerate returns every control in the grid, in a deterministic order.
func (g GridSpec) Enumerate() ([]Control, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	res := levelsIn(g.MinResolution, 1, g.Levels)
	air := levelsIn(g.MinAirtime, 1, g.Levels)
	gpu := levelsIn(0, 1, g.Levels)
	mcs := levelsIn(0, 1, g.Levels)
	out := make([]Control, 0, g.Size())
	for _, r := range res {
		for _, a := range air {
			for _, s := range gpu {
				for _, m := range mcs {
					out = append(out, Control{Resolution: r, Airtime: a, GPUSpeed: s, MCS: m})
				}
			}
		}
	}
	return out, nil
}

// LevelValues returns the per-dimension grid level values in feature
// order (resolution, airtime, GPU speed, MCS). The values are computed by
// the same arithmetic as Enumerate, so they equal the control features of
// the enumerated grid bitwise — the property the gp.SweepPlan distance
// tables depend on.
func (g GridSpec) LevelValues() ([][]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return [][]float64{
		levelsIn(g.MinResolution, 1, g.Levels),
		levelsIn(g.MinAirtime, 1, g.Levels),
		levelsIn(0, 1, g.Levels),
		levelsIn(0, 1, g.Levels),
	}, nil
}

// MaxControl returns the most resource-rich control in the grid: full
// resolution, airtime, GPU speed, and MCS. This is the canonical member of
// the initial safe set S₀ — the paper seeds S₀ with the lowest-delay,
// highest-mAP (and highest-power) configurations.
func (g GridSpec) MaxControl() Control {
	return Control{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1}
}

// Nearest returns the grid control closest (in normalized L∞ distance) to
// an arbitrary control, used to project continuous baseline actions (e.g.
// DDPG outputs) onto the discrete action space. The result is bitwise
// equal to the corresponding Enumerate entry (the one at Index(x)).
func (g GridSpec) Nearest(x Control) Control {
	return Control{
		Resolution: g.levelValue(g.levelIndex(x.Resolution, g.MinResolution), g.MinResolution),
		Airtime:    g.levelValue(g.levelIndex(x.Airtime, g.MinAirtime), g.MinAirtime),
		GPUSpeed:   g.levelValue(g.levelIndex(x.GPUSpeed, 0), 0),
		MCS:        g.levelValue(g.levelIndex(x.MCS, 0), 0),
	}
}
