package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestGridIndexMatchesLinearScan checks the O(1) index arithmetic against
// the exhaustive definition over random off-grid (and out-of-range)
// controls: Index must locate the same grid entry a linear nearest-point
// scan finds, and the entry must equal Nearest's snap bitwise.
func TestGridIndexMatchesLinearScan(t *testing.T) {
	spec := GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.2}
	grid, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		x := Control{
			Resolution: rng.Float64()*1.4 - 0.2,
			Airtime:    rng.Float64()*1.4 - 0.2,
			GPUSpeed:   rng.Float64()*1.4 - 0.2,
			MCS:        rng.Float64()*1.4 - 0.2,
		}
		gi := spec.Index(x)
		if gi < 0 || gi >= len(grid) {
			t.Fatalf("Index(%+v) = %d outside grid of %d", x, gi, len(grid))
		}
		snapped := spec.Nearest(x)
		if grid[gi] != snapped {
			t.Fatalf("grid[Index(%+v)] = %+v, Nearest = %+v", x, grid[gi], snapped)
		}
		scan := -1
		for i, g := range grid {
			if controlsClose(g, snapped) {
				scan = i
				break
			}
		}
		if scan != gi {
			t.Fatalf("Index(%+v) = %d, linear scan found %d", x, gi, scan)
		}
	}
}

// TestNewAgentSnapsOffGridSeeds exercises the index-based seed placement:
// seeds perturbed off the grid must land on their nearest grid entries.
func TestNewAgentSnapsOffGridSeeds(t *testing.T) {
	spec := testGrid()
	grid, err := spec.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	clamp := func(v, lo float64) float64 {
		if v < lo {
			return lo
		}
		if v > 1 {
			return 1
		}
		return v
	}
	seeds := make([]Control, 4)
	for i := range seeds {
		g := grid[rng.Intn(len(grid))]
		// Perturb by less than half a grid step so the intended snap target
		// is unambiguous (smallest step here is (1-0.1)/3 = 0.3), clamping
		// into the control domain — which only moves a value back toward
		// its grid point, never toward a different one.
		seeds[i] = Control{
			Resolution: clamp(g.Resolution+(rng.Float64()-0.5)*0.2, 0.05),
			Airtime:    clamp(g.Airtime+(rng.Float64()-0.5)*0.2, 0.05),
			GPUSpeed:   clamp(g.GPUSpeed+(rng.Float64()-0.5)*0.2, 0),
			MCS:        clamp(g.MCS+(rng.Float64()-0.5)*0.2, 0),
		}
	}
	a, err := NewAgent(Options{
		Grid:        spec,
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.9, MinMAP: 0.3},
		Norm:        quadNorm(),
		SafeSeed:    seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.safeSeedIx) != len(seeds) {
		t.Fatalf("placed %d seeds, want %d", len(a.safeSeedIx), len(seeds))
	}
	for i, gi := range a.safeSeedIx {
		if want := spec.Nearest(seeds[i]); grid[gi] != want {
			t.Fatalf("seed %d placed at %+v, want %+v", i, grid[gi], want)
		}
	}
}

// TestSelectControlWorkerEquivalence is the end-to-end determinism check of
// the acceptance criteria: two identical agents differing only in
// InferenceWorkers must select bitwise-identical controls (and acquisition
// values) over a whole seeded run, in both cost-modeling modes.
func TestSelectControlWorkerEquivalence(t *testing.T) {
	for _, decomposed := range []bool{false, true} {
		name := "joint cost"
		if decomposed {
			name = "decomposed cost"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(workers int) *Agent {
				a, err := NewAgent(Options{
					Grid:             testGrid(),
					Weights:          CostWeights{Delta1: 1, Delta2: 1},
					Constraints:      Constraints{MaxDelay: 0.9, MinMAP: 0.3},
					Norm:             quadNorm(),
					NoiseVars:        [3]float64{1e-4, 1e-4, 1e-4},
					DecomposedCost:   decomposed,
					InferenceWorkers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			serial, parallel := mk(1), mk(4)
			envS := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
			envP := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
			for step := 0; step < 30; step++ {
				xs, _, infoS, err := serial.Step(envS)
				if err != nil {
					t.Fatal(err)
				}
				xp, _, infoP, err := parallel.Step(envP)
				if err != nil {
					t.Fatal(err)
				}
				if xs != xp {
					t.Fatalf("step %d: serial selected %+v, parallel %+v", step, xs, xp)
				}
				if math.Float64bits(infoS.LCB) != math.Float64bits(infoP.LCB) ||
					infoS.SafeSetSize != infoP.SafeSetSize {
					t.Fatalf("step %d: diagnostics diverge: %+v vs %+v", step, infoS, infoP)
				}
			}
		})
	}
}
