package core

import (
	"testing"
)

func TestPretrainFitsAllObjectives(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	w := CostWeights{Delta1: 1, Delta2: 1}
	res, err := Pretrain(env, testGrid(), w, PretrainOptions{Samples: 40, FitIterations: 25, Norm: quadNorm()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 40 {
		t.Fatalf("Samples = %d, want 40", res.Samples)
	}
	for i := 0; i < 3; i++ {
		if len(res.LengthScales[i]) != ContextDims+ControlDims {
			t.Fatalf("objective %d: %d length scales", i, len(res.LengthScales[i]))
		}
		if res.NoiseVars[i] <= 0 {
			t.Fatalf("objective %d: noise %v", i, res.NoiseVars[i])
		}
		for _, ls := range res.LengthScales[i] {
			if ls <= 0 {
				t.Fatalf("objective %d: non-positive length scale", i)
			}
		}
	}
}

func TestPretrainValidation(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	w := CostWeights{Delta1: 1, Delta2: 1}
	if _, err := Pretrain(nil, testGrid(), w, PretrainOptions{}, 1); err == nil {
		t.Fatal("expected error for nil env")
	}
	if _, err := Pretrain(env, GridSpec{}, w, PretrainOptions{}, 1); err == nil {
		t.Fatal("expected error for invalid grid")
	}
	if _, err := Pretrain(env, testGrid(), w, PretrainOptions{Samples: 3}, 1); err == nil {
		t.Fatal("expected error for too few samples")
	}
}

func TestPretrainApplyAndRun(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	w := CostWeights{Delta1: 1, Delta2: 1}
	res, err := Pretrain(env, testGrid(), w, PretrainOptions{Samples: 40, FitIterations: 25, Norm: quadNorm()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Grid:        testGrid(),
		Weights:     w,
		Constraints: Constraints{MaxDelay: 0.9, MinMAP: 0.3},
		Norm:        quadNorm(),
	}
	res.Apply(&opts)
	agent, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	// A fitted agent must still run and improve.
	var first, last float64
	for i := 0; i < 40; i++ {
		_, k, _, err := agent.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		cost := w.Cost(k)
		if i == 0 {
			first = cost
		}
		last = cost
	}
	if last > first {
		t.Fatalf("fitted agent regressed: first %v last %v", first, last)
	}
}

func TestLengthScalesPerGPValidation(t *testing.T) {
	opts := Options{
		Grid:        testGrid(),
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: Constraints{MaxDelay: 0.9, MinMAP: 0.3},
	}
	opts.LengthScalesPerGP[1] = []float64{1, 2} // wrong dimension
	if _, err := NewAgent(opts); err == nil {
		t.Fatal("expected error for mismatched per-GP length scales")
	}
}

func TestDecomposedCostWeightsChange(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	w := CostWeights{Delta1: 1, Delta2: 1}
	agent, err := NewAgent(Options{
		Grid:           testGrid(),
		Weights:        w,
		Constraints:    Constraints{MaxDelay: 0.9, MinMAP: 0.3},
		Norm:           quadNorm(),
		NoiseVars:      [3]float64{1e-4, 1e-4, 1e-4},
		PowerNoiseVars: [2]float64{1e-4, 1e-4},
		DecomposedCost: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, _, err := agent.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	// In quadEnv, server power falls with GPU speed and BS power with
	// airtime/MCS. With δ₂ huge, the optimum shifts toward lower airtime.
	xBefore, _ := agent.SelectControl(env.Context())
	if err := agent.SetWeights(CostWeights{Delta1: 0.01, Delta2: 50}); err != nil {
		t.Fatal(err)
	}
	var xAfter Control
	for i := 0; i < 15; i++ {
		x, _, _, err := agent.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		xAfter = x
	}
	costBefore := CostWeights{Delta1: 0.01, Delta2: 50}.Cost(env.truth(xBefore))
	costAfter := CostWeights{Delta1: 0.01, Delta2: 50}.Cost(env.truth(xAfter))
	if costAfter > costBefore {
		t.Fatalf("weight change should re-optimize: before %v after %v", costBefore, costAfter)
	}
}

func TestSetWeightsRequiresDecomposedMode(t *testing.T) {
	agent := newTestAgent(t, Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	if err := agent.SetWeights(CostWeights{Delta1: 1, Delta2: 2}); err == nil {
		t.Fatal("expected error outside decomposed mode")
	}
}

func TestSetWeightsValidation(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	agent, err := NewAgent(Options{
		Grid:           testGrid(),
		Weights:        CostWeights{Delta1: 1, Delta2: 1},
		Constraints:    Constraints{MaxDelay: 0.9, MinMAP: 0.3},
		Norm:           quadNorm(),
		DecomposedCost: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := agent.Step(env); err != nil {
		t.Fatal(err)
	}
	if err := agent.SetWeights(CostWeights{}); err == nil {
		t.Fatal("expected error for zero weights")
	}
	if err := agent.SetWeights(CostWeights{Delta1: -1, Delta2: 1}); err == nil {
		t.Fatal("expected error for negative weight")
	}
}

func TestDecomposedMatchesJointOnFixedWeights(t *testing.T) {
	// With fixed weights, decomposed and joint agents should land on
	// similar-quality solutions (not identical — different exploration).
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	w := CostWeights{Delta1: 1, Delta2: 1}
	cons := Constraints{MaxDelay: 0.9, MinMAP: 0.3}
	runTail := func(decomposed bool) float64 {
		agent, err := NewAgent(Options{
			Grid:           testGrid(),
			Weights:        w,
			Constraints:    cons,
			Norm:           quadNorm(),
			NoiseVars:      [3]float64{1e-4, 1e-4, 1e-4},
			PowerNoiseVars: [2]float64{1e-4, 1e-4},
			DecomposedCost: decomposed,
		})
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for i := 0; i < 60; i++ {
			_, k, _, err := agent.Step(env)
			if err != nil {
				t.Fatal(err)
			}
			last = w.Cost(k)
		}
		return last
	}
	joint := runTail(false)
	decomposed := runTail(true)
	if decomposed > joint*1.25 {
		t.Fatalf("decomposed cost %v much worse than joint %v", decomposed, joint)
	}
}
