package core

import (
	"bytes"
	"math"
	"testing"
)

// livedPeriod is one raw (context, control, KPIs) triple an agent lived,
// the denormalized counterpart of a HistorySample.
type livedPeriod struct {
	ctx Context
	x   Control
	k   KPIs
}

// TestHistoryExportAligned checks the exported history mirrors the lived
// run: one sample per period, normalized features matching the lived
// (context, control) pairs, and the cap keeping the most recent samples.
func TestHistoryExportAligned(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	a := newTestAgent(t, Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	const periods = 12
	for i := 0; i < periods; i++ {
		if _, _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	hist := a.History(0)
	if len(hist) != periods {
		t.Fatalf("exported %d samples, want %d", len(hist), periods)
	}
	for i, s := range hist {
		if len(s.Features) != ContextDims+ControlDims {
			t.Fatalf("sample %d has %d features", i, len(s.Features))
		}
	}
	capped := a.History(5)
	if len(capped) != 5 {
		t.Fatalf("capped export has %d samples, want 5", len(capped))
	}
	for i := range capped {
		full := hist[periods-5+i]
		if capped[i].Cost != full.Cost || capped[i].Delay != full.Delay || capped[i].MAP != full.MAP { //edgebol:allow floateq -- exported copies must be the exact stored values
			t.Fatalf("capped sample %d is not the tail of the full history", i)
		}
	}
}

// TestSeedHistoryBitwiseEquivalence is the warm-start contract: an agent
// seeded from a pooled history is bitwise identical — selections,
// posteriors, checkpoint bytes — to a fresh agent that observed that
// history directly through the normal Observe path.
func TestSeedHistoryBitwiseEquivalence(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	cons := Constraints{MaxDelay: 0.9, MinMAP: 0.3}

	// The donor lives 30 periods; its exported history is the pool.
	donor := newTestAgent(t, cons)
	lived := make([]livedPeriod, 0, 30)
	for i := 0; i < 30; i++ {
		c := env.Context()
		x, k, _, err := donor.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		lived = append(lived, livedPeriod{ctx: c, x: x, k: k})
	}
	pool := donor.History(0)
	if len(pool) != len(lived) {
		t.Fatalf("pool has %d samples, want %d", len(pool), len(lived))
	}

	// Fresh agent A observes the lived periods directly.
	direct := newTestAgent(t, cons)
	for _, p := range lived {
		if err := direct.Observe(p.ctx, p.x, p.k); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh agent B is seeded from the exported pool.
	warm := newTestAgent(t, cons)
	if err := warm.SeedHistory(pool); err != nil {
		t.Fatal(err)
	}

	if warm.Observations() != direct.Observations() {
		t.Fatalf("seeded t = %d, observed t = %d", warm.Observations(), direct.Observations())
	}
	// Selections over a spread of contexts must agree bitwise.
	for _, ctx := range []Context{
		{NumUsers: 1, MeanCQI: 15},
		{NumUsers: 3, MeanCQI: 9, VarCQI: 2},
		{NumUsers: 6, MeanCQI: 12, VarCQI: 5},
	} {
		xa, ia := direct.SelectControl(ctx)
		xb, ib := warm.SelectControl(ctx)
		if xa != xb {
			t.Fatalf("selections diverge at %+v: %+v vs %+v", ctx, xa, xb)
		}
		if ia.LCB != ib.LCB || ia.SafeSetSize != ib.SafeSetSize { //edgebol:allow floateq -- the warm-start contract is bitwise equality
			t.Fatalf("diagnostics diverge at %+v: %+v vs %+v", ctx, ia, ib)
		}
	}
	// And the serialized learned state must be byte-identical.
	var ba, bb bytes.Buffer
	if err := direct.SaveCheckpoint(&ba); err != nil {
		t.Fatal(err)
	}
	if err := warm.SaveCheckpoint(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("checkpoint bytes diverge between observed and seeded agents")
	}
}

// TestSeedHistoryValidation exercises the rejection paths: wrong
// dimension, non-finite values, decomposed-cost agents.
func TestSeedHistoryValidation(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	if err := a.SeedHistory([]HistorySample{{Features: []float64{1, 2}}}); err == nil {
		t.Fatal("short feature row accepted")
	}
	bad := make([]float64, ContextDims+ControlDims)
	bad[0] = math.NaN()
	if err := a.SeedHistory([]HistorySample{{Features: bad}}); err == nil {
		t.Fatal("NaN feature accepted")
	}
	if a.Observations() != 0 {
		t.Fatalf("failed seeding advanced the period counter to %d", a.Observations())
	}

	dec, err := NewAgent(Options{
		Grid:           testGrid(),
		Weights:        CostWeights{Delta1: 1, Delta2: 1},
		Constraints:    Constraints{MaxDelay: 0.9, MinMAP: 0.3},
		Norm:           quadNorm(),
		DecomposedCost: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SeedHistory(nil); err == nil {
		t.Fatal("decomposed-cost agent accepted seeding")
	}
	if dec.History(0) != nil {
		t.Fatal("decomposed-cost agent exported a history")
	}
}
