package core

import (
	"math"
	"testing"
)

// quadEnv is a synthetic environment with a known optimum: cost falls with
// every control dimension while delay rises with resolution and falls with
// airtime/GPU speed, giving a constraint boundary the agent must respect.
type quadEnv struct {
	ctx Context
}

func (e *quadEnv) Context() Context { return e.ctx }

func (e *quadEnv) truth(x Control) KPIs {
	// Server power falls with GPU speed^-1 style shape; BS power rises with
	// airtime. Delay: high with low airtime/GPU speed and high resolution.
	delay := 0.1 + 0.6*x.Resolution + 0.5*(1-x.Airtime) + 0.4*(1-x.GPUSpeed)
	mAP := 0.1 + 0.6*x.Resolution
	server := 80 + 100*x.GPUSpeed
	bs := 4.5 + 2.5*x.Airtime + 1.5*(1-x.MCS)
	return KPIs{Delay: delay, MAP: mAP, ServerPower: server, BSPower: bs}
}

func (e *quadEnv) Measure(x Control) (KPIs, error) {
	return e.truth(x), nil // noise-free for deterministic testing
}

func testGrid() GridSpec {
	return GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1}
}

// quadNorm matches the quadEnv's KPI envelopes (delay 0.1–1.6 s, mAP
// 0.1–0.7, cost 85–190), the way DefaultNormalization matches the testbed.
func quadNorm() Normalization {
	return Normalization{
		Cost:  Affine{Center: 130, Scale: 30},
		Delay: Affine{Center: 0.5, Scale: 0.15},
		MAP:   Affine{Center: 0.4, Scale: 0.15},
	}
}

func newTestAgent(t *testing.T, cons Constraints) *Agent {
	t.Helper()
	a, err := NewAgent(Options{
		Grid:        testGrid(),
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: cons,
		Norm:        quadNorm(),
		// quadEnv is noise-free, so the observation-noise priors can be
		// tight, which also tightens the predictive safety bound.
		NoiseVars: [3]float64{1e-4, 1e-4, 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAgentValidation(t *testing.T) {
	bad := []Options{
		{},
		{Grid: testGrid()},
		{Grid: testGrid(), Constraints: Constraints{MaxDelay: 1, MinMAP: 0.3}},
		{Grid: testGrid(), Constraints: Constraints{MaxDelay: 1, MinMAP: 0.3},
			Weights: CostWeights{Delta1: -1, Delta2: 1}},
	}
	for i, o := range bad {
		if _, err := NewAgent(o); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
}

func isSeed(a *Agent, x Control) bool {
	for _, s := range a.opts.SafeSeed {
		if controlsClose(s, x) {
			return true
		}
	}
	return false
}

func TestFirstSelectionIsSeed(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 0.6, MinMAP: 0.3})
	x, info := a.SelectControl(Context{NumUsers: 1, MeanCQI: 15})
	if !isSeed(a, x) {
		t.Fatalf("untrained agent should select from S₀, got %+v", x)
	}
	if !info.FromSeed {
		t.Fatal("selection should be flagged as seed fallback")
	}
	if info.SafeSetSize != len(a.opts.SafeSeed) {
		t.Fatalf("untrained safe set size = %d, want %d", info.SafeSetSize, len(a.opts.SafeSeed))
	}
}

func TestSafeSetGrowsWithObservations(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	a := newTestAgent(t, Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	_, first := a.SelectControl(env.Context())
	for i := 0; i < 25; i++ {
		if _, _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	_, later := a.SelectControl(env.Context())
	if later.SafeSetSize <= first.SafeSetSize {
		t.Fatalf("safe set did not grow: %d -> %d", first.SafeSetSize, later.SafeSetSize)
	}
}

func TestAgentConvergesToCheapFeasible(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	cons := Constraints{MaxDelay: 0.9, MinMAP: 0.3}
	a := newTestAgent(t, cons)
	var last Control
	for i := 0; i < 60; i++ {
		x, k, _, err := a.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		last = x
		_ = k
	}
	// Exhaustive optimum over the same grid.
	grid, err := testGrid().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	bestCost := math.Inf(1)
	w := CostWeights{Delta1: 1, Delta2: 1}
	for _, x := range grid {
		k := env.truth(x)
		if cons.Satisfied(k) && w.Cost(k) < bestCost {
			bestCost = w.Cost(k)
		}
	}
	finalCost := w.Cost(env.truth(last))
	if !cons.Satisfied(env.truth(last)) {
		t.Fatalf("final control %+v violates constraints: %+v", last, env.truth(last))
	}
	if finalCost > bestCost*1.10 {
		t.Fatalf("final cost %v more than 10%% above optimum %v", finalCost, bestCost)
	}
}

func TestAgentRespectsConstraintsDuringLearning(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	cons := Constraints{MaxDelay: 0.9, MinMAP: 0.3}
	a := newTestAgent(t, cons)
	violations := 0
	const steps, burnIn = 60, 10
	for i := 0; i < steps; i++ {
		_, k, _, err := a.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		// S₀ is *assumed* safe and may contain violating members that the
		// agent must sample to discover; only post-burn-in picks count.
		if i >= burnIn && !cons.Satisfied(k) {
			violations++
		}
	}
	// The paper reports ≥0.98 satisfaction probability; in a noise-free
	// environment the safe set should essentially never violate after
	// burn-in.
	if violations > (steps-burnIn)/20 {
		t.Fatalf("%d/%d constraint violations after burn-in", violations, steps-burnIn)
	}
}

func TestSetConstraintsTakesEffectImmediately(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	a := newTestAgent(t, Constraints{MaxDelay: 1.2, MinMAP: 0.2})
	for i := 0; i < 40; i++ {
		if _, _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	// Tighten: previously chosen cheap controls may now violate.
	tight := Constraints{MaxDelay: 0.8, MinMAP: 0.4}
	if err := a.SetConstraints(tight); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, k, _, err := a.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		if !tight.Satisfied(k) {
			t.Fatalf("violated tightened constraints at step %d: %+v", i, k)
		}
	}
	if err := a.SetConstraints(Constraints{MaxDelay: 0}); err == nil {
		t.Fatal("expected error for invalid constraints")
	}
}

func TestObserveRejectsInvalidControl(t *testing.T) {
	a := newTestAgent(t, Constraints{MaxDelay: 1, MinMAP: 0.2})
	if err := a.Observe(Context{NumUsers: 1, MeanCQI: 15}, Control{}, KPIs{}); err == nil {
		t.Fatal("expected error for invalid control")
	}
}

func TestKnowledgeTransfersAcrossContexts(t *testing.T) {
	// Train in one context, then check the safe set in a *similar* context
	// is non-trivial immediately (Fig. 13's cross-context transfer).
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	a := newTestAgent(t, Constraints{MaxDelay: 0.9, MinMAP: 0.3})
	for i := 0; i < 30; i++ {
		if _, _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	_, info := a.SelectControl(Context{NumUsers: 1, MeanCQI: 14})
	if info.SafeSetSize <= len(a.opts.SafeSeed) {
		t.Fatal("no knowledge transferred to the neighbouring context")
	}
}

func TestSeedAlwaysInSafeSet(t *testing.T) {
	// Infeasible constraints: the safe set must converge to S₀ (the §5
	// "Practical Issues" behaviour), never go empty.
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	a := newTestAgent(t, Constraints{MaxDelay: 0.05, MinMAP: 0.99})
	for i := 0; i < 20; i++ {
		x, _, info, err := a.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		if info.SafeSetSize < 1 {
			t.Fatal("safe set went empty")
		}
		if !isSeed(a, x) {
			t.Fatalf("infeasible problem should pin the agent to S₀, got %+v", x)
		}
	}
}

func TestSlidingWindowAgent(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	a, err := NewAgent(Options{
		Grid:            testGrid(),
		Weights:         CostWeights{Delta1: 1, Delta2: 1},
		Constraints:     Constraints{MaxDelay: 0.9, MinMAP: 0.3},
		MaxObservations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, _, err := a.Step(env); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.gps[gpCost].Len(); got > 20 {
		t.Fatalf("window not enforced: %d observations", got)
	}
	// The agent must still pick feasible controls.
	x, _ := a.SelectControl(env.Context())
	if !(Constraints{MaxDelay: 0.9, MinMAP: 0.3}).Satisfied(env.truth(x)) {
		t.Fatal("windowed agent selected an infeasible control")
	}
}

func TestDefaultNormalization(t *testing.T) {
	n := DefaultNormalization(CostWeights{Delta1: 1, Delta2: 8})
	if n.Cost.Scale <= 0 || n.Delay.Scale <= 0 || n.MAP.Scale <= 0 {
		t.Fatalf("invalid default normalization %+v", n)
	}
	if n.Cost.Scale <= DefaultNormalization(CostWeights{Delta1: 1, Delta2: 1}).Cost.Scale {
		t.Fatal("cost scale should grow with δ₂")
	}
	if got := (Affine{Center: 2, Scale: 4}).Norm(10); got != 2 {
		t.Fatalf("Affine.Norm = %v, want 2", got)
	}
}
