package core

import "testing"

func newSafeOptAgent(t *testing.T, cons Constraints) *Agent {
	t.Helper()
	a, err := NewAgent(Options{
		Grid:        testGrid(),
		Weights:     CostWeights{Delta1: 1, Delta2: 1},
		Constraints: cons,
		Norm:        quadNorm(),
		NoiseVars:   [3]float64{1e-4, 1e-4, 1e-4},
		Rule:        AcquisitionSafeOpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSafeOptRunsAndStaysSafe(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	cons := Constraints{MaxDelay: 0.9, MinMAP: 0.3}
	a := newSafeOptAgent(t, cons)
	violations := 0
	const steps, burnIn = 60, 10
	for i := 0; i < steps; i++ {
		_, k, info, err := a.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		if info.SafeSetSize < 1 {
			t.Fatal("SafeOpt safe set collapsed")
		}
		if i >= burnIn && !cons.Satisfied(k) {
			violations++
		}
	}
	if violations > (steps-burnIn)/10 {
		t.Fatalf("SafeOpt violated constraints %d times", violations)
	}
}

// The paper's observation: the LCB acquisition reaches low cost faster
// than SafeOpt's pure-uncertainty sampling, which keeps paying for
// exploration long after the LCB has started exploiting.
func TestLCBConvergesFasterThanSafeOpt(t *testing.T) {
	env := &quadEnv{ctx: Context{NumUsers: 1, MeanCQI: 15}}
	cons := Constraints{MaxDelay: 0.9, MinMAP: 0.3}
	w := CostWeights{Delta1: 1, Delta2: 1}
	tailCost := func(acq AcquisitionRule) float64 {
		a, err := NewAgent(Options{
			Grid:        testGrid(),
			Weights:     w,
			Constraints: cons,
			Norm:        quadNorm(),
			NoiseVars:   [3]float64{1e-4, 1e-4, 1e-4},
			Rule:        acq,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for i := 0; i < 60; i++ {
			_, k, _, err := a.Step(env)
			if err != nil {
				t.Fatal(err)
			}
			if i >= 40 {
				sum += w.Cost(k)
				n++
			}
		}
		return sum / float64(n)
	}
	lcb := tailCost(AcquisitionLCB)
	safeopt := tailCost(AcquisitionSafeOpt)
	t.Logf("tail cost: LCB %.1f, SafeOpt %.1f", lcb, safeopt)
	if lcb > safeopt {
		t.Fatalf("LCB (%v) should converge to lower cost than SafeOpt (%v)", lcb, safeopt)
	}
}
