package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ran"
)

func TestControlValidate(t *testing.T) {
	good := Control{Resolution: 0.5, Airtime: 0.5, GPUSpeed: 0.5, MCS: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Control{
		{Resolution: 0, Airtime: 0.5, GPUSpeed: 0.5, MCS: 0.5},
		{Resolution: 1.1, Airtime: 0.5, GPUSpeed: 0.5, MCS: 0.5},
		{Resolution: 0.5, Airtime: 0, GPUSpeed: 0.5, MCS: 0.5},
		{Resolution: 0.5, Airtime: 0.5, GPUSpeed: -0.1, MCS: 0.5},
		{Resolution: 0.5, Airtime: 0.5, GPUSpeed: 0.5, MCS: 1.2},
		{Resolution: math.NaN(), Airtime: 0.5, GPUSpeed: 0.5, MCS: 0.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("expected validation error for %+v", c)
		}
	}
}

func TestMCSCapMapping(t *testing.T) {
	if (Control{MCS: 0}).MCSCap() != 0 {
		t.Fatal("MCS 0 should map to cap 0")
	}
	if (Control{MCS: 1}).MCSCap() != ran.MaxMCS {
		t.Fatalf("MCS 1 should map to cap %d", ran.MaxMCS)
	}
	if got := (Control{MCS: 0.5}).MCSCap(); got < 11 || got > 12 {
		t.Fatalf("MCS 0.5 cap = %d, want ≈%d", got, ran.MaxMCS/2)
	}
}

func TestFeaturesShapeAndRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := Context{NumUsers: 1 + rng.Intn(6), MeanCQI: 1 + rng.Float64()*14, VarCQI: rng.Float64() * 10}
		x := Control{
			Resolution: 0.1 + 0.9*rng.Float64(),
			Airtime:    0.1 + 0.9*rng.Float64(),
			GPUSpeed:   rng.Float64(),
			MCS:        rng.Float64(),
		}
		z := Features(ctx, x)
		if len(z) != ContextDims+ControlDims {
			return false
		}
		for _, v := range z {
			if v < 0 || v > 1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostWeights(t *testing.T) {
	w := CostWeights{Delta1: 1, Delta2: 8}
	k := KPIs{ServerPower: 100, BSPower: 5}
	if got := w.Cost(k); got != 140 {
		t.Fatalf("cost = %v, want 140", got)
	}
}

func TestConstraints(t *testing.T) {
	c := Constraints{MaxDelay: 0.4, MinMAP: 0.5}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Satisfied(KPIs{Delay: 0.3, MAP: 0.6}) {
		t.Fatal("should be satisfied")
	}
	if c.Satisfied(KPIs{Delay: 0.5, MAP: 0.6}) {
		t.Fatal("delay violation missed")
	}
	if c.Satisfied(KPIs{Delay: 0.3, MAP: 0.4}) {
		t.Fatal("mAP violation missed")
	}
	for _, bad := range []Constraints{{MaxDelay: 0, MinMAP: 0.5}, {MaxDelay: 1, MinMAP: -0.1}, {MaxDelay: 1, MinMAP: 1.1}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("expected error for %+v", bad)
		}
	}
}

func TestGridSpec(t *testing.T) {
	g := DefaultGridSpec()
	if g.Size() != 14641 {
		t.Fatalf("paper grid size = %d, want 14641", g.Size())
	}
	small := GridSpec{Levels: 3, MinResolution: 0.1, MinAirtime: 0.1}
	ctls, err := small.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ctls) != 81 {
		t.Fatalf("3-level grid has %d controls, want 81", len(ctls))
	}
	seen := make(map[Control]bool)
	for _, c := range ctls {
		if err := c.Validate(); err != nil {
			t.Fatalf("grid produced invalid control %+v: %v", c, err)
		}
		if seen[c] {
			t.Fatalf("duplicate control %+v", c)
		}
		seen[c] = true
	}
	if !seen[small.MaxControl()] {
		t.Fatal("grid must contain the max-resource control")
	}
}

func TestGridSpecValidate(t *testing.T) {
	bad := []GridSpec{
		{Levels: 1, MinResolution: 0.1, MinAirtime: 0.1},
		{Levels: 5, MinResolution: 0, MinAirtime: 0.1},
		{Levels: 5, MinResolution: 1, MinAirtime: 0.1},
		{Levels: 5, MinResolution: 0.1, MinAirtime: 0},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("expected error for %+v", g)
		}
	}
}

func TestGridNearestSnapsOntoGrid(t *testing.T) {
	g := GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1}
	ctls, err := g.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	onGrid := make(map[Control]bool, len(ctls))
	for _, c := range ctls {
		onGrid[c] = true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Control{
			Resolution: rng.Float64()*1.2 - 0.1,
			Airtime:    rng.Float64()*1.2 - 0.1,
			GPUSpeed:   rng.Float64()*1.2 - 0.1,
			MCS:        rng.Float64()*1.2 - 0.1,
		}
		n := g.Nearest(x)
		// Tolerate float rounding by checking approximate membership.
		for c := range onGrid {
			if math.Abs(c.Resolution-n.Resolution) < 1e-9 &&
				math.Abs(c.Airtime-n.Airtime) < 1e-9 &&
				math.Abs(c.GPUSpeed-n.GPUSpeed) < 1e-9 &&
				math.Abs(c.MCS-n.MCS) < 1e-9 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridNearestIdempotentOnGridPoints(t *testing.T) {
	g := GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1}
	ctls, err := g.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ctls {
		n := g.Nearest(c)
		if math.Abs(n.Resolution-c.Resolution) > 1e-9 || math.Abs(n.Airtime-c.Airtime) > 1e-9 ||
			math.Abs(n.GPUSpeed-c.GPUSpeed) > 1e-9 || math.Abs(n.MCS-c.MCS) > 1e-9 {
			t.Fatalf("Nearest moved a grid point: %+v -> %+v", c, n)
		}
	}
}
