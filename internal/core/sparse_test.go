package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestEngineSelectorString(t *testing.T) {
	cases := map[EngineSelector]string{
		EngineExact:  "exact",
		EngineSparse: "sparse",
		EngineAuto:   "auto",
	}
	for sel, want := range cases {
		if got := sel.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", sel, got, want)
		}
	}
}

func TestEngineOptionValidation(t *testing.T) {
	opts := testOptions()
	opts.Engine = EngineSelector(7)
	if _, err := NewAgent(opts); err == nil {
		t.Fatal("unknown engine selector accepted")
	}
	opts = testOptions()
	opts.InducingPoints = -1
	if _, err := NewAgent(opts); err == nil {
		t.Fatal("negative inducing budget accepted")
	}
	opts = testOptions()
	opts.SparseSwitchAt = -1
	if _, err := NewAgent(opts); err == nil {
		t.Fatal("negative switch threshold accepted")
	}
	opts = testOptions()
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.opts.InducingPoints != 128 || a.opts.SparseSwitchAt != 512 {
		t.Fatalf("defaults not applied: inducing=%d switchAt=%d", a.opts.InducingPoints, a.opts.SparseSwitchAt)
	}
	if a.EngineActive() != "exact" {
		t.Fatalf("default engine %q, want exact", a.EngineActive())
	}
}

func TestSparseAgentRunsSparseFromStart(t *testing.T) {
	opts := testOptions()
	opts.Engine = EngineSparse
	opts.InducingPoints = 16
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.EngineActive() != "sparse" {
		t.Fatalf("engine %q, want sparse", a.EngineActive())
	}
	runPeriods(t, a, 0, 30)
	for i, g := range a.gps {
		if !g.IsSparse() {
			t.Fatalf("GP %d not sparse", i)
		}
		if g.InducingLen() > 16 {
			t.Fatalf("GP %d basis %d exceeds budget 16", i, g.InducingLen())
		}
	}
	if a.gps[gpDelay].Len() != 30 {
		t.Fatalf("history %d, want 30", a.gps[gpDelay].Len())
	}
}

func TestAutoSwitchConvertsAtThreshold(t *testing.T) {
	opts := testOptions()
	opts.Engine = EngineAuto
	opts.InducingPoints = 16
	opts.SparseSwitchAt = 6
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 6)
	if a.EngineActive() != "exact" {
		t.Fatalf("engine %q before threshold, want exact", a.EngineActive())
	}
	runPeriods(t, a, 6, 7)
	if a.EngineActive() != "sparse" {
		t.Fatalf("engine %q after threshold, want sparse", a.EngineActive())
	}
	// History must survive the conversion and keep growing.
	if a.gps[gpDelay].Len() != 7 {
		t.Fatalf("history %d after switch, want 7", a.gps[gpDelay].Len())
	}
	runPeriods(t, a, 7, 20)
	if a.gps[gpDelay].Len() != 20 {
		t.Fatalf("history %d, want 20", a.gps[gpDelay].Len())
	}
}

// TestAutoSwitchMatchesAlwaysSparse: conversion replays the retained
// history through the same admission path, so an auto agent after its
// switch and an always-sparse agent fed the same stream end bitwise
// identical — the property that makes the auto selector safe to default.
func TestAutoSwitchMatchesAlwaysSparse(t *testing.T) {
	const T = 24
	sparseOpts := testOptions()
	sparseOpts.Engine = EngineSparse
	sparseOpts.InducingPoints = 16
	alwaysSparse, err := NewAgent(sparseOpts)
	if err != nil {
		t.Fatal(err)
	}

	autoOpts := testOptions()
	autoOpts.Engine = EngineAuto
	autoOpts.InducingPoints = 16
	autoOpts.SparseSwitchAt = 10
	auto, err := NewAgent(autoOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Drive both on the same observation stream (selections may differ
	// while auto is still exact, so feed observations directly).
	for i := 0; i < T; i++ {
		ctx := scriptContext(i)
		x := auto.Grid()[i%len(auto.Grid())]
		k := scriptKPIs(i, x)
		if err := alwaysSparse.Observe(ctx, x, k); err != nil {
			t.Fatal(err)
		}
		if err := auto.Observe(ctx, x, k); err != nil {
			t.Fatal(err)
		}
	}
	if auto.EngineActive() != "sparse" {
		t.Fatal("auto agent did not switch")
	}
	for i := range auto.gps {
		s1 := auto.gps[i].Snapshot()
		s2 := alwaysSparse.gps[i].Snapshot()
		if !gpStatesEqual(s1, s2) {
			t.Fatalf("GP %d: auto-switched state differs from always-sparse", i)
		}
	}
}

// TestSparseSelectionRegret is the selection-level equivalence bound: on
// a replayed deterministic trace, the sparse agent's realized cost and
// constraint behaviour must track the exact agent's. This is the metric
// that matters — posterior deltas are allowed to be larger than the
// regret they induce, since the acquisition only needs the argmin to
// survive the approximation.
func TestSparseSelectionRegret(t *testing.T) {
	const T = 80
	run := func(engine EngineSelector) (costs []float64, violations int) {
		opts := testOptions()
		opts.Engine = engine
		opts.InducingPoints = 32
		a, err := NewAgent(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < T; i++ {
			ctx := scriptContext(i)
			x, _ := a.SelectControl(ctx)
			k := scriptKPIs(i, x)
			if err := a.Observe(ctx, x, k); err != nil {
				t.Fatal(err)
			}
			costs = append(costs, opts.Weights.Cost(k))
			if k.Delay > opts.Constraints.MaxDelay {
				violations++
			}
		}
		return costs, violations
	}
	exactCosts, exactViol := run(EngineExact)
	sparseCosts, sparseViol := run(EngineSparse)

	// Compare steady-state average cost over the back half of the trace.
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	me := mean(exactCosts[T/2:])
	ms := mean(sparseCosts[T/2:])
	if regret := (ms - me) / me; regret > 0.10 {
		t.Fatalf("sparse steady-state cost regret %.1f%% exceeds 10%% (exact %.4f, sparse %.4f)", regret*100, me, ms)
	}
	// The sparse engine must not buy its speed with safety: violation
	// counts stay in the same ballpark.
	if sparseViol > exactViol+T/10 {
		t.Fatalf("sparse violations %d vs exact %d", sparseViol, exactViol)
	}
}

func TestCheckpointRejectsEngineMismatch(t *testing.T) {
	save := func(opts Options, periods int) []byte {
		a, err := NewAgent(opts)
		if err != nil {
			t.Fatal(err)
		}
		runPeriods(t, a, 0, periods)
		var buf bytes.Buffer
		if err := a.SaveCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	sparseOpts := testOptions()
	sparseOpts.Engine = EngineSparse
	sparseOpts.InducingPoints = 16
	sparseCkpt := save(sparseOpts, 4)

	exactCkpt := save(testOptions(), 4)

	// Selector mismatch, both directions.
	if _, err := LoadCheckpoint(bytes.NewReader(sparseCkpt), testOptions()); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("sparse checkpoint into exact agent: %v", err)
	}
	if _, err := LoadCheckpoint(bytes.NewReader(exactCkpt), sparseOpts); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("exact checkpoint into sparse agent: %v", err)
	}
	// Same selector, different basis budget.
	other := sparseOpts
	other.InducingPoints = 32
	if _, err := LoadCheckpoint(bytes.NewReader(sparseCkpt), other); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("differing inducing budgets: %v", err)
	}
	// Auto selector with a different switch threshold.
	autoOpts := testOptions()
	autoOpts.Engine = EngineAuto
	autoOpts.SparseSwitchAt = 50
	autoCkpt := save(autoOpts, 4)
	otherAuto := autoOpts
	otherAuto.SparseSwitchAt = 60
	if _, err := LoadCheckpoint(bytes.NewReader(autoCkpt), otherAuto); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("differing switch thresholds: %v", err)
	}
	// Matching configuration restores fine.
	if _, err := LoadCheckpoint(bytes.NewReader(sparseCkpt), sparseOpts); err != nil {
		t.Fatalf("matching sparse restore failed: %v", err)
	}
}

func TestReadCheckpointInfoReportsEngine(t *testing.T) {
	opts := testOptions()
	opts.Engine = EngineSparse
	opts.InducingPoints = 16
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 8)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadCheckpointInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Engine != "sparse" || info.InducingPoints != 16 {
		t.Fatalf("info engine=%q inducing=%d, want sparse/16", info.Engine, info.InducingPoints)
	}
	if info.Periods != 8 {
		t.Fatalf("info periods %d, want 8", info.Periods)
	}
	for _, obj := range info.Objectives {
		if obj.Engine != "sparse" {
			t.Fatalf("objective %s engine %q, want sparse", obj.Name, obj.Engine)
		}
		if obj.InducingPoints <= 0 || obj.InducingPoints > 16 {
			t.Fatalf("objective %s inducing %d outside (0,16]", obj.Name, obj.InducingPoints)
		}
		if obj.Observations != 8 {
			t.Fatalf("objective %s observations %d, want 8", obj.Name, obj.Observations)
		}
	}
	if info.SparseSwitchAt != 512 {
		t.Fatalf("info switchAt %d, want resolved default 512", info.SparseSwitchAt)
	}
}
