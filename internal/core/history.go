package core

import (
	"fmt"
	"math"
)

// HistorySample is one training observation in the agent's GP working
// units: the normalized joint (context, control) feature row plus the
// normalized targets of the three objective GPs. Histories are exported
// by Agent.History and replayed by Agent.SeedHistory — the currency of
// cross-cell observation pooling (a cold cell warm-started from its
// neighbors' histories, see internal/fleet).
type HistorySample struct {
	// Features is the normalized joint feature row z = (c, x), of length
	// ContextDims + ControlDims.
	Features []float64
	// Cost, Delay, MAP are the targets the cost, delay, and mAP GPs were
	// trained on, in normalized working units (Options.Norm applied).
	Cost, Delay, MAP float64
}

// History exports the agent's retained training history, oldest first.
// max > 0 caps the result to the most recent max samples; max <= 0
// exports everything the GPs retain (the full run under the sparse
// engine, the sliding window under a bounded exact engine).
//
// Decomposed-cost agents return nil: there the cost GP is never trained
// and the per-sample power targets are not representable in a
// HistorySample, so an exported history would be unreplayable.
func (a *Agent) History(max int) []HistorySample {
	if a.opts.DecomposedCost {
		return nil
	}
	xs, costs := a.gps[gpCost].Training(max)
	_, delays := a.gps[gpDelay].Training(max)
	_, maps := a.gps[gpMAP].Training(max)
	n := len(costs)
	if len(delays) < n {
		n = len(delays)
	}
	if len(maps) < n {
		n = len(maps)
	}
	if n == 0 {
		return nil
	}
	const dims = ContextDims + ControlDims
	// The three GPs see identical add sequences (Observe feeds them in
	// lockstep), so their retained rows align; a partial Observe that
	// errored mid-append can leave one GP a row ahead, in which case the
	// aligned common tail is exported.
	out := make([]HistorySample, n)
	xOff := len(xs) - n*dims
	for i := 0; i < n; i++ {
		out[i] = HistorySample{
			Features: append([]float64(nil), xs[xOff+i*dims:xOff+(i+1)*dims]...),
			Cost:     costs[len(costs)-n+i],
			Delay:    delays[len(delays)-n+i],
			MAP:      maps[len(maps)-n+i],
		}
	}
	return out
}

// SeedHistory replays a pooled history into the agent's GPs, exactly as
// if the agent had lived those periods itself: each sample runs the same
// engine-switch check and per-objective appends Observe performs, and the
// period counter advances. A warm-started agent is therefore bitwise
// identical — selections, posteriors, checkpoints — to a fresh agent that
// observed the pooled history directly; only process-local telemetry
// (which counts lived periods, not seeded ones) differs.
//
// Samples must be in the agent's own working units: features normalized
// by the standard Context/Control feature maps and targets by the same
// Options.Norm the donors ran under — pooling across agents with
// different normalizations or kernels would graft one model's data onto
// another's covariance, which is why fleet warm starts derive every cell
// agent from one Options template.
//
// Decomposed-cost agents reject seeding (their cost GP is not trained on
// scalar costs). On a validation error the agent is unchanged; an append
// error mid-replay leaves the samples already replayed in place, like a
// mid-run Observe failure would.
func (a *Agent) SeedHistory(samples []HistorySample) error {
	if a.opts.DecomposedCost {
		return fmt.Errorf("core: cannot seed a decomposed-cost agent from a pooled history")
	}
	const dims = ContextDims + ControlDims
	for i, s := range samples {
		if len(s.Features) != dims {
			return fmt.Errorf("core: seed sample %d has %d features, want %d", i, len(s.Features), dims)
		}
		for _, v := range s.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: seed sample %d has non-finite feature %v", i, v)
			}
		}
		for _, v := range []float64{s.Cost, s.Delay, s.MAP} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: seed sample %d has non-finite target %v", i, v)
			}
		}
	}
	for i, s := range samples {
		// Mirror Observe's engine-auto conversion so a seeded run crosses
		// SparseSwitchAt at the same period a lived run would.
		if a.opts.Engine == EngineAuto && a.t >= a.opts.SparseSwitchAt && !a.gps[gpDelay].IsSparse() {
			if err := a.switchToSparse(); err != nil {
				return err
			}
		}
		if err := a.gps[gpCost].Add(s.Features, s.Cost); err != nil {
			return fmt.Errorf("core: seed sample %d: cost GP: %w", i, err)
		}
		if err := a.gps[gpDelay].Add(s.Features, s.Delay); err != nil {
			return fmt.Errorf("core: seed sample %d: delay GP: %w", i, err)
		}
		if err := a.gps[gpMAP].Add(s.Features, s.MAP); err != nil {
			return fmt.Errorf("core: seed sample %d: mAP GP: %w", i, err)
		}
		a.t++
	}
	a.met.trainSize.Set(float64(a.gps[gpDelay].Len()))
	return nil
}

// MaxObservations reports the agent's per-GP retained-history bound
// (Options.MaxObservations; 0 = unlimited). Warm starts cap pooled
// histories to it so seeding never exceeds what the agent would retain.
func (a *Agent) MaxObservations() int { return a.opts.MaxObservations }
