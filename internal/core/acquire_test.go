package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

func f64bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func controlBitsEq(a, b Control) bool {
	x, y := controlDimValues(a), controlDimValues(b)
	for d := range x {
		if !f64bitsEq(x[d], y[d]) {
			return false
		}
	}
	return true
}

// acqKPIs extends the deterministic checkpoint-test environment with a
// split-layer response, so grids carrying the fifth dimension don't
// collapse into posterior ties along it: pushing inference onto the
// device raises delay, costs a little accuracy (early-exit style), and
// saves radio power.
func acqKPIs(t int, x Control) KPIs {
	k := scriptKPIs(t, x)
	k.Delay += 0.12 * x.SplitLayer
	k.MAP -= 0.015 * x.SplitLayer
	k.BSPower -= 0.8 * x.SplitLayer
	return k
}

// runAcqPeriods drives an agent through [from, to) scripted periods with
// the split-aware environment, observing its own selections.
func runAcqPeriods(t *testing.T, a *Agent, from, to int) []stepResult {
	t.Helper()
	out := make([]stepResult, 0, to-from)
	for i := from; i < to; i++ {
		ctx := scriptContext(i)
		x, info := a.SelectControl(ctx)
		if err := a.Observe(ctx, x, acqKPIs(i, x)); err != nil {
			t.Fatalf("period %d: Observe: %v", i, err)
		}
		out = append(out, stepResult{x: x, info: info})
	}
	return out
}

// TestGridNonUniformProperties pins the per-dimension-level-count grid
// algebra the adaptive engine navigates by index arithmetic alone:
// At(i) ≡ Enumerate()[i] bitwise, Index inverts Enumerate, Nearest lands
// bitwise on the Enumerate entry at Index(x), and LevelValues agrees with
// both in length and endpoints.
func TestGridNonUniformProperties(t *testing.T) {
	specs := []GridSpec{
		{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1,
			LevelsPerDim: [ControlDims]int{3, 31, 5, 11, 1}},
		{Levels: 4, MinResolution: 0.15, MinAirtime: 0.2,
			LevelsPerDim: [ControlDims]int{3, 5, 2, 4, 3}},
		{Levels: 2, MinResolution: 0.3, MinAirtime: 0.4,
			LevelsPerDim: [ControlDims]int{1, 1, 1, 1, 8}},
		{Levels: 11, MinResolution: 0.1, MinAirtime: 0.1}, // the paper's grid
	}
	for si, g := range specs {
		t.Run(fmt.Sprintf("spec=%d", si), func(t *testing.T) {
			levels, err := g.LevelValues()
			if err != nil {
				t.Fatal(err)
			}
			wantSize := 1
			for d := 0; d < ControlDims; d++ {
				wantSize *= len(levels[d])
				if len(levels[d]) != g.dimLevels(d) {
					t.Fatalf("dim %d: %d level values, want %d", d, len(levels[d]), g.dimLevels(d))
				}
				if !f64bitsEq(levels[d][0], g.dimLow(d)) {
					t.Fatalf("dim %d: low endpoint %v, want %v", d, levels[d][0], g.dimLow(d))
				}
				if n := len(levels[d]); n > 1 && !f64bitsEq(levels[d][n-1], 1) {
					t.Fatalf("dim %d: high endpoint %v, want 1", d, levels[d][n-1])
				}
			}
			if g.Size() != wantSize {
				t.Fatalf("Size() = %d, want %d", g.Size(), wantSize)
			}
			enum, err := g.Enumerate()
			if err != nil {
				t.Fatal(err)
			}
			if len(enum) != wantSize {
				t.Fatalf("Enumerate returned %d controls, want %d", len(enum), wantSize)
			}
			for i, x := range enum {
				if at := g.At(i); !controlBitsEq(at, x) {
					t.Fatalf("At(%d) = %+v, Enumerate[%d] = %+v", i, at, i, x)
				}
				if gi := g.Index(x); gi != i {
					t.Fatalf("Index(Enumerate[%d]) = %d", i, gi)
				}
				if nx := g.Nearest(x); !controlBitsEq(nx, x) {
					t.Fatalf("Nearest of grid point %d moved: %+v -> %+v", i, x, nx)
				}
			}
			// Off-grid controls: Nearest must return exactly the Enumerate
			// entry at Index(x), bitwise — including out-of-range inputs.
			rng := rand.New(rand.NewSource(int64(41 + si)))
			for trial := 0; trial < 200; trial++ {
				x := Control{
					Resolution: -0.3 + 1.8*rng.Float64(),
					Airtime:    -0.3 + 1.8*rng.Float64(),
					GPUSpeed:   -0.3 + 1.8*rng.Float64(),
					MCS:        -0.3 + 1.8*rng.Float64(),
					SplitLayer: -0.3 + 1.8*rng.Float64(),
				}
				gi := g.Index(x)
				if gi < 0 || gi >= len(enum) {
					t.Fatalf("Index(%+v) = %d out of range", x, gi)
				}
				if nx := g.Nearest(x); !controlBitsEq(nx, enum[gi]) {
					t.Fatalf("Nearest(%+v) = %+v, Enumerate[Index] = %+v", x, nx, enum[gi])
				}
			}
		})
	}
}

// TestAcqEquivSmallGrids is the exactness half of the acq-equiv gate: on
// every grid at or below acqAutoThreshold a forced-adaptive agent must
// reproduce the exhaustive engine's trajectory bitwise — every selected
// control, LCB, posterior, safe-set size, and seed flag — across engines,
// cost decompositions, worker counts, eviction, and the safe-set toggle.
func TestAcqEquivSmallGrids(t *testing.T) {
	const T = 18
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"default", func(o *Options) {}},
		{"non-uniform levels", func(o *Options) {
			o.Grid.LevelsPerDim = [ControlDims]int{3, 5, 2, 4, 1}
		}},
		{"split dimension", func(o *Options) {
			o.Grid.LevelsPerDim = [ControlDims]int{3, 4, 3, 2, 3}
		}},
		{"decomposed", func(o *Options) { o.DecomposedCost = true }},
		{"no safe set", func(o *Options) { o.DisableSafeSet = true }},
		{"workers=3", func(o *Options) { o.InferenceWorkers = 3 }},
		{"evicting", func(o *Options) { o.MaxObservations = 8 }},
		{"sparse", func(o *Options) {
			o.Engine = EngineSparse
			o.InducingPoints = 16
		}},
		{"generic sweep", func(o *Options) { o.KernelFactory = wrappedFactory }},
		{"paper grid", func(o *Options) { o.Grid.Levels = 11 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			optsE := testOptions()
			tc.mut(&optsE)
			optsE.Acquisition = AcqExhaustive
			optsA := optsE
			optsA.Acquisition = AcqAdaptive

			size := optsE.Grid.Size()
			periods := T
			if size > 5000 {
				periods = 8 // the 11⁴ case: keep the double sweep cheap
			}
			aE, err := NewAgent(optsE)
			if err != nil {
				t.Fatal(err)
			}
			aA, err := NewAgent(optsA)
			if err != nil {
				t.Fatal(err)
			}
			stepsE := runAcqPeriods(t, aE, 0, periods)
			stepsA := runAcqPeriods(t, aA, 0, periods)
			assertSameSteps(t, stepsA, stepsE)
			for i := range stepsA {
				if !controlBitsEq(stepsA[i].x, stepsE[i].x) {
					t.Fatalf("step %d: control bits diverged", i)
				}
				if !stepsA[i].info.Adaptive || stepsE[i].info.Adaptive {
					t.Fatalf("step %d: Adaptive flags = %v/%v", i,
						stepsA[i].info.Adaptive, stepsE[i].info.Adaptive)
				}
				// Small-grid adaptive mode is full coverage by contract.
				if stepsA[i].info.CandidatesEvaluated != size {
					t.Fatalf("step %d: adaptive evaluated %d of %d candidates",
						i, stepsA[i].info.CandidatesEvaluated, size)
				}
			}
		})
	}
}

// TestAcqEquivRandomGrids fuzzes the same bitwise contract over randomized
// per-dimension level counts (split dimension included), engines, and cost
// decompositions.
func TestAcqEquivRandomGrids(t *testing.T) {
	const T = 12
	rng := rand.New(rand.NewSource(9173))
	for trial := 0; trial < 6; trial++ {
		opts := testOptions()
		opts.Grid.MinResolution = 0.1 + 0.05*float64(rng.Intn(4))
		opts.Grid.MinAirtime = 0.1 + 0.05*float64(rng.Intn(4))
		opts.Grid.LevelsPerDim = [ControlDims]int{
			2 + rng.Intn(5), 2 + rng.Intn(5), 1 + rng.Intn(5),
			1 + rng.Intn(5), 1 + rng.Intn(4),
		}
		if trial%2 == 1 {
			opts.Engine = EngineSparse
			opts.InducingPoints = 16
		}
		if trial%3 == 2 {
			opts.DecomposedCost = true
		}
		name := fmt.Sprintf("trial=%d/levels=%v", trial, opts.Grid.LevelsPerDim)
		t.Run(name, func(t *testing.T) {
			optsE := opts
			optsE.Acquisition = AcqExhaustive
			optsA := opts
			optsA.Acquisition = AcqAdaptive
			aE, err := NewAgent(optsE)
			if err != nil {
				t.Fatal(err)
			}
			aA, err := NewAgent(optsA)
			if err != nil {
				t.Fatal(err)
			}
			assertSameSteps(t, runAcqPeriods(t, aA, 0, T), runAcqPeriods(t, aE, 0, T))
		})
	}
}

// largeAcqGrid is above acqAutoThreshold (11·11·11·11·3 = 43 923) yet
// still small enough for the exhaustive oracle to sweep in a test.
func largeAcqGrid() GridSpec {
	return GridSpec{Levels: 11, MinResolution: 0.1, MinAirtime: 0.1,
		LevelsPerDim: [ControlDims]int{11, 11, 11, 11, 3}}
}

// TestAcqAdaptiveLargeGridRegret is the budgeted half of the acq-equiv
// gate: above acqAutoThreshold the adaptive engine must stay within its
// evaluation budget (a strict fraction of the grid) while holding bounded
// regret against the exhaustive optimum computed on an identically
// trained twin. Both agents observe the oracle's pick, so each period is
// a pure acquisition comparison on bitwise-equal posteriors.
func TestAcqAdaptiveLargeGridRegret(t *testing.T) {
	const T = 24
	opts := testOptions()
	opts.Grid = largeAcqGrid()
	optsE := opts
	optsE.Acquisition = AcqExhaustive
	optsA := opts
	optsA.Acquisition = AcqAuto // must resolve to adaptive above the threshold

	aE, err := NewAgent(optsE)
	if err != nil {
		t.Fatal(err)
	}
	aA, err := NewAgent(optsA)
	if err != nil {
		t.Fatal(err)
	}
	size := opts.Grid.Size()
	budget := minEvalBudget
	if s := size / maxEvalDivisor; s > budget {
		budget = s
	}

	var sumRegret, maxRegret float64
	scored, exact := 0, 0
	for i := 0; i < T; i++ {
		ctx := scriptContext(i)
		xE, infoE := aE.SelectControl(ctx)
		xA, infoA := aA.SelectControl(ctx)
		if !infoA.Adaptive {
			t.Fatal("auto agent did not resolve to the adaptive engine")
		}
		if infoA.CandidatesEvaluated <= 0 || infoA.CandidatesEvaluated > budget {
			t.Fatalf("period %d: evaluated %d candidates, budget %d", i, infoA.CandidatesEvaluated, budget)
		}
		if infoA.CandidatesEvaluated >= size/2 {
			t.Fatalf("period %d: evaluated %d of %d — not a budgeted search", i, infoA.CandidatesEvaluated, size)
		}
		if !infoE.FromSeed && !infoA.FromSeed {
			// Score the adaptive pick under the oracle's posterior buffers
			// (identical GP state): regret is its LCB gap to the optimum.
			gi := opts.Grid.Index(xA)
			lcbA := aE.mu[gpCost][gi] - aE.opts.AcqBeta*aE.sigma[gpCost][gi]
			regret := lcbA - infoE.LCB
			if regret < -1e-9 {
				t.Fatalf("period %d: adaptive LCB %v below exhaustive optimum %v", i, lcbA, infoE.LCB)
			}
			sumRegret += regret
			if regret > maxRegret {
				maxRegret = regret
			}
			scored++
			if controlBitsEq(xA, xE) {
				exact++
			}
		}
		k := acqKPIs(i, xE)
		if err := aE.Observe(ctx, xE, k); err != nil {
			t.Fatal(err)
		}
		if err := aA.Observe(ctx, xE, k); err != nil {
			t.Fatal(err)
		}
	}
	if scored == 0 {
		t.Fatal("no period left seed fallback; regret never scored")
	}
	mean := sumRegret / float64(scored)
	t.Logf("scored %d periods: exact %d, mean regret %.4g, max regret %.4g", scored, exact, mean, maxRegret)
	if mean > 0.1 {
		t.Errorf("mean regret %.4g exceeds 0.1 (normalized cost units)", mean)
	}
	if maxRegret > 1.0 {
		t.Errorf("max regret %.4g exceeds 1.0", maxRegret)
	}
	if exact*2 < scored {
		t.Errorf("adaptive matched the exhaustive argmax on only %d/%d scored periods", exact, scored)
	}
}

// TestAcqAutoResolution pins AcqAuto's engine choice and the option
// validation around it.
func TestAcqAutoResolution(t *testing.T) {
	small := testOptions()
	small.Acquisition = AcqAuto
	aS, err := NewAgent(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, info := aS.SelectControl(scriptContext(0)); info.Adaptive {
		t.Error("auto on a small grid must stay exhaustive")
	}

	large := testOptions()
	large.Grid = largeAcqGrid()
	aL, err := NewAgent(large) // zero value: AcqAuto
	if err != nil {
		t.Fatal(err)
	}
	if _, info := aL.SelectControl(scriptContext(0)); !info.Adaptive {
		t.Error("auto above acqAutoThreshold must go adaptive")
	}

	// SafeOpt has no adaptive implementation: auto falls back to
	// exhaustive even on large grids, and forcing the pair is rejected.
	safeopt := testOptions()
	safeopt.Grid = largeAcqGrid()
	safeopt.Rule = AcquisitionSafeOpt
	aO, err := NewAgent(safeopt)
	if err != nil {
		t.Fatal(err)
	}
	if _, info := aO.SelectControl(scriptContext(0)); info.Adaptive {
		t.Error("safeopt must not run the adaptive engine")
	}
	forced := testOptions()
	forced.Rule = AcquisitionSafeOpt
	forced.Acquisition = AcqAdaptive
	if _, err := NewAgent(forced); err == nil {
		t.Error("AcqAdaptive with AcquisitionSafeOpt should be rejected")
	}
	bad := testOptions()
	bad.Acquisition = AcquisitionMode(99)
	if _, err := NewAgent(bad); err == nil {
		t.Error("out-of-range AcquisitionMode should be rejected")
	}
}

// TestAcqAdaptiveCheckpointRestore extends the checkpoint tentpole to the
// adaptive engine: a forced-adaptive run on a small grid and an auto
// (budgeted) run on a large grid must both resume bitwise after a
// save/restore in the middle.
func TestAcqAdaptiveCheckpointRestore(t *testing.T) {
	cases := []struct {
		name    string
		periods int
		mut     func(*Options)
	}{
		{"forced small", 26, func(o *Options) { o.Acquisition = AcqAdaptive }},
		{"forced split grid", 18, func(o *Options) {
			o.Acquisition = AcqAdaptive
			o.Grid.LevelsPerDim = [ControlDims]int{3, 4, 3, 2, 3}
		}},
		{"auto large", 10, func(o *Options) { o.Grid = largeAcqGrid() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := testOptions()
			tc.mut(&opts)
			straight, err := NewAgent(opts)
			if err != nil {
				t.Fatal(err)
			}
			full := runAcqPeriods(t, straight, 0, tc.periods)

			interrupted, err := NewAgent(opts)
			if err != nil {
				t.Fatal(err)
			}
			half := tc.periods / 2
			assertSameSteps(t, runAcqPeriods(t, interrupted, 0, half), full[:half])
			var buf bytes.Buffer
			if err := interrupted.SaveCheckpoint(&buf); err != nil {
				t.Fatalf("SaveCheckpoint: %v", err)
			}
			restored, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), opts)
			if err != nil {
				t.Fatalf("LoadCheckpoint: %v", err)
			}
			assertSameSteps(t, runAcqPeriods(t, restored, half, tc.periods), full[half:])
		})
	}
}

// TestAcqCheckpointMismatch covers the v3 fixed-config additions: the
// acquisition mode and the per-dimension level counts both ride in META
// and a restore under a different value must be refused.
func TestAcqCheckpointMismatch(t *testing.T) {
	opts := testOptions()
	opts.Grid.LevelsPerDim = [ControlDims]int{3, 4, 2, 3, 2}
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runAcqPeriods(t, a, 0, 4)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"acquisition mode", func(o *Options) { o.Acquisition = AcqAdaptive }},
		{"explicit exhaustive", func(o *Options) { o.Acquisition = AcqExhaustive }},
		{"levels per dim", func(o *Options) {
			o.Grid.LevelsPerDim = [ControlDims]int{3, 4, 2, 3, 4}
		}},
		{"split collapsed", func(o *Options) {
			o.Grid.LevelsPerDim = [ControlDims]int{3, 4, 2, 3, 1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := opts
			tc.mut(&bad)
			if _, err := LoadCheckpoint(bytes.NewReader(data), bad); !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
			}
		})
	}

	// A seed with a split component must round-trip through the widened
	// v3 seed record.
	seeded := testOptions()
	seeded.Grid.LevelsPerDim = [ControlDims]int{3, 3, 3, 3, 3}
	seeded.SafeSeed = []Control{{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1, SplitLayer: 0.5}}
	b, err := NewAgent(seeded)
	if err != nil {
		t.Fatal(err)
	}
	runAcqPeriods(t, b, 0, 3)
	buf.Reset()
	if err := b.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), seeded); err != nil {
		t.Fatalf("seed with split component did not round-trip: %v", err)
	}
	dropped := seeded
	dropped.SafeSeed = []Control{{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1}}
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), dropped); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("seed split component ignored on restore: err = %v", err)
	}
}

// TestAcqCheckpointInfo checks that ReadCheckpointInfo surfaces the
// configured acquisition mode without a full restore.
func TestAcqCheckpointInfo(t *testing.T) {
	opts := testOptions()
	opts.Acquisition = AcqAdaptive
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runAcqPeriods(t, a, 0, 3)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadCheckpointInfo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Acquisition != "adaptive" {
		t.Errorf("Acquisition = %q, want %q", info.Acquisition, "adaptive")
	}
}

// TestAcqTelemetry pins the adaptive engine's counters: candidates
// evaluated, refinement rounds, the fallback counter's presence, and the
// mode-labeled selection-latency histogram.
func TestAcqTelemetry(t *testing.T) {
	opts := testOptions()
	opts.Acquisition = AcqAdaptive
	opts.Telemetry = telemetry.NewRegistry()
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	const T = 5
	runAcqPeriods(t, a, 0, T)
	snap := opts.Telemetry.Snapshot()
	wantCand := uint64(T * opts.Grid.Size()) // small-grid adaptive = full coverage
	if got := snap.Counters["edgebol_acq_candidates_evaluated"]; got != wantCand {
		t.Errorf("edgebol_acq_candidates_evaluated = %d, want %d", got, wantCand)
	}
	if got, ok := snap.Counters["edgebol_acq_refine_rounds"]; !ok || got != 0 {
		t.Errorf("edgebol_acq_refine_rounds = %d (present=%v), want 0 on full coverage", got, ok)
	}
	if _, ok := snap.Counters["edgebol_acq_fallback_total"]; !ok {
		t.Error("edgebol_acq_fallback_total not registered")
	}
	if h, ok := snap.Histograms[`edgebol_acq_select_seconds{mode="adaptive"}`]; !ok || h.Count != T {
		t.Errorf("adaptive latency histogram = %+v (present=%v), want count %d", h, ok, T)
	}

	exh := testOptions()
	exh.Telemetry = telemetry.NewRegistry()
	b, err := NewAgent(exh)
	if err != nil {
		t.Fatal(err)
	}
	runAcqPeriods(t, b, 0, 3)
	snap = exh.Telemetry.Snapshot()
	if got := snap.Counters["edgebol_acq_candidates_evaluated"]; got != uint64(3*exh.Grid.Size()) {
		t.Errorf("exhaustive candidates counter = %d, want %d", got, 3*exh.Grid.Size())
	}
	if h, ok := snap.Histograms[`edgebol_acq_select_seconds{mode="exhaustive"}`]; !ok || h.Count != 3 {
		t.Errorf("exhaustive latency histogram = %+v (present=%v), want count 3", h, ok)
	}
}
