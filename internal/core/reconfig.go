package core

import "fmt"

// ErrInvalidReconfig reports a rejected runtime reconfiguration
// (SetConstraints / SetWeights): the offending field, the value the
// caller passed, and why it was refused. The agent is unchanged when one
// is returned. Match with errors.As:
//
//	var reconfigErr *core.ErrInvalidReconfig
//	if errors.As(err, &reconfigErr) { log.Printf("bad %s", reconfigErr.Field) }
type ErrInvalidReconfig struct {
	// Field names the rejected option in Options syntax, e.g.
	// "Constraints.MaxDelay" or "Weights.Delta1".
	Field string
	// Value is the rejected value as passed by the caller.
	Value any
	// Reason states the violated invariant.
	Reason string
}

func (e *ErrInvalidReconfig) Error() string {
	return fmt.Sprintf("core: invalid reconfiguration of %s (%v): %s", e.Field, e.Value, e.Reason)
}
