package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/gp"
	"repro/internal/telemetry"
)

// scriptContext and scriptKPIs form a fully deterministic environment: no
// randomness anywhere, so two agents fed the same period indices see
// bit-identical inputs and any divergence is the checkpoint's fault.
func scriptContext(t int) Context {
	return Context{NumUsers: 1 + t%5, MeanCQI: 7 + float64(t%6), VarCQI: float64(t % 4)}
}

func scriptKPIs(t int, x Control) KPIs {
	phase := float64(t%7) / 7
	return KPIs{
		Delay:       0.08 + 0.35*x.Resolution/(0.25+x.GPUSpeed) + 0.05*phase,
		GPUDelay:    0.02 + 0.1*x.Resolution/(0.25+x.GPUSpeed),
		MAP:         0.35 + 0.5*x.Resolution*math.Sqrt(x.Airtime) - 0.02*phase,
		ServerPower: 80 + 110*x.GPUSpeed + 25*x.Resolution,
		BSPower:     4.2 + 3.1*x.Airtime + 0.4*x.MCS,
	}
}

// stepResult captures everything observable about one period that must be
// bitwise identical across a checkpoint/restore boundary.
type stepResult struct {
	x    Control
	info SelectionInfo
}

func runPeriods(t *testing.T, a *Agent, from, to int) []stepResult {
	t.Helper()
	out := make([]stepResult, 0, to-from)
	for i := from; i < to; i++ {
		ctx := scriptContext(i)
		x, info := a.SelectControl(ctx)
		if err := a.Observe(ctx, x, scriptKPIs(i, x)); err != nil {
			t.Fatalf("period %d: Observe: %v", i, err)
		}
		out = append(out, stepResult{x: x, info: info})
	}
	return out
}

func assertSameSteps(t *testing.T, got, want []stepResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d steps, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.x != w.x {
			t.Fatalf("step %d: control %+v, want %+v", i, g.x, w.x)
		}
		// Bitwise posterior comparison: any float drift is a failure.
		if g.info.LCB != w.info.LCB ||
			g.info.Cost != w.info.Cost ||
			g.info.Delay != w.info.Delay ||
			g.info.MAP != w.info.MAP ||
			g.info.SafeSetSize != w.info.SafeSetSize ||
			g.info.FromSeed != w.info.FromSeed {
			t.Fatalf("step %d: info diverged:\n got %+v\nwant %+v", i, g.info, w.info)
		}
	}
}

// wrappedKernel hides a package kernel behind a foreign type, forcing the
// agent off the SweepPlan fast path onto the generic batched sweep and
// exercising the %T kernel-name path of the snapshot format.
type wrappedKernel struct{ gp.Kernel }

func wrappedFactory(ls []float64) gp.Kernel {
	return &wrappedKernel{gp.Matern32Factory(ls)}
}

func testOptions() Options {
	return Options{
		Grid:        GridSpec{Levels: 3, MinResolution: 0.2, MinAirtime: 0.2},
		Weights:     CostWeights{Delta1: 1e-3, Delta2: 1e-2},
		Constraints: Constraints{MaxDelay: 0.7, MinMAP: 0.3},
	}
}

// TestCheckpointRestoreEquivalence is the tentpole guarantee: run T
// periods uninterrupted; separately run T/2 periods, checkpoint, restore
// into a fresh agent, and run the remaining T/2. The restored agent's
// every selection and posterior must be bitwise identical to the
// uninterrupted run — across worker counts, with sliding-window
// evictions, with decomposed power GPs, and on the generic (plan-less)
// sweep path.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	const T = 26
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"default", func(o *Options) {}},
		{"workers=2", func(o *Options) { o.InferenceWorkers = 2 }},
		{"workers=auto", func(o *Options) { o.InferenceWorkers = 0 }},
		{"evicting", func(o *Options) { o.MaxObservations = 8 }},
		{"decomposed", func(o *Options) { o.DecomposedCost = true }},
		{"decomposed evicting", func(o *Options) {
			o.DecomposedCost = true
			o.MaxObservations = 8
		}},
		{"generic sweep", func(o *Options) { o.KernelFactory = wrappedFactory }},
		{"safeopt", func(o *Options) { o.Rule = AcquisitionSafeOpt }},
		{"sparse", func(o *Options) {
			o.Engine = EngineSparse
			o.InducingPoints = 16
		}},
		{"sparse decomposed", func(o *Options) {
			o.Engine = EngineSparse
			o.InducingPoints = 16
			o.DecomposedCost = true
		}},
		// Auto with the switch before the checkpoint: the saved state is
		// sparse and LoadCheckpoint must convert the fresh agent before
		// restoring.
		{"auto post-switch", func(o *Options) {
			o.Engine = EngineAuto
			o.InducingPoints = 16
			o.SparseSwitchAt = 8
		}},
		// Auto with the switch after the checkpoint: the saved state is
		// exact and the restored run must convert at the same period the
		// uninterrupted run did.
		{"auto pre-switch", func(o *Options) {
			o.Engine = EngineAuto
			o.InducingPoints = 16
			o.SparseSwitchAt = 20
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := testOptions()
			tc.mut(&opts)

			straight, err := NewAgent(opts)
			if err != nil {
				t.Fatal(err)
			}
			full := runPeriods(t, straight, 0, T)

			interrupted, err := NewAgent(opts)
			if err != nil {
				t.Fatal(err)
			}
			firstHalf := runPeriods(t, interrupted, 0, T/2)
			assertSameSteps(t, firstHalf, full[:T/2])

			var buf bytes.Buffer
			if err := interrupted.SaveCheckpoint(&buf); err != nil {
				t.Fatalf("SaveCheckpoint: %v", err)
			}
			restored, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), opts)
			if err != nil {
				t.Fatalf("LoadCheckpoint: %v", err)
			}
			if restored.Observations() != T/2 {
				t.Fatalf("restored period counter %d, want %d", restored.Observations(), T/2)
			}
			secondHalf := runPeriods(t, restored, T/2, T)
			assertSameSteps(t, secondHalf, full[T/2:])

			// The per-GP internals must land bitwise where the straight
			// run's did.
			for i := range straight.gps {
				s1 := straight.gps[i].Snapshot()
				s2 := restored.gps[i].Snapshot()
				if !gpStatesEqual(s1, s2) {
					t.Fatalf("final GP %d state diverged", i)
				}
			}
		})
	}
}

func gpStatesEqual(a, b gp.State) bool {
	if a.Kernel != b.Kernel || a.NoiseVar != b.NoiseVar || a.MaxObs != b.MaxObs ||
		a.Dim != b.Dim || a.Jitter != b.Jitter || a.Evictions != b.Evictions {
		return false
	}
	if a.Engine != b.Engine || a.MaxInducing != b.MaxInducing ||
		a.SumYY != b.SumYY || a.KmmJitter != b.KmmJitter || a.SigJitter != b.SigJitter ||
		a.Inserts != b.Inserts || a.Swaps != b.Swaps || a.SinceRefactor != b.SinceRefactor {
		return false
	}
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Xs, b.Xs) && eq(a.Ys, b.Ys) && eq(a.Factor, b.Factor) && eq(a.LengthScales, b.LengthScales) &&
		eq(a.Zs, b.Zs) && eq(a.Kmm, b.Kmm) && eq(a.A, b.A) && eq(a.B, b.B) &&
		eq(a.KmmFactor, b.KmmFactor) && eq(a.SigFactor, b.SigFactor)
}

// TestCheckpointSurvivesRuntimeReconfig checks that runtime-mutable state
// (weights, constraints) rides in the checkpoint, not the caller Options.
func TestCheckpointSurvivesRuntimeReconfig(t *testing.T) {
	opts := testOptions()
	opts.DecomposedCost = true
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 6)
	if err := a.SetWeights(CostWeights{Delta1: 5e-3, Delta2: 2e-2}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetConstraints(Constraints{MaxDelay: 0.5, MinMAP: 0.4}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore with the ORIGINAL options: the checkpointed runtime values
	// must win.
	b, err := LoadCheckpoint(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Weights() != (CostWeights{Delta1: 5e-3, Delta2: 2e-2}) {
		t.Fatalf("restored weights %+v", b.Weights())
	}
	if b.Constraints() != (Constraints{MaxDelay: 0.5, MinMAP: 0.4}) {
		t.Fatalf("restored constraints %+v", b.Constraints())
	}
}

func TestLoadCheckpointRejectsMismatchedConfig(t *testing.T) {
	opts := testOptions()
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 4)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"grid", func(o *Options) { o.Grid.Levels = 4 }},
		{"safe beta", func(o *Options) { o.SafeBeta = 3 }},
		{"acq beta", func(o *Options) { o.AcqBeta = 1.5 }},
		{"acquisition", func(o *Options) { o.Rule = AcquisitionSafeOpt }},
		{"safe set toggle", func(o *Options) { o.DisableSafeSet = true }},
		{"decomposed toggle", func(o *Options) { o.DecomposedCost = true }},
		{"normalization", func(o *Options) { o.Norm = DefaultNormalization(CostWeights{Delta1: 1, Delta2: 1}) }},
		{"safe seed", func(o *Options) {
			o.SafeSeed = []Control{{Resolution: 0.2, Airtime: 1, GPUSpeed: 1, MCS: 1}}
		}},
		{"noise", func(o *Options) { o.NoiseVars = [3]float64{1e-4, 2e-2, 6e-2} }},
		{"length scales", func(o *Options) {
			ls := make([]float64, ContextDims+ControlDims)
			for i := range ls {
				ls[i] = 1.5
			}
			o.LengthScales = ls
		}},
		{"kernel family", func(o *Options) { o.KernelFactory = gp.RBFFactory }},
		{"weights (joint mode)", func(o *Options) {
			o.Weights = CostWeights{Delta1: 2e-3, Delta2: 2e-2}
			// Pin the normalization so only the weight check can trip:
			// otherwise DefaultNormalization(weights) trips the Norm check
			// first.
			o.Norm = DefaultNormalization(testOptions().Weights)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := testOptions()
			tc.mut(&bad)
			_, err := LoadCheckpoint(bytes.NewReader(data), bad)
			if !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
			}
		})
	}
}

func TestReadCheckpointInfo(t *testing.T) {
	opts := testOptions()
	opts.DecomposedCost = true
	opts.Telemetry = telemetry.NewRegistry()
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 5)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadCheckpointInfo(&buf)
	if err != nil {
		t.Fatalf("ReadCheckpointInfo: %v", err)
	}
	if info.Version != checkpoint.Version {
		t.Errorf("Version = %d", info.Version)
	}
	if info.Periods != 5 {
		t.Errorf("Periods = %d, want 5", info.Periods)
	}
	if !info.DecomposedCost {
		t.Error("DecomposedCost = false")
	}
	want := map[string]int{"cost": 0, "delay": 5, "map": 5, "server_power": 5, "bs_power": 5}
	if len(info.Objectives) != len(want) {
		t.Fatalf("Objectives = %+v", info.Objectives)
	}
	for _, o := range info.Objectives {
		if n, ok := want[o.Name]; !ok || n != o.Observations {
			t.Errorf("objective %q has %d observations, want %d", o.Name, o.Observations, want[o.Name])
		}
	}
}

func TestCheckpointTelemetry(t *testing.T) {
	opts := testOptions()
	opts.Telemetry = telemetry.NewRegistry()
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	runPeriods(t, a, 0, 3)
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), opts); err != nil {
		t.Fatal(err)
	}
	snap := opts.Telemetry.Snapshot()
	if got := snap.Counters["edgebol_ckpt_saves_total"]; got != 1 {
		t.Errorf("edgebol_ckpt_saves_total = %d, want 1", got)
	}
	if got := snap.Counters["edgebol_ckpt_restores_total"]; got != 1 {
		t.Errorf("edgebol_ckpt_restores_total = %d, want 1", got)
	}
	if got := snap.Gauges["edgebol_ckpt_bytes"]; got <= 0 {
		t.Errorf("edgebol_ckpt_bytes = %v, want > 0", got)
	}
	if got := snap.Gauges["edgebol_ckpt_restore_bytes"]; got <= 0 {
		t.Errorf("edgebol_ckpt_restore_bytes = %v, want > 0", got)
	}
	if h, ok := snap.Histograms["edgebol_ckpt_save_seconds"]; !ok || h.Count != 1 {
		t.Errorf("edgebol_ckpt_save_seconds histogram = %+v", h)
	}
	if h, ok := snap.Histograms["edgebol_ckpt_restore_seconds"]; !ok || h.Count != 1 {
		t.Errorf("edgebol_ckpt_restore_seconds histogram = %+v", h)
	}
}

func TestLoadCheckpointRejectsUnknownCriticalSection(t *testing.T) {
	opts := testOptions()
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	arch, err := checkpoint.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// A future-critical section must reject; the same payload under an
	// ancillary tag must be skipped.
	withExtra := func(tag string) []byte {
		var out bytes.Buffer
		secs := append(append([]checkpoint.Section(nil), arch.Sections...),
			checkpoint.Section{Tag: tag, Data: []byte("future state")})
		if err := checkpoint.Encode(&out, secs); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if _, err := LoadCheckpoint(bytes.NewReader(withExtra("ZZZZ")), opts); err == nil {
		t.Fatal("unknown critical section accepted")
	}
	if _, err := LoadCheckpoint(bytes.NewReader(withExtra("zzzz")), opts); err != nil {
		t.Fatalf("unknown ancillary section rejected: %v", err)
	}
}
