package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/gp"
)

// ErrCheckpointMismatch is wrapped by LoadCheckpoint when the checkpoint
// was taken under a different fixed configuration than the Options the
// caller supplied — a different grid, kernel, normalization, or mode.
// Runtime-mutable state (weights, constraints, period counter, GP data)
// never trips it: that state is restored, not compared.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match agent configuration")

// Checkpoint section tags (see internal/checkpoint for the container
// format and the critical/ancillary convention).
const (
	// secMeta holds the period counter, mode flags, grid spec, weights,
	// constraints, betas, normalization, safe seed, and the objective
	// inventory. Critical.
	secMeta = "META"
	// secSafe holds the last computed safe-set bitmask. Ancillary: the
	// safe set is recomputed from posteriors every period, so a reader
	// may skip it and lose nothing but a diagnostic.
	secSafe = "safe"
)

// gpTags and powTags name the per-objective GP state sections, indexed
// like Agent.gps and Agent.powerGPs.
var gpTags = [numGPs]string{"GP00", "GP01", "GP02"}
var powTags = [2]string{"PW00", "PW01"}

// knownCriticalTag reports whether this reader understands a critical
// section tag; LoadCheckpoint rejects checkpoints carrying critical
// sections it does not understand (the container's forward-compat rule).
func knownCriticalTag(tag string) bool {
	if tag == secMeta {
		return true
	}
	for _, t := range gpTags {
		if tag == t {
			return true
		}
	}
	for _, t := range powTags {
		if tag == t {
			return true
		}
	}
	return false
}

// objectiveNames are the stable per-GP labels recorded in the objective
// inventory, matching the telemetry labels.
var objectiveNames = [numGPs]string{"cost", "delay", "map"}
var powerObjectiveNames = [2]string{"server_power", "bs_power"}

// CheckpointInfo summarizes a checkpoint without restoring it.
type CheckpointInfo struct {
	// Version is the container format version.
	Version uint16
	// Periods is the agent's period counter at save time.
	Periods int
	// DecomposedCost reports whether the checkpoint carries the two
	// decomposed power GPs in addition to the three objective GPs.
	DecomposedCost bool
	// Engine is the engine selector the agent was configured with
	// ("exact", "sparse", or "auto"). Version-1 checkpoints predate the
	// sparse engine and always report "exact".
	Engine string
	// InducingPoints and SparseSwitchAt are the resolved sparse-engine
	// configuration (zero for version-1 checkpoints).
	InducingPoints int
	SparseSwitchAt int
	// Acquisition is the configured acquisition mode ("auto",
	// "exhaustive", or "adaptive"). Version ≤ 2 checkpoints predate the
	// adaptive engine and report "auto".
	Acquisition string
	// Objectives lists each serialized GP and its retained observation
	// count, in section order.
	Objectives []ObjectiveSize
}

// ObjectiveSize is one entry of CheckpointInfo.Objectives.
type ObjectiveSize struct {
	Name         string
	Observations int
	// Engine is the engine this GP was running at save time ("exact" or
	// "sparse" — under the auto selector both can appear over a run's
	// lifetime). Empty for version-1 checkpoints.
	Engine string
	// InducingPoints is the GP's current inducing-basis size (0 when
	// exact).
	InducingPoints int
}

// metaState is the decoded META section.
type metaState struct {
	t              uint64
	decomposed     bool
	disableSafeSet bool
	rule           AcquisitionRule
	grid           GridSpec
	weights        CostWeights
	constraints    Constraints
	safeBeta       float64
	acqBeta        float64
	norm           Normalization
	safeSeed       []Control
	objectives     []ObjectiveSize
	// Version-2 fields; a version-1 checkpoint decodes as the exact
	// engine with zero sparse configuration.
	engine         EngineSelector
	inducingPoints int
	sparseSwitchAt int
	// Version-3 field; earlier checkpoints predate the adaptive engine
	// and decode as AcqAuto — which on their (pre-LevelsPerDim) grids
	// resolves to the exhaustive sweep they were saved under.
	acqMode AcquisitionMode
}

// normAffines flattens a Normalization into its five transforms in a
// fixed serialization order.
func normAffines(n *Normalization) [5]*Affine {
	return [5]*Affine{&n.Cost, &n.Delay, &n.MAP, &n.ServerPower, &n.BSPower}
}

func (a *Agent) encodeMeta() []byte {
	var e checkpoint.Encoder
	e.U64(uint64(a.t))
	e.Bool(a.opts.DecomposedCost)
	e.Bool(a.opts.DisableSafeSet)
	e.U8(uint8(a.opts.Rule))
	e.U32(uint32(a.opts.Grid.Levels))
	e.F64(a.opts.Grid.MinResolution)
	e.F64(a.opts.Grid.MinAirtime)
	e.F64(a.opts.Weights.Delta1)
	e.F64(a.opts.Weights.Delta2)
	e.F64(a.opts.Constraints.MaxDelay)
	e.F64(a.opts.Constraints.MinMAP)
	e.F64(a.opts.SafeBeta)
	e.F64(a.opts.AcqBeta)
	norm := a.opts.Norm
	for _, af := range normAffines(&norm) {
		e.F64(af.Center)
		e.F64(af.Scale)
	}
	e.U32(uint32(len(a.opts.SafeSeed)))
	for _, s := range a.opts.SafeSeed {
		e.F64(s.Resolution)
		e.F64(s.Airtime)
		e.F64(s.GPUSpeed)
		e.F64(s.MCS)
		// Version 3 widened the seeds to the split dimension.
		e.F64(s.SplitLayer)
	}
	// Objective inventory: lets ReadCheckpointInfo report per-GP sizes
	// from the META section alone, without touching the GP payloads.
	count := numGPs
	if a.opts.DecomposedCost {
		count += len(a.powerGPs)
	}
	e.U32(uint32(count))
	for i, g := range a.gps {
		e.String(objectiveNames[i])
		e.U64(uint64(g.Len()))
	}
	if a.opts.DecomposedCost {
		for i, g := range a.powerGPs {
			e.String(powerObjectiveNames[i])
			e.U64(uint64(g.Len()))
		}
	}
	// Version-2 extension: the engine selector with its resolved sparse
	// configuration, then per-objective engine identity (same order as the
	// inventory above) so `ckpt info` can report the running engine and
	// basis sizes without touching the GP payloads.
	e.U8(uint8(a.opts.Engine))
	e.U64(uint64(a.opts.InducingPoints))
	e.U64(uint64(a.opts.SparseSwitchAt))
	for _, g := range a.gps {
		e.String(g.EngineName())
		e.U64(uint64(g.InducingLen()))
	}
	if a.opts.DecomposedCost {
		for _, g := range a.powerGPs {
			e.String(g.EngineName())
			e.U64(uint64(g.InducingLen()))
		}
	}
	// Version-3 extension: the acquisition mode (as configured, so AcqAuto
	// round-trips as AcqAuto) and the per-dimension grid level counts —
	// the split-inference dimension and the LevelsPerDim overrides
	// postdate version 2.
	e.U8(uint8(a.opts.Acquisition))
	for _, n := range a.opts.Grid.LevelsPerDim {
		e.U32(uint32(n))
	}
	return e.Bytes()
}

func decodeMeta(data []byte, version uint16) (*metaState, error) {
	d := checkpoint.NewDecoder(data)
	m := &metaState{}
	m.t = d.U64()
	m.decomposed = d.Bool()
	m.disableSafeSet = d.Bool()
	m.rule = AcquisitionRule(d.U8())
	m.grid.Levels = int(d.U32())
	m.grid.MinResolution = d.F64()
	m.grid.MinAirtime = d.F64()
	m.weights.Delta1 = d.F64()
	m.weights.Delta2 = d.F64()
	m.constraints.MaxDelay = d.F64()
	m.constraints.MinMAP = d.F64()
	m.safeBeta = d.F64()
	m.acqBeta = d.F64()
	for _, af := range normAffines(&m.norm) {
		af.Center = d.F64()
		af.Scale = d.F64()
	}
	nSeed := int(d.U32())
	// Every seed takes 32 payload bytes (40 from version 3, which widened
	// the seeds to the split dimension); bounding by the remaining bytes
	// keeps a hostile count from forcing a huge allocation.
	seedBytes := 32
	if version >= 3 {
		seedBytes = 40
	}
	if d.Err() == nil && nSeed > d.Remaining()/seedBytes {
		return nil, fmt.Errorf("%w: %d safe seeds declared, %d bytes remain", checkpoint.ErrTruncated, nSeed, d.Remaining())
	}
	for i := 0; i < nSeed && d.Err() == nil; i++ {
		s := Control{
			Resolution: d.F64(),
			Airtime:    d.F64(),
			GPUSpeed:   d.F64(),
			MCS:        d.F64(),
		}
		if version >= 3 {
			s.SplitLayer = d.F64()
		}
		m.safeSeed = append(m.safeSeed, s)
	}
	nObj := int(d.U32())
	// A name prefix plus the count is at least 12 bytes per objective.
	if d.Err() == nil && nObj > d.Remaining()/12 {
		return nil, fmt.Errorf("%w: %d objectives declared, %d bytes remain", checkpoint.ErrTruncated, nObj, d.Remaining())
	}
	for i := 0; i < nObj && d.Err() == nil; i++ {
		name := d.String()
		obs := d.U64()
		m.objectives = append(m.objectives, ObjectiveSize{Name: name, Observations: int(obs)})
	}
	if version >= 2 {
		m.engine = EngineSelector(d.U8())
		m.inducingPoints = int(d.U64())
		m.sparseSwitchAt = int(d.U64())
		for i := range m.objectives {
			if d.Err() != nil {
				break
			}
			m.objectives[i].Engine = d.String()
			m.objectives[i].InducingPoints = int(d.U64())
		}
		if d.Err() == nil && (m.engine < EngineExact || m.engine > EngineAuto) {
			return nil, fmt.Errorf("%w: unknown engine selector %d", checkpoint.ErrMalformed, m.engine)
		}
		if d.Err() == nil && (m.inducingPoints < 0 || m.sparseSwitchAt < 0) {
			return nil, fmt.Errorf("%w: negative sparse configuration", checkpoint.ErrMalformed)
		}
	}
	if version >= 3 {
		m.acqMode = AcquisitionMode(d.U8())
		for i := range m.grid.LevelsPerDim {
			m.grid.LevelsPerDim[i] = int(d.U32())
		}
		if d.Err() == nil && (m.acqMode < AcqAuto || m.acqMode > AcqAdaptive) {
			return nil, fmt.Errorf("%w: unknown acquisition mode %d", checkpoint.ErrMalformed, m.acqMode)
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("core: META section: %w", err)
	}
	return m, nil
}

// encodeGPState serializes a gp.State as one section payload. The
// version-1 layout is preserved as a prefix; version 2 appends the engine
// identity and, verbatim, the sparse engine's streamed state (bases,
// moments, both Cholesky factors) so a restore is bitwise lossless.
func encodeGPState(s gp.State) []byte {
	var e checkpoint.Encoder
	e.String(s.Kernel)
	e.F64s(s.LengthScales)
	e.F64(s.NoiseVar)
	e.U64(uint64(s.MaxObs))
	e.U32(uint32(s.Dim))
	e.F64s(s.Xs)
	e.F64s(s.Ys)
	e.F64s(s.Factor)
	e.F64(s.Jitter)
	e.U64(s.Evictions)
	e.String(s.Engine)
	e.U32(uint32(s.MaxInducing))
	e.F64(s.InsertTol)
	e.F64(s.SwapMargin)
	e.F64s(s.Zs)
	e.F64s(s.Kmm)
	e.F64s(s.A)
	e.F64s(s.B)
	e.F64(s.SumYY)
	e.F64s(s.KmmFactor)
	e.F64(s.KmmJitter)
	e.F64s(s.SigFactor)
	e.F64(s.SigJitter)
	e.U64(s.Inserts)
	e.U64(s.Swaps)
	e.U64(uint64(s.SinceRefactor))
	return e.Bytes()
}

func decodeGPState(data []byte, version uint16) (gp.State, error) {
	d := checkpoint.NewDecoder(data)
	var s gp.State
	s.Kernel = d.String()
	s.LengthScales = d.F64s()
	s.NoiseVar = d.F64()
	s.MaxObs = int(d.U64())
	s.Dim = int(d.U32())
	s.Xs = d.F64s()
	s.Ys = d.F64s()
	s.Factor = d.F64s()
	s.Jitter = d.F64()
	s.Evictions = d.U64()
	if version >= 2 {
		s.Engine = d.String()
		s.MaxInducing = int(d.U32())
		s.InsertTol = d.F64()
		s.SwapMargin = d.F64()
		s.Zs = d.F64s()
		s.Kmm = d.F64s()
		s.A = d.F64s()
		s.B = d.F64s()
		s.SumYY = d.F64()
		s.KmmFactor = d.F64s()
		s.KmmJitter = d.F64()
		s.SigFactor = d.F64s()
		s.SigJitter = d.F64()
		s.Inserts = d.U64()
		s.Swaps = d.U64()
		s.SinceRefactor = int(d.U64())
	}
	if err := d.Done(); err != nil {
		return gp.State{}, err
	}
	if s.MaxObs < 0 || s.Dim < 0 || s.MaxInducing < 0 || s.SinceRefactor < 0 {
		return gp.State{}, fmt.Errorf("%w: negative GP bounds", checkpoint.ErrMalformed)
	}
	return s, nil
}

// encodeSafe packs the safe-set booleans into a bitmask, LSB-first.
func encodeSafe(safe []bool) []byte {
	var e checkpoint.Encoder
	e.U64(uint64(len(safe)))
	var cur uint8
	for i, ok := range safe {
		if ok {
			cur |= 1 << (uint(i) % 8)
		}
		if i%8 == 7 {
			e.U8(cur)
			cur = 0
		}
	}
	if len(safe)%8 != 0 {
		e.U8(cur)
	}
	return e.Bytes()
}

func decodeSafe(data []byte, want int) ([]bool, error) {
	d := checkpoint.NewDecoder(data)
	n := d.U64()
	if d.Err() == nil && n != uint64(want) {
		return nil, fmt.Errorf("%w: safe set of %d entries, grid has %d", checkpoint.ErrMalformed, n, want)
	}
	out := make([]bool, want)
	var cur uint8
	for i := range out {
		if i%8 == 0 {
			cur = d.U8()
		}
		out[i] = cur&(1<<(uint(i)%8)) != 0
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// SaveCheckpoint serializes the agent's full learned state — period
// counter, runtime-mutable weights and constraints, every GP's training
// rows, targets, and Cholesky factor, and the safe-set diagnostic — as a
// versioned checkpoint stream. A checkpoint loaded back through
// LoadCheckpoint with the same Options continues bitwise identically to
// the uninterrupted agent (the restore-equivalence guarantee; see
// DESIGN.md §11).
//
// SaveCheckpoint must not run concurrently with SelectControl or Observe
// (the Agent is not safe for concurrent use).
func (a *Agent) SaveCheckpoint(w io.Writer) error {
	start := time.Now()
	sections := make([]checkpoint.Section, 0, 2+numGPs+len(a.powerGPs))
	sections = append(sections, checkpoint.Section{Tag: secMeta, Data: a.encodeMeta()})
	for i, g := range a.gps {
		sections = append(sections, checkpoint.Section{Tag: gpTags[i], Data: encodeGPState(g.Snapshot())})
	}
	if a.opts.DecomposedCost {
		for i, g := range a.powerGPs {
			sections = append(sections, checkpoint.Section{Tag: powTags[i], Data: encodeGPState(g.Snapshot())})
		}
	}
	// Adaptive agents hold no full-grid safe-set mask (the per-candidate
	// pools are rebuilt from scratch each period), so the ancillary safe
	// section is written by exhaustive agents only.
	if !a.adaptive {
		sections = append(sections, checkpoint.Section{Tag: secSafe, Data: encodeSafe(a.safe)})
	}
	cw := &countingWriter{w: w}
	if err := checkpoint.Encode(cw, sections); err != nil {
		return err
	}
	a.met.ckptSaves.Inc()
	a.met.ckptBytes.Set(float64(cw.n))
	a.met.ckptSaveLat.Observe(time.Since(start).Seconds())
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func mismatch(field string, ckpt, opts any) error {
	return fmt.Errorf("%w: %s: checkpoint has %v, options have %v", ErrCheckpointMismatch, field, ckpt, opts)
}

// LoadCheckpoint constructs a fresh agent from opts and restores a
// checkpoint stream into it. The caller supplies the same Options the
// checkpointed agent was built with — the checkpoint carries the learned
// state, not the code-level configuration (kernel factories and telemetry
// registries cannot be serialized) — and LoadCheckpoint verifies, bitwise,
// every piece of fixed configuration the checkpoint does record: grid,
// betas, acquisition, modes, normalization, safe seed, and each GP's
// hyperparameters. A mismatch wraps ErrCheckpointMismatch.
//
// Runtime-mutable state is restored from the checkpoint, overriding opts:
// cost weights (SetWeights), constraints (SetConstraints), the period
// counter, and every GP's training state. The restored agent's subsequent
// selections and posteriors are bitwise identical to the saved agent's.
func LoadCheckpoint(r io.Reader, opts Options) (*Agent, error) {
	start := time.Now()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	arch, err := checkpoint.DecodeBytes(data)
	if err != nil {
		return nil, err
	}
	for _, s := range arch.Sections {
		if s.Critical() && !knownCriticalTag(s.Tag) {
			return nil, fmt.Errorf("%w: unknown critical section %q", checkpoint.ErrMalformed, s.Tag)
		}
	}
	metaSec := arch.Find(secMeta)
	if metaSec == nil {
		return nil, fmt.Errorf("%w: missing %s section", checkpoint.ErrMalformed, secMeta)
	}
	meta, err := decodeMeta(metaSec.Data, arch.Version)
	if err != nil {
		return nil, err
	}
	a, err := NewAgent(opts)
	if err != nil {
		return nil, err
	}
	// Engine identity is fixed configuration: the learned state's meaning
	// depends on the engine that produced it. Version-1 checkpoints predate
	// the sparse engine and therefore restore only into exact agents; for
	// version 2 the selector must match bitwise, and the sparse-engine knobs
	// are compared only where they shape behaviour (the basis budget for
	// sparse/auto, the switch threshold for auto).
	if arch.Version < 2 {
		if a.opts.Engine != EngineExact {
			return nil, mismatch("Engine", EngineExact, a.opts.Engine)
		}
	} else {
		if meta.engine != a.opts.Engine {
			return nil, mismatch("Engine", meta.engine, a.opts.Engine)
		}
		if a.opts.Engine != EngineExact && meta.inducingPoints != a.opts.InducingPoints {
			return nil, mismatch("InducingPoints", meta.inducingPoints, a.opts.InducingPoints)
		}
		if a.opts.Engine == EngineAuto && meta.sparseSwitchAt != a.opts.SparseSwitchAt {
			return nil, mismatch("SparseSwitchAt", meta.sparseSwitchAt, a.opts.SparseSwitchAt)
		}
	}
	// Fixed configuration must match bitwise: the learned state is only
	// meaningful under the exact grid, priors, and normalization it was
	// learned with.
	if meta.decomposed != a.opts.DecomposedCost {
		return nil, mismatch("DecomposedCost", meta.decomposed, a.opts.DecomposedCost)
	}
	if meta.disableSafeSet != a.opts.DisableSafeSet {
		return nil, mismatch("DisableSafeSet", meta.disableSafeSet, a.opts.DisableSafeSet)
	}
	if meta.rule != a.opts.Rule {
		return nil, mismatch("Rule", meta.rule, a.opts.Rule)
	}
	if meta.acqMode != a.opts.Acquisition {
		return nil, mismatch("Acquisition", meta.acqMode, a.opts.Acquisition)
	}
	if meta.grid != a.opts.Grid {
		return nil, mismatch("Grid", meta.grid, a.opts.Grid)
	}
	if meta.safeBeta != a.opts.SafeBeta { //edgebol:allow floateq -- fixed config must match bitwise for restore equivalence
		return nil, mismatch("SafeBeta", meta.safeBeta, a.opts.SafeBeta)
	}
	if meta.acqBeta != a.opts.AcqBeta { //edgebol:allow floateq -- fixed config must match bitwise for restore equivalence
		return nil, mismatch("AcqBeta", meta.acqBeta, a.opts.AcqBeta)
	}
	ckptNorm, optsNorm := normAffines(&meta.norm), normAffines(&a.opts.Norm)
	for i, af := range ckptNorm {
		if *af != *optsNorm[i] {
			return nil, mismatch("Norm", *af, *optsNorm[i])
		}
	}
	if len(meta.safeSeed) != len(a.opts.SafeSeed) {
		return nil, mismatch("SafeSeed length", len(meta.safeSeed), len(a.opts.SafeSeed))
	}
	for i, s := range meta.safeSeed {
		if s != a.opts.SafeSeed[i] {
			return nil, mismatch(fmt.Sprintf("SafeSeed[%d]", i), s, a.opts.SafeSeed[i])
		}
	}
	// Runtime-mutable state: validate like the setters, then restore.
	if err := meta.constraints.Validate(); err != nil {
		return nil, fmt.Errorf("core: checkpoint constraints: %w", err)
	}
	w := meta.weights
	if w.Delta1 < 0 || w.Delta2 < 0 || (w.Delta1 == 0 && w.Delta2 == 0) {
		return nil, fmt.Errorf("core: checkpoint cost weights %+v invalid", w)
	}
	if !a.opts.DecomposedCost && w != a.opts.Weights {
		// In joint-cost mode weights cannot legally change at runtime, so a
		// checkpoint carrying different weights was taken under a different
		// (weight-dependent) cost normalization — reject rather than mix.
		return nil, mismatch("Weights", w, a.opts.Weights)
	}
	a.opts.Constraints = meta.constraints
	a.opts.Weights = w
	a.t = int(meta.t)
	// An auto-selector checkpoint taken after the switch carries sparse GP
	// states; the fresh agent starts exact, so convert it (over empty
	// history, which is free) before the per-GP restore — gp.RestoreFrom
	// rejects any remaining engine disagreement.
	if a.opts.Engine == EngineAuto && len(meta.objectives) > 0 && meta.objectives[0].Engine == "sparse" {
		if err := a.switchToSparse(); err != nil {
			return nil, err
		}
	}
	for i, g := range a.gps {
		sec := arch.Find(gpTags[i])
		if sec == nil {
			return nil, fmt.Errorf("%w: missing %s section", checkpoint.ErrMalformed, gpTags[i])
		}
		st, err := decodeGPState(sec.Data, arch.Version)
		if err != nil {
			return nil, fmt.Errorf("core: section %s: %w", gpTags[i], err)
		}
		if err := g.RestoreFrom(st); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointMismatch, objectiveNames[i], err)
		}
	}
	if a.opts.DecomposedCost {
		for i, g := range a.powerGPs {
			sec := arch.Find(powTags[i])
			if sec == nil {
				return nil, fmt.Errorf("%w: missing %s section", checkpoint.ErrMalformed, powTags[i])
			}
			st, err := decodeGPState(sec.Data, arch.Version)
			if err != nil {
				return nil, fmt.Errorf("core: section %s: %w", powTags[i], err)
			}
			if err := g.RestoreFrom(st); err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointMismatch, powerObjectiveNames[i], err)
			}
		}
	}
	// The safe-set section is ancillary: restore it when intact, recompute
	// otherwise — SelectControl rebuilds it from posteriors every period.
	// Adaptive agents keep no full-grid mask and skip it entirely.
	if sec := arch.Find(secSafe); sec != nil && !a.adaptive {
		if safe, err := decodeSafe(sec.Data, len(a.grid)); err == nil {
			copy(a.safe, safe)
		}
	}
	a.met.ckptRestores.Inc()
	a.met.ckptRestoreBytes.Set(float64(len(data)))
	a.met.ckptRestoreLat.Observe(time.Since(start).Seconds())
	return a, nil
}

// ReadCheckpointInfo summarizes a checkpoint stream — format version,
// period counter, and per-objective observation counts — without
// constructing an agent. It validates the container (magic, version,
// every CRC) and the META section only; unlike LoadCheckpoint it
// tolerates unknown critical sections, since inspection is not restore.
func ReadCheckpointInfo(r io.Reader) (CheckpointInfo, error) {
	arch, err := checkpoint.Decode(r)
	if err != nil {
		return CheckpointInfo{}, err
	}
	metaSec := arch.Find(secMeta)
	if metaSec == nil {
		return CheckpointInfo{}, fmt.Errorf("%w: missing %s section", checkpoint.ErrMalformed, secMeta)
	}
	meta, err := decodeMeta(metaSec.Data, arch.Version)
	if err != nil {
		return CheckpointInfo{}, err
	}
	engine := "exact"
	if arch.Version >= 2 {
		engine = meta.engine.String()
	}
	return CheckpointInfo{
		Version:        arch.Version,
		Periods:        int(meta.t),
		DecomposedCost: meta.decomposed,
		Engine:         engine,
		InducingPoints: meta.inducingPoints,
		SparseSwitchAt: meta.sparseSwitchAt,
		Acquisition:    meta.acqMode.String(),
		Objectives:     meta.objectives,
	}, nil
}
