package core

import (
	"math"
	"testing"

	"repro/internal/gp"
)

// opaqueKernel hides the concrete kernel type from gp.NewSweepPlan, forcing
// an agent built with it onto the generic PosteriorBatch path while
// computing exactly the same covariances.
type opaqueKernel struct{ gp.Kernel }

func opaqueMatern32(ls []float64) gp.Kernel { return &opaqueKernel{gp.NewMatern32(ls)} }

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func controlsBitwiseEqual(a, b Control) bool {
	return sameBits(a.Resolution, b.Resolution) && sameBits(a.Airtime, b.Airtime) &&
		sameBits(a.GPUSpeed, b.GPUSpeed) && sameBits(a.MCS, b.MCS)
}

func posteriorsBitwiseEqual(a, b Posterior) bool {
	return sameBits(a.Mean, b.Mean) && sameBits(a.Sigma, b.Sigma)
}

// TestAgentSweepPlanMatchesGeneric pins the agent-level contract of the grid
// sweep engine: an agent whose objectives sweep through SweepPlans selects
// bitwise-identical controls — with bitwise-identical posteriors and
// diagnostics — to one forced onto the generic path, across worker counts,
// cost decomposition, and sliding-window evictions.
func TestAgentSweepPlanMatchesGeneric(t *testing.T) {
	cases := []struct {
		name       string
		workers    int
		decomposed bool
		maxObs     int
	}{
		{"serial", 1, false, 0},
		{"autoworkers", 0, false, 0},
		{"workers4", 4, false, 0},
		{"decomposed", 1, true, 0},
		{"eviction", 4, false, 20},
		{"decomposed_eviction", 0, true, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(factory gp.KernelFactory) *Agent {
				a, err := NewAgent(Options{
					Grid:             testGrid(),
					Weights:          CostWeights{Delta1: 1, Delta2: 1},
					Constraints:      Constraints{MaxDelay: 0.9, MinMAP: 0.3},
					Norm:             quadNorm(),
					NoiseVars:        [3]float64{1e-4, 1e-4, 1e-4},
					KernelFactory:    factory,
					InferenceWorkers: tc.workers,
					DecomposedCost:   tc.decomposed,
					MaxObservations:  tc.maxObs,
				})
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
			planned := build(gp.Matern32Factory)
			generic := build(opaqueMatern32)
			if planned.needsGenericSweep() {
				t.Fatal("default factory should give every objective a sweep plan")
			}
			if !generic.needsGenericSweep() {
				t.Fatal("opaque kernel should defeat plan construction")
			}

			env := &quadEnv{}
			const steps = 35
			for i := 0; i < steps; i++ {
				// Vary the context so the plans' per-period context partials
				// (not just the cached tables) are exercised.
				ctx := Context{
					NumUsers: 1 + i%3,
					MeanCQI:  10 + float64(i%5),
					VarCQI:   float64(i%4) / 2,
				}
				xp, ip := planned.SelectControl(ctx)
				xg, ig := generic.SelectControl(ctx)
				if !controlsBitwiseEqual(xp, xg) {
					t.Fatalf("step %d: plan selected %+v, generic %+v", i, xp, xg)
				}
				if !posteriorsBitwiseEqual(ip.Cost, ig.Cost) ||
					!posteriorsBitwiseEqual(ip.Delay, ig.Delay) ||
					!posteriorsBitwiseEqual(ip.MAP, ig.MAP) {
					t.Fatalf("step %d: posterior mismatch: plan %+v, generic %+v", i, ip, ig)
				}
				if !sameBits(ip.LCB, ig.LCB) || ip.SafeSetSize != ig.SafeSetSize ||
					ip.FromSeed != ig.FromSeed || ip.Workers != ig.Workers {
					t.Fatalf("step %d: diagnostics mismatch: plan %+v, generic %+v", i, ip, ig)
				}
				k, err := env.Measure(xp)
				if err != nil {
					t.Fatal(err)
				}
				if err := planned.Observe(ctx, xp, k); err != nil {
					t.Fatal(err)
				}
				if err := generic.Observe(ctx, xg, k); err != nil {
					t.Fatal(err)
				}
			}
			if tc.maxObs > 0 && planned.gps[gpDelay].Evictions() == 0 {
				t.Fatal("eviction case never evicted: the rebuild path went unexercised")
			}
		})
	}
}
