package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchAgent builds an agent on the paper's full 11⁴ grid with t seeded
// synthetic observations, matching the per-period state of a long run.
func benchAgent(b *testing.B, t int) (*Agent, Context) {
	return benchAgentEngine(b, t, EngineExact)
}

func benchAgentEngine(b *testing.B, t int, engine EngineSelector) (*Agent, Context) {
	return benchAgentGrid(b, t, DefaultGridSpec(), AcqAuto, engine)
}

// benchAgentGrid seeds observations by direct index arithmetic
// (GridSpec.At), never materializing the grid — the multi-million-point
// adaptive variants would not appreciate a 7.4M-element warm-up slice.
func benchAgentGrid(b *testing.B, t int, spec GridSpec, mode AcquisitionMode, engine EngineSelector) (*Agent, Context) {
	b.Helper()
	opts := Options{
		Grid:        spec,
		Weights:     CostWeights{Delta1: 1, Delta2: 8},
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
		Engine:      engine,
		Acquisition: mode,
	}
	a, err := NewAgent(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	size := spec.Size()
	for i := 0; i < t; i++ {
		ctx := Context{NumUsers: 1 + rng.Intn(4), MeanCQI: 8 + 7*rng.Float64(), VarCQI: 3 * rng.Float64()}
		x := spec.At(rng.Intn(size))
		k := KPIs{
			Delay:       0.15 + 0.3*rng.Float64(),
			GPUDelay:    0.05 + 0.1*rng.Float64(),
			MAP:         0.45 + 0.25*rng.Float64(),
			ServerPower: 80 + 120*rng.Float64(),
			BSPower:     4.5 + 3*rng.Float64(),
		}
		if err := a.Observe(ctx, x, k); err != nil {
			b.Fatal(err)
		}
	}
	return a, Context{NumUsers: 2, MeanCQI: 12, VarCQI: 1.5}
}

// benchExactCap is the largest history the exact-engine benchmark runs
// at; above it the O(t²)-per-candidate sweep is not a supported operating
// point (the sparse engine is) and the variant skips with a logged
// reason.
const benchExactCap = 1000

// BenchmarkSelectControl measures one full acquisition step — three GP
// posterior sweeps over the 14 641-point grid, the safe-set filter, and
// the constrained-LCB argmin — at several history sizes t. The
// engine=sparse variants run the inducing-point engine (m=128) and pin
// its flat per-period cost out to t=10⁴.
func BenchmarkSelectControl(b *testing.B) {
	for _, t := range []int{50, 200, 1000, 5000} {
		if testing.Short() && t > 200 {
			continue
		}
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			if t > benchExactCap {
				b.Skipf("exact engine skipped at t=%d: O(t²) per-candidate sweep; see the engine=sparse variant", t)
			}
			a, ctx := benchAgent(b, t)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.SelectControl(ctx)
			}
		})
	}
	for _, t := range []int{1000, 5000, 10000} {
		// t=1000 stays in short mode so bench-check gates the sparse
		// engine too; the longer horizons are full-run only.
		if testing.Short() && t > 1000 {
			continue
		}
		b.Run(fmt.Sprintf("t=%d/engine=sparse", t), func(b *testing.B) {
			a, ctx := benchAgentEngine(b, t, EngineSparse)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.SelectControl(ctx)
			}
		})
	}

	// Grid-size variants at t=200: the exhaustive sweep against the
	// adaptive coarse-to-fine engine as the control space grows from the
	// paper's 11⁴ to the 31⁴×8 ≈ 7.4M-candidate split-inference grid.
	grid31 := GridSpec{Levels: 31, MinResolution: 0.1, MinAirtime: 0.1}
	grid31x8 := GridSpec{Levels: 31, MinResolution: 0.1, MinAirtime: 0.1,
		LevelsPerDim: [ControlDims]int{31, 31, 31, 31, 8}}
	variants := []struct {
		name     string
		spec     GridSpec
		mode     AcquisitionMode
		fullOnly bool
	}{
		{"grid=11p4/acq=exhaustive", DefaultGridSpec(), AcqExhaustive, false},
		{"grid=11p4/acq=adaptive", DefaultGridSpec(), AcqAdaptive, false},
		// Exhaustive at 31⁴ = 923 521 candidates sweeps ~0.5 GB of
		// posterior work per period; full-run only, it exists to anchor
		// the speedup claim.
		{"grid=31p4/acq=exhaustive", grid31, AcqExhaustive, true},
		{"grid=31p4/acq=adaptive", grid31, AcqAuto, false},
		{"grid=31p4x8/acq=adaptive", grid31x8, AcqAuto, false},
	}
	for _, v := range variants {
		b.Run(fmt.Sprintf("%s/t=200", v.name), func(b *testing.B) {
			if v.fullOnly && testing.Short() {
				b.Skipf("full-run only: exhaustive sweep over %d candidates", v.spec.Size())
			}
			a, ctx := benchAgentGrid(b, 200, v.spec, v.mode, EngineExact)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.SelectControl(ctx)
			}
		})
	}
}
