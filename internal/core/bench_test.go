package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchAgent builds an agent on the paper's full 11⁴ grid with t seeded
// synthetic observations, matching the per-period state of a long run.
func benchAgent(b *testing.B, t int) (*Agent, Context) {
	b.Helper()
	opts := Options{
		Grid:        DefaultGridSpec(),
		Weights:     CostWeights{Delta1: 1, Delta2: 8},
		Constraints: Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	}
	a, err := NewAgent(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	grid := a.Grid()
	for i := 0; i < t; i++ {
		ctx := Context{NumUsers: 1 + rng.Intn(4), MeanCQI: 8 + 7*rng.Float64(), VarCQI: 3 * rng.Float64()}
		x := grid[rng.Intn(len(grid))]
		k := KPIs{
			Delay:       0.15 + 0.3*rng.Float64(),
			GPUDelay:    0.05 + 0.1*rng.Float64(),
			MAP:         0.45 + 0.25*rng.Float64(),
			ServerPower: 80 + 120*rng.Float64(),
			BSPower:     4.5 + 3*rng.Float64(),
		}
		if err := a.Observe(ctx, x, k); err != nil {
			b.Fatal(err)
		}
	}
	return a, Context{NumUsers: 2, MeanCQI: 12, VarCQI: 1.5}
}

// BenchmarkSelectControl measures one full acquisition step — three GP
// posterior sweeps over the 14 641-point grid, the safe-set filter, and
// the constrained-LCB argmin — at several history sizes t.
func BenchmarkSelectControl(b *testing.B) {
	for _, t := range []int{50, 200, 1000} {
		if testing.Short() && t > 200 {
			continue
		}
		a, ctx := benchAgent(b, t)
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.SelectControl(ctx)
			}
		})
	}
}
