// Package core implements EdgeBOL (Ayala-Romero et al., CoNEXT '21): the
// contextual safe Bayesian online-learning controller that jointly
// configures the radio access network and the edge AI service to minimize
// energy cost under service-level constraints.
//
// The package defines the problem's vocabulary — contexts, controls, KPIs,
// constraints, cost — plus the discrete control grid of §6.1 and the online
// algorithm of §5 (Algorithm 1): Gaussian-process posteriors per objective,
// the safe set of eq. 8, and the constrained LCB acquisition of eq. 9.
package core

import (
	"fmt"
	"math"

	"repro/internal/ran"
)

// Control is the joint control policy x = [η, a, γ, m, ς] of §4.2 extended
// with the DNN split point of the split-inference workload, with every
// component normalized:
//
//   - Resolution η: average image resolution as a fraction of 640×480 pixels.
//   - Airtime a: uplink duty-cycle cap.
//   - GPUSpeed γ: GPU power-limit position between the driver's min and max.
//   - MCS m: max-MCS cap position; MCSCap() maps it to an integer index.
//   - SplitLayer ς: position of the device/edge DNN partition boundary in
//     [0, 1] — the fraction of the network executed on the device before the
//     intermediate activation is shipped uplink (Bayes-Split-Edge). 0 keeps
//     the whole DNN on the edge (the paper's original workload, and the
//     zero-value default), 1 runs it entirely on the device.
type Control struct {
	Resolution float64
	Airtime    float64
	GPUSpeed   float64
	MCS        float64
	SplitLayer float64
}

// MCSCap returns the integer MCS cap encoded by the normalized MCS policy.
func (c Control) MCSCap() int {
	m := int(math.Round(c.MCS * ran.MaxMCS))
	if m < 0 {
		m = 0
	}
	if m > ran.MaxMCS {
		m = ran.MaxMCS
	}
	return m
}

// Validate reports whether the control lies in its domain.
func (c Control) Validate() error {
	if c.Resolution <= 0 || c.Resolution > 1 || math.IsNaN(c.Resolution) {
		return fmt.Errorf("core: resolution %v outside (0,1]", c.Resolution)
	}
	if c.Airtime <= 0 || c.Airtime > 1 || math.IsNaN(c.Airtime) {
		return fmt.Errorf("core: airtime %v outside (0,1]", c.Airtime)
	}
	if c.GPUSpeed < 0 || c.GPUSpeed > 1 || math.IsNaN(c.GPUSpeed) {
		return fmt.Errorf("core: GPU speed %v outside [0,1]", c.GPUSpeed)
	}
	if c.MCS < 0 || c.MCS > 1 || math.IsNaN(c.MCS) {
		return fmt.Errorf("core: MCS policy %v outside [0,1]", c.MCS)
	}
	if c.SplitLayer < 0 || c.SplitLayer > 1 || math.IsNaN(c.SplitLayer) {
		return fmt.Errorf("core: split layer %v outside [0,1]", c.SplitLayer)
	}
	return nil
}

// appendFeatures appends the control's normalized GP features to dst.
func (c Control) appendFeatures(dst []float64) []float64 {
	return append(dst, c.Resolution, c.Airtime, c.GPUSpeed, c.MCS, c.SplitLayer)
}

// ControlDims is the dimensionality of the control space.
const ControlDims = 5

// Context is the slice state c = [n, mean CQI, var CQI] of §4.2: the number
// of users plus aggregate uplink channel-quality statistics. Aggregating
// per-user CQIs keeps the GP input dimension constant regardless of the
// user count (§4.4).
type Context struct {
	NumUsers int
	MeanCQI  float64
	VarCQI   float64
}

// ContextDims is the dimensionality of the context features.
const ContextDims = 3

// maxUsersNorm normalizes the user count; the prototype was limited to
// fewer than 7 users (§6.4).
const maxUsersNorm = 8

// maxVarCQINorm normalizes the CQI variance feature.
const maxVarCQINorm = 12

// appendFeatures appends the context's normalized GP features to dst.
func (c Context) appendFeatures(dst []float64) []float64 {
	return append(dst,
		float64(c.NumUsers)/maxUsersNorm,
		c.MeanCQI/ran.MaxCQI,
		math.Min(c.VarCQI, maxVarCQINorm)/maxVarCQINorm,
	)
}

// Features returns the normalized joint feature vector z = (c, x) ∈ Z used
// as GP input (dimension ContextDims + ControlDims).
func Features(ctx Context, x Control) []float64 {
	dst := make([]float64, 0, ContextDims+ControlDims)
	return x.appendFeatures(ctx.appendFeatures(dst))
}

// ContextFeatures returns just the normalized context features, used by
// baselines whose policies map contexts to actions directly.
func ContextFeatures(ctx Context) []float64 {
	return ctx.appendFeatures(make([]float64, 0, ContextDims))
}

// ControlFeatures returns just the normalized control features.
func ControlFeatures(x Control) []float64 {
	return x.appendFeatures(make([]float64, 0, ControlDims))
}

// KPIs are the per-period performance-indicator observations of §4.2.
type KPIs struct {
	// Delay is the worst per-user end-to-end service delay in seconds
	// (Performance Indicator 1, d = max_i D_i).
	Delay float64
	// GPUDelay is the GPU-side portion of the delay (Fig. 3 bottom).
	GPUDelay float64
	// MAP is the lowest per-user mean average precision (PI 2, ρ = min_i Q_i).
	MAP float64
	// ServerPower is the edge server draw in watts (PI 3).
	ServerPower float64
	// BSPower is the baseband draw in watts (PI 4).
	BSPower float64
}

// CostWeights are the monetary energy prices δ₁ (server) and δ₂ (vBS) of
// eq. 1, in monetary units per watt.
type CostWeights struct {
	Delta1, Delta2 float64
}

// Cost evaluates the scalar cost u = δ₁·p_s + δ₂·p_b (eq. 1).
func (w CostWeights) Cost(k KPIs) float64 {
	return w.Delta1*k.ServerPower + w.Delta2*k.BSPower
}

// Constraints are the service-level requirements of eq. 2: a maximum
// service delay and a minimum mAP.
type Constraints struct {
	MaxDelay float64 // d^max in seconds
	MinMAP   float64 // ρ^min in [0,1]
}

// Validate reports whether the constraints are well-formed.
func (c Constraints) Validate() error {
	if c.MaxDelay <= 0 || math.IsNaN(c.MaxDelay) {
		return fmt.Errorf("core: max delay %v must be positive", c.MaxDelay)
	}
	if c.MinMAP < 0 || c.MinMAP > 1 || math.IsNaN(c.MinMAP) {
		return fmt.Errorf("core: min mAP %v outside [0,1]", c.MinMAP)
	}
	return nil
}

// Satisfied reports whether the KPIs meet the constraints.
func (c Constraints) Satisfied(k KPIs) bool {
	return k.Delay <= c.MaxDelay && k.MAP >= c.MinMAP
}

// Environment is the data plane EdgeBOL drives: it exposes the current
// context and executes one control period with a given policy, returning
// the (noisy) KPI observations. The testbed package provides the simulated
// prototype; the oran package drives it across real loopback interfaces.
type Environment interface {
	// Context returns the context for the upcoming period.
	Context() Context
	// Measure applies the control for one period and returns observed KPIs.
	Measure(Control) (KPIs, error)
}
