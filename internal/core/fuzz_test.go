package core

import (
	"bytes"
	"testing"
)

// FuzzLoadCheckpoint hammers the whole restore path — container decode,
// META/GP section decode, GP state validation — with corrupted inputs.
// The contract: arbitrary bytes may fail to load, but must never panic,
// hang, or allocate beyond the input size. The seed corpus covers valid
// checkpoints of every agent mode plus targeted corruptions (truncation,
// bit flips, version bumps) that the fuzzer then mutates further.
func FuzzLoadCheckpoint(f *testing.F) {
	seedOpts := []func(*Options){
		func(o *Options) {},
		func(o *Options) { o.DecomposedCost = true },
		func(o *Options) { o.MaxObservations = 8 },
	}
	for _, mut := range seedOpts {
		opts := testOptions()
		mut(&opts)
		a, err := NewAgent(opts)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			ctx := scriptContext(i)
			x, _ := a.SelectControl(ctx)
			if err := a.Observe(ctx, x, scriptKPIs(i, x)); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := a.SaveCheckpoint(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		// Truncations at structurally interesting depths.
		for _, cut := range []int{0, 7, 8, 16, len(valid) / 2, len(valid) - 1} {
			if cut <= len(valid) {
				f.Add(append([]byte(nil), valid[:cut]...))
			}
		}
		// A version bump and scattered bit flips.
		bumped := append([]byte(nil), valid...)
		bumped[8] = 0xFF
		f.Add(bumped)
		for _, pos := range []int{9, 12, 20, len(valid) / 3, 2 * len(valid) / 3} {
			flipped := append([]byte(nil), valid...)
			flipped[pos] ^= 0x10
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("EBOLCKPT"))

	opts := testOptions()
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are the expected outcome for almost
		// every mutated input.
		a, err := LoadCheckpoint(bytes.NewReader(data), opts)
		if err != nil {
			return
		}
		// The rare mutations that still load must yield a usable agent.
		ctx := scriptContext(0)
		x, _ := a.SelectControl(ctx)
		if err := x.Validate(); err != nil {
			t.Fatalf("restored agent selected invalid control: %v", err)
		}
		if _, err := ReadCheckpointInfo(bytes.NewReader(data)); err != nil {
			t.Fatalf("LoadCheckpoint accepted what ReadCheckpointInfo rejects: %v", err)
		}
	})
}
