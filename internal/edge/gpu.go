// Package edge models the GPU-powered edge server of the prototype (Intel
// i7 host + NVIDIA RTX 2080 Ti running Detectron2): the GPU-speed policy of
// §3 (Policy 3, a power-management limit between 100 and 280 W enforced by
// the NVIDIA driver), the inference service time it induces, and the
// server's power draw (Performance Indicator 3).
package edge

import (
	"fmt"
	"math"
)

// Config holds the edge-server model parameters. Defaults (DefaultConfig)
// are calibrated to Figs. 2–4: GPU delays of ≈150 ms (full speed) to
// ≈300 ms (10 % speed) and server power between ≈75 W idle and ≈200 W under
// full load.
type Config struct {
	// ServerIdleW is the host draw (CPU, board, fans) with the GPU idle.
	ServerIdleW float64
	// GPUIdleW is the GPU's idle draw.
	GPUIdleW float64
	// MinLimitW and MaxLimitW bound the GPU power-management limit swept by
	// the GPU-speed policy (the prototype's driver exposes 100–280 W).
	MinLimitW, MaxLimitW float64
	// DutyFactor scales the power limit into sustained draw at full
	// utilization (inference workloads don't pin the limit continuously).
	DutyFactor float64
	// BaseServiceTime is the per-image GPU service time in seconds at full
	// speed and full resolution.
	BaseServiceTime float64
	// LowResWorkFactor inflates service time for low-resolution images:
	// s(η) = BaseServiceTime·(1 + LowResWorkFactor·(1−η)). The prototype
	// measured that high-resolution images *ease* the detection task
	// (Fig. 3 bottom), so lower resolution means more GPU work per image.
	LowResWorkFactor float64
	// SpeedExponent shapes throughput vs power limit: speed ∝
	// (limit/max)^SpeedExponent, the usual sublinear DVFS response.
	SpeedExponent float64
	// NumGPUs is the pool size behind the service (Policy 3 covers "a GPU
	// or a pool of GPUs in a slice"); the power limit applies per GPU and
	// requests are served by whichever GPU is free. Zero means 1.
	NumGPUs int
}

// DefaultConfig returns the calibrated edge-server model.
func DefaultConfig() Config {
	return Config{
		ServerIdleW:      60,
		GPUIdleW:         15,
		MinLimitW:        100,
		MaxLimitW:        280,
		DutyFactor:       0.55,
		BaseServiceTime:  0.135,
		LowResWorkFactor: 0.30,
		SpeedExponent:    0.6,
	}
}

// Validate reports whether the configuration is physically sensible.
func (c Config) Validate() error {
	if c.ServerIdleW < 0 || c.GPUIdleW < 0 {
		return fmt.Errorf("edge: negative idle power")
	}
	if c.MinLimitW <= 0 || c.MaxLimitW <= c.MinLimitW {
		return fmt.Errorf("edge: power limit bounds [%v,%v] invalid", c.MinLimitW, c.MaxLimitW)
	}
	if c.DutyFactor <= 0 || c.DutyFactor > 1 {
		return fmt.Errorf("edge: duty factor %v outside (0,1]", c.DutyFactor)
	}
	if c.BaseServiceTime <= 0 {
		return fmt.Errorf("edge: non-positive service time %v", c.BaseServiceTime)
	}
	if c.LowResWorkFactor < 0 {
		return fmt.Errorf("edge: negative LowResWorkFactor")
	}
	if c.SpeedExponent <= 0 || c.SpeedExponent > 1 {
		return fmt.Errorf("edge: speed exponent %v outside (0,1]", c.SpeedExponent)
	}
	if c.NumGPUs < 0 {
		return fmt.Errorf("edge: negative GPU pool size %d", c.NumGPUs)
	}
	return nil
}

// PoolSize returns the effective number of GPUs (at least 1).
func (c Config) PoolSize() int {
	if c.NumGPUs < 1 {
		return 1
	}
	return c.NumGPUs
}

// PowerLimit maps the normalized GPU-speed policy γ ∈ [0,1] to the driver's
// power-management limit in watts.
func (c Config) PowerLimit(gamma float64) float64 {
	gamma = clamp01(gamma)
	return c.MinLimitW + gamma*(c.MaxLimitW-c.MinLimitW)
}

// SpeedFactor returns the GPU's normalized throughput (1 at full limit)
// under the policy γ.
func (c Config) SpeedFactor(gamma float64) float64 {
	return math.Pow(c.PowerLimit(gamma)/c.MaxLimitW, c.SpeedExponent)
}

// ServiceTime returns the per-image GPU service time in seconds for images
// delivered at the given resolution fraction under GPU-speed policy γ.
func (c Config) ServiceTime(resolution, gamma float64) float64 {
	resolution = clamp01(resolution)
	work := c.BaseServiceTime * (1 + c.LowResWorkFactor*(1-resolution))
	return work / c.SpeedFactor(gamma)
}

// Power returns the server draw in watts at the given pool utilization
// (fraction of time each GPU is busy, averaged over the pool) under policy
// γ. Idle and dynamic GPU draw scale with the pool size.
func (c Config) Power(gamma, utilization float64) float64 {
	utilization = clamp01(utilization)
	n := float64(c.PoolSize())
	return c.ServerIdleW + n*(c.GPUIdleW+utilization*c.DutyFactor*c.PowerLimit(gamma))
}

// PowerRange returns the [min, max] envelope of the server power model.
func (c Config) PowerRange() (min, max float64) {
	n := float64(c.PoolSize())
	return c.ServerIdleW + n*c.GPUIdleW, c.Power(1, 1)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
