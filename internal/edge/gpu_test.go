package edge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.ServerIdleW = -1 },
		func(c *Config) { c.MinLimitW = 0 },
		func(c *Config) { c.MaxLimitW = c.MinLimitW },
		func(c *Config) { c.DutyFactor = 0 },
		func(c *Config) { c.DutyFactor = 1.5 },
		func(c *Config) { c.BaseServiceTime = 0 },
		func(c *Config) { c.LowResWorkFactor = -0.1 },
		func(c *Config) { c.SpeedExponent = 0 },
		func(c *Config) { c.SpeedExponent = 2 },
	}
	for i, m := range mut {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d should fail validation", i)
		}
	}
}

func TestPowerLimitRange(t *testing.T) {
	c := DefaultConfig()
	if c.PowerLimit(0) != 100 || c.PowerLimit(1) != 280 {
		t.Fatalf("limit endpoints (%v, %v) should be the driver's 100–280 W", c.PowerLimit(0), c.PowerLimit(1))
	}
	if c.PowerLimit(-1) != 100 || c.PowerLimit(2) != 280 {
		t.Fatal("policy must clamp to [0,1]")
	}
}

func TestSpeedFactorMonotone(t *testing.T) {
	c := DefaultConfig()
	prev := 0.0
	for g := 0.0; g <= 1.0; g += 0.05 {
		s := c.SpeedFactor(g)
		if s <= prev {
			t.Fatalf("speed factor not strictly increasing at γ=%v", g)
		}
		prev = s
	}
	if math.Abs(c.SpeedFactor(1)-1) > 1e-12 {
		t.Fatalf("full-speed factor = %v, want 1", c.SpeedFactor(1))
	}
}

// Fig. 3 (bottom) effects: GPU delay falls with resolution and with GPU
// speed.
func TestServiceTimeShape(t *testing.T) {
	c := DefaultConfig()
	if c.ServiceTime(0.25, 1) <= c.ServiceTime(1, 1) {
		t.Fatal("low-res images should take longer on the GPU (Fig. 3 bottom)")
	}
	if c.ServiceTime(1, 0.1) <= c.ServiceTime(1, 1) {
		t.Fatal("a throttled GPU should be slower")
	}
}

func TestServiceTimeCalibration(t *testing.T) {
	// Fig. 3 bottom: ≈130–180 ms at full speed, up to ≈300 ms at 10 % speed.
	c := DefaultConfig()
	full := c.ServiceTime(1, 1)
	if full < 0.1 || full > 0.2 {
		t.Fatalf("full-speed full-res service time %v s outside 0.10–0.20", full)
	}
	slow := c.ServiceTime(0.25, 0.1)
	if slow < 0.2 || slow > 0.4 {
		t.Fatalf("throttled low-res service time %v s outside 0.20–0.40", slow)
	}
}

func TestPowerEnvelope(t *testing.T) {
	c := DefaultConfig()
	min, max := c.PowerRange()
	if min < 60 || min > 100 {
		t.Fatalf("idle power %v outside the prototype's ≈75 W", min)
	}
	if max < 180 || max > 240 {
		t.Fatalf("max power %v outside the prototype's ≈200 W envelope", max)
	}
}

func TestPowerMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := DefaultConfig()
		g := rng.Float64()
		u1 := rng.Float64()
		u2 := u1 + (1-u1)*rng.Float64()
		if c.Power(g, u2) < c.Power(g, u1)-1e-12 {
			return false
		}
		g2 := g + (1-g)*rng.Float64()
		return c.Power(g2, 0.5) >= c.Power(g, 0.5)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerClampsUtilization(t *testing.T) {
	c := DefaultConfig()
	if c.Power(0.5, -1) != c.Power(0.5, 0) || c.Power(0.5, 2) != c.Power(0.5, 1) {
		t.Fatal("utilization must clamp to [0,1]")
	}
}

func TestPoolSize(t *testing.T) {
	c := DefaultConfig()
	if c.PoolSize() != 1 {
		t.Fatalf("default pool size %d, want 1", c.PoolSize())
	}
	c.NumGPUs = 4
	if c.PoolSize() != 4 {
		t.Fatal("explicit pool size ignored")
	}
	c.NumGPUs = -1
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for negative pool size")
	}
}

func TestPoolPowerScales(t *testing.T) {
	single := DefaultConfig()
	pool := DefaultConfig()
	pool.NumGPUs = 3
	if pool.Power(1, 0.5) <= single.Power(1, 0.5) {
		t.Fatal("a GPU pool must draw more power at equal per-GPU utilization")
	}
	minS, _ := single.PowerRange()
	minP, _ := pool.PowerRange()
	if minP <= minS {
		t.Fatal("pool idle power must exceed single-GPU idle power")
	}
}
