// Package nn implements the small neural-network stack needed by the DDPG
// benchmark of §6.5 (the vrAIn-inspired actor-critic baseline): dense
// feed-forward networks with manual backpropagation and an Adam optimizer.
//
// The implementation favours clarity and determinism (seeded init, no
// global state) over raw speed — the DDPG baseline trains on a few thousand
// minibatches per run.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Tanh
	Sigmoid
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivFromOut returns dσ/dx expressed via the activation output y = σ(x).
func (a Activation) derivFromOut(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// dense is one fully connected layer.
type dense struct {
	in, out int
	act     Activation
	w       []float64 // out×in, row-major
	b       []float64
	gw      []float64
	gb      []float64

	// forward caches
	x []float64 // last input
	y []float64 // last activated output
}

func newDense(in, out int, act Activation, rng *rand.Rand) *dense {
	d := &dense{
		in: in, out: out, act: act,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		x:  make([]float64, in),
		y:  make([]float64, out),
	}
	// Xavier/Glorot initialization.
	scale := math.Sqrt(2.0 / float64(in+out))
	for i := range d.w {
		d.w[i] = rng.NormFloat64() * scale
	}
	return d
}

func (d *dense) forward(x []float64) []float64 {
	copy(d.x, x)
	for o := 0; o < d.out; o++ {
		s := d.b[o]
		row := d.w[o*d.in : (o+1)*d.in]
		for i, v := range x {
			s += row[i] * v
		}
		d.y[o] = d.act.apply(s)
	}
	return d.y
}

// backward accumulates parameter gradients for the cached forward pass and
// returns the gradient with respect to the layer input.
func (d *dense) backward(dOut []float64) []float64 {
	dIn := make([]float64, d.in)
	for o := 0; o < d.out; o++ {
		delta := dOut[o] * d.act.derivFromOut(d.y[o])
		d.gb[o] += delta
		row := d.w[o*d.in : (o+1)*d.in]
		grow := d.gw[o*d.in : (o+1)*d.in]
		for i := 0; i < d.in; i++ {
			grow[i] += delta * d.x[i]
			dIn[i] += delta * row[i]
		}
	}
	return dIn
}

// Net is a feed-forward network of dense layers.
type Net struct {
	layers []*dense
}

// NewNet builds a network with the given layer sizes (len ≥ 2), hidden
// activation for all but the last layer, and output activation for the
// last. rng seeds the weight initialization and is required.
func NewNet(sizes []int, hidden, output Activation, rng *rand.Rand) (*Net, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("nn: need at least input and output sizes, got %v", sizes)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: rand source required")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("nn: invalid layer size in %v", sizes)
		}
	}
	n := &Net{}
	for i := 0; i < len(sizes)-1; i++ {
		act := hidden
		if i == len(sizes)-2 {
			act = output
		}
		n.layers = append(n.layers, newDense(sizes[i], sizes[i+1], act, rng))
	}
	return n, nil
}

// InputSize returns the expected input dimension.
func (n *Net) InputSize() int { return n.layers[0].in }

// OutputSize returns the output dimension.
func (n *Net) OutputSize() int { return n.layers[len(n.layers)-1].out }

// Forward computes the network output for x; the result aliases internal
// state and is valid until the next Forward call.
func (n *Net) Forward(x []float64) []float64 {
	if len(x) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.InputSize()))
	}
	h := x
	for _, l := range n.layers {
		h = l.forward(h)
	}
	return h
}

// Backward backpropagates dLoss/dOutput through the cached forward pass,
// accumulating parameter gradients, and returns dLoss/dInput.
func (n *Net) Backward(dOut []float64) []float64 {
	if len(dOut) != n.OutputSize() {
		panic(fmt.Sprintf("nn: gradient size %d, want %d", len(dOut), n.OutputSize()))
	}
	g := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].backward(g)
	}
	return g
}

// ZeroGrad clears accumulated gradients.
func (n *Net) ZeroGrad() {
	for _, l := range n.layers {
		for i := range l.gw {
			l.gw[i] = 0
		}
		for i := range l.gb {
			l.gb[i] = 0
		}
	}
}

// params iterates parameter/gradient slices for the optimizer.
func (n *Net) params(f func(p, g []float64)) {
	for _, l := range n.layers {
		f(l.w, l.gw)
		f(l.b, l.gb)
	}
}

// NumParams returns the total parameter count.
func (n *Net) NumParams() int {
	total := 0
	n.params(func(p, _ []float64) { total += len(p) })
	return total
}

// Clone returns a deep copy of the network (used for DDPG target networks).
func (n *Net) Clone() *Net {
	c := &Net{}
	for _, l := range n.layers {
		nl := &dense{
			in: l.in, out: l.out, act: l.act,
			w:  append([]float64(nil), l.w...),
			b:  append([]float64(nil), l.b...),
			gw: make([]float64, len(l.gw)),
			gb: make([]float64, len(l.gb)),
			x:  make([]float64, l.in),
			y:  make([]float64, l.out),
		}
		c.layers = append(c.layers, nl)
	}
	return c
}

// SoftUpdate blends another network's parameters into this one:
// θ ← (1−τ)θ + τ·θ_src. Both nets must share an architecture.
func (n *Net) SoftUpdate(src *Net, tau float64) {
	if len(n.layers) != len(src.layers) {
		panic("nn: SoftUpdate architecture mismatch")
	}
	for li, l := range n.layers {
		sl := src.layers[li]
		if len(l.w) != len(sl.w) {
			panic("nn: SoftUpdate layer size mismatch")
		}
		for i := range l.w {
			l.w[i] = (1-tau)*l.w[i] + tau*sl.w[i]
		}
		for i := range l.b {
			l.b[i] = (1-tau)*l.b[i] + tau*sl.b[i]
		}
	}
}
