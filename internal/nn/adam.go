package nn

import (
	"fmt"
	"math"
)

// Adam is the Adam optimizer (Kingma & Ba) over a Net's parameters.
type Adam struct {
	// LR is the learning rate.
	LR float64
	// Beta1, Beta2, Eps are the standard Adam moments parameters.
	Beta1, Beta2, Eps float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns an Adam optimizer with the given learning rate and
// standard defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
func NewAdam(lr float64) (*Adam, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: non-positive learning rate %v", lr)
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}, nil
}

// Step applies one Adam update using the network's accumulated gradients,
// then zeroes them.
func (a *Adam) Step(n *Net) {
	// Lazily size the moment buffers on first use.
	if a.m == nil {
		n.params(func(p, _ []float64) {
			a.m = append(a.m, make([]float64, len(p)))
			a.v = append(a.v, make([]float64, len(p)))
		})
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	idx := 0
	n.params(func(p, g []float64) {
		m, v := a.m[idx], a.v[idx]
		idx++
		for i := range p {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mh := m[i] / bc1
			vh := v[i] / bc2
			p[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	})
	n.ZeroGrad()
}
