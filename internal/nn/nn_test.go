package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNetValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNet([]int{3}, ReLU, Linear, rng); err == nil {
		t.Fatal("expected error for single-layer spec")
	}
	if _, err := NewNet([]int{3, 0, 1}, ReLU, Linear, rng); err == nil {
		t.Fatal("expected error for zero layer size")
	}
	if _, err := NewNet([]int{3, 4, 1}, ReLU, Linear, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, err := NewNet([]int{3, 8, 2}, Tanh, Sigmoid, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n.InputSize() != 3 || n.OutputSize() != 2 {
		t.Fatalf("sizes (%d,%d), want (3,2)", n.InputSize(), n.OutputSize())
	}
	out := n.Forward([]float64{0.1, -0.2, 0.5})
	if len(out) != 2 {
		t.Fatalf("output length %d", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output %v out of range", v)
		}
	}
}

func TestForwardWrongSizePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, _ := NewNet([]int{2, 2}, ReLU, Linear, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input size")
		}
	}()
	n.Forward([]float64{1})
}

// Gradient check: backprop gradients must match finite differences.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, err := NewNet([]int{3, 5, 4, 1}, Tanh, Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7, 0.2}
	loss := func() float64 {
		y := n.Forward(x)
		return 0.5 * y[0] * y[0]
	}
	// Analytic gradients.
	y := n.Forward(x)
	n.ZeroGrad()
	n.Backward([]float64{y[0]})

	const eps = 1e-6
	idx := 0
	n.params(func(p, g []float64) {
		for i := range p {
			if (idx+i)%7 != 0 { // sample a subset for speed
				continue
			}
			orig := p[i]
			p[i] = orig + eps
			lp := loss()
			p[i] = orig - eps
			lm := loss()
			p[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-g[i]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("gradient mismatch at param %d: analytic %v numeric %v", i, g[i], numeric)
			}
		}
		idx += len(p)
	})
}

// Input gradients must match finite differences too (the DDPG actor update
// differentiates the critic with respect to the action input).
func TestInputGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, err := NewNet([]int{4, 6, 1}, ReLU, Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.3, 0.8, 0.1}
	n.Forward(x)
	n.ZeroGrad()
	dIn := n.Backward([]float64{1})

	const eps = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += eps
		lp := n.Forward(xp)[0]
		xm := append([]float64(nil), x...)
		xm[i] -= eps
		lm := n.Forward(xm)[0]
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dIn[i]) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("input gradient mismatch at %d: analytic %v numeric %v", i, dIn[i], numeric)
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, err := NewNet([]int{1, 16, 1}, Tanh, Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewAdam(0.01)
	if err != nil {
		t.Fatal(err)
	}
	target := func(x float64) float64 { return math.Sin(3 * x) }
	mse := func() float64 {
		var s float64
		for x := -1.0; x <= 1; x += 0.1 {
			d := n.Forward([]float64{x})[0] - target(x)
			s += d * d
		}
		return s / 21
	}
	before := mse()
	for epoch := 0; epoch < 3000; epoch++ {
		x := rng.Float64()*2 - 1
		y := n.Forward([]float64{x})
		n.Backward([]float64{y[0] - target(x)})
		opt.Step(n)
	}
	after := mse()
	if after > before/4 {
		t.Fatalf("Adam failed to learn: mse %v -> %v", before, after)
	}
}

func TestNewAdamValidation(t *testing.T) {
	if _, err := NewAdam(0); err == nil {
		t.Fatal("expected error for zero LR")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, _ := NewNet([]int{2, 4, 1}, ReLU, Linear, rng)
	c := n.Clone()
	x := []float64{0.5, -0.5}
	if n.Forward(x)[0] != c.Forward(x)[0] {
		t.Fatal("clone should match original")
	}
	// Train the original; the clone must stay fixed.
	opt, _ := NewAdam(0.05)
	for i := 0; i < 20; i++ {
		y := n.Forward(x)
		n.Backward([]float64{y[0] - 3})
		opt.Step(n)
	}
	if n.Forward(x)[0] == c.Forward(x)[0] {
		t.Fatal("clone shares parameters with original")
	}
}

func TestSoftUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, _ := NewNet([]int{2, 3, 1}, Tanh, Linear, rng)
	b := a.Clone()
	// Perturb b, then soft-update a toward b with τ=1: a must equal b.
	opt, _ := NewAdam(0.1)
	x := []float64{1, -1}
	for i := 0; i < 10; i++ {
		y := b.Forward(x)
		b.Backward([]float64{y[0] - 2})
		opt.Step(b)
	}
	a.SoftUpdate(b, 1)
	if math.Abs(a.Forward(x)[0]-b.Forward(x)[0]) > 1e-12 {
		t.Fatal("τ=1 soft update should copy parameters")
	}
	// τ=0 must be a no-op.
	before := a.Forward(x)[0]
	a.SoftUpdate(b, 0)
	if a.Forward(x)[0] != before {
		t.Fatal("τ=0 soft update must not change parameters")
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		a    Activation
		x    float64
		want float64
	}{
		{Linear, -2, -2},
		{ReLU, -2, 0},
		{ReLU, 3, 3},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.a.apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("activation %v(%v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

// Property: derivFromOut agrees with numeric derivative of apply.
func TestActivationDerivative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rng.NormFloat64()
		for _, a := range []Activation{Linear, Tanh, Sigmoid} {
			const eps = 1e-6
			numeric := (a.apply(x+eps) - a.apply(x-eps)) / (2 * eps)
			analytic := a.derivFromOut(a.apply(x))
			if math.Abs(numeric-analytic) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, _ := NewNet([]int{3, 5, 2}, ReLU, Linear, rng)
	want := 3*5 + 5 + 5*2 + 2
	if n.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", n.NumParams(), want)
	}
}
