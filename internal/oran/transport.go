// Package oran implements the control plane of Fig. 7 as real network
// components over loopback TCP: a non-RT RIC hosting the EdgeBOL rApps
// (policy service and data collector), a near-RT RIC hosting the xApps
// (A1-P termination, E2 client, KPI database), an E2 node on the vBS, and
// the custom interface to the edge service controller.
//
// Interfaces are message-oriented: length-prefixed JSON frames on
// persistent TCP connections, request/response per message. The framing is
// deliberately simple — the goal is an honest end-to-end code path (policy
// out over A1→E2, KPIs back over E2→O1), not a byte-exact O-RAN ASN.1
// stack.
package oran

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// MaxFrameSize bounds a single message to keep a misbehaving peer from
// forcing unbounded allocation.
const MaxFrameSize = 1 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("oran: frame exceeds MaxFrameSize")

// Message is the envelope of every frame: a type tag and a JSON payload.
type Message struct {
	// Type routes the message (e.g. "a1.policy", "e2.kpi").
	Type string `json:"type"`
	// Payload carries the type-specific body.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Error is set on responses that failed.
	Error string `json:"error,omitempty"`
}

// NewMessage marshals body into a Message of the given type.
func NewMessage(msgType string, body any) (Message, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Message{}, fmt.Errorf("oran: marshal %s: %w", msgType, err)
	}
	return Message{Type: msgType, Payload: raw}, nil
}

// Decode unmarshals the payload into dst.
func (m Message) Decode(dst any) error {
	if m.Error != "" {
		return fmt.Errorf("oran: peer error: %s", m.Error)
	}
	if err := json.Unmarshal(m.Payload, dst); err != nil {
		return fmt.Errorf("oran: decode %s: %w", m.Type, err)
	}
	return nil
}

// WriteFrame writes one length-prefixed message.
func WriteFrame(w io.Writer, m Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("oran: encode frame: %w", err)
	}
	if len(body) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("oran: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("oran: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("oran: read frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return Message{}, fmt.Errorf("oran: decode frame: %w", err)
	}
	return m, nil
}

// Handler processes one request message and produces a response.
type Handler func(Message) (Message, error)

// serverMetrics counts handled messages per interface; a nil pointer is a
// no-op so uninstrumented servers pay only a nil check per frame.
type serverMetrics struct {
	reg   *telemetry.Registry
	iface string
}

func (m *serverMetrics) message(msgType string, failed bool) {
	if m == nil {
		return
	}
	m.reg.Counter("edgebol_oran_messages_total", "iface", m.iface, "type", msgType).Inc()
	if failed {
		m.reg.Counter("edgebol_oran_handler_errors_total", "iface", m.iface).Inc()
	}
}

// Server is a minimal request/response TCP server: each inbound frame is
// answered with exactly one frame. Connections are handled concurrently;
// frames within a connection are processed in order.
type Server struct {
	ln      net.Listener
	handler Handler
	// met is swapped atomically: Instrument may race with connections that
	// arrived between NewServer and the Instrument call.
	met atomic.Pointer[serverMetrics]

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewServer starts a server on addr (use "127.0.0.1:0" for an ephemeral
// loopback port).
func NewServer(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, fmt.Errorf("oran: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("oran: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Instrument counts handled messages in reg under the given interface
// label (edgebol_oran_messages_total{iface,type} and
// edgebol_oran_handler_errors_total{iface}). Call it before the server
// receives traffic; a nil registry leaves the server uninstrumented.
func (s *Server) Instrument(reg *telemetry.Registry, iface string) {
	if reg == nil {
		return
	}
	s.met.Store(&serverMetrics{reg: reg, iface: iface})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // shutting down; nothing to report to
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // connection teardown; the read loop already ended
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadFrame(conn)
		if err != nil {
			return // EOF or broken peer: drop the connection
		}
		resp, err := s.handler(req)
		s.met.Load().message(req.Type, err != nil)
		if err != nil {
			resp = Message{Type: req.Type + ".error", Error: err.Error()}
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close() // forced disconnect; the listener error is the result
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// clientMetrics holds the per-interface request instrumentation; all
// fields are nil-safe no-ops when the client is uninstrumented.
type clientMetrics struct {
	requests   *telemetry.Counter
	errors     *telemetry.Counter
	reconnects *telemetry.Counter
	timeouts   *telemetry.Counter
	latency    *telemetry.Histogram
}

// Client is a synchronous request/response client over one TCP connection.
// It is safe for concurrent use; requests are serialized.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	addr    string
	timeout time.Duration
	met     clientMetrics
}

// Dial connects a client to addr with the given per-request timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialContext(context.Background(), addr, timeout)
}

// DialContext connects like Dial but aborts the connection attempt when
// ctx is canceled. The timeout still bounds every individual request.
func DialContext(ctx context.Context, addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		return nil, fmt.Errorf("oran: non-positive timeout")
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("oran: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, addr: addr, timeout: timeout}, nil
}

// Instrument publishes the client's request metrics into reg under the
// given interface label: edgebol_oran_requests_total,
// edgebol_oran_request_errors_total, edgebol_oran_reconnects_total,
// edgebol_oran_timeouts_total, and the edgebol_oran_request_seconds
// latency histogram, each with {iface}. Call it before issuing requests;
// a nil registry leaves the client uninstrumented.
func (c *Client) Instrument(reg *telemetry.Registry, iface string) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = clientMetrics{
		requests:   reg.Counter("edgebol_oran_requests_total", "iface", iface),
		errors:     reg.Counter("edgebol_oran_request_errors_total", "iface", iface),
		reconnects: reg.Counter("edgebol_oran_reconnects_total", "iface", iface),
		timeouts:   reg.Counter("edgebol_oran_timeouts_total", "iface", iface),
		latency:    reg.Histogram("edgebol_oran_request_seconds", telemetry.LatencyBuckets(), "iface", iface),
	}
}

// Call sends a request and waits for the response. On a broken connection
// it redials once before failing.
func (c *Client) Call(req Message) (Message, error) {
	return c.CallCtx(context.Background(), req)
}

// CallCtx is Call bounded by a context: cancellation aborts an in-flight
// request by force-closing the connection (a partial frame would poison
// the stream anyway; the next call redials), and no reconnect is
// attempted once ctx is done.
func (c *Client) CallCtx(ctx context.Context, req Message) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	c.met.requests.Inc()
	start := time.Now()
	resp, err := c.callLocked(ctx, req)
	if err == nil {
		c.met.latency.ObserveDuration(time.Since(start))
		return resp, nil
	}
	c.noteError(err)
	if ctx.Err() != nil {
		return resp, err
	}
	// One reconnect attempt: control-plane endpoints restart in practice.
	d := net.Dialer{Timeout: c.timeout}
	//edgebol:allow lockhold -- reconnect dial is timeout- and ctx-bounded; the client serializes calls under mu by design
	conn, dialErr := d.DialContext(ctx, "tcp", c.addr)
	if dialErr != nil {
		return Message{}, err
	}
	c.met.reconnects.Inc()
	_ = c.conn.Close() // replacing a conn that already failed
	c.conn = conn
	resp, err = c.callLocked(ctx, req)
	if err != nil {
		c.noteError(err)
		return resp, err
	}
	c.met.latency.ObserveDuration(time.Since(start))
	return resp, nil
}

// noteError classifies a failed request for the error counters.
func (c *Client) noteError(err error) {
	c.met.errors.Inc()
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.met.timeouts.Inc()
	}
}

func (c *Client) callLocked(ctx context.Context, req Message) (Message, error) {
	conn := c.conn
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return Message{}, err
	}
	// Cancellation must unblock the in-flight read, so the abort closes the
	// captured conn from the AfterFunc goroutine; callLocked's caller holds
	// c.mu, which is why the callback touches only the local variable.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	defer stop()
	if err := WriteFrame(conn, req); err != nil {
		return Message{}, err
	}
	resp, err := ReadFrame(conn)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Message{}, cerr
		}
		return Message{}, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("oran: %s: %s", resp.Type, resp.Error)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
