package oran

import "repro/internal/core"

// Message type tags per interface.
const (
	// A1-P Policy Management Service (non-RT RIC → near-RT RIC).
	TypeA1PolicySetup = "a1.policy.setup"
	// O1 KPI collection (non-RT RIC ← near-RT RIC).
	TypeO1Collect = "o1.collect"
	// E2 radio policy enforcement (near-RT RIC → O-eNB).
	TypeE2Policy = "e2.policy"
	// E2 KPI report pull (near-RT RIC ← O-eNB).
	TypeE2KPI = "e2.kpi"
	// E2 context report (slice state: users, CQI statistics).
	TypeE2Context = "e2.context"
	// Custom interface to the edge service controller (Fig. 7).
	TypeServiceConfig = "svc.config"
	TypeServicePeriod = "svc.period"
	// Generic acknowledgement.
	TypeAck = "ack"
)

// RadioPolicy is the A1/E2 policy body: the §3 radio policies.
type RadioPolicy struct {
	// PolicyID identifies the A1 policy instance.
	PolicyID string `json:"policyId"`
	// Airtime is the duty-cycle cap in (0,1].
	Airtime float64 `json:"airtime"`
	// MCS is the normalized max-MCS policy in [0,1].
	MCS float64 `json:"mcs"`
}

// ServiceConfig is the custom-interface body: the service-side policies.
type ServiceConfig struct {
	// Resolution is the image-resolution policy in (0,1].
	Resolution float64 `json:"resolution"`
	// GPUSpeed is the normalized GPU power-limit policy in [0,1].
	GPUSpeed float64 `json:"gpuSpeed"`
}

// PeriodReport is the service controller's response to a period trigger:
// the service-level KPIs measured during the period.
type PeriodReport struct {
	DelaySeconds float64 `json:"delaySeconds"`
	GPUDelay     float64 `json:"gpuDelaySeconds"`
	MAP          float64 `json:"map"`
	ServerPowerW float64 `json:"serverPowerW"`
}

// KPIReport is the E2/O1 KPI body: vBS-side measurements.
type KPIReport struct {
	// BSPowerW is the baseband power-meter reading.
	BSPowerW float64 `json:"bsPowerW"`
	// Period is the data-plane period counter the reading belongs to.
	Period uint64 `json:"period"`
}

// ContextReport carries the slice context over E2/O1.
type ContextReport struct {
	NumUsers int     `json:"numUsers"`
	MeanCQI  float64 `json:"meanCqi"`
	VarCQI   float64 `json:"varCqi"`
}

// Context converts the report to the core type.
func (c ContextReport) Context() core.Context {
	return core.Context{NumUsers: c.NumUsers, MeanCQI: c.MeanCQI, VarCQI: c.VarCQI}
}

// Ack is the generic acknowledgement body.
type Ack struct {
	OK bool `json:"ok"`
}
