package oran

import (
	"testing"
)

func TestA1PolicyLifecycle(t *testing.T) {
	d, _ := newDeployment(t, 21)
	non := d.NonRT

	if err := non.ApplyRadioPolicy(0.7, 0.9); err != nil {
		t.Fatal(err)
	}
	id := non.LastPolicyID()

	// Query returns the deployed instance.
	p, err := non.QueryPolicy(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Airtime != 0.7 || p.MCS != 0.9 {
		t.Fatalf("queried policy %+v does not match deployment", p)
	}

	// List enumerates it.
	ids, err := non.ListPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("policy list %v, want [%s]", ids, id)
	}

	// A second deployment creates a second instance.
	if err := non.ApplyRadioPolicy(0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	ids, err = non.ListPolicies()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("policy list %v, want 2 instances", ids)
	}

	// Deleting a stale instance leaves the active policy alone.
	if err := non.DeletePolicy(id); err != nil {
		t.Fatal(err)
	}
	if _, err := non.QueryPolicy(id); err == nil {
		t.Fatal("deleted policy should not be queryable")
	}
}

func TestA1DeleteActivePolicyRevertsVBS(t *testing.T) {
	d, _ := newDeployment(t, 22)
	non := d.NonRT

	if err := non.ApplyRadioPolicy(0.3, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := non.DeletePolicy(non.LastPolicyID()); err != nil {
		t.Fatal(err)
	}
	// After the revert, a period must run under unconstrained radio
	// defaults (airtime 1): the low-airtime delay penalty disappears.
	report, err := d.DataPlane.RunPeriod()
	if err != nil {
		t.Fatal(err)
	}
	constrained := 0.0
	{
		if err := non.ApplyRadioPolicy(0.3, 0.2); err != nil {
			t.Fatal(err)
		}
		r2, err := d.DataPlane.RunPeriod()
		if err != nil {
			t.Fatal(err)
		}
		constrained = r2.DelaySeconds
	}
	if report.DelaySeconds >= constrained {
		t.Fatalf("revert did not restore default radio policy: default %.3fs vs constrained %.3fs",
			report.DelaySeconds, constrained)
	}
}

func TestA1QueryUnknownPolicy(t *testing.T) {
	d, _ := newDeployment(t, 23)
	if _, err := d.NonRT.QueryPolicy("nope"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if err := d.NonRT.DeletePolicy("nope"); err == nil {
		t.Fatal("expected error deleting unknown policy")
	}
}
