package oran

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// fullControl is a valid joint policy for driving one period.
func fullControl() core.Control {
	return core.Control{Resolution: 0.8, Airtime: 1, GPUSpeed: 0.8, MCS: 1}
}

// TestConcurrentDeployments brings up many control planes at once — the
// fleet pattern — and checks they never collide: every endpoint is
// distinct, every stack measures its own substrate, concurrent teardown
// is clean, and no goroutines leak once all deployments are closed.
func TestConcurrentDeployments(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const n = 8
	type slot struct {
		dep *Deployment
		err error
	}
	slots := make([]slot, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, int64(100+i))
			if err != nil {
				slots[i].err = err
				return
			}
			dep, err := Deploy(context.Background(), tb, DeployOptions{Timeout: 3 * time.Second})
			if err != nil {
				slots[i].err = err
				return
			}
			slots[i].dep = dep
			// Drive a period through the full A1/E2/O1 round trip so the
			// stacks are concurrently active, not just concurrently idle.
			env := dep.Env()
			if _, err := env.Measure(fullControl()); err != nil {
				slots[i].err = fmt.Errorf("deployment %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()

	addrs := make(map[string]int)
	for i, s := range slots {
		if s.err != nil {
			t.Fatal(s.err)
		}
		for _, addr := range []string{
			s.dep.E2Node.Addr(),
			s.dep.ServiceCtl.Addr(),
			s.dep.NearRT.Addr(),
		} {
			if addr == "" {
				t.Fatalf("deployment %d has an unbound endpoint", i)
			}
			if prev, dup := addrs[addr]; dup {
				t.Fatalf("deployments %d and %d share endpoint %s", prev, i, addr)
			}
			addrs[addr] = i
		}
		// Each deployment keeps its own registry (none shared here).
		if s.dep.Registry() != nil {
			t.Fatalf("deployment %d grew a registry no caller supplied", i)
		}
	}

	// Concurrent teardown must be as clean as concurrent bring-up.
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if err := slots[i].dep.Close(); err != nil {
				t.Errorf("deployment %d close: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// Every goroutine the stacks spawned (accept loops, connection
	// handlers, stream pumps, context watchers) must exit. Poll briefly:
	// handler goroutines unwind asynchronously after Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentDeploymentsSharedRegistry is the fleet telemetry shape:
// many deployments instrumenting one registry concurrently. The labeled
// request counters must aggregate without panicking on re-registration.
func TestConcurrentDeploymentsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	const n = 4
	deps := make([]*Deployment, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, int64(200+i))
			if err != nil {
				errs[i] = err
				return
			}
			dep, err := Deploy(context.Background(), tb, DeployOptions{Timeout: 3 * time.Second, Telemetry: reg})
			if err != nil {
				errs[i] = err
				return
			}
			deps[i] = dep
			if _, err := dep.Env().Measure(fullControl()); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("deployment %d: %v", i, err)
		}
	}
	defer func() {
		for _, d := range deps {
			_ = d.Close()
		}
	}()
	snap := reg.Snapshot()
	if got := snap.Counters[`edgebol_oran_requests_total{iface="a1"}`]; got < n {
		t.Fatalf("shared A1 counter %d, want >= %d (one per deployment's period)", got, n)
	}
}
