package oran

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Deployment is a complete loopback control plane: data plane, E2 node,
// service controller, near-RT RIC, and non-RT RIC, all wired over TCP.
type Deployment struct {
	DataPlane  *DataPlane
	E2Node     *E2Node
	ServiceCtl *ServiceController
	NearRT     *NearRTRIC
	NonRT      *NonRTRIC

	svcClient *Client
}

// Deploy stands up the whole Fig. 7 stack on loopback ephemeral ports
// around the given environment (typically a *testbed.Testbed).
func Deploy(env core.Environment, timeout time.Duration) (*Deployment, error) {
	dp, err := NewDataPlane(env)
	if err != nil {
		return nil, err
	}
	// started tracks components brought up so far; fail tears them down
	// in reverse order, keeping the constructor error as the cause.
	var started []interface{ Close() error }
	fail := func(err error) (*Deployment, error) {
		for i := len(started) - 1; i >= 0; i-- {
			_ = started[i].Close() // already failing; surface the root cause
		}
		return nil, err
	}
	e2, err := NewE2Node("127.0.0.1:0", dp)
	if err != nil {
		return fail(err)
	}
	started = append(started, e2)
	svc, err := NewServiceController("127.0.0.1:0", dp)
	if err != nil {
		return fail(err)
	}
	started = append(started, svc)
	near, err := NewNearRTRIC("127.0.0.1:0", e2.Addr(), timeout)
	if err != nil {
		return fail(err)
	}
	started = append(started, near)
	non, err := NewNonRTRIC(near.Addr(), timeout)
	if err != nil {
		return fail(err)
	}
	started = append(started, non)
	svcClient, err := Dial(svc.Addr(), timeout)
	if err != nil {
		return fail(err)
	}
	return &Deployment{
		DataPlane:  dp,
		E2Node:     e2,
		ServiceCtl: svc,
		NearRT:     near,
		NonRT:      non,
		svcClient:  svcClient,
	}, nil
}

// Close tears the stack down.
func (d *Deployment) Close() error {
	var first error
	for _, c := range []interface{ Close() error }{d.svcClient, d.NonRT, d.NearRT, d.ServiceCtl, d.E2Node} {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Environment adapts the deployment to core.Environment: every Measure
// routes the radio policies over A1→E2, the service policies over the
// custom interface, triggers the period, and collects the vBS KPI back
// over E2→O1 — the full Fig. 7 round trip per control period.
type Environment struct {
	d *Deployment
}

// Env returns the deployment's core.Environment view.
func (d *Deployment) Env() *Environment { return &Environment{d: d} }

// Context implements core.Environment via the O1/E2 context pull.
func (e *Environment) Context() core.Context {
	report, err := e.d.NonRT.CollectContext()
	if err != nil {
		// The context pull failing means the control plane is down; the
		// zero context keeps the caller deterministic rather than hiding a
		// torn-down deployment behind a panic.
		return core.Context{}
	}
	return report.Context()
}

// Measure implements core.Environment across the control plane.
func (e *Environment) Measure(x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	// rApp → A1 → xApp → E2: radio policies.
	if err := e.d.NonRT.ApplyRadioPolicy(x.Airtime, x.MCS); err != nil {
		return core.KPIs{}, fmt.Errorf("oran: radio policy: %w", err)
	}
	// Edge orchestrator → service controller: service policies.
	cfg, err := NewMessage(TypeServiceConfig, ServiceConfig{Resolution: x.Resolution, GPUSpeed: x.GPUSpeed})
	if err != nil {
		return core.KPIs{}, err
	}
	if _, err := e.d.svcClient.Call(cfg); err != nil {
		return core.KPIs{}, fmt.Errorf("oran: service config: %w", err)
	}
	// Run the period and collect the service-side KPIs.
	resp, err := e.d.svcClient.Call(Message{Type: TypeServicePeriod})
	if err != nil {
		return core.KPIs{}, fmt.Errorf("oran: period: %w", err)
	}
	var report PeriodReport
	if err := resp.Decode(&report); err != nil {
		return core.KPIs{}, err
	}
	// Data-collector rApp ← O1 ← database xApp ← E2: vBS power.
	kpi, err := e.d.NonRT.CollectBSPower()
	if err != nil {
		return core.KPIs{}, fmt.Errorf("oran: KPI collection: %w", err)
	}
	return core.KPIs{
		Delay:       report.DelaySeconds,
		GPUDelay:    report.GPUDelay,
		MAP:         report.MAP,
		ServerPower: report.ServerPowerW,
		BSPower:     kpi.BSPowerW,
	}, nil
}

var _ core.Environment = (*Environment)(nil)
