package oran

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// DefaultTimeout bounds each control-plane request when DeployOptions
// leaves Timeout zero.
const DefaultTimeout = 5 * time.Second

// DeployOptions configures a Deploy call. The zero value is valid:
// default timeout, no metrics endpoint, no telemetry.
type DeployOptions struct {
	// Timeout bounds every control-plane request (A1, E2, O1, and the
	// custom service interface). Zero or negative means DefaultTimeout.
	Timeout time.Duration
	// MetricsAddr, when non-empty, starts an HTTP server on that address
	// serving /metrics (Prometheus text format) and /debug/pprof. Use
	// "127.0.0.1:0" for an ephemeral port; Deployment.MetricsAddr reports
	// the bound address.
	MetricsAddr string
	// Telemetry receives the deployment's metrics and may be shared with
	// the learning agent (core.Options.Telemetry) so one registry carries
	// the whole loop. Nil with MetricsAddr set auto-creates a registry;
	// nil otherwise disables instrumentation entirely.
	Telemetry *telemetry.Registry
	// CheckpointDir, when non-empty, equips the deployment with a
	// Checkpointer committing agent snapshots into that directory with
	// crash-safe write-then-rename semantics. Drive it via
	// Deployment.Checkpointer().Tick (or Save) from the control loop.
	CheckpointDir string
	// CheckpointEvery sets the Tick interval in observation periods.
	// Zero or negative means no periodic saves (explicit Save only).
	CheckpointEvery int
}

// Deployment is a complete loopback control plane: data plane, E2 node,
// service controller, near-RT RIC, and non-RT RIC, all wired over TCP.
type Deployment struct {
	DataPlane  *DataPlane
	E2Node     *E2Node
	ServiceCtl *ServiceController
	NearRT     *NearRTRIC
	NonRT      *NonRTRIC

	svcClient *Client
	reg       *telemetry.Registry
	ckpt      *Checkpointer
	httpLn    net.Listener
	httpSrv   *http.Server
	stopWatch func() bool

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
}

// Deploy stands up the whole Fig. 7 stack on loopback ephemeral ports
// around the given environment (typically a *testbed.Testbed). The context
// is required: canceling it after a successful return tears the deployment
// down (equivalent to Close), and cancellation during bring-up aborts the
// in-flight dials. Callers that never cancel pass context.Background().
func Deploy(ctx context.Context, env core.Environment, opts DeployOptions) (*Deployment, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	reg := opts.Telemetry
	if reg == nil && opts.MetricsAddr != "" {
		reg = telemetry.NewRegistry()
	}
	dp, err := NewDataPlane(env)
	if err != nil {
		return nil, err
	}
	dp.Instrument(reg)
	// started tracks components brought up so far; fail tears them down
	// in reverse order, keeping the constructor error as the cause.
	var started []interface{ Close() error }
	fail := func(err error) (*Deployment, error) {
		for i := len(started) - 1; i >= 0; i-- {
			_ = started[i].Close() // already failing; surface the root cause
		}
		return nil, err
	}
	e2, err := NewE2Node("127.0.0.1:0", dp)
	if err != nil {
		return fail(err)
	}
	started = append(started, e2)
	e2.Instrument(reg)
	svc, err := NewServiceController("127.0.0.1:0", dp)
	if err != nil {
		return fail(err)
	}
	started = append(started, svc)
	svc.Instrument(reg)
	near, err := NewNearRTRICContext(ctx, "127.0.0.1:0", e2.Addr(), timeout)
	if err != nil {
		return fail(err)
	}
	started = append(started, near)
	near.Instrument(reg)
	non, err := NewNonRTRICContext(ctx, near.Addr(), timeout)
	if err != nil {
		return fail(err)
	}
	started = append(started, non)
	non.Instrument(reg)
	svcClient, err := DialContext(ctx, svc.Addr(), timeout)
	if err != nil {
		return fail(err)
	}
	started = append(started, svcClient)
	svcClient.Instrument(reg, "svc")
	d := &Deployment{
		DataPlane:  dp,
		E2Node:     e2,
		ServiceCtl: svc,
		NearRT:     near,
		NonRT:      non,
		svcClient:  svcClient,
		reg:        reg,
		done:       make(chan struct{}),
	}
	if opts.CheckpointDir != "" {
		ckpt, err := NewCheckpointer(opts.CheckpointDir, opts.CheckpointEvery)
		if err != nil {
			return fail(err)
		}
		ckpt.Instrument(reg)
		d.ckpt = ckpt
	}
	if opts.MetricsAddr != "" {
		ln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			return fail(fmt.Errorf("oran: metrics listen %s: %w", opts.MetricsAddr, err))
		}
		d.httpLn = ln
		d.httpSrv = &http.Server{Handler: telemetry.Mux(reg)}
		//edgebol:allow ctxleak -- Serve loop is stopped by the ctx AfterFunc below via Close, not by observing ctx
		go func() { _ = d.httpSrv.Serve(ln) }() // Serve returns ErrServerClosed on Close
	}
	// After this point the deployment owns its components; a ctx cancel
	// closes the whole stack instead of individual dials.
	d.stopWatch = context.AfterFunc(ctx, func() { _ = d.Close() })
	return d, nil
}

// Registry returns the telemetry registry instrumenting this deployment,
// or nil when telemetry is disabled.
func (d *Deployment) Registry() *telemetry.Registry { return d.reg }

// Checkpointer returns the deployment's checkpointer, or nil when
// DeployOptions.CheckpointDir was empty.
func (d *Deployment) Checkpointer() *Checkpointer { return d.ckpt }

// MetricsAddr returns the bound address of the metrics HTTP endpoint, or
// "" when none was requested.
func (d *Deployment) MetricsAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// Done is closed when the deployment has been torn down, whether by Close
// or by the Deploy context being canceled.
func (d *Deployment) Done() <-chan struct{} { return d.done }

// Close tears the stack down. It is idempotent and safe to race with the
// context watcher installed by Deploy.
func (d *Deployment) Close() error {
	d.closeOnce.Do(func() {
		if d.stopWatch != nil {
			d.stopWatch()
		}
		if d.httpSrv != nil {
			_ = d.httpSrv.Close() // shutting down; nothing left to serve
		}
		var first error
		for _, c := range []interface{ Close() error }{d.svcClient, d.NonRT, d.NearRT, d.ServiceCtl, d.E2Node} {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
		d.closeErr = first
		close(d.done)
	})
	return d.closeErr
}

// Environment adapts the deployment to core.Environment: every Measure
// routes the radio policies over A1→E2, the service policies over the
// custom interface, triggers the period, and collects the vBS KPI back
// over E2→O1 — the full Fig. 7 round trip per control period.
type Environment struct {
	d *Deployment
}

// Env returns the deployment's core.Environment view.
func (d *Deployment) Env() *Environment { return &Environment{d: d} }

// Context implements core.Environment via the O1/E2 context pull.
func (e *Environment) Context() core.Context {
	report, err := e.d.NonRT.CollectContext()
	if err != nil {
		// The context pull failing means the control plane is down; the
		// zero context keeps the caller deterministic rather than hiding a
		// torn-down deployment behind a panic.
		return core.Context{}
	}
	return report.Context()
}

// Measure implements core.Environment across the control plane.
func (e *Environment) Measure(x core.Control) (core.KPIs, error) {
	return e.MeasureCtx(context.Background(), x)
}

// MeasureCtx implements core.ContextEnvironment: the same Fig. 7 round
// trip as Measure, with every control-plane request bounded by ctx so a
// caller can abandon a period mid-flight.
func (e *Environment) MeasureCtx(ctx context.Context, x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	// rApp → A1 → xApp → E2: radio policies.
	if err := e.d.NonRT.ApplyRadioPolicyCtx(ctx, x.Airtime, x.MCS); err != nil {
		return core.KPIs{}, fmt.Errorf("oran: radio policy: %w", err)
	}
	// Edge orchestrator → service controller: service policies.
	cfg, err := NewMessage(TypeServiceConfig, ServiceConfig{Resolution: x.Resolution, GPUSpeed: x.GPUSpeed})
	if err != nil {
		return core.KPIs{}, err
	}
	if _, err := e.d.svcClient.CallCtx(ctx, cfg); err != nil {
		return core.KPIs{}, fmt.Errorf("oran: service config: %w", err)
	}
	// Run the period and collect the service-side KPIs.
	resp, err := e.d.svcClient.CallCtx(ctx, Message{Type: TypeServicePeriod})
	if err != nil {
		return core.KPIs{}, fmt.Errorf("oran: period: %w", err)
	}
	var report PeriodReport
	if err := resp.Decode(&report); err != nil {
		return core.KPIs{}, err
	}
	// Data-collector rApp ← O1 ← database xApp ← E2: vBS power.
	kpi, err := e.d.NonRT.CollectBSPowerCtx(ctx)
	if err != nil {
		return core.KPIs{}, fmt.Errorf("oran: KPI collection: %w", err)
	}
	return core.KPIs{
		Delay:       report.DelaySeconds,
		GPUDelay:    report.GPUDelay,
		MAP:         report.MAP,
		ServerPower: report.ServerPowerW,
		BSPower:     kpi.BSPowerW,
	}, nil
}

var (
	_ core.Environment        = (*Environment)(nil)
	_ core.ContextEnvironment = (*Environment)(nil)
)
