package oran

import (
	"fmt"
	"sort"
	"sync"
)

// A1 Policy Management Service lifecycle (O-RAN.WG2.A1AP): beyond policy
// creation, the non-RT RIC can query, enumerate, and delete policy
// instances held at the near-RT RIC.
const (
	TypeA1PolicyQuery  = "a1.policy.query"
	TypeA1PolicyList   = "a1.policy.list"
	TypeA1PolicyDelete = "a1.policy.delete"
)

// PolicyRef addresses one policy instance.
type PolicyRef struct {
	PolicyID string `json:"policyId"`
}

// PolicyList enumerates policy instances.
type PolicyList struct {
	PolicyIDs []string `json:"policyIds"`
}

// policyStore is the near-RT RIC's policy database.
type policyStore struct {
	mu       sync.Mutex
	policies map[string]RadioPolicy
	active   string // the most recently enforced policy instance
}

func (s *policyStore) put(p RadioPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.policies == nil {
		s.policies = make(map[string]RadioPolicy)
	}
	s.policies[p.PolicyID] = p
	s.active = p.PolicyID
}

func (s *policyStore) get(id string) (RadioPolicy, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.policies[id]
	return p, ok
}

func (s *policyStore) delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.policies[id]; !ok {
		return false
	}
	delete(s.policies, id)
	if s.active == id {
		s.active = ""
	}
	return true
}

func (s *policyStore) list() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.policies))
	for id := range s.policies {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// handlePolicyLifecycle serves the query/list/delete messages from the
// near-RT RIC's policy store. Returns (handled, response, error).
func (r *NearRTRIC) handlePolicyLifecycle(req Message) (bool, Message, error) {
	switch req.Type {
	case TypeA1PolicyQuery:
		var ref PolicyRef
		if err := req.Decode(&ref); err != nil {
			return true, Message{}, err
		}
		p, ok := r.store.get(ref.PolicyID)
		if !ok {
			return true, Message{}, fmt.Errorf("oran: unknown policy %q", ref.PolicyID)
		}
		resp, err := NewMessage(TypeA1PolicyQuery, p)
		return true, resp, err
	case TypeA1PolicyList:
		resp, err := NewMessage(TypeA1PolicyList, PolicyList{PolicyIDs: r.store.list()})
		return true, resp, err
	case TypeA1PolicyDelete:
		var ref PolicyRef
		if err := req.Decode(&ref); err != nil {
			return true, Message{}, err
		}
		if !r.store.delete(ref.PolicyID) {
			return true, Message{}, fmt.Errorf("oran: unknown policy %q", ref.PolicyID)
		}
		// Deleting the active policy reverts the vBS to its unconstrained
		// defaults, as a removed A1 policy no longer binds the scheduler.
		if r.store.active == "" {
			revert, err := NewMessage(TypeE2Policy, RadioPolicy{PolicyID: "default", Airtime: 1, MCS: 1})
			if err != nil {
				return true, Message{}, err
			}
			if _, err := r.e2.Call(revert); err != nil {
				return true, Message{}, err
			}
		}
		resp, err := NewMessage(TypeAck, Ack{OK: true})
		return true, resp, err
	}
	return false, Message{}, nil
}

// QueryPolicy fetches a policy instance from the near-RT RIC.
func (r *NonRTRIC) QueryPolicy(id string) (RadioPolicy, error) {
	req, err := NewMessage(TypeA1PolicyQuery, PolicyRef{PolicyID: id})
	if err != nil {
		return RadioPolicy{}, err
	}
	resp, err := r.a1.Call(req)
	if err != nil {
		return RadioPolicy{}, err
	}
	var p RadioPolicy
	if err := resp.Decode(&p); err != nil {
		return RadioPolicy{}, err
	}
	return p, nil
}

// ListPolicies enumerates the policy instances held at the near-RT RIC.
func (r *NonRTRIC) ListPolicies() ([]string, error) {
	resp, err := r.a1.Call(Message{Type: TypeA1PolicyList})
	if err != nil {
		return nil, err
	}
	var list PolicyList
	if err := resp.Decode(&list); err != nil {
		return nil, err
	}
	return list.PolicyIDs, nil
}

// DeletePolicy removes a policy instance; deleting the active one reverts
// the vBS to unconstrained radio defaults.
func (r *NonRTRIC) DeletePolicy(id string) error {
	req, err := NewMessage(TypeA1PolicyDelete, PolicyRef{PolicyID: id})
	if err != nil {
		return err
	}
	_, err = r.a1.Call(req)
	return err
}

// LastPolicyID returns the id of the most recently deployed policy.
func (r *NonRTRIC) LastPolicyID() string {
	return fmt.Sprintf("edgebol-%d", r.policyID)
}
