package oran

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// slowEchoServer starts a server whose handler stalls, for exercising the
// in-flight cancellation path.
func slowEchoServer(t *testing.T, delay time.Duration) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", func(req Message) (Message, error) {
		time.Sleep(delay)
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestCallCtxCanceledUpfront(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CallCtx(ctx, Message{Type: "ping"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCallCtxAbortsInFlightRequest(t *testing.T) {
	s := slowEchoServer(t, 2*time.Second)
	c, err := Dial(s.Addr(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.CallCtx(ctx, Message{Type: "ping"})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %s, the request timeout dominated", elapsed)
	}
}

func TestClientInstrumentation(t *testing.T) {
	s := echoServer(t)
	s.Instrument(telemetry.NewRegistry(), "ignored") // separate registry: server counters not under test here
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	reg := telemetry.NewRegistry()
	c.Instrument(reg, "e2")
	for i := 0; i < 4; i++ {
		if _, err := c.Call(Message{Type: "ping"}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`edgebol_oran_requests_total{iface="e2"}`]; got != 4 {
		t.Fatalf("requests counter %d", got)
	}
	if got := snap.Histograms[`edgebol_oran_request_seconds{iface="e2"}`].Count; got != 4 {
		t.Fatalf("latency histogram count %d", got)
	}
	if got := snap.Counters[`edgebol_oran_request_errors_total{iface="e2"}`]; got != 0 {
		t.Fatalf("spurious errors %d", got)
	}
}

func TestClientReconnectCounter(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	reg := telemetry.NewRegistry()
	c.Instrument(reg, "svc")
	if _, err := c.Call(Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	// Break the client's connection underneath it; the next call must
	// reconnect transparently and count the event.
	_ = c.conn.Close()
	if _, err := c.Call(Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`edgebol_oran_reconnects_total{iface="svc"}`]; got != 1 {
		t.Fatalf("reconnect counter %d", got)
	}
	if got := snap.Counters[`edgebol_oran_request_errors_total{iface="svc"}`]; got != 1 {
		t.Fatalf("error counter %d", got)
	}
}

func TestDeployTimeoutDefaults(t *testing.T) {
	// The zero DeployOptions must be usable: default timeout, no metrics.
	if DefaultTimeout <= 0 {
		t.Fatal("DefaultTimeout must be positive")
	}
}

func TestSubscribeKPIsContextCancel(t *testing.T) {
	_, srv := newStreamFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	ch, _, err := SubscribeKPIsContext(ctx, srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("unexpected indication")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not close the stream")
	}
}
