package oran

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// fakeSaver is a minimal CheckpointSaver for unit-testing the Checkpointer
// without standing up a learning agent.
type fakeSaver struct {
	obs     int
	payload []byte
	fail    bool
}

func (f *fakeSaver) SaveCheckpoint(w io.Writer) error {
	if f.fail {
		return errors.New("synthetic save failure")
	}
	_, err := w.Write(f.payload)
	return err
}

func (f *fakeSaver) Observations() int { return f.obs }

func TestNewCheckpointerValidation(t *testing.T) {
	if _, err := NewCheckpointer("", 5); err == nil {
		t.Fatal("expected error for empty directory")
	}
}

func TestCheckpointerTickAndLatest(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	s := &fakeSaver{payload: []byte("snapshot-a")}

	// Off-interval ticks are no-ops.
	for _, obs := range []int{0, 1, 3, 4} {
		s.obs = obs
		if path, err := c.Tick(s); err != nil || path != "" {
			t.Fatalf("Tick(obs=%d) = (%q, %v), want no-op", obs, path, err)
		}
	}
	// The interval boundary triggers exactly one save...
	s.obs = 5
	path, err := c.Tick(s)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "ckpt-00000005.ckpt" {
		t.Fatalf("committed %q, want ckpt-00000005.ckpt", path)
	}
	if got, err := os.ReadFile(path); err != nil || string(got) != "snapshot-a" {
		t.Fatalf("checkpoint content %q, %v", got, err)
	}
	// ...and re-ticking at the same counter must not rewrite it.
	if p2, err := c.Tick(s); err != nil || p2 != "" {
		t.Fatalf("duplicate Tick = (%q, %v), want no-op", p2, err)
	}
	// A later boundary commits a new file and moves the latest pointer.
	s.obs = 10
	s.payload = []byte("snapshot-b")
	if _, err := c.Tick(s); err != nil {
		t.Fatal(err)
	}
	latest, err := c.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != "ckpt-00000010.ckpt" {
		t.Fatalf("Latest = %q, want ckpt-00000010.ckpt", latest)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["edgebol_oran_ckpt_writes_total"]; got != 2 {
		t.Fatalf("write counter %d, want 2", got)
	}
	if got := snap.Counters["edgebol_oran_ckpt_write_errors_total"]; got != 0 {
		t.Fatalf("spurious write errors %d", got)
	}
	if got := snap.Gauges["edgebol_oran_ckpt_bytes"]; got != float64(len("snapshot-b")) {
		t.Fatalf("bytes gauge %v", got)
	}
	if got := snap.Histograms["edgebol_oran_ckpt_write_seconds"].Count; got != 2 {
		t.Fatalf("latency histogram count %d", got)
	}
}

func TestCheckpointerDisabledInterval(t *testing.T) {
	c, err := NewCheckpointer(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Instrument(nil) // nil registry must be safe
	s := &fakeSaver{obs: 20, payload: []byte("x")}
	if path, err := c.Tick(s); err != nil || path != "" {
		t.Fatalf("Tick with every=0 = (%q, %v), want no-op", path, err)
	}
	// Explicit saves still work.
	if _, err := c.Save(s); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Latest(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointerSaveError(t *testing.T) {
	c, err := NewCheckpointer(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	s := &fakeSaver{obs: 1, fail: true}
	if _, err := c.Tick(s); err == nil {
		t.Fatal("expected save error to propagate")
	}
	if got := reg.Snapshot().Counters["edgebol_oran_ckpt_write_errors_total"]; got != 1 {
		t.Fatalf("error counter %d, want 1", got)
	}
	if _, err := c.Latest(); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("Latest after failed save = %v, want ErrNoCheckpoint", err)
	}
}

// ckptAgent builds the learning agent used by the kill-and-resume test.
func ckptAgent(t *testing.T) *core.Agent {
	t.Helper()
	a, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDeploymentKillAndResume is the oran-level restore-equivalence check:
// an agent driven through the control plane, checkpointed by the
// deployment's Checkpointer, killed, and resumed from the latest snapshot
// must behave bitwise-identically to one that ran uninterrupted — the
// warm-restart guarantee of the checkpoint subsystem end to end.
func TestDeploymentKillAndResume(t *testing.T) {
	const T, half = 14, 7
	newDep := func(reg *telemetry.Registry, dir string) *Deployment {
		tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 23)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Deploy(context.Background(), tb, DeployOptions{
			Timeout:         3 * time.Second,
			Telemetry:       reg,
			CheckpointDir:   dir,
			CheckpointEvery: half,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}

	// Uninterrupted reference run on its own (identically seeded, hence
	// identical — see TestDeploymentTransparent) deployment.
	straightDep := newDep(nil, t.TempDir())
	straight := ckptAgent(t)
	env := straightDep.Env()
	want := make([]core.Control, 0, T)
	for i := 0; i < T; i++ {
		x, _, _, err := straight.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, x)
	}

	// Interrupted run: checkpoint at the halfway boundary, then "crash".
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	d := newDep(reg, dir)
	ckpt := d.Checkpointer()
	if ckpt == nil {
		t.Fatal("CheckpointDir set but Checkpointer() is nil")
	}
	victim := ckptAgent(t)
	env2 := d.Env()
	got := make([]core.Control, 0, T)
	for i := 0; i < half; i++ {
		x, _, _, err := victim.Step(env2)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, x)
		if _, err := ckpt.Tick(victim); err != nil {
			t.Fatal(err)
		}
	}
	victim = nil // the process dies here; only the files survive

	latest, err := ckpt.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != fmt.Sprintf("ckpt-%08d.ckpt", half) {
		t.Fatalf("latest checkpoint %q, want the period-%d snapshot", latest, half)
	}
	f, err := os.Open(latest)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := core.LoadCheckpoint(f, core.Options{
		Grid:        core.GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Observations() != half {
		t.Fatalf("resumed at %d observations, want %d", resumed.Observations(), half)
	}
	for i := half; i < T; i++ {
		x, _, _, err := resumed.Step(env2)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, x)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("period %d: resumed control %+v != uninterrupted %+v", i, got[i], want[i])
		}
	}
	if got := reg.Snapshot().Counters["edgebol_oran_ckpt_writes_total"]; got != 1 {
		t.Fatalf("checkpoint writes %d, want 1", got)
	}
	// The LATEST pointer must name the committed file (crash-safety
	// ordering: data first, pointer second).
	b, err := os.ReadFile(filepath.Join(dir, "LATEST"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != filepath.Base(latest) {
		t.Fatalf("LATEST names %q, want %q", strings.TrimSpace(string(b)), filepath.Base(latest))
	}
}

func TestDeploymentWithoutCheckpointDir(t *testing.T) {
	d, _ := newDeployment(t, 29)
	if d.Checkpointer() != nil {
		t.Fatal("Checkpointer() should be nil without CheckpointDir")
	}
}

var _ CheckpointSaver = (*core.Agent)(nil)
