package oran

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// raceEnv is a concurrency-safe stub environment: the race regression
// test hammers the transport/stream/dataplane layers, not the testbed.
type raceEnv struct {
	mu      sync.Mutex
	periods int
}

func (e *raceEnv) Context() core.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	return core.Context{NumUsers: 1, MeanCQI: 12, VarCQI: 1}
}

func (e *raceEnv) Measure(x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	e.mu.Lock()
	e.periods++
	e.mu.Unlock()
	return core.KPIs{Delay: 0.2, GPUDelay: 0.1, MAP: 0.6, ServerPower: 80, BSPower: 30}, nil
}

// TestRaceConcurrentPublishSubscribeShutdown is the -race regression for
// the O-RAN concurrency surface: concurrent control periods (publishers),
// in-process and network KPI subscribers joining and leaving, policy
// mutators, and finally a shutdown racing in-flight indications. It has
// no assertions beyond completing without deadlock — its job is to give
// the race detector interleavings to chew on.
func TestRaceConcurrentPublishSubscribeShutdown(t *testing.T) {
	dp, err := NewDataPlane(&raceEnv{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewKPIStreamServer("127.0.0.1:0", dp)
	if err != nil {
		t.Fatal(err)
	}

	const (
		publishers = 4
		periods    = 25
		netSubs    = 3
		localSubs  = 3
		mutators   = 2
	)
	var wg sync.WaitGroup

	// Publishers: concurrent control periods fanning KPI reports out.
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < periods; i++ {
				if _, err := dp.RunPeriod(); err != nil {
					t.Errorf("RunPeriod: %v", err)
					return
				}
			}
		}()
	}

	// Policy mutators: stage radio/service changes mid-stream.
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < periods; i++ {
				air := 0.5 + 0.5*float64((i+m)%2)
				if err := dp.SetRadio(RadioPolicy{Airtime: air, MCS: 1}); err != nil {
					t.Errorf("SetRadio: %v", err)
					return
				}
				if err := dp.SetService(ServiceConfig{Resolution: 0.5 + 0.25*float64(i%3), GPUSpeed: 1}); err != nil {
					t.Errorf("SetService: %v", err)
					return
				}
			}
		}(m)
	}

	// In-process subscribers: join, drain a few reports, leave.
	for s := 0; s < localSubs; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := dp.Subscribe()
			defer cancel()
			for i := 0; i < 5; i++ {
				select {
				case _, ok := <-ch:
					if !ok {
						return
					}
				case <-time.After(2 * time.Second):
					return
				}
			}
		}()
	}

	// Network subscribers: full TCP subscribe/indicate/cancel round trips.
	for s := 0; s < netSubs; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel, err := SubscribeKPIs(srv.Addr(), 2*time.Second)
			if err != nil {
				// The server may already be closing under us; that
				// interleaving is part of what the test exercises.
				return
			}
			defer cancel()
			for i := 0; i < 5; i++ {
				select {
				case _, ok := <-ch:
					if !ok {
						return
					}
				case <-time.After(2 * time.Second):
					return
				}
			}
		}()
	}

	wg.Wait()

	// Shutdown racing one last burst of publishes and a late subscriber.
	var tail sync.WaitGroup
	tail.Add(2)
	go func() {
		defer tail.Done()
		for i := 0; i < periods; i++ {
			if _, err := dp.RunPeriod(); err != nil {
				t.Errorf("RunPeriod during shutdown: %v", err)
				return
			}
		}
	}()
	go func() {
		defer tail.Done()
		if ch, cancel, err := SubscribeKPIs(srv.Addr(), 500*time.Millisecond); err == nil {
			defer cancel()
			select {
			case <-ch:
			case <-time.After(time.Second):
			}
		}
	}()
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	tail.Wait()

	// Idempotent close must stay clean after everything settled.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
