package oran

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// DataPlane is the simulated machine room: the vBS and the GPU edge server
// share the testbed model, the vBS side staging the E2 radio policies and
// the service side the custom-interface configuration. RunPeriod executes
// one control period against the composed configuration.
//
// In the hardware prototype these are two physical boxes with the UE's
// traffic flowing between them; here they are two protocol endpoints over
// one simulator, which preserves the control-plane code path exactly.
type DataPlane struct {
	mu sync.Mutex

	env interface {
		core.Environment
	}
	radio   RadioPolicy
	service ServiceConfig

	period  uint64
	lastKPI core.KPIs
	hasKPI  bool

	subs    subscriptions
	periods *telemetry.Counter
}

// NewDataPlane wraps an environment (typically *testbed.Testbed) with
// staged policy state. Initial policies are maximum-resource defaults.
func NewDataPlane(env core.Environment) (*DataPlane, error) {
	if env == nil {
		return nil, fmt.Errorf("oran: nil environment")
	}
	return &DataPlane{
		env:     env,
		radio:   RadioPolicy{Airtime: 1, MCS: 1},
		service: ServiceConfig{Resolution: 1, GPUSpeed: 1},
	}, nil
}

// Instrument publishes data-plane activity into reg:
// edgebol_oran_periods_total for completed control periods,
// edgebol_oran_indications_published_total /
// edgebol_oran_indications_dropped_total for the KPI REPORT fan-out.
// Call it before the deployment serves traffic; nil disables.
func (d *DataPlane) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	d.mu.Lock()
	d.periods = reg.Counter("edgebol_oran_periods_total")
	d.mu.Unlock()
	d.subs.instrument(reg)
}

// SetRadio stages an E2 radio policy.
func (d *DataPlane) SetRadio(p RadioPolicy) error {
	if p.Airtime <= 0 || p.Airtime > 1 {
		return fmt.Errorf("oran: airtime %v outside (0,1]", p.Airtime)
	}
	if p.MCS < 0 || p.MCS > 1 {
		return fmt.Errorf("oran: MCS policy %v outside [0,1]", p.MCS)
	}
	d.mu.Lock()
	d.radio = p
	d.mu.Unlock()
	return nil
}

// SetService stages the service-side configuration.
func (d *DataPlane) SetService(c ServiceConfig) error {
	if c.Resolution <= 0 || c.Resolution > 1 {
		return fmt.Errorf("oran: resolution %v outside (0,1]", c.Resolution)
	}
	if c.GPUSpeed < 0 || c.GPUSpeed > 1 {
		return fmt.Errorf("oran: GPU speed %v outside [0,1]", c.GPUSpeed)
	}
	d.mu.Lock()
	d.service = c
	d.mu.Unlock()
	return nil
}

// RunPeriod executes one control period under the staged policies and
// returns the service-side report. The vBS-side KPI is retained for the
// next E2 pull.
func (d *DataPlane) RunPeriod() (PeriodReport, error) {
	d.mu.Lock()
	//edgebol:allow safectrl -- actuation boundary: composed from range-checked staged policies and validated below before Measure
	x := core.Control{
		Resolution: d.service.Resolution,
		Airtime:    d.radio.Airtime,
		GPUSpeed:   d.service.GPUSpeed,
		MCS:        d.radio.MCS,
	}
	d.mu.Unlock()
	if err := x.Validate(); err != nil {
		return PeriodReport{}, fmt.Errorf("oran: staged policies compose an invalid control: %w", err)
	}
	k, err := d.env.Measure(x)
	if err != nil {
		return PeriodReport{}, err
	}
	d.mu.Lock()
	d.period++
	d.lastKPI = k
	d.hasKPI = true
	d.periods.Inc()
	report := KPIReport{BSPowerW: k.BSPower, Period: d.period}
	d.mu.Unlock()
	d.subs.publish(report)
	return PeriodReport{
		DelaySeconds: k.Delay,
		GPUDelay:     k.GPUDelay,
		MAP:          k.MAP,
		ServerPowerW: k.ServerPower,
	}, nil
}

// KPI returns the vBS-side report for the most recent period.
func (d *DataPlane) KPI() (KPIReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.hasKPI {
		return KPIReport{}, fmt.Errorf("oran: no period has run yet")
	}
	return KPIReport{BSPowerW: d.lastKPI.BSPower, Period: d.period}, nil
}

// ContextReport returns the slice context as seen at the vBS.
func (d *DataPlane) ContextReport() ContextReport {
	ctx := d.env.Context()
	return ContextReport{NumUsers: ctx.NumUsers, MeanCQI: ctx.MeanCQI, VarCQI: ctx.VarCQI}
}
