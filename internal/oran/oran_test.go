package oran

import (
	"bytes"
	"context"
	"encoding/binary"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func TestFrameRoundTrip(t *testing.T) {
	msg, err := NewMessage("test.echo", RadioPolicy{PolicyID: "p1", Airtime: 0.5, MCS: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != "test.echo" {
		t.Fatalf("type %q, want test.echo", got.Type)
	}
	var p RadioPolicy
	if err := got.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.PolicyID != "p1" || p.Airtime != 0.5 || p.MCS != 0.8 {
		t.Fatalf("payload corrupted: %+v", p)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	buf.Write(hdr[:])
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("!!!!")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected decode error for garbage body")
	}
}

func TestDecodePeerError(t *testing.T) {
	m := Message{Type: "x", Error: "boom"}
	var dst Ack
	if err := m.Decode(&dst); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected peer error, got %v", err)
	}
}

func echoServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", func(m Message) (Message, error) {
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestClientServerCall(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req, _ := NewMessage("ping", Ack{OK: true})
	resp, err := c.Call(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != "ping" {
		t.Fatalf("echo type %q", resp.Type)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := echoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				req, _ := NewMessage("ping", Ack{OK: true})
				if _, err := c.Call(req); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerHandlerError(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", func(m Message) (Message, error) {
		return Message{}, &timeoutError{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(Message{Type: "x"}); err == nil {
		t.Fatal("expected handler error to propagate")
	}
}

type timeoutError struct{}

func (*timeoutError) Error() string { return "synthetic failure" }

func TestClientReconnects(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Break the connection under the client.
	c.conn.Close()
	req, _ := NewMessage("ping", Ack{OK: true})
	if _, err := c.Call(req); err != nil {
		t.Fatalf("client should redial once: %v", err)
	}
}

func newDeployment(t *testing.T, seed int64) (*Deployment, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, seed)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(context.Background(), tb, DeployOptions{Timeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, tb
}

func TestDataPlaneValidation(t *testing.T) {
	if _, err := NewDataPlane(nil); err == nil {
		t.Fatal("expected error for nil environment")
	}
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDataPlane(tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.SetRadio(RadioPolicy{Airtime: 0, MCS: 0.5}); err == nil {
		t.Fatal("expected error for zero airtime")
	}
	if err := dp.SetService(ServiceConfig{Resolution: 2, GPUSpeed: 0.5}); err == nil {
		t.Fatal("expected error for resolution > 1")
	}
	if _, err := dp.KPI(); err == nil {
		t.Fatal("expected error before any period ran")
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	d, _ := newDeployment(t, 7)
	env := d.Env()
	ctx := env.Context()
	if ctx.NumUsers != 1 || ctx.MeanCQI != 15 {
		t.Fatalf("context over O1 wrong: %+v", ctx)
	}
	x := core.Control{Resolution: 0.82, Airtime: 1, GPUSpeed: 0.6, MCS: 1}
	k, err := env.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	if k.Delay <= 0 || k.MAP <= 0 || k.ServerPower <= 0 || k.BSPower <= 0 {
		t.Fatalf("degenerate KPIs over the stack: %+v", k)
	}
}

// The control plane must be a pure transport: KPIs measured through the
// full A1/E2/O1 round trip must equal a direct testbed measurement with
// the same seed and the same sequence of controls.
func TestDeploymentTransparent(t *testing.T) {
	d, _ := newDeployment(t, 11)
	direct, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 11)
	if err != nil {
		t.Fatal(err)
	}
	env := d.Env()
	controls := []core.Control{
		{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1},
		{Resolution: 0.5, Airtime: 0.6, GPUSpeed: 0.3, MCS: 0.8},
		{Resolution: 0.82, Airtime: 0.9, GPUSpeed: 0.7, MCS: 0.4},
	}
	for i, x := range controls {
		got, err := env.Measure(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Measure(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("control %d: stack KPIs %+v != direct %+v", i, got, want)
		}
	}
}

func TestMeasureRejectsInvalidControl(t *testing.T) {
	d, _ := newDeployment(t, 13)
	if _, err := d.Env().Measure(core.Control{}); err == nil {
		t.Fatal("expected validation error")
	}
}

// EdgeBOL must be able to learn across the real control plane exactly as it
// does against the direct testbed.
func TestEdgeBOLOverControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane learning test skipped in -short mode")
	}
	d, _ := newDeployment(t, 17)
	agent, err := core.NewAgent(core.Options{
		Grid:        core.GridSpec{Levels: 5, MinResolution: 0.1, MinAirtime: 0.1},
		Weights:     core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := d.Env()
	var lastInfo core.SelectionInfo
	for i := 0; i < 30; i++ {
		_, _, info, err := agent.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		lastInfo = info
	}
	if agent.Observations() != 30 {
		t.Fatalf("agent recorded %d observations", agent.Observations())
	}
	if lastInfo.SafeSetSize < 1 {
		t.Fatal("safe set collapsed over the control plane")
	}
}
