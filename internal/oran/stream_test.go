package oran

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func newStreamFixture(t *testing.T) (*DataPlane, *KPIStreamServer) {
	t.Helper()
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDataPlane(tb)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewKPIStreamServer("127.0.0.1:0", dp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return dp, srv
}

func runPeriods(t *testing.T, dp *DataPlane, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := dp.RunPeriod(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInProcessSubscription(t *testing.T) {
	dp, _ := newStreamFixture(t)
	ch, cancel := dp.Subscribe()
	defer cancel()
	runPeriods(t, dp, 3)
	for want := uint64(1); want <= 3; want++ {
		select {
		case r := <-ch:
			if r.Period != want {
				t.Fatalf("period %d, want %d", r.Period, want)
			}
			if r.BSPowerW <= 0 {
				t.Fatal("degenerate KPI")
			}
		case <-time.After(time.Second):
			t.Fatal("indication missing")
		}
	}
}

func TestSubscriptionCancelClosesChannel(t *testing.T) {
	dp, _ := newStreamFixture(t)
	ch, cancel := dp.Subscribe()
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed after cancel")
	}
	// Publishing after cancel must not panic.
	runPeriods(t, dp, 1)
}

func TestSlowSubscriberDoesNotBlockDataPlane(t *testing.T) {
	dp, _ := newStreamFixture(t)
	_, cancel := dp.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		runPeriods(t, dp, 40) // more than the buffer size
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("data plane blocked on a slow subscriber")
	}
}

func TestNetworkSubscription(t *testing.T) {
	dp, srv := newStreamFixture(t)
	ch, cancel, err := SubscribeKPIs(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	runPeriods(t, dp, 5)
	got := 0
	timeout := time.After(2 * time.Second)
	for got < 5 {
		select {
		case r, ok := <-ch:
			if !ok {
				t.Fatal("stream closed early")
			}
			if r.BSPowerW <= 0 {
				t.Fatal("degenerate indication")
			}
			got++
		case <-timeout:
			t.Fatalf("received only %d/5 indications", got)
		}
	}
}

func TestNetworkSubscriptionCancel(t *testing.T) {
	dp, srv := newStreamFixture(t)
	ch, cancel, err := SubscribeKPIs(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// Channel must close once the connection drops.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				runPeriods(t, dp, 1) // and the data plane keeps working
				return
			}
		case <-deadline:
			t.Fatal("channel did not close after cancel")
		}
	}
}

func TestStreamServerRejectsWrongFirstFrame(t *testing.T) {
	_, srv := newStreamFixture(t)
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A non-subscribe first frame should get the connection dropped.
	if _, err := c.Call(Message{Type: "bogus"}); err == nil {
		t.Fatal("expected error for non-subscribe first frame")
	}
}

func TestNewKPIStreamServerValidation(t *testing.T) {
	if _, err := NewKPIStreamServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("expected error for nil data plane")
	}
}

// End to end: the near-real-time flow of Fig. 7's database xApp — a
// subscriber fed by periods driven through the full control plane.
func TestSubscriptionThroughDeployment(t *testing.T) {
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(context.Background(), tb, DeployOptions{Timeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	stream, err := NewKPIStreamServer("127.0.0.1:0", d.DataPlane)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	ch, cancel, err := SubscribeKPIs(stream.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	env := d.Env()
	x := core.Control{Resolution: 0.82, Airtime: 1, GPUSpeed: 0.6, MCS: 1}
	if _, err := env.Measure(x); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.Period != 1 {
			t.Fatalf("indication period %d, want 1", r.Period)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no indication for a control-plane-driven period")
	}
}
