package oran

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Subscription message types (E2SM-KPM-style REPORT service).
const (
	TypeE2Subscribe   = "e2.subscribe"
	TypeE2KPIIndicate = "e2.kpi.indication"
)

// subscriptions is the publish side of the KPI REPORT service, embedded in
// the DataPlane: every completed period is pushed to all subscribers.
type subscriptions struct {
	mu   sync.Mutex
	next int
	subs map[int]chan KPIReport

	published *telemetry.Counter
	dropped   *telemetry.Counter
}

// instrument counts published and dropped indications; nil handles are
// no-ops, so an uninstrumented publish path is unchanged.
func (s *subscriptions) instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.published = reg.Counter("edgebol_oran_indications_published_total")
	s.dropped = reg.Counter("edgebol_oran_indications_dropped_total")
}

// subscribe registers a subscriber with a small buffer.
func (s *subscriptions) subscribe() (int, <-chan KPIReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs == nil {
		s.subs = make(map[int]chan KPIReport)
	}
	id := s.next
	s.next++
	ch := make(chan KPIReport, 16)
	s.subs[id] = ch
	return id, ch
}

// unsubscribe removes a subscriber.
func (s *subscriptions) unsubscribe(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.subs[id]; ok {
		delete(s.subs, id)
		close(ch)
	}
}

// publish fans a report out without blocking: a stalled subscriber drops
// indications rather than stalling the data plane.
func (s *subscriptions) publish(r KPIReport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		select {
		case ch <- r:
			s.published.Inc()
		default:
			// A stalled subscriber loses indications instead of stalling
			// the data plane; the drop counter makes that visible.
			s.dropped.Inc()
		}
	}
}

// Subscribe registers an in-process KPI subscriber on the data plane.
// Every RunPeriod publishes one report. Close the subscription with the
// returned cancel function.
func (d *DataPlane) Subscribe() (<-chan KPIReport, func()) {
	id, ch := d.subs.subscribe()
	return ch, func() { d.subs.unsubscribe(id) }
}

// KPIStreamServer is the network side of the REPORT service: a TCP
// endpoint on the E2 node where a peer sends one e2.subscribe frame and
// then receives e2.kpi.indication frames for every control period until it
// disconnects.
type KPIStreamServer struct {
	ln net.Listener
	dp *DataPlane

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	// done unblocks serve goroutines waiting on idle subscription
	// channels during Close; without it, Close would deadlock on any
	// subscriber with no in-flight indications.
	done chan struct{}
}

// NewKPIStreamServer starts the REPORT endpoint on addr.
func NewKPIStreamServer(addr string, dp *DataPlane) (*KPIStreamServer, error) {
	if dp == nil {
		return nil, fmt.Errorf("oran: nil data plane")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("oran: listen %s: %w", addr, err)
	}
	s := &KPIStreamServer{ln: ln, dp: dp, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the endpoint address.
func (s *KPIStreamServer) Addr() string { return s.ln.Addr().String() }

func (s *KPIStreamServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // shutting down; nothing to report to
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *KPIStreamServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // subscriber teardown; the stream is already over
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	req, err := ReadFrame(conn)
	if err != nil || req.Type != TypeE2Subscribe {
		return
	}
	ack, err := NewMessage(TypeAck, Ack{OK: true})
	if err != nil {
		return
	}
	if err := WriteFrame(conn, ack); err != nil {
		return
	}
	ch, cancel := s.dp.Subscribe()
	defer cancel()
	// A read loop in the background turns a peer disconnect into a conn
	// error immediately, so an idle subscriber's departure is noticed.
	peerGone := make(chan struct{})
	go func() {
		defer close(peerGone)
		for {
			if _, err := ReadFrame(conn); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case report, ok := <-ch:
			if !ok {
				return
			}
			msg, err := NewMessage(TypeE2KPIIndicate, report)
			if err != nil {
				return
			}
			if err := WriteFrame(conn, msg); err != nil {
				return
			}
		case <-peerGone:
			return
		case <-s.done:
			return
		}
	}
}

// Close stops the endpoint and disconnects subscribers.
func (s *KPIStreamServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	err := s.ln.Close()
	for c := range s.conns {
		_ = c.Close() // forced disconnect; the listener error is the result
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// SubscribeKPIs dials a KPIStreamServer and returns a channel of
// indications. The channel closes when the connection drops; call the
// returned cancel function to disconnect.
func SubscribeKPIs(addr string, timeout time.Duration) (<-chan KPIReport, func(), error) {
	return SubscribeKPIsContext(context.Background(), addr, timeout)
}

// SubscribeKPIsContext is SubscribeKPIs with the dial and the stream's
// lifetime bounded by ctx: cancellation disconnects the subscription and
// closes the returned channel.
func SubscribeKPIsContext(ctx context.Context, addr string, timeout time.Duration) (<-chan KPIReport, func(), error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("oran: dial %s: %w", addr, err)
	}
	req := Message{Type: TypeE2Subscribe}
	if err := WriteFrame(conn, req); err != nil {
		_ = conn.Close() // subscribe failed; report the write error
		return nil, nil, err
	}
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("oran: set ack deadline: %w", err)
	}
	ack, err := ReadFrame(conn)
	if err != nil || ack.Error != "" {
		_ = conn.Close() // subscribe failed; report the ack error
		return nil, nil, fmt.Errorf("oran: subscribe failed: %v %s", err, ack.Error)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("oran: clear ack deadline: %w", err)
	}
	out := make(chan KPIReport, 16)
	// Cancellation closes the conn, which unblocks the reader and closes
	// the channel — the same teardown path as an explicit cancel call.
	stop := context.AfterFunc(ctx, func() { _ = conn.Close() })
	//edgebol:allow ctxleak -- reader observes cancellation through the AfterFunc above closing the conn
	go func() {
		defer stop()
		defer close(out)
		defer func() { _ = conn.Close() }() // reader exit closes the stream
		for {
			msg, err := ReadFrame(conn)
			if err != nil {
				return
			}
			if msg.Type != TypeE2KPIIndicate {
				continue
			}
			var r KPIReport
			if err := msg.Decode(&r); err != nil {
				return
			}
			out <- r
		}
	}()
	cancel := func() { _ = conn.Close() } // cancel is best-effort by contract
	return out, cancel, nil
}
