package oran

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/telemetry"
)

// CheckpointSaver is the slice of core.Agent the control plane needs to
// checkpoint learned state: a serializer and a monotone progress counter
// that names the snapshot. Taking an interface (rather than *core.Agent)
// keeps the oran layer decoupled from the learning stack and lets tests
// inject failing savers.
type CheckpointSaver interface {
	// SaveCheckpoint writes a complete snapshot to w.
	SaveCheckpoint(w io.Writer) error
	// Observations reports how many periods the saver has absorbed;
	// checkpoints are named after this counter.
	Observations() int
}

// Checkpointer persists agent snapshots into a directory with crash-safe
// commit semantics (data file renamed into place before the LATEST pointer
// moves — see checkpoint.Commit). It is driven either periodically via
// Tick from the deployment's control loop or explicitly via Save.
type Checkpointer struct {
	dir       string
	every     int
	lastSaved int

	writes   *telemetry.Counter
	errs     *telemetry.Counter
	bytes    *telemetry.Gauge
	writeLat *telemetry.Histogram
}

// NewCheckpointer returns a Checkpointer writing into dir. When every > 0,
// Tick saves whenever the saver's observation counter reaches a multiple
// of it; when every <= 0, Tick is a no-op and only explicit Save calls
// write snapshots.
func NewCheckpointer(dir string, every int) (*Checkpointer, error) {
	if dir == "" {
		return nil, fmt.Errorf("oran: checkpoint directory must not be empty")
	}
	return &Checkpointer{dir: dir, every: every, lastSaved: -1}, nil
}

// Dir reports the directory snapshots are committed into.
func (c *Checkpointer) Dir() string { return c.dir }

// Instrument registers the checkpointer's metrics with reg. Safe to call
// with a nil registry (telemetry handles are nil-safe).
func (c *Checkpointer) Instrument(reg *telemetry.Registry) {
	c.writes = reg.Counter("edgebol_oran_ckpt_writes_total")
	c.errs = reg.Counter("edgebol_oran_ckpt_write_errors_total")
	c.bytes = reg.Gauge("edgebol_oran_ckpt_bytes")
	c.writeLat = reg.Histogram("edgebol_oran_ckpt_write_seconds", telemetry.LatencyBuckets())
}

// Tick saves a checkpoint when the saver's observation counter has reached
// the configured interval. It returns the committed file path ("" when
// this tick did not trigger a save).
func (c *Checkpointer) Tick(a CheckpointSaver) (string, error) {
	if c.every <= 0 {
		return "", nil
	}
	obs := a.Observations()
	if obs <= 0 || obs%c.every != 0 || obs == c.lastSaved {
		return "", nil
	}
	return c.Save(a)
}

// Save unconditionally snapshots the saver and commits the result as
// ckpt-<observations, zero-padded>, returning the committed path. Zero
// padding keeps lexical order equal to numeric order, which
// checkpoint.Latest relies on when the LATEST pointer is missing.
func (c *Checkpointer) Save(a CheckpointSaver) (string, error) {
	start := time.Now()
	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		c.errs.Inc()
		return "", fmt.Errorf("oran: checkpoint encode: %w", err)
	}
	obs := a.Observations()
	name := fmt.Sprintf("ckpt-%08d", obs)
	path, err := checkpoint.Commit(c.dir, name, buf.Bytes())
	if err != nil {
		c.errs.Inc()
		return "", fmt.Errorf("oran: checkpoint commit: %w", err)
	}
	c.lastSaved = obs
	c.writes.Inc()
	c.bytes.Set(float64(buf.Len()))
	c.writeLat.Observe(time.Since(start).Seconds())
	return path, nil
}

// Latest resolves the most recent committed checkpoint in the directory.
// It returns checkpoint.ErrNoCheckpoint when none has been written yet.
func (c *Checkpointer) Latest() (string, error) {
	return checkpoint.Latest(c.dir)
}
