package oran

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: arbitrary policy payloads survive the frame round trip intact.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := RadioPolicy{
			PolicyID: randString(rng, 1+rng.Intn(40)),
			Airtime:  rng.Float64(),
			MCS:      rng.Float64(),
		}
		msg, err := NewMessage("prop.test", in)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, msg); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		var out RadioPolicy
		if err := got.Decode(&out); err != nil {
			return false
		}
		return out == in && got.Type == "prop.test"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: back-to-back frames on one stream decode in order.
func TestFrameStreamingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		var buf bytes.Buffer
		want := make([]KPIReport, n)
		for i := range want {
			want[i] = KPIReport{BSPowerW: rng.Float64() * 10, Period: uint64(i)}
			msg, err := NewMessage(TypeE2KPI, want[i])
			if err != nil {
				return false
			}
			if err := WriteFrame(&buf, msg); err != nil {
				return false
			}
		}
		for i := range want {
			msg, err := ReadFrame(&buf)
			if err != nil {
				return false
			}
			var got KPIReport
			if err := msg.Decode(&got); err != nil {
				return false
			}
			if got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randString(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz-0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// Truncated frames must fail cleanly, never hang or panic.
func TestReadFrameTruncated(t *testing.T) {
	msg, err := NewMessage("x", Ack{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}
