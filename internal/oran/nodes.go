package oran

import (
	"context"
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// E2Node is the vBS-side E2 termination (the srsRAN modification of §6.1):
// it enforces radio policies from the near-RT RIC and serves KPI and
// context pulls.
type E2Node struct {
	server *Server
	dp     *DataPlane
}

// NewE2Node starts the E2 termination on addr.
func NewE2Node(addr string, dp *DataPlane) (*E2Node, error) {
	n := &E2Node{dp: dp}
	server, err := NewServer(addr, n.handle)
	if err != nil {
		return nil, err
	}
	n.server = server
	return n, nil
}

// Addr returns the E2 endpoint address.
func (n *E2Node) Addr() string { return n.server.Addr() }

// Instrument counts E2 messages handled by the node in reg.
func (n *E2Node) Instrument(reg *telemetry.Registry) { n.server.Instrument(reg, "e2") }

// Close stops the node.
func (n *E2Node) Close() error { return n.server.Close() }

func (n *E2Node) handle(req Message) (Message, error) {
	switch req.Type {
	case TypeE2Policy:
		var p RadioPolicy
		if err := req.Decode(&p); err != nil {
			return Message{}, err
		}
		if err := n.dp.SetRadio(p); err != nil {
			return Message{}, err
		}
		return NewMessage(TypeAck, Ack{OK: true})
	case TypeE2KPI:
		kpi, err := n.dp.KPI()
		if err != nil {
			return Message{}, err
		}
		return NewMessage(TypeE2KPI, kpi)
	case TypeE2Context:
		return NewMessage(TypeE2Context, n.dp.ContextReport())
	default:
		return Message{}, fmt.Errorf("oran: E2 node: unknown message %q", req.Type)
	}
}

// ServiceController is the edge-server-side endpoint of Fig. 7's custom
// interface: it applies service configuration (resolution, GPU speed) and
// runs control periods.
type ServiceController struct {
	server *Server
	dp     *DataPlane
}

// NewServiceController starts the controller on addr.
func NewServiceController(addr string, dp *DataPlane) (*ServiceController, error) {
	c := &ServiceController{dp: dp}
	server, err := NewServer(addr, c.handle)
	if err != nil {
		return nil, err
	}
	c.server = server
	return c, nil
}

// Addr returns the controller's address.
func (c *ServiceController) Addr() string { return c.server.Addr() }

// Instrument counts custom-interface messages handled by the controller.
func (c *ServiceController) Instrument(reg *telemetry.Registry) { c.server.Instrument(reg, "svc") }

// Close stops the controller.
func (c *ServiceController) Close() error { return c.server.Close() }

func (c *ServiceController) handle(req Message) (Message, error) {
	switch req.Type {
	case TypeServiceConfig:
		var cfg ServiceConfig
		if err := req.Decode(&cfg); err != nil {
			return Message{}, err
		}
		if err := c.dp.SetService(cfg); err != nil {
			return Message{}, err
		}
		return NewMessage(TypeAck, Ack{OK: true})
	case TypeServicePeriod:
		report, err := c.dp.RunPeriod()
		if err != nil {
			return Message{}, err
		}
		return NewMessage(TypeServicePeriod, report)
	default:
		return Message{}, fmt.Errorf("oran: service controller: unknown message %q", req.Type)
	}
}

// NearRTRIC hosts the xApps of Fig. 7: the A1-P termination that forwards
// radio policies to the E2 node, and the database xApp that pulls KPIs over
// E2 and serves them upward over O1.
type NearRTRIC struct {
	server *Server
	e2     *Client
	store  policyStore
}

// NewNearRTRIC starts the near-RT RIC on addr, connected to the E2 node.
func NewNearRTRIC(addr, e2Addr string, timeout time.Duration) (*NearRTRIC, error) {
	return NewNearRTRICContext(context.Background(), addr, e2Addr, timeout)
}

// NewNearRTRICContext is NewNearRTRIC with the E2 dial bounded by ctx.
func NewNearRTRICContext(ctx context.Context, addr, e2Addr string, timeout time.Duration) (*NearRTRIC, error) {
	e2, err := DialContext(ctx, e2Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("oran: near-RT RIC: %w", err)
	}
	r := &NearRTRIC{e2: e2}
	server, err := NewServer(addr, r.handle)
	if err != nil {
		_ = e2.Close() // already failing; surface the server error
		return nil, err
	}
	r.server = server
	return r, nil
}

// Addr returns the RIC's A1/O1 endpoint address.
func (r *NearRTRIC) Addr() string { return r.server.Addr() }

// Instrument counts A1/O1 messages handled by the RIC and the latency of
// its xApp-side E2 calls.
func (r *NearRTRIC) Instrument(reg *telemetry.Registry) {
	r.server.Instrument(reg, "a1")
	r.e2.Instrument(reg, "e2")
}

// Close stops the RIC.
func (r *NearRTRIC) Close() error {
	err := r.server.Close()
	if cerr := r.e2.Close(); err == nil {
		err = cerr
	}
	return err
}

func (r *NearRTRIC) handle(req Message) (Message, error) {
	if handled, resp, err := r.handlePolicyLifecycle(req); handled {
		return resp, err
	}
	switch req.Type {
	case TypeA1PolicySetup:
		// Policy xApp: translate the A1 policy into an E2 enforcement.
		var p RadioPolicy
		if err := req.Decode(&p); err != nil {
			return Message{}, err
		}
		fwd, err := NewMessage(TypeE2Policy, p)
		if err != nil {
			return Message{}, err
		}
		if _, err := r.e2.Call(fwd); err != nil {
			return Message{}, err
		}
		r.store.put(p)
		return NewMessage(TypeAck, Ack{OK: true})
	case TypeO1Collect:
		// Database xApp: pull the vBS KPI over E2 and forward it.
		resp, err := r.e2.Call(Message{Type: TypeE2KPI})
		if err != nil {
			return Message{}, err
		}
		return resp, nil
	case TypeE2Context:
		resp, err := r.e2.Call(Message{Type: TypeE2Context})
		if err != nil {
			return Message{}, err
		}
		return resp, nil
	default:
		return Message{}, fmt.Errorf("oran: near-RT RIC: unknown message %q", req.Type)
	}
}

// NonRTRIC hosts the rApps of Fig. 7 on the SMO side: the policy-service
// rApp (A1 client) and the data-collector rApp (O1 client). The learning
// agent calls it in-process.
type NonRTRIC struct {
	a1       *Client
	policyID int
}

// NewNonRTRIC connects the non-RT RIC to a near-RT RIC endpoint.
func NewNonRTRIC(nearRTAddr string, timeout time.Duration) (*NonRTRIC, error) {
	return NewNonRTRICContext(context.Background(), nearRTAddr, timeout)
}

// NewNonRTRICContext is NewNonRTRIC with the A1 dial bounded by ctx.
func NewNonRTRICContext(ctx context.Context, nearRTAddr string, timeout time.Duration) (*NonRTRIC, error) {
	a1, err := DialContext(ctx, nearRTAddr, timeout)
	if err != nil {
		return nil, fmt.Errorf("oran: non-RT RIC: %w", err)
	}
	return &NonRTRIC{a1: a1}, nil
}

// Close disconnects the RIC.
func (r *NonRTRIC) Close() error { return r.a1.Close() }

// Instrument counts the rApps' A1/O1 requests and their latency.
func (r *NonRTRIC) Instrument(reg *telemetry.Registry) { r.a1.Instrument(reg, "a1") }

// ApplyRadioPolicy deploys the radio policies through the A1 Policy
// Management Service.
func (r *NonRTRIC) ApplyRadioPolicy(airtime, mcs float64) error {
	return r.ApplyRadioPolicyCtx(context.Background(), airtime, mcs)
}

// ApplyRadioPolicyCtx is ApplyRadioPolicy bounded by ctx.
func (r *NonRTRIC) ApplyRadioPolicyCtx(ctx context.Context, airtime, mcs float64) error {
	r.policyID++
	req, err := NewMessage(TypeA1PolicySetup, RadioPolicy{
		PolicyID: fmt.Sprintf("edgebol-%d", r.policyID),
		Airtime:  airtime,
		MCS:      mcs,
	})
	if err != nil {
		return err
	}
	_, err = r.a1.CallCtx(ctx, req)
	return err
}

// CollectBSPower pulls the latest vBS power reading over O1.
func (r *NonRTRIC) CollectBSPower() (KPIReport, error) {
	return r.CollectBSPowerCtx(context.Background())
}

// CollectBSPowerCtx is CollectBSPower bounded by ctx.
func (r *NonRTRIC) CollectBSPowerCtx(ctx context.Context) (KPIReport, error) {
	resp, err := r.a1.CallCtx(ctx, Message{Type: TypeO1Collect})
	if err != nil {
		return KPIReport{}, err
	}
	var kpi KPIReport
	if err := resp.Decode(&kpi); err != nil {
		return KPIReport{}, err
	}
	return kpi, nil
}

// CollectContext pulls the slice context.
func (r *NonRTRIC) CollectContext() (ContextReport, error) {
	return r.CollectContextCtx(context.Background())
}

// CollectContextCtx is CollectContext bounded by ctx.
func (r *NonRTRIC) CollectContextCtx(ctx context.Context) (ContextReport, error) {
	resp, err := r.a1.CallCtx(ctx, Message{Type: TypeE2Context})
	if err != nil {
		return ContextReport{}, err
	}
	var rep ContextReport
	if err := resp.Decode(&rep); err != nil {
		return ContextReport{}, err
	}
	return rep, nil
}
