package oran

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// restartServer closes s and brings a fresh Server up on the same address,
// retrying briefly in case the kernel has not released the port yet.
func restartServer(t *testing.T, s *Server, handler Handler) *Server {
	t.Helper()
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var (
		next *Server
		err  error
	)
	deadline := time.Now().Add(5 * time.Second)
	for {
		next, err = NewServer(addr, handler)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { next.Close() })
	return next
}

// TestClientSurvivesServerRestart covers the full-restart case (not just a
// dropped connection): the server process goes away entirely and comes back
// on the same address. The client's next call must transparently redial,
// the reconnect counter must record the event, and subsequent calls must
// behave as if nothing happened.
func TestClientSurvivesServerRestart(t *testing.T) {
	echo := func(m Message) (Message, error) { return m, nil }
	s, err := NewServer("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := telemetry.NewRegistry()
	c.Instrument(reg, "svc")

	if _, err := c.Call(Message{Type: "ping"}); err != nil {
		t.Fatal(err)
	}
	restartServer(t, s, echo)
	// The first call after the restart rides the dead connection, fails,
	// and must recover by redialing the (new) server at the old address.
	if _, err := c.Call(Message{Type: "ping"}); err != nil {
		t.Fatalf("call across server restart: %v", err)
	}
	if _, err := c.Call(Message{Type: "ping"}); err != nil {
		t.Fatalf("steady-state call after reconnect: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`edgebol_oran_reconnects_total{iface="svc"}`]; got != 1 {
		t.Fatalf("reconnect counter %d, want 1", got)
	}
	if got := snap.Counters[`edgebol_oran_requests_total{iface="svc"}`]; got != 3 {
		t.Fatalf("request counter %d, want 3", got)
	}
}

// TestKPISubscriptionResumesAfterRestart: a streaming subscriber whose
// server restarts sees its channel close (no silent stall), and a fresh
// subscription against the restarted server picks the stream back up.
func TestKPISubscriptionResumesAfterRestart(t *testing.T) {
	dp, srv := newStreamFixture(t)
	ch, cancel, err := SubscribeKPIs(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	runPeriods(t, dp, 1)
	select {
	case r := <-ch:
		if r.Period != 1 {
			t.Fatalf("pre-restart indication period %d, want 1", r.Period)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no indication before restart")
	}

	// Full restart on the same address.
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The subscriber must observe the outage as a closed channel.
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("expected channel close, got an indication")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription did not observe the server going away")
	}
	var srv2 *KPIStreamServer
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv2, err = NewKPIStreamServer(addr, dp)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { srv2.Close() })

	ch2, cancel2, err := SubscribeKPIs(srv2.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	runPeriods(t, dp, 1)
	select {
	case r := <-ch2:
		if r.Period != 2 {
			t.Fatalf("post-restart indication period %d, want 2", r.Period)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no indication after resubscribing")
	}
}

// TestRestartLeavesNoGoroutines churns a client through a server restart,
// tears everything down, and insists the goroutine count returns to its
// baseline — the reconnect path must not leak reader loops.
func TestRestartLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		echo := func(m Message) (Message, error) { return m, nil }
		s, err := NewServer("127.0.0.1:0", echo)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Dial(s.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Call(Message{Type: "ping"}); err != nil {
			t.Fatal(err)
		}
		s2 := restartServer(t, s, echo)
		if _, err := c.Call(Message{Type: "ping"}); err != nil {
			t.Fatal(err)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	// Teardown is asynchronous (reader loops unwind on close); poll with a
	// deadline instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after teardown", runtime.NumGoroutine(), base)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
