package gp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchDims matches the agent's joint feature space (3 context + 4 control).
const benchDims = 7

// benchGridSize matches the paper's 11⁴-point control grid.
const benchGridSize = 14641

// benchGP builds a GP with t seeded pseudo-random observations over the
// joint feature space, mimicking the agent's per-period state.
func benchGP(b *testing.B, t int) *GP {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	ls := []float64{0.6, 0.6, 0.6, 1.0, 1.0, 1.2, 1.2}
	g := New(NewMatern32(ls), 1e-3, 0)
	for i := 0; i < t; i++ {
		x := make([]float64, benchDims)
		for d := range x {
			x[d] = rng.Float64()
		}
		if err := g.Add(x, rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// benchCandidates enumerates a deterministic pseudo-grid of candidate
// feature vectors the size of the paper's control grid.
func benchCandidates(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	cands := make([][]float64, n)
	for i := range cands {
		c := make([]float64, benchDims)
		for d := range c {
			c[d] = rng.Float64()
		}
		cands[i] = c
	}
	return cands
}

// BenchmarkPosteriorBatch measures the per-period posterior sweep over the
// full 14 641-point grid at several history sizes t — the dominant
// wall-clock of every EdgeBOL experiment. Fixed seeds make runs
// reproducible; `make bench` records the results in BENCH_gp.json.
func BenchmarkPosteriorBatch(b *testing.B) {
	for _, t := range []int{50, 200, 1000} {
		if testing.Short() && t > 200 {
			continue
		}
		g := benchGP(b, t)
		cands := benchCandidates(benchGridSize)
		mu := make([]float64, len(cands))
		sigma := make([]float64, len(cands))
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.PosteriorBatch(cands, mu, sigma)
			}
		})
	}
}

// BenchmarkPosteriorBatchWorkers fixes t=200 and varies the explicit worker
// count, exposing the sharding scaling on multi-core runners (results are
// bitwise identical across the variants; only wall-clock differs).
func BenchmarkPosteriorBatchWorkers(b *testing.B) {
	g := benchGP(b, 200)
	cands := benchCandidates(benchGridSize)
	mu := make([]float64, len(cands))
	sigma := make([]float64, len(cands))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.PosteriorBatchWorkers(cands, mu, sigma, workers)
			}
		})
	}
}
