package gp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchDims matches the agent's joint feature space (3 context + 4 control).
const benchDims = 7

// benchGridSize matches the paper's 11⁴-point control grid.
const benchGridSize = 14641

// benchGP builds a GP with t seeded pseudo-random observations over the
// joint feature space, mimicking the agent's per-period state.
func benchGP(b *testing.B, t int) *GP {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	ls := []float64{0.6, 0.6, 0.6, 1.0, 1.0, 1.2, 1.2}
	g := New(NewMatern32(ls), 1e-3, 0)
	for i := 0; i < t; i++ {
		x := make([]float64, benchDims)
		for d := range x {
			x[d] = rng.Float64()
		}
		if err := g.Add(x, rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// benchCandidates enumerates a deterministic pseudo-grid of candidate
// feature vectors the size of the paper's control grid.
func benchCandidates(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	cands := make([][]float64, n)
	for i := range cands {
		c := make([]float64, benchDims)
		for d := range c {
			c[d] = rng.Float64()
		}
		cands[i] = c
	}
	return cands
}

// benchSparseGP is benchGP on the inducing-point engine: same stream of
// observations, basis bounded at m.
func benchSparseGP(b *testing.B, t, m int) *GP {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	ls := []float64{0.6, 0.6, 0.6, 1.0, 1.0, 1.2, 1.2}
	g, err := NewSparse(NewMatern32(ls), 1e-3, SparseConfig{MaxInducing: m})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < t; i++ {
		x := make([]float64, benchDims)
		for d := range x {
			x[d] = rng.Float64()
		}
		if err := g.Add(x, rng.NormFloat64()); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// benchExactCap is the largest history the exact-engine benchmarks run
// at: above it the O(t²)-per-candidate sweep takes minutes per iteration
// and the sparse engine is the supported configuration, so the exact
// variants skip with a logged reason instead of burning CI time.
const benchExactCap = 1000

// BenchmarkPosteriorBatch measures the per-period posterior sweep over the
// full 14 641-point grid at several history sizes t — the dominant
// wall-clock of every EdgeBOL experiment. Fixed seeds make runs
// reproducible; `make bench` records the results in BENCH_gp.json. The
// engine=sparse variants pin the inducing-point engine's flat per-period
// cost out to t=10⁴ (m=128 basis); exact entries above benchExactCap skip.
func BenchmarkPosteriorBatch(b *testing.B) {
	cands := benchCandidates(benchGridSize)
	mu := make([]float64, len(cands))
	sigma := make([]float64, len(cands))
	for _, t := range []int{50, 200, 1000, 5000} {
		if testing.Short() && t > 200 {
			continue
		}
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			if t > benchExactCap {
				b.Skipf("exact engine skipped at t=%d: O(t²) per-candidate sweep; see the engine=sparse variant", t)
			}
			g := benchGP(b, t)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.PosteriorBatch(cands, mu, sigma, BatchOptions{})
			}
		})
	}
	for _, t := range []int{1000, 5000, 10000} {
		// t=1000 stays in short mode so bench-check gates the sparse
		// engine too; the longer horizons are full-run only.
		if testing.Short() && t > 1000 {
			continue
		}
		b.Run(fmt.Sprintf("t=%d/engine=sparse", t), func(b *testing.B) {
			g := benchSparseGP(b, t, 128)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.PosteriorBatch(cands, mu, sigma, BatchOptions{})
			}
		})
	}
}

// BenchmarkPosteriorBatchWorkers fixes t=200 and varies the explicit worker
// count, exposing the sharding scaling on multi-core runners (results are
// bitwise identical across the variants; only wall-clock differs).
func BenchmarkPosteriorBatchWorkers(b *testing.B) {
	g := benchGP(b, 200)
	cands := benchCandidates(benchGridSize)
	mu := make([]float64, len(cands))
	sigma := make([]float64, len(cands))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.PosteriorBatch(cands, mu, sigma, BatchOptions{Workers: workers})
			}
		})
	}
	// workers=auto guards the ResolveWorkers policy: auto must never lose
	// meaningfully to the best explicit count on the same machine.
	b.Run("workers=auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.PosteriorBatch(cands, mu, sigma, BatchOptions{Workers: 0})
		}
	})
}

// benchLevels is the paper's 11-level control grid as per-dimension level
// values: 4 control dimensions × 11 levels = the 14 641-point sweep.
func benchLevels() [][]float64 {
	out := make([][]float64, 4)
	for d := range out {
		lv := make([]float64, 11)
		for i := range lv {
			lv[i] = float64(i) / 10
		}
		out[d] = lv
	}
	return out
}

// BenchmarkGridSweep compares the generic posterior path against the
// grid-structured SweepPlan on the same grid, same GP, same context — the
// tentpole speedup. The two engines produce bitwise-identical posteriors;
// benchjson pairs the engine=plan entries with their engine=generic
// counterparts to print the speedup column.
func BenchmarkGridSweep(b *testing.B) {
	levels := benchLevels()
	ctx := []float64{0.4, 0.55, 0.3}
	for _, t := range []int{50, 200, 1000} {
		if testing.Short() && t > 200 {
			continue
		}
		g := benchGP(b, t)
		feats := enumerateGrid(ctx, levels)
		if len(feats) != benchGridSize {
			b.Fatalf("grid enumerated to %d points, want %d", len(feats), benchGridSize)
		}
		mu := make([]float64, len(feats))
		sigma := make([]float64, len(feats))
		b.Run(fmt.Sprintf("t=%d/engine=generic", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.PosteriorBatch(feats, mu, sigma, BatchOptions{Workers: 0})
			}
		})
		plan, err := NewSweepPlan(g, 3, levels)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("t=%d/engine=plan", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan.Sweep(ctx, mu, sigma, 0)
			}
		})
	}
}
