package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// SparseConfig configures the inducing-point (DTC/Nyström) engine. The
// zero value of any field selects its default.
type SparseConfig struct {
	// MaxInducing is the inducing-point budget m: posterior cost is O(m²)
	// per candidate regardless of how many observations have streamed in.
	// Default 128 — large enough that the sparse posterior tracks the
	// exact one to ~1e-2 σ on EdgeBOL's normalized 7-dim surfaces, small
	// enough that a full 11⁴-grid sweep runs in tens of milliseconds.
	MaxInducing int
	// InsertTol is the novelty threshold for growing the basis while under
	// budget: a point is admitted when its Nyström residual variance
	// exceeds InsertTol·prior. Default 1e-3.
	InsertTol float64
	// SwapMargin gates basis swaps once the budget is full: the candidate's
	// residual variance times the victim's redundancy diag(K_mm⁻¹) must
	// exceed this (dimensionless) margin. Default 4 — high enough that the
	// basis settles instead of thrashing on near-duplicate contexts.
	SwapMargin float64
}

func (c SparseConfig) withDefaults() SparseConfig {
	if c.MaxInducing == 0 {
		c.MaxInducing = 128
	}
	if c.InsertTol == 0 {
		c.InsertTol = 1e-3
	}
	if c.SwapMargin == 0 {
		c.SwapMargin = 4
	}
	return c
}

func (c SparseConfig) validate() error {
	if c.MaxInducing < 1 {
		return fmt.Errorf("gp: inducing budget %d must be at least 1", c.MaxInducing)
	}
	if c.InsertTol < 0 || math.IsNaN(c.InsertTol) {
		return fmt.Errorf("gp: invalid insert tolerance %v", c.InsertTol)
	}
	if c.SwapMargin < 0 || math.IsNaN(c.SwapMargin) {
		return fmt.Errorf("gp: invalid swap margin %v", c.SwapMargin)
	}
	return nil
}

// sparseRefactorEvery bounds the drift of the rank-1-updated Σ factor: after
// this many streaming updates the factor is rebuilt from the accumulated
// moments. 256 keeps the amortized refactorization cost below one rank-1
// update while holding the factor within a few ulps of a fresh build.
const sparseRefactorEvery = 256

// sparseState is the inducing-point engine grafted onto a GP when it runs
// in sparse mode (GP.sp != nil). It maintains the DTC posterior
//
//	Σ        = K_mm + ζ⁻²·A,   A = Σ_t k_m(x_t)·k_m(x_t)ᵀ
//	α        = ζ⁻²·Σ⁻¹·b,      b = Σ_t y_t·k_m(x_t)
//	μ(x)     = k_m(x)ᵀ·α
//	σ²(x)    = k(x,x) − ‖L_mm⁻¹k_m(x)‖² + ‖L_Σ⁻¹k_m(x)‖²
//
// where k_m(x) is the cross-covariance to the m inducing inputs. A and b
// are per-basis-point sums over the history, so removing a basis point is
// exact row/column deletion — no history pass — while inserting one costs
// a single O(t·m·d) pass to build its row.
//
// kmm and a use a fixed stride of cfg.MaxInducing so the basis grows and
// shrinks without reshaping; the live block is the leading m×m.
type sparseState struct {
	cfg SparseConfig

	zs []float64 // flat row-major inducing inputs, m×dim
	m  int

	kmm []float64 // K_mm, MaxInducing-stride square
	a   []float64 // A moment matrix, MaxInducing-stride square
	b   []float64 // information vector, length MaxInducing (live [:m])

	cholKmm *linalg.Cholesky // factor of K_mm (+jitter)
	cholSig *linalg.Cholesky // factor of Σ, rank-1 streamed + periodically rebuilt
	alpha   []float64        // ζ⁻²·Σ⁻¹·b, length MaxInducing (live [:m])

	// zeroAlpha is an all-zero mean vector: the fused panel solve requires
	// an α of factor size, and the K_mm solve of the predictive variance
	// has no mean term.
	zeroAlpha []float64

	sumYY float64 // Σ y², for the streaming log marginal likelihood

	// qdiag caches diag(K_mm⁻¹) — the redundancy scores that pick swap
	// victims — lazily per basis generation.
	qdiag      []float64
	qdiagValid bool

	inserts, swaps uint64
	sinceRefactor  int

	// Mutation-path scratch (never touched by the concurrent read paths).
	kbuf, vbuf []float64
	solve1     [][]float64
}

func newSparseState(cfg SparseConfig, dim int) *sparseState {
	capm := cfg.MaxInducing
	return &sparseState{
		cfg:       cfg,
		zs:        make([]float64, 0, capm*dim),
		kmm:       make([]float64, capm*capm),
		a:         make([]float64, capm*capm),
		b:         make([]float64, capm),
		alpha:     make([]float64, 0, capm),
		zeroAlpha: make([]float64, capm),
		qdiag:     make([]float64, capm),
		kbuf:      make([]float64, capm),
		vbuf:      make([]float64, capm),
		solve1:    make([][]float64, 1),
	}
}

// NewSparse returns a GP running the inducing-point engine from the start.
// Kernel and noise validation match New; the sliding-window bound does not
// apply (the basis budget is the memory bound — see Add).
func NewSparse(kernel Kernel, noiseVar float64, cfg SparseConfig) (*GP, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := New(kernel, noiseVar, 0)
	g.sp = newSparseState(cfg, g.dim)
	return g, nil
}

// IsSparse reports whether the GP runs the inducing-point engine.
func (g *GP) IsSparse() bool { return g.sp != nil }

// EngineName returns "sparse" or "exact", the identifier used by
// checkpoints and telemetry labels.
func (g *GP) EngineName() string {
	if g.sp != nil {
		return "sparse"
	}
	return "exact"
}

// InducingLen returns the current inducing-set size (0 in exact mode).
func (g *GP) InducingLen() int {
	if g.sp == nil {
		return 0
	}
	return g.sp.m
}

// MaxInducing returns the inducing budget m (0 in exact mode).
func (g *GP) MaxInducing() int {
	if g.sp == nil {
		return 0
	}
	return g.sp.cfg.MaxInducing
}

// InducingInserts returns the cumulative number of basis insertions.
func (g *GP) InducingInserts() uint64 {
	if g.sp == nil {
		return 0
	}
	return g.sp.inserts
}

// InducingSwaps returns the cumulative number of basis swaps. Sweep plans
// key their table rebuilds on it in sparse mode, the way Evictions() keys
// them in exact mode: a swap renumbers the basis rows.
func (g *GP) InducingSwaps() uint64 {
	if g.sp == nil {
		return 0
	}
	return g.sp.swaps
}

// SparseConfigOf returns the engine configuration (zero value in exact
// mode).
func (g *GP) SparseConfigOf() SparseConfig {
	if g.sp == nil {
		return SparseConfig{}
	}
	return g.sp.cfg
}

// ConvertToSparse switches an exact GP to the inducing-point engine,
// replaying its retained history through the streaming update path so the
// result is identical to having run sparse from the first observation.
// Conversion is one-way; it fails on a GP that is already sparse.
//
// The sliding-window bound stops applying after conversion: eviction
// exists to cap the exact engine's O(t³) growth, and the sparse engine's
// costs are bounded by the basis budget instead, so discarding history
// would only lose information (see Add).
func (g *GP) ConvertToSparse(cfg SparseConfig) error {
	if g.sp != nil {
		return fmt.Errorf("gp: already sparse")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	xs, ys := g.xs, g.ys
	g.xs, g.ys, g.chol, g.alpha = nil, nil, nil, nil
	g.sp = newSparseState(cfg, g.dim)
	for i := range ys {
		g.ingestSparse(xs[i*g.dim:(i+1)*g.dim], ys[i])
	}
	g.met.inducing.Set(float64(g.sp.m))
	return nil
}

// addSparse is the Add path of the sparse engine: decide basis membership,
// retain the observation, fold it into the moments, and refresh telemetry.
func (g *GP) addSparse(x []float64, y float64) error {
	g.ingestSparse(x, y)
	g.met.observations.Inc()
	g.met.inducing.Set(float64(g.sp.m))
	return nil
}

// ingestSparse runs one observation through admission and learning. The
// admission step sees the history *before* x — an inserted basis point's
// moment row is built from past observations only — and the learning step
// then adds x's own contribution over the (possibly grown) basis, so the
// two passes never double-count.
func (g *GP) ingestSparse(x []float64, y float64) {
	g.sparseAdmit(x)
	g.xs = append(g.xs, x...)
	g.ys = append(g.ys, y)
	g.sparseLearn(x, y)
}

// sparseAdmit decides whether x joins the inducing set: under budget it is
// inserted when its Nyström residual variance τ = k(x,x) − ‖L_mm⁻¹k_m(x)‖²
// clears the novelty threshold; at budget it displaces the most redundant
// basis point when τ·diag(K_mm⁻¹) clears the swap margin.
func (g *GP) sparseAdmit(x []float64) {
	sp := g.sp
	m := sp.m
	if m == 0 {
		g.sparseInsert(x)
		return
	}
	prior := g.kernel.Prior()
	k := sp.kbuf[:m]
	g.kernel.EvalBatch(sp.zs, g.dim, x, k)
	v := sp.vbuf[:m]
	copy(v, k)
	sp.solve1[0] = v
	sp.cholKmm.ForwardSolveBatch(sp.solve1)
	tau := prior - linalg.Dot(v, v)
	if tau < 0 {
		tau = 0
	}
	if m < sp.cfg.MaxInducing {
		if tau > sp.cfg.InsertTol*prior {
			g.sparseInsert(x)
		}
		return
	}
	victim := sp.victim()
	if tau*sp.qdiag[victim] > sp.cfg.SwapMargin {
		g.sparseRemove(victim)
		g.sparseInsert(x)
		sp.swaps++
		g.met.swapsCtr.Inc()
	}
}

// victim returns the index of the most redundant basis point — the argmax
// of diag(K_mm⁻¹) = ‖L_mm⁻¹e_i‖², computed lazily once per basis
// generation (O(m³), invalidated by insert/remove).
func (sp *sparseState) victim() int {
	m := sp.m
	if !sp.qdiagValid {
		for i := 0; i < m; i++ {
			e := sp.vbuf[:m]
			for j := range e {
				e[j] = 0
			}
			e[i] = 1
			sp.solve1[0] = e
			sp.cholKmm.ForwardSolveBatch(sp.solve1)
			sp.qdiag[i] = linalg.Dot(e, e)
		}
		sp.qdiagValid = true
	}
	best := 0
	for i := 1; i < m; i++ {
		if sp.qdiag[i] > sp.qdiag[best] {
			best = i
		}
	}
	return best
}

// sparseInsert appends z to the inducing set: one O(t·m·d) history pass
// builds its moment row/column and information entry, then both factors
// grow by one bordered row in O(m²).
func (g *GP) sparseInsert(z []float64) {
	sp := g.sp
	m := sp.m
	stride := sp.cfg.MaxInducing
	prior := g.kernel.Prior()
	t := g.Len()

	kz := sp.kbuf[:m]
	g.kernel.EvalBatch(sp.zs, g.dim, z, kz)

	// New moment row over the history: A[m][j] = Σ_t k_j(x_t)·k_z(x_t),
	// b[m] = Σ_t y_t·k_z(x_t). Per-basis-point sums are independent, so
	// this is the only place a history pass ever happens.
	newRow := make([]float64, m)
	var newDiag, newB float64
	if t > 0 {
		kn := make([]float64, t)
		g.kernel.EvalBatch(g.xs, g.dim, z, kn)
		newB = linalg.Dot(g.ys, kn)
		newDiag = linalg.Dot(kn, kn)
		col := make([]float64, t)
		for j := 0; j < m; j++ {
			g.kernel.EvalBatch(g.xs, g.dim, sp.zs[j*g.dim:(j+1)*g.dim], col)
			newRow[j] = linalg.Dot(col, kn)
		}
	}

	//edgebol:allow nanguard -- noiseVar is validated positive at construction (New)
	invNoise := 1 / g.noiseVar
	if m == 0 {
		cholKmm, err := linalg.NewCholesky(linalg.NewMatrixFrom(1, 1, []float64{prior}))
		if err != nil {
			panic(fmt.Sprintf("gp: inducing seed factor: %v", err))
		}
		cholSig, err := linalg.NewCholesky(linalg.NewMatrixFrom(1, 1, []float64{prior + invNoise*newDiag}))
		if err != nil {
			panic(fmt.Sprintf("gp: inducing seed Σ factor: %v", err))
		}
		sp.cholKmm, sp.cholSig = cholKmm, cholSig
	} else {
		if err := sp.cholKmm.Append(kz, prior); err != nil {
			// K_mm rows are admitted only above the novelty threshold, so the
			// bordered pivot stays well clear of zero even before jitter.
			panic(fmt.Sprintf("gp: inducing factor append: %v", err))
		}
		sigRow := sp.vbuf[:m]
		for j := 0; j < m; j++ {
			sigRow[j] = kz[j] + invNoise*newRow[j]
		}
		if err := sp.cholSig.Append(sigRow, prior+invNoise*newDiag); err != nil {
			panic(fmt.Sprintf("gp: inducing Σ factor append: %v", err))
		}
	}

	for j := 0; j < m; j++ {
		sp.kmm[m*stride+j] = kz[j]
		sp.kmm[j*stride+m] = kz[j]
		sp.a[m*stride+j] = newRow[j]
		sp.a[j*stride+m] = newRow[j]
	}
	sp.kmm[m*stride+m] = prior
	sp.a[m*stride+m] = newDiag
	sp.b[m] = newB
	sp.zs = append(sp.zs, z...)
	sp.m = m + 1
	sp.qdiagValid = false
	sp.inserts++
	g.met.insertsCtr.Inc()
	sp.refreshAlpha(g.noiseVar)
}

// sparseRemove deletes basis point v. The moment sums shift exactly —
// their entries are per-basis-point and never reference v — and both
// factors are rebuilt from the retained blocks (swaps are rare enough
// that the O(m³) rebuild never shows up in per-period cost).
func (g *GP) sparseRemove(v int) {
	sp := g.sp
	m := sp.m
	stride := sp.cfg.MaxInducing

	copy(sp.zs[v*g.dim:], sp.zs[(v+1)*g.dim:])
	sp.zs = sp.zs[:(m-1)*g.dim]
	copy(sp.b[v:m-1], sp.b[v+1:m])
	for _, mat := range [][]float64{sp.kmm, sp.a} {
		for i := v; i < m-1; i++ { // shift rows up
			copy(mat[i*stride:i*stride+m], mat[(i+1)*stride:(i+1)*stride+m])
		}
		for i := 0; i < m-1; i++ { // shift columns left
			copy(mat[i*stride+v:i*stride+m-1], mat[i*stride+v+1:i*stride+m])
		}
	}
	sp.m = m - 1
	sp.qdiagValid = false
	sp.refactorAll(g.noiseVar)
}

// refactorAll rebuilds both factors from the stored moments.
func (sp *sparseState) refactorAll(noiseVar float64) {
	m := sp.m
	stride := sp.cfg.MaxInducing
	km := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		copy(km.Row(i), sp.kmm[i*stride:i*stride+m])
	}
	cholKmm, err := linalg.NewCholesky(km)
	if err != nil {
		panic(fmt.Sprintf("gp: inducing refactorization: %v", err))
	}
	sp.cholKmm = cholKmm
	sp.refactorSigma(noiseVar)
}

// refactorSigma rebuilds the Σ factor from K_mm and the moment matrix,
// resetting the rank-1 drift counter.
func (sp *sparseState) refactorSigma(noiseVar float64) {
	m := sp.m
	stride := sp.cfg.MaxInducing
	//edgebol:allow nanguard -- noiseVar is validated positive at construction (New)
	invNoise := 1 / noiseVar
	sig := linalg.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		row := sig.Row(i)
		for j := 0; j < m; j++ {
			row[j] = sp.kmm[i*stride+j] + invNoise*sp.a[i*stride+j]
		}
	}
	cholSig, err := linalg.NewCholesky(sig)
	if err != nil {
		panic(fmt.Sprintf("gp: Σ refactorization: %v", err))
	}
	sp.cholSig = cholSig
	sp.sinceRefactor = 0
}

// sparseLearn folds one observation into the moments and streams it into
// the Σ factor as the rank-1 update (k/ζ)(k/ζ)ᵀ — O(m²) per observation,
// with a periodic rebuild bounding the accumulated drift.
func (g *GP) sparseLearn(x []float64, y float64) {
	sp := g.sp
	m := sp.m
	stride := sp.cfg.MaxInducing
	k := sp.kbuf[:m]
	g.kernel.EvalBatch(sp.zs, g.dim, x, k)
	for i := 0; i < m; i++ {
		row := sp.a[i*stride : i*stride+m]
		ki := k[i]
		for j, kj := range k {
			row[j] += ki * kj
		}
	}
	for i, ki := range k {
		sp.b[i] += y * ki
	}
	sp.sumYY += y * y
	sp.sinceRefactor++
	if sp.sinceRefactor >= sparseRefactorEvery {
		sp.refactorSigma(g.noiseVar)
	} else {
		//edgebol:allow nanguard -- noiseVar is validated positive at construction (New)
		invZeta := 1 / math.Sqrt(g.noiseVar)
		u := sp.vbuf[:m]
		for i, ki := range k {
			u[i] = ki * invZeta
		}
		sp.cholSig.Rank1Update(u)
	}
	sp.refreshAlpha(g.noiseVar)
}

// refreshAlpha recomputes α = ζ⁻²·Σ⁻¹·b in O(m²). A fresh slice is
// published on every refresh because concurrent read sweeps may still hold
// the previous one (same single-writer contract as the exact engine).
func (sp *sparseState) refreshAlpha(noiseVar float64) {
	m := sp.m
	alpha := make([]float64, m)
	copy(alpha, sp.b[:m])
	sp.cholSig.SolveVec(alpha)
	//edgebol:allow nanguard -- noiseVar is validated positive at construction (New)
	invNoise := 1 / noiseVar
	for i := range alpha {
		alpha[i] *= invNoise
	}
	sp.alpha = alpha
}

// sparseLML is the DTC log marginal likelihood, assembled from streamed
// moments without any pass over the history:
//
//	log p(y) = −½ζ⁻²(Σy² − bᵀα) − ½(n·log ζ² + log det Σ − log det K_mm)
//	           − (n/2)·log 2π.
func (g *GP) sparseLML() float64 {
	sp := g.sp
	n := g.Len()
	if n == 0 {
		return 0
	}
	if sp.m == 0 {
		return math.Inf(-1)
	}
	//edgebol:allow nanguard -- noiseVar is validated positive at construction (New)
	quad := (sp.sumYY - linalg.Dot(sp.b[:sp.m], sp.alpha)) / g.noiseVar
	//edgebol:allow nanguard -- noiseVar is validated positive at construction (New)
	logdet := float64(n)*math.Log(g.noiseVar) + sp.cholSig.LogDet() - sp.cholKmm.LogDet()
	return -0.5*quad - 0.5*logdet - 0.5*float64(n)*math.Log(2*math.Pi)
}
