package gp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// Property: every kernel produces positive semi-definite Gram matrices —
// the factorization with jitter must always succeed on random point sets.
func TestKernelGramMatricesPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(5)
		ls := make([]float64, dim)
		for i := range ls {
			ls[i] = 0.1 + rng.Float64()*2
		}
		n := 2 + rng.Intn(12)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = randVec(rng, dim)
		}
		for _, k := range kernels(ls) {
			gram := linalg.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					v := k.Eval(pts[i], pts[j])
					gram.Set(i, j, v)
					gram.Set(j, i, v)
				}
			}
			if _, err := linalg.NewCholesky(gram); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the posterior survives eviction cycles — batch and single
// evaluations stay consistent after the sliding window has triggered
// multiple rebuilds.
func TestPosteriorBatchConsistentAfterEvictions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(NewMatern32([]float64{0.5, 0.7}), 1e-3, 8)
		for i := 0; i < 30; i++ {
			if err := g.Add([]float64{rng.Float64(), rng.Float64()}, rng.NormFloat64()); err != nil {
				return false
			}
		}
		cands := [][]float64{
			{rng.Float64(), rng.Float64()},
			{rng.Float64(), rng.Float64()},
			{rng.Float64(), rng.Float64()},
		}
		mu := make([]float64, len(cands))
		sigma := make([]float64, len(cands))
		g.PosteriorBatch(cands, mu, sigma, BatchOptions{})
		for i, c := range cands {
			m, s := g.Posterior(c)
			if diff(m, mu[i]) > 1e-9 || diff(s, sigma[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
