package gp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// latticePoints returns an n×n lattice in 2-D with the given spacing —
// deterministic, well-separated inputs for which every point clears the
// sparse engine's novelty gate and the DTC posterior coincides with the
// exact one.
func latticePoints(n int, spacing float64) ([][]float64, []float64) {
	xs := make([][]float64, 0, n*n)
	ys := make([]float64, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := []float64{float64(i) * spacing, float64(j) * spacing}
			xs = append(xs, x)
			ys = append(ys, math.Sin(2*x[0])+0.5*math.Cos(3*x[1]))
		}
	}
	return xs, ys
}

// sparsePair trains an exact GP and a sparse GP on the same stream.
func sparsePair(t *testing.T, cfg SparseConfig, xs [][]float64, ys []float64) (*GP, *GP) {
	t.Helper()
	ls := []float64{0.8, 1.2}
	exact := New(NewMatern32(ls), 1e-2, 0)
	sparse, err := NewSparse(NewMatern32(ls), 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if err := exact.Add(x, ys[i]); err != nil {
			t.Fatal(err)
		}
		if err := sparse.Add(x, ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	return exact, sparse
}

func TestSparseConfigValidate(t *testing.T) {
	if _, err := NewSparse(NewMatern32([]float64{1}), 1e-2, SparseConfig{MaxInducing: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := NewSparse(NewMatern32([]float64{1}), 1e-2, SparseConfig{InsertTol: -1}); err == nil {
		t.Fatal("negative insert tolerance accepted")
	}
	if _, err := NewSparse(NewMatern32([]float64{1}), 1e-2, SparseConfig{SwapMargin: -1}); err == nil {
		t.Fatal("negative swap margin accepted")
	}
	g, err := NewSparse(NewMatern32([]float64{1, 1}), 1e-2, SparseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSparse() || g.EngineName() != "sparse" {
		t.Fatal("NewSparse did not produce a sparse engine")
	}
	cfg := g.SparseConfigOf()
	if cfg.MaxInducing != 128 || cfg.InsertTol != 1e-3 || cfg.SwapMargin != 4 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if New(NewMatern32([]float64{1, 1}), 1e-2, 0).EngineName() != "exact" {
		t.Fatal("exact GP should report engine \"exact\"")
	}
}

// TestSparseMatchesExactAtFullBasis pins the approximation floor: with
// every training point admitted to the inducing basis the DTC posterior
// is mathematically the exact posterior, so mean, σ, and evidence must
// agree to rounding across the whole input range.
func TestSparseMatchesExactAtFullBasis(t *testing.T) {
	xs, ys := latticePoints(6, 0.45)
	cfg := SparseConfig{MaxInducing: 64, InsertTol: 1e-9}
	exact, sparse := sparsePair(t, cfg, xs, ys)
	if sparse.InducingLen() != len(xs) {
		t.Fatalf("inducing basis %d, want all %d points", sparse.InducingLen(), len(xs))
	}
	const tol = 1e-8
	for _, c := range engineCandidates(60) {
		me, se := exact.Posterior(c)
		ms, ss := sparse.Posterior(c)
		if math.Abs(me-ms) > tol || math.Abs(se-ss) > tol {
			t.Fatalf("posterior at %v: exact (%v,%v) vs sparse (%v,%v)", c, me, se, ms, ss)
		}
	}
	if le, lsml := exact.LogMarginalLikelihood(), sparse.LogMarginalLikelihood(); math.Abs(le-lsml) > 1e-6 {
		t.Fatalf("evidence: exact %v vs sparse %v", le, lsml)
	}
}

// TestSparseApproximationBounded is the compressed regime: far more
// observations than basis slots. The DTC posterior cannot match the exact
// one bitwise, but its error must stay within the bounds the engine is
// sold on — small mean deltas on the training range and a variance that
// never leaves [0, prior].
func TestSparseApproximationBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64() * 1.2, rng.Float64() * 1.2}
		xs = append(xs, x)
		ys = append(ys, math.Sin(2*x[0])+0.5*math.Cos(3*x[1])+0.05*rng.NormFloat64())
	}
	exact, sparse := sparsePair(t, SparseConfig{MaxInducing: 64}, xs, ys)
	if sparse.InducingLen() > 64 {
		t.Fatalf("inducing basis %d exceeds budget", sparse.InducingLen())
	}
	if sparse.Len() != 600 {
		t.Fatalf("retained history %d, want 600", sparse.Len())
	}
	var maxMu, maxSig, rms float64
	cands := engineCandidates(200)
	for _, c := range cands {
		me, se := exact.Posterior(c)
		ms, ss := sparse.Posterior(c)
		dm, dsg := math.Abs(me-ms), math.Abs(se-ss)
		maxMu = math.Max(maxMu, dm)
		maxSig = math.Max(maxSig, dsg)
		rms += dm * dm
		if ss < 0 || ss > 1+1e-12 {
			t.Fatalf("sparse σ %v outside [0, prior] at %v", ss, c)
		}
	}
	rms = math.Sqrt(rms / float64(len(cands)))
	// Bounds hold with an order of magnitude of slack on this seed; a
	// regression in the moment accumulation or the streaming factor
	// updates blows through them immediately.
	if maxMu > 0.15 || rms > 0.05 || maxSig > 0.25 {
		t.Fatalf("approximation drifted: max|Δμ|=%v rms=%v max|Δσ|=%v", maxMu, rms, maxSig)
	}
}

// TestSparseStreamingMatchesRefactor pins the rank-1 streaming update
// against periodic refactorization: the engine rebuilds its Σ factor
// every sparseRefactorEvery adds, and the posterior must not jump when
// it does — streamed and freshly factorized states agree to rounding.
func TestSparseStreamingMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, SparseConfig{MaxInducing: 32})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.4, 0.7}
	for i := 0; i < sparseRefactorEvery+8; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Add(x, math.Sin(3*x[0])); err != nil {
			t.Fatal(err)
		}
		if i == sparseRefactorEvery-2 {
			// Straddle the refactor boundary: posterior just before …
			mBefore, sBefore := g.Posterior(probe)
			if math.IsNaN(mBefore) || math.IsNaN(sBefore) {
				t.Fatal("NaN posterior before refactor")
			}
		}
	}
	// … and after must be consistent with a from-scratch refactorization.
	mStream, sStream := g.Posterior(probe)
	g.sp.refactorAll(g.noiseVar)
	g.sp.refreshAlpha(g.noiseVar)
	mFresh, sFresh := g.Posterior(probe)
	if math.Abs(mStream-mFresh) > 1e-8 || math.Abs(sStream-sFresh) > 1e-8 {
		t.Fatalf("streamed factor drifted: (%v,%v) vs refactored (%v,%v)", mStream, sStream, mFresh, sFresh)
	}
}

// TestSparseSwapEvictsRedundantBasis drives the at-budget swap path with
// a deterministic construction: a tight cluster fills the budget (high
// redundancy, large diag(K_mm⁻¹)), then a far-away novel point must evict
// a cluster member rather than be dropped.
func TestSparseSwapEvictsRedundantBasis(t *testing.T) {
	cfg := SparseConfig{MaxInducing: 4, InsertTol: 1e-9}
	g, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		x := []float64{0.5 + 0.02*float64(i), 0.5}
		if err := g.Add(x, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	if g.InducingLen() != 4 || g.InducingInserts() != 4 {
		t.Fatalf("basis %d after %d inserts", g.InducingLen(), g.InducingInserts())
	}
	if err := g.Add([]float64{4, 4}, -0.2); err != nil {
		t.Fatal(err)
	}
	if g.InducingSwaps() != 1 {
		t.Fatalf("swaps = %d, want 1", g.InducingSwaps())
	}
	if g.InducingLen() != 4 {
		t.Fatalf("basis %d after swap, want 4", g.InducingLen())
	}
	// The far point must now be represented: posterior mean near its
	// target, σ well below prior.
	m, s := g.Posterior([]float64{4, 4})
	if math.Abs(m-(-0.2)) > 0.1 || s > 0.5 {
		t.Fatalf("swapped-in point not learned: μ=%v σ=%v", m, s)
	}
}

// TestSparseEvictionNoOp: the sparse engine ignores the sliding-window
// bound — history retention is unbounded and cheap, the basis budget is
// what bounds cost. A windowed exact GP converted to sparse stops
// evicting.
func TestSparseEvictionNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(NewMatern32([]float64{0.8, 1.2}), 1e-2, 8)
	for i := 0; i < 12; i++ {
		if err := g.Add([]float64{rng.Float64(), rng.Float64()}, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if g.Evictions() == 0 {
		t.Fatal("windowed exact GP should have evicted")
	}
	before := g.Evictions()
	if err := g.ConvertToSparse(SparseConfig{MaxInducing: 16}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := g.Add([]float64{rng.Float64(), rng.Float64()}, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if g.Evictions() != before {
		t.Fatalf("sparse engine evicted: %d -> %d", before, g.Evictions())
	}
	if g.Len() != 8+20 {
		t.Fatalf("history %d, want %d", g.Len(), 8+20)
	}
}

// TestConvertToSparseMatchesFreshSparse: converting an exact GP replays
// its history through the same admission path a from-scratch sparse GP
// ran, so the two end bitwise identical.
func TestConvertToSparseMatchesFreshSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		xs = append(xs, []float64{rng.Float64(), rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	cfg := SparseConfig{MaxInducing: 24}
	_, fresh := sparsePair(t, cfg, xs, ys)
	conv := New(NewMatern32([]float64{0.8, 1.2}), 1e-2, 0)
	for i, x := range xs {
		if err := conv.Add(x, ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := conv.ConvertToSparse(cfg); err != nil {
		t.Fatal(err)
	}
	if conv.InducingLen() != fresh.InducingLen() || conv.InducingSwaps() != fresh.InducingSwaps() {
		t.Fatalf("conversion basis (m=%d swaps=%d) differs from fresh (m=%d swaps=%d)",
			conv.InducingLen(), conv.InducingSwaps(), fresh.InducingLen(), fresh.InducingSwaps())
	}
	for _, c := range engineCandidates(40) {
		mc, sc := conv.Posterior(c)
		mf, sf := fresh.Posterior(c)
		if !bitsEqual(mc, mf) || !bitsEqual(sc, sf) {
			t.Fatalf("converted and fresh sparse diverge at %v: (%v,%v) vs (%v,%v)", c, mc, sc, mf, sf)
		}
	}
	if err := conv.ConvertToSparse(cfg); err == nil {
		t.Fatal("second conversion should fail")
	}
}

// TestSparsePosteriorBatchBitwise: the fused-panel batch path must be
// bitwise identical to the scalar Posterior path for every worker count —
// the same contract the exact engine pins.
func TestSparsePosteriorBatchBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		xs = append(xs, []float64{rng.Float64() * 1.2, rng.Float64() * 1.2})
		ys = append(ys, rng.NormFloat64())
	}
	_, g := sparsePair(t, SparseConfig{MaxInducing: 48}, xs, ys)
	cands := engineCandidates(137) // odd count exercises partial tiles
	refMu := make([]float64, len(cands))
	refSigma := make([]float64, len(cands))
	for i, c := range cands {
		refMu[i], refSigma[i] = g.Posterior(c)
	}
	for _, workers := range []int{1, 0, 2, 5} {
		mu := make([]float64, len(cands))
		sigma := make([]float64, len(cands))
		g.PosteriorBatch(cands, mu, sigma, BatchOptions{Workers: workers})
		for i := range cands {
			if !bitsEqual(mu[i], refMu[i]) || !bitsEqual(sigma[i], refSigma[i]) {
				t.Fatalf("workers=%d candidate %d: batch (%v,%v) vs scalar (%v,%v)",
					workers, i, mu[i], sigma[i], refMu[i], refSigma[i])
			}
		}
	}
}

// TestSparseSweepPlanMatchesGeneric extends the tentpole bitwise contract
// to the sparse engine: the plan sweeps over the inducing basis and must
// reproduce the generic batched posterior exactly, across growth (basis
// inserts append plan rows) and worker counts.
func TestSparseSweepPlanMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	dims := 2 + 2
	ls := make([]float64, dims)
	for i := range ls {
		ls[i] = 0.3 + rng.Float64()
	}
	g, err := NewSparse(NewMatern32(ls), 2e-3, SparseConfig{MaxInducing: 32})
	if err != nil {
		t.Fatal(err)
	}
	addSweepObs(t, g, 60, rng)
	levels := sweepLevels([]int{4, 5})
	p, err := NewSweepPlan(g, 2, levels)
	if err != nil {
		t.Fatal(err)
	}
	ctx := []float64{rng.Float64(), rng.Float64()}
	requireSweepMatches(t, g, p, ctx, levels)

	// More observations: inserts append basis rows, the plan follows.
	addSweepObs(t, g, 40, rng)
	ctx = []float64{rng.Float64(), rng.Float64()}
	requireSweepMatches(t, g, p, ctx, levels)
}

// TestSparseSweepPlanRebuildOnSwap mirrors the eviction-driven rebuild
// test of the exact engine: a basis swap renumbers the inducing rows, and
// the plan must rebuild its tables rather than sweep stale ones.
func TestSparseSweepPlanRebuildOnSwap(t *testing.T) {
	cfg := SparseConfig{MaxInducing: 4, InsertTol: 1e-9}
	g, err := NewSparse(NewMatern32([]float64{0.8, 1.2, 0.9, 1.1}), 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		x := []float64{0.5, 0.5, 0.4 + 0.02*float64(i), 0.6}
		if err := g.Add(x, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	levels := sweepLevels([]int{3, 4})
	p, err := NewSweepPlan(g, 2, levels)
	if err != nil {
		t.Fatal(err)
	}
	requireSweepMatches(t, g, p, []float64{0.5, 0.5}, levels)

	before := g.InducingSwaps()
	if err := g.Add([]float64{4, 4, 4, 4}, -0.2); err != nil {
		t.Fatal(err)
	}
	if g.InducingSwaps() == before {
		t.Fatal("expected a basis swap")
	}
	requireSweepMatches(t, g, p, []float64{0.5, 0.5}, levels)
}

// TestSparseSnapshotRestoreBitwise: serialize, restore into a fresh
// sparse GP, and verify the posterior — and every subsequent update — is
// bitwise identical, including across a swap-bearing history.
func TestSparseSnapshotRestoreBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cfg := SparseConfig{MaxInducing: 16}
	src, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		if err := src.Add([]float64{rng.Float64() * 2, rng.Float64() * 2}, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	snap := src.Snapshot()
	if snap.Engine != "sparse" {
		t.Fatalf("snapshot engine %q", snap.Engine)
	}
	dst, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreFrom(snap); err != nil {
		t.Fatalf("RestoreFrom: %v", err)
	}
	if dst.Len() != src.Len() || dst.InducingLen() != src.InducingLen() ||
		dst.InducingInserts() != src.InducingInserts() || dst.InducingSwaps() != src.InducingSwaps() {
		t.Fatalf("restored counters diverge: len %d/%d m %d/%d inserts %d/%d swaps %d/%d",
			dst.Len(), src.Len(), dst.InducingLen(), src.InducingLen(),
			dst.InducingInserts(), src.InducingInserts(), dst.InducingSwaps(), src.InducingSwaps())
	}
	check := func(stage string) {
		t.Helper()
		for _, c := range engineCandidates(40) {
			m1, s1 := src.Posterior(c)
			m2, s2 := dst.Posterior(c)
			if !bitsEqual(m1, m2) || !bitsEqual(s1, s2) {
				t.Fatalf("%s: posterior at %v diverged: (%v,%v) vs (%v,%v)", stage, c, m1, s1, m2, s2)
			}
		}
		if l1, l2 := src.LogMarginalLikelihood(), dst.LogMarginalLikelihood(); !bitsEqual(l1, l2) {
			t.Fatalf("%s: evidence diverged: %v vs %v", stage, l1, l2)
		}
	}
	check("after restore")
	// Keep learning on both sides: the streaming updates must stay in
	// lockstep (same factors, same admission decisions).
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2}
		y := rng.NormFloat64()
		if err := src.Add(x, y); err != nil {
			t.Fatal(err)
		}
		if err := dst.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	check("after continued learning")
}

// TestSparseRestoreRejectsMismatches covers the cross-engine and
// cross-configuration rejection paths.
func TestSparseRestoreRejectsMismatches(t *testing.T) {
	exact := trainedGP(t, 0, 20)
	sparse, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, SparseConfig{MaxInducing: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		if err := sparse.Add([]float64{rng.Float64(), rng.Float64()}, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	// Exact state into a sparse GP and vice versa.
	if err := sparse.RestoreFrom(exact.Snapshot()); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Fatalf("exact→sparse restore: %v", err)
	}
	if err := exact.RestoreFrom(sparse.Snapshot()); err == nil || !strings.Contains(err.Error(), "engine") {
		t.Fatalf("sparse→exact restore: %v", err)
	}
	// Same engine, different basis budget.
	other, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, SparseConfig{MaxInducing: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreFrom(sparse.Snapshot()); err == nil {
		t.Fatal("restore across differing inducing budgets should fail")
	}
}

// TestSparseEmptyAndPriorBehaviour: before any observation the sparse
// engine must report the prior exactly, like the exact engine.
func TestSparseEmptyAndPriorBehaviour(t *testing.T) {
	g, err := NewSparse(NewMatern32([]float64{0.8, 1.2}), 1e-2, SparseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, s := g.Posterior([]float64{0.3, 0.4})
	if m != 0 || s != 1 {
		t.Fatalf("prior posterior (%v, %v), want (0, 1)", m, s)
	}
	if lml := g.LogMarginalLikelihood(); lml != 0 {
		t.Fatalf("empty evidence %v, want 0", lml)
	}
	mu := make([]float64, 3)
	sigma := make([]float64, 3)
	g.PosteriorBatch(engineCandidates(3), mu, sigma, BatchOptions{})
	for i := range mu {
		if mu[i] != 0 || sigma[i] != 1 {
			t.Fatalf("prior batch posterior %d: (%v, %v)", i, mu[i], sigma[i])
		}
	}
}
