// Package gp implements Gaussian-process regression as used by EdgeBOL
// (Ayala-Romero et al., CoNEXT '21, §5): anisotropic stationary kernels over
// the joint context–control space, closed-form posteriors with i.i.d.
// Gaussian observation noise (paper eq. 3–4), batched posterior evaluation
// over candidate control sets, and log-marginal-likelihood hyperparameter
// fitting on prior data.
package gp

import (
	"fmt"
	"math"
)

// Kernel is a covariance function k(a, b) over R^d. Implementations must be
// symmetric, positive semi-definite, and stationary with k(z, z) <= 1
// (§5 "prior distribution").
type Kernel interface {
	// Eval returns k(a, b). Both inputs must have length Dim().
	Eval(a, b []float64) float64
	// EvalBatch computes the cross-covariances k(x_i, z) against every row
	// of the flat row-major input matrix xs — row i occupies
	// xs[i*stride : i*stride+Dim()] — writing k(x_i, z) into out[i] for
	// i < len(out). It is the bulk entry point of the posterior hot path:
	// one interface dispatch covers a whole training set, and
	// implementations hoist per-dimension work (e.g. length-scale
	// reciprocals) out of the inner loop.
	EvalBatch(xs []float64, stride int, z []float64, out []float64)
	// Prior returns the prior variance k(z, z), which stationarity makes a
	// constant independent of z (1 for the kernels in this package). The
	// posterior sweep uses it instead of evaluating Eval(z, z) per
	// candidate.
	Prior() float64
	// Dim returns the input dimensionality.
	Dim() int
}

// scaledSqDist returns the anisotropic squared distance
// Σ ((a_i-b_i)/l_i)², i.e. d(z,z')² from paper eq. 5.
func scaledSqDist(a, b, ls []float64) float64 {
	var s float64
	for i, l := range ls {
		//edgebol:allow nanguard -- length scales are validated positive by checkLengthScales at construction
		d := (a[i] - b[i]) / l
		s += d * d
	}
	return s
}

// invBufLen is the stack-buffer capacity for per-dimension reciprocal
// length scales in EvalBatch; EdgeBOL's joint feature space has 7
// dimensions, so the buffer covers every practical kernel without
// allocating.
const invBufLen = 16

// reciprocals fills buf (or a fresh slice when ls is longer) with 1/l_i,
// converting the per-pair divisions of eq. 5 into multiplications.
func reciprocals(ls []float64, buf *[invBufLen]float64) []float64 {
	inv := buf[:]
	if len(ls) > invBufLen {
		inv = make([]float64, len(ls))
	} else {
		inv = inv[:len(ls)]
	}
	for i, l := range ls {
		//edgebol:allow nanguard -- length scales are validated positive by checkLengthScales at construction
		inv[i] = 1 / l
	}
	return inv
}

// scaledSqDistInv is scaledSqDist with precomputed reciprocal length
// scales, accumulated in two independent chains so the floating-point adds
// pipeline.
func scaledSqDistInv(a, z, inv []float64) float64 {
	var s0, s1 float64
	j := 0
	for ; j+1 < len(inv); j += 2 {
		d0 := (a[j] - z[j]) * inv[j]
		d1 := (a[j+1] - z[j+1]) * inv[j+1]
		s0 += d0 * d0
		s1 += d1 * d1
	}
	if j < len(inv) {
		d := (a[j] - z[j]) * inv[j]
		s0 += d * d
	}
	return s0 + s1
}

// checkBatchArgs validates an EvalBatch call against the kernel dimension.
func checkBatchArgs(dim int, xs []float64, stride int, z []float64, out []float64) {
	if len(z) != dim {
		panic(fmt.Sprintf("gp: EvalBatch input dimension %d does not match kernel dimension %d", len(z), dim))
	}
	if stride < dim {
		panic(fmt.Sprintf("gp: EvalBatch stride %d below kernel dimension %d", stride, dim))
	}
	if len(out) > 0 && len(xs) < (len(out)-1)*stride+dim {
		panic(fmt.Sprintf("gp: EvalBatch matrix length %d too short for %d rows of stride %d", len(xs), len(out), stride))
	}
}

func checkLengthScales(ls []float64) {
	if len(ls) == 0 {
		panic("gp: kernel needs at least one length scale")
	}
	for i, l := range ls {
		if l <= 0 || math.IsNaN(l) {
			panic(fmt.Sprintf("gp: length scale %d is %v, must be positive", i, l))
		}
	}
}

// Matern32 is the anisotropic Matérn kernel with ν = 3/2 (paper eq. 6):
//
//	k(z, z') = (1 + √3·d)·exp(−√3·d),  d per eq. 5.
//
// It models functions that are at least once differentiable, the smoothness
// the paper chose for all objective and constraint surfaces.
type Matern32 struct {
	// LengthScales is the per-dimension length-scale vector L (eq. 5).
	LengthScales []float64
}

// NewMatern32 returns a Matérn-3/2 kernel with the given length scales.
func NewMatern32(lengthScales []float64) *Matern32 {
	checkLengthScales(lengthScales)
	return &Matern32{LengthScales: append([]float64(nil), lengthScales...)}
}

// Dim implements Kernel.
func (k *Matern32) Dim() int { return len(k.LengthScales) }

// Prior implements Kernel.
func (k *Matern32) Prior() float64 { return 1 }

// Eval implements Kernel.
func (k *Matern32) Eval(a, b []float64) float64 {
	//edgebol:allow nanguard -- scaledSqDist is a sum of squares, non-negative by construction
	d := math.Sqrt(3 * scaledSqDist(a, b, k.LengthScales))
	return (1 + d) * math.Exp(-d)
}

// EvalBatch implements Kernel.
func (k *Matern32) EvalBatch(xs []float64, stride int, z []float64, out []float64) {
	checkBatchArgs(len(k.LengthScales), xs, stride, z, out)
	var buf [invBufLen]float64
	inv := reciprocals(k.LengthScales, &buf)
	for i := range out {
		row := xs[i*stride:]
		//edgebol:allow nanguard -- scaledSqDistInv is a sum of squares, non-negative by construction
		d := math.Sqrt(3 * scaledSqDistInv(row, z, inv))
		out[i] = (1 + d) * math.Exp(-d)
	}
}

// Matern52 is the anisotropic Matérn kernel with ν = 5/2:
//
//	k = (1 + √5·d + 5d²/3)·exp(−√5·d).
//
// Included for the kernel-choice ablation.
type Matern52 struct {
	LengthScales []float64
}

// NewMatern52 returns a Matérn-5/2 kernel with the given length scales.
func NewMatern52(lengthScales []float64) *Matern52 {
	checkLengthScales(lengthScales)
	return &Matern52{LengthScales: append([]float64(nil), lengthScales...)}
}

// Dim implements Kernel.
func (k *Matern52) Dim() int { return len(k.LengthScales) }

// Prior implements Kernel.
func (k *Matern52) Prior() float64 { return 1 }

// Eval implements Kernel.
func (k *Matern52) Eval(a, b []float64) float64 {
	s2 := 5 * scaledSqDist(a, b, k.LengthScales)
	//edgebol:allow nanguard -- s2 scales a sum of squares, non-negative by construction
	d := math.Sqrt(s2)
	return (1 + d + s2/3) * math.Exp(-d)
}

// EvalBatch implements Kernel.
func (k *Matern52) EvalBatch(xs []float64, stride int, z []float64, out []float64) {
	checkBatchArgs(len(k.LengthScales), xs, stride, z, out)
	var buf [invBufLen]float64
	inv := reciprocals(k.LengthScales, &buf)
	for i := range out {
		row := xs[i*stride:]
		s2 := 5 * scaledSqDistInv(row, z, inv)
		//edgebol:allow nanguard -- s2 scales a sum of squares, non-negative by construction
		d := math.Sqrt(s2)
		out[i] = (1 + d + s2/3) * math.Exp(-d)
	}
}

// RBF is the anisotropic squared-exponential kernel
// k = exp(−d²/2). Included for the kernel-choice ablation.
type RBF struct {
	LengthScales []float64
}

// NewRBF returns an RBF kernel with the given length scales.
func NewRBF(lengthScales []float64) *RBF {
	checkLengthScales(lengthScales)
	return &RBF{LengthScales: append([]float64(nil), lengthScales...)}
}

// Dim implements Kernel.
func (k *RBF) Dim() int { return len(k.LengthScales) }

// Prior implements Kernel.
func (k *RBF) Prior() float64 { return 1 }

// Eval implements Kernel.
func (k *RBF) Eval(a, b []float64) float64 {
	return math.Exp(-0.5 * scaledSqDist(a, b, k.LengthScales))
}

// EvalBatch implements Kernel.
func (k *RBF) EvalBatch(xs []float64, stride int, z []float64, out []float64) {
	checkBatchArgs(len(k.LengthScales), xs, stride, z, out)
	var buf [invBufLen]float64
	inv := reciprocals(k.LengthScales, &buf)
	for i := range out {
		row := xs[i*stride:]
		out[i] = math.Exp(-0.5 * scaledSqDistInv(row, z, inv))
	}
}
