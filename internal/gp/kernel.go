// Package gp implements Gaussian-process regression as used by EdgeBOL
// (Ayala-Romero et al., CoNEXT '21, §5): anisotropic stationary kernels over
// the joint context–control space, closed-form posteriors with i.i.d.
// Gaussian observation noise (paper eq. 3–4), batched posterior evaluation
// over candidate control sets, and log-marginal-likelihood hyperparameter
// fitting on prior data.
package gp

import (
	"fmt"
	"math"
)

// Kernel is a covariance function k(a, b) over R^d. Implementations must be
// symmetric and positive semi-definite; EdgeBOL additionally assumes
// stationarity and k(z, z) <= 1 (§5 "prior distribution").
type Kernel interface {
	// Eval returns k(a, b). Both inputs must have length Dim().
	Eval(a, b []float64) float64
	// Dim returns the input dimensionality.
	Dim() int
}

// scaledSqDist returns the anisotropic squared distance
// Σ ((a_i-b_i)/l_i)², i.e. d(z,z')² from paper eq. 5.
func scaledSqDist(a, b, ls []float64) float64 {
	var s float64
	for i, l := range ls {
		d := (a[i] - b[i]) / l
		s += d * d
	}
	return s
}

func checkLengthScales(ls []float64) {
	if len(ls) == 0 {
		panic("gp: kernel needs at least one length scale")
	}
	for i, l := range ls {
		if l <= 0 || math.IsNaN(l) {
			panic(fmt.Sprintf("gp: length scale %d is %v, must be positive", i, l))
		}
	}
}

// Matern32 is the anisotropic Matérn kernel with ν = 3/2 (paper eq. 6):
//
//	k(z, z') = (1 + √3·d)·exp(−√3·d),  d per eq. 5.
//
// It models functions that are at least once differentiable, the smoothness
// the paper chose for all objective and constraint surfaces.
type Matern32 struct {
	// LengthScales is the per-dimension length-scale vector L (eq. 5).
	LengthScales []float64
}

// NewMatern32 returns a Matérn-3/2 kernel with the given length scales.
func NewMatern32(lengthScales []float64) *Matern32 {
	checkLengthScales(lengthScales)
	return &Matern32{LengthScales: append([]float64(nil), lengthScales...)}
}

// Dim implements Kernel.
func (k *Matern32) Dim() int { return len(k.LengthScales) }

// Eval implements Kernel.
func (k *Matern32) Eval(a, b []float64) float64 {
	d := math.Sqrt(3 * scaledSqDist(a, b, k.LengthScales))
	return (1 + d) * math.Exp(-d)
}

// Matern52 is the anisotropic Matérn kernel with ν = 5/2:
//
//	k = (1 + √5·d + 5d²/3)·exp(−√5·d).
//
// Included for the kernel-choice ablation.
type Matern52 struct {
	LengthScales []float64
}

// NewMatern52 returns a Matérn-5/2 kernel with the given length scales.
func NewMatern52(lengthScales []float64) *Matern52 {
	checkLengthScales(lengthScales)
	return &Matern52{LengthScales: append([]float64(nil), lengthScales...)}
}

// Dim implements Kernel.
func (k *Matern52) Dim() int { return len(k.LengthScales) }

// Eval implements Kernel.
func (k *Matern52) Eval(a, b []float64) float64 {
	s2 := 5 * scaledSqDist(a, b, k.LengthScales)
	d := math.Sqrt(s2)
	return (1 + d + s2/3) * math.Exp(-d)
}

// RBF is the anisotropic squared-exponential kernel
// k = exp(−d²/2). Included for the kernel-choice ablation.
type RBF struct {
	LengthScales []float64
}

// NewRBF returns an RBF kernel with the given length scales.
func NewRBF(lengthScales []float64) *RBF {
	checkLengthScales(lengthScales)
	return &RBF{LengthScales: append([]float64(nil), lengthScales...)}
}

// Dim implements Kernel.
func (k *RBF) Dim() int { return len(k.LengthScales) }

// Eval implements Kernel.
func (k *RBF) Eval(a, b []float64) float64 {
	return math.Exp(-0.5 * scaledSqDist(a, b, k.LengthScales))
}
