package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestGP() *GP {
	return New(NewMatern32([]float64{0.5}), 1e-4, 0)
}

func TestPriorPosterior(t *testing.T) {
	g := newTestGP()
	mu, sigma := g.Posterior([]float64{0.3})
	if mu != 0 {
		t.Fatalf("prior mean = %v, want 0", mu)
	}
	if math.Abs(sigma-1) > 1e-12 {
		t.Fatalf("prior sigma = %v, want 1", sigma)
	}
}

func TestPosteriorInterpolatesObservations(t *testing.T) {
	g := newTestGP()
	pts := []float64{0.1, 0.5, 0.9}
	vals := []float64{1, -2, 0.5}
	for i, p := range pts {
		if err := g.Add([]float64{p}, vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pts {
		mu, sigma := g.Posterior([]float64{p})
		if math.Abs(mu-vals[i]) > 0.05 {
			t.Fatalf("posterior mean at observed %v = %v, want ~%v", p, mu, vals[i])
		}
		if sigma > 0.05 {
			t.Fatalf("posterior sigma at observed point = %v, want near 0", sigma)
		}
	}
}

func TestPosteriorUncertaintyGrowsWithDistance(t *testing.T) {
	g := newTestGP()
	if err := g.Add([]float64{0}, 1); err != nil {
		t.Fatal(err)
	}
	_, near := g.Posterior([]float64{0.1})
	_, far := g.Posterior([]float64{3})
	if near >= far {
		t.Fatalf("sigma near (%v) should be below sigma far (%v)", near, far)
	}
}

func TestPosteriorRevertsToPriorFarAway(t *testing.T) {
	g := newTestGP()
	if err := g.Add([]float64{0}, 5); err != nil {
		t.Fatal(err)
	}
	mu, sigma := g.Posterior([]float64{50})
	if math.Abs(mu) > 1e-6 || math.Abs(sigma-1) > 1e-6 {
		t.Fatalf("far posterior (%v, %v) should match prior (0, 1)", mu, sigma)
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	g := newTestGP()
	if err := g.Add([]float64{1, 2}, 0); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
}

func TestAddNonFinite(t *testing.T) {
	g := newTestGP()
	if err := g.Add([]float64{0}, math.NaN()); err == nil {
		t.Fatal("expected error for NaN observation")
	}
	if err := g.Add([]float64{0}, math.Inf(1)); err == nil {
		t.Fatal("expected error for Inf observation")
	}
}

func TestAddCopiesInput(t *testing.T) {
	g := newTestGP()
	x := []float64{0.5}
	if err := g.Add(x, 1); err != nil {
		t.Fatal(err)
	}
	x[0] = 99
	mu, _ := g.Posterior([]float64{0.5})
	if math.Abs(mu-1) > 0.05 {
		t.Fatal("GP must copy inputs on Add")
	}
}

func TestPosteriorBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(NewMatern32([]float64{0.4, 0.8}), 1e-3, 0)
	for i := 0; i < 25; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Add(x, math.Sin(3*x[0])+x[1]); err != nil {
			t.Fatal(err)
		}
	}
	cands := make([][]float64, 40)
	for i := range cands {
		cands[i] = []float64{rng.Float64(), rng.Float64()}
	}
	mu := make([]float64, len(cands))
	sigma := make([]float64, len(cands))
	g.PosteriorBatch(cands, mu, sigma, BatchOptions{})
	for i, c := range cands {
		m, s := g.Posterior(c)
		if math.Abs(m-mu[i]) > 1e-10 || math.Abs(s-sigma[i]) > 1e-10 {
			t.Fatalf("batch/single mismatch at %d: (%v,%v) vs (%v,%v)", i, mu[i], sigma[i], m, s)
		}
	}
}

func TestPosteriorBatchEmptyGP(t *testing.T) {
	g := newTestGP()
	cands := [][]float64{{0.1}, {0.9}}
	mu := make([]float64, 2)
	sigma := make([]float64, 2)
	g.PosteriorBatch(cands, mu, sigma, BatchOptions{})
	if mu[0] != 0 || math.Abs(sigma[0]-1) > 1e-12 {
		t.Fatalf("empty-GP batch should return prior, got (%v,%v)", mu[0], sigma[0])
	}
}

func TestPosteriorBatchLengthMismatchPanics(t *testing.T) {
	g := newTestGP()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on output length mismatch")
		}
	}()
	g.PosteriorBatch([][]float64{{0}}, make([]float64, 2), make([]float64, 1), BatchOptions{})
}

func TestSlidingWindowEviction(t *testing.T) {
	g := New(NewMatern32([]float64{0.5}), 1e-4, 10)
	for i := 0; i < 25; i++ {
		if err := g.Add([]float64{float64(i) / 25}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() > 10 {
		t.Fatalf("window not enforced: %d observations retained", g.Len())
	}
	// Recent observations must still be fitted.
	mu, _ := g.Posterior([]float64{24.0 / 25})
	if math.Abs(mu-24) > 1 {
		t.Fatalf("recent observation forgotten: posterior %v, want ~24", mu)
	}
}

func TestWindowedMatchesUnwindowedOnRecentData(t *testing.T) {
	// After eviction, the windowed GP must equal a fresh GP trained on the
	// surviving observations.
	w := New(NewMatern32([]float64{0.3}), 1e-3, 6)
	var xs [][]float64
	var ys []float64
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 9; i++ {
		x := []float64{rng.Float64() * 2}
		y := rng.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, y)
		if err := w.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	// Window 6 hit at i=6: drops 3, keeps xs[3:]. No further eviction by i=8.
	fresh := New(NewMatern32([]float64{0.3}), 1e-3, 0)
	for i := 3; i < 9; i++ {
		if err := fresh.Add(xs[i], ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != fresh.Len() {
		t.Fatalf("window retained %d, fresh has %d", w.Len(), fresh.Len())
	}
	for p := 0.0; p <= 2; p += 0.2 {
		mw, sw := w.Posterior([]float64{p})
		mf, sf := fresh.Posterior([]float64{p})
		if math.Abs(mw-mf) > 1e-8 || math.Abs(sw-sf) > 1e-8 {
			t.Fatalf("windowed and fresh posteriors diverge at %v: (%v,%v) vs (%v,%v)", p, mw, sw, mf, sf)
		}
	}
}

func TestLogMarginalLikelihoodPrefersTruth(t *testing.T) {
	// Data generated from a smooth function should score higher evidence
	// with a sensible length scale than with an absurd one.
	rng := rand.New(rand.NewSource(3))
	xs := make([][]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		x := rng.Float64()
		xs[i] = []float64{x}
		ys[i] = math.Sin(4*x) + 0.01*rng.NormFloat64()
	}
	ll := func(scale float64) float64 {
		g := New(NewMatern32([]float64{scale}), 1e-3, 0)
		for i := range xs {
			if err := g.Add(xs[i], ys[i]); err != nil {
				t.Fatal(err)
			}
		}
		return g.LogMarginalLikelihood()
	}
	if ll(0.3) <= ll(1e-3) {
		t.Fatal("sensible length scale should beat an absurdly short one")
	}
	if ll(0.3) <= ll(100) {
		t.Fatal("sensible length scale should beat an absurdly long one")
	}
}

// Property: posterior variance never exceeds prior variance.
func TestPosteriorVarianceShrinks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(NewMatern32([]float64{0.5, 0.5}), 1e-3, 0)
		for i := 0; i < 8; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			if err := g.Add(x, rng.NormFloat64()); err != nil {
				return false
			}
		}
		for i := 0; i < 10; i++ {
			q := []float64{rng.Float64(), rng.Float64()}
			_, sigma := g.Posterior(q)
			if sigma > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding an observation reduces (or keeps) posterior variance at
// the observed location.
func TestVarianceMonotoneAtObservedPoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(NewMatern32([]float64{0.7}), 1e-3, 0)
		q := []float64{rng.Float64()}
		_, before := g.Posterior(q)
		if err := g.Add(q, rng.NormFloat64()); err != nil {
			return false
		}
		_, after := g.Posterior(q)
		return after <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(nil, 1e-3, 0) },
		func() { New(NewMatern32([]float64{1}), 0, 0) },
		func() { New(NewMatern32([]float64{1}), -1, 0) },
		func() { New(NewMatern32([]float64{1}), 1e-3, -1) },
		func() { New(NewMatern32([]float64{1}), 1e-3, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}
