package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// GP is a Gaussian-process regressor with zero prior mean and i.i.d.
// Gaussian observation noise of variance NoiseVar (the paper's ζ²).
//
// Observations are added one at a time (Add); the Cholesky factor of
// K_T + ζ²·I grows incrementally in O(t²) per observation. An optional
// sliding window (MaxObservations) bounds memory and per-step cost for long
// runs by discarding the oldest observations.
//
// The zero value is not usable; construct with New.
type GP struct {
	kernel   Kernel
	noiseVar float64

	xs    [][]float64 // observed inputs, owned copies
	ys    []float64   // observed targets
	chol  *linalg.Cholesky
	alpha []float64 // (K + ζ²I)⁻¹ y

	maxObs int
	// scratch buffers reused across calls
	kbuf []float64
}

// New returns a GP with the given kernel and observation-noise variance.
// maxObservations bounds the retained history (0 means unlimited); when the
// bound is hit the oldest half of the observations is discarded and the
// factor rebuilt, amortizing to O(t²) per step.
func New(kernel Kernel, noiseVar float64, maxObservations int) *GP {
	if kernel == nil {
		panic("gp: nil kernel")
	}
	if noiseVar <= 0 {
		panic(fmt.Sprintf("gp: noise variance %v must be positive", noiseVar))
	}
	if maxObservations < 0 {
		panic("gp: negative observation bound")
	}
	if maxObservations > 0 && maxObservations < 2 {
		panic("gp: observation bound must be at least 2")
	}
	return &GP{kernel: kernel, noiseVar: noiseVar, maxObs: maxObservations}
}

// Kernel returns the kernel in use.
func (g *GP) Kernel() Kernel { return g.kernel }

// NoiseVar returns the observation-noise variance ζ².
func (g *GP) NoiseVar() float64 { return g.noiseVar }

// Len returns the number of retained observations.
func (g *GP) Len() int { return len(g.xs) }

// Add incorporates the observation (x, y). The input is copied.
func (g *GP) Add(x []float64, y float64) error {
	if len(x) != g.kernel.Dim() {
		return fmt.Errorf("gp: input dimension %d does not match kernel dimension %d", len(x), g.kernel.Dim())
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("gp: non-finite observation %v", y)
	}
	if g.maxObs > 0 && len(g.xs) >= g.maxObs {
		g.evict(g.maxObs / 2)
	}
	xc := append([]float64(nil), x...)
	n := len(g.xs)
	if n == 0 {
		k00 := g.kernel.Eval(xc, xc) + g.noiseVar
		chol, err := linalg.NewCholesky(linalg.NewMatrixFrom(1, 1, []float64{k00}))
		if err != nil {
			return err
		}
		g.chol = chol
	} else {
		b := make([]float64, n)
		for i, xi := range g.xs {
			b[i] = g.kernel.Eval(xi, xc)
		}
		if err := g.chol.Append(b, g.kernel.Eval(xc, xc)+g.noiseVar); err != nil {
			return err
		}
	}
	g.xs = append(g.xs, xc)
	g.ys = append(g.ys, y)
	g.refreshAlpha()
	return nil
}

// evict drops the oldest keepFrom observations and rebuilds the factor.
func (g *GP) evict(dropCount int) {
	g.xs = append([][]float64(nil), g.xs[dropCount:]...)
	g.ys = append([]float64(nil), g.ys[dropCount:]...)
	n := len(g.xs)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel.Eval(g.xs[i], g.xs[j])
			if i == j {
				v += g.noiseVar
			}
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	chol, err := linalg.NewCholesky(k)
	if err != nil {
		// The kernel matrix with ζ² on the diagonal is positive definite by
		// construction; a failure here indicates corrupted state.
		panic(fmt.Sprintf("gp: rebuild after eviction failed: %v", err))
	}
	g.chol = chol
}

func (g *GP) refreshAlpha() {
	g.alpha = append(g.alpha[:0], g.ys...)
	g.chol.SolveVec(g.alpha)
}

// Posterior returns the posterior mean and standard deviation at x
// (paper eq. 3–4). With no observations it returns the prior (0, √k(x,x)).
func (g *GP) Posterior(x []float64) (mu, sigma float64) {
	if len(x) != g.kernel.Dim() {
		panic(fmt.Sprintf("gp: input dimension %d does not match kernel dimension %d", len(x), g.kernel.Dim()))
	}
	prior := g.kernel.Eval(x, x)
	if len(g.xs) == 0 {
		return 0, math.Sqrt(prior)
	}
	n := len(g.xs)
	if cap(g.kbuf) < n {
		g.kbuf = make([]float64, n)
	}
	k := g.kbuf[:n]
	for i, xi := range g.xs {
		k[i] = g.kernel.Eval(xi, x)
	}
	mu = linalg.Dot(k, g.alpha)
	// v = L⁻¹ k; var = k(x,x) − ‖v‖².
	g.chol.ForwardSolve(k)
	v := prior - linalg.Dot(k, k)
	if v < 0 {
		v = 0
	}
	return mu, math.Sqrt(v)
}

// PosteriorBatch evaluates the posterior over a candidate set, writing the
// results into mu and sigma (each of length len(candidates)). It is the hot
// path of EdgeBOL's per-period safe-set and acquisition computation and runs
// in O(B·t²) for B candidates and t observations.
func (g *GP) PosteriorBatch(candidates [][]float64, mu, sigma []float64) {
	if len(mu) != len(candidates) || len(sigma) != len(candidates) {
		panic("gp: PosteriorBatch output length mismatch")
	}
	n := len(g.xs)
	if n == 0 {
		for i, c := range candidates {
			mu[i] = 0
			sigma[i] = math.Sqrt(g.kernel.Eval(c, c))
		}
		return
	}
	if cap(g.kbuf) < n {
		g.kbuf = make([]float64, n)
	}
	k := g.kbuf[:n]
	for ci, c := range candidates {
		prior := g.kernel.Eval(c, c)
		for i, xi := range g.xs {
			k[i] = g.kernel.Eval(xi, c)
		}
		mu[ci] = linalg.Dot(k, g.alpha)
		g.chol.ForwardSolve(k)
		v := prior - linalg.Dot(k, k)
		if v < 0 {
			v = 0
		}
		sigma[ci] = math.Sqrt(v)
	}
}

// LogMarginalLikelihood returns the log evidence of the retained
// observations under the current kernel and noise:
//
//	log p(y|X) = −½ yᵀα − ½ log det(K+ζ²I) − (n/2) log 2π.
func (g *GP) LogMarginalLikelihood() float64 {
	n := len(g.xs)
	if n == 0 {
		return 0
	}
	return -0.5*linalg.Dot(g.ys, g.alpha) - 0.5*g.chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}
