package gp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/telemetry"
)

// GP is a Gaussian-process regressor with zero prior mean and i.i.d.
// Gaussian observation noise of variance NoiseVar (the paper's ζ²).
//
// The regressor runs one of two engines behind the same interface:
//
//   - Exact (New, NewFromData): observations are added one at a time
//     (Add); the Cholesky factor of K_T + ζ²·I grows incrementally in
//     O(t²) per observation. An optional sliding window (MaxObservations)
//     bounds memory and per-step cost for long runs by discarding the
//     oldest observations via a factor downdate.
//   - Sparse (NewSparse, ConvertToSparse): an online inducing-point DTC
//     posterior over a fixed basis budget m; Add costs O(m²) and every
//     posterior query O(m²) regardless of t, which is what makes
//     unbounded-horizon runs affordable. The exact engine remains the
//     correctness oracle — equivalence tests bound the approximation
//     error at small t. In sparse mode MaxObservations is ignored:
//     eviction exists to cap exact-engine growth, and the basis budget
//     already bounds the sparse engine's costs, so eviction is a no-op
//     by design (history stays retained for basis insertions and
//     checkpointing; it is O(t·d) memory with no per-period cost).
//
// Training inputs are stored in one flat row-major matrix so the batched
// posterior sweep streams them cache-linearly through Kernel.EvalBatch.
//
// Concurrency: mutating calls (Add, RestoreFrom) must not run concurrently
// with anything else, but the read paths — Posterior, PosteriorBatch,
// LogMarginalLikelihood, Snapshot — touch no shared mutable state and are
// safe to call from multiple goroutines between mutations.
//
// The zero value is not usable; construct with New or NewFromData.
type GP struct {
	kernel   Kernel
	noiseVar float64
	dim      int

	xs    []float64 // flat row-major observed inputs, Len()×dim
	ys    []float64 // observed targets
	chol  *linalg.Cholesky
	alpha []float64 // (K + ζ²I)⁻¹ y

	maxObs int

	// sp holds the inducing-point engine state; nil selects the exact
	// engine. Set only at construction (NewSparse) or by the one-way
	// ConvertToSparse, never flipped back.
	sp *sparseState

	// evictions counts sliding-window evictions for diagnostics even when
	// telemetry is disabled; mutated only under the Add path, which is
	// single-writer by the concurrency contract above.
	evictions uint64
	met       gpMetrics
}

// gpMetrics holds the GP's pre-registered telemetry handles. The zero
// value (all nil) is the disabled state: every update no-ops.
type gpMetrics struct {
	observations *telemetry.Counter
	evictionsCtr *telemetry.Counter
	sweep        *telemetry.Histogram

	// Sparse-engine series; nil (no-op) under the exact engine.
	inducing   *telemetry.Gauge
	insertsCtr *telemetry.Counter
	swapsCtr   *telemetry.Counter
}

// New returns a GP with the given kernel and observation-noise variance.
// maxObservations bounds the retained history (0 means unlimited); when the
// bound is hit the oldest half of the observations is discarded and the
// factor rebuilt, amortizing to O(t²) per step.
func New(kernel Kernel, noiseVar float64, maxObservations int) *GP {
	if kernel == nil {
		panic("gp: nil kernel")
	}
	if noiseVar <= 0 {
		panic(fmt.Sprintf("gp: noise variance %v must be positive", noiseVar))
	}
	if maxObservations < 0 {
		panic("gp: negative observation bound")
	}
	if maxObservations > 0 && maxObservations < 2 {
		panic("gp: observation bound must be at least 2")
	}
	return &GP{kernel: kernel, noiseVar: noiseVar, dim: kernel.Dim(), maxObs: maxObservations}
}

// NewFromData builds a GP on a full prior dataset at once: one Gram-matrix
// build and one O(n³) factorization instead of n incremental O(n²)
// appends. It validates like New plus per-observation like Add.
func NewFromData(kernel Kernel, noiseVar float64, maxObservations int, xs [][]float64, ys []float64) (*GP, error) {
	g := New(kernel, noiseVar, maxObservations)
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("gp: %d inputs but %d targets", len(xs), len(ys))
	}
	if maxObservations > 0 && len(xs) > maxObservations {
		return nil, fmt.Errorf("gp: %d observations exceed the bound %d", len(xs), maxObservations)
	}
	if len(xs) == 0 {
		return g, nil
	}
	flat := make([]float64, 0, len(xs)*g.dim)
	for i, x := range xs {
		if len(x) != g.dim {
			return nil, fmt.Errorf("gp: input %d dimension %d does not match kernel dimension %d", i, len(x), g.dim)
		}
		if math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
			return nil, fmt.Errorf("gp: non-finite observation %v", ys[i])
		}
		flat = append(flat, x...)
	}
	chol, err := linalg.NewCholesky(gram(kernel, noiseVar, flat, len(xs)))
	if err != nil {
		return nil, err
	}
	g.xs = flat
	g.ys = append([]float64(nil), ys...)
	g.chol = chol
	g.refreshAlpha()
	return g, nil
}

// gram builds the noise-regularized kernel (Gram) matrix K + ζ²·I of the n
// flat row-major inputs. It is the single construction path shared by
// batch fitting (NewFromData, hyperparameter evidence) and the
// post-eviction factor rebuild.
func gram(k Kernel, noiseVar float64, xs []float64, n int) *linalg.Matrix {
	dim := k.Dim()
	m := linalg.NewMatrix(n, n)
	diag := k.Prior() + noiseVar
	for i := 0; i < n; i++ {
		row := m.Row(i)
		k.EvalBatch(xs, dim, xs[i*dim:(i+1)*dim], row[:i])
		for j := 0; j < i; j++ {
			m.Set(j, i, row[j])
		}
		row[i] = diag
	}
	return m
}

// Instrument registers this GP's telemetry series on reg, labeled with
// the objective name (e.g. "cost", "delay", "map"): observation and
// eviction counters plus the batched posterior-sweep latency histogram,
// labeled with the active engine so sparse and exact sweep latencies land
// in separate series. Under the sparse engine it additionally registers
// the inducing-set gauge and insert/swap counters. Call it before
// concurrent use (and again after ConvertToSparse — registration is
// idempotent per series); a nil registry leaves telemetry disabled at
// zero cost on the inference hot path.
func (g *GP) Instrument(reg *telemetry.Registry, objective string) {
	g.met = gpMetrics{
		observations: reg.Counter("edgebol_gp_observations_total", "gp", objective),
		evictionsCtr: reg.Counter("edgebol_gp_evictions_total", "gp", objective),
		sweep: reg.Histogram("edgebol_gp_sweep_seconds", telemetry.LatencyBuckets(),
			"gp", objective, "engine", g.EngineName()),
	}
	if g.sp != nil {
		g.met.inducing = reg.Gauge("edgebol_gp_inducing_points", "gp", objective)
		g.met.insertsCtr = reg.Counter("edgebol_gp_inducing_inserts_total", "gp", objective)
		g.met.swapsCtr = reg.Counter("edgebol_gp_inducing_swaps_total", "gp", objective)
		g.met.inducing.Set(float64(g.sp.m))
	}
}

// Evictions returns the cumulative number of sliding-window evictions.
func (g *GP) Evictions() uint64 { return g.evictions }

// basisGen is the generation counter of the basis a sweep plan tabulates:
// whenever it moves, existing rows were renumbered and every distance
// table must be rebuilt. Exact engine: the eviction counter (an eviction
// drops leading training rows). Sparse engine: the swap counter (a swap
// replaces an inducing row in place; inserts only append and are handled
// by row-count growth).
func (g *GP) basisGen() uint64 {
	if g.sp != nil {
		return g.sp.swaps
	}
	return g.evictions
}

// Kernel returns the kernel in use.
func (g *GP) Kernel() Kernel { return g.kernel }

// NoiseVar returns the observation-noise variance ζ².
func (g *GP) NoiseVar() float64 { return g.noiseVar }

// Len returns the number of retained observations.
func (g *GP) Len() int { return len(g.ys) }

// Training returns copies of the GP's retained training inputs (flat
// row-major, Dim columns) and targets, oldest first. max > 0 caps the
// result to the most recent max rows; max <= 0 returns everything. It is
// the export half of cross-model observation pooling (see core's
// Agent.History): unlike Snapshot it carries no factors, so it stays
// O(n·d) however long the run.
func (g *GP) Training(max int) (xs []float64, ys []float64) {
	n := len(g.ys)
	if max > 0 && max < n {
		n = max
	}
	start := len(g.ys) - n
	xs = append([]float64(nil), g.xs[start*g.dim:]...)
	ys = append([]float64(nil), g.ys[start:]...)
	return xs, ys
}

// TrainingRow returns a read-only view of retained training input i
// (oldest first, i in [0, Len())) — no copy, valid until the next
// mutating call. It is the allocation-free accessor the adaptive
// acquisition engine uses to re-derive the observed grid anchors each
// period; both engines retain the full input history (the sparse engine
// keeps it for basis insertions and checkpointing).
func (g *GP) TrainingRow(i int) []float64 {
	return g.xs[i*g.dim : (i+1)*g.dim]
}

// basisLen returns the number of points a posterior query solves against:
// the inducing-set size under the sparse engine, the training size under
// the exact one. It is the n of every read path's O(n²) solve.
func (g *GP) basisLen() int {
	if g.sp != nil {
		return g.sp.m
	}
	return len(g.ys)
}

// basisXs returns the flat row-major inputs the cross-covariance is
// evaluated against — inducing inputs (sparse) or training inputs (exact).
func (g *GP) basisXs() []float64 {
	if g.sp != nil {
		return g.sp.zs
	}
	return g.xs
}

// Add incorporates the observation (x, y). The input is copied.
func (g *GP) Add(x []float64, y float64) error {
	if len(x) != g.dim {
		return fmt.Errorf("gp: input dimension %d does not match kernel dimension %d", len(x), g.dim)
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("gp: non-finite observation %v", y)
	}
	if g.sp != nil {
		return g.addSparse(x, y)
	}
	if g.maxObs > 0 && g.Len() >= g.maxObs {
		g.evict(g.maxObs / 2)
	}
	n := g.Len()
	diag := g.kernel.Prior() + g.noiseVar
	if n == 0 {
		chol, err := linalg.NewCholesky(linalg.NewMatrixFrom(1, 1, []float64{diag}))
		if err != nil {
			return err
		}
		g.chol = chol
	} else {
		b := make([]float64, n)
		g.kernel.EvalBatch(g.xs, g.dim, x, b)
		if err := g.chol.Append(b, diag); err != nil {
			return err
		}
	}
	g.xs = append(g.xs, x...)
	g.ys = append(g.ys, y)
	g.refreshAlpha()
	g.met.observations.Inc()
	return nil
}

// evict drops the oldest dropCount observations, shrinking the factor
// with a downdate (linalg.Cholesky.DropLeading) instead of rebuilding the
// Gram matrix: only the dropped rows changed, and the retained block plus
// the dropped columns determine the shrunken factor without a single
// kernel re-evaluation — O(k·(t−k)²) arithmetic against the rebuild's
// O(t²·d) kernel evaluations + O(t³) refactorization. The downdated
// factor agrees with a fresh rebuild to rounding error, not bitwise (the
// equivalence tests pin the tolerance). Exact engine only: the sparse
// engine never evicts (see the type comment).
func (g *GP) evict(dropCount int) {
	g.xs = append([]float64(nil), g.xs[dropCount*g.dim:]...)
	g.ys = append([]float64(nil), g.ys[dropCount:]...)
	g.chol.DropLeading(dropCount)
	g.evictions++
	g.met.evictionsCtr.Inc()
}

func (g *GP) refreshAlpha() {
	g.alpha = append(g.alpha[:0], g.ys...)
	g.chol.SolveVec(g.alpha)
}

// Posterior returns the posterior mean and standard deviation at x
// (paper eq. 3–4). With no observations it returns the prior (0, √k(x,x)).
// It shares the exact arithmetic of the batched path, so single and batch
// queries agree bitwise.
func (g *GP) Posterior(x []float64) (mu, sigma float64) {
	if len(x) != g.dim {
		panic(fmt.Sprintf("gp: input dimension %d does not match kernel dimension %d", len(x), g.dim))
	}
	prior := g.kernel.Prior()
	n := g.basisLen()
	if n == 0 {
		//edgebol:allow nanguard -- prior variance is positive by the Kernel contract (Prior is k(x,x) > 0)
		return 0, math.Sqrt(prior)
	}
	k := make([]float64, n)
	g.kernel.EvalBatch(g.basisXs(), g.dim, x, k)
	if g.sp != nil {
		// DTC predictive: μ = kᵀα, σ² = prior − ‖L_mm⁻¹k‖² + ‖L_Σ⁻¹k‖².
		sp := g.sp
		mu = linalg.Dot(k, sp.alpha)
		kq := append([]float64(nil), k...)
		sp.cholKmm.ForwardSolveBatch([][]float64{kq})
		sp.cholSig.ForwardSolveBatch([][]float64{k})
		v := prior - linalg.Dot(kq, kq) + linalg.Dot(k, k)
		if v < 0 {
			v = 0
		}
		return mu, math.Sqrt(v)
	}
	mu = linalg.Dot(k, g.alpha)
	// v = L⁻¹ k; var = k(x,x) − ‖v‖².
	g.chol.ForwardSolveBatch([][]float64{k})
	v := prior - linalg.Dot(k, k)
	if v < 0 {
		v = 0
	}
	return mu, math.Sqrt(v)
}

// sweepTile is the number of candidates a posterior worker advances
// together; it matches linalg.PanelWidth so full tiles hit the fused
// interleaved-panel solve and shard boundaries stay tile-aligned.
const sweepTile = linalg.PanelWidth

// autoWorkPairs is the number of training-point × candidate pairs that
// justifies one worker when the caller requests automatic parallelism.
// One worker sweeps ~10⁸ pairs/s on commodity cores, so the threshold
// keeps sub-millisecond sweeps serial (goroutine fan-out would dominate)
// while the full 11⁴-point grid against a mature training window still
// fans out to every core.
const autoWorkPairs = 1 << 17

// ResolveWorkers maps a requested worker count to the effective degree of
// parallelism of a sweep of `candidates` posteriors against `trainLen`
// observations. Explicit requests (> 0) are honored; requested <= 0 scales
// the count with the total work n×m — tiny sweeps run serially instead of
// paying fan-out for sub-millisecond work, large ones use every core.
// Either way the count is capped by the number of tile-aligned shards.
// The resolution affects scheduling only, never results.
func ResolveWorkers(trainLen, candidates, requested int) int {
	if requested <= 0 {
		w := int(int64(trainLen) * int64(candidates) / autoWorkPairs)
		if w < 1 {
			w = 1
		}
		if p := runtime.GOMAXPROCS(0); w > p {
			w = p
		}
		requested = w
	}
	if maxShards := (candidates + sweepTile - 1) / sweepTile; requested > maxShards {
		requested = maxShards
	}
	return requested
}

// BatchOptions configure one batched posterior sweep. The zero value is
// the default: work-scaled parallelism.
type BatchOptions struct {
	// Workers is the explicit degree of parallelism: candidates are split
	// into contiguous tile-aligned shards evaluated by this many
	// goroutines, each with its own scratch buffers (the read path holds
	// no shared mutable state, so sharding is race-free by construction).
	// Workers <= 0 scales the count with the total work (see
	// ResolveWorkers); Workers == 1 runs serially on the calling
	// goroutine. Every candidate's arithmetic is independent of the
	// sharding, so results are bitwise identical for every setting.
	Workers int
}

// PosteriorBatch evaluates the posterior over a candidate set, writing the
// results into mu and sigma (each of length len(candidates)). It is the hot
// path of EdgeBOL's per-period safe-set and acquisition computation; opts
// controls the sharding (the zero BatchOptions selects work-scaled
// parallelism) and never affects the results.
func (g *GP) PosteriorBatch(candidates [][]float64, mu, sigma []float64, opts BatchOptions) {
	workers := opts.Workers
	if len(mu) != len(candidates) || len(sigma) != len(candidates) {
		panic("gp: PosteriorBatch output length mismatch")
	}
	// Sweep timing is gated on the handle so a nil registry adds exactly
	// one nil check to the hot path (the zero-overhead-when-disabled
	// contract the inference benchmarks hold the package to).
	if g.met.sweep != nil {
		start := time.Now()
		defer func() { g.met.sweep.ObserveDuration(time.Since(start)) }()
	}
	n := g.basisLen()
	if n == 0 {
		prior := math.Sqrt(g.kernel.Prior())
		for i := range candidates {
			mu[i] = 0
			sigma[i] = prior
		}
		return
	}
	workers = ResolveWorkers(n, len(candidates), workers)
	if workers <= 1 {
		g.posteriorRange(candidates, mu, sigma)
		return
	}
	// Tile-aligned contiguous shards keep every worker's inner loop on
	// full tiles (alignment affects speed only, never results).
	chunk := (len(candidates) + workers - 1) / workers
	chunk = (chunk + sweepTile - 1) / sweepTile * sweepTile
	var wg sync.WaitGroup
	for lo := 0; lo < len(candidates); lo += chunk {
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			g.posteriorRange(candidates[lo:hi], mu[lo:hi], sigma[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}

// posteriorRange evaluates one shard of candidates serially, advancing
// sweepTile candidates per pass through linalg's fused tiled solve (mean
// dot product and squared solve norm folded into the panel passes). The
// scratch buffers are local to the call: read-path inference shares no
// mutable state.
//
// Under the sparse engine each tile runs the fused solve twice against
// the two m-sized factors — Σ (mean and explained-variance term) and K_mm
// (Nyström term) — which is why the whole sweep is O(m²) per candidate
// regardless of the training size. The exact branch is untouched: its
// arithmetic is bit-for-bit the pre-sparse code.
//
//edgebol:hot
func (g *GP) posteriorRange(candidates [][]float64, mu, sigma []float64) {
	n := g.basisLen()
	bxs := g.basisXs()
	prior := g.kernel.Prior()
	tile := len(candidates)
	if tile > sweepTile {
		tile = sweepTile
	}
	buf := make([]float64, tile*n)
	views := make([][]float64, tile)
	for b := range views {
		views[b] = buf[b*n : (b+1)*n]
	}
	var buf2 []float64
	var views2 [][]float64
	if g.sp != nil {
		buf2 = make([]float64, tile*n)
		views2 = make([][]float64, tile)
		for b := range views2 {
			views2[b] = buf2[b*n : (b+1)*n]
		}
	}
	var solver linalg.FusedSolver
	var vsq, vsqNy, muNy [sweepTile]float64
	for lo := 0; lo < len(candidates); lo += tile {
		m := len(candidates) - lo
		if m > tile {
			m = tile
		}
		for b := 0; b < m; b++ {
			g.kernel.EvalBatch(bxs, g.dim, candidates[lo+b], views[b])
		}
		if g.sp != nil {
			copy(buf2, buf)
			solver.SolveFused(g.sp.cholSig, views[:m], g.sp.alpha, mu[lo:lo+m], vsq[:m])
			solver.SolveFused(g.sp.cholKmm, views2[:m], g.sp.zeroAlpha[:n], muNy[:m], vsqNy[:m])
			for b := 0; b < m; b++ {
				v := prior - vsqNy[b] + vsq[b]
				if v < 0 {
					v = 0
				}
				sigma[lo+b] = math.Sqrt(v)
			}
			continue
		}
		solver.SolveFused(g.chol, views[:m], g.alpha, mu[lo:lo+m], vsq[:m])
		for b := 0; b < m; b++ {
			v := prior - vsq[b]
			if v < 0 {
				v = 0
			}
			sigma[lo+b] = math.Sqrt(v)
		}
	}
}

// LogMarginalLikelihood returns the log evidence of the retained
// observations under the current kernel and noise:
//
//	log p(y|X) = −½ yᵀα − ½ log det(K+ζ²I) − (n/2) log 2π.
//
// Under the sparse engine it returns the DTC evidence assembled from the
// streamed moments (see sparseLML) — no history pass either way.
func (g *GP) LogMarginalLikelihood() float64 {
	if g.sp != nil {
		return g.sparseLML()
	}
	n := g.Len()
	if n == 0 {
		return 0
	}
	return -0.5*linalg.Dot(g.ys, g.alpha) - 0.5*g.chol.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)
}
