package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func kernels(ls []float64) []Kernel {
	return []Kernel{NewMatern32(ls), NewMatern52(ls), NewRBF(ls)}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestKernelSelfCovarianceIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range kernels([]float64{0.5, 1.5, 2}) {
		for trial := 0; trial < 20; trial++ {
			x := randVec(rng, 3)
			if v := k.Eval(x, x); math.Abs(v-1) > 1e-12 {
				t.Fatalf("%T: k(x,x) = %v, want 1", k, v)
			}
		}
	}
}

func TestKernelSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ls := []float64{0.3, 0.7, 1.1, 2.2}
		a, b := randVec(rng, 4), randVec(rng, 4)
		for _, k := range kernels(ls) {
			if math.Abs(k.Eval(a, b)-k.Eval(b, a)) > 1e-14 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, 2), randVec(rng, 2)
		for _, k := range kernels([]float64{0.4, 0.9}) {
			v := k.Eval(a, b)
			if v < 0 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelMonotoneDecayWithDistance(t *testing.T) {
	// Along a ray from the origin, covariance must decrease.
	for _, k := range kernels([]float64{1}) {
		prev := math.Inf(1)
		for d := 0.0; d <= 5; d += 0.25 {
			v := k.Eval([]float64{0}, []float64{d})
			if v > prev+1e-12 {
				t.Fatalf("%T: covariance not monotone at distance %v", k, d)
			}
			prev = v
		}
	}
}

func TestKernelAnisotropy(t *testing.T) {
	// A short length scale on dim 0 makes displacement there decay faster
	// than the same displacement on dim 1.
	k := NewMatern32([]float64{0.1, 10})
	near := k.Eval([]float64{0, 0}, []float64{0, 1})
	far := k.Eval([]float64{0, 0}, []float64{1, 0})
	if far >= near {
		t.Fatalf("anisotropy broken: along-short-scale %v >= along-long-scale %v", far, near)
	}
}

func TestKernelStationarity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, shift := randVec(rng, 3), randVec(rng, 3), randVec(rng, 3)
		as, bs := make([]float64, 3), make([]float64, 3)
		for i := range shift {
			as[i], bs[i] = a[i]+shift[i], b[i]+shift[i]
		}
		for _, k := range kernels([]float64{0.5, 1, 2}) {
			if math.Abs(k.Eval(a, b)-k.Eval(as, bs)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatern32MatchesClosedForm(t *testing.T) {
	k := NewMatern32([]float64{2})
	// distance d = |a-b|/l = 1.5
	a, b := []float64{0}, []float64{3}
	d := math.Sqrt(3) * 1.5
	want := (1 + d) * math.Exp(-d)
	if got := k.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Matern32 = %v, want %v", got, want)
	}
}

func TestKernelBadLengthScalesPanic(t *testing.T) {
	for _, bad := range [][]float64{nil, {}, {0}, {-1}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for length scales %v", bad)
				}
			}()
			NewMatern32(bad)
		}()
	}
}

func TestKernelDim(t *testing.T) {
	for _, k := range kernels([]float64{1, 2, 3}) {
		if k.Dim() != 3 {
			t.Fatalf("%T: Dim = %d, want 3", k, k.Dim())
		}
	}
}

func TestMatern52SmootherThanMatern32(t *testing.T) {
	// Near the origin the smoother kernel stays closer to 1.
	m32 := NewMatern32([]float64{1})
	m52 := NewMatern52([]float64{1})
	a, b := []float64{0}, []float64{0.2}
	if m52.Eval(a, b) <= m32.Eval(a, b) {
		t.Fatal("Matern52 should decay slower near zero than Matern32")
	}
}
