package gp

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/linalg"
	"repro/internal/telemetry"
)

// SweepPlan accelerates the per-period posterior sweep over a fixed
// control grid by exploiting its structure: every candidate in a period
// shares the same context, the grid never changes, and the anisotropic
// squared distance of paper eq. 5 decomposes additively per dimension. The
// plan therefore precomputes, per training point and per control
// dimension, the squared scaled distances to every grid level once at
// observe-time; a period's cross-covariance row then costs one table
// lookup per control dimension plus a per-training-point context scalar,
// instead of re-deriving O(d) distances per (training point, candidate)
// pair.
//
// Distance-table layout: tables[d][l][i] holds
//
//	((x_i[ctxDims+d] − levels[d][l]) · inv[ctxDims+d])²
//
// for basis row i — exactly the per-dimension term of the kernel's
// EvalBatch. The basis is the training set on the exact engine and the
// inducing set on the sparse one. Cached rows are appended when the basis
// grows and rebuilt from scratch when its generation counter moves (a
// sliding-window eviction renumbers the training rows; an inducing-point
// swap replaces a basis row in place); a hyperparameter refit constructs
// a new GP and therefore a new plan.
//
// Bitwise contract: Sweep reproduces PosteriorBatch over the
// enumerated grid bit for bit, for every worker count. The per-dimension
// terms are accumulated in the same two even/odd chains, in the same
// order, as the kernel's scaledSqDistInv — the context dimensions come
// first, so the per-period context partials are valid prefixes of both
// chains — and the solve path is the same fused tiled solve.
//
// Concurrency: like the GP read path, Sweep must not run concurrently
// with Add or with another Sweep on the same plan (it refreshes the
// distance tables); distinct plans over distinct GPs may sweep
// concurrently, and Sweep shards its own work internally.
type SweepPlan struct {
	g       *GP
	ctxDims int
	tail    kernelTail
	inv     []float64   // reciprocal length scales, one per feature dim
	levels  [][]float64 // per control dimension, the grid level values
	size    int         // grid cardinality Π len(levels[d])

	// evens/odds partition the control dimensions by feature-dim parity,
	// matching the two accumulation chains of scaledSqDistInv.
	evens, odds []int

	tables   [][][]float64
	rows     int    // basis rows currently tabulated
	basisGen uint64 // GP basis generation the tables were built against

	// c0/c1 are the per-period context partials: the even/odd chain
	// prefixes over the context dimensions, one entry per training row.
	c0, c1 []float64

	met planMetrics
}

// kernelTail identifies the covariance tail κ(d²) applied to the
// tabulated squared distances; the expressions are copied verbatim from
// the corresponding EvalBatch implementations.
type kernelTail int

const (
	tailMatern32 kernelTail = iota
	tailMatern52
	tailRBF
)

// planMetrics holds the plan's pre-registered telemetry handles; the zero
// value (all nil) is the disabled state.
type planMetrics struct {
	builds    *telemetry.Counter
	refreshes *telemetry.Counter
	rows      *telemetry.Gauge
}

// NewSweepPlan builds a sweep plan for g over the grid whose control
// dimensions take the given level values (feature order, after the
// ctxDims context dimensions). The grid is enumerated with the last
// control dimension fastest — the order core.GridSpec.Enumerate uses — and
// candidate features must equal the level values bitwise (core guarantees
// this by deriving both from the same GridSpec).
//
// It returns an error when the kernel is not one of the package's
// stationary kernels or the dimensions are inconsistent; callers fall
// back to the generic PosteriorBatch path.
func NewSweepPlan(g *GP, ctxDims int, levels [][]float64) (*SweepPlan, error) {
	if g == nil {
		return nil, fmt.Errorf("gp: SweepPlan needs a GP")
	}
	var ls []float64
	var tail kernelTail
	switch k := g.kernel.(type) {
	case *Matern32:
		ls, tail = k.LengthScales, tailMatern32
	case *Matern52:
		ls, tail = k.LengthScales, tailMatern52
	case *RBF:
		ls, tail = k.LengthScales, tailRBF
	default:
		return nil, fmt.Errorf("gp: SweepPlan requires a package kernel, got %T", g.kernel)
	}
	if ctxDims < 0 {
		return nil, fmt.Errorf("gp: negative context dimension count %d", ctxDims)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("gp: SweepPlan needs at least one control dimension")
	}
	if ctxDims+len(levels) != len(ls) {
		return nil, fmt.Errorf("gp: %d context + %d control dimensions do not match kernel dimension %d",
			ctxDims, len(levels), len(ls))
	}
	size := 1
	for d, lv := range levels {
		if len(lv) == 0 {
			return nil, fmt.Errorf("gp: control dimension %d has no levels", d)
		}
		size *= len(lv)
	}
	p := &SweepPlan{
		g:       g,
		ctxDims: ctxDims,
		tail:    tail,
		inv:     make([]float64, len(ls)),
		levels:  make([][]float64, len(levels)),
		size:    size,
		tables:  make([][][]float64, len(levels)),
	}
	for i, l := range ls {
		//edgebol:allow nanguard -- length scales are validated positive by checkLengthScales at construction
		p.inv[i] = 1 / l
	}
	for d, lv := range levels {
		p.levels[d] = append([]float64(nil), lv...)
		p.tables[d] = make([][]float64, len(lv))
		if (ctxDims+d)%2 == 0 {
			p.evens = append(p.evens, d)
		} else {
			p.odds = append(p.odds, d)
		}
	}
	p.basisGen = g.basisGen()
	p.appendRows(0, g.basisLen())
	p.rows = g.basisLen()
	p.met.builds.Inc()
	return p, nil
}

// Instrument registers the plan's telemetry series on reg, labeled with
// the objective name: table build/refresh counters and the cached-row
// gauge. A nil registry leaves telemetry disabled at zero cost.
func (p *SweepPlan) Instrument(reg *telemetry.Registry, objective string) {
	p.met = planMetrics{
		builds:    reg.Counter("edgebol_gp_sweep_plan_builds_total", "gp", objective),
		refreshes: reg.Counter("edgebol_gp_sweep_plan_refreshes_total", "gp", objective),
		rows:      reg.Gauge("edgebol_gp_sweep_plan_rows", "gp", objective),
	}
	p.met.rows.Set(float64(p.rows))
}

// GridSize returns the grid cardinality the plan sweeps.
func (p *SweepPlan) GridSize() int { return p.size }

// appendRows tabulates basis rows [from, to) into every distance table —
// training rows on the exact engine, inducing rows on the sparse one.
func (p *SweepPlan) appendRows(from, to int) {
	dim := p.g.dim
	bxs := p.g.basisXs()
	for d, lv := range p.levels {
		f := p.ctxDims + d
		invf := p.inv[f]
		for li, level := range lv {
			tab := p.tables[d][li]
			for i := from; i < to; i++ {
				t := (bxs[i*dim+f] - level) * invf
				tab = append(tab, t*t)
			}
			p.tables[d][li] = tab
		}
	}
}

// sync brings the distance tables up to date with the GP's basis: growth
// (new observations, or basis insertions under the sparse engine) appends
// rows; a moved basis generation — an eviction renumbering the training
// rows, or an inducing-point swap replacing a basis row in place —
// rebuilds every table from scratch.
func (p *SweepPlan) sync() {
	n := p.g.basisLen()
	switch {
	case p.g.basisGen() != p.basisGen || n < p.rows:
		for d := range p.tables {
			for li := range p.tables[d] {
				p.tables[d][li] = p.tables[d][li][:0]
			}
		}
		p.appendRows(0, n)
		p.basisGen = p.g.basisGen()
		p.met.builds.Inc()
	case n > p.rows:
		p.appendRows(p.rows, n)
		p.met.refreshes.Inc()
	}
	p.rows = n
	p.met.rows.Set(float64(n))
}

// Sweep evaluates the GP posterior at every grid point for the given
// context features, writing into mu and sigma (each of length GridSize(),
// in the grid's enumeration order). workers follows the semantics of
// PosteriorBatch; results are bitwise identical to evaluating the
// enumerated grid through that generic path, for every worker count.
func (p *SweepPlan) Sweep(ctx []float64, mu, sigma []float64, workers int) {
	if len(ctx) != p.ctxDims {
		panic(fmt.Sprintf("gp: Sweep context dimension %d does not match plan's %d", len(ctx), p.ctxDims))
	}
	if len(mu) != p.size || len(sigma) != p.size {
		panic(fmt.Sprintf("gp: Sweep output lengths %d, %d do not match grid size %d", len(mu), len(sigma), p.size))
	}
	g := p.g
	if g.met.sweep != nil {
		start := time.Now()
		defer func() { g.met.sweep.ObserveDuration(time.Since(start)) }()
	}
	n := g.basisLen()
	if n == 0 {
		prior := math.Sqrt(g.kernel.Prior())
		for i := range mu {
			mu[i] = 0
			sigma[i] = prior
		}
		return
	}
	p.sync()
	c0, c1 := p.contextPartials(ctx, n)
	workers = ResolveWorkers(n, p.size, workers)
	if workers <= 1 {
		p.sweepRange(0, p.size, c0, c1, mu, sigma)
		return
	}
	chunk := (p.size + workers - 1) / workers
	chunk = (chunk + sweepTile - 1) / sweepTile * sweepTile
	var wg sync.WaitGroup
	for lo := 0; lo < p.size; lo += chunk {
		hi := lo + chunk
		if hi > p.size {
			hi = p.size
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.sweepRange(lo, hi, c0, c1, mu, sigma)
		}(lo, hi)
	}
	wg.Wait()
}

// contextPartials computes the per-period context partials: the even/odd
// accumulation chains of scaledSqDistInv restricted to the context
// dimensions, one entry per basis row, into the plan's reused buffers.
// Because the context dimensions precede the control dimensions, each
// partial is the exact floating-point prefix of its chain.
func (p *SweepPlan) contextPartials(ctx []float64, n int) (c0, c1 []float64) {
	if cap(p.c0) < n {
		p.c0 = make([]float64, n)
		p.c1 = make([]float64, n)
	}
	c0, c1 = p.c0[:n], p.c1[:n]
	dim := p.g.dim
	bxs := p.g.basisXs()
	for i := 0; i < n; i++ {
		row := bxs[i*dim : i*dim+p.ctxDims]
		var s0, s1 float64
		for j, x := range row {
			t := (x - ctx[j]) * p.inv[j]
			if j%2 == 0 {
				s0 += t * t
			} else {
				s1 += t * t
			}
		}
		c0[i], c1[i] = s0, s1
	}
	return c0, c1
}

// SweepSubset evaluates the GP posterior at the grid points whose flat
// indices are listed in idxs (each in [0, GridSize()), enumeration order),
// writing into mu and sigma (each of length len(idxs), parallel to idxs).
// Per candidate the arithmetic is identical to Sweep's — the same distance
// tables, chain order, and fused tiled solve, and the per-column math is
// independent of how columns are tiled — so output j equals the Sweep
// output at grid index idxs[j] bitwise, for every worker count and any
// subset composition. This is the adaptive acquisition engine's primitive:
// a period costs O(len(idxs)) instead of O(GridSize()).
func (p *SweepPlan) SweepSubset(ctx []float64, idxs []int32, mu, sigma []float64, workers int) {
	if len(ctx) != p.ctxDims {
		panic(fmt.Sprintf("gp: SweepSubset context dimension %d does not match plan's %d", len(ctx), p.ctxDims))
	}
	if len(mu) != len(idxs) || len(sigma) != len(idxs) {
		panic(fmt.Sprintf("gp: SweepSubset output lengths %d, %d do not match %d indices", len(mu), len(sigma), len(idxs)))
	}
	g := p.g
	if g.met.sweep != nil {
		start := time.Now()
		defer func() { g.met.sweep.ObserveDuration(time.Since(start)) }()
	}
	n := g.basisLen()
	if n == 0 {
		prior := math.Sqrt(g.kernel.Prior())
		for i := range mu {
			mu[i] = 0
			sigma[i] = prior
		}
		return
	}
	p.sync()
	c0, c1 := p.contextPartials(ctx, n)
	m := len(idxs)
	workers = ResolveWorkers(n, m, workers)
	if workers <= 1 {
		p.sweepSubsetRange(idxs, 0, m, c0, c1, mu, sigma)
		return
	}
	chunk := (m + workers - 1) / workers
	chunk = (chunk + sweepTile - 1) / sweepTile * sweepTile
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p.sweepSubsetRange(idxs, lo, hi, c0, c1, mu, sigma)
		}(lo, hi)
	}
	wg.Wait()
}

// sweepSubsetRange is sweepRange over an index list: positions [lo, hi) of
// idxs are evaluated with the identical per-candidate arithmetic, writing
// results at the same positions of mu and sigma.
//
//edgebol:hot
func (p *SweepPlan) sweepSubsetRange(idxs []int32, lo, hi int, c0, c1, mu, sigma []float64) {
	g := p.g
	n := g.basisLen()
	prior := g.kernel.Prior()
	tile := hi - lo
	if tile > sweepTile {
		tile = sweepTile
	}
	buf := make([]float64, tile*n)
	views := make([][]float64, tile)
	for b := range views {
		views[b] = buf[b*n : (b+1)*n]
	}
	var buf2 []float64
	var views2 [][]float64
	if g.sp != nil {
		buf2 = make([]float64, tile*n)
		views2 = make([][]float64, tile)
		for b := range views2 {
			views2[b] = buf2[b*n : (b+1)*n]
		}
	}
	var solver linalg.FusedSolver
	var vsq, vsqNy, muNy [sweepTile]float64
	li := make([]int, len(p.levels))
	rowsE := make([][]float64, len(p.evens))
	rowsO := make([][]float64, len(p.odds))
	for base := lo; base < hi; base += tile {
		m := hi - base
		if m > tile {
			m = tile
		}
		for b := 0; b < m; b++ {
			p.levelIndices(int(idxs[base+b]), li)
			for e, d := range p.evens {
				rowsE[e] = p.tables[d][li[d]][:n]
			}
			for o, d := range p.odds {
				rowsO[o] = p.tables[d][li[d]][:n]
			}
			col := views[b]
			fillSqDist(col, c0, c1, rowsE, rowsO)
			p.applyTail(col)
		}
		if g.sp != nil {
			copy(buf2, buf)
			solver.SolveFused(g.sp.cholSig, views[:m], g.sp.alpha, mu[base:base+m], vsq[:m])
			solver.SolveFused(g.sp.cholKmm, views2[:m], g.sp.zeroAlpha[:n], muNy[:m], vsqNy[:m])
			for b := 0; b < m; b++ {
				v := prior - vsqNy[b] + vsq[b]
				if v < 0 {
					v = 0
				}
				sigma[base+b] = math.Sqrt(v)
			}
			continue
		}
		solver.SolveFused(g.chol, views[:m], g.alpha, mu[base:base+m], vsq[:m])
		for b := 0; b < m; b++ {
			v := prior - vsq[b]
			if v < 0 {
				v = 0
			}
			sigma[base+b] = math.Sqrt(v)
		}
	}
}

// sweepRange evaluates grid points [lo, hi): per candidate, assemble the
// cross-covariance column from the distance tables and context partials,
// then run tiles of sweepTile columns through the fused solve — the same
// tiling as posteriorRange, so shard boundaries never change results.
// Sparse engine: the assembled columns are cross-covariances to the
// inducing basis and each tile solves against both m-sized factors, the
// same dual-solve shape as posteriorRange.
//
//edgebol:hot
func (p *SweepPlan) sweepRange(lo, hi int, c0, c1, mu, sigma []float64) {
	g := p.g
	n := g.basisLen()
	prior := g.kernel.Prior()
	tile := hi - lo
	if tile > sweepTile {
		tile = sweepTile
	}
	buf := make([]float64, tile*n)
	views := make([][]float64, tile)
	for b := range views {
		views[b] = buf[b*n : (b+1)*n]
	}
	var buf2 []float64
	var views2 [][]float64
	if g.sp != nil {
		buf2 = make([]float64, tile*n)
		views2 = make([][]float64, tile)
		for b := range views2 {
			views2[b] = buf2[b*n : (b+1)*n]
		}
	}
	var solver linalg.FusedSolver
	var vsq, vsqNy, muNy [sweepTile]float64
	li := make([]int, len(p.levels))
	rowsE := make([][]float64, len(p.evens))
	rowsO := make([][]float64, len(p.odds))
	for base := lo; base < hi; base += tile {
		m := hi - base
		if m > tile {
			m = tile
		}
		for b := 0; b < m; b++ {
			p.levelIndices(base+b, li)
			for e, d := range p.evens {
				rowsE[e] = p.tables[d][li[d]][:n]
			}
			for o, d := range p.odds {
				rowsO[o] = p.tables[d][li[d]][:n]
			}
			col := views[b]
			fillSqDist(col, c0, c1, rowsE, rowsO)
			p.applyTail(col)
		}
		if g.sp != nil {
			copy(buf2, buf)
			solver.SolveFused(g.sp.cholSig, views[:m], g.sp.alpha, mu[base:base+m], vsq[:m])
			solver.SolveFused(g.sp.cholKmm, views2[:m], g.sp.zeroAlpha[:n], muNy[:m], vsqNy[:m])
			for b := 0; b < m; b++ {
				v := prior - vsqNy[b] + vsq[b]
				if v < 0 {
					v = 0
				}
				sigma[base+b] = math.Sqrt(v)
			}
			continue
		}
		solver.SolveFused(g.chol, views[:m], g.alpha, mu[base:base+m], vsq[:m])
		for b := 0; b < m; b++ {
			v := prior - vsq[b]
			if v < 0 {
				v = 0
			}
			sigma[base+b] = math.Sqrt(v)
		}
	}
}

// levelIndices decodes a grid index into per-dimension level indices,
// last control dimension fastest (the enumeration order of
// core.GridSpec.Enumerate).
//
//edgebol:hot
func (p *SweepPlan) levelIndices(g int, li []int) {
	for d := len(p.levels) - 1; d >= 0; d-- {
		l := len(p.levels[d])
		li[d] = g % l
		g /= l
	}
}

// fillSqDist assembles the squared scaled distances of one candidate
// column from the selected table rows and the context partials, summing
// each chain in ascending dimension order — the floating-point order of
// scaledSqDistInv.
//
//edgebol:hot
func fillSqDist(col, c0, c1 []float64, rowsE, rowsO [][]float64) {
	if len(rowsE) == 2 && len(rowsO) == 3 {
		// EdgeBOL's layout: 3 context + 5 control dimensions put two
		// control terms on the even chain and three on the odd one.
		e0, e1, o0, o1, o2 := rowsE[0], rowsE[1], rowsO[0], rowsO[1], rowsO[2]
		for i := range col {
			col[i] = ((c0[i] + e0[i]) + e1[i]) + (((c1[i] + o0[i]) + o1[i]) + o2[i])
		}
		return
	}
	if len(rowsE) == 2 && len(rowsO) == 2 {
		// 3 context + 4 control dimensions: two control terms per chain.
		e0, e1, o0, o1 := rowsE[0], rowsE[1], rowsO[0], rowsO[1]
		for i := range col {
			col[i] = ((c0[i] + e0[i]) + e1[i]) + ((c1[i] + o0[i]) + o1[i])
		}
		return
	}
	for i := range col {
		s0, s1 := c0[i], c1[i]
		for _, r := range rowsE {
			s0 += r[i]
		}
		for _, r := range rowsO {
			s1 += r[i]
		}
		col[i] = s0 + s1
	}
}

// applyTail maps squared distances to covariances in place, with
// expressions identical to the kernels' EvalBatch.
//
//edgebol:hot
func (p *SweepPlan) applyTail(col []float64) {
	switch p.tail {
	case tailMatern32:
		for i, d2 := range col {
			//edgebol:allow nanguard -- d2 is a squared distance, non-negative by construction
			d := math.Sqrt(3 * d2)
			col[i] = (1 + d) * math.Exp(-d)
		}
	case tailMatern52:
		for i, d2 := range col {
			s2 := 5 * d2
			//edgebol:allow nanguard -- s2 scales a squared distance, non-negative by construction
			d := math.Sqrt(s2)
			col[i] = (1 + d + s2/3) * math.Exp(-d)
		}
	default:
		for i, d2 := range col {
			col[i] = math.Exp(-0.5 * d2)
		}
	}
}
