package gp

import (
	"math"
	"math/rand"
	"testing"
)

func syntheticData(rng *rand.Rand, n int, noise float64) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := []float64{rng.Float64(), rng.Float64()}
		xs[i] = x
		ys[i] = math.Sin(5*x[0]) + 0.3*x[1] + noise*rng.NormFloat64()
	}
	return xs, ys
}

func TestFitRecoversReasonableModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := syntheticData(rng, 40, 0.05)
	hp, ll, err := Fit(Matern32Factory, xs, ys, DefaultFitOptions(rng))
	if err != nil {
		t.Fatal(err)
	}
	if len(hp.LengthScales) != 2 {
		t.Fatalf("fitted %d length scales, want 2", len(hp.LengthScales))
	}
	if hp.NoiseVar <= 0 {
		t.Fatalf("fitted non-positive noise %v", hp.NoiseVar)
	}
	// The fitted model must beat a deliberately bad one.
	bad, err2 := evidence(NewMatern32([]float64{1e-3, 1e-3}), 1e-6, xs, ys)
	if err2 != nil {
		t.Fatal(err2)
	}
	if ll <= bad {
		t.Fatalf("fitted evidence %v not better than degenerate %v", ll, bad)
	}
}

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	opts := DefaultFitOptions(rng)
	if _, _, err := Fit(Matern32Factory, nil, nil, opts); err == nil {
		t.Fatal("expected error for empty data")
	}
	xs, ys := syntheticData(rng, 5, 0)
	if _, _, err := Fit(Matern32Factory, xs, ys[:3], opts); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	badOpts := opts
	badOpts.Rand = nil
	if _, _, err := Fit(Matern32Factory, xs, ys, badOpts); err == nil {
		t.Fatal("expected error for nil Rand")
	}
	badOpts = opts
	badOpts.Iterations = 0
	if _, _, err := Fit(Matern32Factory, xs, ys, badOpts); err == nil {
		t.Fatal("expected error for zero iterations")
	}
}

func TestFitGeneralizes(t *testing.T) {
	// A GP built from fitted hyperparameters should predict held-out points
	// better than the prior (mean 0).
	rng := rand.New(rand.NewSource(3))
	trainX, trainY := syntheticData(rng, 50, 0.05)
	testX, testY := syntheticData(rng, 20, 0.0)

	hp, _, err := Fit(Matern32Factory, trainX, trainY, DefaultFitOptions(rng))
	if err != nil {
		t.Fatal(err)
	}
	g := New(NewMatern32(hp.LengthScales), hp.NoiseVar, 0)
	for i := range trainX {
		if err := g.Add(trainX[i], trainY[i]); err != nil {
			t.Fatal(err)
		}
	}
	var mseGP, msePrior float64
	for i := range testX {
		mu, _ := g.Posterior(testX[i])
		mseGP += (mu - testY[i]) * (mu - testY[i])
		msePrior += testY[i] * testY[i]
	}
	if mseGP >= msePrior {
		t.Fatalf("fitted GP mse %v not better than prior mse %v", mseGP, msePrior)
	}
}

func TestFactories(t *testing.T) {
	ls := []float64{0.5, 1}
	for _, f := range []KernelFactory{Matern32Factory, Matern52Factory, RBFFactory} {
		k := f(ls)
		if k.Dim() != 2 {
			t.Fatalf("factory produced kernel of dim %d", k.Dim())
		}
	}
}
