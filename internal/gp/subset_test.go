package gp

import (
	"fmt"
	"math/rand"
	"testing"
)

// sparseSweepTestGP builds a sparse-engine GP over ctxDims+ctrlDims
// features with n random observations.
func sparseSweepTestGP(t *testing.T, ctxDims, ctrlDims, n int, seed int64) *GP {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := ctxDims + ctrlDims
	ls := make([]float64, dims)
	for i := range ls {
		ls[i] = 0.3 + rng.Float64()
	}
	g, err := NewSparse(NewMatern32(ls), 2e-3, SparseConfig{MaxInducing: 16})
	if err != nil {
		t.Fatal(err)
	}
	addSweepObs(t, g, n, rng)
	return g
}

// TestSweepSubsetMatchesSweep pins the adaptive acquisition's contract:
// SweepSubset over an arbitrary index list — unsorted, duplicated,
// tile-misaligned — reproduces the full Sweep's output at those indices
// bitwise, for every worker count, on both engines.
func TestSweepSubsetMatchesSweep(t *testing.T) {
	shapes := []struct {
		ctxDims int
		counts  []int
	}{
		{3, []int{5, 4, 3, 4}},    // EdgeBOL's 3+4 layout (2 evens / 2 odds)
		{3, []int{3, 4, 2, 3, 5}}, // 3+5 split-inference layout (2 evens / 3 odds)
		{2, []int{4, 3, 5}},
	}
	for _, sparse := range []bool{false, true} {
		for _, shape := range shapes {
			name := fmt.Sprintf("sparse=%v/ctx=%d/dims=%d", sparse, shape.ctxDims, len(shape.counts))
			t.Run(name, func(t *testing.T) {
				var g *GP
				if sparse {
					g = sparseSweepTestGP(t, shape.ctxDims, len(shape.counts), 37, 211)
				} else {
					g = sweepTestGP(t, func(ls []float64) Kernel { return NewMatern32(ls) },
						shape.ctxDims, len(shape.counts), 37, 0, 211)
				}
				levels := sweepLevels(shape.counts)
				p, err := NewSweepPlan(g, shape.ctxDims, levels)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(13))
				ctx := make([]float64, shape.ctxDims)
				for j := range ctx {
					ctx[j] = rng.Float64()
				}
				size := p.GridSize()
				refMu := make([]float64, size)
				refSigma := make([]float64, size)
				p.Sweep(ctx, refMu, refSigma, 1)

				subsets := [][]int32{
					{},                                    // empty subset is a no-op
					{0},                                   // single candidate
					{int32(size - 1), 0, int32(size / 2)}, // unsorted
					{3, 3, 3, int32(size - 1), int32(size - 1), 17}, // duplicates
				}
				// A random scattered subset larger than one tile, so the
				// parallel path actually shards it.
				big := make([]int32, 0, 300)
				for len(big) < cap(big) {
					big = append(big, int32(rng.Intn(size)))
				}
				subsets = append(subsets, big)

				for si, idxs := range subsets {
					for _, workers := range []int{1, 0, 2, 3, 8} {
						mu := make([]float64, len(idxs))
						sigma := make([]float64, len(idxs))
						p.SweepSubset(ctx, idxs, mu, sigma, workers)
						for j, gi := range idxs {
							if !bitsEqual(mu[j], refMu[gi]) || !bitsEqual(sigma[j], refSigma[gi]) {
								t.Fatalf("subset %d workers=%d slot %d (grid %d): subset (%x, %x), sweep (%x, %x)",
									si, workers, j, gi, mu[j], sigma[j], refMu[gi], refSigma[gi])
							}
						}
					}
				}
			})
		}
	}
}

// TestSweepSubsetEmptyGP covers the prior-only path: with no
// observations, the subset posterior is the prior at every index.
func TestSweepSubsetEmptyGP(t *testing.T) {
	g := New(NewMatern32([]float64{1, 1, 1}), 1e-3, 0)
	levels := sweepLevels([]int{3, 4})
	p, err := NewSweepPlan(g, 1, levels)
	if err != nil {
		t.Fatal(err)
	}
	idxs := []int32{5, 0, 11}
	mu := make([]float64, len(idxs))
	sigma := make([]float64, len(idxs))
	p.SweepSubset([]float64{0.4}, idxs, mu, sigma, 2)
	for j := range idxs {
		if !bitsEqual(mu[j], 0) {
			t.Fatalf("slot %d: prior mean %v, want 0", j, mu[j])
		}
		if !bitsEqual(sigma[j], 1) {
			t.Fatalf("slot %d: prior sigma %v, want 1", j, sigma[j])
		}
	}
}
