package gp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/telemetry"
)

// Hyperparams bundles the tunables of a GP model: per-dimension length
// scales and the observation-noise variance ζ². The paper (§5 "Kernel
// selection") fits these by maximizing the likelihood of prior data and then
// freezes them for the online run.
type Hyperparams struct {
	LengthScales []float64
	NoiseVar     float64
}

// KernelFactory builds a kernel from fitted length scales, letting the
// hyperparameter search be reused across kernel families.
type KernelFactory func(lengthScales []float64) Kernel

// Matern32Factory builds Matérn-3/2 kernels (the paper's choice).
func Matern32Factory(ls []float64) Kernel { return NewMatern32(ls) }

// Matern52Factory builds Matérn-5/2 kernels.
func Matern52Factory(ls []float64) Kernel { return NewMatern52(ls) }

// RBFFactory builds squared-exponential kernels.
func RBFFactory(ls []float64) Kernel { return NewRBF(ls) }

// FitOptions controls the random-search hyperparameter fit.
type FitOptions struct {
	// Iterations is the number of random candidates evaluated.
	Iterations int
	// LengthScaleMin/Max bound the log-uniform length-scale search.
	LengthScaleMin, LengthScaleMax float64
	// NoiseVarMin/Max bound the log-uniform noise search.
	NoiseVarMin, NoiseVarMax float64
	// Rand supplies randomness; required.
	Rand *rand.Rand
	// Telemetry optionally counts candidate evidence evaluations
	// (edgebol_gp_hyper_evals_total / edgebol_gp_hyper_failures_total);
	// nil disables.
	Telemetry *telemetry.Registry
}

// DefaultFitOptions returns bounds suited to inputs normalized to [0,1].
func DefaultFitOptions(rng *rand.Rand) FitOptions {
	return FitOptions{
		Iterations:     60,
		LengthScaleMin: 0.05,
		LengthScaleMax: 3.0,
		NoiseVarMin:    1e-6,
		NoiseVarMax:    1e-1,
		Rand:           rng,
	}
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if lo <= 0 || hi <= 0 {
		panic(fmt.Sprintf("gp: log-uniform bounds must be positive, got [%g, %g]", lo, hi))
	}
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Fit searches hyperparameters maximizing the log marginal likelihood of
// the prior dataset (xs, ys) via random search. It returns the best
// hyperparameters found and their likelihood.
//
// Random search is deliberate: the likelihood surface over a handful of
// length scales is cheap to probe, derivative-free search is robust to its
// multi-modality, and the paper freezes hyperparameters after this offline
// phase anyway.
func Fit(factory KernelFactory, xs [][]float64, ys []float64, opts FitOptions) (Hyperparams, float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Hyperparams{}, 0, fmt.Errorf("gp: Fit needs matching non-empty data, got %d inputs and %d targets", len(xs), len(ys))
	}
	if opts.Rand == nil {
		return Hyperparams{}, 0, fmt.Errorf("gp: FitOptions.Rand is required")
	}
	if opts.Iterations <= 0 {
		return Hyperparams{}, 0, fmt.Errorf("gp: FitOptions.Iterations must be positive")
	}
	dim := len(xs[0])
	best := Hyperparams{}
	bestLL := math.Inf(-1)
	evals := opts.Telemetry.Counter("edgebol_gp_hyper_evals_total")
	failures := opts.Telemetry.Counter("edgebol_gp_hyper_failures_total")
	for it := 0; it < opts.Iterations; it++ {
		ls := make([]float64, dim)
		for d := range ls {
			ls[d] = logUniform(opts.Rand, opts.LengthScaleMin, opts.LengthScaleMax)
		}
		noise := logUniform(opts.Rand, opts.NoiseVarMin, opts.NoiseVarMax)
		evals.Inc()
		ll, err := evidence(factory(ls), noise, xs, ys)
		if err != nil {
			failures.Inc()
			continue
		}
		if ll > bestLL {
			bestLL = ll
			best = Hyperparams{LengthScales: ls, NoiseVar: noise}
		}
	}
	if math.IsInf(bestLL, -1) {
		return Hyperparams{}, 0, fmt.Errorf("gp: hyperparameter search failed for all %d candidates", opts.Iterations)
	}
	return best, bestLL, nil
}

// evidence computes the log marginal likelihood of (xs, ys) under the given
// kernel and noise by fitting a throwaway GP in one batch factorization —
// the Gram-matrix build is shared with the GP's own eviction rebuild.
func evidence(k Kernel, noiseVar float64, xs [][]float64, ys []float64) (float64, error) {
	g, err := NewFromData(k, noiseVar, 0, xs, ys)
	if err != nil {
		return 0, err
	}
	return g.LogMarginalLikelihood(), nil
}
