package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Kernel names used by State to identify the package kernels; foreign
// kernels are identified by their Go type via KernelName.
const (
	KernelMatern32 = "matern32"
	KernelMatern52 = "matern52"
	KernelRBF      = "rbf"
)

// KernelName returns a stable identifier for a kernel: a short name for
// the package kernels, the Go type otherwise. Checkpoint restore compares
// names to catch a GP being restored under a different covariance model.
func KernelName(k Kernel) string {
	switch k.(type) {
	case *Matern32:
		return KernelMatern32
	case *Matern52:
		return KernelMatern52
	case *RBF:
		return KernelRBF
	default:
		return fmt.Sprintf("%T", k)
	}
}

// kernelLengthScales returns the length-scale vector of a package kernel,
// or nil for foreign kernels (whose hyperparameters this package cannot
// inspect).
func kernelLengthScales(k Kernel) []float64 {
	switch k := k.(type) {
	case *Matern32:
		return k.LengthScales
	case *Matern52:
		return k.LengthScales
	case *RBF:
		return k.LengthScales
	default:
		return nil
	}
}

// State is a complete, self-contained snapshot of a GP's learned state:
// the flat training storage, the packed Cholesky factor exactly as the
// incremental append/evict history left it, and the hyperparameters the
// state was learned under. Restoring a State into a GP constructed with
// the same configuration reproduces every posterior bitwise.
//
// The factor is serialized rather than refactorized on restore because the
// incremental Append arithmetic is not bitwise-reproducible by a batch
// rebuild (the pivot accumulation orders differ); carrying the factor
// verbatim makes the round trip exact by construction and keeps restore at
// O(t²) (one alpha solve) instead of O(t³).
type State struct {
	// Kernel identifies the covariance model (KernelName).
	Kernel string
	// LengthScales are the kernel's per-dimension length scales; nil for
	// foreign kernels.
	LengthScales []float64
	// NoiseVar is the observation-noise variance ζ².
	NoiseVar float64
	// MaxObs is the sliding-window bound (0 = unlimited).
	MaxObs int
	// Dim is the input dimensionality.
	Dim int
	// Xs is the flat row-major training-input matrix, len(Ys)×Dim.
	Xs []float64
	// Ys are the training targets.
	Ys []float64
	// Factor is the packed lower-triangular Cholesky factor of K+ζ²I
	// (linalg.Cholesky.FactorData); nil when the GP holds no observations.
	Factor []float64
	// Jitter is the diagonal regularization recorded in the factor.
	Jitter float64
	// Evictions is the cumulative sliding-window eviction count; sweep
	// plans key their table rebuilds on it, so it must survive a restart.
	Evictions uint64

	// Engine identifies the inference engine the state was learned under:
	// "exact" or "sparse". Empty means "exact" (states written before the
	// sparse engine existed). A state restores only into a GP running the
	// same engine — the learned representations are not interchangeable.
	Engine string

	// Sparse-engine state; meaningful only when Engine == "sparse". The
	// two factors are serialized verbatim for the same reason Factor is:
	// the streaming rank-1/append arithmetic that produced them is not
	// reproducible by a batch refactorization, and α is a deterministic
	// solve against SigFactor and B, so carrying the factors makes the
	// round trip bitwise by construction.
	MaxInducing int
	InsertTol   float64
	SwapMargin  float64
	Zs          []float64 // flat row-major inducing inputs, m×Dim
	Kmm         []float64 // K_mm, compact row-major m×m
	A           []float64 // moment matrix, compact row-major m×m
	B           []float64 // information vector, length m
	SumYY       float64
	KmmFactor   []float64
	KmmJitter   float64
	SigFactor   []float64
	SigJitter   float64
	Inserts     uint64
	Swaps       uint64
	// SinceRefactor preserves the periodic Σ-rebuild cadence across a
	// restart, so a resumed run streams updates exactly like an
	// uninterrupted one.
	SinceRefactor int
}

// Snapshot captures the GP's learned state. Like the read paths it touches
// no mutable state beyond copying, but it must not run concurrently with
// Add (the single-writer contract in the type comment).
func (g *GP) Snapshot() State {
	s := State{
		Kernel:       KernelName(g.kernel),
		LengthScales: append([]float64(nil), kernelLengthScales(g.kernel)...),
		NoiseVar:     g.noiseVar,
		MaxObs:       g.maxObs,
		Dim:          g.dim,
		Xs:           append([]float64(nil), g.xs...),
		Ys:           append([]float64(nil), g.ys...),
		Evictions:    g.evictions,
		Engine:       g.EngineName(),
	}
	if g.chol != nil {
		s.Factor = g.chol.FactorData()
		s.Jitter = g.chol.Jitter()
	}
	if sp := g.sp; sp != nil {
		m := sp.m
		stride := sp.cfg.MaxInducing
		s.MaxInducing = sp.cfg.MaxInducing
		s.InsertTol = sp.cfg.InsertTol
		s.SwapMargin = sp.cfg.SwapMargin
		s.Zs = append([]float64(nil), sp.zs...)
		s.Kmm = make([]float64, 0, m*m)
		s.A = make([]float64, 0, m*m)
		for i := 0; i < m; i++ {
			s.Kmm = append(s.Kmm, sp.kmm[i*stride:i*stride+m]...)
			s.A = append(s.A, sp.a[i*stride:i*stride+m]...)
		}
		s.B = append([]float64(nil), sp.b[:m]...)
		s.SumYY = sp.sumYY
		if sp.cholKmm != nil {
			s.KmmFactor = sp.cholKmm.FactorData()
			s.KmmJitter = sp.cholKmm.Jitter()
			s.SigFactor = sp.cholSig.FactorData()
			s.SigJitter = sp.cholSig.Jitter()
		}
		s.Inserts = sp.inserts
		s.Swaps = sp.swaps
		s.SinceRefactor = sp.sinceRefactor
	}
	return s
}

// RestoreFrom replaces the GP's learned state with a snapshot. The
// receiver must have been constructed (New) with the same configuration
// the snapshot was taken under — kernel family and hyperparameters, noise
// variance, observation bound — and RestoreFrom verifies as much of that
// as it can see, bitwise, so a checkpoint cannot silently graft one
// model's data onto another's covariance. Telemetry handles are untouched;
// counters are process-local and restart from zero by design.
//
// After a successful restore every posterior, batch sweep, and
// log-marginal-likelihood is bitwise identical to the snapshotted GP's.
// On any validation failure the GP is left unchanged.
func (g *GP) RestoreFrom(s State) error {
	if s.Kernel != KernelName(g.kernel) {
		return fmt.Errorf("gp: restore kernel %q into %q", s.Kernel, KernelName(g.kernel))
	}
	if ls := kernelLengthScales(g.kernel); ls != nil {
		if len(s.LengthScales) != len(ls) {
			return fmt.Errorf("gp: restore %d length scales into kernel with %d", len(s.LengthScales), len(ls))
		}
		for i, l := range ls {
			if s.LengthScales[i] != l { //edgebol:allow floateq -- restore demands the exact hyperparameters the snapshot was trained with
				return fmt.Errorf("gp: restore length scale %d: %v does not match kernel's %v", i, s.LengthScales[i], l)
			}
		}
	}
	if s.NoiseVar != g.noiseVar { //edgebol:allow floateq -- restore demands the exact hyperparameters the snapshot was trained with
		return fmt.Errorf("gp: restore noise variance %v into %v", s.NoiseVar, g.noiseVar)
	}
	if s.MaxObs != g.maxObs {
		return fmt.Errorf("gp: restore observation bound %d into %d", s.MaxObs, g.maxObs)
	}
	if s.Dim != g.dim {
		return fmt.Errorf("gp: restore dimension %d into %d", s.Dim, g.dim)
	}
	engine := s.Engine
	if engine == "" {
		// States serialized before the sparse engine existed carry no
		// engine tag; they are exact by construction.
		engine = "exact"
	}
	if engine != g.EngineName() {
		return fmt.Errorf("gp: restore %s-engine snapshot into %s engine", engine, g.EngineName())
	}
	n := len(s.Ys)
	// The sliding window does not apply in sparse mode (eviction is a
	// no-op there), so an arbitrarily long retained history is legal.
	if g.sp == nil && g.maxObs > 0 && n > g.maxObs {
		return fmt.Errorf("gp: restore %d observations over the bound %d", n, g.maxObs)
	}
	if len(s.Xs) != n*g.dim {
		return fmt.Errorf("gp: restore %d input values for %d observations of dimension %d", len(s.Xs), n, g.dim)
	}
	for _, v := range s.Xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("gp: non-finite restored input %v", v)
		}
	}
	for _, v := range s.Ys {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("gp: non-finite restored observation %v", v)
		}
	}
	if g.sp != nil {
		return g.restoreSparse(s, n)
	}
	if n == 0 {
		if len(s.Factor) != 0 {
			return fmt.Errorf("gp: restore factor of %d entries with no observations", len(s.Factor))
		}
		g.xs, g.ys, g.chol, g.alpha = nil, nil, nil, nil
		g.evictions = s.Evictions
		return nil
	}
	chol, err := linalg.NewCholeskyFromFactor(n, s.Factor, s.Jitter)
	if err != nil {
		return fmt.Errorf("gp: restore factor: %w", err)
	}
	g.xs = append([]float64(nil), s.Xs...)
	g.ys = append([]float64(nil), s.Ys...)
	g.chol = chol
	g.alpha = nil
	g.refreshAlpha()
	g.evictions = s.Evictions
	return nil
}

// restoreSparse rebuilds the inducing-point state from a sparse snapshot.
// Like the exact path it validates everything before mutating, carries
// both factors verbatim, and recomputes α with the same deterministic
// solve the streaming path uses — so a restored sparse GP reproduces
// every posterior bitwise. Called by RestoreFrom after the shared
// validation; g.sp is non-nil.
func (g *GP) restoreSparse(s State, n int) error {
	cfg := g.sp.cfg
	if s.MaxInducing != cfg.MaxInducing {
		return fmt.Errorf("gp: restore inducing budget %d into %d", s.MaxInducing, cfg.MaxInducing)
	}
	if s.InsertTol != cfg.InsertTol { //edgebol:allow floateq -- restore demands the exact engine configuration the snapshot ran under
		return fmt.Errorf("gp: restore insert tolerance %v into %v", s.InsertTol, cfg.InsertTol)
	}
	if s.SwapMargin != cfg.SwapMargin { //edgebol:allow floateq -- restore demands the exact engine configuration the snapshot ran under
		return fmt.Errorf("gp: restore swap margin %v into %v", s.SwapMargin, cfg.SwapMargin)
	}
	m := len(s.B)
	if m > cfg.MaxInducing {
		return fmt.Errorf("gp: restore %d inducing points over the budget %d", m, cfg.MaxInducing)
	}
	if m == 0 && n > 0 {
		return fmt.Errorf("gp: restore %d observations with an empty inducing set", n)
	}
	if len(s.Zs) != m*g.dim {
		return fmt.Errorf("gp: restore %d inducing values for %d points of dimension %d", len(s.Zs), m, g.dim)
	}
	if len(s.Kmm) != m*m || len(s.A) != m*m {
		return fmt.Errorf("gp: restore moment blocks of %d, %d values for %d inducing points", len(s.Kmm), len(s.A), m)
	}
	for _, block := range [][]float64{s.Zs, s.Kmm, s.A, s.B} {
		for _, v := range block {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("gp: non-finite restored sparse value %v", v)
			}
		}
	}
	if math.IsNaN(s.SumYY) || math.IsInf(s.SumYY, 0) || s.SumYY < 0 {
		return fmt.Errorf("gp: invalid restored moment Σy² = %v", s.SumYY)
	}
	sp := newSparseState(cfg, g.dim)
	if m > 0 {
		cholKmm, err := linalg.NewCholeskyFromFactor(m, s.KmmFactor, s.KmmJitter)
		if err != nil {
			return fmt.Errorf("gp: restore inducing factor: %w", err)
		}
		cholSig, err := linalg.NewCholeskyFromFactor(m, s.SigFactor, s.SigJitter)
		if err != nil {
			return fmt.Errorf("gp: restore Σ factor: %w", err)
		}
		sp.cholKmm, sp.cholSig = cholKmm, cholSig
	} else if len(s.KmmFactor) != 0 || len(s.SigFactor) != 0 {
		return fmt.Errorf("gp: restore factors with no inducing points")
	}
	stride := cfg.MaxInducing
	sp.zs = append(sp.zs, s.Zs...)
	sp.m = m
	for i := 0; i < m; i++ {
		copy(sp.kmm[i*stride:i*stride+m], s.Kmm[i*m:(i+1)*m])
		copy(sp.a[i*stride:i*stride+m], s.A[i*m:(i+1)*m])
	}
	copy(sp.b, s.B)
	sp.sumYY = s.SumYY
	sp.inserts = s.Inserts
	sp.swaps = s.Swaps
	sp.sinceRefactor = s.SinceRefactor
	if m > 0 {
		sp.refreshAlpha(g.noiseVar)
	}
	g.xs = append([]float64(nil), s.Xs...)
	g.ys = append([]float64(nil), s.Ys...)
	g.chol, g.alpha = nil, nil
	g.sp = sp
	g.evictions = s.Evictions
	g.met.inducing.Set(float64(m))
	return nil
}
