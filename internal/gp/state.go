package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Kernel names used by State to identify the package kernels; foreign
// kernels are identified by their Go type via KernelName.
const (
	KernelMatern32 = "matern32"
	KernelMatern52 = "matern52"
	KernelRBF      = "rbf"
)

// KernelName returns a stable identifier for a kernel: a short name for
// the package kernels, the Go type otherwise. Checkpoint restore compares
// names to catch a GP being restored under a different covariance model.
func KernelName(k Kernel) string {
	switch k.(type) {
	case *Matern32:
		return KernelMatern32
	case *Matern52:
		return KernelMatern52
	case *RBF:
		return KernelRBF
	default:
		return fmt.Sprintf("%T", k)
	}
}

// kernelLengthScales returns the length-scale vector of a package kernel,
// or nil for foreign kernels (whose hyperparameters this package cannot
// inspect).
func kernelLengthScales(k Kernel) []float64 {
	switch k := k.(type) {
	case *Matern32:
		return k.LengthScales
	case *Matern52:
		return k.LengthScales
	case *RBF:
		return k.LengthScales
	default:
		return nil
	}
}

// State is a complete, self-contained snapshot of a GP's learned state:
// the flat training storage, the packed Cholesky factor exactly as the
// incremental append/evict history left it, and the hyperparameters the
// state was learned under. Restoring a State into a GP constructed with
// the same configuration reproduces every posterior bitwise.
//
// The factor is serialized rather than refactorized on restore because the
// incremental Append arithmetic is not bitwise-reproducible by a batch
// rebuild (the pivot accumulation orders differ); carrying the factor
// verbatim makes the round trip exact by construction and keeps restore at
// O(t²) (one alpha solve) instead of O(t³).
type State struct {
	// Kernel identifies the covariance model (KernelName).
	Kernel string
	// LengthScales are the kernel's per-dimension length scales; nil for
	// foreign kernels.
	LengthScales []float64
	// NoiseVar is the observation-noise variance ζ².
	NoiseVar float64
	// MaxObs is the sliding-window bound (0 = unlimited).
	MaxObs int
	// Dim is the input dimensionality.
	Dim int
	// Xs is the flat row-major training-input matrix, len(Ys)×Dim.
	Xs []float64
	// Ys are the training targets.
	Ys []float64
	// Factor is the packed lower-triangular Cholesky factor of K+ζ²I
	// (linalg.Cholesky.FactorData); nil when the GP holds no observations.
	Factor []float64
	// Jitter is the diagonal regularization recorded in the factor.
	Jitter float64
	// Evictions is the cumulative sliding-window eviction count; sweep
	// plans key their table rebuilds on it, so it must survive a restart.
	Evictions uint64
}

// Snapshot captures the GP's learned state. Like the read paths it touches
// no mutable state beyond copying, but it must not run concurrently with
// Add (the single-writer contract in the type comment).
func (g *GP) Snapshot() State {
	s := State{
		Kernel:       KernelName(g.kernel),
		LengthScales: append([]float64(nil), kernelLengthScales(g.kernel)...),
		NoiseVar:     g.noiseVar,
		MaxObs:       g.maxObs,
		Dim:          g.dim,
		Xs:           append([]float64(nil), g.xs...),
		Ys:           append([]float64(nil), g.ys...),
		Evictions:    g.evictions,
	}
	if g.chol != nil {
		s.Factor = g.chol.FactorData()
		s.Jitter = g.chol.Jitter()
	}
	return s
}

// RestoreFrom replaces the GP's learned state with a snapshot. The
// receiver must have been constructed (New) with the same configuration
// the snapshot was taken under — kernel family and hyperparameters, noise
// variance, observation bound — and RestoreFrom verifies as much of that
// as it can see, bitwise, so a checkpoint cannot silently graft one
// model's data onto another's covariance. Telemetry handles are untouched;
// counters are process-local and restart from zero by design.
//
// After a successful restore every posterior, batch sweep, and
// log-marginal-likelihood is bitwise identical to the snapshotted GP's.
// On any validation failure the GP is left unchanged.
func (g *GP) RestoreFrom(s State) error {
	if s.Kernel != KernelName(g.kernel) {
		return fmt.Errorf("gp: restore kernel %q into %q", s.Kernel, KernelName(g.kernel))
	}
	if ls := kernelLengthScales(g.kernel); ls != nil {
		if len(s.LengthScales) != len(ls) {
			return fmt.Errorf("gp: restore %d length scales into kernel with %d", len(s.LengthScales), len(ls))
		}
		for i, l := range ls {
			if s.LengthScales[i] != l { //edgebol:allow floateq -- restore demands the exact hyperparameters the snapshot was trained with
				return fmt.Errorf("gp: restore length scale %d: %v does not match kernel's %v", i, s.LengthScales[i], l)
			}
		}
	}
	if s.NoiseVar != g.noiseVar { //edgebol:allow floateq -- restore demands the exact hyperparameters the snapshot was trained with
		return fmt.Errorf("gp: restore noise variance %v into %v", s.NoiseVar, g.noiseVar)
	}
	if s.MaxObs != g.maxObs {
		return fmt.Errorf("gp: restore observation bound %d into %d", s.MaxObs, g.maxObs)
	}
	if s.Dim != g.dim {
		return fmt.Errorf("gp: restore dimension %d into %d", s.Dim, g.dim)
	}
	n := len(s.Ys)
	if g.maxObs > 0 && n > g.maxObs {
		return fmt.Errorf("gp: restore %d observations over the bound %d", n, g.maxObs)
	}
	if len(s.Xs) != n*g.dim {
		return fmt.Errorf("gp: restore %d input values for %d observations of dimension %d", len(s.Xs), n, g.dim)
	}
	for _, v := range s.Xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("gp: non-finite restored input %v", v)
		}
	}
	for _, v := range s.Ys {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("gp: non-finite restored observation %v", v)
		}
	}
	if n == 0 {
		if len(s.Factor) != 0 {
			return fmt.Errorf("gp: restore factor of %d entries with no observations", len(s.Factor))
		}
		g.xs, g.ys, g.chol, g.alpha = nil, nil, nil, nil
		g.evictions = s.Evictions
		return nil
	}
	chol, err := linalg.NewCholeskyFromFactor(n, s.Factor, s.Jitter)
	if err != nil {
		return fmt.Errorf("gp: restore factor: %w", err)
	}
	g.xs = append([]float64(nil), s.Xs...)
	g.ys = append([]float64(nil), s.Ys...)
	g.chol = chol
	g.alpha = nil
	g.refreshAlpha()
	g.evictions = s.Evictions
	return nil
}
