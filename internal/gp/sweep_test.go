package gp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// sweepLevels builds deterministic level values for a control grid with
// the given per-dimension level counts.
func sweepLevels(counts []int) [][]float64 {
	rng := rand.New(rand.NewSource(11))
	out := make([][]float64, len(counts))
	for d, c := range counts {
		lv := make([]float64, c)
		for l := range lv {
			lv[l] = float64(l)/float64(c) + 0.05*rng.Float64()
		}
		out[d] = lv
	}
	return out
}

// enumerateGrid builds the joint feature rows of the grid under a fixed
// context, last control dimension fastest — the order SweepPlan (and
// core.GridSpec.Enumerate) uses.
func enumerateGrid(ctx []float64, levels [][]float64) [][]float64 {
	rows := [][]float64{append([]float64(nil), ctx...)}
	for _, lv := range levels {
		next := make([][]float64, 0, len(rows)*len(lv))
		for _, r := range rows {
			for _, v := range lv {
				next = append(next, append(append([]float64(nil), r...), v))
			}
		}
		rows = next
	}
	return rows
}

// sweepTestGP builds a GP over ctxDims+ctrlDims features with n random
// observations (inputs need not lie on the grid).
func sweepTestGP(t *testing.T, kernel func([]float64) Kernel, ctxDims, ctrlDims, n, window int, seed int64) *GP {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dims := ctxDims + ctrlDims
	ls := make([]float64, dims)
	for i := range ls {
		ls[i] = 0.3 + rng.Float64()
	}
	g := New(kernel(ls), 2e-3, window)
	addSweepObs(t, g, n, rng)
	return g
}

func addSweepObs(t *testing.T, g *GP, n int, rng *rand.Rand) {
	t.Helper()
	for i := 0; i < n; i++ {
		x := make([]float64, g.dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		if err := g.Add(x, rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
}

// requireSweepMatches asserts that the plan's sweep reproduces the generic
// engine bitwise under every worker count.
func requireSweepMatches(t *testing.T, g *GP, p *SweepPlan, ctx []float64, levels [][]float64) {
	t.Helper()
	feats := enumerateGrid(ctx, levels)
	if len(feats) != p.GridSize() {
		t.Fatalf("enumerated %d rows, plan grid size %d", len(feats), p.GridSize())
	}
	refMu := make([]float64, len(feats))
	refSigma := make([]float64, len(feats))
	g.PosteriorBatch(feats, refMu, refSigma, BatchOptions{Workers: 1})
	for _, workers := range []int{1, 0, 2, 3, 8} {
		mu := make([]float64, len(feats))
		sigma := make([]float64, len(feats))
		p.Sweep(ctx, mu, sigma, workers)
		for i := range feats {
			if !bitsEqual(mu[i], refMu[i]) || !bitsEqual(sigma[i], refSigma[i]) {
				t.Fatalf("workers=%d grid point %d: plan (%x, %x), generic (%x, %x)",
					workers, i, mu[i], sigma[i], refMu[i], refSigma[i])
			}
		}
	}
}

// TestSweepPlanMatchesGeneric pins the tentpole contract: across kernels,
// grid shapes, observation appends, and sliding-window evictions, the
// plan's grid sweep is bitwise identical to the generic posterior path
// for every worker count.
func TestSweepPlanMatchesGeneric(t *testing.T) {
	kernels := []struct {
		name string
		make func([]float64) Kernel
	}{
		{"matern32", func(ls []float64) Kernel { return NewMatern32(ls) }},
		{"matern52", func(ls []float64) Kernel { return NewMatern52(ls) }},
		{"rbf", func(ls []float64) Kernel { return NewRBF(ls) }},
	}
	shapes := []struct {
		ctxDims int
		counts  []int
	}{
		{3, []int{5, 4, 3, 4}}, // EdgeBOL's 3+4 layout
		{2, []int{4, 3, 5}},    // odd chain split
		{0, []int{6, 7}},       // no context at all
		{1, []int{9}},          // single control dimension
	}
	for _, k := range kernels {
		for _, shape := range shapes {
			t.Run(fmt.Sprintf("%s/ctx=%d/dims=%d", k.name, shape.ctxDims, len(shape.counts)), func(t *testing.T) {
				const window = 48
				g := sweepTestGP(t, k.make, shape.ctxDims, len(shape.counts), 37, window, 101)
				levels := sweepLevels(shape.counts)
				p, err := NewSweepPlan(g, shape.ctxDims, levels)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(7))
				ctx := make([]float64, shape.ctxDims)
				for j := range ctx {
					ctx[j] = rng.Float64()
				}
				requireSweepMatches(t, g, p, ctx, levels)

				// Grow the window: the plan appends table rows.
				addSweepObs(t, g, 8, rng)
				for j := range ctx {
					ctx[j] = rng.Float64()
				}
				requireSweepMatches(t, g, p, ctx, levels)

				// Cross the sliding-window bound: eviction renumbers the
				// training rows and the plan must rebuild its tables.
				before := g.Evictions()
				addSweepObs(t, g, window, rng)
				if g.Evictions() == before {
					t.Fatal("expected an eviction")
				}
				requireSweepMatches(t, g, p, ctx, levels)
			})
		}
	}
}

// TestSweepPlanAcrossRefit mirrors a hyperparameter refit: a new kernel
// means a new GP and a new plan, which must again match the generic path.
func TestSweepPlanAcrossRefit(t *testing.T) {
	levels := sweepLevels([]int{4, 3, 4})
	ctx := []float64{0.3, 0.6, 0.1}
	for _, seed := range []int64{1, 2} {
		g := sweepTestGP(t, func(ls []float64) Kernel { return NewMatern32(ls) }, 3, 3, 25, 0, seed)
		p, err := NewSweepPlan(g, 3, levels)
		if err != nil {
			t.Fatal(err)
		}
		requireSweepMatches(t, g, p, ctx, levels)
	}
}

// TestSweepPlanEmptyGP sweeps before any observation: prior mean and
// variance everywhere, like the generic path.
func TestSweepPlanEmptyGP(t *testing.T) {
	g := New(NewMatern32([]float64{0.5, 0.5, 0.5}), 1e-3, 0)
	levels := sweepLevels([]int{3, 4})
	p, err := NewSweepPlan(g, 1, levels)
	if err != nil {
		t.Fatal(err)
	}
	requireSweepMatches(t, g, p, []float64{0.4}, levels)
}

// opaque wraps a kernel to defeat the plan's concrete-type dispatch.
type opaque struct{ Kernel }

// TestNewSweepPlanErrors covers the fallback-triggering constructor errors.
func TestNewSweepPlanErrors(t *testing.T) {
	g := New(NewMatern32([]float64{0.5, 0.5, 0.5}), 1e-3, 0)
	levels := sweepLevels([]int{3, 4})
	cases := []struct {
		name string
		call func() error
	}{
		{"nil gp", func() error { _, err := NewSweepPlan(nil, 1, levels); return err }},
		{"foreign kernel", func() error {
			w := New(&opaque{NewMatern32([]float64{0.5, 0.5, 0.5})}, 1e-3, 0)
			_, err := NewSweepPlan(w, 1, levels)
			return err
		}},
		{"negative ctx dims", func() error { _, err := NewSweepPlan(g, -1, levels); return err }},
		{"no control dims", func() error { _, err := NewSweepPlan(g, 3, nil); return err }},
		{"dim mismatch", func() error { _, err := NewSweepPlan(g, 2, levels); return err }},
		{"empty dimension", func() error { _, err := NewSweepPlan(g, 1, [][]float64{{0.1}, {}}); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.call() == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// TestSweepPlanTelemetry checks the build/refresh counters and row gauge
// across the plan lifecycle: construction, append, eviction rebuild.
func TestSweepPlanTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	const window = 16
	g := sweepTestGP(t, func(ls []float64) Kernel { return NewMatern32(ls) }, 1, 2, 10, window, 3)
	levels := sweepLevels([]int{3, 3})
	p, err := NewSweepPlan(g, 1, levels)
	if err != nil {
		t.Fatal(err)
	}
	p.Instrument(reg, "cost")
	builds := reg.Counter("edgebol_gp_sweep_plan_builds_total", "gp", "cost")
	refreshes := reg.Counter("edgebol_gp_sweep_plan_refreshes_total", "gp", "cost")
	rows := reg.Gauge("edgebol_gp_sweep_plan_rows", "gp", "cost")
	if rows.Value() != 10 { //edgebol:allow floateq -- gauge stores the exact integer
		t.Fatalf("row gauge %v after construction, want 10", rows.Value())
	}
	ctx := []float64{0.5}
	mu := make([]float64, p.GridSize())
	sigma := make([]float64, p.GridSize())
	rng := rand.New(rand.NewSource(5))

	addSweepObs(t, g, 2, rng)
	p.Sweep(ctx, mu, sigma, 1)
	if got := refreshes.Value(); got != 1 {
		t.Fatalf("refreshes %d after append, want 1", got)
	}
	if rows.Value() != 12 { //edgebol:allow floateq -- gauge stores the exact integer
		t.Fatalf("row gauge %v after append, want 12", rows.Value())
	}

	addSweepObs(t, g, window, rng) // crosses the bound: eviction
	if g.Evictions() == 0 {
		t.Fatal("expected an eviction")
	}
	p.Sweep(ctx, mu, sigma, 1)
	if got := builds.Value(); got != 1 {
		t.Fatalf("builds %d after eviction (construction-time build is uninstrumented), want 1", got)
	}
}

// TestResolveWorkers pins the auto-scaling policy: explicit counts are
// honored up to the shard cap, tiny sweeps stay serial, and large sweeps
// never exceed GOMAXPROCS.
func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(30, 100, 0); got != 1 {
		t.Fatalf("tiny sweep resolved to %d workers, want 1", got)
	}
	if got := ResolveWorkers(1000, 14641, 4); got != 4 {
		t.Fatalf("explicit request resolved to %d workers, want 4", got)
	}
	if got := ResolveWorkers(1000, 40, 64); got != 2 {
		t.Fatalf("shard cap resolved to %d workers, want 2", got)
	}
	if got := ResolveWorkers(0, 14641, 0); got != 1 {
		t.Fatalf("empty training set resolved to %d workers, want 1", got)
	}
	big := ResolveWorkers(100000, 100000, 0)
	if max := ResolveWorkers(100000, 100000, 1<<20); big > max {
		t.Fatalf("auto workers %d exceeded explicit cap %d", big, max)
	}
}
