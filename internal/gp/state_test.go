package gp

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// trainedGP builds a GP with n pseudo-random observations (and evictions,
// when maxObs is small enough to trigger them).
func trainedGP(t *testing.T, maxObs, n int) *GP {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 1e-2, maxObs)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Add(x, math.Sin(3*x[0])+0.1*rng.NormFloat64()); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	return g
}

func TestSnapshotRestoreBitwise(t *testing.T) {
	cases := []struct {
		name      string
		maxObs, n int
	}{
		{"unbounded", 0, 40},
		{"evicting", 16, 40}, // several sliding-window evictions
		{"empty", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := trainedGP(t, tc.maxObs, tc.n)
			snap := src.Snapshot()

			dst := New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 1e-2, tc.maxObs)
			if err := dst.RestoreFrom(snap); err != nil {
				t.Fatalf("RestoreFrom: %v", err)
			}
			if dst.Len() != src.Len() || dst.Evictions() != src.Evictions() {
				t.Fatalf("restored len=%d evictions=%d, want %d/%d", dst.Len(), dst.Evictions(), src.Len(), src.Evictions())
			}
			// Posteriors must agree bitwise at many query points.
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 50; i++ {
				x := []float64{rng.Float64() * 2, rng.Float64() * 2}
				m1, s1 := src.Posterior(x)
				m2, s2 := dst.Posterior(x)
				if m1 != m2 || s1 != s2 {
					t.Fatalf("posterior %d diverged: (%v,%v) vs (%v,%v)", i, m1, s1, m2, s2)
				}
			}
			if l1, l2 := src.LogMarginalLikelihood(), dst.LogMarginalLikelihood(); l1 != l2 {
				t.Fatalf("evidence diverged: %v vs %v", l1, l2)
			}
			// And the restored GP must keep learning identically: the next
			// Append sees the exact same factor.
			x := []float64{0.33, 0.44}
			if err := src.Add(x, 0.5); err != nil {
				t.Fatal(err)
			}
			if err := dst.Add(x, 0.5); err != nil {
				t.Fatal(err)
			}
			m1, s1 := src.Posterior(x)
			m2, s2 := dst.Posterior(x)
			if m1 != m2 || s1 != s2 {
				t.Fatalf("post-restore Add diverged: (%v,%v) vs (%v,%v)", m1, s1, m2, s2)
			}
		})
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	g := trainedGP(t, 0, 8)
	snap := g.Snapshot()
	m0, s0 := g.Posterior([]float64{0.5, 0.5})
	// Mutating the snapshot must not touch the live GP.
	for i := range snap.Xs {
		snap.Xs[i] = math.NaN()
	}
	for i := range snap.Factor {
		snap.Factor[i] = -1
	}
	if m, s := g.Posterior([]float64{0.5, 0.5}); m != m0 || s != s0 {
		t.Fatal("snapshot mutation leaked into the GP")
	}
}

func TestKernelName(t *testing.T) {
	cases := []struct {
		k    Kernel
		want string
	}{
		{&Matern32{LengthScales: []float64{1}}, KernelMatern32},
		{&Matern52{LengthScales: []float64{1}}, KernelMatern52},
		{&RBF{LengthScales: []float64{1}}, KernelRBF},
	}
	for _, tc := range cases {
		if got := KernelName(tc.k); got != tc.want {
			t.Errorf("KernelName(%T) = %q, want %q", tc.k, got, tc.want)
		}
	}
}

func TestRestoreFromRejectsMismatches(t *testing.T) {
	src := trainedGP(t, 0, 10)
	base := src.Snapshot()

	mutate := func(f func(*State)) State {
		s := src.Snapshot()
		f(&s)
		return s
	}
	cases := []struct {
		name string
		dst  *GP
		s    State
		want string
	}{
		{"kernel family", New(&RBF{LengthScales: []float64{0.8, 1.2}}, 1e-2, 0), base, "kernel"},
		{"length scales", New(&Matern32{LengthScales: []float64{0.9, 1.2}}, 1e-2, 0), base, "length scale"},
		{"noise", New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 2e-2, 0), base, "noise"},
		{"bound", New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 1e-2, 64), base, "observation bound"},
		{"xs length", newLike(), mutate(func(s *State) { s.Xs = s.Xs[:len(s.Xs)-1] }), "input values"},
		{"nan xs", newLike(), mutate(func(s *State) { s.Xs[0] = math.NaN() }), "non-finite"},
		{"inf ys", newLike(), mutate(func(s *State) { s.Ys[0] = math.Inf(1) }), "non-finite"},
		{"factor length", newLike(), mutate(func(s *State) { s.Factor = s.Factor[:3] }), "factor"},
		{"factor diag", newLike(), mutate(func(s *State) { s.Factor[0] = -1 }), "factor"},
		{"over bound", New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 1e-2, 4), mutate(func(s *State) { s.MaxObs = 4 }), "over the bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.dst.RestoreFrom(tc.s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
			// The failed restore must leave the GP untouched (still empty).
			if tc.dst.Len() != 0 {
				t.Fatalf("failed restore mutated the GP to %d observations", tc.dst.Len())
			}
		})
	}
}

func newLike() *GP {
	return New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 1e-2, 0)
}

func TestRestoreEmptyStateClearsGP(t *testing.T) {
	g := trainedGP(t, 0, 5)
	empty := New(&Matern32{LengthScales: []float64{0.8, 1.2}}, 1e-2, 0)
	if err := g.RestoreFrom(empty.Snapshot()); err != nil {
		t.Fatalf("RestoreFrom(empty): %v", err)
	}
	if g.Len() != 0 {
		t.Fatalf("Len = %d after empty restore", g.Len())
	}
	if m, s := g.Posterior([]float64{0, 0}); m != 0 || s != 1 {
		t.Fatalf("prior posterior = (%v,%v)", m, s)
	}
}
