package gp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// engineGP builds a seeded 2-D test GP with n observations and the given
// sliding-window bound.
func engineGP(t *testing.T, n, window int) *GP {
	t.Helper()
	g := New(NewMatern32([]float64{0.4, 0.8}), 1e-3, window)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := g.Add(x, math.Sin(3*x[0])+0.5*x[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func engineCandidates(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{rng.Float64() * 1.2, rng.Float64() * 1.2}
	}
	return out
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestPosteriorBatchWorkersBitwiseIdentical pins the engine's central
// determinism contract: the posterior over a candidate set is bitwise
// independent of the worker count, across edge cases from empty candidate
// sets to post-eviction states.
func TestPosteriorBatchWorkersBitwiseIdentical(t *testing.T) {
	cases := []struct {
		name       string
		obs        int
		window     int
		candidates int
	}{
		{name: "empty candidates", obs: 12, window: 0, candidates: 0},
		{name: "no observations", obs: 0, window: 0, candidates: 17},
		{name: "single observation", obs: 1, window: 0, candidates: 33},
		{name: "post-eviction", obs: 20, window: 8, candidates: 41},
		{name: "many observations", obs: 60, window: 0, candidates: 101},
		{name: "fewer candidates than a block", obs: 10, window: 0, candidates: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := engineGP(t, tc.obs, tc.window)
			cands := engineCandidates(tc.candidates)
			ref := struct{ mu, sigma []float64 }{
				make([]float64, len(cands)), make([]float64, len(cands)),
			}
			g.PosteriorBatch(cands, ref.mu, ref.sigma, BatchOptions{Workers: 1})
			for _, workers := range []int{0, 2, 3, 8} {
				mu := make([]float64, len(cands))
				sigma := make([]float64, len(cands))
				g.PosteriorBatch(cands, mu, sigma, BatchOptions{Workers: workers})
				for i := range cands {
					if !bitsEqual(mu[i], ref.mu[i]) || !bitsEqual(sigma[i], ref.sigma[i]) {
						t.Fatalf("workers=%d diverges at %d: (%v,%v) vs serial (%v,%v)",
							workers, i, mu[i], sigma[i], ref.mu[i], ref.sigma[i])
					}
				}
			}
		})
	}
}

// TestConcurrentPosteriorReads exercises the read path from many goroutines
// at once — the data-race check (run under -race in CI) that the posterior
// sweep holds no shared mutable state, and a correctness check that
// concurrent callers see the same answers as a serial one.
func TestConcurrentPosteriorReads(t *testing.T) {
	g := engineGP(t, 30, 0)
	cands := engineCandidates(64)
	refMu := make([]float64, len(cands))
	refSigma := make([]float64, len(cands))
	g.PosteriorBatch(cands, refMu, refSigma, BatchOptions{Workers: 1})

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				mu := make([]float64, len(cands))
				sigma := make([]float64, len(cands))
				g.PosteriorBatch(cands, mu, sigma, BatchOptions{Workers: 1 + w%3})
				for i := range cands {
					if !bitsEqual(mu[i], refMu[i]) || !bitsEqual(sigma[i], refSigma[i]) {
						errs <- "concurrent batch read diverged from serial reference"
						return
					}
				}
			} else {
				for i, c := range cands {
					mu, sigma := g.Posterior(c)
					if !bitsEqual(mu, refMu[i]) || !bitsEqual(sigma, refSigma[i]) {
						errs <- "concurrent single read diverged from serial reference"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestEvictionRebuildMatchesBatchFit verifies that the post-eviction
// factor downdate (Cholesky.DropLeading) agrees with a from-scratch batch
// factorization (NewFromData) of the survivors. The downdate reaches the
// survivors' factor by rotations instead of refactorizing their Gram
// matrix, so agreement is to rounding tolerance — a few ulps — rather
// than bitwise; a real defect in the downdate shows up orders of
// magnitude above the 1e-12 gate.
func TestEvictionRebuildMatchesBatchFit(t *testing.T) {
	const window = 8
	w := New(NewMatern32([]float64{0.4, 0.8}), 1e-3, window)
	rng := rand.New(rand.NewSource(42))
	var xs [][]float64
	var ys []float64
	for i := 0; i < window+1; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := math.Sin(3*x[0]) + 0.5*x[1]
		xs = append(xs, x)
		ys = append(ys, y)
		if err := w.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	// The final Add hit the bound: the oldest half was dropped and the
	// factor rebuilt on the survivors before the new point was appended.
	if want := window/2 + 1; w.Len() != want {
		t.Fatalf("retained %d observations, want %d", w.Len(), want)
	}
	fresh, err := NewFromData(w.Kernel(), w.NoiseVar(), 0, xs[window/2:window], ys[window/2:window])
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Add(xs[window], ys[window]); err != nil {
		t.Fatal(err)
	}
	const tol = 1e-12
	if lw, lf := w.LogMarginalLikelihood(), fresh.LogMarginalLikelihood(); math.Abs(lw-lf) > tol {
		t.Fatalf("evidence diverges: windowed %v vs batch %v", lw, lf)
	}
	for _, c := range engineCandidates(25) {
		mw, sw := w.Posterior(c)
		mf, sf := fresh.Posterior(c)
		if math.Abs(mw-mf) > tol || math.Abs(sw-sf) > tol {
			t.Fatalf("posteriors diverge at %v: windowed (%v,%v) vs batch (%v,%v)", c, mw, sw, mf, sf)
		}
	}
}

// TestEvalBatchAgreesWithEval checks the bulk kernel path against the
// scalar one for every kernel family, including a padded-stride matrix.
// The batch path multiplies by reciprocal length scales where Eval
// divides, so agreement is to rounding tolerance, not bitwise.
func TestEvalBatchAgreesWithEval(t *testing.T) {
	ls := []float64{0.4, 0.8, 1.3}
	kernels := map[string]Kernel{
		"matern32": NewMatern32(ls),
		"matern52": NewMatern52(ls),
		"rbf":      NewRBF(ls),
	}
	rng := rand.New(rand.NewSource(9))
	const rows = 37
	for name, k := range kernels {
		t.Run(name, func(t *testing.T) {
			for _, stride := range []int{3, 5} {
				xs := make([]float64, rows*stride)
				for i := range xs {
					xs[i] = rng.Float64() * 2
				}
				z := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
				out := make([]float64, rows)
				k.EvalBatch(xs, stride, z, out)
				for i := 0; i < rows; i++ {
					want := k.Eval(xs[i*stride:i*stride+3], z)
					if math.Abs(out[i]-want) > 1e-12 {
						t.Fatalf("stride %d row %d: EvalBatch %v vs Eval %v", stride, i, out[i], want)
					}
				}
			}
		})
	}
}

func TestEvalBatchValidation(t *testing.T) {
	k := NewMatern32([]float64{0.5, 0.5})
	expectPanic := func(name string, fn func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
	expectPanic("wrong query dimension", func() {
		k.EvalBatch(make([]float64, 8), 2, []float64{0}, make([]float64, 4))
	})
	expectPanic("stride below dimension", func() {
		k.EvalBatch(make([]float64, 8), 1, []float64{0, 0}, make([]float64, 4))
	})
	expectPanic("matrix too short", func() {
		k.EvalBatch(make([]float64, 6), 2, []float64{0, 0}, make([]float64, 4))
	})
}
