package testbed

import "repro/internal/ran"

// HeterogeneousUsers returns the §6.4 multi-user population: the first user
// enjoys the best channel (30 dB mean SNR) and every additional user a
// degraded one.
//
// The paper specifies "20 % lower SNR" per additional user. Interpreted on
// the linear power scale that is ≈1 dB per user, which leaves every user at
// CQI 15 and removes the channel heterogeneity the section studies; we use
// 2 dB steps instead, which spreads the population over CQI 13–15 while
// keeping the paper's own worst-case constraint set (dmax = 2 s,
// ρmin = 0.6) feasible with 6 users, as §6.4 requires.
func HeterogeneousUsers(n int) []ran.User {
	users := make([]ran.User, n)
	for i := range users {
		users[i] = ran.User{SNRdB: 30 - 2*float64(i)}
	}
	return users
}
