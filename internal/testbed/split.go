package testbed

// Split-inference model: Control.SplitLayer s ∈ [0,1] places the
// device/edge partition point of the detector DNN. At s = 0 the whole
// network runs on the edge and the UE uploads the encoded image — the
// paper's original workload. At s = 1 the whole network runs on the
// device and only the detections cross the air. In between, the device
// executes the prefix up to the split and uploads that layer's
// activations.
//
// Two normalized profiles describe the partition, both piecewise linear
// over the same breakpoints:
//
//   - splitActVals: uplink bits relative to the encoded image. The early
//     convolutional stages of a detector *inflate* the representation
//     (more channels than the 8-bit-compressed input), so the curve rises
//     above 1 before the downsampling stages shrink it; past the backbone
//     only compact feature maps, and finally the box/label payload,
//     remain.
//   - splitFlopsVals: fraction of the network's FLOPs executed on the
//     device. Early high-resolution stages are FLOPs-dense, so the curve
//     is steepest first.
//
// The endpoints are exact by construction — ActFrac(0) = 1 and
// FlopsFrac(0) = 0 bitwise — so a split-0 control reproduces the 4-D
// testbed's KPIs bit for bit: multiplying the image bits by 1.0 and the
// edge service time by (1 − 0.0), and adding a 0.0 device time, are
// identity operations in IEEE-754. That is what keeps every legacy test
// and recorded trace valid under the widened control space.
var (
	splitBreaks    = [...]float64{0, 0.15, 0.4, 0.7, 1}
	splitActVals   = [...]float64{1, 1.35, 0.6, 0.25, 0.05}
	splitFlopsVals = [...]float64{0, 0.25, 0.55, 0.8, 1}
)

// splitInterp linearly interpolates a profile over splitBreaks, returning
// the table values exactly at the breakpoints.
func splitInterp(s float64, vals *[len(splitBreaks)]float64) float64 {
	if s <= splitBreaks[0] {
		return vals[0]
	}
	for i := 1; i < len(splitBreaks); i++ {
		if s == splitBreaks[i] { //edgebol:allow floateq -- exact breakpoint hit returns the table value bitwise (the s = 0 identity contract)
			return vals[i]
		}
		if s < splitBreaks[i] {
			f := (s - splitBreaks[i-1]) / (splitBreaks[i] - splitBreaks[i-1])
			return vals[i-1] + f*(vals[i]-vals[i-1])
		}
	}
	return vals[len(vals)-1]
}

// splitActFrac returns the uplink payload of a split-s period relative to
// the encoded image (1 at s = 0, bitwise).
func splitActFrac(s float64) float64 { return splitInterp(s, &splitActVals) }

// splitFlopsFrac returns the fraction of the DNN's FLOPs executed on the
// device under split s (0 at s = 0, bitwise).
func splitFlopsFrac(s float64) float64 { return splitInterp(s, &splitFlopsVals) }
