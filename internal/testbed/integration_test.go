package testbed

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ran"
)

// oracleBest exhaustively searches the noise-free surface for the cheapest
// feasible control (the paper's offline oracle).
func oracleBest(t *testing.T, tb *Testbed, grid core.GridSpec, w core.CostWeights, cons core.Constraints) (core.Control, float64) {
	t.Helper()
	ctls, err := grid.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	best := core.Control{}
	bestCost := math.Inf(1)
	for _, x := range ctls {
		k, err := tb.Expected(x)
		if err != nil {
			t.Fatal(err)
		}
		if cons.Satisfied(k) && w.Cost(k) < bestCost {
			bestCost = w.Cost(k)
			best = x
		}
	}
	if math.IsInf(bestCost, 1) {
		t.Fatal("oracle found no feasible control")
	}
	return best, bestCost
}

// TestEdgeBOLConvergesOnTestbed reproduces the §6.2 convergence behaviour
// at reduced scale: a single 35 dB context, dmax = 0.4 s, ρmin = 0.5,
// δ₁ = δ₂ = 1. EdgeBOL must approach the oracle cost within a modest gap
// while keeping constraint violations rare after the burn-in.
func TestEdgeBOLConvergesOnTestbed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	tb, err := New(DefaultConfig(), []ran.User{{SNRdB: 35}}, 42)
	if err != nil {
		t.Fatal(err)
	}
	grid := core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1}
	w := core.CostWeights{Delta1: 1, Delta2: 1}
	cons := core.Constraints{MaxDelay: 0.4, MinMAP: 0.5}

	agent, err := core.NewAgent(core.Options{
		Grid:        grid,
		Weights:     w,
		Constraints: cons,
	})
	if err != nil {
		t.Fatal(err)
	}

	const periods = 80
	costs := make([]float64, 0, periods)
	var violationsLate int
	for tt := 0; tt < periods; tt++ {
		_, k, _, err := agent.Step(tb)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, w.Cost(k))
		if tt >= periods/2 && !cons.Satisfied(k) {
			// Tolerance band: observation noise can nudge a boundary
			// config slightly over the line, as in the paper's 0.98
			// satisfaction probability.
			if k.Delay > cons.MaxDelay*1.05 || k.MAP < cons.MinMAP-0.05 {
				violationsLate++
			}
		}
	}

	_, oracleCost := oracleBest(t, tb, grid, w, cons)
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	early := mean(costs[:10])
	late := mean(costs[periods-20:])
	t.Logf("early cost %.1f, late cost %.1f, oracle %.1f, late violations %d", early, late, oracleCost, violationsLate)
	if late >= early {
		t.Fatalf("no cost improvement: early %v late %v", early, late)
	}
	if late > oracleCost*1.25 {
		t.Fatalf("late cost %v more than 25%% above oracle %v", late, oracleCost)
	}
	if violationsLate > periods/10 {
		t.Fatalf("too many late constraint violations: %d", violationsLate)
	}
}
