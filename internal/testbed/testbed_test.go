package testbed

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ran"
)

func newTB(t *testing.T) *Testbed {
	t.Helper()
	tb, err := New(DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func maxCtl() core.Control {
	return core.Control{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1}
}

func expectKPI(t *testing.T, tb *Testbed, x core.Control) core.KPIs {
	t.Helper()
	k, err := tb.Expected(x)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, 1); err == nil {
		t.Fatal("expected error for no users")
	}
	bad := DefaultConfig()
	bad.LoadFactor = 0.5
	if _, err := New(bad, []ran.User{{SNRdB: 30}}, 1); err == nil {
		t.Fatal("expected error for LoadFactor < 1")
	}
	bad = DefaultConfig()
	bad.ImagesPerMeasurement = 0
	if _, err := New(bad, []ran.User{{SNRdB: 30}}, 1); err == nil {
		t.Fatal("expected error for zero measurement batch")
	}
}

func TestContextAggregation(t *testing.T) {
	tb, err := New(DefaultConfig(), []ran.User{{SNRdB: 35}, {SNRdB: 5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := tb.Context()
	if ctx.NumUsers != 2 {
		t.Fatalf("NumUsers = %d, want 2", ctx.NumUsers)
	}
	c1 := float64(ran.CQIFromSNR(35))
	c2 := float64(ran.CQIFromSNR(5))
	wantMean := (c1 + c2) / 2
	if math.Abs(ctx.MeanCQI-wantMean) > 1e-12 {
		t.Fatalf("MeanCQI = %v, want %v", ctx.MeanCQI, wantMean)
	}
	if ctx.VarCQI <= 0 {
		t.Fatal("heterogeneous users must have positive CQI variance")
	}

	tb.SetSNR(35)
	ctx = tb.Context()
	if ctx.NumUsers != 1 || ctx.VarCQI != 0 {
		t.Fatalf("single-user context wrong: %+v", ctx)
	}
}

func TestMeasureRejectsInvalidControl(t *testing.T) {
	tb := newTB(t)
	if _, err := tb.Measure(core.Control{}); err == nil {
		t.Fatal("expected error for zero control")
	}
}

// Fig. 1: higher resolution raises both delay and mAP.
func TestFig1Tradeoff(t *testing.T) {
	tb := newTB(t)
	var prevDelay, prevMAP float64
	for _, res := range []float64{0.25, 0.5, 0.75, 1.0} {
		k := expectKPI(t, tb, core.Control{Resolution: res, Airtime: 1, GPUSpeed: 1, MCS: 1})
		if k.Delay <= prevDelay {
			t.Fatalf("delay not increasing with resolution at %v", res)
		}
		if k.MAP <= prevMAP {
			t.Fatalf("mAP not increasing with resolution at %v", res)
		}
		prevDelay, prevMAP = k.Delay, k.MAP
	}
}

func TestFig1DelayEnvelope(t *testing.T) {
	tb := newTB(t)
	lo := expectKPI(t, tb, core.Control{Resolution: 0.25, Airtime: 1, GPUSpeed: 1, MCS: 1})
	hi := expectKPI(t, tb, maxCtl())
	if lo.Delay < 0.1 || lo.Delay > 0.4 {
		t.Fatalf("low-res delay %v s outside the Fig. 1 envelope", lo.Delay)
	}
	if hi.Delay < 0.3 || hi.Delay > 0.9 {
		t.Fatalf("high-res delay %v s outside the Fig. 1 envelope", hi.Delay)
	}
}

// Fig. 2: less airtime raises delay; more airtime raises server power
// (higher request rate loads the GPU).
func TestFig2AirtimeTradeoff(t *testing.T) {
	tb := newTB(t)
	low := expectKPI(t, tb, core.Control{Resolution: 0.75, Airtime: 0.2, GPUSpeed: 1, MCS: 1})
	high := expectKPI(t, tb, core.Control{Resolution: 0.75, Airtime: 1, GPUSpeed: 1, MCS: 1})
	if low.Delay <= high.Delay {
		t.Fatalf("less airtime should raise delay: %v vs %v", low.Delay, high.Delay)
	}
	if low.ServerPower >= high.ServerPower {
		t.Fatalf("less airtime should lower server power: %v vs %v", low.ServerPower, high.ServerPower)
	}
}

// Fig. 2/3: lower resolution raises server power (higher request rate).
func TestLowResRaisesServerPower(t *testing.T) {
	tb := newTB(t)
	low := expectKPI(t, tb, core.Control{Resolution: 0.25, Airtime: 1, GPUSpeed: 1, MCS: 1})
	high := expectKPI(t, tb, maxCtl())
	if low.ServerPower <= high.ServerPower {
		t.Fatalf("low-res should load the GPU more: %v vs %v W", low.ServerPower, high.ServerPower)
	}
}

// Fig. 3: throttling the GPU raises delay and lowers server power; GPU
// delay falls with resolution.
func TestFig3GPUSpeedTradeoff(t *testing.T) {
	tb := newTB(t)
	slow := expectKPI(t, tb, core.Control{Resolution: 0.75, Airtime: 1, GPUSpeed: 0.1, MCS: 1})
	fast := expectKPI(t, tb, core.Control{Resolution: 0.75, Airtime: 1, GPUSpeed: 1, MCS: 1})
	if slow.Delay <= fast.Delay {
		t.Fatalf("throttled GPU should raise delay: %v vs %v", slow.Delay, fast.Delay)
	}
	if slow.GPUDelay <= fast.GPUDelay {
		t.Fatalf("throttled GPU should raise GPU delay: %v vs %v", slow.GPUDelay, fast.GPUDelay)
	}
	lowRes := expectKPI(t, tb, core.Control{Resolution: 0.25, Airtime: 1, GPUSpeed: 1, MCS: 1})
	highRes := expectKPI(t, tb, maxCtl())
	if lowRes.GPUDelay <= highRes.GPUDelay {
		t.Fatalf("low-res images should take longer on the GPU (Fig. 3 bottom): %v vs %v", lowRes.GPUDelay, highRes.GPUDelay)
	}
}

// Fig. 4: higher mAP (higher resolution) coincides with lower server power.
func TestFig4MAPPowerRelation(t *testing.T) {
	tb := newTB(t)
	low := expectKPI(t, tb, core.Control{Resolution: 0.25, Airtime: 1, GPUSpeed: 1, MCS: 1})
	high := expectKPI(t, tb, maxCtl())
	if !(high.MAP > low.MAP && high.ServerPower < low.ServerPower) {
		t.Fatalf("Fig. 4 inversion missing: low-res (mAP %v, %v W) vs high-res (mAP %v, %v W)",
			low.MAP, low.ServerPower, high.MAP, high.ServerPower)
	}
}

// Fig. 5 (nominal load): higher MCS cap lowers BS power; more airtime and
// higher resolution raise it.
func TestFig5BSPowerShape(t *testing.T) {
	tb := newTB(t)
	ctl := func(res, air, mcs float64) core.Control {
		return core.Control{Resolution: res, Airtime: air, GPUSpeed: 1, MCS: mcs}
	}
	lowMCS := expectKPI(t, tb, ctl(1, 1, 0.2))
	highMCS := expectKPI(t, tb, ctl(1, 1, 1))
	if highMCS.BSPower >= lowMCS.BSPower {
		t.Fatalf("higher MCS should lower BS power at nominal load: %v vs %v", highMCS.BSPower, lowMCS.BSPower)
	}
	lowAir := expectKPI(t, tb, ctl(1, 0.2, 1))
	if lowAir.BSPower >= highMCS.BSPower {
		t.Fatalf("less airtime should lower BS power: %v vs %v", lowAir.BSPower, highMCS.BSPower)
	}
	lowRes := expectKPI(t, tb, ctl(0.25, 1, 1))
	if lowRes.BSPower >= highMCS.BSPower {
		t.Fatalf("low-res should lower BS power: %v vs %v", lowRes.BSPower, highMCS.BSPower)
	}
	if lowMCS.BSPower < 4 || lowMCS.BSPower > 8 {
		t.Fatalf("BS power %v W outside the prototype's 4–8 W envelope", lowMCS.BSPower)
	}
}

// Fig. 6 (10× load): with saturated airtime budgets, a higher MCS cap
// raises BS power for high-resolution traffic.
func TestFig6HighLoadInversion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadFactor = 10
	tb, err := New(cfg, []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lowMCS := expectKPI(t, tb, core.Control{Resolution: 1, Airtime: 0.2, GPUSpeed: 1, MCS: 0.2})
	highMCS := expectKPI(t, tb, core.Control{Resolution: 1, Airtime: 0.2, GPUSpeed: 1, MCS: 1})
	if highMCS.BSPower <= lowMCS.BSPower {
		t.Fatalf("at 10x load, higher MCS should raise BS power: %v vs %v", highMCS.BSPower, lowMCS.BSPower)
	}
}

func TestExpectedDeterministic(t *testing.T) {
	tb := newTB(t)
	x := core.Control{Resolution: 0.6, Airtime: 0.7, GPUSpeed: 0.4, MCS: 0.8}
	a := expectKPI(t, tb, x)
	b := expectKPI(t, tb, x)
	if a != b {
		t.Fatalf("Expected not deterministic: %+v vs %+v", a, b)
	}
}

func TestMeasureNoisyAroundExpected(t *testing.T) {
	tb := newTB(t)
	x := core.Control{Resolution: 0.7, Airtime: 0.8, GPUSpeed: 0.5, MCS: 1}
	want := expectKPI(t, tb, x)
	var sum core.KPIs
	const n = 60
	same := true
	var prev core.KPIs
	for i := 0; i < n; i++ {
		k, err := tb.Measure(x)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && k != prev {
			same = false
		}
		prev = k
		sum.Delay += k.Delay
		sum.MAP += k.MAP
		sum.ServerPower += k.ServerPower
		sum.BSPower += k.BSPower
	}
	if same {
		t.Fatal("Measure produced identical observations; noise missing")
	}
	if math.Abs(sum.Delay/n-want.Delay) > 0.05*want.Delay {
		t.Fatalf("mean measured delay %v far from expected %v", sum.Delay/n, want.Delay)
	}
	if math.Abs(sum.MAP/n-want.MAP) > 0.08 {
		t.Fatalf("mean measured mAP %v far from expected %v", sum.MAP/n, want.MAP)
	}
	if math.Abs(sum.ServerPower/n-want.ServerPower) > 0.05*want.ServerPower {
		t.Fatalf("mean server power %v far from expected %v", sum.ServerPower/n, want.ServerPower)
	}
	if math.Abs(sum.BSPower/n-want.BSPower) > 0.05*want.BSPower {
		t.Fatalf("mean BS power %v far from expected %v", sum.BSPower/n, want.BSPower)
	}
}

// HeterogeneousUsers returns the §6.4 population: the first user at 30 dB
// and each additional one with degraded SNR.
func TestMultiUserWorstDelayGrows(t *testing.T) {
	cfg := DefaultConfig()
	var prev float64
	for n := 1; n <= 6; n++ {
		tb, err := New(cfg, HeterogeneousUsers(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		k := expectKPI(t, tb, maxCtl())
		if k.Delay <= prev {
			t.Fatalf("worst-user delay should grow with population: n=%d delay %v", n, k.Delay)
		}
		prev = k.Delay
	}
}

// §6.2 feasibility: the Fig. 9 constraint set (dmax=0.4 s, ρmin=0.5) must
// admit at least one control at SNR 35 dB.
func TestFig9ConstraintsFeasible(t *testing.T) {
	tb := newTB(t)
	cons := core.Constraints{MaxDelay: 0.4, MinMAP: 0.5}
	grid, err := core.GridSpec{Levels: 6, MinResolution: 0.1, MinAirtime: 0.1}.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range grid {
		if cons.Satisfied(expectKPI(t, tb, x)) {
			return
		}
	}
	t.Fatal("no feasible control for the Fig. 9 constraints")
}

// §6.4 feasibility: dmax=2 s, ρmin=0.6 must be feasible with 6
// heterogeneous users ("so the system has a feasible solution in the worst
// case").
func TestFig12ConstraintsFeasibleWorstCase(t *testing.T) {
	tb, err := New(DefaultConfig(), HeterogeneousUsers(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	cons := core.Constraints{MaxDelay: 2, MinMAP: 0.6}
	k := expectKPI(t, tb, maxCtl())
	if !cons.Satisfied(k) {
		t.Fatalf("max-resource control infeasible with 6 users: %+v", k)
	}
}
