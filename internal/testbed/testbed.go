// Package testbed composes the RAN, edge-server, vision, and power-meter
// substrates into a simulated counterpart of the paper's prototype (§6.1):
// a vBS and UE pair (srsRAN + USRP B210 in hardware), a GPU edge server
// running the object-recognition service, and a digital power meter.
//
// The testbed implements core.Environment — EdgeBOL drives it exactly as it
// would drive the hardware — and additionally exposes Expected, a
// noise-free evaluation of the same model used by the exhaustive-search
// oracle of §6.3/§6.4.
package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/power"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/vision"
)

// Config parameterizes the simulated prototype.
type Config struct {
	// Edge is the GPU server model.
	Edge edge.Config
	// Scene and Detector shape the synthetic MVA service.
	Scene    vision.SceneConfig
	Detector vision.DetectorConfig
	// ImagesPerMeasurement is the per-period mAP evaluation batch (the
	// prototype averaged 150 COCO images per data point).
	ImagesPerMeasurement int
	// BitsPerPixel is the encoded image size per delivered pixel.
	BitsPerPixel float64
	// FixedDelay covers user-side preprocessing plus downlink return of
	// boxes and labels, in seconds.
	FixedDelay float64
	// LoadFactor scales offered radio traffic beyond the service's own
	// (1 = nominal; 10 reproduces the Fig. 6 high-load scenario). The extra
	// load is background traffic carried at full PHY efficiency.
	LoadFactor float64
	// DelayNoiseFrac is the relative stddev of delay observations.
	DelayNoiseFrac float64
	// BSMeterNoiseW and ServerMeterNoiseW are per-sample power-meter noises.
	BSMeterNoiseW, ServerMeterNoiseW float64
	// MeterSamples is the per-reading averaging window of the meter.
	MeterSamples int
	// OracleImages is the batch size used to memoize the noise-free mAP
	// surface for Expected.
	OracleImages int
	// DetailedMAC switches uplink transmission delays from the closed-form
	// scheduler abstraction to the TTI-level MAC simulation (per-TTI
	// round-robin grants, duty-cycle token bucket, HARQ at MACBLER).
	DetailedMAC bool
	// MACBLER is the first-transmission block-error rate of the detailed
	// MAC (ignored otherwise); zero defaults to the srsRAN-typical 10 %.
	MACBLER float64
	// ShadowingStdDB adds per-period log-normal shadowing to every user's
	// SNR, making the context genuinely time-varying (used by dynamic
	// scenarios; zero disables).
	ShadowingStdDB float64
	// DeviceSlowdown is the device/edge compute-speed ratio of the
	// split-inference model (see split.go): executing a FLOPs fraction f
	// of the DNN on the device costs DeviceSlowdown · f times the
	// full-speed edge service time. Zero defaults to 6 — a mobile NPU
	// against a server GPU. Irrelevant while every control keeps
	// SplitLayer at 0 (the paper's original 4-D space).
	DeviceSlowdown float64
}

// DefaultConfig returns the calibrated simulated prototype.
func DefaultConfig() Config {
	return Config{
		Edge:                 edge.DefaultConfig(),
		Scene:                vision.DefaultSceneConfig(),
		Detector:             vision.DefaultDetectorConfig(),
		ImagesPerMeasurement: 150,
		BitsPerPixel:         2.1,
		FixedDelay:           0.04,
		LoadFactor:           1,
		DelayNoiseFrac:       0.04,
		BSMeterNoiseW:        0.35,
		ServerMeterNoiseW:    6,
		MeterSamples:         4,
		OracleImages:         2500,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Edge.Validate(); err != nil {
		return err
	}
	if err := c.Scene.Validate(); err != nil {
		return err
	}
	if err := c.Detector.Validate(); err != nil {
		return err
	}
	if c.ImagesPerMeasurement < 1 {
		return fmt.Errorf("testbed: ImagesPerMeasurement %d invalid", c.ImagesPerMeasurement)
	}
	if c.BitsPerPixel <= 0 {
		return fmt.Errorf("testbed: BitsPerPixel %v invalid", c.BitsPerPixel)
	}
	if c.FixedDelay < 0 {
		return fmt.Errorf("testbed: negative FixedDelay")
	}
	if c.LoadFactor < 1 {
		return fmt.Errorf("testbed: LoadFactor %v below 1", c.LoadFactor)
	}
	if c.DelayNoiseFrac < 0 || c.BSMeterNoiseW < 0 || c.ServerMeterNoiseW < 0 {
		return fmt.Errorf("testbed: negative noise parameter")
	}
	if c.MeterSamples < 1 {
		return fmt.Errorf("testbed: MeterSamples %d invalid", c.MeterSamples)
	}
	if c.OracleImages < 1 {
		return fmt.Errorf("testbed: OracleImages %d invalid", c.OracleImages)
	}
	if c.MACBLER < 0 || c.MACBLER >= 1 {
		return fmt.Errorf("testbed: MACBLER %v outside [0,1)", c.MACBLER)
	}
	if c.ShadowingStdDB < 0 {
		return fmt.Errorf("testbed: negative shadowing std")
	}
	if c.DeviceSlowdown < 0 {
		return fmt.Errorf("testbed: negative DeviceSlowdown")
	}
	return nil
}

// deviceSlowdown returns the resolved device/edge compute-speed ratio.
func (c Config) deviceSlowdown() float64 {
	if c.DeviceSlowdown == 0 {
		return 6
	}
	return c.DeviceSlowdown
}

// effectiveBLER returns the detailed-MAC block-error rate.
func (c Config) effectiveBLER() float64 {
	if c.MACBLER == 0 {
		return 0.1
	}
	return c.MACBLER
}

// Testbed is the simulated prototype. It is not safe for concurrent use.
type Testbed struct {
	cfg   Config
	users []ran.User
	// baseSNRs are the users' nominal SNRs; with shadowing enabled the
	// working SNRs are re-drawn around them every context observation.
	baseSNRs []float64

	rng         *rand.Rand
	bsMeter     *power.Meter
	serverMeter *power.Meter

	// mapMean memoizes the noise-free expected mAP per resolution (keyed by
	// resolution in milli-units): mAP depends only on the resolution policy.
	mapMean map[int]float64

	met testbedMetrics
}

// testbedMetrics mirrors the paper's dashboard view of the prototype: the
// latest measured KPIs as gauges plus a measurement counter. All handles
// are nil-safe no-ops when the testbed is uninstrumented.
type testbedMetrics struct {
	measures    *telemetry.Counter
	delay       *telemetry.Gauge
	gpuDelay    *telemetry.Gauge
	mAP         *telemetry.Gauge
	serverPower *telemetry.Gauge
	bsPower     *telemetry.Gauge
}

// New builds a testbed with the given users. seed drives all observation
// noise, making runs reproducible.
func New(cfg Config, users []ran.User, seed int64) (*Testbed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("testbed: at least one user required")
	}
	rng := rand.New(rand.NewSource(seed))
	bsMeter, err := power.NewMeter(cfg.BSMeterNoiseW, cfg.MeterSamples, rng)
	if err != nil {
		return nil, err
	}
	serverMeter, err := power.NewMeter(cfg.ServerMeterNoiseW, cfg.MeterSamples, rng)
	if err != nil {
		return nil, err
	}
	tb := &Testbed{
		cfg:         cfg,
		users:       append([]ran.User(nil), users...),
		rng:         rng,
		bsMeter:     bsMeter,
		serverMeter: serverMeter,
		mapMean:     make(map[int]float64),
	}
	tb.rebaseSNRs()
	return tb, nil
}

// rebaseSNRs snapshots the current users' SNRs as the shadowing baseline.
func (tb *Testbed) rebaseSNRs() {
	tb.baseSNRs = tb.baseSNRs[:0]
	for _, u := range tb.users {
		tb.baseSNRs = append(tb.baseSNRs, u.SNRdB)
	}
}

// Config returns the testbed configuration.
func (tb *Testbed) Config() Config { return tb.cfg }

// Users returns a copy of the current user population.
func (tb *Testbed) Users() []ran.User { return append([]ran.User(nil), tb.users...) }

// SetUsers replaces the user population (context change).
func (tb *Testbed) SetUsers(users []ran.User) error {
	if len(users) == 0 {
		return fmt.Errorf("testbed: at least one user required")
	}
	tb.users = append(tb.users[:0], users...)
	tb.rebaseSNRs()
	return nil
}

// SetSNR sets a single user with the given uplink SNR, the §6.2 static
// scenario.
func (tb *Testbed) SetSNR(snrDB float64) {
	tb.users = []ran.User{{SNRdB: snrDB}}
	tb.rebaseSNRs()
}

// Context implements core.Environment: the number of users and the mean and
// variance of their CQIs. With shadowing enabled, each observation re-draws
// the users' working SNRs around their baselines first.
func (tb *Testbed) Context() core.Context {
	if tb.cfg.ShadowingStdDB > 0 {
		for i := range tb.users {
			tb.users[i].SNRdB = tb.baseSNRs[i] + tb.rng.NormFloat64()*tb.cfg.ShadowingStdDB
		}
	}
	var sum, sumSq float64
	for _, u := range tb.users {
		c := float64(u.CQI())
		sum += c
		sumSq += c * c
	}
	n := float64(len(tb.users))
	mean := sum / n
	varCQI := sumSq/n - mean*mean
	if varCQI < 0 {
		varCQI = 0
	}
	return core.Context{NumUsers: len(tb.users), MeanCQI: mean, VarCQI: varCQI}
}

// Instrument publishes the testbed's per-period KPI readings into reg:
// edgebol_testbed_measures_total plus the edgebol_testbed_delay_seconds,
// edgebol_testbed_gpu_delay_seconds, edgebol_testbed_map,
// edgebol_testbed_server_power_watts, and edgebol_testbed_bs_power_watts
// gauges (the software counterparts of the prototype's power meter and
// KPI logs). A nil registry leaves the testbed uninstrumented.
func (tb *Testbed) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	tb.met = testbedMetrics{
		measures:    reg.Counter("edgebol_testbed_measures_total"),
		delay:       reg.Gauge("edgebol_testbed_delay_seconds"),
		gpuDelay:    reg.Gauge("edgebol_testbed_gpu_delay_seconds"),
		mAP:         reg.Gauge("edgebol_testbed_map"),
		serverPower: reg.Gauge("edgebol_testbed_server_power_watts"),
		bsPower:     reg.Gauge("edgebol_testbed_bs_power_watts"),
	}
}

// Measure implements core.Environment: it applies the control for one
// period and returns noisy KPI observations.
func (tb *Testbed) Measure(x core.Control) (core.KPIs, error) {
	k, err := tb.evaluateMode(x, true)
	if err != nil {
		return core.KPIs{}, err
	}
	// mAP from an actual finite-batch evaluation (sampling noise included).
	mAP, err := vision.EstimateMAP(x.Resolution, tb.cfg.ImagesPerMeasurement, tb.cfg.Scene, tb.cfg.Detector, tb.rng)
	if err != nil {
		return core.KPIs{}, err
	}
	k.MAP = mAP
	k.Delay *= 1 + tb.rng.NormFloat64()*tb.cfg.DelayNoiseFrac
	k.GPUDelay *= 1 + tb.rng.NormFloat64()*tb.cfg.DelayNoiseFrac
	k.BSPower = tb.bsMeter.Read(k.BSPower)
	k.ServerPower = tb.serverMeter.Read(k.ServerPower)
	tb.met.measures.Inc()
	tb.met.delay.Set(k.Delay)
	tb.met.gpuDelay.Set(k.GPUDelay)
	tb.met.mAP.Set(k.MAP)
	tb.met.serverPower.Set(k.ServerPower)
	tb.met.bsPower.Set(k.BSPower)
	return k, nil
}

// Expected returns the noise-free expected KPIs for a control, the surface
// searched exhaustively by the offline oracle.
func (tb *Testbed) Expected(x core.Control) (core.KPIs, error) {
	k, err := tb.evaluate(x)
	if err != nil {
		return core.KPIs{}, err
	}
	k.MAP = tb.expectedMAP(x.Resolution)
	return k, nil
}

// txDelays computes per-user uplink transmission delays, either from the
// closed-form scheduler abstraction or — in DetailedMAC mode — from the
// TTI-level simulation. The noise-free path approximates HARQ's expected
// airtime inflation analytically so Expected stays deterministic.
func (tb *Testbed) txDelays(allocs []ran.Allocation, pol ran.Policies, imageBits float64, noisy bool) ([]float64, error) {
	if !tb.cfg.DetailedMAC {
		tx := make([]float64, len(allocs))
		for i, a := range allocs {
			tx[i] = a.TxDelay(imageBits)
		}
		return tx, nil
	}
	bler := tb.cfg.effectiveBLER()
	if noisy {
		sim, err := ran.NewTTISim(bler, tb.rng)
		if err != nil {
			return nil, err
		}
		return sim.SimulateTransfers(tb.users, pol, imageBits)
	}
	sim, err := ran.NewTTISim(0, nil)
	if err != nil {
		return nil, err
	}
	tx, err := sim.SimulateTransfers(tb.users, pol, imageBits)
	if err != nil {
		return nil, err
	}
	for i := range tx {
		tx[i] /= 1 - bler // expected HARQ inflation
	}
	return tx, nil
}

// expectedMAP memoizes a large-batch, fixed-seed mAP estimate per
// resolution level.
func (tb *Testbed) expectedMAP(res float64) float64 {
	key := int(math.Round(res * 1000))
	if v, ok := tb.mapMean[key]; ok {
		return v
	}
	rng := rand.New(rand.NewSource(int64(key) + 7777))
	v, err := vision.EstimateMAP(res, tb.cfg.OracleImages, tb.cfg.Scene, tb.cfg.Detector, rng)
	if err != nil {
		// Resolution was validated by evaluate before reaching here.
		panic(fmt.Sprintf("testbed: expected mAP evaluation failed: %v", err))
	}
	tb.mapMean[key] = v
	return v
}

// evaluate runs the deterministic physics shared by Measure and Expected:
// scheduling, the closed-loop delay fixed point, GPU contention, and the
// two power models. The returned KPIs carry a zero MAP (filled by callers).
func (tb *Testbed) evaluate(x core.Control) (core.KPIs, error) {
	return tb.evaluateMode(x, false)
}

func (tb *Testbed) evaluateMode(x core.Control, noisy bool) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	pol := ran.Policies{Airtime: x.Airtime, MCSCap: x.MCSCap()}
	allocs, err := ran.Schedule(tb.users, pol)
	if err != nil {
		return core.KPIs{}, err
	}

	imageBits := tb.cfg.BitsPerPixel * vision.FullPixels * x.Resolution
	serviceTime := tb.cfg.Edge.ServiceTime(x.Resolution, x.GPUSpeed)

	// Split inference (split.go): the device executes a FLOPs fraction of
	// the DNN before uploading, which scales the uplink payload by the
	// activation profile, adds a serial device-compute stage, and leaves
	// only the suffix of the network on the edge GPU. At SplitLayer 0 the
	// three factors are exactly 1, 0, and 1 and every expression below is
	// bitwise identical to the 4-D model.
	actFrac := splitActFrac(x.SplitLayer)
	flopsFrac := splitFlopsFrac(x.SplitLayer)
	txBits := imageBits * actFrac
	deviceTime := tb.cfg.deviceSlowdown() * tb.cfg.Edge.ServiceTime(x.Resolution, 1) * flopsFrac
	edgeService := serviceTime * (1 - flopsFrac)

	// Closed-loop delays: each user keeps one image in flight
	// (D_i = fixed + device + tx_i + GPU wait + GPU service). The GPU
	// serves all users FCFS, so user i waits for work injected by the
	// others; the coupled delays are solved by fixed-point iteration.
	n := len(allocs)
	tx, err := tb.txDelays(allocs, pol, txBits, noisy)
	if err != nil {
		return core.KPIs{}, err
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = tb.cfg.FixedDelay + deviceTime + tx[i] + edgeService
	}
	pool := float64(tb.cfg.Edge.PoolSize())
	var maxWait float64
	for iter := 0; iter < 40; iter++ {
		maxWait = 0
		var changed float64
		for i := range d {
			var others float64
			for j := range d {
				if j != i {
					others += 1 / d[j]
				}
			}
			rho := edgeService * others / pool
			if rho > 0.95 {
				rho = 0.95
			}
			wait := edgeService * rho / (2 * pool * (1 - rho)) // M/D/c-style wait
			nd := tb.cfg.FixedDelay + deviceTime + tx[i] + edgeService + wait
			changed = math.Max(changed, math.Abs(nd-d[i]))
			d[i] = nd
			maxWait = math.Max(maxWait, wait)
		}
		if changed < 1e-9 {
			break
		}
	}

	// KPIs over users: worst delay, GPU-side delay, utilizations.
	var maxDelay, arrivalRate float64
	for i := range d {
		maxDelay = math.Max(maxDelay, d[i])
		arrivalRate += 1 / d[i]
	}
	gpuUtil := edgeService * arrivalRate / pool
	if gpuUtil > 0.95 {
		gpuUtil = 0.95
	}
	serverPower := tb.cfg.Edge.Power(x.GPUSpeed, gpuUtil)

	// Radio load: the service's own traffic inflated by the prototype's
	// application-layer overhead, plus efficient background load.
	var appRate, mcsSum float64
	for i, a := range allocs {
		appRate += txBits / d[i]
		mcsSum += float64(a.MCS)
	}
	onAir := appRate/ran.AppEfficiency + (tb.cfg.LoadFactor-1)*appRate
	meanMCS := mcsSum / float64(n)
	bsPower := ran.BSPower(onAir, meanMCS, pol)

	return core.KPIs{
		Delay:       maxDelay,
		GPUDelay:    edgeService + maxWait,
		ServerPower: serverPower,
		BSPower:     bsPower,
	}, nil
}
