package testbed

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ran"
)

func TestDetailedMACCloseToAnalytic(t *testing.T) {
	analytic, err := New(DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DetailedMAC = true
	detailed, err := New(cfg, []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []core.Control{
		{Resolution: 1, Airtime: 1, GPUSpeed: 1, MCS: 1},
		{Resolution: 0.5, Airtime: 0.4, GPUSpeed: 0.5, MCS: 0.7},
	} {
		a, err := analytic.Expected(x)
		if err != nil {
			t.Fatal(err)
		}
		d, err := detailed.Expected(x)
		if err != nil {
			t.Fatal(err)
		}
		// The detailed MAC includes the ≈11% HARQ airtime inflation, so
		// its delays sit slightly above the closed form.
		if d.Delay < a.Delay {
			t.Fatalf("detailed delay %v below analytic %v at %+v", d.Delay, a.Delay, x)
		}
		if rel := (d.Delay - a.Delay) / a.Delay; rel > 0.25 {
			t.Fatalf("detailed delay %v too far above analytic %v (%.0f%%)", d.Delay, a.Delay, 100*rel)
		}
	}
}

func TestDetailedMACExpectedDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetailedMAC = true
	tb, err := New(cfg, []ran.User{{SNRdB: 35}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := core.Control{Resolution: 0.8, Airtime: 0.7, GPUSpeed: 0.6, MCS: 0.9}
	a, err := tb.Expected(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.Expected(x)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("detailed-MAC Expected not deterministic: %+v vs %+v", a, b)
	}
}

func TestDetailedMACMeasureVaries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DetailedMAC = true
	tb, err := New(cfg, []ran.User{{SNRdB: 35}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := core.Control{Resolution: 0.8, Airtime: 0.7, GPUSpeed: 0.6, MCS: 0.9}
	a, err := tb.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delay == b.Delay {
		t.Fatal("HARQ losses should randomize measured delays")
	}
}

func TestMACBLERValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MACBLER = 1.5
	if _, err := New(cfg, []ran.User{{SNRdB: 35}}, 1); err == nil {
		t.Fatal("expected error for BLER out of range")
	}
}

func TestShadowingVariesContext(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ShadowingStdDB = 4
	tb, err := New(cfg, []ran.User{{SNRdB: 20}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for i := 0; i < 40; i++ {
		seen[tb.Context().MeanCQI] = true
	}
	if len(seen) < 2 {
		t.Fatal("shadowing should vary the observed CQI context")
	}
	// The baseline must not drift: long-run mean CQI near the nominal.
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		sum += tb.Context().MeanCQI
	}
	nominal := float64(ran.CQIFromSNR(20))
	if math.Abs(sum/n-nominal) > 1.5 {
		t.Fatalf("shadowed CQI mean %.2f drifted from nominal %.0f", sum/n, nominal)
	}
}

func TestNoShadowingKeepsContextFixed(t *testing.T) {
	tb, err := New(DefaultConfig(), []ran.User{{SNRdB: 20}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	first := tb.Context()
	for i := 0; i < 10; i++ {
		if tb.Context() != first {
			t.Fatal("context should be static without shadowing")
		}
	}
}
