package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/testbed"
)

func smallGrid() core.GridSpec {
	return core.GridSpec{Levels: 3, MinResolution: 0.1, MinAirtime: 0.1}
}

func collectSmall(t *testing.T) *Dataset {
	t.Helper()
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Collect(tb, smallGrid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCollect(t *testing.T) {
	ds := collectSmall(t)
	want := smallGrid().Size() * 2
	if len(ds.Records) != want {
		t.Fatalf("%d records, want %d", len(ds.Records), want)
	}
	for i, r := range ds.Records {
		if err := r.Control().Validate(); err != nil {
			t.Fatalf("record %d invalid control: %v", i, err)
		}
		k := r.KPIs()
		if k.Delay <= 0 || k.ServerPower <= 0 || k.BSPower <= 0 {
			t.Fatalf("record %d degenerate KPIs: %+v", i, k)
		}
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(nil, smallGrid(), 1); err == nil {
		t.Fatal("expected error for nil env")
	}
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(tb, smallGrid(), 0); err == nil {
		t.Fatal("expected error for zero repetitions")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds := collectSmall(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(ds.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Records), len(ds.Records))
	}
	if back.Records[3] != ds.Records[3] {
		t.Fatalf("record corrupted: %+v vs %+v", back.Records[3], ds.Records[3])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	// A record with an invalid control must be rejected.
	if _, err := Read(strings.NewReader(`{"resolution":0,"airtime":1,"gpuSpeed":1,"mcs":1}`)); err == nil {
		t.Fatal("expected error for invalid control")
	}
}

func TestReplayEnvironmentServesRecordedControls(t *testing.T) {
	ds := collectSmall(t)
	env, err := NewReplayEnvironment(ds, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Measuring a recorded control returns one of its recorded KPI sets.
	x := ds.Records[0].Control()
	k, err := env.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ds.Records {
		if r.Control() == x && r.KPIs() == k {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("replayed KPIs do not match any recorded sample for the control")
	}
}

func TestReplayEnvironmentNearestNeighbour(t *testing.T) {
	ds := collectSmall(t)
	env, err := NewReplayEnvironment(ds, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	// An off-grid control gets the nearest recorded neighbour: it must
	// still return valid KPIs.
	k, err := env.Measure(core.Control{Resolution: 0.47, Airtime: 0.93, GPUSpeed: 0.61, MCS: 0.48})
	if err != nil {
		t.Fatal(err)
	}
	if k.Delay <= 0 {
		t.Fatalf("degenerate replayed KPIs: %+v", k)
	}
}

func TestReplayEnvironmentValidation(t *testing.T) {
	if _, err := NewReplayEnvironment(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for nil dataset")
	}
	ds := collectSmall(t)
	if _, err := NewReplayEnvironment(ds, nil); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

// An EdgeBOL agent must be able to learn offline from the recorded
// campaign — the reproducibility purpose of the published dataset.
func TestAgentLearnsFromReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("offline learning skipped in -short mode")
	}
	tb, err := testbed.New(testbed.DefaultConfig(), []ran.User{{SNRdB: 35}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	grid := core.GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1}
	ds, err := Collect(tb, grid, 3)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewReplayEnvironment(ds, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	w := core.CostWeights{Delta1: 1, Delta2: 1}
	agent, err := core.NewAgent(core.Options{
		Grid:        grid,
		Weights:     w,
		Constraints: core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var first, lastAvg float64
	var tail []float64
	for i := 0; i < 60; i++ {
		_, k, _, err := agent.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = w.Cost(k)
		}
		if i >= 45 {
			tail = append(tail, w.Cost(k))
		}
	}
	for _, c := range tail {
		lastAvg += c / float64(len(tail))
	}
	if lastAvg >= first {
		t.Fatalf("offline learning did not improve: first %v tail %v", first, lastAvg)
	}
}
