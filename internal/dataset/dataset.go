// Package dataset records and replays measurement campaigns, mirroring the
// measurement dataset the paper's authors published alongside §3
// (github.com/jaayala/energy_edge_AI_dataset): every record is one
// measured (context, control) → KPIs sample.
//
// A recorded dataset serves two purposes: it is an exportable artifact for
// external analysis, and — through ReplayEnvironment — an offline
// core.Environment that serves recorded measurements back to a learning
// agent, so algorithm work can proceed without the (simulated or real)
// testbed in the loop.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Record is one measurement: the §3 campaign's unit of data.
type Record struct {
	// Context at measurement time.
	NumUsers int     `json:"numUsers"`
	MeanCQI  float64 `json:"meanCqi"`
	VarCQI   float64 `json:"varCqi"`
	// Control applied.
	Resolution float64 `json:"resolution"`
	Airtime    float64 `json:"airtime"`
	GPUSpeed   float64 `json:"gpuSpeed"`
	MCS        float64 `json:"mcs"`
	// Observed KPIs.
	DelaySeconds float64 `json:"delaySeconds"`
	GPUDelay     float64 `json:"gpuDelaySeconds"`
	MAP          float64 `json:"map"`
	ServerPowerW float64 `json:"serverPowerW"`
	BSPowerW     float64 `json:"bsPowerW"`
}

// FromSample builds a record from core types.
func FromSample(ctx core.Context, x core.Control, k core.KPIs) Record {
	return Record{
		NumUsers: ctx.NumUsers, MeanCQI: ctx.MeanCQI, VarCQI: ctx.VarCQI,
		Resolution: x.Resolution, Airtime: x.Airtime, GPUSpeed: x.GPUSpeed, MCS: x.MCS,
		DelaySeconds: k.Delay, GPUDelay: k.GPUDelay, MAP: k.MAP,
		ServerPowerW: k.ServerPower, BSPowerW: k.BSPower,
	}
}

// Context returns the record's context.
func (r Record) Context() core.Context {
	return core.Context{NumUsers: r.NumUsers, MeanCQI: r.MeanCQI, VarCQI: r.VarCQI}
}

// Control returns the record's control.
func (r Record) Control() core.Control {
	//edgebol:allow safectrl -- deserialization boundary: records replay controls captured from a grid-driven run, never synthesize new ones
	return core.Control{Resolution: r.Resolution, Airtime: r.Airtime, GPUSpeed: r.GPUSpeed, MCS: r.MCS}
}

// KPIs returns the record's observations.
func (r Record) KPIs() core.KPIs {
	return core.KPIs{
		Delay: r.DelaySeconds, GPUDelay: r.GPUDelay, MAP: r.MAP,
		ServerPower: r.ServerPowerW, BSPower: r.BSPowerW,
	}
}

// Dataset is an in-memory measurement campaign.
type Dataset struct {
	Records []Record
}

// Collect runs a measurement campaign against an environment: repetitions
// over every control in the grid, as in §3 (where every dot averages a
// batch of images and multiple controls are swept exhaustively).
func Collect(env core.Environment, grid core.GridSpec, repetitions int) (*Dataset, error) {
	if env == nil {
		return nil, fmt.Errorf("dataset: nil environment")
	}
	if repetitions < 1 {
		return nil, fmt.Errorf("dataset: repetitions %d invalid", repetitions)
	}
	ctls, err := grid.Enumerate()
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Records: make([]Record, 0, len(ctls)*repetitions)}
	for rep := 0; rep < repetitions; rep++ {
		for _, x := range ctls {
			ctx := env.Context()
			k, err := env.Measure(x)
			if err != nil {
				return nil, fmt.Errorf("dataset: measuring %+v: %w", x, err)
			}
			ds.Records = append(ds.Records, FromSample(ctx, x, k))
		}
	}
	return ds, nil
}

// Write serializes the dataset as JSON Lines.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range d.Records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("dataset: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON Lines dataset.
func Read(r io.Reader) (*Dataset, error) {
	ds := &Dataset{}
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", len(ds.Records), err)
		}
		if err := rec.Control().Validate(); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", len(ds.Records), err)
		}
		ds.Records = append(ds.Records, rec)
	}
	if len(ds.Records) == 0 {
		return nil, fmt.Errorf("dataset: empty dataset")
	}
	return ds, nil
}

// ReplayEnvironment serves recorded measurements as a core.Environment: a
// Measure returns a uniformly sampled record among those nearest (in
// normalized control space) to the requested control, so learning
// algorithms can run offline against the published data.
type ReplayEnvironment struct {
	ds  *Dataset
	rng *rand.Rand
	// byControl groups record indices by rounded control key.
	byControl map[[4]int16][]int
	keys      [][4]int16
}

// NewReplayEnvironment builds a replay environment. rng is required.
func NewReplayEnvironment(ds *Dataset, rng *rand.Rand) (*ReplayEnvironment, error) {
	if ds == nil || len(ds.Records) == 0 {
		return nil, fmt.Errorf("dataset: empty dataset")
	}
	if rng == nil {
		return nil, fmt.Errorf("dataset: rand source required")
	}
	env := &ReplayEnvironment{ds: ds, rng: rng, byControl: make(map[[4]int16][]int)}
	for i, r := range ds.Records {
		k := controlKey(r.Control())
		if _, seen := env.byControl[k]; !seen {
			env.keys = append(env.keys, k)
		}
		env.byControl[k] = append(env.byControl[k], i)
	}
	return env, nil
}

// controlKey quantizes a control to merge float noise across records.
func controlKey(x core.Control) [4]int16 {
	q := func(v float64) int16 { return int16(math.Round(v * 1000)) }
	return [4]int16{q(x.Resolution), q(x.Airtime), q(x.GPUSpeed), q(x.MCS)}
}

// Context implements core.Environment: the context of a random record
// (campaign datasets are usually single-context).
func (e *ReplayEnvironment) Context() core.Context {
	return e.ds.Records[e.rng.Intn(len(e.ds.Records))].Context()
}

// Measure implements core.Environment: a random record among those closest
// to the requested control.
func (e *ReplayEnvironment) Measure(x core.Control) (core.KPIs, error) {
	if err := x.Validate(); err != nil {
		return core.KPIs{}, err
	}
	key := controlKey(x)
	if idxs, ok := e.byControl[key]; ok {
		return e.ds.Records[idxs[e.rng.Intn(len(idxs))]].KPIs(), nil
	}
	// Nearest recorded control by L2 over the quantized key.
	best := e.keys[0]
	bestDist := math.Inf(1)
	for _, k := range e.keys {
		var d float64
		for i := 0; i < 4; i++ {
			diff := float64(k[i] - key[i])
			d += diff * diff
		}
		if d < bestDist {
			bestDist = d
			best = k
		}
	}
	idxs := e.byControl[best]
	return e.ds.Records[idxs[e.rng.Intn(len(idxs))]].KPIs(), nil
}

var _ core.Environment = (*ReplayEnvironment)(nil)
