package bandit

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
)

// LinUCB is the linear contextual bandit of the related-work family the
// paper contrasts against (§5: "most of the existing contextual bandit
// algorithms assume a linear relationship between the contexts-control
// space and the associated reward"): ridge regression of a
// violation-penalized cost on the joint (context, control) features, with
// optimism in the face of uncertainty.
//
// Its failure mode on this problem is exactly the paper's point — the
// cost/constraint surfaces are non-linear, so the linear model
// systematically mis-ranks large regions of the control space no matter
// how much data it sees.
type LinUCB struct {
	grid        []core.Control
	weights     core.CostWeights
	constraints core.Constraints
	maxCost     float64
	alpha       float64

	dim   int
	a     *linalg.Matrix // A = λI + Σ zzᵀ
	b     []float64      // Σ z·y
	theta []float64      // A⁻¹ b, refreshed on demand
	dirty bool
}

// NewLinUCB builds the baseline. alpha is the exploration multiplier on
// the confidence ellipsoid (≈1–2 typical).
func NewLinUCB(grid core.GridSpec, w core.CostWeights, cons core.Constraints, alpha float64) (*LinUCB, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("bandit: alpha %v must be positive", alpha)
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	if w.Delta1 < 0 || w.Delta2 < 0 || (w.Delta1 == 0 && w.Delta2 == 0) {
		return nil, fmt.Errorf("bandit: cost weights %+v invalid", w)
	}
	ctls, err := grid.Enumerate()
	if err != nil {
		return nil, err
	}
	dim := core.ContextDims + core.ControlDims + 1 // +1 bias term
	l := &LinUCB{
		grid:        ctls,
		weights:     w,
		constraints: cons,
		maxCost:     2 * core.DefaultNormalization(w).Cost.Center,
		alpha:       alpha,
		dim:         dim,
		a:           linalg.NewMatrix(dim, dim),
		b:           make([]float64, dim),
	}
	for i := 0; i < dim; i++ {
		l.a.Set(i, i, 1) // ridge λ = 1
	}
	return l, nil
}

func (l *LinUCB) features(ctx core.Context, x core.Control) []float64 {
	z := core.Features(ctx, x)
	return append(z, 1)
}

// Select implements Policy: argmin over the grid of θᵀz − α·√(zᵀA⁻¹z).
func (l *LinUCB) Select(ctx core.Context) core.Control {
	chol, err := linalg.NewCholesky(l.a)
	if err != nil {
		// A is λI plus a sum of outer products: always positive definite.
		panic(fmt.Sprintf("bandit: LinUCB design matrix not PD: %v", err))
	}
	if l.dirty || l.theta == nil {
		theta := append([]float64(nil), l.b...)
		chol.SolveVec(theta)
		l.theta = theta
		l.dirty = false
	}
	best := 0
	bestScore := math.Inf(1)
	buf := make([]float64, l.dim)
	for i, x := range l.grid {
		z := l.features(ctx, x)
		mean := linalg.Dot(l.theta, z)
		copy(buf, z)
		chol.ForwardSolve(buf)
		width := math.Sqrt(linalg.Dot(buf, buf))
		if score := mean - l.alpha*width; score < bestScore {
			bestScore = score
			best = i
		}
	}
	return l.grid[best]
}

// Observe implements Policy: rank-one update of the design matrix with
// the violation-penalized normalized cost.
func (l *LinUCB) Observe(ctx core.Context, x core.Control, k core.KPIs) {
	cost := l.weights.Cost(k)
	if !l.constraints.Satisfied(k) {
		cost = l.maxCost
	}
	y := cost / l.maxCost
	z := l.features(ctx, x)
	for i := 0; i < l.dim; i++ {
		for j := 0; j < l.dim; j++ {
			l.a.Set(i, j, l.a.At(i, j)+z[i]*z[j])
		}
		l.b[i] += z[i] * y
	}
	l.dirty = true
}

var _ Policy = (*LinUCB)(nil)
