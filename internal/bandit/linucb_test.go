package bandit

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestNewLinUCBValidation(t *testing.T) {
	if _, err := NewLinUCB(benchGrid(), benchWeights, benchCons, 0); err == nil {
		t.Fatal("expected error for zero alpha")
	}
	if _, err := NewLinUCB(benchGrid(), benchWeights, core.Constraints{}, 1); err == nil {
		t.Fatal("expected error for invalid constraints")
	}
	if _, err := NewLinUCB(benchGrid(), core.CostWeights{}, benchCons, 1); err == nil {
		t.Fatal("expected error for zero weights")
	}
}

func TestLinUCBSelectsValidControls(t *testing.T) {
	l, err := NewLinUCB(benchGrid(), benchWeights, benchCons, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := core.Context{NumUsers: 1, MeanCQI: 15}
	for i := 0; i < 10; i++ {
		x := l.Select(ctx)
		if err := x.Validate(); err != nil {
			t.Fatal(err)
		}
		l.Observe(ctx, x, core.KPIs{Delay: 0.3, MAP: 0.5, ServerPower: 100, BSPower: 5})
	}
}

func TestLinUCBImproves(t *testing.T) {
	env := &linEnv{ctx: core.Context{NumUsers: 1, MeanCQI: 15}, noise: rand.New(rand.NewSource(9))}
	l, err := NewLinUCB(benchGrid(), benchWeights, benchCons, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	_, ks, err := Run(l, env, 300)
	if err != nil {
		t.Fatal(err)
	}
	penalized := func(k core.KPIs) float64 {
		if !benchCons.Satisfied(k) {
			return l.maxCost
		}
		return benchWeights.Cost(k)
	}
	var early, late float64
	for i, k := range ks {
		if i < 50 {
			early += penalized(k) / 50
		}
		if i >= 250 {
			late += penalized(k) / 50
		}
	}
	if late >= early {
		t.Fatalf("LinUCB did not improve: early %v late %v", early, late)
	}
}

// The paper's §5 premise: the GP-based agent must beat a linear bandit on
// these non-linear surfaces. linEnv's delay/cost are affine, so use a
// curved variant to expose the model mismatch.
type curvedEnv struct {
	linEnv
}

func (e *curvedEnv) truth(x core.Control) core.KPIs {
	k := e.linEnv.truth(x)
	// Strong curvature: power explodes at the extremes of GPU speed.
	k.ServerPower = 80 + 150*(x.GPUSpeed-0.4)*(x.GPUSpeed-0.4)*2.5
	return k
}

func (e *curvedEnv) Measure(x core.Control) (core.KPIs, error) {
	return e.truth(x), nil
}

func TestLinUCBUnderperformsOnCurvedSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison skipped in -short mode")
	}
	env := &curvedEnv{linEnv{ctx: core.Context{NumUsers: 1, MeanCQI: 15}}}

	lin, err := NewLinUCB(benchGrid(), benchWeights, benchCons, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	_, linKs, err := Run(lin, env, 250)
	if err != nil {
		t.Fatal(err)
	}

	agent, err := core.NewAgent(core.Options{
		Grid:        benchGrid(),
		Weights:     benchWeights,
		Constraints: benchCons,
		Norm: core.Normalization{
			Cost:  core.Affine{Center: 120, Scale: 30},
			Delay: core.Affine{Center: 0.5, Scale: 0.15},
			MAP:   core.Affine{Center: 0.4, Scale: 0.15},
		},
		NoiseVars: [3]float64{1e-4, 1e-4, 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var gpKs []core.KPIs
	for i := 0; i < 250; i++ {
		_, k, _, err := agent.Step(env)
		if err != nil {
			t.Fatal(err)
		}
		gpKs = append(gpKs, k)
	}

	tail := func(ks []core.KPIs) float64 {
		var s float64
		for _, k := range ks[len(ks)-40:] {
			c := benchWeights.Cost(k)
			if !benchCons.Satisfied(k) {
				c = lin.maxCost
			}
			s += c / 40
		}
		return s
	}
	linCost, gpCost := tail(linKs), tail(gpKs)
	t.Logf("tail penalized cost: LinUCB %.1f, EdgeBOL %.1f", linCost, gpCost)
	if gpCost >= linCost {
		t.Fatalf("EdgeBOL (%v) should beat LinUCB (%v) on a curved surface", gpCost, linCost)
	}
}
