package bandit

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Random picks uniformly random grid controls — the weakest reference
// point and a sanity floor for learning curves.
type Random struct {
	grid []core.Control
	rng  *rand.Rand
}

// NewRandom builds a uniform-random policy over the grid.
func NewRandom(grid core.GridSpec, seed int64) (*Random, error) {
	ctls, err := grid.Enumerate()
	if err != nil {
		return nil, err
	}
	return &Random{grid: ctls, rng: rand.New(rand.NewSource(seed))}, nil
}

// Select implements Policy.
func (r *Random) Select(core.Context) core.Control {
	return r.grid[r.rng.Intn(len(r.grid))]
}

// Observe implements Policy (no learning).
func (r *Random) Observe(core.Context, core.Control, core.KPIs) {}

// EpsilonGreedy is a context-free ε-greedy bandit over the grid with a
// violation-penalized cost, a classic tabular baseline that ignores both
// context and structure.
type EpsilonGreedy struct {
	grid        []core.Control
	weights     core.CostWeights
	constraints core.Constraints
	maxCost     float64
	epsilon     float64
	decay       float64

	sum   []float64
	count []int
	index map[core.Control]int
	rng   *rand.Rand
}

// NewEpsilonGreedy builds the baseline with initial exploration rate
// epsilon decaying multiplicatively by decay per period.
func NewEpsilonGreedy(grid core.GridSpec, w core.CostWeights, cons core.Constraints, epsilon, decay float64, seed int64) (*EpsilonGreedy, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("bandit: epsilon %v outside [0,1]", epsilon)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("bandit: decay %v outside (0,1]", decay)
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	ctls, err := grid.Enumerate()
	if err != nil {
		return nil, err
	}
	index := make(map[core.Control]int, len(ctls))
	for i, c := range ctls {
		index[c] = i
	}
	return &EpsilonGreedy{
		grid:        ctls,
		weights:     w,
		constraints: cons,
		maxCost:     2 * core.DefaultNormalization(w).Cost.Center,
		epsilon:     epsilon,
		decay:       decay,
		sum:         make([]float64, len(ctls)),
		count:       make([]int, len(ctls)),
		index:       index,
		rng:         rand.New(rand.NewSource(seed)),
	}, nil
}

// Select implements Policy.
func (e *EpsilonGreedy) Select(core.Context) core.Control {
	defer func() { e.epsilon *= e.decay }()
	if e.rng.Float64() < e.epsilon {
		return e.grid[e.rng.Intn(len(e.grid))]
	}
	best := 0
	bestMean := math.Inf(1)
	for i := range e.grid {
		mean := e.maxCost // optimism is wrong here: unexplored = assumed worst-case safe cost
		if e.count[i] > 0 {
			mean = e.sum[i] / float64(e.count[i])
		}
		if mean < bestMean {
			bestMean = mean
			best = i
		}
	}
	return e.grid[best]
}

// Observe implements Policy.
func (e *EpsilonGreedy) Observe(_ core.Context, x core.Control, k core.KPIs) {
	i, ok := e.index[x]
	if !ok {
		return
	}
	cost := e.weights.Cost(k)
	if !e.constraints.Satisfied(k) {
		cost = e.maxCost
	}
	e.sum[i] += cost
	e.count[i]++
}

var (
	_ Policy = (*Random)(nil)
	_ Policy = (*EpsilonGreedy)(nil)
)
