// Package bandit provides the benchmark controllers EdgeBOL is compared
// against in §6: the DDPG actor-critic baseline adapted to the contextual
// bandit setting (inspired by vrAIn, as in the paper's Fig. 14), the
// offline exhaustive-search oracle of Figs. 10 and 12, and simple
// ε-greedy/random bandits for additional reference points.
package bandit

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Policy is the common interface of all benchmark controllers: pick a
// control for a context, then learn from the observed KPIs.
type Policy interface {
	// Select returns the control to apply for the given context.
	Select(ctx core.Context) core.Control
	// Observe feeds back the KPIs measured for (ctx, x).
	Observe(ctx core.Context, x core.Control, k core.KPIs)
}

// Run drives a policy against an environment for the given number of
// periods, returning per-period KPIs and selected controls.
func Run(p Policy, env core.Environment, periods int) ([]core.Control, []core.KPIs, error) {
	if periods <= 0 {
		return nil, nil, fmt.Errorf("bandit: periods %d must be positive", periods)
	}
	xs := make([]core.Control, 0, periods)
	ks := make([]core.KPIs, 0, periods)
	for t := 0; t < periods; t++ {
		ctx := env.Context()
		x := p.Select(ctx)
		k, err := env.Measure(x)
		if err != nil {
			return xs, ks, fmt.Errorf("bandit: period %d: %w", t, err)
		}
		p.Observe(ctx, x, k)
		xs = append(xs, x)
		ks = append(ks, k)
	}
	return xs, ks, nil
}

// ExpectedFn evaluates the noise-free KPI surface (the testbed's Expected).
type ExpectedFn func(core.Control) (core.KPIs, error)

// Oracle exhaustively searches the expected-KPI surface for the cheapest
// feasible control — the paper's offline benchmark, "unfeasible in practice"
// but a lower bound on attainable cost.
func Oracle(expected ExpectedFn, grid core.GridSpec, w core.CostWeights, cons core.Constraints) (core.Control, float64, error) {
	ctls, err := grid.Enumerate()
	if err != nil {
		return core.Control{}, 0, err
	}
	best := core.Control{}
	bestCost := math.Inf(1)
	for _, x := range ctls {
		k, err := expected(x)
		if err != nil {
			return core.Control{}, 0, err
		}
		if cons.Satisfied(k) && w.Cost(k) < bestCost {
			bestCost = w.Cost(k)
			best = x
		}
	}
	if math.IsInf(bestCost, 1) {
		return core.Control{}, 0, fmt.Errorf("bandit: no feasible control on the grid")
	}
	return best, bestCost, nil
}
