package bandit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// linEnv is a deterministic synthetic environment with a cheap feasible
// corner, shared by the baseline tests.
type linEnv struct {
	ctx   core.Context
	noise *rand.Rand
}

func (e *linEnv) Context() core.Context { return e.ctx }

func (e *linEnv) truth(x core.Control) core.KPIs {
	return core.KPIs{
		Delay:       0.1 + 0.5*x.Resolution + 0.4*(1-x.Airtime) + 0.3*(1-x.GPUSpeed),
		MAP:         0.1 + 0.6*x.Resolution,
		ServerPower: 80 + 100*x.GPUSpeed,
		BSPower:     4.5 + 2.5*x.Airtime,
	}
}

func (e *linEnv) Measure(x core.Control) (core.KPIs, error) {
	k := e.truth(x)
	if e.noise != nil {
		k.Delay *= 1 + 0.03*e.noise.NormFloat64()
		k.ServerPower += e.noise.NormFloat64()
		k.MAP += 0.01 * e.noise.NormFloat64()
	}
	return k, nil
}

func benchGrid() core.GridSpec {
	return core.GridSpec{Levels: 4, MinResolution: 0.1, MinAirtime: 0.1}
}

var (
	benchWeights = core.CostWeights{Delta1: 1, Delta2: 1}
	benchCons    = core.Constraints{MaxDelay: 0.9, MinMAP: 0.3}
)

func TestOracleFindsCheapestFeasible(t *testing.T) {
	env := &linEnv{ctx: core.Context{NumUsers: 1, MeanCQI: 15}}
	x, cost, err := Oracle(func(c core.Control) (core.KPIs, error) {
		return env.truth(c), nil
	}, benchGrid(), benchWeights, benchCons)
	if err != nil {
		t.Fatal(err)
	}
	if !benchCons.Satisfied(env.truth(x)) {
		t.Fatalf("oracle control %+v infeasible", x)
	}
	// Brute-force cross-check.
	ctls, err := benchGrid().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for _, c := range ctls {
		k := env.truth(c)
		if benchCons.Satisfied(k) && benchWeights.Cost(k) < best {
			best = benchWeights.Cost(k)
		}
	}
	if math.Abs(cost-best) > 1e-9 {
		t.Fatalf("oracle cost %v, brute force %v", cost, best)
	}
}

func TestOracleInfeasible(t *testing.T) {
	env := &linEnv{ctx: core.Context{NumUsers: 1, MeanCQI: 15}}
	_, _, err := Oracle(func(c core.Control) (core.KPIs, error) {
		return env.truth(c), nil
	}, benchGrid(), benchWeights, core.Constraints{MaxDelay: 0.01, MinMAP: 0.99})
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestRandomPolicyCoversGrid(t *testing.T) {
	r, err := NewRandom(benchGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[core.Control]bool)
	for i := 0; i < 5000; i++ {
		seen[r.Select(core.Context{})] = true
	}
	if len(seen) < benchGrid().Size()/2 {
		t.Fatalf("random policy only visited %d/%d controls", len(seen), benchGrid().Size())
	}
}

func TestEpsilonGreedyImproves(t *testing.T) {
	env := &linEnv{ctx: core.Context{NumUsers: 1, MeanCQI: 15}, noise: rand.New(rand.NewSource(2))}
	eg, err := NewEpsilonGreedy(benchGrid(), benchWeights, benchCons, 1.0, 0.99, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ks, err := Run(eg, env, 600)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(ks []core.KPIs) float64 {
		var s float64
		for _, k := range ks {
			s += benchWeights.Cost(k)
		}
		return s / float64(len(ks))
	}
	early := mean(ks[:100])
	late := mean(ks[500:])
	if late >= early {
		t.Fatalf("ε-greedy did not improve: early %v late %v", early, late)
	}
}

func TestEpsilonGreedyValidation(t *testing.T) {
	if _, err := NewEpsilonGreedy(benchGrid(), benchWeights, benchCons, -0.1, 0.9, 1); err == nil {
		t.Fatal("expected error for negative epsilon")
	}
	if _, err := NewEpsilonGreedy(benchGrid(), benchWeights, benchCons, 0.5, 0, 1); err == nil {
		t.Fatal("expected error for zero decay")
	}
}

func TestRunValidation(t *testing.T) {
	r, err := NewRandom(benchGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(r, &linEnv{}, 0); err == nil {
		t.Fatal("expected error for zero periods")
	}
}

func TestDDPGOptionsValidation(t *testing.T) {
	bad := []DDPGOptions{
		{},
		{Grid: benchGrid()},
		{Grid: benchGrid(), Constraints: benchCons},
		{Grid: benchGrid(), Constraints: benchCons, Weights: benchWeights, BufferSize: 10, BatchSize: 20},
		{Grid: benchGrid(), Constraints: benchCons, Weights: benchWeights, MaxCost: -5},
	}
	for i, o := range bad {
		if _, err := NewDDPG(o); err == nil {
			t.Fatalf("options %d should be rejected", i)
		}
	}
}

func TestDDPGSelectsGridControls(t *testing.T) {
	d, err := NewDDPG(DDPGOptions{Grid: benchGrid(), Weights: benchWeights, Constraints: benchCons, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctls, err := benchGrid().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	onGrid := make(map[core.Control]bool, len(ctls))
	for _, c := range ctls {
		onGrid[c] = true
	}
	for i := 0; i < 50; i++ {
		x := d.Select(core.Context{NumUsers: 1, MeanCQI: 12})
		found := false
		for c := range onGrid {
			if math.Abs(c.Resolution-x.Resolution) < 1e-9 && math.Abs(c.Airtime-x.Airtime) < 1e-9 &&
				math.Abs(c.GPUSpeed-x.GPUSpeed) < 1e-9 && math.Abs(c.MCS-x.MCS) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("DDPG selected off-grid control %+v", x)
		}
		if err := x.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDDPGNoiseDecays(t *testing.T) {
	d, err := NewDDPG(DDPGOptions{Grid: benchGrid(), Weights: benchWeights, Constraints: benchCons, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Noise()
	for i := 0; i < 200; i++ {
		d.Select(core.Context{NumUsers: 1, MeanCQI: 12})
	}
	if d.Noise() >= before {
		t.Fatal("exploration noise should decay")
	}
}

func TestDDPGLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("DDPG training skipped in -short mode")
	}
	env := &linEnv{ctx: core.Context{NumUsers: 1, MeanCQI: 15}, noise: rand.New(rand.NewSource(6))}
	d, err := NewDDPG(DDPGOptions{
		Grid:        benchGrid(),
		Weights:     benchWeights,
		Constraints: benchCons,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ks, err := Run(d, env, 800)
	if err != nil {
		t.Fatal(err)
	}
	ddpgCost := func(k core.KPIs) float64 {
		if !benchCons.Satisfied(k) {
			return d.opts.MaxCost
		}
		return benchWeights.Cost(k)
	}
	mean := func(ks []core.KPIs) float64 {
		var s float64
		for _, k := range ks {
			s += ddpgCost(k)
		}
		return s / float64(len(ks))
	}
	early := mean(ks[:100])
	late := mean(ks[700:])
	t.Logf("DDPG cost: early %.1f late %.1f", early, late)
	if late >= early {
		t.Fatalf("DDPG did not improve: early %v late %v", early, late)
	}
}

func TestDDPGSetConstraints(t *testing.T) {
	d, err := NewDDPG(DDPGOptions{Grid: benchGrid(), Weights: benchWeights, Constraints: benchCons, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetConstraints(core.Constraints{MaxDelay: 0.5, MinMAP: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetConstraints(core.Constraints{}); err == nil {
		t.Fatal("expected error for invalid constraints")
	}
}
