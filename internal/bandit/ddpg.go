package bandit

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nn"
)

// DDPGOptions configure the DDPG baseline.
type DDPGOptions struct {
	// Grid discretizes the actor's continuous output onto the shared
	// control space.
	Grid core.GridSpec
	// Weights and Constraints define the DDPG cost of §6.5: the eq. 1 cost
	// when all constraints hold, MaxCost otherwise.
	Weights     core.CostWeights
	Constraints core.Constraints
	// MaxCost is the penalty cost for constraint violations; zero defaults
	// to twice the cost normalization center.
	MaxCost float64
	// Hidden holds the hidden-layer widths of actor and critic (default
	// [64, 64], the vrAIn-style architecture with a sigmoid actor head).
	Hidden []int
	// ActorLR, CriticLR are Adam learning rates (defaults 1e-3, 1e-3).
	ActorLR, CriticLR float64
	// BufferSize and BatchSize control experience replay (defaults 4096, 64).
	BufferSize, BatchSize int
	// NoiseStd is the initial exploration noise on actor outputs and
	// NoiseDecay its per-period multiplicative decay (defaults 0.35,
	// 0.999); NoiseMin floors it (default 0.02).
	NoiseStd, NoiseDecay, NoiseMin float64
	// UpdatesPerStep is the number of minibatch updates per period
	// (default 4).
	UpdatesPerStep int
	// Seed drives initialization, exploration, and replay sampling.
	Seed int64
}

func (o *DDPGOptions) applyDefaults() error {
	if err := o.Grid.Validate(); err != nil {
		return err
	}
	if err := o.Constraints.Validate(); err != nil {
		return err
	}
	if o.Weights.Delta1 < 0 || o.Weights.Delta2 < 0 || (o.Weights.Delta1 == 0 && o.Weights.Delta2 == 0) {
		return fmt.Errorf("bandit: cost weights %+v invalid", o.Weights)
	}
	if o.MaxCost == 0 {
		o.MaxCost = 2 * core.DefaultNormalization(o.Weights).Cost.Center
	}
	if o.MaxCost <= 0 {
		return fmt.Errorf("bandit: MaxCost %v must be positive", o.MaxCost)
	}
	if o.Hidden == nil {
		o.Hidden = []int{64, 64}
	}
	if o.ActorLR == 0 {
		o.ActorLR = 1e-3
	}
	if o.CriticLR == 0 {
		o.CriticLR = 1e-3
	}
	if o.BufferSize == 0 {
		o.BufferSize = 4096
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.BufferSize < o.BatchSize {
		return fmt.Errorf("bandit: buffer %d smaller than batch %d", o.BufferSize, o.BatchSize)
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = 0.35
	}
	if o.NoiseDecay == 0 {
		o.NoiseDecay = 0.999
	}
	if o.NoiseMin == 0 {
		o.NoiseMin = 0.02
	}
	if o.NoiseStd < 0 || o.NoiseDecay <= 0 || o.NoiseDecay > 1 || o.NoiseMin < 0 {
		return fmt.Errorf("bandit: invalid exploration noise parameters")
	}
	if o.UpdatesPerStep == 0 {
		o.UpdatesPerStep = 4
	}
	if o.UpdatesPerStep < 0 {
		return fmt.Errorf("bandit: negative UpdatesPerStep")
	}
	return nil
}

// sample is one replay-buffer entry.
type sample struct {
	ctx    []float64
	action []float64
	cost   float64 // normalized DDPG cost
}

// DDPG is the deep-deterministic-policy-gradient baseline adapted to the
// contextual bandit problem (§6.5): the critic regresses the immediate
// "DDPG cost" — eq. 1 when the constraints hold, MaxCost otherwise —
// instead of a bootstrapped Q value, and the actor follows the critic's
// action gradient through a sigmoid head.
type DDPG struct {
	opts   DDPGOptions
	actor  *nn.Net
	critic *nn.Net

	actorOpt, criticOpt *nn.Adam
	buf                 []sample
	bufNext             int
	bufFull             bool
	rng                 *rand.Rand
	noise               float64
	costScale           float64
}

// NewDDPG builds the baseline.
func NewDDPG(opts DDPGOptions) (*DDPG, error) {
	if err := opts.applyDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	actorSizes := append([]int{core.ContextDims}, opts.Hidden...)
	actorSizes = append(actorSizes, core.ControlDims)
	actor, err := nn.NewNet(actorSizes, nn.ReLU, nn.Sigmoid, rng)
	if err != nil {
		return nil, err
	}
	criticSizes := append([]int{core.ContextDims + core.ControlDims}, opts.Hidden...)
	criticSizes = append(criticSizes, 1)
	critic, err := nn.NewNet(criticSizes, nn.ReLU, nn.Linear, rng)
	if err != nil {
		return nil, err
	}
	actorOpt, err := nn.NewAdam(opts.ActorLR)
	if err != nil {
		return nil, err
	}
	criticOpt, err := nn.NewAdam(opts.CriticLR)
	if err != nil {
		return nil, err
	}
	return &DDPG{
		opts:      opts,
		actor:     actor,
		critic:    critic,
		actorOpt:  actorOpt,
		criticOpt: criticOpt,
		buf:       make([]sample, opts.BufferSize),
		rng:       rng,
		noise:     opts.NoiseStd,
		costScale: opts.MaxCost,
	}, nil
}

// SetConstraints updates the constraint set used to compute the DDPG cost.
// Unlike EdgeBOL, the parametric critic must relearn the shifted cost
// surface from new experience — the weakness Fig. 14 exposes.
func (d *DDPG) SetConstraints(c core.Constraints) error {
	if err := c.Validate(); err != nil {
		return err
	}
	d.opts.Constraints = c
	return nil
}

// actionToControl maps the sigmoid outputs onto the control grid.
func (d *DDPG) actionToControl(a []float64) core.Control {
	return d.opts.Grid.Nearest(core.Control{
		Resolution: a[0],
		Airtime:    a[1],
		GPUSpeed:   a[2],
		MCS:        a[3],
	})
}

// Select implements Policy: actor output plus decaying Gaussian
// exploration noise, snapped to the grid.
func (d *DDPG) Select(ctx core.Context) core.Control {
	out := d.actor.Forward(core.ContextFeatures(ctx))
	a := make([]float64, len(out))
	for i, v := range out {
		a[i] = clamp01(v + d.rng.NormFloat64()*d.noise)
	}
	if d.noise > d.opts.NoiseMin {
		d.noise *= d.opts.NoiseDecay
	}
	return d.actionToControl(a)
}

// Observe implements Policy: store the transition and run minibatch
// updates of critic and actor.
func (d *DDPG) Observe(ctx core.Context, x core.Control, k core.KPIs) {
	cost := d.opts.Weights.Cost(k)
	if !d.opts.Constraints.Satisfied(k) {
		cost = d.opts.MaxCost
	}
	d.buf[d.bufNext] = sample{
		ctx:    core.ContextFeatures(ctx),
		action: core.ControlFeatures(x),
		cost:   cost / d.costScale,
	}
	d.bufNext++
	if d.bufNext == len(d.buf) {
		d.bufNext = 0
		d.bufFull = true
	}
	n := d.bufLen()
	if n < d.opts.BatchSize {
		return
	}
	for u := 0; u < d.opts.UpdatesPerStep; u++ {
		d.update()
	}
}

func (d *DDPG) bufLen() int {
	if d.bufFull {
		return len(d.buf)
	}
	return d.bufNext
}

// update runs one critic regression step and one deterministic policy
// gradient step on a random minibatch.
func (d *DDPG) update() {
	batch := d.opts.BatchSize
	n := d.bufLen()
	in := make([]float64, core.ContextDims+core.ControlDims)

	// Critic: minimize ½(Q(c,a) − cost)² over the batch.
	d.critic.ZeroGrad()
	for b := 0; b < batch; b++ {
		s := d.buf[d.rng.Intn(n)]
		copy(in, s.ctx)
		copy(in[core.ContextDims:], s.action)
		q := d.critic.Forward(in)[0]
		d.critic.Backward([]float64{(q - s.cost) / float64(batch)})
	}
	d.criticOpt.Step(d.critic)

	// Actor: descend the critic's action gradient at the actor's action.
	d.actor.ZeroGrad()
	for b := 0; b < batch; b++ {
		s := d.buf[d.rng.Intn(n)]
		a := d.actor.Forward(s.ctx)
		copy(in, s.ctx)
		copy(in[core.ContextDims:], a)
		d.critic.Forward(in)
		d.critic.ZeroGrad()
		dIn := d.critic.Backward([]float64{1.0 / float64(batch)})
		// Re-run the actor forward pass (the critic pass reused nothing of
		// it) and push dQ/da through it.
		d.actor.Forward(s.ctx)
		d.actor.Backward(dIn[core.ContextDims:])
	}
	d.critic.ZeroGrad() // discard gradients accumulated during the actor pass
	d.actorOpt.Step(d.actor)
}

// Noise returns the current exploration noise level (for diagnostics).
func (d *DDPG) Noise() float64 { return d.noise }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

var _ Policy = (*DDPG)(nil)
