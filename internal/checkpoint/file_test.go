package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("read back %q, %v", b, err)
	}
	// No stray temp files survive a successful write.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("stray temp file %s", e.Name())
		}
	}
}

func TestCommitAndLatest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts") // Commit must create it
	p1, err := Commit(dir, "ckpt-00000010", []byte("ten"))
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	p2, err := Commit(dir, "ckpt-00000020", []byte("twenty"))
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if filepath.Base(p1) != "ckpt-00000010"+FileExt || filepath.Base(p2) != "ckpt-00000020"+FileExt {
		t.Fatalf("paths %q, %q", p1, p2)
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if got != p2 {
		t.Fatalf("Latest = %q, want %q", got, p2)
	}
	b, _ := os.ReadFile(got)
	if !bytes.Equal(b, []byte("twenty")) {
		t.Fatalf("latest contents %q", b)
	}
}

func TestCommitRejectsPathyNames(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"", "a/b", "../escape"} {
		if _, err := Commit(dir, name, nil); !errors.Is(err, ErrMalformed) {
			t.Errorf("name %q: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestLatestFallsBackWithoutPointer(t *testing.T) {
	dir := t.TempDir()
	// A directory populated by hand: data files but no LATEST pointer.
	for _, name := range []string{"ckpt-00000005" + FileExt, "ckpt-00000030" + FileExt} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(name), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if filepath.Base(got) != "ckpt-00000030"+FileExt {
		t.Fatalf("Latest = %q", got)
	}
}

func TestLatestDanglingPointerFallsBack(t *testing.T) {
	dir := t.TempDir()
	if _, err := Commit(dir, "ckpt-00000001", []byte("one")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that committed data but left LATEST naming a file
	// that was later removed.
	if err := os.WriteFile(filepath.Join(dir, latestName), []byte("gone.ckpt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if filepath.Base(got) != "ckpt-00000001"+FileExt {
		t.Fatalf("Latest = %q", got)
	}
}

func TestLatestEmpty(t *testing.T) {
	if _, err := Latest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	if _, err := Latest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}
