package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileExt is the extension of checkpoint data files written by Commit.
const FileExt = ".ckpt"

// latestName is the crash-safe pointer file naming the newest committed
// checkpoint in a directory.
const latestName = "LATEST"

// ErrNoCheckpoint is returned by Latest when a directory holds no committed
// checkpoint.
var ErrNoCheckpoint = errors.New("checkpoint: no checkpoint in directory")

// WriteFileAtomic writes data to path atomically: the bytes land in a
// temporary file in the same directory, are synced, and are renamed over
// path. A crash mid-write leaves either the old file or a stray *.tmp,
// never a torn target.
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		_ = tmp.Close()        // already failing; the remove is the cleanup
		_ = os.Remove(tmpName) // best effort: leaves only a stray .tmp behind
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("checkpoint: write %s: %w", tmpName, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: sync %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName) // close failed; drop the partial temp
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName) // rename failed; drop the orphaned temp
		return fmt.Errorf("checkpoint: rename %s: %w", path, err)
	}
	return nil
}

// Commit atomically writes a checkpoint file named name+FileExt in dir and
// then atomically repoints the LATEST file at it. The two-step order is the
// crash-safety argument: the data file is complete and durable before the
// pointer moves, so LATEST always names a fully written checkpoint — a
// crash between the steps merely leaves LATEST on the previous one.
func Commit(dir, name string, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: mkdir %s: %w", dir, err)
	}
	if name == "" || name != filepath.Base(name) {
		return "", fmt.Errorf("%w: checkpoint name %q must be a bare file name", ErrMalformed, name)
	}
	file := name + FileExt
	path := filepath.Join(dir, file)
	if err := WriteFileAtomic(path, data); err != nil {
		return "", err
	}
	if err := WriteFileAtomic(filepath.Join(dir, latestName), []byte(file+"\n")); err != nil {
		return "", err
	}
	return path, nil
}

// Latest returns the path of the newest committed checkpoint in dir: the
// file the LATEST pointer names, falling back to the lexically greatest
// *.ckpt file when the pointer is missing or dangling (e.g. a directory
// populated by hand, or a crash that beat the very first pointer write).
func Latest(dir string) (string, error) {
	if b, err := os.ReadFile(filepath.Join(dir, latestName)); err == nil {
		name := strings.TrimSpace(string(b))
		if name != "" && name == filepath.Base(name) {
			path := filepath.Join(dir, name)
			if _, err := os.Stat(path); err == nil {
				return path, nil
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", ErrNoCheckpoint
		}
		return "", fmt.Errorf("checkpoint: read dir %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), FileExt) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", ErrNoCheckpoint
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}
