package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func sampleSections() []Section {
	return []Section{
		{Tag: "META", Data: []byte{1, 2, 3, 4, 5}},
		{Tag: "GP00", Data: bytes.Repeat([]byte{0xAB}, 100)},
		{Tag: "safe", Data: []byte{}},
	}
}

func encode(t *testing.T, sections []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, sections); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSections()
	data := encode(t, want)
	arch, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if arch.Version != Version {
		t.Fatalf("version %d, want %d", arch.Version, Version)
	}
	if len(arch.Sections) != len(want) {
		t.Fatalf("%d sections, want %d", len(arch.Sections), len(want))
	}
	for i, s := range arch.Sections {
		if s.Tag != want[i].Tag || !bytes.Equal(s.Data, want[i].Data) {
			t.Errorf("section %d = %q/%d bytes, want %q/%d bytes", i, s.Tag, len(s.Data), want[i].Tag, len(want[i].Data))
		}
	}
	if got := arch.Find("GP00"); got == nil || len(got.Data) != 100 {
		t.Errorf("Find(GP00) = %v", got)
	}
	if got := arch.Find("none"); got != nil {
		t.Errorf("Find(none) = %v, want nil", got)
	}
}

func TestCriticality(t *testing.T) {
	if !(Section{Tag: "META"}).Critical() {
		t.Error("META should be critical")
	}
	if (Section{Tag: "safe"}).Critical() {
		t.Error("safe should be ancillary")
	}
}

func TestEncodeRejectsBadTags(t *testing.T) {
	for _, tag := range []string{"", "ab", "toolong", "ta g", "t\x00ag"} {
		var buf bytes.Buffer
		if err := Encode(&buf, []Section{{Tag: tag}}); !errors.Is(err, ErrMalformed) {
			t.Errorf("tag %q: err = %v, want ErrMalformed", tag, err)
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	data := encode(t, sampleSections())
	data[0] ^= 0xFF
	if _, err := DecodeBytes(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeVersionBump(t *testing.T) {
	data := encode(t, sampleSections())
	data[8] = 99
	_, err := DecodeBytes(data)
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Found != 99 {
		t.Fatalf("err = %v, want VersionError{99}", err)
	}
	if !strings.Contains(ve.Error(), "99") {
		t.Errorf("message %q should name the found version", ve.Error())
	}
}

// TestDecodeAcceptsSupportedVersionRange: the reader accepts every
// container version in [MinVersion, Version] — v1 archives written before
// the sparse-engine format extension must keep decoding — and rejects
// versions on either side of the range.
func TestDecodeAcceptsSupportedVersionRange(t *testing.T) {
	want := sampleSections()
	for v := MinVersion; v <= Version; v++ {
		data := encode(t, want)
		data[8] = byte(v) // version is a little-endian u16 at offset 8
		data[9] = byte(v >> 8)
		arch, err := DecodeBytes(data)
		if err != nil {
			t.Fatalf("version %d rejected: %v", v, err)
		}
		if int(arch.Version) != v || len(arch.Sections) != len(want) {
			t.Fatalf("version %d: decoded version %d with %d sections", v, arch.Version, len(arch.Sections))
		}
	}
	data := encode(t, want)
	data[8] = byte(MinVersion - 1)
	data[9] = 0
	var ve *VersionError
	if _, err := DecodeBytes(data); !errors.As(err, &ve) || ve.Found != MinVersion-1 {
		t.Fatalf("version %d accepted: %v", MinVersion-1, err)
	}
}

func TestDecodeTruncations(t *testing.T) {
	data := encode(t, sampleSections())
	// Every strict prefix must fail loudly — most as ErrTruncated, but a
	// cut that lands exactly after a section boundary decodes the header
	// count as unsatisfiable (ErrMalformed). None may succeed or panic.
	for cut := 0; cut < len(data); cut++ {
		_, err := DecodeBytes(data[:cut])
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded successfully", cut)
		}
	}
}

func TestDecodeBitFlips(t *testing.T) {
	data := encode(t, sampleSections())
	// Flipping any byte after the header must fail (payloads and lengths
	// are covered by CRC or structure); header flips fail via magic,
	// version, or count checks — a flags flip alone is tolerated.
	for i := headerLen; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := DecodeBytes(mut); err == nil {
			t.Fatalf("flip at byte %d decoded successfully", i)
		}
	}
}

func TestDecodeChecksumMismatch(t *testing.T) {
	data := encode(t, sampleSections())
	// Flip one payload byte of the first section (header + section header).
	data[headerLen+sectionHeaderLen] ^= 0x80
	if _, err := DecodeBytes(data); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	data := encode(t, sampleSections())
	data = append(data, 0xEE)
	if _, err := DecodeBytes(data); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestDecodeAbsurdSectionCount(t *testing.T) {
	data := encode(t, nil)
	data[12] = 0xFF
	data[13] = 0xFF
	if _, err := DecodeBytes(data); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(1 << 60)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(1))
	e.String("matern32")
	e.F64s([]float64{1, 2.5, -3})
	e.F64s(nil)

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Errorf("U64 = %x", v)
	}
	if v := d.F64(); math.Signbit(v) == false || v != 0 {
		t.Errorf("F64 = %v, want -0", v)
	}
	if v := d.F64(); !math.IsInf(v, 1) {
		t.Errorf("F64 = %v, want +Inf", v)
	}
	if v := d.String(); v != "matern32" {
		t.Errorf("String = %q", v)
	}
	if v := d.F64s(); len(v) != 3 || v[0] != 1 || v[1] != 2.5 || v[2] != -3 {
		t.Errorf("F64s = %v", v)
	}
	if v := d.F64s(); len(v) != 0 {
		t.Errorf("empty F64s = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
	// Every later read must return zero values without panicking.
	if v := d.U8(); v != 0 {
		t.Errorf("post-failure U8 = %d", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("post-failure String = %q", v)
	}
	if v := d.F64s(); v != nil {
		t.Errorf("post-failure F64s = %v", v)
	}
	if err := d.Done(); !errors.Is(err, ErrTruncated) {
		t.Errorf("Done = %v, want ErrTruncated", err)
	}
}

func TestDecoderBadBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	_ = d.Bool()
	if !errors.Is(d.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", d.Err())
	}
}

func TestDecoderHostileF64sCount(t *testing.T) {
	var e Encoder
	e.U64(1 << 62) // declares 2^62 floats
	d := NewDecoder(e.Bytes())
	if v := d.F64s(); v != nil {
		t.Fatalf("F64s = %d floats, want nil", len(v))
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
}

func TestDecoderDoneRejectsUnreadBytes(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	_ = d.U8()
	if err := d.Done(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Done = %v, want ErrMalformed", err)
	}
}
