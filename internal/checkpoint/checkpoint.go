// Package checkpoint implements the versioned, self-describing binary
// container used to snapshot and warm-restart EdgeBOL agent state across
// controller failovers and migrations (ROADMAP item 5).
//
// A checkpoint is a header followed by a list of tagged sections:
//
//	header:  magic [8]byte | version uint16 | flags uint16 | count uint32
//	section: tag [4]byte | length uint64 | payload | crc uint32
//
// All integers are little-endian; the CRC is IEEE CRC-32 over tag plus
// payload, so both a flipped payload bit and a mislabeled section fail
// verification. Tags follow the PNG convention: a tag whose first byte is
// an ASCII uppercase letter is critical — a reader that does not recognize
// it must reject the checkpoint — while a lowercase first byte marks an
// ancillary section that unknown readers skip. That is the format's
// forward-compatibility rule: additive state travels in new ancillary
// sections under the same version, and only layout changes to existing
// sections bump Version.
//
// The package knows nothing about agents or GPs; it only frames, sums, and
// versions byte sections. Layer-specific payload layouts live with their
// owners (internal/core, internal/gp) on top of Encoder/Decoder.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies an EdgeBOL checkpoint stream.
const Magic = "EBOLCKPT"

// Version is the container format version this package writes. Version 2
// extended the core META and GP section layouts with the GP engine
// identity and the sparse-engine state (inducing set, moment blocks, dual
// factors). Version 3 widened the core META layout to the split-inference
// control dimension (five-component safe seeds, per-dimension grid level
// counts) and added the acquisition mode.
const Version = 3

// MinVersion is the oldest container version this reader still accepts.
// Version-1 checkpoints predate the sparse engine; their sections decode
// with the engine defaulted to exact.
const MinVersion = 1

// Container-level decode errors. Decode wraps them with positional detail;
// match with errors.Is.
var (
	// ErrBadMagic is returned when the stream does not start with Magic.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrTruncated is returned when the stream ends inside a header,
	// section, or field.
	ErrTruncated = errors.New("checkpoint: truncated input")
	// ErrChecksum is returned when a section's CRC does not match its
	// contents.
	ErrChecksum = errors.New("checkpoint: section checksum mismatch")
	// ErrMalformed is returned for structural violations that are neither
	// truncation nor checksum failures (bad tag, absurd counts).
	ErrMalformed = errors.New("checkpoint: malformed input")
)

// VersionError is returned when the container version is not supported by
// this reader.
type VersionError struct {
	Found uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("checkpoint: unsupported format version %d (reader supports %d through %d)", e.Found, MinVersion, Version)
}

// Section is one tagged payload of a checkpoint.
type Section struct {
	// Tag is exactly 4 bytes of printable ASCII. An uppercase first byte
	// marks the section critical (see the package comment).
	Tag string
	// Data is the section payload.
	Data []byte
}

// Critical reports whether the section must be understood by a reader.
func (s Section) Critical() bool {
	return len(s.Tag) > 0 && s.Tag[0] >= 'A' && s.Tag[0] <= 'Z'
}

func validTag(tag string) bool {
	if len(tag) != 4 {
		return false
	}
	for i := 0; i < len(tag); i++ {
		if tag[i] < '!' || tag[i] > '~' {
			return false
		}
	}
	return true
}

// Archive is a fully decoded checkpoint: the header version plus every
// section in stream order.
type Archive struct {
	Version  uint16
	Sections []Section
}

// Find returns the first section with the given tag, or nil.
func (a *Archive) Find(tag string) *Section {
	for i := range a.Sections {
		if a.Sections[i].Tag == tag {
			return &a.Sections[i]
		}
	}
	return nil
}

const headerLen = 8 + 2 + 2 + 4
const sectionHeaderLen = 4 + 8
const sectionTrailerLen = 4

// Encode writes a checkpoint containing the given sections at the current
// format version.
func Encode(w io.Writer, sections []Section) error {
	var hdr [headerLen]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:10], Version)
	binary.LittleEndian.PutUint16(hdr[10:12], 0)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(sections)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	for _, s := range sections {
		if !validTag(s.Tag) {
			return fmt.Errorf("%w: invalid section tag %q", ErrMalformed, s.Tag)
		}
		var sh [sectionHeaderLen]byte
		copy(sh[:4], s.Tag)
		binary.LittleEndian.PutUint64(sh[4:12], uint64(len(s.Data)))
		if _, err := w.Write(sh[:]); err != nil {
			return fmt.Errorf("checkpoint: write section %s header: %w", s.Tag, err)
		}
		if _, err := w.Write(s.Data); err != nil {
			return fmt.Errorf("checkpoint: write section %s payload: %w", s.Tag, err)
		}
		crc := crc32.ChecksumIEEE(sh[:4])
		crc = crc32.Update(crc, crc32.IEEETable, s.Data)
		var tr [sectionTrailerLen]byte
		binary.LittleEndian.PutUint32(tr[:], crc)
		if _, err := w.Write(tr[:]); err != nil {
			return fmt.Errorf("checkpoint: write section %s checksum: %w", s.Tag, err)
		}
	}
	return nil
}

// Decode reads a whole checkpoint stream and verifies every section.
func Decode(r io.Reader) (*Archive, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return DecodeBytes(data)
}

// DecodeBytes is Decode over an in-memory stream. Every structural check is
// bounds-based — a malformed length can never trigger an allocation larger
// than the input itself, so hostile inputs fail fast instead of exhausting
// memory.
func DecodeBytes(data []byte) (*Archive, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d-byte input below the %d-byte header", ErrTruncated, len(data), headerLen)
	}
	if string(data[:8]) != Magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint16(data[8:10])
	if version < MinVersion || version > Version {
		return nil, &VersionError{Found: version}
	}
	count := binary.LittleEndian.Uint32(data[12:16])
	rest := data[headerLen:]
	if uint64(count) > uint64(len(rest))/(sectionHeaderLen+sectionTrailerLen) {
		return nil, fmt.Errorf("%w: %d sections cannot fit in %d remaining bytes", ErrMalformed, count, len(rest))
	}
	arch := &Archive{Version: version, Sections: make([]Section, 0, count)}
	for i := uint32(0); i < count; i++ {
		if len(rest) < sectionHeaderLen {
			return nil, fmt.Errorf("%w: section %d header", ErrTruncated, i)
		}
		tag := string(rest[:4])
		if !validTag(tag) {
			return nil, fmt.Errorf("%w: section %d tag %q", ErrMalformed, i, tag)
		}
		length := binary.LittleEndian.Uint64(rest[4:12])
		rest = rest[sectionHeaderLen:]
		if length > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: section %s declares %d payload bytes, %d remain", ErrTruncated, tag, length, len(rest))
		}
		payload := rest[:length]
		rest = rest[length:]
		if len(rest) < sectionTrailerLen {
			return nil, fmt.Errorf("%w: section %s checksum", ErrTruncated, tag)
		}
		want := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[sectionTrailerLen:]
		crc := crc32.ChecksumIEEE([]byte(tag))
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			return nil, fmt.Errorf("%w: section %s", ErrChecksum, tag)
		}
		arch.Sections = append(arch.Sections, Section{Tag: tag, Data: append([]byte(nil), payload...)})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last section", ErrMalformed, len(rest))
	}
	return arch, nil
}

// Encoder builds a section payload from fixed-width little-endian fields.
// The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// F64 appends an IEEE-754 double by its bit pattern, so every value —
// including NaNs and signed zeros — round-trips bitwise.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a uint32 length prefix and the raw bytes.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// F64s appends a uint64 count prefix and every element as F64.
func (e *Encoder) F64s(vs []float64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// Decoder reads fields written by Encoder. It is sticky: after the first
// failure every read returns a zero value and Err reports the failure, so
// decode paths read a whole layout and check once. All reads are
// bounds-checked; a Decoder never panics on malformed input.
type Decoder struct {
	b    []byte
	off  int
	fail error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.fail }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// Done returns Err, upgraded to a trailing-garbage error when the payload
// was not fully consumed — a length-compatible but overlong section is as
// malformed as a short one.
func (d *Decoder) Done() error {
	if d.fail != nil {
		return d.fail
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d unread payload bytes", ErrMalformed, d.Remaining())
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.fail != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte, requiring 0 or 1.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if d.fail == nil && v > 1 {
		d.fail = fmt.Errorf("%w: boolean byte %d", ErrMalformed, v)
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads an IEEE-754 double by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a uint32-length-prefixed string.
func (d *Decoder) String() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a uint64-count-prefixed float slice. The count is validated
// against the remaining payload before any allocation.
func (d *Decoder) F64s() []float64 {
	n := d.U64()
	if d.fail != nil {
		return nil
	}
	if n > uint64(d.Remaining())/8 {
		d.fail = fmt.Errorf("%w: %d floats declared, %d bytes remain", ErrTruncated, n, d.Remaining())
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}
