//go:build race

package fleet

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
