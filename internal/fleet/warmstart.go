package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// WarmStartPolicy governs cross-cell knowledge transfer: how many
// context-similar neighbors donate observation history to a joining cell,
// and how large the pooled history may grow. The zero value disables warm
// starts.
type WarmStartPolicy struct {
	// Neighbors is the number of donor cells K. Zero disables warm starts;
	// negative is invalid. When fewer cells exist, all of them donate.
	Neighbors int
	// MaxPool caps the pooled observation count. Zero means "the target
	// agent's own retention bound" (core.Options.MaxObservations; unlimited
	// when that is zero too); negative is invalid.
	MaxPool int
}

// Validate reports whether the policy is usable; failures are typed
// *OptionError values naming Options.WarmStart.
func (p WarmStartPolicy) Validate() error {
	if p.Neighbors < 0 {
		return &OptionError{Field: "WarmStart", Reason: fmt.Sprintf("Neighbors %d is negative", p.Neighbors)}
	}
	if p.MaxPool < 0 {
		return &OptionError{Field: "WarmStart", Reason: fmt.Sprintf("MaxPool %d is negative", p.MaxPool)}
	}
	return nil
}

// Donor is one candidate cell for warm-starting: its current slice
// context and its exported observation history (core.Agent.History).
type Donor struct {
	Context core.Context
	History []core.HistorySample
}

// WarmStart seeds a joining cell's agent from its neighbors' observation
// histories. Donor selection is by context similarity: the K =
// policy.Neighbors donors closest to the target context (Euclidean
// distance over the normalized context features, ties broken by donor
// index) are pooled, nearest first. The pool is capped — by policy.MaxPool
// or the agent's own MaxObservations — keeping each donor's most recent
// samples, and replayed via Agent.SeedHistory, so the warm-started agent
// is bitwise identical to a fresh agent that observed the pooled history
// itself.
//
// Returns the number of samples seeded. Zero donors with data, or a
// disabled policy (Neighbors == 0), is a no-op, not an error: a cold
// start is always a valid fallback.
func WarmStart(a *core.Agent, target core.Context, donors []Donor, policy WarmStartPolicy) (int, error) {
	if err := policy.Validate(); err != nil {
		return 0, err
	}
	if policy.Neighbors == 0 || len(donors) == 0 {
		return 0, nil
	}
	selected := selectDonors(target, donors, policy.Neighbors)
	maxPool := policy.MaxPool
	if maxPool == 0 {
		maxPool = a.MaxObservations()
	}
	pool := poolHistories(selected, donors, maxPool)
	if len(pool) == 0 {
		return 0, nil
	}
	if err := a.SeedHistory(pool); err != nil {
		return 0, err
	}
	return len(pool), nil
}

// selectDonors returns the indices of the k donors nearest to the target
// context, nearest first, ties broken by the lower donor index so the
// selection is deterministic for any input order of equal distances.
func selectDonors(target core.Context, donors []Donor, k int) []int {
	tf := core.ContextFeatures(target)
	type ranked struct {
		idx  int
		dist float64
	}
	rs := make([]ranked, len(donors))
	for i, d := range donors {
		df := core.ContextFeatures(d.Context)
		var sum float64
		for j := range tf {
			delta := tf[j] - df[j]
			sum += delta * delta
		}
		rs[i] = ranked{idx: i, dist: math.Sqrt(sum)}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].dist != rs[b].dist { //edgebol:allow floateq -- exact ties fall through to the index tie-break
			return rs[a].dist < rs[b].dist
		}
		return rs[a].idx < rs[b].idx
	})
	if k > len(rs) {
		k = len(rs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = rs[i].idx
	}
	return out
}

// poolHistories concatenates the selected donors' histories nearest-donor
// first, each donor's samples in their lived (chronological) order. When
// the cap binds, nearer donors win budget over farther ones, and within a
// donor its most recent samples win over older ones. maxPool <= 0 means
// uncapped.
func poolHistories(selected []int, donors []Donor, maxPool int) []core.HistorySample {
	var pool []core.HistorySample
	remaining := maxPool
	for _, idx := range selected {
		h := donors[idx].History
		if maxPool > 0 {
			if remaining <= 0 {
				break
			}
			if len(h) > remaining {
				h = h[len(h)-remaining:]
			}
			remaining -= len(h)
		}
		pool = append(pool, h...)
	}
	return pool
}
