package fleet

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/multislice"
	"repro/internal/oran"
	"repro/internal/ran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// testSlice returns a small slice template for fleet tests.
func testSlice(users ...ran.User) multislice.SliceConfig {
	if len(users) == 0 {
		users = []ran.User{{SNRdB: 35}}
	}
	return multislice.SliceConfig{
		Name:          "cell",
		AirtimeBudget: 0.9,
		GPUShare:      0.9,
		Users:         users,
		Weights:       core.CostWeights{Delta1: 1, Delta2: 1},
		Constraints:   core.Constraints{MaxDelay: 0.4, MinMAP: 0.5},
	}
}

// quickBase returns a substrate sized for CI: a small per-period
// evaluation batch keeps each Measure cheap without changing the shape of
// the surfaces the agents learn.
func quickBase() testbed.Config {
	cfg := testbed.DefaultConfig()
	cfg.ImagesPerMeasurement = 20
	return cfg
}

func testOptions(cells int) Options {
	return Options{
		Cells:    Cells(cells, testSlice()),
		Base:     quickBase(),
		Agent:    core.Options{Grid: core.GridSpec{Levels: 3, MinResolution: 0.1, MinAirtime: 0.1}},
		BaseSeed: 42,
	}
}

func TestOptionsValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"no cells", func(o *Options) { o.Cells = nil }, "Cells"},
		{"unnamed cell", func(o *Options) { o.Cells[0].Name = "" }, "Cells"},
		{"duplicate name", func(o *Options) { o.Cells[1].Name = o.Cells[0].Name }, "Cells"},
		{"bad slice", func(o *Options) { o.Cells[0].Slice.GPUShare = 2 }, "Cells"},
		{"negative workers", func(o *Options) { o.Workers = -1 }, "Workers"},
		{"fixed metrics port", func(o *Options) { o.Deploy.MetricsAddr = "127.0.0.1:9090" }, "Deploy"},
		{"negative neighbors", func(o *Options) { o.WarmStart.Neighbors = -1 }, "WarmStart"},
		{"negative pool", func(o *Options) { o.WarmStart.MaxPool = -1 }, "WarmStart"},
	}
	for _, tc := range cases {
		opts := testOptions(2)
		tc.mut(&opts)
		err := opts.Validate()
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: got %v, want *OptionError", tc.name, err)
		}
		if oe.Field != tc.field {
			t.Fatalf("%s: error names field %q, want %q", tc.name, oe.Field, tc.field)
		}
	}
	opts := testOptions(2)
	opts.Deploy.MetricsAddr = "127.0.0.1:0" // ephemeral per-cell ports are fine
	if err := opts.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

// TestFleetDeterministicAcrossPoolSizes is the scheduling-independence
// contract: the same options and seed produce bitwise-identical per-cell
// trajectories whether periods run on one worker or many. Run under
// -race this also exercises the worker pool for data races.
func TestFleetDeterministicAcrossPoolSizes(t *testing.T) {
	run := func(workers int) [][]CellResult {
		opts := testOptions(4)
		opts.Workers = workers
		f, err := New(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		var all [][]CellResult
		for p := 0; p < 4; p++ {
			res, err := f.Step()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, res)
		}
		return all
	}
	serial := run(1)
	pooled := run(4)
	for p := range serial {
		for i := range serial[p] {
			a, b := serial[p][i], pooled[p][i]
			if a.Control != b.Control {
				t.Fatalf("period %d cell %d: selections diverge across pool sizes: %+v vs %+v", p, i, a.Control, b.Control)
			}
			if a.KPIs != b.KPIs || a.Cost != b.Cost { //edgebol:allow floateq -- determinism means bitwise equality
				t.Fatalf("period %d cell %d: observations diverge across pool sizes", p, i)
			}
		}
	}
}

// TestFleetPerCellEndpoints checks each cell really owns its own control
// plane: distinct E2 endpoints, distinct testbeds, and per-cell contexts
// served over O1.
func TestFleetPerCellEndpoints(t *testing.T) {
	f, err := New(context.Background(), testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	seen := make(map[string]bool)
	for _, c := range f.Cells() {
		addr := c.Deployment.E2Node.Addr()
		if addr == "" || seen[addr] {
			t.Fatalf("cell %s E2 endpoint %q not unique", c.Name, addr)
		}
		seen[addr] = true
		if got := c.Deployment.Env().Context(); got != c.Env.Context() {
			t.Fatalf("cell %s context over O1 %+v != substrate context %+v", c.Name, got, c.Env.Context())
		}
	}
}

// TestFleetWarmStartAddCell grows a fleet by one cell and checks the
// joiner is seeded from its neighbors' histories, capped by policy.
func TestFleetWarmStartAddCell(t *testing.T) {
	opts := testOptions(3)
	opts.WarmStart = WarmStartPolicy{Neighbors: 2, MaxPool: 9}
	f, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	const lived = 6
	for p := 0; p < lived; p++ {
		if _, err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	joiner := CellConfig{Name: "joiner", Slice: testSlice()}
	cell, seeded, err := f.AddCell(context.Background(), joiner)
	if err != nil {
		t.Fatal(err)
	}
	// Two donors with 6 samples each, capped at 9.
	if seeded != 9 {
		t.Fatalf("seeded %d samples, want 9", seeded)
	}
	if cell.Agent.Observations() != seeded {
		t.Fatalf("joiner period counter %d, want %d", cell.Agent.Observations(), seeded)
	}
	if len(f.Cells()) != 4 {
		t.Fatalf("fleet has %d cells after AddCell, want 4", len(f.Cells()))
	}
	// The grown fleet keeps stepping, joiner included.
	res, err := f.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 || res[3].Cell != "joiner" {
		t.Fatalf("post-join results %+v missing the joiner", res)
	}
	// Duplicate names are rejected with a typed error.
	if _, _, err := f.AddCell(context.Background(), joiner); err == nil {
		t.Fatal("duplicate cell name accepted")
	}
}

// TestSelectDonors pins the similarity ranking: nearest contexts first,
// ties broken by donor index.
func TestSelectDonors(t *testing.T) {
	target := core.Context{NumUsers: 4, MeanCQI: 10, VarCQI: 1}
	donors := []Donor{
		{Context: core.Context{NumUsers: 20, MeanCQI: 3}},            // far
		{Context: core.Context{NumUsers: 4, MeanCQI: 10, VarCQI: 1}}, // exact
		{Context: core.Context{NumUsers: 5, MeanCQI: 10, VarCQI: 1}}, // near
		{Context: core.Context{NumUsers: 4, MeanCQI: 10, VarCQI: 1}}, // exact tie with 1
	}
	got := selectDonors(target, donors, 3)
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selectDonors = %v, want %v", got, want)
		}
	}
}

// TestPoolHistoriesCap pins the budget split: nearer donors win pool
// budget, and within a donor the most recent samples win.
func TestPoolHistoriesCap(t *testing.T) {
	mk := func(vals ...float64) []core.HistorySample {
		out := make([]core.HistorySample, len(vals))
		for i, v := range vals {
			out[i] = core.HistorySample{Cost: v}
		}
		return out
	}
	donors := []Donor{
		{History: mk(1, 2, 3)},
		{History: mk(4, 5, 6)},
	}
	pool := poolHistories([]int{0, 1}, donors, 4)
	want := []float64{1, 2, 3, 6} // donor 0 whole, donor 1's most recent
	if len(pool) != len(want) {
		t.Fatalf("pool size %d, want %d", len(pool), len(want))
	}
	for i := range want {
		if pool[i].Cost != want[i] { //edgebol:allow floateq -- sentinel values pass through untouched
			t.Fatalf("pool[%d].Cost = %v, want %v", i, pool[i].Cost, want[i])
		}
	}
	if got := poolHistories([]int{0, 1}, donors, 0); len(got) != 6 {
		t.Fatalf("uncapped pool size %d, want 6", len(got))
	}
}

// TestFleetTelemetryRollUps checks the fleet-level aggregates and the
// per-cell labeled series land in the shared registry.
func TestFleetTelemetryRollUps(t *testing.T) {
	reg := telemetry.NewRegistry()
	opts := testOptions(2)
	opts.Telemetry = reg
	f, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	var wantCost float64
	const periods = 3
	for p := 0; p < periods; p++ {
		res, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			wantCost += r.Cost
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["edgebol_fleet_periods_total"]; got != periods {
		t.Fatalf("fleet periods counter %d, want %d", got, periods)
	}
	if got := snap.Gauges["edgebol_fleet_cells"]; got != 2 {
		t.Fatalf("fleet cells gauge %v, want 2", got)
	}
	if got := snap.Gauges["edgebol_fleet_cost_total"]; got < wantCost-1e-9 || got > wantCost+1e-9 {
		t.Fatalf("fleet cost roll-up %v, want %v", got, wantCost)
	}
	sum := f.Summary()
	if sum.Periods != periods || sum.Cells != 2 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.TotalCost < wantCost-1e-9 || sum.TotalCost > wantCost+1e-9 {
		t.Fatalf("summary cost %v, want %v", sum.TotalCost, wantCost)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, series := range []string{
		"edgebol_fleet_cells 2",
		`edgebol_fleet_cell_cost{cell="cell-000"}`,
		`edgebol_fleet_cell_power_watts{cell="cell-001"}`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("exposition missing %q:\n%s", series, text)
		}
	}
}

// TestFleetCloseIdempotent checks teardown is repeatable and that a
// canceled context tears the whole fleet down.
func TestFleetCloseIdempotent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f, err := New(ctx, testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cancel() // after Close: must not panic or double-close
	for _, c := range f.Cells() {
		<-c.Deployment.Done()
	}
}

// TestFleet256Cells50Periods is the scale acceptance run: 256 cells, each
// with its own agent and control plane, 50 periods on the sparse engine.
// Skipped under -short and -race, where the deliberately large fleet
// would dominate suite wall-clock without adding coverage the smaller
// tests lack.
func TestFleet256Cells50Periods(t *testing.T) {
	if testing.Short() {
		t.Skip("256-cell fleet is a long test")
	}
	if raceEnabled {
		t.Skip("the race detector covers the worker pool via the smaller fleet tests")
	}
	opts := Options{
		Cells: Cells(256, testSlice()),
		Base:  quickBase(),
		Agent: core.Options{
			Grid:           core.GridSpec{Levels: 3, MinResolution: 0.1, MinAirtime: 0.1},
			Engine:         core.EngineSparse,
			InducingPoints: 16,
		},
		Deploy:   oran.DeployOptions{},
		Workers:  8,
		BaseSeed: 7,
	}
	f, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if got := len(f.Cells()); got != 256 {
		t.Fatalf("fleet has %d cells, want 256", got)
	}
	const periods = 50
	for p := 0; p < periods; p++ {
		res, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 256 {
			t.Fatalf("period %d returned %d results", p, len(res))
		}
	}
	sum := f.Summary()
	if sum.Periods != periods {
		t.Fatalf("summary periods %d, want %d", sum.Periods, periods)
	}
	if sum.TotalCost <= 0 || sum.PowerWatts <= 0 {
		t.Fatalf("degenerate aggregates %+v", sum)
	}
	// Every cell really ran on the sparse engine and learned all periods.
	for _, c := range f.Cells() {
		if c.Agent.Observations() != periods {
			t.Fatalf("cell %s observed %d periods, want %d", c.Name, c.Agent.Observations(), periods)
		}
	}
}
