//go:build !race

package fleet

// raceEnabled reports whether the race detector instruments this build;
// the scale test skips itself under -race, where its 5–20× slowdown
// would dominate the suite without adding coverage.
const raceEnabled = false
