package fleet

import (
	"sync"

	"repro/internal/telemetry"
)

// metrics carries the fleet-level roll-ups: aggregates the coordinator
// tracks itself (so Summary works without a registry) mirrored into the
// telemetry registry when one is attached. Per-cell series are labeled
// with the cell name over the same registry the rest of the stack uses,
// so one /metrics endpoint can expose a whole fleet.
//
// All roll-up updates happen serially after each period's worker-pool
// barrier (Fleet.Step), keeping exposition values deterministic for any
// pool size; the mutex only guards against concurrent readers (Summary,
// Snapshot) observing torn aggregates.
type metrics struct {
	mu         sync.Mutex
	cost       float64
	violations int
	power      float64

	reg *telemetry.Registry

	cells       *telemetry.Gauge
	periods     *telemetry.Counter
	costTotal   *telemetry.Gauge
	violTotal   *telemetry.Counter
	powerWatts  *telemetry.Gauge
	warmStarts  *telemetry.Counter
	warmSamples *telemetry.Counter

	cellCost map[string]*telemetry.Gauge
	cellPow  map[string]*telemetry.Gauge
	cellViol map[string]*telemetry.Counter
}

// newMetrics registers the fleet metric families. reg may be nil, in
// which case every handle is a nil no-op and only the local aggregates
// (for Summary) are maintained.
func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		reg:         reg,
		cells:       reg.Gauge("edgebol_fleet_cells"),
		periods:     reg.Counter("edgebol_fleet_periods_total"),
		costTotal:   reg.Gauge("edgebol_fleet_cost_total"),
		violTotal:   reg.Counter("edgebol_fleet_violations_total"),
		powerWatts:  reg.Gauge("edgebol_fleet_power_watts"),
		warmStarts:  reg.Counter("edgebol_fleet_warm_starts_total"),
		warmSamples: reg.Counter("edgebol_fleet_warm_samples_total"),
		cellCost:    make(map[string]*telemetry.Gauge),
		cellPow:     make(map[string]*telemetry.Gauge),
		cellViol:    make(map[string]*telemetry.Counter),
	}
}

func (m *metrics) setCells(n int) {
	m.cells.Set(float64(n))
}

// rollUp folds one period's per-cell results into the fleet aggregates
// and the per-cell labeled series.
func (m *metrics) rollUp(results []CellResult) {
	var periodCost, periodPower float64
	periodViolations := 0
	for _, r := range results {
		periodCost += r.Cost
		power := r.KPIs.ServerPower + r.KPIs.BSPower
		periodPower += power
		if !r.Satisfied {
			periodViolations++
			m.perCellViol(r.Cell).Inc()
		}
		m.perCellCost(r.Cell).Set(r.Cost)
		m.perCellPower(r.Cell).Set(power)
	}
	m.mu.Lock()
	m.cost += periodCost
	m.violations += periodViolations
	m.power = periodPower
	m.mu.Unlock()
	m.periods.Inc()
	m.costTotal.Add(periodCost)
	m.violTotal.Add(uint64(periodViolations))
	m.powerWatts.Set(periodPower)
}

func (m *metrics) warmStart(samples int) {
	m.warmStarts.Inc()
	m.warmSamples.Add(uint64(samples))
}

func (m *metrics) totalCost() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cost
}

func (m *metrics) totalViolations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violations
}

func (m *metrics) lastPower() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.power
}

// perCellCost et al. lazily register the labeled per-cell series; the
// registry dedups by identity, so the maps only spare the registry lock
// and label rendering in the steady state.
func (m *metrics) perCellCost(cell string) *telemetry.Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.cellCost[cell]
	if !ok {
		g = m.reg.Gauge("edgebol_fleet_cell_cost", "cell", cell)
		m.cellCost[cell] = g
	}
	return g
}

func (m *metrics) perCellPower(cell string) *telemetry.Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.cellPow[cell]
	if !ok {
		g = m.reg.Gauge("edgebol_fleet_cell_power_watts", "cell", cell)
		m.cellPow[cell] = g
	}
	return g
}

func (m *metrics) perCellViol(cell string) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cellViol[cell]
	if !ok {
		c = m.reg.Counter("edgebol_fleet_cell_violations_total", "cell", cell)
		m.cellViol[cell] = c
	}
	return c
}
