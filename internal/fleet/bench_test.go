package fleet

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
)

// BenchmarkFleetStep measures one fleet control period — every cell's
// full acquisition sweep plus the A1/E2/O1 round trip over its own
// control plane — as the fleet scales. The per-period cost should grow
// close to linearly in the cell count: cells are independent and shard
// across the worker pool, so the fixed sweep cost dominates and the
// coordinator adds only the post-barrier roll-up.
func BenchmarkFleetStep(b *testing.B) {
	for _, cells := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			opts := Options{
				Cells: Cells(cells, testSlice()),
				Base:  quickBase(),
				Agent: core.Options{
					Grid:           core.GridSpec{Levels: 3, MinResolution: 0.1, MinAirtime: 0.1},
					Engine:         core.EngineSparse,
					InducingPoints: 16,
				},
				BaseSeed: 11,
			}
			f, err := New(context.Background(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = f.Close() }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
