// Package fleet scales the single-cell EdgeBOL loop out to an operator
// fleet: N cells, each a simulated vBS + edge-AI slice (a
// multislice.SliceEnv over its own testbed) driven by its own core.Agent
// through its own O-RAN control-plane deployment (per-cell E2/O1
// endpoints, one A1 policy stream per slice), all orchestrated by one
// non-RT-RIC-shaped coordinator.
//
// The fleet preserves the paper's per-slice decomposition (§4.4): cells
// never share a model, so per-cell learning stays four-dimensional and
// per-cell periods are embarrassingly parallel. What cells do share is
// data: a cell joining the fleet can be warm-started from its most
// context-similar neighbors' observation histories (WarmStart), which is
// bitwise equivalent to the new agent having lived the pooled history
// itself — see core.Agent.SeedHistory.
//
// Periods are sharded across a bounded worker pool, and results are
// collected by cell index, so a fleet's trajectory is deterministic in
// (Options, seeds) regardless of Workers. See DESIGN.md §13.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/multislice"
	"repro/internal/oran"
	"repro/internal/telemetry"
	"repro/internal/testbed"
)

// DefaultWorkers bounds the per-period goroutine pool when Options leaves
// Workers zero. Cells are simulated and CPU-bound, so a small pool keeps
// the control plane responsive without oversubscribing the host.
const DefaultWorkers = 8

// cellSeedStride separates consecutive cells' RNG streams; a large prime
// keeps derived seeds distinct for any realistic fleet size.
const cellSeedStride = 1_000_003

// OptionError is the typed validation error Options.Validate returns:
// the offending field plus why it was rejected. Test with errors.As.
type OptionError struct {
	Field  string
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("fleet: invalid Options.%s: %s", e.Field, e.Reason)
}

// CellConfig describes one cell of the fleet: a named slice over the
// shared substrate template.
type CellConfig struct {
	// Name labels the cell in results, metrics, and checkpoint paths.
	// Must be unique within the fleet.
	Name string
	// Slice is the cell's service slice: users, airtime budget, GPU share,
	// weights, constraints. Each cell is its own machine room, so budgets
	// do not need to sum to one across cells (unlike multislice.System).
	Slice multislice.SliceConfig
}

// Cells builds n uniform cell configurations named cell-000..cell-(n-1)
// from one slice template — the convenient input for symmetric fleets
// (edgebol-sim -fleet N). Vary the template per index for heterogeneous
// fleets by editing the returned slice.
func Cells(n int, template multislice.SliceConfig) []CellConfig {
	out := make([]CellConfig, n)
	for i := range out {
		sc := template
		sc.Name = fmt.Sprintf("%s-%03d", nonEmpty(template.Name, "cell"), i)
		out[i] = CellConfig{Name: sc.Name, Slice: sc}
	}
	return out
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// Options configure a Fleet.
type Options struct {
	// Cells are the fleet's members, one per cell. Required non-empty;
	// names must be unique.
	Cells []CellConfig
	// Base is the shared substrate template every cell's testbed derives
	// from. The zero value means testbed.DefaultConfig().
	Base testbed.Config
	// Agent is the per-cell agent template: grid, normalization, engine,
	// noise priors. Weights and Constraints come from each cell's slice
	// config; everything else is shared so that observation histories stay
	// poolable across cells (SeedHistory requires one working-unit system).
	Agent core.Options
	// Deploy templates each cell's O-RAN control-plane deployment. With
	// more than one cell, MetricsAddr must be empty or end in ":0"
	// (ephemeral), otherwise the per-cell HTTP listeners would collide;
	// CheckpointDir, when set, gains a per-cell subdirectory.
	Deploy oran.DeployOptions
	// Workers bounds the goroutine pool that shards per-period work across
	// cells. Zero means DefaultWorkers; negative is invalid. The pool size
	// affects wall-clock only, never results.
	Workers int
	// BaseSeed derives every cell's RNG seed (BaseSeed + index*stride), so
	// one integer pins the whole fleet's trajectory.
	BaseSeed int64
	// WarmStart governs how AddCell seeds joiners from existing cells.
	// The zero value disables warm starts.
	WarmStart WarmStartPolicy
	// Telemetry receives the fleet-level roll-ups (per-fleet cost, power,
	// and violation aggregates plus per-cell labeled series). Nil disables
	// them. This registry is distinct from Agent.Telemetry/Deploy.Telemetry,
	// which instrument individual cells when set.
	Telemetry *telemetry.Registry
}

// Validate reports whether the options describe a buildable fleet; every
// failure is an *OptionError naming the offending field.
func (o Options) Validate() error {
	if len(o.Cells) == 0 {
		return &OptionError{Field: "Cells", Reason: "fleet needs at least one cell"}
	}
	seen := make(map[string]bool, len(o.Cells))
	for i, c := range o.Cells {
		if c.Name == "" {
			return &OptionError{Field: "Cells", Reason: fmt.Sprintf("cell %d has no name", i)}
		}
		if seen[c.Name] {
			return &OptionError{Field: "Cells", Reason: fmt.Sprintf("duplicate cell name %q", c.Name)}
		}
		seen[c.Name] = true
		if err := c.Slice.Validate(); err != nil {
			return &OptionError{Field: "Cells", Reason: fmt.Sprintf("cell %q: %v", c.Name, err)}
		}
	}
	if o.Workers < 0 {
		return &OptionError{Field: "Workers", Reason: fmt.Sprintf("%d is negative", o.Workers)}
	}
	if len(o.Cells) > 1 && o.Deploy.MetricsAddr != "" && !strings.HasSuffix(o.Deploy.MetricsAddr, ":0") {
		return &OptionError{Field: "Deploy", Reason: fmt.Sprintf(
			"MetricsAddr %q names a fixed port; per-cell metric servers would collide (use an ephemeral \":0\" address)",
			o.Deploy.MetricsAddr)}
	}
	if err := o.WarmStart.Validate(); err != nil {
		return err
	}
	return nil
}

// Cell is one fleet member: its slice environment, learning agent, and
// O-RAN control plane.
type Cell struct {
	// Name and Index identify the cell within the fleet.
	Name  string
	Index int
	// Seed is the cell's derived RNG seed.
	Seed int64
	// Env is the cell's slice-partition view of its testbed.
	Env *multislice.SliceEnv
	// Agent is the cell's EdgeBOL learner.
	Agent *core.Agent
	// Deployment is the cell's own loopback control plane; the agent
	// drives Deployment.Env(), so every period crosses the cell's A1, E2,
	// O1, and service interfaces like a single-cell run would.
	Deployment *oran.Deployment
}

// CellResult is one cell's outcome in one fleet period.
type CellResult struct {
	Cell    string
	Index   int
	Control core.Control
	KPIs    core.KPIs
	Info    core.SelectionInfo
	// Cost is the cell's energy cost under its own slice weights.
	Cost float64
	// Satisfied reports whether the period met the cell's constraints.
	Satisfied bool
}

// Fleet is N cells behind one coordinator.
type Fleet struct {
	opts    Options
	workers int
	cells   []*Cell
	met     *metrics

	mu      sync.Mutex
	periods int
	closed  bool
}

// New builds and deploys the fleet: per-cell testbeds, agents, and O-RAN
// stacks. The context scopes every cell's control plane — canceling it
// tears the whole fleet down. On error, cells already deployed are closed.
func New(ctx context.Context, opts Options) (*Fleet, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	base := opts.Base
	if base.Edge.BaseServiceTime == 0 {
		base = testbed.DefaultConfig()
	}
	workers := opts.Workers
	if workers == 0 {
		workers = DefaultWorkers
	}
	f := &Fleet{opts: opts, workers: workers, met: newMetrics(opts.Telemetry)}
	for i, cc := range opts.Cells {
		cell, err := f.buildCell(ctx, base, cc, i)
		if err != nil {
			_ = f.Close() // already failing; keep the construction error
			return nil, fmt.Errorf("fleet: cell %q: %w", cc.Name, err)
		}
		f.cells = append(f.cells, cell)
	}
	f.met.setCells(len(f.cells))
	return f, nil
}

// buildCell stands up one cell: slice env, agent from the template (the
// cell's own weights/constraints grafted in), and its control plane.
func (f *Fleet) buildCell(ctx context.Context, base testbed.Config, cc CellConfig, index int) (*Cell, error) {
	seed := f.opts.BaseSeed + int64(index)*cellSeedStride
	env, err := multislice.NewSliceEnv(base, cc.Slice, seed)
	if err != nil {
		return nil, err
	}
	aopts := f.opts.Agent
	aopts.Weights = cc.Slice.Weights
	aopts.Constraints = cc.Slice.Constraints
	agent, err := core.NewAgent(aopts)
	if err != nil {
		return nil, err
	}
	dopts := f.opts.Deploy
	if dopts.CheckpointDir != "" {
		dopts.CheckpointDir = filepath.Join(dopts.CheckpointDir, cc.Name)
	}
	dep, err := oran.Deploy(ctx, env, dopts)
	if err != nil {
		return nil, err
	}
	return &Cell{Name: cc.Name, Index: index, Seed: seed, Env: env, Agent: agent, Deployment: dep}, nil
}

// Cells returns the fleet's members in index order. The slice is shared;
// treat it as read-only.
func (f *Fleet) Cells() []*Cell { return f.cells }

// Periods returns how many fleet periods have completed.
func (f *Fleet) Periods() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.periods
}

// Step runs one control period on every cell, sharded across the worker
// pool, and returns per-cell results in cell-index order. Cells are
// independent, and the telemetry roll-up happens serially after all cells
// finish, so results are identical for any Workers setting. Cells that
// fail contribute a joined error but never block the others.
func (f *Fleet) Step() ([]CellResult, error) {
	results := make([]CellResult, len(f.cells))
	errs := make([]error, len(f.cells))
	f.forEach(func(i int) {
		cell := f.cells[i]
		x, k, info, err := cell.Agent.Step(cell.Deployment.Env())
		if err != nil {
			errs[i] = fmt.Errorf("fleet: cell %q: %w", cell.Name, err)
			return
		}
		results[i] = CellResult{
			Cell:      cell.Name,
			Index:     i,
			Control:   x,
			KPIs:      k,
			Info:      info,
			Cost:      cell.Env.Config().Weights.Cost(k),
			Satisfied: cell.Env.Config().Constraints.Satisfied(k),
		}
	})
	if err := errors.Join(errs...); err != nil {
		return results, err
	}
	f.mu.Lock()
	f.periods++
	f.mu.Unlock()
	f.met.rollUp(results)
	return results, nil
}

// Run executes periods control periods, returning the last period's
// results. It stops at the first period that errors.
func (f *Fleet) Run(periods int) ([]CellResult, error) {
	var last []CellResult
	for p := 0; p < periods; p++ {
		res, err := f.Step()
		if err != nil {
			return res, err
		}
		last = res
	}
	return last, nil
}

// forEach runs fn(i) for every cell index over the bounded worker pool.
func (f *Fleet) forEach(fn func(i int)) {
	n := len(f.cells)
	workers := f.workers
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// AddCell deploys a new cell into the running fleet and, when the warm
// start policy enables it, seeds the joiner's GPs from its most
// context-similar neighbors' observation histories before the cell serves
// its first period. Returns the new cell and how many pooled samples
// seeded it (zero when warm starts are disabled or no donor has data).
func (f *Fleet) AddCell(ctx context.Context, cc CellConfig) (*Cell, int, error) {
	if cc.Name == "" {
		return nil, 0, &OptionError{Field: "Cells", Reason: "cell has no name"}
	}
	for _, c := range f.cells {
		if c.Name == cc.Name {
			return nil, 0, &OptionError{Field: "Cells", Reason: fmt.Sprintf("duplicate cell name %q", cc.Name)}
		}
	}
	if err := cc.Slice.Validate(); err != nil {
		return nil, 0, &OptionError{Field: "Cells", Reason: fmt.Sprintf("cell %q: %v", cc.Name, err)}
	}
	base := f.opts.Base
	if base.Edge.BaseServiceTime == 0 {
		base = testbed.DefaultConfig()
	}
	cell, err := f.buildCell(ctx, base, cc, len(f.cells))
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: cell %q: %w", cc.Name, err)
	}
	seeded := 0
	if f.opts.WarmStart.Neighbors > 0 {
		donors := make([]Donor, 0, len(f.cells))
		for _, c := range f.cells {
			donors = append(donors, Donor{
				Context: c.Env.Context(),
				History: c.Agent.History(0),
			})
		}
		seeded, err = WarmStart(cell.Agent, cell.Env.Context(), donors, f.opts.WarmStart)
		if err != nil {
			_ = cell.Deployment.Close()
			return nil, 0, fmt.Errorf("fleet: warm-starting cell %q: %w", cc.Name, err)
		}
		f.met.warmStart(seeded)
	}
	f.cells = append(f.cells, cell)
	f.met.setCells(len(f.cells))
	return cell, seeded, nil
}

// Summary aggregates the fleet's telemetry roll-ups: cumulative cost,
// violation count, and last-period power across all cells.
type Summary struct {
	Cells      int
	Periods    int
	TotalCost  float64
	Violations int
	// PowerWatts is the fleet-wide power draw (server + vBS, every cell)
	// observed in the most recent period.
	PowerWatts float64
}

// Summary returns the fleet's aggregate state.
func (f *Fleet) Summary() Summary {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Summary{
		Cells:      len(f.cells),
		Periods:    f.periods,
		TotalCost:  f.met.totalCost(),
		Violations: f.met.totalViolations(),
		PowerWatts: f.met.lastPower(),
	}
}

// Close tears down every cell's control plane. Idempotent; returns the
// first teardown error.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	var first error
	for i := len(f.cells) - 1; i >= 0; i-- {
		if err := f.cells[i].Deployment.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
