// Package ran models the radio access network of the EdgeBOL prototype: a
// SISO LTE 20 MHz uplink served by a virtualized base station (srsRAN eNB in
// the paper), with the two O-RAN radio policies of §3 — an airtime (duty
// cycle) cap and a maximum-MCS cap — enforced by a round-robin MAC
// scheduler, plus the baseband power model of Performance Indicator 4.
//
// The model is calibrated to the prototype's measurements rather than to
// PHY-layer theory: what matters for reproducing the paper is the measured
// relationship between policies and KPIs (Figs. 2, 5, 6), not bit-exact
// 3GPP behaviour.
package ran

import "math"

// NumPRB is the number of physical resource blocks of a 20 MHz LTE carrier.
const NumPRB = 100

// MaxMCS is the highest modulation-and-coding-scheme index the vBS uses
// (64QAM region). The paper's MCS policy caps the scheduler at or below it.
const MaxMCS = 23

// MaxCQI is the highest channel quality indicator.
const MaxCQI = 15

// tbsPerPRB approximates the transport-block bits carried by one PRB in one
// 1 ms TTI at each MCS (modulation order × code rate × 168 resource
// elements, less control overhead). The top entry yields ≈53 Mb/s over 100
// PRBs, matching the ≈50 Mb/s SISO capacity quoted in §3.
var tbsPerPRB = [MaxMCS + 1]float64{
	// QPSK, code rates 0.08–0.66
	19, 25, 31, 39, 48, 59, 72, 86, 101, 117,
	// 16QAM, code rates 0.37–0.60
	132, 150, 170, 192, 216, 242, 270,
	// 64QAM, code rates 0.45–0.75
	301, 336, 373, 411, 450, 490, 531,
}

// TBSPerPRB returns the per-PRB per-TTI transport block size in bits for an
// MCS index, clamping out-of-range values.
func TBSPerPRB(mcs int) float64 {
	if mcs < 0 {
		mcs = 0
	}
	if mcs > MaxMCS {
		mcs = MaxMCS
	}
	return tbsPerPRB[mcs]
}

// PHYRate returns the physical-layer uplink rate in bit/s sustained by the
// full carrier at the given MCS.
func PHYRate(mcs int) float64 {
	return TBSPerPRB(mcs) * NumPRB * 1000 // 1000 TTIs per second
}

// cqiToMCS maps a reported CQI to the highest MCS the srsRAN-like link
// adaptation would select for it (index 0 unused).
var cqiToMCS = [MaxCQI + 1]int{0, 0, 2, 4, 6, 8, 10, 12, 14, 16, 17, 19, 20, 21, 22, 23}

// MCSFromCQI returns the scheduler's MCS choice for a CQI before applying
// the max-MCS policy cap.
func MCSFromCQI(cqi int) int {
	if cqi < 1 {
		cqi = 1
	}
	if cqi > MaxCQI {
		cqi = MaxCQI
	}
	return cqiToMCS[cqi]
}

// CQIFromSNR maps an uplink SNR in dB to a CQI report. The linear fit spans
// CQI 1 near −5 dB to CQI 15 near 25 dB, saturating outside; the prototype's
// 35 dB operating point therefore reports CQI 15.
func CQIFromSNR(snrDB float64) int {
	cqi := int(math.Round((snrDB + 7) / 2.1))
	if cqi < 1 {
		cqi = 1
	}
	if cqi > MaxCQI {
		cqi = MaxCQI
	}
	return cqi
}

// EffectiveMCS returns the MCS actually used for a user: the link-adaptation
// choice for its CQI, capped by the max-MCS policy.
func EffectiveMCS(cqi, mcsCap int) int {
	m := MCSFromCQI(cqi)
	if mcsCap < 0 {
		mcsCap = 0
	}
	if mcsCap > MaxMCS {
		mcsCap = MaxMCS
	}
	if m > mcsCap {
		m = mcsCap
	}
	return m
}
